// vprof profiles a benchmark workload and prints the paper-style
// report for the chosen profiled entity.
//
// Usage:
//
//	vprof [-w compress] [-input test|train] [-mode MODE] [-top 20]
//	      [-convergent] [-full] [-o profile.json] [-list]
//
// Modes:
//
//	inst    value-profile all result-producing instructions (default)
//	loads   value-profile loads only
//	mem     memory-location profile (stores)
//	param   procedure-parameter profile
//	reg     per-register value streams
//	dep     store→load communication profile
//	triv    trivial-computation profile (mul/div operands)
//	proc    procedure cycle attribution
//
// -o writes the instruction profile as JSON (inst/loads modes) for
// later comparison with vdiff.
package main

import (
	"flag"
	"fmt"
	"os"

	"valueprof/internal/atom"
	"valueprof/internal/core"
	"valueprof/internal/depprof"
	"valueprof/internal/memprof"
	"valueprof/internal/paramprof"
	"valueprof/internal/procprof"
	"valueprof/internal/program"
	"valueprof/internal/regprof"
	"valueprof/internal/textual"
	"valueprof/internal/trivprof"
	"valueprof/internal/vm"
	"valueprof/internal/workloads"
)

func main() {
	wl := flag.String("w", "compress", "workload name")
	inputName := flag.String("input", "test", "input set: test or train")
	mode := flag.String("mode", "inst", "inst|loads|mem|param|reg|dep|triv|proc")
	convergent := flag.Bool("convergent", false, "use convergent (sampling) profiling (inst/loads)")
	full := flag.Bool("full", false, "track exact full profiles too (inst/loads)")
	top := flag.Int("top", 20, "show the N hottest entries")
	outFile := flag.String("o", "", "write the profile as JSON (inst/loads)")
	list := flag.Bool("list", false, "list workloads and exit")
	flag.Parse()

	if *list {
		for _, w := range workloads.All() {
			fmt.Printf("%-10s %s\n", w.Name, w.Description)
		}
		return
	}

	w, err := workloads.ByName(*wl)
	if err != nil {
		fatal(err)
	}
	var in workloads.Input
	switch *inputName {
	case "test":
		in = w.Test
	case "train":
		in = w.Train
	default:
		fatal(fmt.Errorf("vprof: unknown input %q (test or train)", *inputName))
	}
	prog, err := w.Compile()
	if err != nil {
		fatal(err)
	}

	switch *mode {
	case "inst", "loads":
		instMode(w, in, prog, *mode == "loads", *convergent, *full, *top, *outFile)
	case "mem":
		memMode(w, in, prog, *top)
	case "param":
		paramMode(w, in, prog, *top)
	case "reg":
		regMode(w, in, prog)
	case "dep":
		depMode(w, in, prog, *top)
	case "triv":
		trivMode(w, in, prog, *top)
	case "proc":
		procMode(w, in, prog, *top)
	default:
		fatal(fmt.Errorf("vprof: unknown mode %q", *mode))
	}
}

func runTool(in workloads.Input, prog *program.Program, tools ...atom.Tool) *vm.Result {
	res, err := atom.Run(prog, in.Args, false, tools...)
	if err != nil {
		fatal(err)
	}
	return res
}

func instMode(w *workloads.Workload, in workloads.Input, prog *program.Program, loadsOnly, convergent, full bool, top int, outFile string) {
	opts := core.Options{TNV: core.DefaultTNVConfig(), TrackFull: full}
	if loadsOnly {
		opts.Filter = core.LoadsOnly
	}
	if convergent {
		cfg := core.DefaultConvergentConfig()
		opts.Convergent = &cfg
	}
	vp, err := core.NewValueProfiler(opts)
	if err != nil {
		fatal(err)
	}
	res := runTool(in, prog, vp)
	pr := vp.Profile()
	m := pr.Aggregate()

	fmt.Printf("%s/%s: %d instructions executed, %d sites profiled\n",
		w.Name, in.Name, res.InstCount, m.Sites)
	fmt.Printf("weighted: LVP %.3f  Inv-Top(1) %.3f  Inv-Top(%d) %.3f  %%zero %.3f  duty %.3f\n\n",
		m.LVP, m.InvTop1, pr.K, m.InvTopN, m.PctZero, pr.DutyCycle())

	tab := textual.New(fmt.Sprintf("top %d sites by executions", top),
		"site", "inst", "execs", "LVP", "InvTop1", "class", "top values")
	th := core.DefaultThresholds()
	for _, s := range pr.TopSites(top) {
		topvals := ""
		for i, e := range s.TNV.Top(3) {
			if i > 0 {
				topvals += " "
			}
			topvals += fmt.Sprintf("%d:%d", e.Value, e.Count)
		}
		tab.Row(s.Name, prog.Code[s.PC].String(), s.Exec,
			s.LVP(), s.InvTop(1), s.Classify(th).String(), topvals)
	}
	fmt.Print(tab.String())

	if outFile != "" {
		f, err := os.Create(outFile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pr.Record(w.Name, in.Name).WriteJSON(f); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "vprof: wrote %s\n", outFile)
	}
}

func memMode(w *workloads.Workload, in workloads.Input, prog *program.Program, top int) {
	mp := memprof.New(memprof.Options{TNV: core.DefaultTNVConfig()})
	runTool(in, prog, mp)
	rep := mp.Report()
	m := rep.Aggregate(nil)
	byLoc, byAccess := rep.InvariantFraction(0.9)
	fmt.Printf("%s/%s: %d locations written, %d stores; InvTop1 %.3f\n",
		w.Name, in.Name, len(rep.Locations), m.Execs, m.InvTop1)
	fmt.Printf("≥90%%-single-valued: %s of locations, %s of accesses\n\n",
		textual.Pct(byLoc), textual.Pct(byAccess))
	tab := textual.New(fmt.Sprintf("top %d locations", top),
		"addr", "region", "writes", "reads", "InvTop1", "top value")
	for _, l := range rep.TopLocations(top) {
		v, c, _ := l.Stats.TNV.TopValue()
		tab.Row(fmt.Sprintf("%#x", l.Addr), l.Region.String(), l.Writes, l.Reads,
			l.Stats.InvTop(1), fmt.Sprintf("%d:%d", v, c))
	}
	fmt.Print(tab.String())
}

func paramMode(w *workloads.Workload, in workloads.Input, prog *program.Program, top int) {
	pp := paramprof.New(paramprof.Options{TNV: core.DefaultTNVConfig()})
	runTool(in, prog, pp)
	tab := textual.New(fmt.Sprintf("%s/%s procedure parameters", w.Name, in.Name),
		"proc", "calls", "arg0-inv", "arg1-inv", "arg2-inv", "tuple-inv")
	for i, p := range pp.Report().Procs {
		if i >= top {
			break
		}
		cells := []any{p.Name, p.Calls}
		for j := 0; j < 3; j++ {
			if j < len(p.Args) {
				cells = append(cells, fmt.Sprintf("%.3f", p.Args[j].InvTop(1)))
			} else {
				cells = append(cells, "-")
			}
		}
		cells = append(cells, fmt.Sprintf("%.3f", p.AllArgsInvariance()))
		tab.Row(cells...)
	}
	fmt.Print(tab.String())
}

func regMode(w *workloads.Workload, in workloads.Input, prog *program.Program) {
	rp := regprof.New(core.DefaultTNVConfig(), false)
	runTool(in, prog, rp)
	tab := textual.New(fmt.Sprintf("%s/%s register write streams", w.Name, in.Name),
		"reg", "writes", "LVP", "InvTop1", "InvTop10", "top value")
	for _, s := range rp.Written() {
		v, c, _ := s.TNV.TopValue()
		tab.Row(s.Name, s.Exec, s.LVP(), s.InvTop(1), s.InvTop(10), fmt.Sprintf("%d:%d", v, c))
	}
	fmt.Print(tab.String())
}

func depMode(w *workloads.Workload, in workloads.Input, prog *program.Program, top int) {
	dp := depprof.New(depprof.DefaultOptions())
	runTool(in, prog, dp)
	rep := dp.Report()
	fromStore, forwardable, dom := rep.Totals()
	fmt.Printf("%s/%s: store-fed %s, forwardable %s (window %d), dominant-edge %.3f\n\n",
		w.Name, in.Name, textual.Pct(fromStore), textual.Pct(forwardable), rep.Window, dom)
	tab := textual.New(fmt.Sprintf("top %d loads", top),
		"load", "execs", "store-fed", "forwardable", "edge-inv", "mean-dist")
	for i, l := range rep.Loads {
		if i >= top {
			break
		}
		tab.Row(l.Name, l.Execs,
			textual.Pct(float64(l.FromStore)/float64(l.Execs)),
			textual.Pct(float64(l.Forwardable)/float64(l.Execs)),
			fmt.Sprintf("%.3f", l.EdgeInvariance()),
			fmt.Sprintf("%.1f", l.MeanDistance()))
	}
	fmt.Print(tab.String())
}

func trivMode(w *workloads.Workload, in workloads.Input, prog *program.Program, top int) {
	tp := trivprof.New()
	res := runTool(in, prog, tp)
	rep := tp.Report()
	frac, saved, kinds := rep.Totals()
	fmt.Printf("%s/%s: trivial fraction %s; %d cycles savable (%s of run)\n",
		w.Name, in.Name, textual.Pct(frac), saved, textual.Pct(float64(saved)/float64(res.Cycles)))
	fmt.Printf("kinds: zero=%d one=%d minus-one=%d pow2=%d self=%d\n\n",
		kinds[trivprof.ZeroOperand], kinds[trivprof.OneOperand], kinds[trivprof.MinusOne],
		kinds[trivprof.PowerOfTwo], kinds[trivprof.SelfOperand])
	tab := textual.New(fmt.Sprintf("top %d arithmetic sites", top),
		"site", "op", "execs", "trivial", "saved-cycles")
	for i, s := range rep.Sites {
		if i >= top {
			break
		}
		tab.Row(s.Name, s.Op.Name(), s.Execs, textual.Pct(s.TrivialFraction()), s.SavedCycles())
	}
	fmt.Print(tab.String())
}

func procMode(w *workloads.Workload, in workloads.Input, prog *program.Program, top int) {
	pp := procprof.New()
	runTool(in, prog, pp)
	fmt.Printf("%s/%s: %d cycles total; top-3 procedures hold %s\n\n",
		w.Name, in.Name, pp.TotalCycles(), textual.Pct(pp.TopShare(3)))
	tab := textual.New(fmt.Sprintf("top %d procedures by exclusive cycles", top),
		"proc", "calls", "exclusive", "inclusive", "excl-share")
	for i, pt := range pp.Sorted() {
		if i >= top {
			break
		}
		tab.Row(pt.Name, pt.Calls, pt.Exclusive, pt.Inclusive,
			textual.Pct(float64(pt.Exclusive)/float64(pp.TotalCycles())))
	}
	fmt.Print(tab.String())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
