// vprof profiles a benchmark workload and prints the paper-style
// report for the chosen profiled entity.
//
// Usage:
//
//	vprof [-w compress] [-input test|train] [-mode MODE] [-top 20]
//	      [-convergent] [-full] [-o profile.json] [-list]
//	      [-deadline 30s] [-steps N]
//	      [-checkpoint run.ckpt] [-checkpoint-every N] [-resume run.ckpt]
//
// Modes:
//
//	inst    value-profile all result-producing instructions (default)
//	loads   value-profile loads only
//	mem     memory-location profile (stores)
//	param   procedure-parameter profile
//	reg     per-register value streams
//	dep     store→load communication profile
//	triv    trivial-computation profile (mul/div operands)
//	proc    procedure cycle attribution
//
// -o writes the instruction profile as JSON (inst/loads modes) for
// later comparison with vdiff.
//
// Robustness: a run that ends early — guest fault, -deadline expiry,
// -steps exhaustion, or Ctrl-C — still reports and writes the partial
// profile (the JSON record carries an "outcome" field). With
// -checkpoint the profiler state is snapshotted every -checkpoint-every
// instructions (atomic rename, crash-safe) and a -resume run continues
// from the snapshot. Exit codes: 0 completed, 1 fault, 124 deadline,
// 125 step limit, 130 interrupted.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"time"
	"unsafe"

	"valueprof/internal/analysis"
	"valueprof/internal/atom"
	"valueprof/internal/atomicio"
	"valueprof/internal/core"
	"valueprof/internal/depprof"
	"valueprof/internal/memprof"
	"valueprof/internal/paramprof"
	"valueprof/internal/procprof"
	"valueprof/internal/program"
	"valueprof/internal/regprof"
	"valueprof/internal/textual"
	"valueprof/internal/trivprof"
	"valueprof/internal/vm"
	"valueprof/internal/workloads"
)

// runCfg carries the control-plane settings shared by every mode.
type runCfg struct {
	ctx  context.Context
	opts atom.RunOptions

	ckptPath  string
	ckptEvery uint64
	resume    string
}

func main() {
	wl := flag.String("w", "compress", "workload name")
	inputName := flag.String("input", "test", "input set: test or train")
	mode := flag.String("mode", "inst", "inst|loads|mem|param|reg|dep|triv|proc")
	convergent := flag.Bool("convergent", false, "use convergent (sampling) profiling (inst/loads)")
	pruneStatic := flag.Bool("prune-static", false,
		"skip TNV tables for provably-constant/unreachable pcs (inst/loads)")
	full := flag.Bool("full", false, "track exact full profiles too (inst/loads)")
	top := flag.Int("top", 20, "show the N hottest entries")
	outFile := flag.String("o", "", "write the profile as JSON (inst/loads)")
	list := flag.Bool("list", false, "list workloads and exit")
	deadline := flag.Duration("deadline", 0, "stop the run after this wall-clock budget (0 = none)")
	steps := flag.Uint64("steps", 0, "stop the run after N instructions (0 = VM default)")
	ckptPath := flag.String("checkpoint", "", "snapshot profiler state to this file during the run (inst/loads)")
	ckptEvery := flag.Uint64("checkpoint-every", core.DefaultCheckpointEvery,
		"instructions between checkpoint snapshots")
	resume := flag.String("resume", "", "resume an interrupted run from this checkpoint file (inst/loads)")
	flag.Parse()

	if *list {
		for _, w := range workloads.All() {
			fmt.Printf("%-10s %s\n", w.Name, w.Description)
		}
		return
	}

	w, err := workloads.ByName(*wl)
	if err != nil {
		fatal(err)
	}
	var in workloads.Input
	switch *inputName {
	case "test":
		in = w.Test
	case "train":
		in = w.Train
	default:
		fatal(fmt.Errorf("vprof: unknown input %q (test or train)", *inputName))
	}
	prog, err := w.Compile()
	if err != nil {
		fatal(err)
	}

	// Ctrl-C cancels the run context; the run loop stops at the next
	// quantum boundary and the partial profile is salvaged below.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	rc := &runCfg{
		ctx: ctx,
		opts: atom.RunOptions{
			StepLimit: *steps,
		},
		ckptPath:  *ckptPath,
		ckptEvery: *ckptEvery,
		resume:    *resume,
	}
	if *deadline > 0 {
		rc.opts.Deadline = time.Now().Add(*deadline)
	}

	var outcome vm.RunOutcome
	switch *mode {
	case "inst", "loads":
		outcome = instMode(rc, w, in, prog, *mode == "loads", *convergent, *full, *pruneStatic, *top, *outFile)
	case "mem":
		outcome = memMode(rc, w, in, prog, *top)
	case "param":
		outcome = paramMode(rc, w, in, prog, *top)
	case "reg":
		outcome = regMode(rc, w, in, prog)
	case "dep":
		outcome = depMode(rc, w, in, prog, *top)
	case "triv":
		outcome = trivMode(rc, w, in, prog, *top)
	case "proc":
		outcome = procMode(rc, w, in, prog, *top)
	default:
		fatal(fmt.Errorf("vprof: unknown mode %q", *mode))
	}
	os.Exit(exitCode(outcome))
}

// exitCode maps a run outcome to the process exit status, following
// the timeout(1)/shell conventions where one exists.
func exitCode(outcome vm.RunOutcome) int {
	switch outcome {
	case vm.OutcomeCompleted:
		return 0
	case vm.OutcomeDeadline:
		return 124
	case vm.OutcomeLimit:
		return 125
	case vm.OutcomeCancelled:
		return 130
	default:
		return 1
	}
}

// runTool executes an instrumented run under the shared control
// settings. Early termination is not fatal: the partial result comes
// back with a warning so every mode reports what it gathered.
func runTool(rc *runCfg, in workloads.Input, prog *program.Program, tools ...atom.Tool) (*vm.Result, vm.RunOutcome) {
	opts := rc.opts
	opts.Input = in.Args
	res, outcome, err := atom.RunControlled(rc.ctx, prog, opts, tools...)
	warnPartial(outcome, err)
	return res, outcome
}

func warnPartial(outcome vm.RunOutcome, err error) {
	if outcome != vm.OutcomeCompleted {
		fmt.Fprintf(os.Stderr, "vprof: run ended early (%s): %v; reporting partial profile\n", outcome, err)
	}
}

func instMode(rc *runCfg, w *workloads.Workload, in workloads.Input, prog *program.Program, loadsOnly, convergent, full, pruneStatic bool, top int, outFile string) vm.RunOutcome {
	opts := core.Options{TNV: core.DefaultTNVConfig(), TrackFull: full}
	if loadsOnly {
		opts.Filter = core.LoadsOnly
	}
	if convergent {
		cfg := core.DefaultConvergentConfig()
		opts.Convergent = &cfg
	}
	if pruneStatic {
		start := time.Now()
		cn := analysis.AnalyzeConstness(prog)
		elapsed := time.Since(start)
		opts.Prune = cn.ShouldPrune
		rep := cn.Prune(opts.Filter)
		siteBytes := int(unsafe.Sizeof(core.SiteStats{})) +
			opts.TNV.Size*int(unsafe.Sizeof(core.TNVEntry{}))
		fmt.Fprintf(os.Stderr,
			"vprof: static prune: %d of %d candidate sites need no table (%d const, %d unreached; %d more invariant), ~%d bytes of site state avoided; analysis took %s\n",
			rep.Pruned(), rep.Candidates, rep.Const, rep.Unreached, rep.Invariant,
			rep.Pruned()*siteBytes, elapsed.Round(time.Microsecond))
	}
	vp, err := core.NewValueProfiler(opts)
	if err != nil {
		fatal(err)
	}

	var ck *core.Checkpoint
	if rc.resume != "" {
		ck, err = core.LoadCheckpoint(rc.resume)
		if err != nil {
			fatal(fmt.Errorf("vprof: loading checkpoint: %w", err))
		}
		// A checkpoint restores raw VM state; resuming it under a
		// different program or input would execute garbage.
		if ck.Program != w.Name || ck.Input != in.Name {
			fatal(fmt.Errorf("vprof: checkpoint is for %s/%s, not %s/%s",
				ck.Program, ck.Input, w.Name, in.Name))
		}
		if err := vp.Seed(ck); err != nil {
			fatal(fmt.Errorf("vprof: resuming: %w", err))
		}
		fmt.Fprintf(os.Stderr, "vprof: resuming %s/%s from instruction %d (%d sites)\n",
			ck.Program, ck.Input, ck.InstCount(), len(ck.Sites))
	}

	tools := []atom.Tool{atom.Tool(vp)}
	var ckpt *core.Checkpointer
	if rc.ckptPath != "" {
		ckpt = core.NewCheckpointer(vp, rc.ckptPath, rc.ckptEvery, w.Name, in.Name)
		tools = append(tools, ckpt)
	}

	runOpts := rc.opts
	runOpts.Input = in.Args
	v := atom.Prepare(prog, runOpts, tools...)
	if ck != nil {
		if err := ck.RestoreVM(v); err != nil {
			fatal(fmt.Errorf("vprof: restoring VM state: %w", err))
		}
	}
	outcome, err := v.RunControlled(rc.ctx)
	res := vm.ResultOf(v, outcome)
	warnPartial(outcome, err)

	// A final snapshot salvages the interrupted run for -resume; taken
	// before reporting so a crash while printing loses nothing.
	if ckpt != nil && outcome != vm.OutcomeCompleted {
		if err := ckpt.SnapshotNow(v); err != nil {
			fmt.Fprintf(os.Stderr, "vprof: final checkpoint failed: %v\n", err)
		} else {
			fmt.Fprintf(os.Stderr, "vprof: checkpoint saved to %s; resume with -resume %s\n",
				rc.ckptPath, rc.ckptPath)
		}
	}
	if ckpt != nil && ckpt.Err() != nil {
		fmt.Fprintf(os.Stderr, "vprof: warning: a checkpoint snapshot failed during the run: %v\n", ckpt.Err())
	}

	pr := vp.Profile()
	m := pr.Aggregate()

	fmt.Printf("%s/%s: %d instructions executed, %d sites profiled\n",
		w.Name, in.Name, res.InstCount, m.Sites)
	fmt.Printf("weighted: LVP %.3f  Inv-Top(1) %.3f  Inv-Top(%d) %.3f  %%zero %.3f  duty %.3f\n\n",
		m.LVP, m.InvTop1, pr.K, m.InvTopN, m.PctZero, pr.DutyCycle())

	tab := textual.New(fmt.Sprintf("top %d sites by executions", top),
		"site", "inst", "execs", "LVP", "InvTop1", "class", "top values")
	th := core.DefaultThresholds()
	for _, s := range pr.TopSites(top) {
		topvals := ""
		for i, e := range s.TNV.Top(3) {
			if i > 0 {
				topvals += " "
			}
			topvals += fmt.Sprintf("%d:%d", e.Value, e.Count)
		}
		tab.Row(s.Name, prog.Code[s.PC].String(), s.Exec,
			s.LVP(), s.InvTop(1), s.Classify(th).String(), topvals)
	}
	fmt.Print(tab.String())

	if outFile != "" {
		rec := pr.Record(w.Name, in.Name)
		if outcome != vm.OutcomeCompleted {
			rec.Outcome = outcome.String()
		}
		err := atomicio.WriteFile(outFile, func(f io.Writer) error {
			return rec.WriteJSON(f)
		})
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "vprof: wrote %s\n", outFile)
	}
	return outcome
}

func memMode(rc *runCfg, w *workloads.Workload, in workloads.Input, prog *program.Program, top int) vm.RunOutcome {
	mp := memprof.New(memprof.Options{TNV: core.DefaultTNVConfig()})
	_, outcome := runTool(rc, in, prog, mp)
	rep := mp.Report()
	m := rep.Aggregate(nil)
	byLoc, byAccess := rep.InvariantFraction(0.9)
	fmt.Printf("%s/%s: %d locations written, %d stores; InvTop1 %.3f\n",
		w.Name, in.Name, len(rep.Locations), m.Execs, m.InvTop1)
	fmt.Printf("≥90%%-single-valued: %s of locations, %s of accesses\n\n",
		textual.Pct(byLoc), textual.Pct(byAccess))
	tab := textual.New(fmt.Sprintf("top %d locations", top),
		"addr", "region", "writes", "reads", "InvTop1", "top value")
	for _, l := range rep.TopLocations(top) {
		v, c, _ := l.Stats.TNV.TopValue()
		tab.Row(fmt.Sprintf("%#x", l.Addr), l.Region.String(), l.Writes, l.Reads,
			l.Stats.InvTop(1), fmt.Sprintf("%d:%d", v, c))
	}
	fmt.Print(tab.String())
	return outcome
}

func paramMode(rc *runCfg, w *workloads.Workload, in workloads.Input, prog *program.Program, top int) vm.RunOutcome {
	pp := paramprof.New(paramprof.Options{TNV: core.DefaultTNVConfig()})
	_, outcome := runTool(rc, in, prog, pp)
	tab := textual.New(fmt.Sprintf("%s/%s procedure parameters", w.Name, in.Name),
		"proc", "calls", "arg0-inv", "arg1-inv", "arg2-inv", "tuple-inv")
	for i, p := range pp.Report().Procs {
		if i >= top {
			break
		}
		cells := []any{p.Name, p.Calls}
		for j := 0; j < 3; j++ {
			if j < len(p.Args) {
				cells = append(cells, fmt.Sprintf("%.3f", p.Args[j].InvTop(1)))
			} else {
				cells = append(cells, "-")
			}
		}
		cells = append(cells, fmt.Sprintf("%.3f", p.AllArgsInvariance()))
		tab.Row(cells...)
	}
	fmt.Print(tab.String())
	return outcome
}

func regMode(rc *runCfg, w *workloads.Workload, in workloads.Input, prog *program.Program) vm.RunOutcome {
	rp := regprof.New(core.DefaultTNVConfig(), false)
	_, outcome := runTool(rc, in, prog, rp)
	tab := textual.New(fmt.Sprintf("%s/%s register write streams", w.Name, in.Name),
		"reg", "writes", "LVP", "InvTop1", "InvTop10", "top value")
	for _, s := range rp.Written() {
		v, c, _ := s.TNV.TopValue()
		tab.Row(s.Name, s.Exec, s.LVP(), s.InvTop(1), s.InvTop(10), fmt.Sprintf("%d:%d", v, c))
	}
	fmt.Print(tab.String())
	return outcome
}

func depMode(rc *runCfg, w *workloads.Workload, in workloads.Input, prog *program.Program, top int) vm.RunOutcome {
	dp := depprof.New(depprof.DefaultOptions())
	_, outcome := runTool(rc, in, prog, dp)
	rep := dp.Report()
	fromStore, forwardable, dom := rep.Totals()
	fmt.Printf("%s/%s: store-fed %s, forwardable %s (window %d), dominant-edge %.3f\n\n",
		w.Name, in.Name, textual.Pct(fromStore), textual.Pct(forwardable), rep.Window, dom)
	tab := textual.New(fmt.Sprintf("top %d loads", top),
		"load", "execs", "store-fed", "forwardable", "edge-inv", "mean-dist")
	for i, l := range rep.Loads {
		if i >= top {
			break
		}
		tab.Row(l.Name, l.Execs,
			textual.Pct(float64(l.FromStore)/float64(l.Execs)),
			textual.Pct(float64(l.Forwardable)/float64(l.Execs)),
			fmt.Sprintf("%.3f", l.EdgeInvariance()),
			fmt.Sprintf("%.1f", l.MeanDistance()))
	}
	fmt.Print(tab.String())
	return outcome
}

func trivMode(rc *runCfg, w *workloads.Workload, in workloads.Input, prog *program.Program, top int) vm.RunOutcome {
	tp := trivprof.New()
	res, outcome := runTool(rc, in, prog, tp)
	rep := tp.Report()
	frac, saved, kinds := rep.Totals()
	savedShare := 0.0
	if res.Cycles > 0 {
		savedShare = float64(saved) / float64(res.Cycles)
	}
	fmt.Printf("%s/%s: trivial fraction %s; %d cycles savable (%s of run)\n",
		w.Name, in.Name, textual.Pct(frac), saved, textual.Pct(savedShare))
	fmt.Printf("kinds: zero=%d one=%d minus-one=%d pow2=%d self=%d\n\n",
		kinds[trivprof.ZeroOperand], kinds[trivprof.OneOperand], kinds[trivprof.MinusOne],
		kinds[trivprof.PowerOfTwo], kinds[trivprof.SelfOperand])
	tab := textual.New(fmt.Sprintf("top %d arithmetic sites", top),
		"site", "op", "execs", "trivial", "saved-cycles")
	for i, s := range rep.Sites {
		if i >= top {
			break
		}
		tab.Row(s.Name, s.Op.Name(), s.Execs, textual.Pct(s.TrivialFraction()), s.SavedCycles())
	}
	fmt.Print(tab.String())
	return outcome
}

func procMode(rc *runCfg, w *workloads.Workload, in workloads.Input, prog *program.Program, top int) vm.RunOutcome {
	pp := procprof.New()
	_, outcome := runTool(rc, in, prog, pp)
	fmt.Printf("%s/%s: %d cycles total; top-3 procedures hold %s\n\n",
		w.Name, in.Name, pp.TotalCycles(), textual.Pct(pp.TopShare(3)))
	tab := textual.New(fmt.Sprintf("top %d procedures by exclusive cycles", top),
		"proc", "calls", "exclusive", "inclusive", "excl-share")
	for i, pt := range pp.Sorted() {
		if i >= top {
			break
		}
		share := 0.0
		if pp.TotalCycles() > 0 {
			share = float64(pt.Exclusive) / float64(pp.TotalCycles())
		}
		tab.Row(pt.Name, pt.Calls, pt.Exclusive, pt.Inclusive, textual.Pct(share))
	}
	fmt.Print(tab.String())
	return outcome
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
