// vprof profiles a benchmark workload and prints the paper-style
// report for the chosen profiled entity.
//
// Usage:
//
//	vprof [-w compress] [-input test|train] [-mode MODE] [-top 20]
//	      [-convergent] [-full] [-o profile.json] [-list]
//	      [-deadline 30s] [-steps N] [-jobs N]
//	      [-retries N] [-job-deadline 10s] [-salvage-partial]
//	      [-checkpoint run.ckpt] [-checkpoint-every N] [-resume run.ckpt]
//	vprof -merge -o merged.json a.vp b.vp ...
//
// Modes:
//
//	inst    value-profile all result-producing instructions (default)
//	loads   value-profile loads only
//	mem     memory-location profile (stores)
//	param   procedure-parameter profile
//	reg     per-register value streams
//	dep     store→load communication profile
//	triv    trivial-computation profile (mul/div operands)
//	proc    procedure cycle attribution
//
// -o writes the instruction profile as JSON (inst/loads modes) for
// later comparison with vdiff.
//
// Robustness: a run that ends early — guest fault, -deadline expiry,
// -steps exhaustion, SIGINT, or SIGTERM — still reports and writes the
// partial profile (the JSON record carries an "outcome" field). With
// -checkpoint the profiler state is snapshotted every -checkpoint-every
// instructions (atomic rename, crash-safe) and a -resume run continues
// from the snapshot; with -salvage-partial a damaged checkpoint is
// repaired (dropping invalid sites) or, failing that, the run restarts
// fresh instead of aborting.
//
// Exit codes: 0 clean, 1 failed (fault, setup error, or output
// mismatch), 3 salvaged (partial results kept by -salvage-partial),
// 124 deadline, 125 step limit, 130 interrupted (SIGINT/SIGTERM).
//
// Parallel runs: -w and -input accept comma-separated lists; the
// cross-product of (workload, input) pairs runs supervised on a
// -jobs-wide worker pool (inst/loads modes only), each job with its
// own profiler and VM, and the reports print in job order. -retries
// re-runs a failed job up to N extra attempts (resuming from its last
// in-memory checkpoint when the profiler options allow), -job-deadline
// bounds each attempt's wall clock, and -salvage-partial keeps the
// best partial profile of a job that exhausts its attempts instead of
// failing the batch. -checkpoint, -resume, and -o are single-run
// features and are rejected with more than one job; the exit code is
// the first failing job's, in job order, or 3 if every shortfall was
// salvaged.
//
// -merge folds two or more saved profile records (same program, same
// table width K) into one: per-site counters add, TNV tables merge by
// value, and the output record carries the source runs' provenance in
// its "merged" field.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"
	"unsafe"

	"valueprof/internal/analysis"
	"valueprof/internal/atom"
	"valueprof/internal/atomicio"
	"valueprof/internal/core"
	"valueprof/internal/depprof"
	"valueprof/internal/memprof"
	"valueprof/internal/parallel"
	"valueprof/internal/paramprof"
	"valueprof/internal/procprof"
	"valueprof/internal/program"
	"valueprof/internal/regprof"
	"valueprof/internal/supervise"
	"valueprof/internal/textual"
	"valueprof/internal/trivprof"
	"valueprof/internal/vm"
	"valueprof/internal/workloads"
)

// runCfg carries the control-plane settings shared by every mode.
type runCfg struct {
	ctx  context.Context
	opts atom.RunOptions

	ckptPath  string
	ckptEvery uint64
	resume    string

	retries     int
	jobDeadline time.Duration
	salvage     bool
}

// exitSalvaged is the exit code for a run that fell short but kept
// usable partial results via -salvage-partial.
const exitSalvaged = 3

func main() {
	wl := flag.String("w", "compress", "workload name (comma-separated list for parallel runs)")
	inputName := flag.String("input", "test", "input set: test or train (comma-separated for parallel runs)")
	mode := flag.String("mode", "inst", "inst|loads|mem|param|reg|dep|triv|proc")
	convergent := flag.Bool("convergent", false, "use convergent (sampling) profiling (inst/loads)")
	pruneStatic := flag.Bool("prune-static", false,
		"skip TNV tables for provably-constant/unreachable pcs (inst/loads)")
	prunePredict := flag.Bool("prune-predict", false,
		"adaptive hook budget from predictive invariance analysis: skip proved sites, down-sample likely ones, full budget on the rest (inst/loads)")
	full := flag.Bool("full", false, "track exact full profiles too (inst/loads)")
	top := flag.Int("top", 20, "show the N hottest entries")
	outFile := flag.String("o", "", "write the profile as JSON (inst/loads)")
	list := flag.Bool("list", false, "list workloads and exit")
	deadline := flag.Duration("deadline", 0, "stop the run after this wall-clock budget (0 = none)")
	steps := flag.Uint64("steps", 0, "stop the run after N instructions (0 = VM default)")
	ckptPath := flag.String("checkpoint", "", "snapshot profiler state to this file during the run (inst/loads)")
	ckptEvery := flag.Uint64("checkpoint-every", core.DefaultCheckpointEvery,
		"instructions between checkpoint snapshots")
	resume := flag.String("resume", "", "resume an interrupted run from this checkpoint file (inst/loads)")
	jobsN := flag.Int("jobs", runtime.GOMAXPROCS(0), "worker-pool width for multi-workload runs (inst/loads)")
	retries := flag.Int("retries", 0, "re-run a failed job up to N extra attempts (multi-workload runs)")
	jobDeadline := flag.Duration("job-deadline", 0, "wall-clock budget per job attempt (multi-workload runs; 0 = none)")
	salvage := flag.Bool("salvage-partial", false,
		"keep partial results instead of failing: repair or restart from a damaged -resume checkpoint; with -jobs, keep the best partial profile of a job that exhausts its retries (exit 3)")
	merge := flag.Bool("merge", false, "merge saved profile records (args: a.vp b.vp ...; requires -o)")
	flag.Usage = func() {
		out := flag.CommandLine.Output()
		fmt.Fprintf(out, "Usage of vprof:\n")
		flag.PrintDefaults()
		fmt.Fprintf(out, "\nExit codes:\n"+
			"  0    clean run\n"+
			"  1    failed: guest fault, setup error, or output mismatch\n"+
			"  3    salvaged: partial results kept by -salvage-partial\n"+
			"  124  wall-clock deadline expired\n"+
			"  125  step limit exhausted\n"+
			"  130  interrupted (SIGINT/SIGTERM); partial profile reported\n")
	}
	flag.Parse()

	if *list {
		for _, w := range workloads.All() {
			fmt.Printf("%-10s %s\n", w.Name, w.Description)
		}
		return
	}

	if *merge {
		mergeMode(flag.Args(), *outFile)
		return
	}

	wNames := strings.Split(*wl, ",")
	inNames := strings.Split(*inputName, ",")

	// SIGINT and SIGTERM both cancel the run context; the run loop
	// stops at the next quantum boundary and the partial profile is
	// salvaged below, so a supervisor's TERM is as graceful as Ctrl-C.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	rc := &runCfg{
		ctx: ctx,
		opts: atom.RunOptions{
			StepLimit: *steps,
		},
		ckptPath:    *ckptPath,
		ckptEvery:   *ckptEvery,
		resume:      *resume,
		retries:     *retries,
		jobDeadline: *jobDeadline,
		salvage:     *salvage,
	}
	if *deadline > 0 {
		rc.opts.Deadline = time.Now().Add(*deadline)
	}

	if len(wNames) > 1 || len(inNames) > 1 {
		if *mode != "inst" && *mode != "loads" {
			fatal(fmt.Errorf("vprof: multiple workloads/inputs need -mode inst or loads, not %q", *mode))
		}
		if rc.ckptPath != "" || rc.resume != "" || *outFile != "" {
			fatal(fmt.Errorf("vprof: -checkpoint, -resume, and -o are single-run flags; drop them or run one workload/input"))
		}
		os.Exit(multiMode(rc, wNames, inNames, *jobsN,
			*mode == "loads", *convergent, *full, *pruneStatic, *prunePredict, *top))
	}

	w, err := workloads.ByName(wNames[0])
	if err != nil {
		fatal(err)
	}
	in, err := inputByName(w, inNames[0])
	if err != nil {
		fatal(err)
	}
	prog, err := w.Compile()
	if err != nil {
		fatal(err)
	}

	var outcome vm.RunOutcome
	switch *mode {
	case "inst", "loads":
		outcome = instMode(rc, w, in, prog, *mode == "loads", *convergent, *full, *pruneStatic, *prunePredict, *top, *outFile)
	case "mem":
		outcome = memMode(rc, w, in, prog, *top)
	case "param":
		outcome = paramMode(rc, w, in, prog, *top)
	case "reg":
		outcome = regMode(rc, w, in, prog)
	case "dep":
		outcome = depMode(rc, w, in, prog, *top)
	case "triv":
		outcome = trivMode(rc, w, in, prog, *top)
	case "proc":
		outcome = procMode(rc, w, in, prog, *top)
	default:
		fatal(fmt.Errorf("vprof: unknown mode %q", *mode))
	}
	os.Exit(exitCode(outcome))
}

// exitCode maps a run outcome to the process exit status, following
// the timeout(1)/shell conventions where one exists.
func exitCode(outcome vm.RunOutcome) int {
	switch outcome {
	case vm.OutcomeCompleted:
		return 0
	case vm.OutcomeDeadline:
		return 124
	case vm.OutcomeLimit:
		return 125
	case vm.OutcomeCancelled:
		return 130
	default:
		return 1
	}
}

// runTool executes an instrumented run under the shared control
// settings. Early termination is not fatal: the partial result comes
// back with a warning so every mode reports what it gathered.
func runTool(rc *runCfg, in workloads.Input, prog *program.Program, tools ...atom.Tool) (*vm.Result, vm.RunOutcome) {
	opts := rc.opts
	opts.Input = in.Args
	res, outcome, err := atom.RunControlled(rc.ctx, prog, opts, tools...)
	warnPartial(outcome, err)
	return res, outcome
}

func warnPartial(outcome vm.RunOutcome, err error) {
	if outcome != vm.OutcomeCompleted {
		fmt.Fprintf(os.Stderr, "vprof: run ended early (%s): %v; reporting partial profile\n", outcome, err)
	}
}

func instMode(rc *runCfg, w *workloads.Workload, in workloads.Input, prog *program.Program, loadsOnly, convergent, full, pruneStatic, prunePredict bool, top int, outFile string) vm.RunOutcome {
	opts := core.Options{TNV: core.DefaultTNVConfig(), TrackFull: full}
	if loadsOnly {
		opts.Filter = core.LoadsOnly
	}
	if convergent && prunePredict {
		fatal(fmt.Errorf("vprof: -prune-predict allocates its own sampling budget; drop -convergent"))
	}
	if convergent {
		cfg := core.DefaultConvergentConfig()
		opts.Convergent = &cfg
	}
	if prunePredict {
		start := time.Now()
		pred := analysis.Predict(prog)
		elapsed := time.Since(start)
		plan := pred.Plan(core.DefaultConvergentConfig())
		opts.AdaptiveBudget = &plan
		n := pred.TierCounts()
		fmt.Fprintf(os.Stderr,
			"vprof: predictive budget: %d proved (skipped), %d likely (sampled), %d uncertain (full); analysis took %s\n",
			n[analysis.TierProved], n[analysis.TierLikely], n[analysis.TierUncertain],
			elapsed.Round(time.Microsecond))
	}
	if pruneStatic {
		start := time.Now()
		cn := analysis.AnalyzeConstness(prog)
		elapsed := time.Since(start)
		opts.Prune = cn.ShouldPrune
		rep := cn.Prune(opts.Filter)
		siteBytes := int(unsafe.Sizeof(core.SiteStats{})) +
			opts.TNV.Size*int(unsafe.Sizeof(core.TNVEntry{}))
		fmt.Fprintf(os.Stderr,
			"vprof: static prune: %d of %d candidate sites need no table (%d const, %d unreached; %d more invariant), ~%d bytes of site state avoided; analysis took %s\n",
			rep.Pruned(), rep.Candidates, rep.Const, rep.Unreached, rep.Invariant,
			rep.Pruned()*siteBytes, elapsed.Round(time.Microsecond))
	}
	vp, err := core.NewValueProfiler(opts)
	if err != nil {
		fatal(err)
	}

	var ck *core.Checkpoint
	if rc.resume != "" {
		ck, err = core.LoadCheckpoint(rc.resume)
		if err != nil && rc.salvage {
			// Damaged checkpoint under -salvage-partial: repair what the
			// tolerant loader can vouch for, and when even that is not
			// exactly resumable (seeding it would double-count once the
			// run restarts from instruction zero), fall back to a fresh
			// start rather than aborting.
			repaired, lrep, rerr := core.LoadCheckpointPolicy(rc.resume, core.RepairDrop)
			switch {
			case rerr != nil:
				fmt.Fprintf(os.Stderr, "vprof: checkpoint %s unusable (%v); starting fresh\n", rc.resume, rerr)
				ck = nil
			case !lrep.Resumable:
				fmt.Fprintf(os.Stderr, "vprof: checkpoint %s damaged beyond exact resume (%s); starting fresh\n",
					rc.resume, strings.Join(lrep.Problems, "; "))
				ck = nil
			default:
				if lrep.SitesDropped > 0 {
					fmt.Fprintf(os.Stderr, "vprof: checkpoint repaired: %d invalid sites dropped\n", lrep.SitesDropped)
				}
				ck = repaired
			}
		} else if err != nil {
			fatal(fmt.Errorf("vprof: loading checkpoint: %w", err))
		}
	}
	if ck != nil {
		// A checkpoint restores raw VM state; resuming it under a
		// different program or input would execute garbage.
		if ck.Program != w.Name || ck.Input != in.Name {
			fatal(fmt.Errorf("vprof: checkpoint is for %s/%s, not %s/%s",
				ck.Program, ck.Input, w.Name, in.Name))
		}
		if err := vp.Seed(ck); err != nil {
			fatal(fmt.Errorf("vprof: resuming: %w", err))
		}
		fmt.Fprintf(os.Stderr, "vprof: resuming %s/%s from instruction %d (%d sites)\n",
			ck.Program, ck.Input, ck.InstCount(), len(ck.Sites))
	}

	tools := []atom.Tool{atom.Tool(vp)}
	var ckpt *core.Checkpointer
	if rc.ckptPath != "" {
		ckpt = core.NewCheckpointer(vp, rc.ckptPath, rc.ckptEvery, w.Name, in.Name)
		tools = append(tools, ckpt)
	}

	runOpts := rc.opts
	runOpts.Input = in.Args
	v := atom.Prepare(prog, runOpts, tools...)
	if ck != nil {
		if err := ck.RestoreVM(v); err != nil {
			fatal(fmt.Errorf("vprof: restoring VM state: %w", err))
		}
	}
	outcome, err := v.RunControlled(rc.ctx)
	res := vm.ResultOf(v, outcome)
	warnPartial(outcome, err)

	// A final snapshot salvages the interrupted run for -resume; taken
	// before reporting so a crash while printing loses nothing.
	if ckpt != nil && outcome != vm.OutcomeCompleted {
		if err := ckpt.SnapshotNow(v); err != nil {
			fmt.Fprintf(os.Stderr, "vprof: final checkpoint failed: %v\n", err)
		} else {
			fmt.Fprintf(os.Stderr, "vprof: checkpoint saved to %s; resume with -resume %s\n",
				rc.ckptPath, rc.ckptPath)
		}
	}
	if ckpt != nil && ckpt.Err() != nil {
		fmt.Fprintf(os.Stderr, "vprof: warning: a checkpoint snapshot failed during the run: %v\n", ckpt.Err())
	}

	pr := vp.Profile()
	reportInst(w.Name+"/"+in.Name, pr, res, prog, top)

	if outFile != "" {
		rec := pr.Record(w.Name, in.Name)
		if outcome != vm.OutcomeCompleted {
			rec.Outcome = outcome.String()
		}
		err := atomicio.WriteFile(outFile, func(f io.Writer) error {
			return rec.WriteJSON(f)
		})
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "vprof: wrote %s\n", outFile)
	}
	return outcome
}

// reportInst prints the paper-style instruction-profile report: the
// aggregate line and the hottest sites. Shared by the single-run
// (instMode) and worker-pool (multiMode) paths.
func reportInst(name string, pr *core.Profile, res *vm.Result, prog *program.Program, top int) {
	m := pr.Aggregate()

	fmt.Printf("%s: %d instructions executed, %d sites profiled\n",
		name, res.InstCount, m.Sites)
	fmt.Printf("weighted: LVP %.3f  Inv-Top(1) %.3f  Inv-Top(%d) %.3f  %%zero %.3f  duty %.3f\n\n",
		m.LVP, m.InvTop1, pr.K, m.InvTopN, m.PctZero, pr.DutyCycle())

	tab := textual.New(fmt.Sprintf("top %d sites by executions", top),
		"site", "inst", "execs", "LVP", "InvTop1", "class", "top values")
	th := core.DefaultThresholds()
	for _, s := range pr.TopSites(top) {
		topvals := ""
		for i, e := range s.TNV.Top(3) {
			if i > 0 {
				topvals += " "
			}
			topvals += fmt.Sprintf("%d:%d", e.Value, e.Count)
		}
		tab.Row(s.Name, prog.Code[s.PC].String(), s.Exec,
			s.LVP(), s.InvTop(1), s.Classify(th).String(), topvals)
	}
	fmt.Print(tab.String())
}

// multiMode runs the (workload × input) cross-product supervised on a
// jobs-wide worker pool — each job with its own profiler and VM,
// retried per -retries with checkpoint resume — and prints the per-run
// reports in job order. Returns the process exit code: the first
// failing job's, following the serial-loop convention, or exitSalvaged
// when every shortfall was absorbed by -salvage-partial.
func multiMode(rc *runCfg, wNames, inNames []string, jobsN int, loadsOnly, convergent, full, pruneStatic, prunePredict bool, top int) int {
	if convergent && prunePredict {
		fatal(fmt.Errorf("vprof: -prune-predict allocates its own sampling budget; drop -convergent"))
	}
	var jobList []parallel.Job
	for _, wn := range wNames {
		w, err := workloads.ByName(strings.TrimSpace(wn))
		if err != nil {
			fatal(err)
		}
		prog, err := w.Compile()
		if err != nil {
			fatal(err)
		}
		opts := core.Options{TNV: core.DefaultTNVConfig(), TrackFull: full}
		if loadsOnly {
			opts.Filter = core.LoadsOnly
		}
		if convergent {
			cfg := core.DefaultConvergentConfig()
			opts.Convergent = &cfg
		}
		if pruneStatic {
			// Constness is per program: analyzed once here, serially,
			// then shared by every input of this workload.
			opts.Prune = analysis.AnalyzeConstness(prog).ShouldPrune
		}
		if prunePredict {
			plan := analysis.Predict(prog).Plan(core.DefaultConvergentConfig())
			opts.AdaptiveBudget = &plan
		}
		for _, inn := range inNames {
			in, err := inputByName(w, strings.TrimSpace(inn))
			if err != nil {
				fatal(err)
			}
			jobList = append(jobList, parallel.Job{
				Workload: w, Input: in, Options: opts, Run: rc.opts,
			})
		}
	}

	sjobs := make([]supervise.Job, len(jobList))
	for i := range jobList {
		sj, err := supervise.JobOf(jobList[i])
		if err != nil {
			fatal(err)
		}
		sjobs[i] = sj
	}
	res := supervise.Run(rc.ctx, jobsN, sjobs, supervise.Policy{
		MaxAttempts:     rc.retries + 1,
		AttemptDeadline: rc.jobDeadline,
		BackoffBase:     50 * time.Millisecond,
		Resume:          true,
		SalvagePartial:  rc.salvage,
	})

	code := 0
	salvaged := false
	for i := range res.Jobs {
		r := &res.Jobs[i]
		name := r.Job.Name + "/" + r.Job.InputName
		if r.Profile == nil {
			fmt.Fprintf(os.Stderr, "vprof: %s: %v\n", name, r.Err)
			if code == 0 {
				if code = exitCode(r.Outcome); code == 0 {
					code = 1
				}
			}
			continue
		}
		switch {
		case r.State == supervise.StateSalvaged:
			salvaged = true
			fmt.Fprintf(os.Stderr, "vprof: %s: salvaged partial profile after %d attempts (%s): %v\n",
				name, r.Attempts, r.Outcome, r.Err)
		case r.Attempts > 1:
			fmt.Fprintf(os.Stderr, "vprof: %s: recovered after %d attempts (%d resumed from checkpoint)\n",
				name, r.Attempts, r.Resumed)
		}
		reportInst(name, r.Profile, r.Exec, sjobs[i].Prog, top)
		fmt.Println()
	}
	if code == 0 && salvaged {
		code = exitSalvaged
	}
	return code
}

// mergeMode folds saved profile records into one and writes the merged
// record (with provenance) to the -o file.
func mergeMode(paths []string, outFile string) {
	if len(paths) < 2 {
		fatal(fmt.Errorf("vprof: -merge needs at least two profile files, got %d", len(paths)))
	}
	if outFile == "" {
		fatal(fmt.Errorf("vprof: -merge requires -o for the merged record"))
	}
	var acc *core.ProfileRecord
	for _, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			fatal(err)
		}
		rec, err := core.ReadProfileRecord(f)
		f.Close()
		if err != nil {
			fatal(fmt.Errorf("vprof: %s: %w", p, err))
		}
		if acc == nil {
			acc = rec
			continue
		}
		acc, err = core.MergeRecords(acc, rec)
		if err != nil {
			fatal(fmt.Errorf("vprof: merging %s: %w", p, err))
		}
	}
	err := atomicio.WriteFile(outFile, func(f io.Writer) error {
		return acc.WriteJSON(f)
	})
	if err != nil {
		fatal(err)
	}
	var execs uint64
	for i := range acc.Sites {
		execs += acc.Sites[i].Exec
	}
	fmt.Printf("merged %d runs of %s: %d sites, %d profiled executions, duty %.3f\n",
		len(paths), acc.Program, len(acc.Sites), execs, acc.DutyCycle())
	for _, src := range acc.Merged {
		fmt.Printf("  from %s\n", src)
	}
	fmt.Fprintf(os.Stderr, "vprof: wrote %s\n", outFile)
}

func inputByName(w *workloads.Workload, name string) (workloads.Input, error) {
	switch name {
	case "test":
		return w.Test, nil
	case "train":
		return w.Train, nil
	}
	return workloads.Input{}, fmt.Errorf("vprof: unknown input %q (test or train)", name)
}

func memMode(rc *runCfg, w *workloads.Workload, in workloads.Input, prog *program.Program, top int) vm.RunOutcome {
	mp := memprof.New(memprof.Options{TNV: core.DefaultTNVConfig()})
	_, outcome := runTool(rc, in, prog, mp)
	rep := mp.Report()
	m := rep.Aggregate(nil)
	byLoc, byAccess := rep.InvariantFraction(0.9)
	fmt.Printf("%s/%s: %d locations written, %d stores; InvTop1 %.3f\n",
		w.Name, in.Name, len(rep.Locations), m.Execs, m.InvTop1)
	fmt.Printf("≥90%%-single-valued: %s of locations, %s of accesses\n\n",
		textual.Pct(byLoc), textual.Pct(byAccess))
	tab := textual.New(fmt.Sprintf("top %d locations", top),
		"addr", "region", "writes", "reads", "InvTop1", "top value")
	for _, l := range rep.TopLocations(top) {
		v, c, _ := l.Stats.TNV.TopValue()
		tab.Row(fmt.Sprintf("%#x", l.Addr), l.Region.String(), l.Writes, l.Reads,
			l.Stats.InvTop(1), fmt.Sprintf("%d:%d", v, c))
	}
	fmt.Print(tab.String())
	return outcome
}

func paramMode(rc *runCfg, w *workloads.Workload, in workloads.Input, prog *program.Program, top int) vm.RunOutcome {
	pp := paramprof.New(paramprof.Options{TNV: core.DefaultTNVConfig()})
	_, outcome := runTool(rc, in, prog, pp)
	tab := textual.New(fmt.Sprintf("%s/%s procedure parameters", w.Name, in.Name),
		"proc", "calls", "arg0-inv", "arg1-inv", "arg2-inv", "tuple-inv")
	for i, p := range pp.Report().Procs {
		if i >= top {
			break
		}
		cells := []any{p.Name, p.Calls}
		for j := 0; j < 3; j++ {
			if j < len(p.Args) {
				cells = append(cells, fmt.Sprintf("%.3f", p.Args[j].InvTop(1)))
			} else {
				cells = append(cells, "-")
			}
		}
		cells = append(cells, fmt.Sprintf("%.3f", p.AllArgsInvariance()))
		tab.Row(cells...)
	}
	fmt.Print(tab.String())
	return outcome
}

func regMode(rc *runCfg, w *workloads.Workload, in workloads.Input, prog *program.Program) vm.RunOutcome {
	rp := regprof.New(core.DefaultTNVConfig(), false)
	_, outcome := runTool(rc, in, prog, rp)
	tab := textual.New(fmt.Sprintf("%s/%s register write streams", w.Name, in.Name),
		"reg", "writes", "LVP", "InvTop1", "InvTop10", "top value")
	for _, s := range rp.Written() {
		v, c, _ := s.TNV.TopValue()
		tab.Row(s.Name, s.Exec, s.LVP(), s.InvTop(1), s.InvTop(10), fmt.Sprintf("%d:%d", v, c))
	}
	fmt.Print(tab.String())
	return outcome
}

func depMode(rc *runCfg, w *workloads.Workload, in workloads.Input, prog *program.Program, top int) vm.RunOutcome {
	dp := depprof.New(depprof.DefaultOptions())
	_, outcome := runTool(rc, in, prog, dp)
	rep := dp.Report()
	fromStore, forwardable, dom := rep.Totals()
	fmt.Printf("%s/%s: store-fed %s, forwardable %s (window %d), dominant-edge %.3f\n\n",
		w.Name, in.Name, textual.Pct(fromStore), textual.Pct(forwardable), rep.Window, dom)
	tab := textual.New(fmt.Sprintf("top %d loads", top),
		"load", "execs", "store-fed", "forwardable", "edge-inv", "mean-dist")
	for i, l := range rep.Loads {
		if i >= top {
			break
		}
		tab.Row(l.Name, l.Execs,
			textual.Pct(float64(l.FromStore)/float64(l.Execs)),
			textual.Pct(float64(l.Forwardable)/float64(l.Execs)),
			fmt.Sprintf("%.3f", l.EdgeInvariance()),
			fmt.Sprintf("%.1f", l.MeanDistance()))
	}
	fmt.Print(tab.String())
	return outcome
}

func trivMode(rc *runCfg, w *workloads.Workload, in workloads.Input, prog *program.Program, top int) vm.RunOutcome {
	tp := trivprof.New()
	res, outcome := runTool(rc, in, prog, tp)
	rep := tp.Report()
	frac, saved, kinds := rep.Totals()
	savedShare := 0.0
	if res.Cycles > 0 {
		savedShare = float64(saved) / float64(res.Cycles)
	}
	fmt.Printf("%s/%s: trivial fraction %s; %d cycles savable (%s of run)\n",
		w.Name, in.Name, textual.Pct(frac), saved, textual.Pct(savedShare))
	fmt.Printf("kinds: zero=%d one=%d minus-one=%d pow2=%d self=%d\n\n",
		kinds[trivprof.ZeroOperand], kinds[trivprof.OneOperand], kinds[trivprof.MinusOne],
		kinds[trivprof.PowerOfTwo], kinds[trivprof.SelfOperand])
	tab := textual.New(fmt.Sprintf("top %d arithmetic sites", top),
		"site", "op", "execs", "trivial", "saved-cycles")
	for i := 0; i < top && i < len(rep.Sites); i++ {
		s := rep.Sites[i]
		tab.Row(s.Name, s.Op.Name(), s.Execs, textual.Pct(s.TrivialFraction()), s.SavedCycles())
	}
	fmt.Print(tab.String())
	return outcome
}

func procMode(rc *runCfg, w *workloads.Workload, in workloads.Input, prog *program.Program, top int) vm.RunOutcome {
	pp := procprof.New()
	_, outcome := runTool(rc, in, prog, pp)
	fmt.Printf("%s/%s: %d cycles total; top-3 procedures hold %s\n\n",
		w.Name, in.Name, pp.TotalCycles(), textual.Pct(pp.TopShare(3)))
	tab := textual.New(fmt.Sprintf("top %d procedures by exclusive cycles", top),
		"proc", "calls", "exclusive", "inclusive", "excl-share")
	for i, pt := range pp.Sorted() {
		if i >= top {
			break
		}
		share := 0.0
		if pp.TotalCycles() > 0 {
			share = float64(pt.Exclusive) / float64(pp.TotalCycles())
		}
		tab.Row(pt.Name, pt.Calls, pt.Exclusive, pt.Inclusive, textual.Pct(share))
	}
	fmt.Print(tab.String())
	return outcome
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
