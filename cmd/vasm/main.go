// vasm assembles VRISC assembly into a binary program image.
//
// Usage:
//
//	vasm [-o out.vx] [-d] prog.s
//
// -o writes a full VPX1 program image (code, data, symbols) executable
// with vrun; -d prints the disassembled listing.
package main

import (
	"flag"
	"fmt"
	"os"

	"valueprof/internal/analysis"
	"valueprof/internal/asm"
	"valueprof/internal/atomicio"
)

func main() {
	out := flag.String("o", "", "write a VPX1 program image to this file")
	dis := flag.Bool("d", false, "print the disassembled listing")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: vasm [-o out.vx] [-d] prog.s")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	prog, err := asm.Assemble(string(src))
	if err != nil {
		fatal(err)
	}
	// Verify before emitting anything: errors block the image, warnings
	// (unreachable code, use-before-def, stack imbalance) just print.
	diags := analysis.Verify(prog)
	for _, d := range diags {
		if d.Sev != analysis.SevError {
			fmt.Fprintf(os.Stderr, "vasm: %s\n", d)
		}
	}
	if err := diags.Err(); err != nil {
		fatal(err)
	}
	if *dis {
		fmt.Print(prog.Disassemble())
	}
	if *out != "" {
		// Atomic write: a crash mid-save never leaves a torn image at
		// the destination.
		if err := atomicio.WriteFile(*out, prog.Save); err != nil {
			fatal(err)
		}
	}
	fmt.Fprintf(os.Stderr, "vasm: %d instructions, %d data bytes, %d procedures\n",
		len(prog.Code), len(prog.Data), len(prog.Procs))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
