// vlint runs the static bytecode verifier and its companion analyses
// over a VRISC program.
//
// Usage:
//
//	vlint [-strict] [-facts] [-gvn] [-intervals] [-loops] [-oracle profile.json] prog.s|prog.vx
//	vlint [-strict] [flags] -w compress
//	vlint -all
//
// A .s argument is assembled, a .vx argument is loaded as an image, and
// -w compiles a named benchmark workload. -all verifies every workload.
//
// -facts prints the constness lattice classification of each
// result-producing instruction (const/invariant/varying/unreached).
// -gvn prints provably redundant computations. -intervals prints the
// value-range dataflow facts for each site (non-trivial ranges only),
// and -loops prints the natural-loop nest with trip-count bounds and
// execution-frequency estimates. -oracle cross-checks a saved vprof
// JSON profile against the static facts: any site whose observed
// values contradict a static proof is reported.
//
// Branch arms the interval analysis proves statically unreachable are
// always reported as warnings; under -strict they fail the lint.
//
// Exit codes: 0 clean, 1 verification errors (with -strict, warnings
// and dead branch arms too), 2 usage or I/O error, 3 oracle
// contradictions.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"valueprof/internal/analysis"
	"valueprof/internal/asm"
	"valueprof/internal/core"
	"valueprof/internal/program"
	"valueprof/internal/workloads"
)

func main() {
	wl := flag.String("w", "", "verify this benchmark workload instead of a file")
	all := flag.Bool("all", false, "verify every benchmark workload")
	strict := flag.Bool("strict", false, "treat warnings (including statically dead branch arms) as errors")
	facts := flag.Bool("facts", false, "print per-instruction constness facts")
	gvn := flag.Bool("gvn", false, "print provably redundant computations")
	intervals := flag.Bool("intervals", false, "print per-site value-range facts")
	loops := flag.Bool("loops", false, "print loop nest, trip counts, and frequency estimates")
	oracle := flag.String("oracle", "", "cross-check this vprof JSON profile against static facts")
	flag.Parse()

	if *all {
		exit := 0
		for _, w := range workloads.All() {
			prog, err := w.Compile()
			if err != nil {
				fmt.Fprintf(os.Stderr, "vlint: %s: %v\n", w.Name, err)
				os.Exit(2)
			}
			if code := lint(w.Name, prog, lintOpts{strict: *strict}); code > exit {
				exit = code
			}
		}
		os.Exit(exit)
	}

	var prog *program.Program
	var name string
	switch {
	case *wl != "":
		w, err := workloads.ByName(*wl)
		if err != nil {
			fatal(err)
		}
		prog, err = w.Compile()
		if err != nil {
			fatal(err)
		}
		name = w.Name
	case flag.NArg() == 1:
		path := flag.Arg(0)
		var err error
		prog, err = loadProgram(path)
		if err != nil {
			fatal(err)
		}
		name = path
	default:
		fmt.Fprintln(os.Stderr, "usage: vlint [-strict] [-facts] [-gvn] [-oracle profile.json] prog.s|prog.vx | -w workload | -all")
		os.Exit(2)
	}
	os.Exit(lint(name, prog, lintOpts{
		strict: *strict, facts: *facts, gvn: *gvn,
		intervals: *intervals, loops: *loops, oracle: *oracle,
	}))
}

type lintOpts struct {
	strict    bool
	facts     bool
	gvn       bool
	intervals bool
	loops     bool
	oracle    string
}

// loadProgram reads a program from assembly source or a VPX1 image,
// chosen by file extension (anything but .vx is treated as assembly).
func loadProgram(path string) (*program.Program, error) {
	if strings.HasSuffix(path, ".vx") {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return program.Load(f)
	}
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return asm.Assemble(string(src))
}

func lint(name string, prog *program.Program, opts lintOpts) int {
	diags := analysis.Verify(prog)
	for _, d := range diags {
		fmt.Printf("%s: %s\n", name, d)
	}
	code := 0
	if diags.HasErrors() || (opts.strict && len(diags) > 0) {
		code = 1
	}
	if len(diags) == 0 {
		fmt.Printf("%s: ok (%d instructions, %d procedures)\n", name, len(prog.Code), len(prog.Procs))
	}
	if diags.HasErrors() {
		// The deeper analyses assume a well-formed image.
		return code
	}

	var cn *analysis.Constness
	constness := func() *analysis.Constness {
		if cn == nil {
			cn = analysis.AnalyzeConstness(prog)
		}
		return cn
	}

	if opts.facts {
		printFacts(name, prog, constness())
	}
	if opts.gvn {
		for _, r := range analysis.ForProgram(prog).GVN() {
			fmt.Printf("%s: pc %d (%s): recomputes the value of pc %d (%s)\n",
				name, r.PC, prog.Code[r.PC], r.With, prog.Code[r.With])
		}
	}

	ivs := analysis.AnalyzeIntervals(prog)
	if opts.intervals {
		printIntervals(name, prog, ivs)
	}
	if opts.loops {
		printLoops(name, prog, analysis.AnalyzeLoops(prog))
	}
	// Statically dead branch arms are latent bugs (a condition that can
	// never go one way): always warn, fail only under -strict.
	for _, de := range ivs.DeadEdges() {
		arm := "fall-through"
		if de.Taken {
			arm = "taken"
		}
		fmt.Printf("%s: warning: %s pc %d (%s): %s arm is statically unreachable\n",
			name, prog.SiteName(de.PC), de.PC, prog.Code[de.PC], arm)
		if opts.strict && code < 1 {
			code = 1
		}
	}

	if oraclePath := opts.oracle; oraclePath != "" {
		f, err := os.Open(oraclePath)
		if err != nil {
			fatal(err)
		}
		rec, err := core.ReadProfileRecord(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		contras := analysis.CheckRecord(constness(), rec)
		for _, c := range contras {
			fmt.Printf("%s: ORACLE: %s\n", name, c)
		}
		rep := constness().Prune(nil)
		fmt.Printf("%s: oracle: %d sites checked against %d static proofs (%d const, %d unreached, %d invariant): %d contradictions\n",
			name, len(rec.Sites), rep.Pruned()+rep.Invariant, rep.Const, rep.Unreached, rep.Invariant, len(contras))
		if len(contras) > 0 {
			return 3
		}
	}
	return code
}

func printFacts(name string, prog *program.Program, cn *analysis.Constness) {
	rep := cn.Prune(nil)
	mode := "whole-program dataflow"
	if cn.Degraded {
		mode = "syntactic only (program has indirect jumps)"
	}
	fmt.Printf("%s: constness (%s): %d candidates: %d const (%d zero), %d invariant, %d unreached\n",
		name, mode, rep.Candidates, rep.Const, rep.Zero, rep.Invariant, rep.Unreached)
	for pc, in := range prog.Code {
		if !in.Op.HasDest() {
			continue
		}
		switch cn.Kind(pc) {
		case analysis.KindConst:
			v, _ := cn.ConstValue(pc)
			fmt.Printf("%s: %-12s pc %-5d %-24s = const %d\n", name, prog.SiteName(pc), pc, in, v)
		case analysis.KindInvariant:
			fmt.Printf("%s: %-12s pc %-5d %-24s = invariant\n", name, prog.SiteName(pc), pc, in)
		case analysis.KindUnreached:
			fmt.Printf("%s: %-12s pc %-5d %-24s = unreached\n", name, prog.SiteName(pc), pc, in)
		}
	}
}

// printIntervals dumps the non-trivial value-range facts in pc order.
func printIntervals(name string, prog *program.Program, ivs *analysis.Intervals) {
	mode := "whole-program dataflow"
	if ivs.Degraded {
		mode = "syntactic only (program has indirect control flow)"
	}
	interesting := 0
	for pc := range prog.Code {
		if iv, ok := ivs.At(pc); ok && !iv.IsTop() {
			interesting++
		}
	}
	fmt.Printf("%s: intervals (%s): %d sites with a non-trivial range\n", name, mode, interesting)
	for pc, in := range prog.Code {
		iv, ok := ivs.At(pc)
		if !ok || iv.IsTop() {
			continue
		}
		switch {
		case iv.IsEmpty():
			fmt.Printf("%s: %-12s pc %-5d %-24s : unreachable\n", name, prog.SiteName(pc), pc, in)
		default:
			if v, single := iv.Singleton(); single {
				fmt.Printf("%s: %-12s pc %-5d %-24s = %d\n", name, prog.SiteName(pc), pc, in, v)
				continue
			}
			fmt.Printf("%s: %-12s pc %-5d %-24s in %s\n", name, prog.SiteName(pc), pc, in, iv)
		}
	}
}

// printLoops dumps the natural-loop nest with trip bounds and the
// frequency model's per-body estimate.
func printLoops(name string, prog *program.Program, li *analysis.LoopInfo) {
	mode := "whole-program"
	if li.Degraded {
		mode = "degraded (program has indirect control flow)"
	}
	fmt.Printf("%s: loops (%s): %d natural loops\n", name, mode, len(li.Loops))
	for i, l := range li.Loops {
		hpc := li.HeaderPC(l)
		trip := "unknown"
		if l.Trip > 0 {
			trip = fmt.Sprintf("%d", l.Trip)
			if !l.TripExact {
				trip = "<=" + trip
			}
		}
		fmt.Printf("%s: loop %d: header %s pc %d, depth %d, %d blocks, trip %s, body freq %.0f\n",
			name, i, prog.SiteName(hpc), hpc, l.Depth, len(l.Blocks), trip, li.FreqOf(hpc))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(2)
}
