// vlint runs the static bytecode verifier and its companion analyses
// over a VRISC program.
//
// Usage:
//
//	vlint [-strict] [-facts] [-gvn] [-oracle profile.json] prog.s|prog.vx
//	vlint [-strict] [flags] -w compress
//	vlint -all
//
// A .s argument is assembled, a .vx argument is loaded as an image, and
// -w compiles a named benchmark workload. -all verifies every workload.
//
// -facts prints the constness lattice classification of each
// result-producing instruction (const/invariant/varying/unreached).
// -gvn prints provably redundant computations. -oracle cross-checks a
// saved vprof JSON profile against the static facts: any site whose
// observed values contradict a static proof is reported.
//
// Exit codes: 0 clean, 1 verification errors (with -strict, warnings
// too), 2 usage or I/O error, 3 oracle contradictions.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"valueprof/internal/analysis"
	"valueprof/internal/asm"
	"valueprof/internal/core"
	"valueprof/internal/program"
	"valueprof/internal/workloads"
)

func main() {
	wl := flag.String("w", "", "verify this benchmark workload instead of a file")
	all := flag.Bool("all", false, "verify every benchmark workload")
	strict := flag.Bool("strict", false, "treat warnings as errors")
	facts := flag.Bool("facts", false, "print per-instruction constness facts")
	gvn := flag.Bool("gvn", false, "print provably redundant computations")
	oracle := flag.String("oracle", "", "cross-check this vprof JSON profile against static facts")
	flag.Parse()

	if *all {
		exit := 0
		for _, w := range workloads.All() {
			prog, err := w.Compile()
			if err != nil {
				fmt.Fprintf(os.Stderr, "vlint: %s: %v\n", w.Name, err)
				os.Exit(2)
			}
			if code := lint(w.Name, prog, *strict, false, false, ""); code > exit {
				exit = code
			}
		}
		os.Exit(exit)
	}

	var prog *program.Program
	var name string
	switch {
	case *wl != "":
		w, err := workloads.ByName(*wl)
		if err != nil {
			fatal(err)
		}
		prog, err = w.Compile()
		if err != nil {
			fatal(err)
		}
		name = w.Name
	case flag.NArg() == 1:
		path := flag.Arg(0)
		var err error
		prog, err = loadProgram(path)
		if err != nil {
			fatal(err)
		}
		name = path
	default:
		fmt.Fprintln(os.Stderr, "usage: vlint [-strict] [-facts] [-gvn] [-oracle profile.json] prog.s|prog.vx | -w workload | -all")
		os.Exit(2)
	}
	os.Exit(lint(name, prog, *strict, *facts, *gvn, *oracle))
}

// loadProgram reads a program from assembly source or a VPX1 image,
// chosen by file extension (anything but .vx is treated as assembly).
func loadProgram(path string) (*program.Program, error) {
	if strings.HasSuffix(path, ".vx") {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return program.Load(f)
	}
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return asm.Assemble(string(src))
}

func lint(name string, prog *program.Program, strict, facts, gvn bool, oraclePath string) int {
	diags := analysis.Verify(prog)
	for _, d := range diags {
		fmt.Printf("%s: %s\n", name, d)
	}
	code := 0
	if diags.HasErrors() || (strict && len(diags) > 0) {
		code = 1
	}
	if len(diags) == 0 {
		fmt.Printf("%s: ok (%d instructions, %d procedures)\n", name, len(prog.Code), len(prog.Procs))
	}
	if diags.HasErrors() {
		// The deeper analyses assume a well-formed image.
		return code
	}

	var cn *analysis.Constness
	constness := func() *analysis.Constness {
		if cn == nil {
			cn = analysis.AnalyzeConstness(prog)
		}
		return cn
	}

	if facts {
		printFacts(name, prog, constness())
	}
	if gvn {
		for _, r := range analysis.ForProgram(prog).GVN() {
			fmt.Printf("%s: pc %d (%s): recomputes the value of pc %d (%s)\n",
				name, r.PC, prog.Code[r.PC], r.With, prog.Code[r.With])
		}
	}
	if oraclePath != "" {
		f, err := os.Open(oraclePath)
		if err != nil {
			fatal(err)
		}
		rec, err := core.ReadProfileRecord(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		contras := analysis.CheckRecord(constness(), rec)
		for _, c := range contras {
			fmt.Printf("%s: ORACLE: %s\n", name, c)
		}
		rep := constness().Prune(nil)
		fmt.Printf("%s: oracle: %d sites checked against %d static proofs (%d const, %d unreached, %d invariant): %d contradictions\n",
			name, len(rec.Sites), rep.Pruned()+rep.Invariant, rep.Const, rep.Unreached, rep.Invariant, len(contras))
		if len(contras) > 0 {
			return 3
		}
	}
	return code
}

func printFacts(name string, prog *program.Program, cn *analysis.Constness) {
	rep := cn.Prune(nil)
	mode := "whole-program dataflow"
	if cn.Degraded {
		mode = "syntactic only (program has indirect jumps)"
	}
	fmt.Printf("%s: constness (%s): %d candidates: %d const (%d zero), %d invariant, %d unreached\n",
		name, mode, rep.Candidates, rep.Const, rep.Zero, rep.Invariant, rep.Unreached)
	for pc, in := range prog.Code {
		if !in.Op.HasDest() {
			continue
		}
		switch cn.Kind(pc) {
		case analysis.KindConst:
			v, _ := cn.ConstValue(pc)
			fmt.Printf("%s: %-12s pc %-5d %-24s = const %d\n", name, prog.SiteName(pc), pc, in, v)
		case analysis.KindInvariant:
			fmt.Printf("%s: %-12s pc %-5d %-24s = invariant\n", name, prog.SiteName(pc), pc, in)
		case analysis.KindUnreached:
			fmt.Printf("%s: %-12s pc %-5d %-24s = unreached\n", name, prog.SiteName(pc), pc, in)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(2)
}
