// vspec runs the Chapter X specialization pipeline on a workload from
// the command line: parameter-profile, pick (or accept) a candidate,
// specialize, verify the output, and report the speedup.
//
// Usage:
//
//	vspec -w imagef                     # auto-discover the candidate
//	vspec -w imagef -proc pix -arg 0    # explicit procedure/argument
//	vspec -w imagef -proc pix -arg 0 -value 4096
package main

import (
	"flag"
	"fmt"
	"os"

	"valueprof/internal/atom"
	"valueprof/internal/core"
	"valueprof/internal/isa"
	"valueprof/internal/paramprof"
	"valueprof/internal/specialize"
	"valueprof/internal/vm"
	"valueprof/internal/workloads"
)

func main() {
	wl := flag.String("w", "", "workload name")
	procName := flag.String("proc", "", "procedure to specialize (default: auto-discover)")
	argIdx := flag.Int("arg", -1, "argument index to specialize on (with -proc)")
	value := flag.Int64("value", 1<<62, "guard value (default: profiled top value)")
	minCalls := flag.Uint64("mincalls", 500, "auto-discovery: minimum call count")
	minInv := flag.Float64("mininv", 0.6, "auto-discovery: minimum argument invariance")
	flag.Parse()
	if *wl == "" {
		fmt.Fprintln(os.Stderr, "usage: vspec -w workload [-proc name -arg i [-value v]]")
		os.Exit(2)
	}
	w, err := workloads.ByName(*wl)
	if err != nil {
		fatal(err)
	}
	prog, err := w.Compile()
	if err != nil {
		fatal(err)
	}
	base, err := vm.Execute(prog, w.Test.Args)
	if err != nil {
		fatal(err)
	}

	// Parameter profile (always run: it supplies the value and reports
	// the invariance evidence).
	pp := paramprof.New(paramprof.Options{TNV: core.DefaultTNVConfig()})
	if _, err := atom.Run(prog, w.Test.Args, false, pp); err != nil {
		fatal(err)
	}
	rep := pp.Report()

	proc, arg, val := *procName, *argIdx, *value
	if proc == "" {
		// Auto-discover: hottest procedure argument above the floor.
		for _, p := range rep.Procs {
			if p.Calls < *minCalls || p.Name == "main" || p.Name == "_main" {
				continue
			}
			for i, a := range p.Args {
				v, _, ok := a.TNV.TopValue()
				if ok && a.InvTop(1) >= *minInv && v >= -(1<<31) && v <= (1<<31)-1 {
					proc, arg, val = p.Name, i, v
					break
				}
			}
			if proc != "" {
				break
			}
		}
		if proc == "" {
			fatal(fmt.Errorf("vspec: no candidate in %s (calls ≥ %d, invariance ≥ %.2f); try -proc/-arg",
				w.Name, *minCalls, *minInv))
		}
	}
	pr := rep.Proc(proc)
	if pr == nil {
		fatal(fmt.Errorf("vspec: procedure %q not profiled", proc))
	}
	if arg < 0 || arg >= len(pr.Args) {
		fatal(fmt.Errorf("vspec: argument %d out of range for %s (%d profiled)", arg, proc, len(pr.Args)))
	}
	if val == 1<<62 {
		v, _, ok := pr.Args[arg].TNV.TopValue()
		if !ok {
			fatal(fmt.Errorf("vspec: no profiled value for %s arg %d", proc, arg))
		}
		val = v
	}
	inv := pr.Args[arg].InvTop(1)
	fmt.Printf("candidate: %s arg%d == %d (invariance %.3f over %d calls)\n", proc, arg, val, inv, pr.Calls)

	spec, info, err := specialize.Specialize(prog, proc, uint8(isa.RegA0+arg), val)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("specialized: body %d -> %d insts (%d folded, %d strength-reduced, %d branches, %d removed)\n",
		info.OrigSize, info.SpecSize, info.Folded, info.Reduced, info.Branches, info.Removed)

	got, err := vm.Execute(spec, w.Test.Args)
	if err != nil {
		fatal(err)
	}
	if got.Output != base.Output {
		fatal(fmt.Errorf("vspec: OUTPUT CHANGED — specialization unsound for this program"))
	}
	fmt.Printf("verified: output identical (%d bytes)\n", len(got.Output))
	fmt.Printf("cycles: %d -> %d (speedup %.3fx)\n", base.Cycles, got.Cycles,
		float64(base.Cycles)/float64(got.Cycles))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
