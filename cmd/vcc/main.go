// vcc compiles MiniC source to VRISC assembly (or runs it directly).
//
// Usage:
//
//	vcc [-S] [-run] [-i "1 2 3"] prog.mc
//
// -S prints the generated assembly; -run executes the program.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"valueprof/internal/minic"
	"valueprof/internal/vm"
)

func main() {
	emitAsm := flag.Bool("S", false, "print generated assembly")
	run := flag.Bool("run", false, "execute the compiled program")
	inputStr := flag.String("i", "", "space-separated integers for getint")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, `usage: vcc [-S] [-run] [-i "1 2 3"] prog.mc`)
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	text, err := minic.CompileToAsm(string(src))
	if err != nil {
		fatal(err)
	}
	if *emitAsm {
		fmt.Print(text)
	}
	if !*run {
		return
	}
	prog, err := minic.Compile(string(src))
	if err != nil {
		fatal(err)
	}
	var input []int64
	for _, f := range strings.Fields(*inputStr) {
		v, err := strconv.ParseInt(f, 0, 64)
		if err != nil {
			fatal(fmt.Errorf("vcc: bad input %q: %w", f, err))
		}
		input = append(input, v)
	}
	res, err := vm.Execute(prog, input)
	if err != nil {
		fatal(err)
	}
	fmt.Print(res.Output)
	os.Exit(int(res.ExitStatus & 0xff))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
