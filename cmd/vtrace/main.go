// vtrace records a workload's value trace to a file, or replays a
// recorded trace through offline profiling — collect once, analyze
// under any TNV configuration without re-running the program.
//
// Usage:
//
//	vtrace -w compress -o compress.vpt          # record (loads: -loads)
//	vtrace -replay compress.vpt                 # offline TNV ablation
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"valueprof/internal/atom"
	"valueprof/internal/atomicio"
	"valueprof/internal/core"
	"valueprof/internal/textual"
	"valueprof/internal/trace"
	"valueprof/internal/workloads"
)

// countingWriter tracks bytes written for the record-mode summary.
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

func main() {
	wl := flag.String("w", "", "workload to record")
	inputName := flag.String("input", "test", "input set: test or train")
	loads := flag.Bool("loads", false, "record load instructions only")
	out := flag.String("o", "", "trace output file (record mode)")
	replay := flag.String("replay", "", "trace file to analyze (replay mode)")
	flag.Parse()

	switch {
	case *replay != "":
		replayTrace(*replay)
	case *wl != "" && *out != "":
		record(*wl, *inputName, *loads, *out)
	default:
		fmt.Fprintln(os.Stderr, "usage: vtrace -w workload -o out.vpt | vtrace -replay out.vpt")
		os.Exit(2)
	}
}

func record(wl, inputName string, loadsOnly bool, out string) {
	w, err := workloads.ByName(wl)
	if err != nil {
		fatal(err)
	}
	var in workloads.Input
	switch inputName {
	case "test":
		in = w.Test
	case "train":
		in = w.Train
	default:
		fatal(fmt.Errorf("vtrace: unknown input %q", inputName))
	}
	prog, err := w.Compile()
	if err != nil {
		fatal(err)
	}
	// The trace streams straight into an atomic write: if the recording
	// run dies, no partial trace lands at the destination path.
	var events uint64
	var size int64
	err = atomicio.WriteFile(out, func(dst io.Writer) error {
		cw := &countingWriter{w: dst}
		tw, err := trace.NewWriter(cw)
		if err != nil {
			return err
		}
		col := trace.NewCollector(tw, nil)
		if loadsOnly {
			col = trace.NewCollector(tw, core.LoadsOnly)
		}
		if _, err := atom.Run(prog, in.Args, false, col); err != nil {
			return err
		}
		if err := tw.Close(); err != nil {
			return err
		}
		events, size = tw.Count(), cw.n
		return nil
	})
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "vtrace: %d events, %d bytes (%.2f bytes/event) -> %s\n",
		events, size, float64(size)/float64(events), out)
}

func replayTrace(path string) {
	configs := []struct {
		name string
		cfg  core.TNVConfig
	}{
		{"n2", core.TNVConfig{Size: 2, Steady: 1, ClearInterval: 2000}},
		{"n4", core.TNVConfig{Size: 4, Steady: 2, ClearInterval: 2000}},
		{"n10 (paper)", core.DefaultTNVConfig()},
		{"n16", core.TNVConfig{Size: 16, Steady: 8, ClearInterval: 2000}},
	}
	tab := textual.New(fmt.Sprintf("offline profile of %s", path),
		"TNV", "sites", "events", "LVP", "InvTop1", "InvTopN", "%zero")
	for _, c := range configs {
		f, err := os.Open(path)
		if err != nil {
			fatal(err)
		}
		rd, err := trace.NewReader(f)
		if err != nil {
			fatal(err)
		}
		sites, err := trace.ProfileTrace(rd, c.cfg, false)
		if err != nil {
			fatal(err)
		}
		f.Close()
		var list []*core.SiteStats
		for _, s := range sites {
			list = append(list, s)
		}
		m := core.Aggregate(list, c.cfg.Size)
		tab.Row(c.name, m.Sites, m.Execs, m.LVP, m.InvTop1, m.InvTopN, m.PctZero)
	}
	fmt.Print(tab.String())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
