// vexp regenerates the paper's tables and figures (experiments e1–e13).
//
// Usage:
//
//	vexp            # run everything
//	vexp e2 e6      # run selected experiments
//	vexp -list      # list experiments
//	vexp -quick e4  # reduced sweeps
//	vexp -w compress,dictv e2
//	vexp -jobs 4 e2 e3             # profile workloads on 4 workers
//	vexp -retries 2 -job-deadline 2m -salvage-partial
//	vexp -bench-parallel BENCH_parallel.json
//	vexp -bench-vm BENCH_vm.json
//	vexp -bench-vm-check BENCH_vm.json
//	vexp -bench-diff OLD.json [NEW.json]
//
// -jobs sets the worker-pool width used both across experiments and
// for the per-workload profiling runs inside each one; the output is
// byte-identical to a serial run at any width. -bench-parallel times
// the suite profiling pass serially and in parallel, cross-checks that
// both produce identical profiles, and writes the timing report as
// JSON (the repo's recorded benchmark baseline). -bench-vm records the
// interpreter hot-loop baseline (per-opcode dispatch, hooked vs
// unhooked, batched vs legacy value delivery); -bench-vm-check
// re-measures and gates the machine-independent ratios against that
// baseline with ±10% tolerance.
//
// Robustness: -retries re-runs a failed experiment up to N extra
// times (with deterministic backoff), -job-deadline bounds each
// attempt's wall clock, and -salvage-partial reports the experiments
// that still failed at the end — keeping every successful table —
// instead of aborting on the first error. Exit codes: 0 clean, 1 any
// experiment failed or any shape check failed, 3 partial results
// under -salvage-partial.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"time"

	"valueprof/internal/atomicio"
	"valueprof/internal/experiments"
	"valueprof/internal/parallel"
	"valueprof/internal/supervise"
	"valueprof/internal/vmbench"
)

func main() {
	list := flag.Bool("list", false, "list experiments and exit")
	quick := flag.Bool("quick", false, "reduced parameter sweeps")
	wls := flag.String("w", "", "comma-separated workload subset")
	jobs := flag.Int("jobs", runtime.GOMAXPROCS(0), "worker-pool width for profiling runs (1 = serial)")
	retries := flag.Int("retries", 0, "re-run a failed experiment up to N extra attempts")
	jobDeadline := flag.Duration("job-deadline", 0, "wall-clock budget per experiment attempt (0 = none)")
	salvage := flag.Bool("salvage-partial", false,
		"keep going past failed experiments and report them at the end (exit 3) instead of aborting on the first")
	benchOut := flag.String("bench-parallel", "",
		"time the suite profiling pass serial vs parallel, write the JSON report here, and exit")
	benchVM := flag.String("bench-vm", "",
		"run the VM hot-loop benchmarks, write the JSON report here, and exit")
	benchVMCheck := flag.String("bench-vm-check", "",
		"re-measure the VM hot loop and gate its ratios against this recorded baseline (exit 1 on regression)")
	benchDiff := flag.String("bench-diff", "",
		"compare this recorded VM baseline against a second report (first positional arg, default BENCH_vm.json) without re-measuring; exit 1 if the gated ratios moved more than 10%")
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-4s %s\n     %s\n", e.ID, e.Title, e.Paper)
		}
		return
	}

	if *benchOut != "" {
		benchParallel(*benchOut, *jobs)
		return
	}
	if *benchVM != "" {
		benchVMRecord(*benchVM)
		return
	}
	if *benchVMCheck != "" {
		benchVMGate(*benchVMCheck)
		return
	}
	if *benchDiff != "" {
		cur := "BENCH_vm.json"
		if flag.NArg() > 0 {
			cur = flag.Arg(0)
		}
		benchVMDiff(*benchDiff, cur)
		return
	}

	cfg := experiments.Config{Quick: *quick, Jobs: *jobs}
	if *wls != "" {
		cfg.Workloads = strings.Split(*wls, ",")
	}

	var toRun []*experiments.Experiment
	if flag.NArg() == 0 {
		toRun = experiments.All()
	} else {
		for _, id := range flag.Args() {
			e, err := experiments.ByID(id)
			if err != nil {
				fatal(err)
			}
			toRun = append(toRun, e)
		}
	}

	// Experiments themselves run on the pool too, each wrapped in the
	// retry supervisor; every slot captures its result (or error) and
	// everything is printed afterwards in id order so the report reads
	// identically at any -jobs width.
	policy := supervise.Policy{
		MaxAttempts:     *retries + 1,
		AttemptDeadline: *jobDeadline,
		BackoffBase:     100 * time.Millisecond,
	}
	type outcome struct {
		res      *experiments.Result
		err      error
		attempts int
		elapsed  time.Duration
	}
	ctx := context.Background()
	outcomes := parallel.Map(*jobs, len(toRun), func(i int) outcome {
		start := time.Now()
		var res *experiments.Result
		d := supervise.Do(ctx, policy, func(ctx context.Context, attempt int) error {
			var err error
			res, err = toRun[i].Run(cfg)
			if err != nil {
				res = nil
				return err
			}
			return ctx.Err() // a blown attempt deadline fails the attempt
		})
		return outcome{res: res, err: d.Err, attempts: d.Attempts, elapsed: time.Since(start)}
	})

	failed, broken := 0, 0
	for i, e := range toRun {
		o := outcomes[i]
		if o.err != nil {
			err := fmt.Errorf("%s (after %d attempts): %w", e.ID, o.attempts, o.err)
			if !*salvage {
				fatal(err)
			}
			broken++
			fmt.Fprintf(os.Stderr, "vexp: %v\n", err)
			continue
		}
		if o.attempts > 1 {
			fmt.Fprintf(os.Stderr, "vexp: %s recovered after %d attempts\n", e.ID, o.attempts)
		}
		fmt.Printf("%s\n(%s in %v)\n\n", o.res.Summary(), e.ID, o.elapsed.Round(time.Millisecond))
		failed += len(o.res.Failed())
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "vexp: %d shape checks FAILED\n", failed)
		os.Exit(1)
	}
	if broken > 0 {
		fmt.Fprintf(os.Stderr, "vexp: %d of %d experiments failed; partial results above\n", broken, len(toRun))
		os.Exit(3)
	}
}

// benchParallel runs the serial-vs-parallel suite benchmark and
// records the report (the BENCH_parallel.json baseline).
func benchParallel(path string, workers int) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	// A one-wide "parallel" pass measures nothing: whenever the host
	// has more than one CPU, record with a genuinely parallel pool.
	if workers < 2 && runtime.NumCPU() > 1 {
		workers = runtime.NumCPU()
	}
	rep, err := parallel.BenchSuite(context.Background(), workers, runtime.NumCPU(), runtime.GOMAXPROCS(0))
	if err != nil {
		fatal(err)
	}
	err = atomicio.WriteFile(path, func(f io.Writer) error {
		return rep.WriteJSON(f)
	})
	if err != nil {
		fatal(err)
	}
	fmt.Println(rep.String())
	fmt.Fprintf(os.Stderr, "vexp: wrote %s\n", path)
}

// benchVMRecord measures the interpreter hot path and records the
// report (the BENCH_vm.json baseline).
func benchVMRecord(path string) {
	rep, err := vmbench.Measure(vmbench.Options{})
	if err != nil {
		fatal(err)
	}
	err = atomicio.WriteFile(path, func(f io.Writer) error {
		return rep.WriteJSON(f)
	})
	if err != nil {
		fatal(err)
	}
	fmt.Println(rep.String())
	fmt.Fprintf(os.Stderr, "vexp: wrote %s\n", path)
}

// benchVMGate re-measures the hot path and fails if the machine-
// independent ratios regressed more than 10% against the recorded
// baseline.
func benchVMGate(path string) {
	baseline := readVMReport(path)
	cur, err := vmbench.Measure(vmbench.Options{SkipPerOp: true})
	if err != nil {
		fatal(err)
	}
	fmt.Println(cur.String())
	if err := vmbench.Compare(baseline, cur, 0.10); err != nil {
		fatal(err)
	}
	fmt.Printf("vexp: vm bench within 10%% of %s (speedup %.2fx vs baseline %.2fx)\n",
		path, cur.SpeedupVsLegacy, baseline.SpeedupVsLegacy)
}

// benchVMDiff compares two recorded reports without re-measuring:
// per-metric and per-op ratio deltas, plus the same 10% gate on the
// machine-independent ratios that bench-vm-check applies.
func benchVMDiff(oldPath, newPath string) {
	baseline, current := readVMReport(oldPath), readVMReport(newPath)
	text, err := vmbench.Diff(baseline, current, 0.10)
	fmt.Printf("vexp: bench diff %s -> %s\n%s", oldPath, newPath, text)
	if err != nil {
		fatal(err)
	}
	fmt.Println("vexp: gated ratios within 10%")
}

func readVMReport(path string) *vmbench.Report {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	rep, err := vmbench.ReadReport(f)
	if err != nil {
		fatal(fmt.Errorf("%s: %w", path, err))
	}
	return rep
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
