// vexp regenerates the paper's tables and figures (experiments e1–e13).
//
// Usage:
//
//	vexp            # run everything
//	vexp e2 e6      # run selected experiments
//	vexp -list      # list experiments
//	vexp -quick e4  # reduced sweeps
//	vexp -w compress,dictv e2
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"valueprof/internal/experiments"
)

func main() {
	list := flag.Bool("list", false, "list experiments and exit")
	quick := flag.Bool("quick", false, "reduced parameter sweeps")
	wls := flag.String("w", "", "comma-separated workload subset")
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-4s %s\n     %s\n", e.ID, e.Title, e.Paper)
		}
		return
	}

	cfg := experiments.Config{Quick: *quick}
	if *wls != "" {
		cfg.Workloads = strings.Split(*wls, ",")
	}

	var toRun []*experiments.Experiment
	if flag.NArg() == 0 {
		toRun = experiments.All()
	} else {
		for _, id := range flag.Args() {
			e, err := experiments.ByID(id)
			if err != nil {
				fatal(err)
			}
			toRun = append(toRun, e)
		}
	}

	failed := 0
	for _, e := range toRun {
		start := time.Now()
		res, err := e.Run(cfg)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", e.ID, err))
		}
		fmt.Printf("%s\n(%s in %v)\n\n", res.Summary(), e.ID, time.Since(start).Round(time.Millisecond))
		failed += len(res.Failed())
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "vexp: %d shape checks FAILED\n", failed)
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
