// vprofd is the value-profiling daemon: profiling as a service over
// HTTP/JSON. It accepts jobs (a VRISC program, input vectors, and a
// profiler config), runs them on the shared execution arena under fair
// per-client scheduling and request budgets, streams progress over
// SSE, and serves completed profiles from a content-addressed cache.
// With -state it is durable: finished results survive restarts, and
// in-flight jobs resume from their checkpoints after a SIGTERM.
//
// Usage:
//
//	vprofd [-addr :7071] [-state DIR] [-workers N] [-pulse N] [-max-body BYTES]
//
// See docs/serve.md for the API contract. Exit status: 0 after a clean
// signal-driven shutdown, 1 on a startup or serve failure, 2 on usage
// errors.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"valueprof/internal/serve"
)

func main() {
	addr := flag.String("addr", ":7071", "listen address")
	state := flag.String("state", "", "state directory for cache, manifests, and checkpoints (empty = memory only)")
	workers := flag.Int("workers", 0, "concurrent job runners (0 = default)")
	pulse := flag.Uint64("pulse", 0, "instructions between progress events (0 = default)")
	ckpt := flag.Uint64("ckpt", 0, "instructions between in-flight checkpoint persists (0 = default)")
	maxBody := flag.Int64("max-body", 0, "request body limit in bytes (0 = default)")
	grace := flag.Duration("grace", 30*time.Second, "shutdown grace period")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: vprofd [-addr :7071] [-state DIR] [-workers N] [-pulse N] [-max-body BYTES]")
		os.Exit(2)
	}

	srv, err := serve.New(serve.Options{
		StateDir:        *state,
		Workers:         *workers,
		PulseEvery:      *pulse,
		CheckpointEvery: *ckpt,
		MaxBody:         *maxBody,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "vprofd: %v\n", err)
		os.Exit(1)
	}
	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}

	// SIGTERM/SIGINT drive the graceful path: stop accepting, evict
	// running jobs to their checkpoints, then exit so the next start
	// resumes them.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	errc := make(chan error, 1)
	go func() {
		if err := hs.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
		}
	}()
	fmt.Fprintf(os.Stderr, "vprofd: listening on %s\n", *addr)

	select {
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "vprofd: %v\n", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	gctx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	hs.Shutdown(gctx)
	if err := srv.Shutdown(gctx); err != nil {
		fmt.Fprintf(os.Stderr, "vprofd: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "vprofd: state persisted, exiting")
}
