// vdiff compares two saved value profiles (written by vprof -o) — the
// paper's cross-input stability study (Table V.5 / Wall [38]) as a
// command-line workflow:
//
//	vprof -w compress -input test  -o test.json
//	vprof -w compress -input train -o train.json
//	vdiff test.json train.json
package main

import (
	"flag"
	"fmt"
	"os"

	"valueprof/internal/core"
	"valueprof/internal/textual"
)

func main() {
	topN := flag.Int("top", 10, "show the N sites with the largest invariance drift")
	repair := flag.Bool("repair", false, "salvage damaged profiles: drop invalid sites instead of rejecting the file")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: vdiff [-top N] [-repair] a.json b.json")
		os.Exit(2)
	}
	a := load(flag.Arg(0), *repair)
	b := load(flag.Arg(1), *repair)
	for _, r := range []*core.ProfileRecord{a, b} {
		if r.Outcome != "" {
			fmt.Fprintf(os.Stderr, "vdiff: note: %s/%s is a partial profile (run outcome: %s)\n",
				r.Program, r.Input, r.Outcome)
		}
	}
	if a.Program != b.Program {
		fmt.Fprintf(os.Stderr, "vdiff: warning: comparing different programs (%s vs %s)\n", a.Program, b.Program)
	}

	c := core.Compare(a, b, core.DefaultThresholds())
	fmt.Printf("%s: %s vs %s\n", a.Program, a.Input, b.Input)
	fmt.Printf("sites: %d common, %d only in %s, %d only in %s\n",
		c.CommonSites, c.OnlyA, a.Input, c.OnlyB, b.Input)
	fmt.Printf("Inv-Top(1) correlation: %.3f\n", c.InvCorrelation)
	fmt.Printf("classification agreement: %s\n", textual.Pct(c.ClassAgreement))
	fmt.Printf("top-value agreement: %s\n", textual.Pct(c.TopValueAgreement))
	fmt.Printf("mean |ΔInv-Top(1)|: %.4f\n\n", c.MeanAbsInvDiff)

	// Largest per-site drifts.
	type drift struct {
		name   string
		ia, ib float64
	}
	bByPC := map[int]*core.SiteRecord{}
	for i := range b.Sites {
		bByPC[b.Sites[i].PC] = &b.Sites[i]
	}
	var drifts []drift
	for i := range a.Sites {
		sa := &a.Sites[i]
		if sb, ok := bByPC[sa.PC]; ok {
			drifts = append(drifts, drift{sa.Name, sa.InvTop(1), sb.InvTop(1)})
		}
	}
	for i := 0; i < len(drifts); i++ {
		for j := i + 1; j < len(drifts); j++ {
			if absf(drifts[j].ia-drifts[j].ib) > absf(drifts[i].ia-drifts[i].ib) {
				drifts[i], drifts[j] = drifts[j], drifts[i]
			}
		}
	}
	tab := textual.New(fmt.Sprintf("largest %d invariance drifts", *topN),
		"site", a.Input, b.Input, "|Δ|")
	for i, d := range drifts {
		if i >= *topN {
			break
		}
		tab.Row(d.name, d.ia, d.ib, absf(d.ia-d.ib))
	}
	fmt.Print(tab.String())
}

func load(path string, repair bool) *core.ProfileRecord {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()
	policy := core.RepairNone
	if repair {
		policy = core.RepairDrop
	}
	rec, rep, err := core.ReadProfileRecordPolicy(f, policy)
	if err != nil {
		fmt.Fprintf(os.Stderr, "vdiff: %s: %v\n", path, err)
		if !repair {
			fmt.Fprintln(os.Stderr, "vdiff: (retry with -repair to salvage valid sites)")
		}
		os.Exit(1)
	}
	if repair && !rep.Clean() {
		fmt.Fprintf(os.Stderr, "vdiff: %s: %s\n", path, rep)
		for _, p := range rep.Problems {
			fmt.Fprintf(os.Stderr, "vdiff:   %s\n", p)
		}
	}
	return rec
}

func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
