// vrun executes a VRISC program: either assembly source or a VPX1
// binary image produced by vasm -o (detected by its magic bytes).
//
// Usage:
//
//	vrun [-i "1 2 3"] [-stats] prog.s|prog.vx
//
// -i supplies the integers consumed by the getint syscall.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"valueprof/internal/asm"
	"valueprof/internal/program"
	"valueprof/internal/vm"
)

func main() {
	inputStr := flag.String("i", "", "space-separated integers for getint")
	stats := flag.Bool("stats", false, "print instruction and cycle counts")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, `usage: vrun [-i "1 2 3"] [-stats] prog.s`)
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	var prog *program.Program
	if bytes.HasPrefix(src, []byte("VPX1")) {
		prog, err = program.Load(bytes.NewReader(src))
	} else {
		prog, err = asm.Assemble(string(src))
	}
	if err != nil {
		fatal(err)
	}
	input, err := parseInput(*inputStr)
	if err != nil {
		fatal(err)
	}
	res, err := vm.Execute(prog, input)
	if err != nil {
		fatal(err)
	}
	fmt.Print(res.Output)
	if *stats {
		fmt.Fprintf(os.Stderr, "vrun: %d instructions, %d cycles, exit %d\n",
			res.InstCount, res.Cycles, res.ExitStatus)
	}
	os.Exit(int(res.ExitStatus & 0xff))
}

func parseInput(s string) ([]int64, error) {
	var out []int64
	for _, f := range strings.Fields(s) {
		v, err := strconv.ParseInt(f, 0, 64)
		if err != nil {
			return nil, fmt.Errorf("vrun: bad input %q: %w", f, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
