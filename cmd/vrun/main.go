// vrun executes a VRISC program: either assembly source or a VPX1
// binary image produced by vasm -o (detected by its magic bytes).
//
// Usage:
//
//	vrun [-i "1 2 3"] [-stats] [-deadline 10s] [-steps N] prog.s|prog.vx
//
// -i supplies the integers consumed by the getint syscall. -deadline
// and -steps bound the run; Ctrl-C stops it cleanly. Output produced
// before an early stop is still printed. Exit codes: the guest's exit
// status on completion, 1 on fault, 124 on deadline, 125 on step-limit
// exhaustion, 130 on interrupt.
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	"valueprof/internal/asm"
	"valueprof/internal/atom"
	"valueprof/internal/program"
	"valueprof/internal/vm"
)

func main() {
	inputStr := flag.String("i", "", "space-separated integers for getint")
	stats := flag.Bool("stats", false, "print instruction and cycle counts")
	deadline := flag.Duration("deadline", 0, "stop the run after this wall-clock budget (0 = none)")
	steps := flag.Uint64("steps", 0, "stop the run after N instructions (0 = VM default)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, `usage: vrun [-i "1 2 3"] [-stats] [-deadline 10s] [-steps N] prog.s`)
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	var prog *program.Program
	if bytes.HasPrefix(src, []byte("VPX1")) {
		prog, err = program.Load(bytes.NewReader(src))
	} else {
		prog, err = asm.Assemble(string(src))
	}
	if err != nil {
		fatal(err)
	}
	input, err := parseInput(*inputStr)
	if err != nil {
		fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	opts := atom.RunOptions{Input: input, StepLimit: *steps}
	if *deadline > 0 {
		opts.Deadline = time.Now().Add(*deadline)
	}
	res, outcome, err := atom.RunControlled(ctx, prog, opts)

	// Whatever the guest printed before stopping is real output.
	fmt.Print(res.Output)
	if *stats {
		fmt.Fprintf(os.Stderr, "vrun: %d instructions, %d cycles, exit %d\n",
			res.InstCount, res.Cycles, res.ExitStatus)
	}
	switch outcome {
	case vm.OutcomeCompleted:
		os.Exit(int(res.ExitStatus & 0xff))
	case vm.OutcomeDeadline:
		fmt.Fprintf(os.Stderr, "vrun: deadline exceeded after %d instructions\n", res.InstCount)
		os.Exit(124)
	case vm.OutcomeLimit:
		fmt.Fprintf(os.Stderr, "vrun: %v\n", err)
		os.Exit(125)
	case vm.OutcomeCancelled:
		fmt.Fprintf(os.Stderr, "vrun: interrupted after %d instructions\n", res.InstCount)
		os.Exit(130)
	default:
		fmt.Fprintf(os.Stderr, "vrun: %v\n", err)
		os.Exit(1)
	}
}

func parseInput(s string) ([]int64, error) {
	var out []int64
	for _, f := range strings.Fields(s) {
		v, err := strconv.ParseInt(f, 0, 64)
		if err != nil {
			return nil, fmt.Errorf("vrun: bad input %q: %w", f, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
