// vfuzz differentially tests the optimized value profiler against the
// naive reference oracle (internal/difftest) over seeded, generated
// VRISC programs (internal/progen). Every seed is one program checked
// against every metamorphic property: exact full-time agreement,
// TNV-replacement replay, checkpoint/resume, sharded merge, pruning,
// the static-constness oracle, and convergent-sampling accuracy.
//
//	vfuzz -seeds 500            # the CI acceptance run
//	vfuzz -seed 1234 -v         # investigate one seed
//	vfuzz -emit 8               # (re)generate the seed corpus entries
//	vfuzz -chaos -seeds 200     # pool-level chaos sweep (supervised runtime)
//
// With -chaos each seed instead fans its program out as supervised
// pool jobs under injected faults, stalls, and checkpoint corruption
// (internal/difftest.ChaosCheck), asserting no lost jobs, byte-exact
// retried profiles, and strictly-loadable merged records; -timecap
// bounds each seed's wall clock so a hang fails fast.
//
// On a divergence, vfuzz shrinks the generating spec to a 1-minimal
// repro and writes it to the regression corpus
// (internal/difftest/testdata/corpus), which go test replays forever
// after. Exit status: 0 clean, 1 divergences found, 2 usage.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"valueprof/internal/analysis"
	"valueprof/internal/atom"
	"valueprof/internal/core"
	"valueprof/internal/difftest"
	"valueprof/internal/progen"
	"valueprof/internal/vm"
)

func main() {
	seeds := flag.Int("seeds", 200, "number of consecutive seeds to check")
	start := flag.Uint64("start", 1, "first seed")
	one := flag.Uint64("seed", 0, "check exactly this one seed (overrides -seeds/-start)")
	corpus := flag.String("corpus", "internal/difftest/testdata/corpus",
		"directory for divergence repros and -emit entries")
	emit := flag.Int("emit", 0, "write the first N seeds as corpus coverage entries and exit")
	noShrink := flag.Bool("no-shrink", false, "write divergent specs unshrunk")
	verbose := flag.Bool("v", false, "per-seed progress")
	chaos := flag.Bool("chaos", false, "run the pool-level chaos sweep instead of the differential harness")
	predict := flag.Bool("predict", false, "run the predicted-invariance soundness sweep: interval-edge generator, proved-tier claims checked against recorded profiles")
	timecap := flag.Duration("timecap", 10*time.Second, "per-seed wall-clock cap in -chaos mode (a hang fails fast)")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: vfuzz [-seeds N] [-start S] [-seed S] [-corpus dir] [-emit N] [-no-shrink] [-chaos] [-predict] [-timecap D] [-v]")
		os.Exit(2)
	}

	if *emit > 0 {
		emitCorpus(*corpus, *start, *emit)
		return
	}

	first, count := *start, *seeds
	if *one != 0 {
		first, count = *one, 1
	}

	if *chaos {
		runChaos(first, count, *timecap, *verbose)
		return
	}
	if *predict {
		runPredict(first, count, *verbose)
		return
	}

	var (
		divergent int
		sites     int
		execs     uint64
		began     = time.Now()
	)
	for i := 0; i < count; i++ {
		seed := first + uint64(i)
		rep := checkSeed(seed, difftest.Options{})
		if rep == nil {
			continue // generator failure already reported
		}
		sites += rep.Sites
		execs += rep.Execs
		if rep.Failed() {
			divergent++
			fmt.Printf("seed %d: %d divergence(s)\n", seed, len(rep.Divergences))
			for _, d := range rep.Divergences {
				fmt.Printf("  %s\n", d)
			}
			saveRepro(*corpus, seed, *noShrink)
		} else if *verbose {
			fmt.Printf("seed %d: ok (%d sites, %d observations)\n", seed, rep.Sites, rep.Execs)
		} else if (i+1)%100 == 0 {
			fmt.Printf("%d/%d seeds checked, %d divergent\n", i+1, count, divergent)
		}
	}
	fmt.Printf("checked %d seeds in %.1fs: %d sites, %d observations, %d divergent\n",
		count, time.Since(began).Seconds(), sites, execs, divergent)
	if divergent > 0 {
		os.Exit(1)
	}
}

// runChaos sweeps the supervised pool's chaos harness over count
// seeds. Each seed runs under a wall-clock watchdog: the zero-hang
// guarantee is an acceptance criterion, so a seed that exceeds the
// timecap aborts the sweep immediately instead of timing out CI.
func runChaos(first uint64, count int, timecap time.Duration, verbose bool) {
	var (
		divergent int
		retried   int
		resumed   int
		injected  int
		stalled   int
		corrupted int
		salvaged  int
		began     = time.Now()
	)
	for i := 0; i < count; i++ {
		seed := first + uint64(i)
		done := make(chan *difftest.ChaosReport, 1)
		go func() { done <- difftest.ChaosCheck(seed, difftest.ChaosOptions{}) }()
		var rep *difftest.ChaosReport
		select {
		case rep = <-done:
		case <-time.After(timecap):
			fmt.Printf("seed %d: HANG — no result within %v\n", seed, timecap)
			os.Exit(1)
		}
		retried += rep.Retried
		resumed += rep.Resumed
		injected += rep.Injected
		stalled += rep.Stalled
		corrupted += rep.Corrupted
		salvaged += rep.Salvaged
		if rep.Failed() {
			divergent++
			fmt.Printf("seed %d: %d divergence(s)\n", seed, len(rep.Divergences))
			for _, d := range rep.Divergences {
				fmt.Printf("  %s\n", d)
			}
		} else if verbose {
			fmt.Printf("seed %d: ok (%d completed, %d salvaged, %d retried, %d resumed)\n",
				seed, rep.Completed, rep.Salvaged, rep.Retried, rep.Resumed)
		} else if (i+1)%100 == 0 {
			fmt.Printf("%d/%d seeds, %d divergent\n", i+1, count, divergent)
		}
	}
	fmt.Printf("chaos: %d seeds in %.1fs: %d kills, %d stalls, %d corrupted checkpoints -> %d retried, %d resumed, %d salvaged, %d divergent\n",
		count, time.Since(began).Seconds(), injected, stalled, corrupted, retried, resumed, salvaged, divergent)
	if divergent > 0 {
		os.Exit(1)
	}
}

// runPredict sweeps the predictive-invariance soundness property: for
// each seed, a program generated with the interval-edge knob (non-unit
// strides, wraparound arithmetic, equality-range branches) is profiled
// at full fidelity and every proved-tier claim of analysis.Predict is
// checked against the recorded profile. A single contradiction is a
// soundness bug — the proved tier is the adaptive budget's license to
// drop hooks entirely.
func runPredict(first uint64, count int, verbose bool) {
	var (
		bad    int
		proved int
		sites  int
		began  = time.Now()
	)
	for i := 0; i < count; i++ {
		seed := first + uint64(i)
		spec := progen.Generate(progen.Config{Seed: seed, IntervalEdges: true})
		prog, err := progen.Build(&spec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "vfuzz: seed %d: %v\n", seed, err)
			os.Exit(1)
		}
		pred := analysis.Predict(prog)
		vp, err := core.NewValueProfiler(core.Options{TNV: core.DefaultTNVConfig()})
		if err != nil {
			fmt.Fprintf(os.Stderr, "vfuzz: seed %d: %v\n", seed, err)
			os.Exit(1)
		}
		_, outcome, err := atom.RunControlled(context.Background(), prog,
			atom.RunOptions{Input: progen.InputFor(&spec, 0), StepLimit: 8 << 20}, vp)
		if outcome != vm.OutcomeCompleted {
			fmt.Fprintf(os.Stderr, "vfuzz: seed %d: run did not complete: %v (%v)\n", seed, outcome, err)
			os.Exit(1)
		}
		rec := vp.Profile().Record(fmt.Sprintf("seed%d", seed), "in0")
		if cs := pred.CheckRecord(rec); len(cs) > 0 {
			bad++
			fmt.Printf("seed %d: %d proved-tier contradiction(s)\n", seed, len(cs))
			for _, c := range cs {
				fmt.Printf("  %s\n", c.String())
			}
		}
		n := pred.TierCounts()
		proved += n[analysis.TierProved]
		sites += len(pred.Sites)
		if verbose {
			fmt.Printf("seed %d: ok (%d sites, %d proved)\n", seed, len(pred.Sites), n[analysis.TierProved])
		} else if (i+1)%100 == 0 {
			fmt.Printf("%d/%d seeds checked, %d with contradictions\n", i+1, count, bad)
		}
	}
	fmt.Printf("predict: %d seeds in %.1fs: %d sites, %d proved-tier claims, %d seeds with contradictions\n",
		count, time.Since(began).Seconds(), sites, proved, bad)
	if bad > 0 {
		os.Exit(1)
	}
}

// checkSeed generates, builds, and harness-checks one seed.
func checkSeed(seed uint64, opts difftest.Options) *difftest.Report {
	spec := progen.Generate(progen.Config{Seed: seed})
	return checkSpec(&spec, opts)
}

func checkSpec(spec *progen.Spec, opts difftest.Options) *difftest.Report {
	prog, err := progen.Build(spec)
	if err != nil {
		// A spec that stops building is a generator bug, which the
		// harness cannot classify; surface it loudly.
		fmt.Fprintf(os.Stderr, "vfuzz: %v\n", err)
		os.Exit(1)
		return nil
	}
	return difftest.Check(prog, fmt.Sprintf("seed%d", spec.Seed),
		progen.InputFor(spec, 0), progen.InputFor(spec, 1), opts)
}

// saveRepro shrinks the divergent seed to a 1-minimal spec and writes
// it to the corpus for go test to replay.
func saveRepro(dir string, seed uint64, noShrink bool) {
	spec := progen.Generate(progen.Config{Seed: seed})
	if !noShrink {
		before := spec.NumStmts()
		spec = progen.Shrink(spec, func(s *progen.Spec) bool {
			return checkSpec(s, difftest.Options{}).Failed()
		}, 0)
		fmt.Printf("  shrunk %d -> %d statements\n", before, spec.NumStmts())
	}
	entry := &difftest.CorpusEntry{
		Name:   fmt.Sprintf("repro-seed%d", seed),
		Note:   describeDivergence(&spec),
		Spec:   spec,
		Input:  progen.InputFor(&spec, 0),
		Input2: progen.InputFor(&spec, 1),
	}
	path, err := difftest.WriteCorpusEntry(dir, entry)
	if err != nil {
		fmt.Fprintf(os.Stderr, "vfuzz: writing repro: %v\n", err)
		return
	}
	fmt.Printf("  repro written to %s\n", path)
}

func describeDivergence(spec *progen.Spec) string {
	rep := checkSpec(spec, difftest.Options{})
	if !rep.Failed() {
		return "divergence (flaky: did not reproduce on re-run)"
	}
	return rep.Divergences[0].String()
}

// emitCorpus writes clean coverage entries so the checked-in corpus
// exercises the replay path even while no divergence has ever been
// found.
func emitCorpus(dir string, start uint64, n int) {
	for i := 0; i < n; i++ {
		seed := start + uint64(i)
		spec := progen.Generate(progen.Config{Seed: seed})
		if _, err := progen.Build(&spec); err != nil {
			fmt.Fprintf(os.Stderr, "vfuzz: %v\n", err)
			os.Exit(1)
		}
		entry := &difftest.CorpusEntry{
			Name:   fmt.Sprintf("seed%d", seed),
			Note:   "seed corpus coverage entry (no divergence); regenerate with vfuzz -emit",
			Spec:   spec,
			Input:  progen.InputFor(&spec, 0),
			Input2: progen.InputFor(&spec, 1),
		}
		path, err := difftest.WriteCorpusEntry(dir, entry)
		if err != nil {
			fmt.Fprintf(os.Stderr, "vfuzz: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", path)
	}
}
