package valueprof_test

// The benchmark harness: one testing.B benchmark per paper exhibit
// (experiments e1–e13 of DESIGN.md). Each benchmark regenerates its
// table/figure and prints it once, so
//
//	go test -bench=. -benchmem
//
// reproduces every row/series the paper reports (quick sweeps; run
// cmd/vexp without -quick for the full parameter grids). ns/op measures
// the harness itself: one full instrumented profiling pass per
// iteration.

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"testing"

	valueprof "valueprof"
)

var printOnce sync.Map

func benchExperiment(b *testing.B, id string) {
	e, err := valueprof.ExperimentByID(id)
	if err != nil {
		b.Fatal(err)
	}
	cfg := valueprof.ExperimentConfig{Quick: true}
	var res *valueprof.ExperimentResult
	for i := 0; i < b.N; i++ {
		res, err = e.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	if _, done := printOnce.LoadOrStore(id, true); !done {
		fmt.Printf("\n%s\n", res.Summary())
	}
	for _, c := range res.Failed() {
		b.Errorf("shape check %s failed: %s", c.Name, c.Detail)
	}
	b.ReportMetric(float64(len(res.Checks)-len(res.Failed())), "checks-passed")
}

// BenchmarkE1Benchmarks — Table III.A.1: the suite, its two data sets,
// dynamic instruction counts.
func BenchmarkE1Benchmarks(b *testing.B) { benchExperiment(b, "e1") }

// BenchmarkE2LoadValues — Ch. V load table: LVP / Inv-Top / Inv-All /
// %zero over all loads, per benchmark.
func BenchmarkE2LoadValues(b *testing.B) { benchExperiment(b, "e2") }

// BenchmarkE3AllInstructions — Ch. V all-instruction table with the
// per-class breakdown.
func BenchmarkE3AllInstructions(b *testing.B) { benchExperiment(b, "e3") }

// BenchmarkE4TNVAccuracy — TNV estimate error vs full profiling across
// table sizes and clearing policies (ablation).
func BenchmarkE4TNVAccuracy(b *testing.B) { benchExperiment(b, "e4") }

// BenchmarkE5TestTrain — Table V.5: test vs train data sets and
// cross-input profile stability.
func BenchmarkE5TestTrain(b *testing.B) { benchExperiment(b, "e5") }

// BenchmarkE6Convergent — convergent profiling: duty cycle, modeled
// slowdown, and accuracy vs full-time profiling.
func BenchmarkE6Convergent(b *testing.B) { benchExperiment(b, "e6") }

// BenchmarkE7Histogram — the invariance-distribution figure
// (execution-weighted, non-accumulative buckets).
func BenchmarkE7Histogram(b *testing.B) { benchExperiment(b, "e7") }

// BenchmarkE8MemoryLocations — memory-location value invariance.
func BenchmarkE8MemoryLocations(b *testing.B) { benchExperiment(b, "e8") }

// BenchmarkE9Parameters — procedure-parameter invariance and
// specialization candidates.
func BenchmarkE9Parameters(b *testing.B) { benchExperiment(b, "e9") }

// BenchmarkE10Quantile — Table IV.1: the basic-block quantile table.
func BenchmarkE10Quantile(b *testing.B) { benchExperiment(b, "e10") }

// BenchmarkE11Specialize — Chapter X: the specialization case study
// (profile → specialize → guarded dispatch → verified speedup).
func BenchmarkE11Specialize(b *testing.B) { benchExperiment(b, "e11") }

// BenchmarkE12Predictors — predictor hit rates (LVP/stride/2-level/
// hybrids) and profile-guided prediction filtering.
func BenchmarkE12Predictors(b *testing.B) { benchExperiment(b, "e12") }

// BenchmarkE13Memoize — memoization hit rates and net cycle savings for
// invariant-parameter procedures.
func BenchmarkE13Memoize(b *testing.B) { benchExperiment(b, "e13") }

// BenchmarkE14Sampling — convergent vs periodic/random/burst sampling
// at equal overhead (the thesis's random-sampling open question).
func BenchmarkE14Sampling(b *testing.B) { benchExperiment(b, "e14") }

// BenchmarkE15Dependence — store→load communication profiling and the
// value-checked rescheduling candidate set.
func BenchmarkE15Dependence(b *testing.B) { benchExperiment(b, "e15") }

// BenchmarkE16Trivial — trivial-computation profiling (Richardson).
func BenchmarkE16Trivial(b *testing.B) { benchExperiment(b, "e16") }

// BenchmarkE17Registers — register-file value invariance.
func BenchmarkE17Registers(b *testing.B) { benchExperiment(b, "e17") }

// BenchmarkE18AutoSpecialize — the automatic specialization sweep.
func BenchmarkE18AutoSpecialize(b *testing.B) { benchExperiment(b, "e18") }

// BenchmarkE19ProcTime — procedure cycle attribution.
func BenchmarkE19ProcTime(b *testing.B) { benchExperiment(b, "e19") }

// BenchmarkE20TableSize — predictor table-size sensitivity with and
// without profile-guided filtering.
func BenchmarkE20TableSize(b *testing.B) { benchExperiment(b, "e20") }

// BenchmarkE21Convergence — the invariance-convergence-over-time figure.
func BenchmarkE21Convergence(b *testing.B) { benchExperiment(b, "e21") }

// --- microbenchmarks of the profiling primitives themselves ---

// BenchmarkTNVAdd measures the cost of one TNV-table update, the inner
// loop of all value profiling.
func BenchmarkTNVAdd(b *testing.B) {
	tab := valueprof.NewTNV(valueprof.DefaultTNVConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab.Add(int64(i & 15))
	}
}

// BenchmarkTNVAddSkewed measures TNV updates under a realistic skewed
// stream (hot value plus tail).
func BenchmarkTNVAddSkewed(b *testing.B) {
	tab := valueprof.NewTNV(valueprof.DefaultTNVConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := int64(42)
		if i%3 == 0 {
			v = int64(i)
		}
		tab.Add(v)
	}
}

// BenchmarkUninstrumentedRun measures the bare VM on a workload, the
// baseline against which instrumentation overhead is judged.
func BenchmarkUninstrumentedRun(b *testing.B) {
	w, err := valueprof.WorkloadByName("mcsim")
	if err != nil {
		b.Fatal(err)
	}
	prog, err := w.Compile()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var insts uint64
	for i := 0; i < b.N; i++ {
		res, err := valueprof.Execute(prog, w.Test.Args)
		if err != nil {
			b.Fatal(err)
		}
		insts = res.InstCount
	}
	b.ReportMetric(float64(insts)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Minst/s")
}

// BenchmarkFullProfilingRun measures the same workload under full-time
// value profiling of every result-producing instruction.
func BenchmarkFullProfilingRun(b *testing.B) {
	w, err := valueprof.WorkloadByName("mcsim")
	if err != nil {
		b.Fatal(err)
	}
	prog, err := w.Compile()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vp, err := valueprof.NewValueProfiler(valueprof.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		if _, err := valueprof.Run(prog, w.Test.Args, vp); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkConvergentProfilingRun measures the same workload under the
// convergent sampler — the overhead reduction the paper is about.
func BenchmarkConvergentProfilingRun(b *testing.B) {
	w, err := valueprof.WorkloadByName("mcsim")
	if err != nil {
		b.Fatal(err)
	}
	prog, err := w.Compile()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var duty float64
	for i := 0; i < b.N; i++ {
		cfg := valueprof.DefaultConvergentConfig()
		opts := valueprof.DefaultOptions()
		opts.Convergent = &cfg
		vp, err := valueprof.NewValueProfiler(opts)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := valueprof.Run(prog, w.Test.Args, vp); err != nil {
			b.Fatal(err)
		}
		duty = vp.Profile().DutyCycle()
	}
	b.ReportMetric(duty, "duty-cycle")
}

// suiteBenchJobs is the suite profiling pass as independent jobs:
// every workload, both inputs, full-time all-instruction profiling.
func suiteBenchJobs(b *testing.B) []valueprof.ParallelJob {
	b.Helper()
	var jobs []valueprof.ParallelJob
	for _, w := range valueprof.Workloads() {
		if _, err := w.Compile(); err != nil {
			b.Fatal(err)
		}
		for _, in := range w.Inputs() {
			jobs = append(jobs, valueprof.ParallelJob{
				Workload: w, Input: in, Options: valueprof.DefaultOptions(),
			})
		}
	}
	return jobs
}

func benchSuiteProfiling(b *testing.B, workers int) {
	jobs := suiteBenchJobs(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results := valueprof.RunParallel(context.Background(), workers, jobs)
		if err := valueprof.FirstParallelError(results); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(jobs)), "jobs")
}

// BenchmarkSuiteProfilingSerial is the serial baseline of the recorded
// BENCH_parallel.json comparison.
func BenchmarkSuiteProfilingSerial(b *testing.B) { benchSuiteProfiling(b, 1) }

// BenchmarkSuiteProfilingParallel runs the same jobs on a
// GOMAXPROCS-wide pool (identical output, less wall clock on
// multi-core hosts).
func BenchmarkSuiteProfilingParallel(b *testing.B) {
	benchSuiteProfiling(b, runtime.GOMAXPROCS(0))
}

// BenchmarkProfileMerge measures folding two single-input profiles of
// one workload into the combined-run profile.
func BenchmarkProfileMerge(b *testing.B) {
	w, err := valueprof.WorkloadByName("mcsim")
	if err != nil {
		b.Fatal(err)
	}
	var jobs []valueprof.ParallelJob
	for _, in := range w.Inputs() {
		jobs = append(jobs, valueprof.ParallelJob{
			Workload: w, Input: in, Options: valueprof.DefaultOptions(),
		})
	}
	results := valueprof.RunParallel(context.Background(), 2, jobs)
	if err := valueprof.FirstParallelError(results); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := results[0].Profile.Merge(results[1].Profile); err != nil {
			b.Fatal(err)
		}
	}
}
