module valueprof

go 1.22
