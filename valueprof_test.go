package valueprof_test

import (
	"strings"
	"testing"

	valueprof "valueprof"
)

// TestFacadeEndToEnd exercises the public API exactly as README shows.
func TestFacadeEndToEnd(t *testing.T) {
	prog, err := valueprof.CompileMiniC(`
func main() {
    var i; var s = 0;
    for (i = 0; i < 200; i = i + 1) { s = s + i * 3; }
    putint(s);
}
`)
	if err != nil {
		t.Fatal(err)
	}
	vp, err := valueprof.NewValueProfiler(valueprof.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	res, err := valueprof.Run(prog, nil, vp)
	if err != nil {
		t.Fatal(err)
	}
	if res.Output != "59700" {
		t.Errorf("output = %q", res.Output)
	}
	profile := vp.Profile()
	m := profile.Aggregate()
	if m.Sites == 0 || m.Execs == 0 {
		t.Errorf("empty profile: %+v", m)
	}
	if len(profile.TopSites(5)) != 5 {
		t.Error("TopSites failed")
	}
}

func TestFacadeAssembleAndExecute(t *testing.T) {
	prog, err := valueprof.Assemble("main: li a0, 4\n syscall putint\n syscall exit\n")
	if err != nil {
		t.Fatal(err)
	}
	res, err := valueprof.Execute(prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Output != "4" {
		t.Errorf("output = %q", res.Output)
	}
}

func TestFacadeTNV(t *testing.T) {
	tab := valueprof.NewTNV(valueprof.DefaultTNVConfig())
	for i := 0; i < 10; i++ {
		tab.Add(5)
	}
	if v, c, ok := tab.TopValue(); !ok || v != 5 || c != 10 {
		t.Errorf("TopValue = %d,%d,%v", v, c, ok)
	}
}

func TestFacadeWorkloadsAndExperiments(t *testing.T) {
	if len(valueprof.Workloads()) != 10 {
		t.Errorf("workloads = %d", len(valueprof.Workloads()))
	}
	w, err := valueprof.WorkloadByName("compress")
	if err != nil || w.Name != "compress" {
		t.Errorf("WorkloadByName: %v %v", w, err)
	}
	if len(valueprof.Experiments()) != 23 {
		t.Errorf("experiments = %d", len(valueprof.Experiments()))
	}
	e, err := valueprof.ExperimentByID("e10")
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(valueprof.ExperimentConfig{Workloads: []string{"mcsim"}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Text, "mcsim") {
		t.Error("experiment output missing workload")
	}
}

func TestFacadeSpecialize(t *testing.T) {
	prog, err := valueprof.CompileMiniC(`
func f(k, x) { return k * x + k; }
func main() {
    var i; var s = 0;
    for (i = 0; i < 500; i = i + 1) { s = s + f(3, i); }
    putint(s);
}
`)
	if err != nil {
		t.Fatal(err)
	}
	base, err := valueprof.Execute(prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	spec, info, err := valueprof.Specialize(prog, "f", 1 /* a0 */, 3)
	if err != nil {
		t.Fatal(err)
	}
	got, err := valueprof.Execute(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.Output != base.Output {
		t.Errorf("specialized output %q != %q", got.Output, base.Output)
	}
	if info.Folded == 0 {
		t.Errorf("info = %+v", info)
	}
}

func TestFacadePredictors(t *testing.T) {
	suite := valueprof.PredictorSuite(6)
	if len(suite) != 5 {
		t.Fatalf("suite = %d predictors", len(suite))
	}
	p := suite[0]
	for i := 0; i < 10; i++ {
		p.Update(1, 7)
	}
	if v, ok := p.Predict(1); !ok || v != 7 {
		t.Errorf("lvp predict = %d,%v", v, ok)
	}
}
