package serve

import (
	"os"
	"path/filepath"
	"sync"

	"valueprof/internal/atomicio"
)

// cache is the content-addressed profile store: completed (never
// partial) profile records, serialized once and served byte-for-byte.
// Entries live in memory and — when the server has a state directory —
// as atomically-written files under <dir>/cache/<hex>.json, which is
// what makes a finished job's result survive a restart without rerun.
type cache struct {
	mu   sync.Mutex
	dir  string // "" = memory only
	mem  map[string][]byte
	hits uint64
	miss uint64
}

func newCache(stateDir string) (*cache, error) {
	c := &cache{mem: make(map[string][]byte)}
	if stateDir != "" {
		c.dir = filepath.Join(stateDir, "cache")
		if err := os.MkdirAll(c.dir, 0o755); err != nil {
			return nil, err
		}
	}
	return c, nil
}

func (c *cache) path(digest string) string {
	return filepath.Join(c.dir, digestHex(digest)+".json")
}

// get returns the cached record bytes for digest, falling back to the
// on-disk copy (and repopulating memory) when the entry predates this
// process.
func (c *cache) get(digest string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if b, ok := c.mem[digest]; ok {
		c.hits++
		return b, true
	}
	if c.dir != "" {
		if b, err := os.ReadFile(c.path(digest)); err == nil {
			c.mem[digest] = b
			c.hits++
			return b, true
		}
	}
	c.miss++
	return nil, false
}

// put stores the record bytes under digest. Identical re-puts are
// harmless: content addressing means the bytes cannot differ.
func (c *cache) put(digest string, rec []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.mem[digest]; ok {
		return nil
	}
	c.mem[digest] = rec
	if c.dir != "" {
		return atomicio.WriteFileBytes(c.path(digest), rec)
	}
	return nil
}

// stats returns (entries, hits, misses).
func (c *cache) stats() (int, uint64, uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.mem), c.hits, c.miss
}
