package serve

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"

	"valueprof/internal/program"
)

// Digest format (documented in docs/serve.md): a job's cache identity
// is "vpd1:" followed by 64 hex digits of SHA-256 over the canonical
// encoding
//
//	"VPDG1\x00"
//	uvarint(len(image)) ‖ image                 (canonical VPX1 bytes)
//	uvarint(#inputs) ‖ per input:
//	    uvarint(len) ‖ each value, 8-byte little-endian
//	JSON of the normalized JobConfig
//
// The image is the canonical re-save of the submitted program and the
// config is normalized before encoding, so equivalent submissions —
// assembly vs. image, defaults spelled out vs. omitted — share one
// digest. Sub-runs use the same format with a single input, which is
// how a multi-input job reuses another job's overlapping work.
const digestPrefix = "vpd1:"

// DigestOf computes the content-addressed identity of (program image,
// inputs, normalized config).
func DigestOf(image []byte, inputs [][]int64, cfg *JobConfig) (string, error) {
	h := sha256.New()
	h.Write([]byte("VPDG1\x00"))
	writeUvarint(h, uint64(len(image)))
	h.Write(image)
	writeUvarint(h, uint64(len(inputs)))
	var le [8]byte
	for _, in := range inputs {
		writeUvarint(h, uint64(len(in)))
		for _, v := range in {
			binary.LittleEndian.PutUint64(le[:], uint64(v))
			h.Write(le[:])
		}
	}
	cj, err := json.Marshal(cfg)
	if err != nil {
		return "", fmt.Errorf("serve: encoding config for digest: %w", err)
	}
	h.Write(cj)
	return digestPrefix + hex.EncodeToString(h.Sum(nil)), nil
}

// digestHex strips the format prefix, returning the bare hex used as a
// cache file name.
func digestHex(digest string) string {
	if len(digest) > len(digestPrefix) && digest[:len(digestPrefix)] == digestPrefix {
		return digest[len(digestPrefix):]
	}
	return digest
}

func writeUvarint(w io.Writer, v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	w.Write(buf[:n])
}

// saveImage serializes a program to its canonical VPX1 bytes.
func saveImage(p *program.Program) ([]byte, error) {
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func bytesReader(b []byte) io.Reader { return bytes.NewReader(b) }

// shortHex returns the first 12 hex digits of SHA-256 over data: the
// deterministic short name records use for wire-submitted programs and
// inputs ("prog-xxxxxxxxxxxx", "in-xxxxxxxxxxxx").
func shortHex(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])[:12]
}

// inputName derives the deterministic record label of one input
// vector.
func inputName(in []int64) string {
	var buf bytes.Buffer
	writeUvarint(&buf, uint64(len(in)))
	var le [8]byte
	for _, v := range in {
		binary.LittleEndian.PutUint64(le[:], uint64(v))
		buf.Write(le[:])
	}
	return "in-" + shortHex(buf.Bytes())
}
