package serve

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"valueprof/internal/asm"
)

// TestDigestStability pins the digest format: any change to the
// canonical encoding (prefix, uvarint framing, config normalization)
// breaks this golden and must bump the "vpd1" format tag, because
// persisted caches key on these strings.
func TestDigestStability(t *testing.T) {
	cfg := &JobConfig{}
	if err := cfg.Normalize(); err != nil {
		t.Fatal(err)
	}
	got, err := DigestOf([]byte("not-a-real-image"), [][]int64{{1, 2, 3}}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "digest_stability.txt", []byte(got+"\n"))
}

func TestDigestSensitivityAndNormalization(t *testing.T) {
	base := &JobConfig{}
	if err := base.Normalize(); err != nil {
		t.Fatal(err)
	}
	image := []byte("image-a")
	d0, err := DigestOf(image, [][]int64{{1}}, base)
	if err != nil {
		t.Fatal(err)
	}

	// Every digest input changes the digest...
	if d1, _ := DigestOf([]byte("image-b"), [][]int64{{1}}, base); d1 == d0 {
		t.Error("image change did not change digest")
	}
	if d1, _ := DigestOf(image, [][]int64{{2}}, base); d1 == d0 {
		t.Error("input change did not change digest")
	}
	if d1, _ := DigestOf(image, [][]int64{{1}, {1}}, base); d1 == d0 {
		t.Error("input count change did not change digest")
	}
	loads := &JobConfig{Filter: "loads"}
	if err := loads.Normalize(); err != nil {
		t.Fatal(err)
	}
	if d1, _ := DigestOf(image, [][]int64{{1}}, loads); d1 == d0 {
		t.Error("config change did not change digest")
	}

	// ...but spelling out the defaults does not: normalization folds
	// equivalent configs onto one cache identity.
	spelled := &JobConfig{Filter: "all", MaxAttempts: 1}
	if err := spelled.Normalize(); err != nil {
		t.Fatal(err)
	}
	if d1, _ := DigestOf(image, [][]int64{{1}}, spelled); d1 != d0 {
		t.Errorf("explicit defaults split the cache: %s vs %s", d1, d0)
	}
}

func TestProgramCanonicalization(t *testing.T) {
	// An assembly submission and its image twin share one digest
	// because decodeProgram re-saves both to canonical bytes.
	prog, err := asm.Assemble(loopSrc)
	if err != nil {
		t.Fatal(err)
	}
	image, err := saveImage(prog)
	if err != nil {
		t.Fatal(err)
	}
	_, fromAsm, err := decodeProgram(WireProgram{Asm: loopSrc})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fromAsm, image) {
		t.Fatal("asm submission did not canonicalize to the saved image")
	}
}

func TestCacheDiskRoundTrip(t *testing.T) {
	dir := t.TempDir()
	c1, err := newCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	rec := []byte(`{"fake":"record"}`)
	if err := c1.put("vpd1:abc123", rec); err != nil {
		t.Fatal(err)
	}

	// A second cache over the same directory — a restarted daemon —
	// serves the exact bytes from disk.
	c2, err := newCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := c2.get("vpd1:abc123")
	if !ok || !bytes.Equal(got, rec) {
		t.Fatalf("disk round-trip: ok=%v got=%s", ok, got)
	}
	if _, ok := c2.get("vpd1:missing"); ok {
		t.Fatal("phantom cache hit")
	}
	entries, hits, misses := c2.stats()
	if entries != 1 || hits != 1 || misses != 1 {
		t.Fatalf("stats entries=%d hits=%d misses=%d", entries, hits, misses)
	}
}

func TestManifestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	if err := os.MkdirAll(filepath.Join(dir, "jobs"), 0o755); err != nil {
		t.Fatal(err)
	}
	prog, err := asm.Assemble(loopSrc)
	if err != nil {
		t.Fatal(err)
	}
	image, err := saveImage(prog)
	if err != nil {
		t.Fatal(err)
	}
	cfg := JobConfig{StepLimit: 9999}
	if err := cfg.Normalize(); err != nil {
		t.Fatal(err)
	}
	j := &job{
		ID: "j-7", Seq: 7, Client: "c", Digest: "vpd1:feed",
		Prog: prog, Image: image, Inputs: [][]int64{{5}},
		Config: cfg, state: StateRunning, attempts: 2, resumed: 1,
	}
	if err := j.persist(dir, ""); err != nil {
		t.Fatal(err)
	}
	got, err := loadManifest(manifestPath(dir, "j-7"))
	if err != nil {
		t.Fatal(err)
	}
	// A job persisted as running died mid-run: it recovers as queued.
	if got.state != StateQueued {
		t.Fatalf("recovered state %q, want queued", got.state)
	}
	if got.Seq != 7 || got.Client != "c" || got.attempts != 2 || got.resumed != 1 {
		t.Fatalf("recovered job mismatch: %+v", got)
	}
	if got.Config.StepLimit != 9999 {
		t.Fatalf("recovered config %+v", got.Config)
	}
	if !bytes.Equal(got.Image, image) || got.Prog == nil {
		t.Fatal("recovered image/program mismatch")
	}

	// Eviction persists a running job under an overridden queued state.
	if err := j.persist(dir, StateQueued); err != nil {
		t.Fatal(err)
	}
	got, err = loadManifest(manifestPath(dir, "j-7"))
	if err != nil {
		t.Fatal(err)
	}
	if got.state != StateQueued {
		t.Fatalf("evicted state %q", got.state)
	}
}

func TestP95Index(t *testing.T) {
	cases := []struct{ n, want int }{
		{1, 0}, {2, 1}, {10, 9}, {20, 18}, {100, 94}, {200, 189},
	}
	for _, c := range cases {
		if got := p95Index(c.n); got != c.want {
			t.Errorf("p95Index(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestInputNameDeterminism(t *testing.T) {
	a := inputName([]int64{1, 2})
	if b := inputName([]int64{1, 2}); b != a {
		t.Fatalf("same input named %q and %q", a, b)
	}
	if b := inputName([]int64{2, 1}); b == a {
		t.Fatal("different inputs share a name")
	}
	if b := inputName(nil); b == a || len(b) == 0 {
		t.Fatalf("empty input name %q", b)
	}
}
