// Package serve is the profiling-as-a-service layer: a long-running
// HTTP/JSON daemon (mounted by cmd/vprofd) that accepts profiling jobs
// — a VRISC program image, one or more input vectors, and a profiler
// config — validates them with analysis.Verify, runs them under
// request budgets on arena-pooled VMs and profilers, streams partial
// profiles and convergence progress over SSE, and serves merged
// results from a content-addressed profile cache keyed by the
// (program, inputs, config) digest.
//
// Multi-tenancy comes from per-client job queues served round-robin
// (one flooding client delays its own backlog, not everyone else's),
// request budgets reuse the vm control plane (step limits, deadlines),
// and in-flight jobs survive a restart: every PulseEvery instructions
// the runner persists a VPCKPT1 checkpoint, a SIGTERM shutdown evicts
// running jobs back to the queue, and recovery resumes them from the
// checkpoint — producing results byte-identical to an uninterrupted
// run (the restart-survival test pins this). See docs/serve.md for the
// endpoint contracts, error classes, and digest format.
package serve

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"valueprof/internal/core"
)

// Options configures a Server.
type Options struct {
	// StateDir, when non-empty, makes the daemon durable: the content
	// cache, job manifests, and in-flight checkpoints live under it,
	// and New recovers and re-enqueues unfinished jobs found there.
	// Empty runs memory-only (tests, ephemeral services).
	StateDir string
	// Workers is the number of concurrent job runners; <= 0 selects 2.
	// 0 workers is selected explicitly with NoWorkers (queued jobs then
	// never run — useful for inspecting queue behavior).
	Workers int
	// NoWorkers starts the server without any runner goroutines.
	NoWorkers bool
	// MaxBody caps a request body in bytes; <= 0 selects 8 MiB.
	// Oversized submissions are rejected with class "oversized".
	MaxBody int64
	// PulseEvery is the instruction interval between progress events;
	// <= 0 selects 20000.
	PulseEvery uint64
	// CheckpointEvery is the instruction interval between in-flight
	// checkpoint persists (each snapshots the guest memory image, so
	// this is much coarser than PulseEvery); <= 0 selects
	// core.DefaultCheckpointEvery.
	CheckpointEvery uint64
	// MaxQueuedPerClient caps one tenant's queue depth; <= 0 selects
	// 256. A full queue rejects with class "overloaded".
	MaxQueuedPerClient int
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = 2
	}
	if o.NoWorkers {
		o.Workers = 0
	}
	if o.MaxBody <= 0 {
		o.MaxBody = 8 << 20
	}
	if o.PulseEvery == 0 {
		o.PulseEvery = 20000
	}
	if o.CheckpointEvery == 0 {
		o.CheckpointEvery = core.DefaultCheckpointEvery
	}
	if o.MaxQueuedPerClient <= 0 {
		o.MaxQueuedPerClient = 256
	}
	return o
}

// Server is the profiling daemon: construct with New, mount Handler on
// an http.Server, and stop with Shutdown.
type Server struct {
	opts  Options
	cache *cache
	sched *scheduler

	mu      sync.Mutex
	jobs    map[string]*job
	nextSeq uint64

	runCtx  context.Context
	stopRun context.CancelFunc
	closing atomic.Bool
	wg      sync.WaitGroup
}

// New builds a server, recovers any persisted state, and starts the
// worker pool.
func New(opts Options) (*Server, error) {
	opts = opts.withDefaults()
	c, err := newCache(opts.StateDir)
	if err != nil {
		return nil, fmt.Errorf("serve: cache: %w", err)
	}
	s := &Server{
		opts:    opts,
		cache:   c,
		sched:   newScheduler(),
		jobs:    make(map[string]*job),
		nextSeq: 1,
	}
	s.runCtx, s.stopRun = context.WithCancel(context.Background())
	if opts.StateDir != "" {
		if err := os.MkdirAll(filepath.Join(opts.StateDir, "jobs"), 0o755); err != nil {
			return nil, fmt.Errorf("serve: state dir: %w", err)
		}
		if err := s.recover(); err != nil {
			return nil, err
		}
	}
	for w := 0; w < opts.Workers; w++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for {
				j, ok := s.sched.next()
				if !ok {
					return
				}
				s.execute(j)
			}
		}()
	}
	return s, nil
}

// recover reloads persisted jobs, re-enqueueing every non-terminal one
// in original submission order so recovered work keeps its queue
// position.
func (s *Server) recover() error {
	dir := filepath.Join(s.opts.StateDir, "jobs")
	entries, err := os.ReadDir(dir)
	if err != nil {
		return fmt.Errorf("serve: recovering jobs: %w", err)
	}
	var recovered []*job
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		j, err := loadManifest(filepath.Join(dir, e.Name()))
		if err != nil {
			// A torn manifest cannot happen (atomicio), but an operator-
			// damaged one should not brick the daemon: skip it.
			continue
		}
		recovered = append(recovered, j)
	}
	sort.Slice(recovered, func(i, k int) bool { return recovered[i].Seq < recovered[k].Seq })
	for _, j := range recovered {
		s.jobs[j.ID] = j
		if j.Seq >= s.nextSeq {
			s.nextSeq = j.Seq + 1
		}
		if !terminalState(j.state) {
			j.ctx, j.cancel = context.WithCancel(s.runCtx)
			s.sched.enqueue(j, 0)
		}
	}
	return nil
}

// submit registers a validated job and queues it (or completes it
// immediately on a cache hit). It returns the job and whether the
// result came from the cache.
func (s *Server) submit(req *JobRequest) (*job, bool, *RequestError) {
	if s.closing.Load() {
		return nil, false, reqErr(ClassClosing, "server is shutting down")
	}
	prog, image, err := decodeProgram(req.Program)
	if err != nil {
		return nil, false, err.(*RequestError)
	}
	if len(req.Inputs) == 0 {
		return nil, false, reqErr(ClassConfig, "inputs must hold at least one input vector (use [[]] for no input)")
	}
	cfg := req.Config
	if nerr := cfg.Normalize(); nerr != nil {
		return nil, false, nerr.(*RequestError)
	}
	client := req.Client
	if client == "" {
		client = "anonymous"
	}
	digest, derr := DigestOf(image, req.Inputs, &cfg)
	if derr != nil {
		return nil, false, reqErr(ClassInternal, "%v", derr)
	}

	s.mu.Lock()
	seq := s.nextSeq
	s.nextSeq++
	j := &job{
		ID:     fmt.Sprintf("j-%d", seq),
		Seq:    seq,
		Client: client,
		Digest: digest,
		Prog:   prog,
		Image:  image,
		Inputs: req.Inputs,
		Config: cfg,
		state:  StateQueued,
	}
	s.jobs[j.ID] = j
	s.mu.Unlock()

	if _, hit := s.cache.get(digest); hit {
		j.mu.Lock()
		j.state = StateCompleted
		j.cached = true
		j.inputsDone = len(j.Inputs)
		j.mu.Unlock()
		j.finishEvents()
		j.persist(s.opts.StateDir, "")
		return j, true, nil
	}

	j.ctx, j.cancel = context.WithCancel(s.runCtx)
	if !s.sched.enqueue(j, s.opts.MaxQueuedPerClient) {
		s.mu.Lock()
		delete(s.jobs, j.ID)
		s.mu.Unlock()
		return nil, false, reqErr(ClassOverloaded, "client %q has %d queued jobs (limit)", client, s.opts.MaxQueuedPerClient)
	}
	j.persist(s.opts.StateDir, "")
	return j, false, nil
}

// jobByID returns a registered job.
func (s *Server) jobByID(id string) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// cancelJob moves a queued or running job to cancelled; terminal jobs
// are left as they are (idempotent cancel).
func (s *Server) cancelJob(j *job) {
	j.mu.Lock()
	if terminalState(j.state) {
		j.mu.Unlock()
		return
	}
	wasQueued := j.state == StateQueued
	j.state = StateCancelled
	j.errClass = ClassCancelled
	j.errMsg = "cancelled by client"
	j.mu.Unlock()
	if j.cancel != nil {
		j.cancel()
	}
	if wasQueued {
		// The runner never saw this job; finalize it here. A running
		// job's runner observes the cancelled context and finalizes.
		j.finishEvents()
		j.persist(s.opts.StateDir, "")
		s.removeCheckpoint(j)
	}
}

// Shutdown stops the daemon: no new submissions, queued jobs stay
// queued, running jobs are evicted at their next control boundary with
// their checkpoints persisted, and every worker exits. A server with a
// state directory can then be rebuilt with New to resume exactly where
// it stopped.
func (s *Server) Shutdown(ctx context.Context) error {
	s.closing.Store(true)
	s.stopRun()
	s.sched.close()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		return fmt.Errorf("serve: shutdown: %w", ctx.Err())
	}
	// Workers are gone; persist still-queued jobs (they were persisted
	// as queued at submit, but their inputsDone may have advanced) and
	// release their subscribers.
	for _, j := range s.sched.drain() {
		j.persist(s.opts.StateDir, StateQueued)
		j.finishEvents()
	}
	s.mu.Lock()
	jobs := make([]*job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()
	for _, j := range jobs {
		j.finishEvents()
	}
	return nil
}

// removeCheckpoint deletes the job's persisted in-flight checkpoint.
func (s *Server) removeCheckpoint(j *job) {
	if s.opts.StateDir == "" {
		return
	}
	os.Remove(checkpointPath(s.opts.StateDir, j.ID))
}

// CacheStats reports the content cache's entry count, hits, and misses
// (exposed by GET /v1/stats).
type CacheStats struct {
	Entries int    `json:"entries"`
	Hits    uint64 `json:"hits"`
	Misses  uint64 `json:"misses"`
}

// Stats is the GET /v1/stats body.
type Stats struct {
	Jobs    int            `json:"jobs"`
	Cache   CacheStats     `json:"cache"`
	Clients []ClientReport `json:"clients"`
}

func (s *Server) stats() Stats {
	s.mu.Lock()
	n := len(s.jobs)
	s.mu.Unlock()
	entries, hits, misses := s.cache.stats()
	return Stats{
		Jobs:    n,
		Cache:   CacheStats{Entries: entries, Hits: hits, Misses: misses},
		Clients: s.sched.report(),
	}
}
