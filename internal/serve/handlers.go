package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
)

// The HTTP surface (full contracts in docs/serve.md):
//
//	POST /v1/jobs               submit; 202 queued, 200 cache hit
//	GET  /v1/jobs/{id}          job status
//	GET  /v1/jobs/{id}/result   completed/salvaged profile record
//	GET  /v1/jobs/{id}/stream   SSE progress until terminal
//	POST /v1/jobs/{id}/cancel   cancel; idempotent
//	GET  /v1/stats              scheduler and cache counters
//	GET  /healthz               liveness
//
// Every error body is {"error":{"class":...,"message":...}} with the
// class drawn from the documented set; handlers never panic the daemon
// and never touch the filesystem (all durability lives behind the job
// and cache layers, which write through atomicio).

// statusOf maps a wire error class to its HTTP status.
func statusOf(class string) int {
	switch class {
	case ClassBadRequest:
		return http.StatusBadRequest
	case ClassInvalidProgram, ClassConfig:
		return http.StatusUnprocessableEntity
	case ClassOversized:
		return http.StatusRequestEntityTooLarge
	case ClassUnknownJob:
		return http.StatusNotFound
	case ClassNotReady, ClassBudget, ClassFaulted, ClassCancelled:
		return http.StatusConflict
	case ClassMethod:
		return http.StatusMethodNotAllowed
	case ClassOverloaded:
		return http.StatusTooManyRequests
	case ClassClosing:
		return http.StatusServiceUnavailable
	}
	return http.StatusInternalServerError
}

// Handler returns the daemon's HTTP handler, ready to mount on an
// http.Server (or httptest.Server).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.withJob(s.handleStatus))
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.withJob(s.handleResult))
	mux.HandleFunc("GET /v1/jobs/{id}/stream", s.withJob(s.handleStream))
	mux.HandleFunc("POST /v1/jobs/{id}/cancel", s.withJob(s.handleCancel))
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
	})
	// The pattern mux answers unmatched methods with a bare 405; wrap it
	// so those too speak the uniform error body.
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw := &statusCapture{ResponseWriter: w}
		mux.ServeHTTP(sw, r)
	})
}

// statusCapture rewrites the mux's built-in 405/404 text responses
// into the API's JSON error contract.
type statusCapture struct {
	http.ResponseWriter
	rewrote bool
	done    bool
}

func (c *statusCapture) WriteHeader(code int) {
	c.done = true
	if code == http.StatusMethodNotAllowed {
		c.rewrote = true
		writeJSON(c.ResponseWriter, code, errBody(ClassMethod, "method not allowed"))
		return
	}
	if code == http.StatusNotFound {
		c.rewrote = true
		writeJSON(c.ResponseWriter, code, errBody(ClassUnknownJob, "no such resource"))
		return
	}
	c.ResponseWriter.WriteHeader(code)
}

func (c *statusCapture) Write(b []byte) (int, error) {
	if c.rewrote {
		return len(b), nil // swallow the mux's plain-text body
	}
	c.done = true
	return c.ResponseWriter.Write(b)
}

// Flush forwards to the underlying writer (SSE needs it).
func (c *statusCapture) Flush() {
	if f, ok := c.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func errBody(class, format string, args ...any) map[string]WireError {
	return map[string]WireError{"error": {Class: class, Message: fmt.Sprintf(format, args...)}}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	enc.Encode(v)
}

func writeErr(w http.ResponseWriter, class, format string, args ...any) {
	writeJSON(w, statusOf(class), errBody(class, format, args...))
}

// withJob resolves the {id} path segment before invoking the handler.
func (s *Server) withJob(h func(http.ResponseWriter, *http.Request, *job)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		j, ok := s.jobByID(id)
		if !ok {
			writeErr(w, ClassUnknownJob, "no job %q", id)
			return
		}
		h(w, r, j)
	}
}

// submitResponse is the POST /v1/jobs body: the job's immediate status.
type submitResponse struct {
	Job JobStatus `json:"job"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, s.opts.MaxBody)
	var req JobRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeErr(w, ClassOversized, "request body exceeds %d bytes", tooBig.Limit)
			return
		}
		writeErr(w, ClassBadRequest, "decoding request: %v", err)
		return
	}
	j, cached, rerr := s.submit(&req)
	if rerr != nil {
		writeErr(w, rerr.Class, "%s", rerr.Msg)
		return
	}
	status := http.StatusAccepted
	if cached {
		status = http.StatusOK
	}
	writeJSON(w, status, submitResponse{Job: j.status()})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request, j *job) {
	writeJSON(w, http.StatusOK, j.status())
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request, j *job) {
	st := j.status()
	switch st.State {
	case StateCompleted:
		rec, ok := s.cache.get(j.Digest)
		if !ok {
			writeErr(w, ClassInternal, "result for %s missing from cache", j.ID)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("X-Vprof-Digest", j.Digest)
		w.WriteHeader(http.StatusOK)
		w.Write(rec)
	case StateSalvaged:
		// A salvaged partial is served from the job (never the cache: it
		// is not the config's true profile) with the budget failure that
		// produced it echoed in a header.
		j.mu.Lock()
		rec := j.result
		j.mu.Unlock()
		if rec == nil {
			writeErr(w, ClassInternal, "salvaged job %s has no partial record", j.ID)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("X-Vprof-Salvaged", "true")
		w.WriteHeader(http.StatusOK)
		w.Write(rec)
	case StateFailed, StateCancelled:
		writeErr(w, st.Error.Class, "%s", st.Error.Message)
	default:
		writeErr(w, ClassNotReady, "job %s is %s", j.ID, st.State)
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request, j *job) {
	s.cancelJob(j)
	writeJSON(w, http.StatusOK, j.status())
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.stats())
}

// handleStream is the SSE endpoint: one "status" event with the state
// at subscription, "progress" events while the job runs, and a final
// "done" event carrying the terminal JobStatus. The stream also ends
// (without "done") if the daemon shuts down or the client disconnects.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request, j *job) {
	fl, ok := w.(http.Flusher)
	if !ok {
		writeErr(w, ClassInternal, "streaming unsupported by this connection")
		return
	}
	ch, unsub := j.subscribe()
	defer unsub()

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	writeEvent(w, "status", j.status())
	fl.Flush()

	for {
		select {
		case <-r.Context().Done():
			return
		case ev, open := <-ch:
			if !open {
				st := j.status()
				if terminalState(st.State) {
					writeEvent(w, "done", st)
					fl.Flush()
				}
				return
			}
			writeEvent(w, "progress", ev)
			fl.Flush()
		}
	}
}

// writeEvent emits one SSE frame with a JSON data payload.
func writeEvent(w http.ResponseWriter, event string, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		return
	}
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data)
}
