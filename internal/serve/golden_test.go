package serve

import (
	"context"
	"encoding/base64"
	"net/http"
	"regexp"
	"testing"
	"time"
)

// The golden suite pins the API contract — status codes and exact JSON
// bodies — for every endpoint, including the documented error classes.
// Each test uses a fresh daemon so job IDs, digests, and counters are
// fully deterministic; `go test ./internal/serve -run Golden -update`
// regenerates the files after an intentional contract change.

func TestGoldenHealthz(t *testing.T) {
	_, hs := newHTTPServer(t, Options{NoWorkers: true})
	code, body := call(t, http.MethodGet, hs.URL+"/healthz", nil)
	checkGoldenResponse(t, "healthz.txt", code, body)
}

func TestGoldenSubmitQueued(t *testing.T) {
	_, hs := newHTTPServer(t, Options{NoWorkers: true})
	code, body := call(t, http.MethodPost, hs.URL+"/v1/jobs", loopRequest("golden", 100))
	checkGoldenResponse(t, "submit_queued.txt", code, body)

	code, body = call(t, http.MethodGet, hs.URL+"/v1/jobs/j-1", nil)
	checkGoldenResponse(t, "status_queued.txt", code, body)

	code, body = call(t, http.MethodGet, hs.URL+"/v1/jobs/j-1/result", nil)
	checkGoldenResponse(t, "result_not_ready.txt", code, body)
}

func TestGoldenCancelQueued(t *testing.T) {
	_, hs := newHTTPServer(t, Options{NoWorkers: true})
	code, body := call(t, http.MethodPost, hs.URL+"/v1/jobs", loopRequest("golden", 100))
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d\n%s", code, body)
	}
	code, body = call(t, http.MethodPost, hs.URL+"/v1/jobs/j-1/cancel", nil)
	checkGoldenResponse(t, "cancel_queued.txt", code, body)

	// Cancel is idempotent and the terminal state sticks.
	code, body = call(t, http.MethodPost, hs.URL+"/v1/jobs/j-1/cancel", nil)
	checkGoldenResponse(t, "cancel_again.txt", code, body)

	code, body = call(t, http.MethodGet, hs.URL+"/v1/jobs/j-1/result", nil)
	checkGoldenResponse(t, "result_cancelled.txt", code, body)
}

// TestGoldenSubmitErrors pins the error contract for every documented
// rejection: malformed request shapes, undecodable and
// verifier-rejected programs, and config incompatibilities.
func TestGoldenSubmitErrors(t *testing.T) {
	cases := []struct {
		name string
		body any
	}{
		{"err_bad_json.txt", `{"program": nope`},
		{"err_no_program.txt", &JobRequest{Inputs: [][]int64{{1}}}},
		{"err_both_forms.txt", &JobRequest{
			Program: WireProgram{Asm: loopSrc, Image: "aGk="},
			Inputs:  [][]int64{{1}},
		}},
		{"err_bad_base64.txt", &JobRequest{
			Program: WireProgram{Image: "!!not-base64!!"},
			Inputs:  [][]int64{{1}},
		}},
		{"err_bad_image.txt", &JobRequest{
			Program: WireProgram{Image: base64.StdEncoding.EncodeToString([]byte("garbage, not a VPX1 image"))},
			Inputs:  [][]int64{{1}},
		}},
		{"err_bad_asm.txt", &JobRequest{
			Program: WireProgram{Asm: "this is not assembly"},
			Inputs:  [][]int64{{1}},
		}},
		{"err_verify_falloff.txt", &JobRequest{
			Program: WireProgram{Asm: fallOffSrc},
			Inputs:  [][]int64{{1}},
		}},
		{"err_no_inputs.txt", &JobRequest{Program: WireProgram{Asm: loopSrc}}},
		{"err_bad_filter.txt", &JobRequest{
			Program: WireProgram{Asm: loopSrc},
			Inputs:  [][]int64{{1}},
			Config:  JobConfig{Filter: "stores"},
		}},
		{"err_bad_tnv.txt", &JobRequest{
			Program: WireProgram{Asm: loopSrc},
			Inputs:  [][]int64{{1}},
			Config:  JobConfig{TNV: &WireTNV{Size: -4, Steady: 2}},
		}},
		{"err_bad_budget.txt", &JobRequest{
			Program: WireProgram{Asm: loopSrc},
			Inputs:  [][]int64{{1}},
			Config:  JobConfig{DeadlineMs: -5},
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, hs := newHTTPServer(t, Options{NoWorkers: true})
			code, body := call(t, http.MethodPost, hs.URL+"/v1/jobs", tc.body)
			checkGoldenResponse(t, tc.name, code, body)
		})
	}
}

func TestGoldenOversized(t *testing.T) {
	_, hs := newHTTPServer(t, Options{NoWorkers: true, MaxBody: 256})
	code, body := call(t, http.MethodPost, hs.URL+"/v1/jobs", loopRequest("golden", 100))
	checkGoldenResponse(t, "err_oversized.txt", code, body)
}

func TestGoldenOverloaded(t *testing.T) {
	_, hs := newHTTPServer(t, Options{NoWorkers: true, MaxQueuedPerClient: 2})
	for i := 0; i < 2; i++ {
		if code, _ := call(t, http.MethodPost, hs.URL+"/v1/jobs", loopRequest("golden", 100+int64(i))); code != http.StatusAccepted {
			t.Fatalf("submit %d rejected with %d", i, code)
		}
	}
	code, body := call(t, http.MethodPost, hs.URL+"/v1/jobs", loopRequest("golden", 300))
	checkGoldenResponse(t, "err_overloaded.txt", code, body)
}

func TestGoldenUnknownAndMethod(t *testing.T) {
	_, hs := newHTTPServer(t, Options{NoWorkers: true})
	code, body := call(t, http.MethodGet, hs.URL+"/v1/jobs/j-404", nil)
	checkGoldenResponse(t, "err_unknown_job.txt", code, body)

	code, body = call(t, http.MethodDelete, hs.URL+"/v1/jobs", nil)
	checkGoldenResponse(t, "err_method.txt", code, body)

	code, body = call(t, http.MethodGet, hs.URL+"/v1/nope", nil)
	checkGoldenResponse(t, "err_unknown_path.txt", code, body)
}

func TestGoldenClosing(t *testing.T) {
	s, hs := newHTTPServer(t, Options{NoWorkers: true})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	code, body := call(t, http.MethodPost, hs.URL+"/v1/jobs", loopRequest("golden", 100))
	checkGoldenResponse(t, "err_closing.txt", code, body)
}

// TestGoldenCompletedFlow pins the happy path end to end: submit, run,
// status, the exact profile record served as the result, the cache hit
// on identical resubmission, and the stats counters afterwards.
func TestGoldenCompletedFlow(t *testing.T) {
	s, hs := newHTTPServer(t, Options{Workers: 1, PulseEvery: 1000})
	code, st := submitHTTP(t, hs.URL, loopRequest("golden", 100))
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	waitTerminal(t, s, st.ID)

	code, body := call(t, http.MethodGet, hs.URL+"/v1/jobs/j-1", nil)
	checkGoldenResponse(t, "status_completed.txt", code, body)

	code, body = call(t, http.MethodGet, hs.URL+"/v1/jobs/j-1/result", nil)
	checkGoldenResponse(t, "result_completed.txt", code, body)

	// The identical resubmission never queues: it is answered from the
	// content cache with 200 and cached=true.
	code, body = call(t, http.MethodPost, hs.URL+"/v1/jobs", loopRequest("golden", 100))
	checkGoldenResponse(t, "submit_cached.txt", code, body)

	code, body = call(t, http.MethodGet, hs.URL+"/v1/stats", nil)
	checkGoldenResponse(t, "stats.txt", code, scrubStats(body))
}

// TestGoldenStreamFinished pins the SSE framing for a job that is
// already terminal: a status event, then the done event.
func TestGoldenStreamFinished(t *testing.T) {
	s, hs := newHTTPServer(t, Options{Workers: 1})
	code, st := submitHTTP(t, hs.URL, loopRequest("golden", 100))
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	waitTerminal(t, s, st.ID)
	code, body := call(t, http.MethodGet, hs.URL+"/v1/jobs/j-1/stream", nil)
	checkGoldenResponse(t, "stream_finished.txt", code, body)
}

// scrubStats zeroes the one wall-clock-dependent stats field so the
// rest of the body can be pinned exactly.
var p95Wait = regexp.MustCompile(`"p95WaitMs": [0-9.e+-]+`)

func scrubStats(body []byte) []byte {
	return p95Wait.ReplaceAll(body, []byte(`"p95WaitMs": 0`))
}

// TestGoldenMultiInputStatus pins a multi-input job's status shape
// (inputs vs inputsDone) after completion.
func TestGoldenMultiInputStatus(t *testing.T) {
	s, hs := newHTTPServer(t, Options{Workers: 1})
	code, st := submitHTTP(t, hs.URL, loopRequest("golden", 50, 60))
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	waitTerminal(t, s, st.ID)
	code, body := call(t, http.MethodGet, hs.URL+"/v1/jobs/j-1", nil)
	checkGoldenResponse(t, "status_multi_input.txt", code, body)

	code, body = call(t, http.MethodGet, hs.URL+"/v1/jobs/j-1/result", nil)
	checkGoldenResponse(t, "result_multi_input.txt", code, body)
}
