package serve

import (
	"bytes"
	"fmt"
	"time"

	"valueprof/internal/atom"
	"valueprof/internal/core"
	"valueprof/internal/parallel"
	"valueprof/internal/vm"
)

// execute runs one dequeued job to a terminal state (or back to queued
// when the daemon is evicting it for shutdown). A job is a sequence of
// sub-runs, one per input; each sub-run is content-addressed on its
// own, so a multi-input job reuses any sub-run another job already
// paid for, and the final result is the deterministic merge of the
// sub-records in input order.
func (s *Server) execute(j *job) {
	j.mu.Lock()
	if j.state != StateQueued {
		// Cancelled while queued; its terminal state already stands.
		j.mu.Unlock()
		return
	}
	j.state = StateRunning
	start := j.inputsDone
	j.mu.Unlock()
	j.persist(s.opts.StateDir, "")

	progName := "prog-" + shortHex(j.Image)
	for i := start; i < len(j.Inputs); i++ {
		if j.ctx.Err() != nil {
			s.interrupted(j)
			return
		}
		input := j.Inputs[i]
		subDigest, err := DigestOf(j.Image, [][]int64{input}, &j.Config)
		if err != nil {
			s.fail(j, ClassInternal, "digesting input %d: %v", i, err)
			return
		}
		if _, hit := s.cache.get(subDigest); hit {
			j.emit(ProgressEvent{Input: i, Inputs: len(j.Inputs), CachedInput: true})
		} else {
			rec, partial, class, msg := s.runOne(j, progName, i, input)
			switch class {
			case "":
				if err := s.cache.put(subDigest, rec); err != nil {
					s.fail(j, ClassInternal, "caching input %d: %v", i, err)
					return
				}
			case classEvicted:
				s.evict(j)
				return
			case ClassCancelled:
				s.interrupted(j)
				return
			default:
				if j.Config.SalvagePartial && partial != nil {
					s.salvage(j, partial, class, msg)
					return
				}
				s.fail(j, class, "%s", msg)
				return
			}
		}
		s.removeCheckpoint(j)
		j.mu.Lock()
		j.inputsDone = i + 1
		j.mu.Unlock()
		j.persist(s.opts.StateDir, "")
	}

	final, err := s.mergeSubRuns(j)
	if err != nil {
		s.fail(j, ClassInternal, "%v", err)
		return
	}
	if err := s.cache.put(j.Digest, final); err != nil {
		s.fail(j, ClassInternal, "caching result: %v", err)
		return
	}
	j.mu.Lock()
	j.state = StateCompleted
	j.mu.Unlock()
	j.persist(s.opts.StateDir, "")
	j.finishEvents()
}

// mergeSubRuns folds the job's cached sub-records — always parsed back
// from their serialized bytes, so a recovered daemon and an
// uninterrupted one feed the merge identical inputs — into the final
// record's bytes. A single-input job's record passes through verbatim
// (its job digest equals its sub-run digest).
func (s *Server) mergeSubRuns(j *job) ([]byte, error) {
	var merged *core.ProfileRecord
	for i, input := range j.Inputs {
		subDigest, err := DigestOf(j.Image, [][]int64{input}, &j.Config)
		if err != nil {
			return nil, err
		}
		b, ok := s.cache.get(subDigest)
		if !ok {
			return nil, fmt.Errorf("sub-run %d missing from cache", i)
		}
		if len(j.Inputs) == 1 {
			return b, nil
		}
		rec, err := core.ReadProfileRecord(bytesReader(b))
		if err != nil {
			return nil, fmt.Errorf("parsing sub-run %d: %w", i, err)
		}
		if merged == nil {
			merged = rec
			continue
		}
		if merged, err = core.MergeRecords(merged, rec); err != nil {
			return nil, err
		}
	}
	var buf bytes.Buffer
	if err := merged.WriteJSON(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// classEvicted is the internal (never wire-visible) class marking a
// sub-run interrupted by daemon shutdown.
const classEvicted = "evicted"

// pulse is the per-attempt atom.Tool behind progress streaming and
// restart survival: every `every` instructions it emits a
// ProgressEvent, and every `ckEvery` instructions — for resumable
// configs on a durable server — persists a VPCKPT1 checkpoint of the
// run (checkpoints snapshot the guest memory image, so their interval
// is much coarser). Like core.Checkpointer it arms lazily, so a
// resumed attempt pulses one full interval after its resume point.
type pulse struct {
	every    uint64
	ckEvery  uint64
	next     uint64
	ckNext   uint64
	vp       *core.ValueProfiler
	ckptPath string // "" = no persistence
	progName string
	inName   string
	event    func(v *vm.VM)
}

func (p *pulse) Instrument(ix *atom.Instrumenter) {
	ix.AddStep(func(v *vm.VM) error {
		if p.next == 0 {
			p.next = v.InstCount + p.every
			p.ckNext = v.InstCount + p.ckEvery
			return nil
		}
		if v.InstCount >= p.next {
			p.next = v.InstCount + p.every
			p.event(v)
		}
		if v.InstCount >= p.ckNext {
			p.ckNext = v.InstCount + p.ckEvery
			p.snapshot(v)
		}
		return nil
	})
}

// snapshot persists the in-flight checkpoint; failures are swallowed —
// a full disk degrades restart granularity, never the run.
func (p *pulse) snapshot(v *vm.VM) {
	if p.ckptPath == "" {
		return
	}
	if ck, err := core.CheckpointOf(p.vp, v, p.progName, p.inName); err == nil {
		ck.SaveAtomic(p.ckptPath)
	}
}

// runOne executes one sub-run (one input) through the retry loop,
// mirroring internal/supervise's classification: transient failures
// retry (resuming from the carried checkpoint when the config allows),
// budget overruns and deterministic guest faults stop the job. It
// returns the completed record's serialized bytes, or a non-empty wire
// error class with the salvageable partial record (nil unless
// SalvagePartial captured one).
func (s *Server) runOne(j *job, progName string, inputIdx int, input []int64) (rec, partial []byte, class, msg string) {
	cfg := &j.Config
	inName := inputName(input)
	opts := cfg.coreOptions()
	resumable := cfg.resumable()
	subStart := time.Now()

	var ckptPath string
	if resumable && s.opts.StateDir != "" {
		ckptPath = checkpointPath(s.opts.StateDir, j.ID)
	}

	// A carried checkpoint resumes the next attempt. The first attempt
	// loads it from disk — that is the restart-survival path — and
	// later attempts carry it in memory through the same serialized
	// form, so the integrity envelope guards both identically.
	var carried []byte
	if ckptPath != "" {
		if ck, err := core.LoadCheckpoint(ckptPath); err == nil &&
			ck.Program == progName && ck.Input == inName && ck.VM != nil {
			var buf bytes.Buffer
			if core.WriteCheckpoint(&buf, ck) == nil {
				carried = buf.Bytes()
			}
		}
	}

	type attemptEnd struct {
		outcome vm.RunOutcome
		inst    uint64
		base    uint64
		faultPC int
		resumed bool
	}
	var prev *attemptEnd

	for attempt := 1; attempt <= cfg.MaxAttempts; attempt++ {
		if j.ctx.Err() != nil {
			return nil, nil, s.interruptClass(), ""
		}

		var resume *core.Checkpoint
		if resumable && carried != nil {
			if ck, err := core.ReadCheckpoint(bytesReader(carried)); err == nil &&
				ck.VM != nil && ck.Program == progName && ck.Input == inName {
				resume = ck
			}
		}

		vp, err := parallel.AcquireProfiler(opts)
		if err != nil {
			return nil, nil, ClassInternal, fmt.Sprintf("profiler setup: %v", err)
		}
		if resume != nil {
			if err := vp.Seed(resume); err != nil {
				// Passed CRC but mismatches the profiler: as good as
				// corrupt. Demote to a fresh start.
				resume = nil
				if err := vp.ResetFor(opts); err != nil {
					parallel.ReleaseProfiler(vp)
					return nil, nil, ClassInternal, fmt.Sprintf("profiler reset: %v", err)
				}
			}
		}

		ropts := cfg.runOptions(input)
		ropts.Deadline = cfg.deadline(subStart, time.Now())
		v := parallel.AcquireVM(j.Prog, ropts.EffectiveMemSize())
		a := attemptEnd{}
		if resume != nil {
			a.base = resume.InstCount()
		}
		p := &pulse{
			every:    s.opts.PulseEvery,
			ckEvery:  s.opts.CheckpointEvery,
			vp:       vp,
			ckptPath: ckptPath,
			progName: progName,
			inName:   inName,
			event: func(v *vm.VM) {
				j.emit(ProgressEvent{
					Input:     inputIdx,
					Inputs:    len(j.Inputs),
					Attempt:   attempt,
					Resumed:   resume != nil,
					InstCount: v.InstCount,
					Values:    v.AnalysisCalls,
				})
			},
		}
		atom.PrepareOn(v, ropts, atom.Tool(vp), p)
		if resume != nil {
			if err := resume.RestoreVM(v); err != nil {
				// Machine state decoded but won't restore: restart the
				// attempt from scratch through the pooled-VM lifecycle.
				resume = nil
				a.base = 0
				if err := vp.ResetFor(opts); err != nil {
					parallel.ReleaseVM(v)
					return nil, nil, ClassInternal, fmt.Sprintf("profiler reset: %v", err)
				}
				v.ResetFor(j.Prog, ropts.EffectiveMemSize())
				atom.PrepareOn(v, ropts, atom.Tool(vp), p)
			} else {
				a.resumed = true
				j.mu.Lock()
				j.resumed++
				j.mu.Unlock()
			}
		}

		outcome, runErr := v.RunControlled(j.ctx)
		a.outcome = outcome
		a.inst = v.InstCount
		a.faultPC = v.PC
		j.mu.Lock()
		j.attempts++
		j.mu.Unlock()

		if outcome == vm.OutcomeCompleted {
			r := vp.Profile().Record(progName, inName)
			var buf bytes.Buffer
			err := r.WriteJSON(&buf)
			parallel.ReleaseVM(v)
			parallel.ReleaseProfiler(vp)
			if err != nil {
				return nil, nil, ClassInternal, fmt.Sprintf("serializing record: %v", err)
			}
			return buf.Bytes(), nil, "", ""
		}

		// The attempt stopped early. Capture its state: the serialized
		// checkpoint carries the run into the next attempt (and, on
		// disk, across a restart); the partial record is what salvage
		// keeps when the budget runs dry.
		if resumable {
			if ck, err := core.CheckpointOf(vp, v, progName, inName); err == nil {
				var buf bytes.Buffer
				if core.WriteCheckpoint(&buf, ck) == nil {
					carried = buf.Bytes()
					if ckptPath != "" {
						ck.SaveAtomic(ckptPath)
					}
				}
			}
		}
		if cfg.SalvagePartial {
			r := vp.Profile().Record(progName, inName)
			r.Salvaged = true
			r.Outcome = outcome.String()
			var buf bytes.Buffer
			if r.WriteJSON(&buf) == nil {
				partial = buf.Bytes()
			}
		}
		parallel.ReleaseVM(v)
		parallel.ReleaseProfiler(vp)

		switch outcome {
		case vm.OutcomeCancelled:
			return nil, partial, s.interruptClass(), ""
		case vm.OutcomeLimit:
			// StepLimit is the sub-run's total instruction budget; a
			// resumed retry would continue toward the same absolute
			// limit and stop on the same instruction.
			return nil, partial, ClassBudget,
				fmt.Sprintf("input %d: instruction budget %d exhausted", inputIdx, cfg.StepLimit)
		case vm.OutcomeDeadline:
			if a.resumed && a.inst <= a.base {
				return nil, partial, ClassBudget,
					fmt.Sprintf("input %d: no forward progress under attempt deadline", inputIdx)
			}
			// Retryable until attempts run out.
		case vm.OutcomeFaulted:
			if prev != nil && prev.outcome == vm.OutcomeFaulted &&
				prev.faultPC == a.faultPC && prev.inst == a.inst {
				return nil, partial, ClassFaulted,
					fmt.Sprintf("input %d: deterministic fault at pc %d: %v", inputIdx, a.faultPC, runErr)
			}
		}
		prev = &a
		if attempt == cfg.MaxAttempts {
			if outcome == vm.OutcomeFaulted {
				return nil, partial, ClassFaulted, fmt.Sprintf("input %d: %v", inputIdx, runErr)
			}
			return nil, partial, ClassBudget,
				fmt.Sprintf("input %d: %d attempts exhausted (last outcome %s)", inputIdx, cfg.MaxAttempts, outcome)
		}
	}
	return nil, partial, ClassBudget, fmt.Sprintf("input %d: no attempts permitted", inputIdx)
}

// interruptClass distinguishes daemon shutdown (eviction) from a
// client cancel.
func (s *Server) interruptClass() string {
	if s.closing.Load() {
		return classEvicted
	}
	return ClassCancelled
}

// evict puts a shutdown-interrupted job back in the queued state; its
// checkpoint is already on disk, so the next daemon resumes it.
func (s *Server) evict(j *job) {
	j.mu.Lock()
	j.state = StateQueued
	j.mu.Unlock()
	j.persist(s.opts.StateDir, "")
}

// interrupted finalizes a job whose context was cancelled: eviction
// when the daemon is closing, a client cancel otherwise.
func (s *Server) interrupted(j *job) {
	if s.closing.Load() {
		s.evict(j)
		return
	}
	j.mu.Lock()
	j.state = StateCancelled
	j.errClass = ClassCancelled
	j.errMsg = "cancelled by client"
	j.mu.Unlock()
	j.persist(s.opts.StateDir, "")
	j.finishEvents()
	s.removeCheckpoint(j)
}

// fail finalizes a job with a wire error class.
func (s *Server) fail(j *job, class, format string, args ...any) {
	j.mu.Lock()
	j.state = StateFailed
	j.errClass = class
	j.errMsg = fmt.Sprintf(format, args...)
	j.mu.Unlock()
	j.persist(s.opts.StateDir, "")
	j.finishEvents()
	s.removeCheckpoint(j)
}

// salvage finalizes a budget-exhausted job that kept its best partial
// profile: state "salvaged", the partial record served as the result,
// and the original failure preserved as the error.
func (s *Server) salvage(j *job, partial []byte, class, msg string) {
	j.mu.Lock()
	j.state = StateSalvaged
	j.errClass = class
	j.errMsg = msg
	j.result = partial
	j.mu.Unlock()
	j.persist(s.opts.StateDir, "")
	j.finishEvents()
	s.removeCheckpoint(j)
}
