package serve

import (
	"sort"
	"sync"
	"time"
)

// scheduler is the multi-tenant job queue: one FIFO per client, served
// round-robin, so a client flooding the daemon delays its own backlog,
// not everyone else's. The fairness contract — pinned by the
// starvation test — is that a job waits for at most
// (clients × workers + clients) dispatches regardless of how deep any
// other client's queue is.
type scheduler struct {
	mu     sync.Mutex
	cond   *sync.Cond
	order  []string // clients in first-submission order
	queues map[string][]*job
	rr     int // index into order of the next client to serve
	closed bool

	// dispatches counts jobs handed to workers; each job records the
	// counter at submission and at dispatch, and the difference — the
	// dispatch distance — is the deterministic unit the fairness bound
	// is stated in.
	dispatches uint64
	perClient  map[string]*clientStats
}

// clientStats aggregates one tenant's scheduling history.
type clientStats struct {
	Submitted  int
	Dispatched int
	// waits and distances are per-dispatched-job samples: queue wait in
	// wall-clock time and in dispatch counts.
	waits     []time.Duration
	distances []uint64
}

func newScheduler() *scheduler {
	s := &scheduler{
		queues:    make(map[string][]*job),
		perClient: make(map[string]*clientStats),
	}
	s.cond = sync.NewCond(&s.mu)
	return s
}

func (s *scheduler) client(name string) *clientStats {
	cs, ok := s.perClient[name]
	if !ok {
		cs = &clientStats{}
		s.perClient[name] = cs
	}
	return cs
}

// enqueue queues j for its client, enforcing the per-client cap (0 =
// unlimited). Returns false when the client's queue is full.
func (s *scheduler) enqueue(j *job, maxPerClient int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if maxPerClient > 0 && len(s.queues[j.Client]) >= maxPerClient {
		return false
	}
	if _, ok := s.queues[j.Client]; !ok {
		s.order = append(s.order, j.Client)
	}
	s.queues[j.Client] = append(s.queues[j.Client], j)
	j.enqueuedAt = time.Now()
	j.submitSeq = s.dispatches
	cs := s.client(j.Client)
	cs.Submitted++
	s.cond.Broadcast()
	return true
}

// next blocks until a job is available or the scheduler is closed,
// serving clients round-robin. A dequeued job that was cancelled while
// queued is skipped (its terminal state already stands).
func (s *scheduler) next() (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if j := s.pop(); j != nil {
			return j, true
		}
		if s.closed {
			return nil, false
		}
		s.cond.Wait()
	}
}

// pop removes and returns the next job in round-robin order, or nil.
// Callers hold s.mu.
func (s *scheduler) pop() *job {
	for range s.order {
		client := s.order[s.rr%len(s.order)]
		s.rr = (s.rr + 1) % len(s.order)
		q := s.queues[client]
		if len(q) == 0 {
			continue
		}
		j := q[0]
		s.queues[client] = q[1:]
		s.dispatches++
		cs := s.client(client)
		cs.Dispatched++
		cs.waits = append(cs.waits, time.Since(j.enqueuedAt))
		cs.distances = append(cs.distances, s.dispatches-1-j.submitSeq)
		return j
	}
	return nil
}

// close wakes every blocked worker; next returns ok=false once the
// queues drain. Queued jobs are left in place for eviction.
func (s *scheduler) close() {
	s.mu.Lock()
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
}

// drain removes and returns every still-queued job (shutdown eviction).
func (s *scheduler) drain() []*job {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []*job
	for _, client := range s.order {
		out = append(out, s.queues[client]...)
		s.queues[client] = nil
	}
	return out
}

// queuedFor reports the current queue depth of one client.
func (s *scheduler) queuedFor(client string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.queues[client])
}

// ClientReport is one tenant's scheduling summary, exposed by
// GET /v1/stats.
type ClientReport struct {
	Client     string `json:"client"`
	Submitted  int    `json:"submitted"`
	Dispatched int    `json:"dispatched"`
	Queued     int    `json:"queued"`
	// P95WaitMs is the 95th-percentile queue wait of the client's
	// dispatched jobs in milliseconds; P95WaitDispatches is the same
	// percentile of dispatch distances — how many other jobs the
	// scheduler served between a job's submission and its dispatch, the
	// machine-independent fairness metric.
	P95WaitMs         float64 `json:"p95WaitMs"`
	P95WaitDispatches uint64  `json:"p95WaitDispatches"`
	MaxWaitDispatches uint64  `json:"maxWaitDispatches"`
}

// report summarizes every client, sorted by name.
func (s *scheduler) report() []ClientReport {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]ClientReport, 0, len(s.perClient))
	for name, cs := range s.perClient {
		r := ClientReport{
			Client:     name,
			Submitted:  cs.Submitted,
			Dispatched: cs.Dispatched,
			Queued:     len(s.queues[name]),
		}
		if n := len(cs.waits); n > 0 {
			ws := append([]time.Duration(nil), cs.waits...)
			sort.Slice(ws, func(i, j int) bool { return ws[i] < ws[j] })
			r.P95WaitMs = float64(ws[p95Index(n)]) / float64(time.Millisecond)
			ds := append([]uint64(nil), cs.distances...)
			sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
			r.P95WaitDispatches = ds[p95Index(n)]
			r.MaxWaitDispatches = ds[n-1]
		}
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Client < out[j].Client })
	return out
}

// p95Index is the index of the 95th percentile in a sorted sample of
// size n (nearest-rank).
func p95Index(n int) int {
	i := (n*95 + 99) / 100
	if i < 1 {
		i = 1
	}
	return i - 1
}
