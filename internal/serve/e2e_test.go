package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"testing"
	"time"
)

// The end-to-end suite exercises the acceptance scenario over real
// HTTP: two concurrent jobs from distinct clients streamed to
// completion, a cache hit on identical resubmission, and a mid-run
// kill+restart whose resumed result is byte-identical to an
// uninterrupted oracle.

type sseEvent struct {
	Name string
	Data []byte
}

// readSSE consumes one SSE response body into its event sequence.
func readSSE(t *testing.T, url string) []sseEvent {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream %s: status %d", url, resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("stream content type %q", ct)
	}
	var events []sseEvent
	var cur sseEvent
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if cur.Name != "" {
				events = append(events, cur)
			}
			cur = sseEvent{}
		case bytes.HasPrefix([]byte(line), []byte("event: ")):
			cur.Name = line[len("event: "):]
		case bytes.HasPrefix([]byte(line), []byte("data: ")):
			cur.Data = []byte(line[len("data: "):])
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("reading stream: %v", err)
	}
	return events
}

// streamUntilDone reads a job's stream to its end and returns the
// progress count and the terminal status from the done event.
func streamUntilDone(t *testing.T, base, id string) (int, JobStatus) {
	t.Helper()
	events := readSSE(t, base+"/v1/jobs/"+id+"/stream")
	progress := 0
	var done JobStatus
	sawDone := false
	for _, ev := range events {
		switch ev.Name {
		case "progress":
			progress++
		case "done":
			if err := json.Unmarshal(ev.Data, &done); err != nil {
				t.Fatalf("done event: %v\n%s", err, ev.Data)
			}
			sawDone = true
		}
	}
	if !sawDone {
		t.Fatalf("stream for %s ended without a done event (%d events)", id, len(events))
	}
	return progress, done
}

func TestE2EConcurrentClientsStreamAndCache(t *testing.T) {
	_, hs := newHTTPServer(t, Options{Workers: 2, PulseEvery: 2000})

	// Large enough (~15M instructions each) that the streams below
	// attach while the runs are still in flight.
	aliceReq := loopRequest("alice", 3000000)
	aliceReq.Config = JobConfig{
		Convergent: &WireConvergent{BurstLen: 500, InitialSkip: 1000, MaxSkip: 8000, Epsilon: 0.05},
	}
	bobReq := loopRequest("bob", 2800000)

	code, alice := submitHTTP(t, hs.URL, aliceReq)
	if code != http.StatusAccepted {
		t.Fatalf("alice submit: %d", code)
	}
	code, bob := submitHTTP(t, hs.URL, bobReq)
	if code != http.StatusAccepted {
		t.Fatalf("bob submit: %d", code)
	}

	// Stream both jobs concurrently until their done events.
	type streamed struct {
		progress int
		done     JobStatus
	}
	results := make(chan streamed, 2)
	for _, id := range []string{alice.ID, bob.ID} {
		id := id
		go func() {
			p, d := streamUntilDone(t, hs.URL, id)
			results <- streamed{p, d}
		}()
	}
	for i := 0; i < 2; i++ {
		r := <-results
		if r.done.State != StateCompleted {
			t.Fatalf("job %s finished %s: %+v", r.done.ID, r.done.State, r.done)
		}
		if r.progress == 0 {
			t.Errorf("job %s streamed no progress events", r.done.ID)
		}
	}

	// Identical resubmission is a cache hit: 200, cached, no queueing.
	code, again := submitHTTP(t, hs.URL, aliceReq)
	if code != http.StatusOK || !again.Cached || again.State != StateCompleted {
		t.Fatalf("resubmission not served from cache: code %d, %+v", code, again)
	}
	if again.Digest != alice.Digest {
		t.Fatalf("resubmission digest %s != original %s", again.Digest, alice.Digest)
	}

	// Both results are served; distinct jobs have distinct digests.
	if alice.Digest == bob.Digest {
		t.Fatal("distinct jobs share a digest")
	}
	for _, id := range []string{alice.ID, bob.ID} {
		code, body := call(t, http.MethodGet, hs.URL+"/v1/jobs/"+id+"/result", nil)
		if code != http.StatusOK {
			t.Fatalf("result %s: %d\n%s", id, code, body)
		}
	}
}

// TestE2EKillRestartByteIdentical performs the restart half of the
// acceptance scenario over HTTP: SIGTERM-equivalent shutdown mid-run,
// a new daemon over the same state directory, and a resumed result
// byte-identical to the uninterrupted oracle.
func TestE2EKillRestartByteIdentical(t *testing.T) {
	// ~500k instructions: wide margin between the first checkpoint and
	// completion, so the shutdown below always lands mid-run.
	req := loopRequest("carol", 100000)
	req.Config = JobConfig{MaxAttempts: 3, MemSize: 1 << 16}
	want := oracleResult(t, req)

	stateDir := t.TempDir()
	s1, err := New(Options{Workers: 1, StateDir: stateDir, PulseEvery: 2000, CheckpointEvery: 2000})
	if err != nil {
		t.Fatal(err)
	}
	hs1 := httptest.NewServer(s1.Handler())
	code, st := submitHTTP(t, hs1.URL, req)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}

	// Wait until the first checkpoint lands, then stop the daemon the
	// way a SIGTERM handler would: evicting the running job.
	ckpt := checkpointPath(stateDir, st.ID)
	deadline := time.Now().Add(30 * time.Second)
	for {
		if _, err := os.Stat(ckpt); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no checkpoint appeared")
		}
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	err = s1.Shutdown(ctx)
	cancel()
	hs1.Close()
	if err != nil {
		t.Fatal(err)
	}

	// Restart over the same state and let the recovered job finish.
	s2, hs2 := newHTTPServer(t, Options{Workers: 1, StateDir: stateDir, PulseEvery: 2000, CheckpointEvery: 2000})
	final := waitTerminal(t, s2, st.ID)
	if final.State != StateCompleted {
		t.Fatalf("recovered job: %+v", final)
	}
	if final.Resumed == 0 {
		t.Fatalf("recovered job never resumed from its checkpoint: %+v", final)
	}
	code, got := call(t, http.MethodGet, hs2.URL+"/v1/jobs/"+st.ID+"/result", nil)
	if code != http.StatusOK {
		t.Fatalf("result after restart: %d\n%s", code, got)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("restarted result differs from oracle:\n got %.200s\nwant %.200s", got, want)
	}
}
