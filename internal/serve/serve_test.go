package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files")

// loopSrc is the deterministic workload used across the daemon tests:
// an input-seeded countdown whose profiled values vary per iteration
// (~5 instructions per count), printing the accumulated total.
const loopSrc = `
        .proc main
main:   syscall getint
        add t5, v0, zero
        li t4, 0
loop:   li t1, 7
        add t4, t4, t5
        add t2, t1, t5
        addi t5, t5, -1
        bne t5, loop
        add a0, t4, zero
        syscall putint
        addi a0, zero, 0
        syscall exit
        .endproc
`

// fallOffSrc fails analysis.Verify: control can run off the end of the
// code segment (no exit path).
const fallOffSrc = `
        .proc main
main:   addi t0, zero, 1
        .endproc
`

func loopRequest(client string, inputs ...int64) *JobRequest {
	ins := make([][]int64, len(inputs))
	for i, n := range inputs {
		ins[i] = []int64{n}
	}
	return &JobRequest{
		Client:  client,
		Program: WireProgram{Asm: loopSrc},
		Inputs:  ins,
	}
}

// newServer builds an in-process daemon and tears it down with the
// test.
func newServer(t *testing.T, opts Options) *Server {
	t.Helper()
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return s
}

// newHTTPServer wraps a daemon in an httptest server.
func newHTTPServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	s := newServer(t, opts)
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(hs.Close)
	return s, hs
}

// call performs one API request and returns the status code and body.
func call(t *testing.T, method, url string, body any) (int, []byte) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		switch b := body.(type) {
		case string:
			rd = strings.NewReader(b)
		case []byte:
			rd = bytes.NewReader(b)
		default:
			data, err := json.Marshal(body)
			if err != nil {
				t.Fatal(err)
			}
			rd = bytes.NewReader(data)
		}
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

// submitHTTP posts a job and returns the response status and decoded
// job status.
func submitHTTP(t *testing.T, base string, req *JobRequest) (int, JobStatus) {
	t.Helper()
	code, body := call(t, http.MethodPost, base+"/v1/jobs", req)
	var sub submitResponse
	if err := json.Unmarshal(body, &sub); err != nil {
		t.Fatalf("submit response %d: %v\n%s", code, err, body)
	}
	return code, sub.Job
}

// waitTerminal polls until the job reaches a terminal state.
func waitTerminal(t *testing.T, s *Server, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		j, ok := s.jobByID(id)
		if !ok {
			t.Fatalf("job %s disappeared", id)
		}
		st := j.status()
		if terminalState(st.State) {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in state %s", id, st.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// checkGolden compares got against the named golden file, rewriting it
// under -update.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", "golden", name)
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden %s (run with -update): %v", name, err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s mismatch:\n got: %s\nwant: %s", name, got, want)
	}
}

// checkGoldenResponse pins both the HTTP status and the exact body.
func checkGoldenResponse(t *testing.T, name string, code int, body []byte) {
	t.Helper()
	got := append(fmt.Appendf(nil, "%d\n", code), body...)
	checkGolden(t, name, got)
}

// splitmix64 drives the seeded chaos schedule (same generator the
// fault-injection harness uses for its plans).
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d649bb133111eb
	return z ^ (z >> 31)
}
