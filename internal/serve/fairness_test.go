package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"

	"valueprof/internal/core"
)

// The fairness suite pins the multi-tenant scheduling contract: a
// client flooding the daemon delays its own backlog, never another
// client's, with the bound stated in dispatch distances (how many jobs
// the scheduler served between a job's submission and its dispatch) —
// the machine-independent unit the /v1/stats report also exposes.

// TestSchedulerRoundRobinBound drives the scheduler directly: with a
// flood client 30 jobs deep, a quiet client's job is dispatched within
// two dispatches of its submission, every time.
func TestSchedulerRoundRobinBound(t *testing.T) {
	sched := newScheduler()
	for i := 0; i < 30; i++ {
		if !sched.enqueue(&job{ID: fmt.Sprintf("f-%d", i), Client: "flood"}, 0) {
			t.Fatal("enqueue failed")
		}
	}
	for i := 0; i < 3; i++ {
		if !sched.enqueue(&job{ID: fmt.Sprintf("q-%d", i), Client: "quiet"}, 0) {
			t.Fatal("enqueue failed")
		}
	}
	for {
		sched.mu.Lock()
		j := sched.pop()
		sched.mu.Unlock()
		if j == nil {
			break
		}
	}
	for _, r := range sched.report() {
		if r.Client != "quiet" {
			continue
		}
		if r.Dispatched != 3 {
			t.Fatalf("quiet dispatched %d of 3", r.Dispatched)
		}
		// Round-robin alternates flood/quiet once both exist, so a quiet
		// job never waits for more than its own predecessors plus one
		// flood job each.
		if r.MaxWaitDispatches > 6 {
			t.Errorf("quiet max dispatch distance %d; round-robin should bound it at 6", r.MaxWaitDispatches)
		}
	}
}

func TestSchedulerPerClientCap(t *testing.T) {
	sched := newScheduler()
	for i := 0; i < 4; i++ {
		if !sched.enqueue(&job{ID: fmt.Sprintf("j-%d", i), Client: "c"}, 4) {
			t.Fatalf("enqueue %d rejected under cap", i)
		}
	}
	if sched.enqueue(&job{ID: "j-4", Client: "c"}, 4) {
		t.Fatal("enqueue over cap accepted")
	}
	if sched.queuedFor("c") != 4 {
		t.Fatalf("queued %d, want 4", sched.queuedFor("c"))
	}
}

// TestFloodedClientDoesNotStarveQuiet runs the starvation scenario on
// a live single-worker daemon: a flooding client with a deep backlog
// of real profiling jobs, then one quiet job. The quiet job's p95 and
// max dispatch distances stay bounded by the round-robin guarantee
// regardless of the flood depth.
func TestFloodedClientDoesNotStarveQuiet(t *testing.T) {
	s := newServer(t, Options{Workers: 1})
	var floodIDs []string
	for i := 0; i < 8; i++ {
		// Distinct inputs so no flood job is answered from the cache.
		j, cached, rerr := s.submit(loopRequest("flood", int64(20000+i)))
		if rerr != nil || cached {
			t.Fatalf("flood submit %d: cached=%v err=%v", i, cached, rerr)
		}
		floodIDs = append(floodIDs, j.ID)
	}
	quiet, cached, rerr := s.submit(loopRequest("quiet", 30000))
	if rerr != nil || cached {
		t.Fatalf("quiet submit: cached=%v err=%v", cached, rerr)
	}

	if st := waitTerminal(t, s, quiet.ID); st.State != StateCompleted {
		t.Fatalf("quiet job: %+v", st)
	}
	for _, id := range floodIDs {
		if st := waitTerminal(t, s, id); st.State != StateCompleted {
			t.Fatalf("flood job %s: %+v", id, st)
		}
	}

	var quietRep, floodRep *ClientReport
	for _, r := range s.stats().Clients {
		r := r
		switch r.Client {
		case "quiet":
			quietRep = &r
		case "flood":
			floodRep = &r
		}
	}
	if quietRep == nil || floodRep == nil {
		t.Fatal("missing client reports")
	}
	if quietRep.Dispatched != 1 || floodRep.Dispatched != 8 {
		t.Fatalf("dispatch counts: quiet %d, flood %d", quietRep.Dispatched, floodRep.Dispatched)
	}
	// The quiet job arrived behind 8 flood jobs; round-robin still
	// serves it after at most the in-flight job plus one flood dispatch.
	if quietRep.MaxWaitDispatches > 3 {
		t.Errorf("quiet client waited %d dispatches; flood is starving it", quietRep.MaxWaitDispatches)
	}
	if quietRep.P95WaitDispatches > 3 {
		t.Errorf("quiet p95 dispatch distance %d exceeds bound", quietRep.P95WaitDispatches)
	}
	// The flood client's tail wait grows with its own backlog — the
	// queueing cost lands on the tenant who caused it.
	if floodRep.MaxWaitDispatches < quietRep.MaxWaitDispatches {
		t.Errorf("flood max wait %d below quiet %d; backlog cost misattributed",
			floodRep.MaxWaitDispatches, quietRep.MaxWaitDispatches)
	}
}

// TestBudgetExhaustedClass pins the documented error contract for a
// job whose instruction budget runs out: state failed, wire class
// "budget", and a 409 from the result endpoint.
func TestBudgetExhaustedClass(t *testing.T) {
	s, hs := newHTTPServer(t, Options{Workers: 1})
	req := loopRequest("budget", 20000)
	req.Config = JobConfig{StepLimit: 1000}
	code, st := submitHTTP(t, hs.URL, req)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	final := waitTerminal(t, s, st.ID)
	if final.State != StateFailed || final.Error == nil || final.Error.Class != ClassBudget {
		t.Fatalf("want failed/budget, got %+v", final)
	}
	if !strings.Contains(final.Error.Message, "budget") {
		t.Errorf("error message %q does not mention the budget", final.Error.Message)
	}

	code, body := call(t, http.MethodGet, hs.URL+"/v1/jobs/"+st.ID+"/result", nil)
	if code != http.StatusConflict {
		t.Fatalf("result of budget-failed job: %d\n%s", code, body)
	}
	var eb struct {
		Error WireError `json:"error"`
	}
	if err := json.Unmarshal(body, &eb); err != nil {
		t.Fatal(err)
	}
	if eb.Error.Class != ClassBudget {
		t.Errorf("result error class %q, want %q", eb.Error.Class, ClassBudget)
	}
}

// TestSalvagePartialKeepsPrefixProfile covers the degraded path: with
// SalvagePartial the budget-exhausted job lands in state "salvaged"
// and serves its partial record — marked Salvaged with the outcome
// that truncated it — instead of failing empty-handed.
func TestSalvagePartialKeepsPrefixProfile(t *testing.T) {
	s, hs := newHTTPServer(t, Options{Workers: 1})
	req := loopRequest("salvage", 20000)
	req.Config = JobConfig{StepLimit: 1000, SalvagePartial: true}
	code, st := submitHTTP(t, hs.URL, req)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	final := waitTerminal(t, s, st.ID)
	if final.State != StateSalvaged || final.Error == nil || final.Error.Class != ClassBudget {
		t.Fatalf("want salvaged with budget error, got %+v", final)
	}

	resp, err := http.Get(hs.URL + "/v1/jobs/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("salvaged result: %d", resp.StatusCode)
	}
	if resp.Header.Get("X-Vprof-Salvaged") != "true" {
		t.Error("salvaged result missing X-Vprof-Salvaged header")
	}
	rec, err := core.ReadProfileRecord(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Salvaged || rec.Outcome == "" {
		t.Errorf("salvaged record provenance: salvaged=%v outcome=%q", rec.Salvaged, rec.Outcome)
	}
	if len(rec.Sites) == 0 {
		t.Error("salvaged record has no profiled sites")
	}
}
