package serve

import (
	"encoding/base64"
	"fmt"
	"time"

	"valueprof/internal/analysis"
	"valueprof/internal/asm"
	"valueprof/internal/atom"
	"valueprof/internal/core"
	"valueprof/internal/parallel"
	"valueprof/internal/program"
)

// WireProgram carries the program of a job request in exactly one of
// two forms: VRISC assembly text, or a base64-encoded VPX1 image.
// Whichever form arrives, the daemon canonicalizes it to a freshly
// saved image, so an assembled submission and its binary twin share
// one cache identity.
type WireProgram struct {
	Asm   string `json:"asm,omitempty"`
	Image string `json:"image,omitempty"`
}

// WireTNV mirrors core.TNVConfig on the wire; the zero value selects
// the paper's defaults.
type WireTNV struct {
	Size          int    `json:"size"`
	Steady        int    `json:"steady"`
	ClearInterval uint64 `json:"clearInterval"`
}

// WireConvergent mirrors core.ConvergentConfig on the wire.
type WireConvergent struct {
	BurstLen    uint64  `json:"burstLen"`
	InitialSkip uint64  `json:"initialSkip"`
	MaxSkip     uint64  `json:"maxSkip"`
	Epsilon     float64 `json:"epsilon"`
}

// JobConfig is the request-budget and profiler configuration of one
// job. Every field is optional; Normalize fills the documented
// defaults, and the normalized form — not the submitted one — feeds
// the job digest, so spelling out a default does not split the cache.
type JobConfig struct {
	// Filter selects profiled instructions: "all" (default, every
	// result-producing instruction) or "loads".
	Filter string `json:"filter,omitempty"`
	// TNV overrides the per-site table configuration.
	TNV *WireTNV `json:"tnv,omitempty"`
	// Convergent enables the paper's intelligent sampler. Convergent
	// jobs restart from scratch after an interruption instead of
	// resuming (sampler state is not checkpointed); either path is
	// deterministic.
	Convergent *WireConvergent `json:"convergent,omitempty"`
	// StepLimit is the job's total instruction budget per input, across
	// attempts and resumes; exceeding it fails the job with error class
	// "budget". 0 = unlimited.
	StepLimit uint64 `json:"stepLimit,omitempty"`
	// DeadlineMs bounds one sub-run's wall-clock time from its first
	// attempt; 0 = unlimited.
	DeadlineMs int64 `json:"deadlineMs,omitempty"`
	// AttemptDeadlineMs bounds a single attempt; a resumed retry
	// continues from the last checkpoint. 0 = unlimited.
	AttemptDeadlineMs int64 `json:"attemptDeadlineMs,omitempty"`
	// MaxAttempts caps runs of one sub-run (retries resume from the
	// carried checkpoint when possible); <= 0 means 1.
	MaxAttempts int `json:"maxAttempts,omitempty"`
	// MemSize is the guest memory budget in bytes; 0 = VM default.
	MemSize int `json:"memSize,omitempty"`
	// ChargeHooks makes analysis calls cost simulated cycles.
	ChargeHooks bool `json:"chargeHooks,omitempty"`
	// SalvagePartial keeps the best partial profile of a job whose
	// budget ran out (state "salvaged", served from the job, never
	// cached) instead of failing outright.
	SalvagePartial bool `json:"salvagePartial,omitempty"`
}

// JobRequest is the body of POST /v1/jobs.
type JobRequest struct {
	// Client identifies the tenant for fair scheduling; empty maps to
	// "anonymous".
	Client  string      `json:"client,omitempty"`
	Program WireProgram `json:"program"`
	// Inputs holds one or more input vectors; the job profiles each and
	// serves the merged record. At least one is required (use [[]] for
	// a program that reads nothing).
	Inputs [][]int64 `json:"inputs"`
	Config JobConfig `json:"config"`
}

// RequestError is a rejected submission: Class is the documented wire
// error class, Msg the human-readable detail.
type RequestError struct {
	Class string
	Msg   string
}

func (e *RequestError) Error() string { return e.Class + ": " + e.Msg }

func reqErr(class, format string, args ...any) *RequestError {
	return &RequestError{Class: class, Msg: fmt.Sprintf(format, args...)}
}

// Normalize validates cfg and fills defaults in place. Errors carry
// wire class "config".
func (c *JobConfig) Normalize() error {
	switch c.Filter {
	case "":
		c.Filter = "all"
	case "all", "loads":
	default:
		return reqErr(ClassConfig, "unknown filter %q (want \"all\" or \"loads\")", c.Filter)
	}
	if c.TNV == nil {
		d := core.DefaultTNVConfig()
		c.TNV = &WireTNV{Size: d.Size, Steady: d.Steady, ClearInterval: d.ClearInterval}
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 1
	}
	if c.DeadlineMs < 0 || c.AttemptDeadlineMs < 0 || c.MemSize < 0 {
		return reqErr(ClassConfig, "budgets must be non-negative")
	}
	// Validate through the same gates the profiler itself applies, so
	// a config the daemon accepts is one the run cannot later reject.
	// The probe profiler comes from (and returns to) the arena — serve
	// code never constructs profilers directly.
	vp, err := parallel.AcquireProfiler(c.coreOptions())
	if err != nil {
		return reqErr(ClassConfig, "%v", err)
	}
	parallel.ReleaseProfiler(vp)
	return nil
}

// coreOptions maps the normalized config to profiler options.
func (c *JobConfig) coreOptions() core.Options {
	opts := core.Options{TNV: core.TNVConfig{
		Size:          c.TNV.Size,
		Steady:        c.TNV.Steady,
		ClearInterval: c.TNV.ClearInterval,
	}}
	if c.Filter == "loads" {
		opts.Filter = core.LoadsOnly
	}
	if c.Convergent != nil {
		opts.Convergent = &core.ConvergentConfig{
			BurstLen:    c.Convergent.BurstLen,
			InitialSkip: c.Convergent.InitialSkip,
			MaxSkip:     c.Convergent.MaxSkip,
			Epsilon:     c.Convergent.Epsilon,
		}
	}
	return opts
}

// runOptions maps the normalized config to the VM control plane for
// one input.
func (c *JobConfig) runOptions(input []int64) atom.RunOptions {
	return atom.RunOptions{
		Input:       input,
		ChargeHooks: c.ChargeHooks,
		StepLimit:   c.StepLimit,
		MemSize:     c.MemSize,
	}
}

// resumable reports whether interrupted sub-runs of this config can be
// continued from a checkpoint. Convergent sampler state lives outside
// the checkpoint, so convergent jobs restart from scratch instead —
// both paths reproduce the uninterrupted run byte for byte.
func (c *JobConfig) resumable() bool { return c.Convergent == nil }

// deadline resolves the sub-run deadline for an attempt starting now:
// the earlier of the sub-run budget (anchored at start) and the
// per-attempt budget.
func (c *JobConfig) deadline(start, now time.Time) time.Time {
	var d time.Time
	if c.DeadlineMs > 0 {
		d = start.Add(time.Duration(c.DeadlineMs) * time.Millisecond)
	}
	if c.AttemptDeadlineMs > 0 {
		a := now.Add(time.Duration(c.AttemptDeadlineMs) * time.Millisecond)
		if d.IsZero() || a.Before(d) {
			d = a
		}
	}
	return d
}

// decodeProgram canonicalizes a submitted program: exactly one of the
// two forms must be present, the result must pass both the structural
// image gate (program.Load) and the bytecode verifier
// (analysis.Verify), and the returned bytes are the freshly saved
// canonical image the digest is computed over.
func decodeProgram(wp WireProgram) (*program.Program, []byte, error) {
	var prog *program.Program
	switch {
	case wp.Asm != "" && wp.Image != "":
		return nil, nil, reqErr(ClassBadRequest, "program.asm and program.image are mutually exclusive")
	case wp.Asm != "":
		p, err := asm.Assemble(wp.Asm)
		if err != nil {
			return nil, nil, reqErr(ClassInvalidProgram, "%v", err)
		}
		prog = p
	case wp.Image != "":
		raw, err := base64.StdEncoding.DecodeString(wp.Image)
		if err != nil {
			return nil, nil, reqErr(ClassInvalidProgram, "program.image is not valid base64: %v", err)
		}
		p, err := program.Load(bytesReader(raw))
		if err != nil {
			return nil, nil, reqErr(ClassInvalidProgram, "%v", err)
		}
		prog = p
	default:
		return nil, nil, reqErr(ClassBadRequest, "program.asm or program.image is required")
	}
	if err := analysis.Verify(prog).Err(); err != nil {
		return nil, nil, reqErr(ClassInvalidProgram, "%v", err)
	}
	image, err := saveImage(prog)
	if err != nil {
		return nil, nil, reqErr(ClassInternal, "canonicalizing image: %v", err)
	}
	return prog, image, nil
}
