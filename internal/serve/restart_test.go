package serve

import (
	"bytes"
	"context"
	"testing"
	"time"
)

// This file is the restart-survival suite: the daemon is stopped
// in-process mid-job at seeded chaos-chosen points (after the n-th
// progress pulse, i.e. at an instruction boundary the seed selects), a
// fresh daemon is built over the same state directory, and the job's
// eventual result must be byte-identical to the profile an
// uninterrupted daemon produces — resumable configs by resuming from
// the persisted VPCKPT1 checkpoint, convergent configs by
// deterministically rerunning from scratch.

// oracleResult runs req on a pristine, never-interrupted daemon and
// returns the result bytes.
func oracleResult(t *testing.T, req *JobRequest) []byte {
	t.Helper()
	s := newServer(t, Options{Workers: 1, StateDir: t.TempDir(), PulseEvery: 2000, CheckpointEvery: 2000})
	j, cached, rerr := s.submit(req)
	if rerr != nil || cached {
		t.Fatalf("oracle submit: cached=%v err=%v", cached, rerr)
	}
	st := waitTerminal(t, s, j.ID)
	if st.State != StateCompleted {
		t.Fatalf("oracle job: %+v", st)
	}
	rec, ok := s.cache.get(j.Digest)
	if !ok {
		t.Fatal("oracle result missing from cache")
	}
	return rec
}

// runWithSeededKills drives req to completion across daemon restarts:
// a seeded number of rounds each start a daemon on stateDir, wait for
// a seeded number of progress pulses, and shut the daemon down —
// evicting the running job at that instruction boundary. The final
// round lets the recovered job run to its terminal state. Returns the
// final status and result bytes.
func runWithSeededKills(t *testing.T, stateDir string, req *JobRequest, seed uint64) (JobStatus, []byte) {
	t.Helper()
	kills := int(2 + splitmix64(&seed)%2)
	var jobID string
	for round := 0; ; round++ {
		s, err := New(Options{Workers: 1, StateDir: stateDir, PulseEvery: 2000, CheckpointEvery: 2000})
		if err != nil {
			t.Fatal(err)
		}
		if round == 0 {
			j, cached, rerr := s.submit(req)
			if rerr != nil || cached {
				t.Fatalf("submit: cached=%v err=%v", cached, rerr)
			}
			jobID = j.ID
		}
		j, ok := s.jobByID(jobID)
		if !ok {
			t.Fatalf("round %d: job %s not recovered", round, jobID)
		}

		if round < kills {
			// The seed picks the kill point: stop after 1-4 progress
			// pulses, i.e. at a seeded instruction boundary. If the job
			// finishes first, the chaos schedule ran out of run to
			// interrupt and the kill is a no-op.
			pulses := int(1 + splitmix64(&seed)%4)
			ch, unsub := j.subscribe()
			seen := 0
			deadline := time.NewTimer(30 * time.Second)
		wait:
			for seen < pulses {
				select {
				case _, open := <-ch:
					if !open {
						break wait
					}
					seen++
				case <-deadline.C:
					t.Fatalf("round %d: no progress from job %s", round, jobID)
				}
			}
			deadline.Stop()
			unsub()
		} else {
			waitTerminal(t, s, jobID)
		}

		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
		err = s.Shutdown(ctx)
		cancel()
		if err != nil {
			t.Fatalf("round %d shutdown: %v", round, err)
		}
		if st := j.status(); terminalState(st.State) {
			// Re-open a daemon over the final state to serve the result
			// (also exercising recovery of a terminal manifest).
			s2 := newServer(t, Options{NoWorkers: true, StateDir: stateDir})
			j2, ok := s2.jobByID(jobID)
			if !ok {
				t.Fatalf("terminal job %s lost after restart", jobID)
			}
			rec, ok := s2.cache.get(j2.Digest)
			if !ok && st.State == StateCompleted {
				t.Fatalf("completed job %s has no cached result", jobID)
			}
			return j2.status(), rec
		}
	}
}

// TestRestartResumesByteIdentical is the core durability property: a
// resumable job killed and restarted repeatedly produces exactly the
// bytes of its uninterrupted oracle run, with at least one attempt
// having resumed from a checkpoint.
func TestRestartResumesByteIdentical(t *testing.T) {
	req := loopRequest("chaos", 20000)
	req.Config = JobConfig{MaxAttempts: 3, MemSize: 1 << 16}
	want := oracleResult(t, req)

	st, got := runWithSeededKills(t, t.TempDir(), req, 0x5eed0001)
	if st.State != StateCompleted {
		t.Fatalf("job did not complete: %+v", st)
	}
	if st.Resumed == 0 {
		t.Fatalf("job completed without ever resuming from a checkpoint: %+v", st)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("resumed result differs from uninterrupted oracle:\n got %d bytes: %.200s\nwant %d bytes: %.200s",
			len(got), got, len(want), want)
	}
}

// TestRestartMultiInputByteIdentical extends the property to a
// multi-input job: interrupted sub-runs resume, completed sub-runs are
// reused from the content cache, and the merged record still matches
// the oracle byte for byte.
func TestRestartMultiInputByteIdentical(t *testing.T) {
	req := loopRequest("chaos", 12000, 12001)
	req.Config = JobConfig{MaxAttempts: 3, MemSize: 1 << 16}
	want := oracleResult(t, req)

	st, got := runWithSeededKills(t, t.TempDir(), req, 0x5eed0002)
	if st.State != StateCompleted {
		t.Fatalf("job did not complete: %+v", st)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("resumed multi-input result differs from oracle:\n got %.200s\nwant %.200s", got, want)
	}
}

// TestRestartConvergentRerunsFresh covers the non-resumable path: a
// convergent-sampling job's interrupted runs restart from scratch
// (sampler state is not checkpointed), and determinism still makes the
// final profile byte-identical to the oracle, with zero resumes.
func TestRestartConvergentRerunsFresh(t *testing.T) {
	req := loopRequest("chaos", 20000)
	req.Config = JobConfig{
		Convergent:  &WireConvergent{BurstLen: 500, InitialSkip: 1000, MaxSkip: 8000, Epsilon: 0.05},
		MaxAttempts: 3,
		MemSize:     1 << 16,
	}
	want := oracleResult(t, req)

	st, got := runWithSeededKills(t, t.TempDir(), req, 0x5eed0003)
	if st.State != StateCompleted {
		t.Fatalf("job did not complete: %+v", st)
	}
	if st.Resumed != 0 {
		t.Fatalf("convergent job claims %d resumes; its state is not checkpointable", st.Resumed)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("rerun convergent result differs from oracle:\n got %.200s\nwant %.200s", got, want)
	}
}
