package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"valueprof/internal/atomicio"
	"valueprof/internal/program"
)

// Job states. queued → running → one of the terminal states; a daemon
// shutdown moves a running job back to queued (eviction) with its
// checkpoint persisted, and recovery re-enqueues it.
const (
	StateQueued    = "queued"
	StateRunning   = "running"
	StateCompleted = "completed"
	StateFailed    = "failed"
	StateCancelled = "cancelled"
	StateSalvaged  = "salvaged"
)

// terminalState reports whether a job in state will never run again.
func terminalState(state string) bool {
	switch state {
	case StateCompleted, StateFailed, StateCancelled, StateSalvaged:
		return true
	}
	return false
}

// WireError is the uniform error body: {"error":{"class":...,
// "message":...}}. Classes are part of the API contract (docs/serve.md).
type WireError struct {
	Class   string `json:"class"`
	Message string `json:"message"`
}

// Wire error classes.
const (
	ClassBadRequest     = "bad-request"     // malformed JSON or request shape
	ClassInvalidProgram = "invalid-program" // image/asm undecodable or verifier errors
	ClassConfig         = "config"          // invalid or incompatible job config
	ClassOversized      = "oversized"       // request body over the server limit
	ClassUnknownJob     = "unknown-job"     // no such job id
	ClassNotReady       = "not-ready"       // result requested before completion
	ClassMethod         = "method"          // HTTP method not allowed
	ClassOverloaded     = "overloaded"      // per-client queue full
	ClassClosing        = "closing"         // submitted during shutdown
	ClassBudget         = "budget"          // step/deadline/retry budget exhausted
	ClassFaulted        = "faulted"         // guest program faulted
	ClassCancelled      = "cancelled"       // cancelled by the client
	ClassInternal       = "internal"        // daemon-side failure
)

// JobStatus is the wire form of a job's state (GET /v1/jobs/{id} and
// the final SSE "done" event). Every field is deterministic for a
// given submission history, which is what lets the golden tests pin
// exact bodies.
type JobStatus struct {
	ID         string     `json:"id"`
	Client     string     `json:"client"`
	Digest     string     `json:"digest"`
	State      string     `json:"state"`
	Cached     bool       `json:"cached,omitempty"`
	Inputs     int        `json:"inputs"`
	InputsDone int        `json:"inputsDone"`
	Attempts   int        `json:"attempts,omitempty"`
	Resumed    int        `json:"resumed,omitempty"`
	Error      *WireError `json:"error,omitempty"`
}

// ProgressEvent is one SSE "progress" datum: a partial view of the
// running sub-run, emitted every PulseEvery instructions and when a
// sub-run is served from the cache.
type ProgressEvent struct {
	Seq     int  `json:"seq"`
	Input   int  `json:"input"`
	Inputs  int  `json:"inputs"`
	Attempt int  `json:"attempt"`
	Resumed bool `json:"resumed,omitempty"`
	// InstCount is the guest instruction count; Values the number of
	// profiled values delivered so far. Their ratio falling over time
	// is the convergence signal for sampled jobs.
	InstCount uint64 `json:"instCount"`
	Values    uint64 `json:"values"`
	// CachedInput marks a sub-run satisfied from the content cache.
	CachedInput bool `json:"cachedInput,omitempty"`
}

// job is one submitted profiling job.
type job struct {
	ID     string
	Seq    uint64
	Client string
	Digest string

	Prog   *program.Program
	Image  []byte
	Inputs [][]int64
	Config JobConfig

	// Scheduling bookkeeping (written under the scheduler's lock).
	enqueuedAt time.Time
	submitSeq  uint64

	cancel context.CancelFunc
	ctx    context.Context

	mu         sync.Mutex
	state      string
	cached     bool
	attempts   int
	resumed    int
	inputsDone int
	errClass   string
	errMsg     string
	// result holds a salvaged partial record; completed results are
	// served from the content cache instead.
	result []byte

	// Event fan-out. Subscriber channels are buffered; a slow consumer
	// loses intermediate progress events, never the stream end.
	subs     []chan ProgressEvent
	eventSeq int
	finished bool
}

func (j *job) status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:         j.ID,
		Client:     j.Client,
		Digest:     j.Digest,
		State:      j.state,
		Cached:     j.cached,
		Inputs:     len(j.Inputs),
		InputsDone: j.inputsDone,
		Attempts:   j.attempts,
		Resumed:    j.resumed,
	}
	if j.errClass != "" {
		st.Error = &WireError{Class: j.errClass, Message: j.errMsg}
	}
	return st
}

// subscribe registers a progress listener. The returned channel closes
// when the job reaches a terminal state (or the daemon shuts down);
// subscribers of an already-finished job get an immediately-closed
// channel and read the outcome from the job status.
func (j *job) subscribe() (<-chan ProgressEvent, func()) {
	j.mu.Lock()
	defer j.mu.Unlock()
	ch := make(chan ProgressEvent, 64)
	if j.finished {
		close(ch)
		return ch, func() {}
	}
	j.subs = append(j.subs, ch)
	return ch, func() {
		j.mu.Lock()
		defer j.mu.Unlock()
		for i, c := range j.subs {
			if c == ch {
				j.subs = append(j.subs[:i], j.subs[i+1:]...)
				return
			}
		}
	}
}

// emit broadcasts one progress event, dropping it for subscribers whose
// buffers are full (progress is advisory; status and result are not).
func (j *job) emit(ev ProgressEvent) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.finished {
		return
	}
	j.eventSeq++
	ev.Seq = j.eventSeq
	for _, ch := range j.subs {
		select {
		case ch <- ev:
		default:
		}
	}
}

// finishEvents closes every subscriber channel exactly once.
func (j *job) finishEvents() {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.finished {
		return
	}
	j.finished = true
	for _, ch := range j.subs {
		close(ch)
	}
	j.subs = nil
}

// manifest is the persisted form of a job under <state>/jobs/<id>.json.
type manifest struct {
	ID         string          `json:"id"`
	Seq        uint64          `json:"seq"`
	Client     string          `json:"client"`
	Digest     string          `json:"digest"`
	State      string          `json:"state"`
	Cached     bool            `json:"cached,omitempty"`
	Image      []byte          `json:"image"`
	Inputs     [][]int64       `json:"inputs"`
	Config     JobConfig       `json:"config"`
	InputsDone int             `json:"inputsDone"`
	Attempts   int             `json:"attempts,omitempty"`
	Resumed    int             `json:"resumed,omitempty"`
	ErrClass   string          `json:"errClass,omitempty"`
	ErrMsg     string          `json:"errMsg,omitempty"`
	Result     json.RawMessage `json:"result,omitempty"`
}

// manifestPath is the job's on-disk manifest location.
func manifestPath(stateDir, id string) string {
	return filepath.Join(stateDir, "jobs", id+".json")
}

// checkpointPath is the job's in-flight sub-run checkpoint location.
func checkpointPath(stateDir, id string) string {
	return filepath.Join(stateDir, "jobs", id+".ckpt")
}

// persist writes the job manifest atomically; a no-op without a state
// directory. persistedState overrides the stored state (eviction
// persists a running job as queued so recovery re-enqueues it).
func (j *job) persist(stateDir, persistedState string) error {
	if stateDir == "" {
		return nil
	}
	j.mu.Lock()
	m := manifest{
		ID:         j.ID,
		Seq:        j.Seq,
		Client:     j.Client,
		Digest:     j.Digest,
		State:      j.state,
		Cached:     j.cached,
		Image:      j.Image,
		Inputs:     j.Inputs,
		Config:     j.Config,
		InputsDone: j.inputsDone,
		Attempts:   j.attempts,
		Resumed:    j.resumed,
		ErrClass:   j.errClass,
		ErrMsg:     j.errMsg,
		Result:     j.result,
	}
	j.mu.Unlock()
	if persistedState != "" {
		m.State = persistedState
	}
	data, err := json.Marshal(&m)
	if err != nil {
		return fmt.Errorf("serve: encoding manifest %s: %w", j.ID, err)
	}
	return atomicio.WriteFileBytes(manifestPath(stateDir, j.ID), data)
}

// loadManifest reads one persisted job, rebuilding the decoded program
// from its canonical image.
func loadManifest(path string) (*job, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("serve: decoding manifest %s: %w", path, err)
	}
	prog, err := program.Load(bytesReader(m.Image))
	if err != nil {
		return nil, fmt.Errorf("serve: manifest %s image: %w", path, err)
	}
	j := &job{
		ID:         m.ID,
		Seq:        m.Seq,
		Client:     m.Client,
		Digest:     m.Digest,
		Prog:       prog,
		Image:      m.Image,
		Inputs:     m.Inputs,
		Config:     m.Config,
		state:      m.State,
		cached:     m.Cached,
		attempts:   m.Attempts,
		resumed:    m.Resumed,
		inputsDone: m.InputsDone,
		errClass:   m.ErrClass,
		errMsg:     m.ErrMsg,
		result:     m.Result,
	}
	if terminalState(j.state) {
		j.finished = true
	} else {
		// Anything non-terminal — queued, or running when the previous
		// process died — goes back on the queue.
		j.state = StateQueued
	}
	return j, nil
}
