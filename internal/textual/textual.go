// Package textual renders aligned plain-text tables for experiment
// output, in the spirit of the paper's result tables.
package textual

import (
	"fmt"
	"strings"
)

// Table accumulates rows of cells and renders them column-aligned.
type Table struct {
	Title   string
	headers []string
	rows    [][]string
}

// New creates a table with the given column headers.
func New(title string, headers ...string) *Table {
	return &Table{Title: title, headers: headers}
}

// Row appends a row; cells are formatted with %v.
func (t *Table) Row(cells ...any) *Table {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.rows = append(t.rows, row)
	return t
}

// Pct formats a fraction as a percentage cell.
func Pct(f float64) string { return fmt.Sprintf("%.1f%%", 100*f) }

// String renders the table.
func (t *Table) String() string {
	ncols := len(t.headers)
	for _, r := range t.rows {
		if len(r) > ncols {
			ncols = len(r)
		}
	}
	widths := make([]int, ncols)
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i := 0; i < ncols; i++ {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	if len(t.headers) > 0 {
		writeRow(t.headers)
		total := 0
		for _, w := range widths {
			total += w
		}
		b.WriteString(strings.Repeat("-", total+2*(ncols-1)))
		b.WriteString("\n")
	}
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}
