package textual

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tab := New("demo", "name", "value")
	tab.Row("alpha", 1.5)
	tab.Row("b", 10)
	s := tab.String()
	if !strings.Contains(s, "== demo ==") {
		t.Errorf("missing title:\n%s", s)
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("lines = %d:\n%s", len(lines), s)
	}
	if !strings.HasPrefix(lines[1], "name ") {
		t.Errorf("header: %q", lines[1])
	}
	if !strings.Contains(lines[3], "1.500") {
		t.Errorf("float formatting: %q", lines[3])
	}
	// Columns aligned: "value" starts at the same offset in all rows.
	off := strings.Index(lines[1], "value")
	if !strings.HasPrefix(lines[3][off:], "1.500") {
		t.Errorf("misaligned columns:\n%s", s)
	}
}

func TestPct(t *testing.T) {
	if Pct(0.4567) != "45.7%" {
		t.Errorf("Pct = %q", Pct(0.4567))
	}
}

func TestRaggedRows(t *testing.T) {
	tab := New("", "a")
	tab.Row("x", "extra")
	s := tab.String()
	if !strings.Contains(s, "extra") {
		t.Errorf("ragged row dropped:\n%s", s)
	}
}
