// Package memprof implements the paper's memory-location value
// profiling: for each memory address, a TNV table tracks the values
// written to (and optionally loaded from) that location, yielding
// per-location invariance — the thesis's second profiled entity class
// ("Value Profiling for Instructions and Memory Locations").
package memprof

import (
	"sort"

	"valueprof/internal/atom"
	"valueprof/internal/core"
	"valueprof/internal/isa"
	"valueprof/internal/vm"
)

// Region classifies an address for reporting. Static data lives just
// above program.DataBase; the stack grows down from the top of memory.
type Region int

const (
	RegionData Region = iota
	RegionStack
)

func (r Region) String() string {
	if r == RegionStack {
		return "stack"
	}
	return "data"
}

// Options configures a MemProfiler.
type Options struct {
	TNV       core.TNVConfig
	TrackFull bool
	// IncludeLoads also feeds load results into the location's
	// profile (the paper's read-write location profile); stores alone
	// give the written-value profile.
	IncludeLoads bool
	// StackBoundary splits data from stack addresses in reports; a
	// zero value uses half the VM address space.
	StackBoundary uint64
}

// DefaultOptions profiles stores only with the paper's TNV table.
func DefaultOptions() Options {
	return Options{TNV: core.DefaultTNVConfig()}
}

// Location is the profile of one memory address.
type Location struct {
	Addr   uint64
	Region Region
	Stats  *core.SiteStats
	Writes uint64
	Reads  uint64
}

// MemProfiler is an ATOM tool profiling memory locations.
type MemProfiler struct {
	opts Options
	locs map[uint64]*Location
}

// New creates a memory-location profiler.
func New(opts Options) *MemProfiler {
	if opts.TNV.Size == 0 {
		opts.TNV = core.DefaultTNVConfig()
	}
	return &MemProfiler{opts: opts, locs: make(map[uint64]*Location)}
}

// Instrument implements atom.Tool.
func (m *MemProfiler) Instrument(ix *atom.Instrumenter) {
	boundary := m.opts.StackBoundary
	observe := func(ev *vm.Event, isWrite bool) {
		b := boundary
		if b == 0 {
			b = uint64(len(ev.VM.Mem)) / 2
		}
		loc := m.locs[ev.Addr]
		if loc == nil {
			reg := RegionData
			if ev.Addr >= b {
				reg = RegionStack
			}
			loc = &Location{
				Addr:   ev.Addr,
				Region: reg,
				Stats:  core.NewSiteStats(-1, "", m.opts.TNV, m.opts.TrackFull),
			}
			m.locs[ev.Addr] = loc
		}
		if isWrite {
			loc.Writes++
		} else {
			loc.Reads++
		}
		loc.Stats.Observe(ev.Value)
	}
	ix.ForEachInst(func(in isa.Inst) bool { return in.Op.Class() == isa.ClassStore }, func(pc int, in isa.Inst) {
		ix.AddAfter(pc, func(ev *vm.Event) { observe(ev, true) })
	})
	if m.opts.IncludeLoads {
		ix.ForEachInst(func(in isa.Inst) bool { return in.Op.Class() == isa.ClassLoad }, func(pc int, in isa.Inst) {
			ix.AddAfter(pc, func(ev *vm.Event) { observe(ev, false) })
		})
	}
}

// Report is the result of a memory-profiling run.
type Report struct {
	Locations []*Location // sorted by address
	K         int
}

// Report returns the collected per-location profiles.
func (m *MemProfiler) Report() *Report {
	locs := make([]*Location, 0, len(m.locs))
	for _, l := range m.locs {
		locs = append(locs, l)
	}
	sort.Slice(locs, func(i, j int) bool { return locs[i].Addr < locs[j].Addr })
	return &Report{Locations: locs, K: m.opts.TNV.Size}
}

// Aggregate returns access-weighted metrics over locations in the given
// region; pass nil to aggregate all locations.
func (r *Report) Aggregate(region *Region) core.WeightedMetrics {
	var sites []*core.SiteStats
	for _, l := range r.Locations {
		if region == nil || l.Region == *region {
			sites = append(sites, l.Stats)
		}
	}
	return core.Aggregate(sites, r.K)
}

// TopLocations returns the n most-accessed locations.
func (r *Report) TopLocations(n int) []*Location {
	out := append([]*Location(nil), r.Locations...)
	sort.Slice(out, func(i, j int) bool {
		ai, aj := out[i].Stats.Exec, out[j].Stats.Exec
		if ai != aj {
			return ai > aj
		}
		return out[i].Addr < out[j].Addr
	})
	if n < len(out) {
		out = out[:n]
	}
	return out
}

// InvariantFraction reports the fraction of locations (unweighted, and
// access-weighted) whose top value covers at least thresh of accesses.
func (r *Report) InvariantFraction(thresh float64) (byLoc, byAccess float64) {
	var nInv, n float64
	var wInv, w float64
	for _, l := range r.Locations {
		if l.Stats.Exec == 0 {
			continue
		}
		n++
		w += float64(l.Stats.Exec)
		if l.Stats.InvTop(1) >= thresh {
			nInv++
			wInv += float64(l.Stats.Exec)
		}
	}
	if n > 0 {
		byLoc = nInv / n
	}
	if w > 0 {
		byAccess = wInv / w
	}
	return byLoc, byAccess
}
