package memprof

import (
	"testing"

	"valueprof/internal/asm"
	"valueprof/internal/atom"
	"valueprof/internal/core"
	"valueprof/internal/program"
)

const memSrc = `
        .proc main
main:   la t0, cell
        li t1, 5
        li t2, 100
loop:   stq t1, 0(t0)
        stq t2, 8(t0)
        ldq t3, 0(t0)
        stq t1, -8(sp)
        addi t2, t2, -1
        bne t2, loop
        syscall exit
        .endproc
        .data
cell:   .space 16
`

func runMem(t *testing.T, opts Options) *Report {
	t.Helper()
	prog, err := asm.Assemble(memSrc)
	if err != nil {
		t.Fatal(err)
	}
	mp := New(opts)
	if _, err := atom.Run(prog, nil, false, mp); err != nil {
		t.Fatal(err)
	}
	return mp.Report()
}

func TestMemProfilerStores(t *testing.T) {
	r := runMem(t, Options{TNV: core.DefaultTNVConfig(), TrackFull: true})
	if len(r.Locations) != 3 {
		t.Fatalf("locations = %d, want 3 (cell, cell+8, stack slot)", len(r.Locations))
	}
	cell := r.Locations[0]
	if cell.Addr != program.DataBase {
		t.Fatalf("first location at %#x", cell.Addr)
	}
	if cell.Writes != 100 || cell.Reads != 0 {
		t.Errorf("cell writes=%d reads=%d", cell.Writes, cell.Reads)
	}
	if cell.Stats.InvTop(1) != 1.0 {
		t.Errorf("constant location invariance = %v", cell.Stats.InvTop(1))
	}
	if cell.Region != RegionData {
		t.Errorf("cell region = %v", cell.Region)
	}
	varying := r.Locations[1]
	if varying.Stats.InvAll(1) != 0.01 {
		t.Errorf("varying location InvAll = %v", varying.Stats.InvAll(1))
	}
	stack := r.Locations[2]
	if stack.Region != RegionStack {
		t.Errorf("stack slot region = %v (addr %#x)", stack.Region, stack.Addr)
	}
}

func TestMemProfilerIncludeLoads(t *testing.T) {
	r := runMem(t, Options{TNV: core.DefaultTNVConfig(), IncludeLoads: true})
	cell := r.Locations[0]
	if cell.Reads != 100 {
		t.Errorf("cell reads = %d, want 100", cell.Reads)
	}
	if cell.Stats.Exec != 200 {
		t.Errorf("cell observations = %d, want 200 (100 stores + 100 loads)", cell.Stats.Exec)
	}
}

func TestMemAggregateAndTop(t *testing.T) {
	r := runMem(t, Options{TNV: core.DefaultTNVConfig(), TrackFull: true})
	all := r.Aggregate(nil)
	if all.Execs != 300 {
		t.Errorf("total accesses = %d, want 300", all.Execs)
	}
	data := RegionData
	dm := r.Aggregate(&data)
	if dm.Execs != 200 {
		t.Errorf("data accesses = %d, want 200", dm.Execs)
	}
	top := r.TopLocations(1)
	if len(top) != 1 || top[0].Stats.Exec != 100 {
		t.Errorf("top location = %+v", top)
	}
	byLoc, byAccess := r.InvariantFraction(0.9)
	// 2 of 3 locations are constant-valued.
	if byLoc < 0.6 || byLoc > 0.7 {
		t.Errorf("invariant fraction by location = %v", byLoc)
	}
	if byAccess < 0.6 || byAccess > 0.7 {
		t.Errorf("invariant fraction by access = %v", byAccess)
	}
}

func TestRegionString(t *testing.T) {
	if RegionData.String() != "data" || RegionStack.String() != "stack" {
		t.Error("region names wrong")
	}
}

func TestDefaultOptions(t *testing.T) {
	o := DefaultOptions()
	if o.TNV.Size != 10 || o.IncludeLoads {
		t.Errorf("unexpected defaults: %+v", o)
	}
}
