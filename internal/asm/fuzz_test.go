package asm

import (
	"strings"
	"testing"
)

// FuzzAssemble feeds arbitrary source to the assembler: it must either
// return a structured error or a well-formed program — never panic,
// and never emit code that falls outside the program's own tables.
func FuzzAssemble(f *testing.F) {
	f.Add("") // empty source
	f.Add(`
        .proc main
main:   li t0, 42
        syscall exit
        .endproc
`)
	f.Add(`
        .proc main
main:   ldq t1, cell
        addq t1, t1, t2
        stq t2, cell
        bne t2, main
        syscall exit
        .endproc
        .data
cell:   .word 7
`)
	// Shapes that historically trip hand-written parsers.
	f.Add(".proc main\nmain: li t0, 99999999999999999999\n.endproc")
	f.Add(".proc main\nmain: bne t0, nowhere\n.endproc")
	f.Add(".proc p\n.proc q\n.endproc")
	f.Add("label-only:\n")
	f.Add(".data\nw: .word\n")
	f.Add("; comment only\n\t\n")
	f.Add(".proc main\nmain: li t0, -0x8000000000000000\nsyscall exit\n.endproc")
	f.Add(strings.Repeat("a", 300) + ": .word 1")
	f.Add("\x00\x01\x02")

	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Assemble(src)
		if err != nil {
			if prog != nil {
				t.Fatal("non-nil program alongside error")
			}
			return
		}
		// Accepted programs must be internally consistent: branch
		// targets inside the code segment and procedure bounds sane,
		// so the VM cannot index out of range before its own checks.
		n := len(prog.Code)
		for _, p := range prog.Procs {
			if p.Start < 0 || p.Start > n || p.End < p.Start || p.End > n {
				t.Fatalf("procedure %q out of bounds [%d,%d) of %d", p.Name, p.Start, p.End, n)
			}
		}
		for pc, in := range prog.Code {
			_ = in.String() // must not panic on any encoding
			_ = pc
		}
	})
}
