package asm

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"valueprof/internal/isa"
)

// randomValidProgram builds a random instruction sequence whose branch
// targets stay in range (the property the assembler must preserve).
func randomValidProgram(r *rand.Rand, n int) []isa.Inst {
	code := make([]isa.Inst, n)
	reg := func() uint8 { return uint8(r.Intn(isa.NumRegs)) }
	for i := range code {
		op := isa.Op(r.Intn(isa.NumOps))
		var in isa.Inst
		switch op.Form() {
		case isa.FormNone:
			in = isa.Inst{Op: op}
		case isa.FormRRR:
			in = isa.Inst{Op: op, Rd: reg(), Ra: reg(), Rb: reg()}
		case isa.FormRRI, isa.FormMem:
			in = isa.Inst{Op: op, Rd: reg(), Ra: reg(), Imm: int32(r.Intn(4096) - 2048)}
		case isa.FormB:
			in = isa.Inst{Op: op, Imm: int32(r.Intn(n))}
		case isa.FormRB:
			in = isa.Inst{Op: op, Ra: reg(), Imm: int32(r.Intn(n))}
		case isa.FormJ:
			in = isa.Inst{Op: op, Rd: isa.RegRA, Imm: int32(r.Intn(n))}
		case isa.FormR:
			in = isa.Inst{Op: op, Ra: reg()}
			if op == isa.OpJsrr {
				in.Rd = isa.RegRA
			}
		case isa.FormS:
			in = isa.Inst{Op: op, Imm: int32(r.Intn(6))}
		}
		code[i] = in
	}
	return code
}

// TestDisassembleReassembleRoundTrip fuzzes the full loop: random valid
// program → per-instruction disassembly → assembler → identical code.
// Branch targets round-trip numerically.
func TestDisassembleReassembleRoundTrip(t *testing.T) {
	for trial := 0; trial < 30; trial++ {
		r := rand.New(rand.NewSource(int64(trial)*977 + 3))
		code := randomValidProgram(r, 20+r.Intn(200))
		var src strings.Builder
		src.WriteString("main:\n")
		for _, in := range code {
			fmt.Fprintf(&src, " %s\n", in.String())
		}
		p, err := Assemble(src.String())
		if err != nil {
			t.Fatalf("trial %d: %v\nsource:\n%s", trial, err, src.String())
		}
		if len(p.Code) != len(code) {
			t.Fatalf("trial %d: %d instructions, want %d", trial, len(p.Code), len(code))
		}
		for i := range code {
			got, want := p.Code[i], code[i]
			// jsr always links through ra in the assembler; the random
			// generator already pins that, so exact equality holds.
			if got != want {
				t.Fatalf("trial %d inst %d: %+v != %+v (text %q)", trial, i, got, want, want.String())
			}
		}
	}
}

func TestNumericBranchTargets(t *testing.T) {
	p := mustAssemble(t, "main: br 2\n nop\n beq t0, 0\n jsr 1\n syscall exit\n")
	if p.Code[0].Imm != 2 || p.Code[2].Imm != 0 || p.Code[3].Imm != 1 {
		t.Errorf("numeric targets wrong: %v", p.Code[:4])
	}
	if _, err := Assemble("main: br 99\n"); err == nil {
		t.Error("out-of-range numeric target accepted")
	}
	if _, err := Assemble("main: br -1\n"); err == nil {
		t.Error("negative numeric target accepted")
	}
}
