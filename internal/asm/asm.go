// Package asm implements a two-pass assembler for VRISC assembly text,
// producing a program.Program. It is the tool layer the MiniC compiler
// emits into, standing in for the native assembler of the paper's Alpha
// toolchain.
//
// Syntax overview:
//
//	; comment   # comment
//	        .text
//	        .proc main
//	main:   addi sp, sp, -16
//	        li   t0, 42
//	        la   t1, buf
//	        stq  t0, 0(t1)
//	        beq  t0, done
//	loop:   br   loop
//	done:   syscall exit
//	        .endproc
//	        .data
//	buf:    .space 64
//	vals:   .word 1, 2, 3
//	msg:    .asciiz "hi\n"
//	count:  .byte 7
//
// Pseudo-instructions: li (load 32-bit signed immediate), la (load data
// symbol address), mov, and bare ret (ret ra). Register aliases follow
// the VRISC calling convention (zero, sp, fp, ra, gp, at, v0, a0-a5,
// t0-t9, s0-s7).
package asm

import (
	"fmt"
	"strconv"
	"strings"

	"valueprof/internal/isa"
	"valueprof/internal/program"
)

// Error is an assembly diagnostic with a 1-based source line.
type Error struct {
	Line int
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("asm: line %d: %s", e.Line, e.Msg) }

type segment int

const (
	segText segment = iota
	segData
)

type fixup struct {
	pc    int    // instruction to patch
	label string // text label whose address goes into Imm
	line  int
}

type assembler struct {
	code       []isa.Inst
	lines      []int // source line of each emitted instruction
	data       []byte
	labels     map[string]int    // text labels -> pc
	dataSyms   map[string]uint64 // data labels -> absolute address
	procs      []program.Proc
	openProc   int // index into procs of unclosed .proc, or -1
	fixups     []fixup
	seg        segment
	line       int
	preScanned bool // data symbols were collected by preScanData
}

// preScanData walks the source once, computing the address of every
// data symbol without evaluating operand values, so that text
// instructions and .word initializers may refer to data symbols defined
// later in the file.
func preScanData(src string) (map[string]uint64, error) {
	syms := make(map[string]uint64)
	seg := segText
	size := uint64(0)
	for i, raw := range strings.Split(src, "\n") {
		line := i + 1
		s := strings.TrimSpace(stripComment(raw))
		for {
			j := strings.IndexByte(s, ':')
			if j < 0 {
				break
			}
			name := strings.TrimSpace(s[:j])
			if !isIdent(name) {
				break
			}
			if seg == segData {
				if _, dup := syms[name]; dup {
					return nil, &Error{Line: line, Msg: fmt.Sprintf("duplicate data symbol %q", name)}
				}
				syms[name] = program.DataBase + size
			}
			s = strings.TrimSpace(s[j+1:])
		}
		if s == "" || !strings.HasPrefix(s, ".") {
			continue
		}
		name, rest, _ := strings.Cut(s, " ")
		rest = strings.TrimSpace(rest)
		switch name {
		case ".text":
			seg = segText
		case ".data":
			seg = segData
		case ".word":
			size += 8 * uint64(len(splitOperands(rest)))
		case ".byte":
			size += uint64(len(splitOperands(rest)))
		case ".space":
			n, err := strconv.ParseInt(rest, 0, 64)
			if err != nil || n < 0 || n > 1<<28 {
				return nil, &Error{Line: line, Msg: fmt.Sprintf(".space needs a literal non-negative size, got %q", rest)}
			}
			size += uint64(n)
		case ".asciiz":
			str, err := strconv.Unquote(rest)
			if err != nil {
				return nil, &Error{Line: line, Msg: fmt.Sprintf(".asciiz needs a quoted string: %v", err)}
			}
			size += uint64(len(str)) + 1
		}
	}
	return syms, nil
}

func (a *assembler) errf(format string, args ...any) error {
	return &Error{Line: a.line, Msg: fmt.Sprintf(format, args...)}
}

// Assemble translates VRISC assembly source into a validated program.
// The entry point is the label "main" if present, otherwise pc 0.
//
// Assembly proceeds in two passes plus a data pre-scan, so both text
// labels and data symbols may be referenced before they are defined.
func Assemble(src string) (*program.Program, error) {
	dataSyms, err := preScanData(src)
	if err != nil {
		return nil, err
	}
	a := &assembler{
		labels:     make(map[string]int),
		dataSyms:   dataSyms,
		openProc:   -1,
		preScanned: true,
	}
	for i, raw := range strings.Split(src, "\n") {
		a.line = i + 1
		if err := a.doLine(raw); err != nil {
			return nil, err
		}
	}
	if a.openProc >= 0 {
		return nil, fmt.Errorf("asm: procedure %q has no .endproc", a.procs[a.openProc].Name)
	}
	for _, f := range a.fixups {
		pc, ok := a.labels[f.label]
		if !ok {
			return nil, &Error{Line: f.line, Msg: fmt.Sprintf("undefined label %q", f.label)}
		}
		a.code[f.pc].Imm = int32(pc)
	}
	// With every fixup resolved, reject targets outside the instruction
	// range here, where the source line is still known — Validate would
	// catch them too, but anonymously.
	for pc, in := range a.code {
		if tgt, ok := in.Target(); ok && (tgt < 0 || tgt >= len(a.code)) {
			return nil, &Error{Line: a.lines[pc], Msg: fmt.Sprintf(
				"%s target %d outside code [0,%d)", in.Op, tgt, len(a.code))}
		}
	}
	p := &program.Program{
		Code:     a.code,
		Data:     a.data,
		DataAddr: program.DataBase,
		Procs:    a.procs,
		Labels:   a.labels,
		DataSyms: a.dataSyms,
	}
	if main, ok := a.labels["main"]; ok {
		p.Entry = main
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

func stripComment(s string) string {
	inStr := false
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			inStr = !inStr
		case '\\':
			if inStr {
				i++
			}
		case ';', '#':
			if !inStr {
				return s[:i]
			}
		}
	}
	return s
}

func (a *assembler) doLine(raw string) error {
	s := strings.TrimSpace(stripComment(raw))
	if s == "" {
		return nil
	}
	// Labels (possibly several) at line start.
	for {
		i := strings.IndexByte(s, ':')
		if i < 0 {
			break
		}
		name := strings.TrimSpace(s[:i])
		if !isIdent(name) {
			break
		}
		if err := a.defineLabel(name); err != nil {
			return err
		}
		s = strings.TrimSpace(s[i+1:])
	}
	if s == "" {
		return nil
	}
	if strings.HasPrefix(s, ".") {
		return a.directive(s)
	}
	if a.seg != segText {
		return a.errf("instruction %q outside .text", s)
	}
	return a.instruction(s)
}

func (a *assembler) defineLabel(name string) error {
	if a.seg == segText {
		if _, dup := a.labels[name]; dup {
			return a.errf("duplicate label %q", name)
		}
		a.labels[name] = len(a.code)
		return nil
	}
	want := program.DataBase + uint64(len(a.data))
	if a.preScanned {
		if got, ok := a.dataSyms[name]; !ok || got != want {
			return a.errf("internal: data symbol %q address mismatch (pre-scan %d, pass 2 %d)", name, got, want)
		}
		return nil
	}
	if _, dup := a.dataSyms[name]; dup {
		return a.errf("duplicate data symbol %q", name)
	}
	a.dataSyms[name] = want
	return nil
}

func (a *assembler) directive(s string) error {
	name, rest, _ := strings.Cut(s, " ")
	rest = strings.TrimSpace(rest)
	switch name {
	case ".text":
		a.seg = segText
	case ".data":
		a.seg = segData
	case ".proc":
		if a.seg != segText {
			return a.errf(".proc outside .text")
		}
		if a.openProc >= 0 {
			return a.errf(".proc %q inside unterminated procedure %q", rest, a.procs[a.openProc].Name)
		}
		if !isIdent(rest) {
			return a.errf(".proc needs a name")
		}
		a.procs = append(a.procs, program.Proc{Name: rest, Start: len(a.code)})
		a.openProc = len(a.procs) - 1
	case ".endproc":
		if a.openProc < 0 {
			return a.errf(".endproc without .proc")
		}
		a.procs[a.openProc].End = len(a.code)
		a.openProc = -1
	case ".word":
		if a.seg != segData {
			return a.errf(".word outside .data")
		}
		for _, f := range splitOperands(rest) {
			v, err := a.intOperand(f)
			if err != nil {
				return err
			}
			for i := 0; i < 8; i++ {
				a.data = append(a.data, byte(uint64(v)>>(8*i)))
			}
		}
	case ".byte":
		if a.seg != segData {
			return a.errf(".byte outside .data")
		}
		for _, f := range splitOperands(rest) {
			v, err := a.intOperand(f)
			if err != nil {
				return err
			}
			a.data = append(a.data, byte(v))
		}
	case ".space":
		if a.seg != segData {
			return a.errf(".space outside .data")
		}
		n, err := a.intOperand(rest)
		if err != nil {
			return err
		}
		if n < 0 || n > 1<<28 {
			return a.errf(".space size %d out of range", n)
		}
		a.data = append(a.data, make([]byte, n)...)
	case ".asciiz":
		if a.seg != segData {
			return a.errf(".asciiz outside .data")
		}
		str, err := strconv.Unquote(rest)
		if err != nil {
			return a.errf(".asciiz needs a quoted string: %v", err)
		}
		a.data = append(a.data, str...)
		a.data = append(a.data, 0)
	default:
		return a.errf("unknown directive %q", name)
	}
	return nil
}

var sysNames = map[string]int32{
	"exit":    isa.SysExit,
	"putint":  isa.SysPutInt,
	"putchar": isa.SysPutChar,
	"getint":  isa.SysGetInt,
	"putstr":  isa.SysPutStr,
	"clock":   isa.SysClock,
}

func (a *assembler) instruction(s string) error {
	mnem, rest, _ := strings.Cut(s, " ")
	ops := splitOperands(strings.TrimSpace(rest))

	// Pseudo-instructions first.
	switch mnem {
	case "li":
		if len(ops) != 2 {
			return a.errf("li needs rd, imm")
		}
		rd, err := a.reg(ops[0])
		if err != nil {
			return err
		}
		// "li rd, label" materializes a code address (for jsrr
		// dispatch tables); otherwise an integer or data symbol.
		if _, isData := a.dataSyms[ops[1]]; !isData && isIdent(ops[1]) {
			if _, err := strconv.ParseInt(ops[1], 0, 64); err != nil {
				a.fixups = append(a.fixups, fixup{pc: len(a.code), label: ops[1], line: a.line})
				a.emit(isa.Inst{Op: isa.OpAddi, Rd: rd, Ra: isa.RegZero})
				return nil
			}
		}
		v, err := a.intOperand(ops[1])
		if err != nil {
			return err
		}
		if v < -(1<<31) || v > (1<<31)-1 {
			return a.errf("li immediate %d does not fit in 32 bits", v)
		}
		a.emit(isa.Inst{Op: isa.OpAddi, Rd: rd, Ra: isa.RegZero, Imm: int32(v)})
		return nil
	case "la":
		if len(ops) != 2 {
			return a.errf("la needs rd, symbol")
		}
		rd, err := a.reg(ops[0])
		if err != nil {
			return err
		}
		addr, ok := a.dataSyms[ops[1]]
		if !ok {
			return a.errf("la: unknown data symbol %q", ops[1])
		}
		a.emit(isa.Inst{Op: isa.OpAddi, Rd: rd, Ra: isa.RegZero, Imm: int32(addr)})
		return nil
	case "mov":
		if len(ops) != 2 {
			return a.errf("mov needs rd, ra")
		}
		rd, err := a.reg(ops[0])
		if err != nil {
			return err
		}
		ra, err := a.reg(ops[1])
		if err != nil {
			return err
		}
		a.emit(isa.Inst{Op: isa.OpOr, Rd: rd, Ra: ra, Rb: isa.RegZero})
		return nil
	}

	op, ok := isa.OpByName(mnem)
	if !ok {
		return a.errf("unknown mnemonic %q", mnem)
	}
	in := isa.Inst{Op: op}
	switch op.Form() {
	case isa.FormNone:
		if op == isa.OpNop && len(ops) == 0 {
			break
		}
		if len(ops) != 0 {
			return a.errf("%s takes no operands", mnem)
		}
	case isa.FormRRR:
		if len(ops) != 3 {
			return a.errf("%s needs rd, ra, rb", mnem)
		}
		var err error
		if in.Rd, err = a.reg(ops[0]); err != nil {
			return err
		}
		if in.Ra, err = a.reg(ops[1]); err != nil {
			return err
		}
		if in.Rb, err = a.reg(ops[2]); err != nil {
			return err
		}
	case isa.FormRRI:
		if len(ops) != 3 {
			return a.errf("%s needs rd, ra, imm", mnem)
		}
		var err error
		if in.Rd, err = a.reg(ops[0]); err != nil {
			return err
		}
		if in.Ra, err = a.reg(ops[1]); err != nil {
			return err
		}
		v, err := a.intOperand(ops[2])
		if err != nil {
			return err
		}
		if v < -(1<<31) || v > (1<<31)-1 {
			return a.errf("immediate %d does not fit in 32 bits", v)
		}
		in.Imm = int32(v)
	case isa.FormMem:
		if len(ops) != 2 {
			return a.errf("%s needs rd, offset(ra)", mnem)
		}
		var err error
		if in.Rd, err = a.reg(ops[0]); err != nil {
			return err
		}
		in.Imm, in.Ra, err = a.memOperand(ops[1])
		if err != nil {
			return err
		}
	case isa.FormB, isa.FormJ:
		if len(ops) != 1 {
			return a.errf("%s needs a label", mnem)
		}
		if op == isa.OpJsr {
			in.Rd = isa.RegRA
		}
		if err := a.branchTarget(&in, ops[0]); err != nil {
			return err
		}
	case isa.FormRB:
		if len(ops) != 2 {
			return a.errf("%s needs ra, label", mnem)
		}
		var err error
		if in.Ra, err = a.reg(ops[0]); err != nil {
			return err
		}
		if err := a.branchTarget(&in, ops[1]); err != nil {
			return err
		}
	case isa.FormR:
		if op == isa.OpRet && len(ops) == 0 {
			in.Ra = isa.RegRA
			break
		}
		if len(ops) != 1 {
			return a.errf("%s needs a register", mnem)
		}
		var err error
		if in.Ra, err = a.reg(ops[0]); err != nil {
			return err
		}
		if op == isa.OpJsrr {
			in.Rd = isa.RegRA
		}
	case isa.FormS:
		if len(ops) != 1 {
			return a.errf("syscall needs a code")
		}
		if code, ok := sysNames[ops[0]]; ok {
			in.Imm = code
		} else {
			v, err := a.intOperand(ops[0])
			if err != nil {
				return err
			}
			in.Imm = int32(v)
		}
	}
	a.emit(in)
	return nil
}

func (a *assembler) emit(in isa.Inst) {
	a.code = append(a.code, in)
	a.lines = append(a.lines, a.line)
}

// branchTarget resolves a branch/call operand: a numeric absolute
// instruction index (as the disassembler prints) is used directly; an
// identifier becomes a label fixup resolved after pass 2.
func (a *assembler) branchTarget(in *isa.Inst, op string) error {
	if v, err := strconv.ParseInt(op, 0, 64); err == nil {
		if v < 0 || v > (1<<31)-1 {
			return a.errf("branch target %d out of range", v)
		}
		in.Imm = int32(v)
		return nil
	}
	if !isIdent(op) {
		return a.errf("bad branch target %q", op)
	}
	a.fixups = append(a.fixups, fixup{pc: len(a.code), label: op, line: a.line})
	return nil
}

var regAliases = func() map[string]uint8 {
	m := map[string]uint8{
		"zero": isa.RegZero, "sp": isa.RegSP, "fp": isa.RegFP,
		"ra": isa.RegRA, "gp": isa.RegGP, "at": isa.RegAT, "v0": isa.RegV0,
	}
	for i := 0; i < 6; i++ {
		m[fmt.Sprintf("a%d", i)] = uint8(isa.RegA0 + i)
	}
	for i := 0; i < 10; i++ {
		m[fmt.Sprintf("t%d", i)] = uint8(isa.RegT0 + i)
	}
	for i := 0; i < 8; i++ {
		m[fmt.Sprintf("s%d", i)] = uint8(isa.RegS0 + i)
	}
	for i := 0; i < isa.NumRegs; i++ {
		m[fmt.Sprintf("r%d", i)] = uint8(i)
	}
	return m
}()

func (a *assembler) reg(s string) (uint8, error) {
	if r, ok := regAliases[s]; ok {
		return r, nil
	}
	return 0, a.errf("unknown register %q", s)
}

// intOperand parses a decimal/hex integer or a data-symbol reference
// (optionally symbol+offset).
func (a *assembler) intOperand(s string) (int64, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, a.errf("missing integer operand")
	}
	if v, err := strconv.ParseInt(s, 0, 64); err == nil {
		return v, nil
	}
	sym, off := s, int64(0)
	if i := strings.IndexByte(s, '+'); i > 0 {
		var err error
		off, err = strconv.ParseInt(strings.TrimSpace(s[i+1:]), 0, 64)
		if err != nil {
			return 0, a.errf("bad operand %q", s)
		}
		sym = strings.TrimSpace(s[:i])
	}
	if addr, ok := a.dataSyms[sym]; ok {
		return int64(addr) + off, nil
	}
	return 0, a.errf("bad integer or unknown symbol %q", s)
}

// memOperand parses "offset(reg)", "(reg)", or "symbol" (absolute
// address with zero base register).
func (a *assembler) memOperand(s string) (int32, uint8, error) {
	open := strings.IndexByte(s, '(')
	if open < 0 {
		v, err := a.intOperand(s)
		if err != nil {
			return 0, 0, err
		}
		if v < -(1<<31) || v > (1<<31)-1 {
			return 0, 0, a.errf("address %d does not fit in 32 bits", v)
		}
		return int32(v), isa.RegZero, nil
	}
	if !strings.HasSuffix(s, ")") {
		return 0, 0, a.errf("bad memory operand %q", s)
	}
	var off int64
	if offStr := strings.TrimSpace(s[:open]); offStr != "" {
		var err error
		off, err = a.intOperand(offStr)
		if err != nil {
			return 0, 0, err
		}
	}
	if off < -(1<<31) || off > (1<<31)-1 {
		return 0, 0, a.errf("offset %d does not fit in 32 bits", off)
	}
	r, err := a.reg(strings.TrimSpace(s[open+1 : len(s)-1]))
	if err != nil {
		return 0, 0, err
	}
	return int32(off), r, nil
}

// splitOperands splits on commas that are outside quoted strings.
func splitOperands(s string) []string {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	var out []string
	depth := 0
	inStr := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			inStr = !inStr
		case '\\':
			if inStr {
				i++
			}
		case '(':
			depth++
		case ')':
			depth--
		case ',':
			if !inStr && depth == 0 {
				out = append(out, strings.TrimSpace(s[start:i]))
				start = i + 1
			}
		}
	}
	out = append(out, strings.TrimSpace(s[start:]))
	return out
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == '$', c == '.':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
