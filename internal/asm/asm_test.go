package asm

import (
	"strings"
	"testing"

	"valueprof/internal/isa"
	"valueprof/internal/program"
)

func mustAssemble(t *testing.T, src string) *program.Program {
	t.Helper()
	p, err := Assemble(src)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	return p
}

func TestAssembleBasic(t *testing.T) {
	p := mustAssemble(t, `
        .text
        .proc main
main:   addi t0, zero, 5
loop:   addi t0, t0, -1
        bne  t0, loop
        syscall exit
        .endproc
`)
	if len(p.Code) != 4 {
		t.Fatalf("got %d instructions, want 4", len(p.Code))
	}
	if p.Entry != 0 {
		t.Errorf("entry = %d, want 0", p.Entry)
	}
	want := []isa.Inst{
		{Op: isa.OpAddi, Rd: isa.RegT0, Ra: isa.RegZero, Imm: 5},
		{Op: isa.OpAddi, Rd: isa.RegT0, Ra: isa.RegT0, Imm: -1},
		{Op: isa.OpBne, Ra: isa.RegT0, Imm: 1},
		{Op: isa.OpSyscall, Imm: isa.SysExit},
	}
	for i, w := range want {
		if p.Code[i] != w {
			t.Errorf("inst %d = %+v, want %+v", i, p.Code[i], w)
		}
	}
	pr := p.ProcByName("main")
	if pr == nil || pr.Start != 0 || pr.End != 4 {
		t.Errorf("main proc = %+v, want [0,4)", pr)
	}
}

func TestForwardBranchAndCall(t *testing.T) {
	p := mustAssemble(t, `
        .proc main
main:   jsr f
        syscall exit
        .endproc
        .proc f
f:      ret
        .endproc
`)
	if p.Code[0].Op != isa.OpJsr || p.Code[0].Imm != 2 || p.Code[0].Rd != isa.RegRA {
		t.Errorf("jsr = %+v", p.Code[0])
	}
	if p.Code[2].Op != isa.OpRet || p.Code[2].Ra != isa.RegRA {
		t.Errorf("ret = %+v", p.Code[2])
	}
}

func TestDataDirectivesAndForwardLa(t *testing.T) {
	p := mustAssemble(t, `
        .text
main:   la   t0, tab
        ldq  t1, 8(t0)
        ldq  t2, tab+16
        li   t3, 0x10
        syscall exit
        .data
lead:   .byte 1, 2, 3
tab:    .word 10, 20, 30
msg:    .asciiz "ab\n"
buf:    .space 16
`)
	tabAddr := uint64(program.DataBase + 3)
	if got := p.DataSyms["tab"]; got != tabAddr {
		t.Fatalf("tab addr = %#x, want %#x", got, tabAddr)
	}
	if p.Code[0].Imm != int32(tabAddr) {
		t.Errorf("la imm = %d, want %d", p.Code[0].Imm, tabAddr)
	}
	if p.Code[2].Op != isa.OpLdq || p.Code[2].Ra != isa.RegZero || p.Code[2].Imm != int32(tabAddr+16) {
		t.Errorf("absolute load = %+v", p.Code[2])
	}
	if p.Code[3].Imm != 16 {
		t.Errorf("li hex imm = %d, want 16", p.Code[3].Imm)
	}
	// Data contents: 3 bytes, then 3 words, then "ab\n\0", then 16 zeros.
	if len(p.Data) != 3+24+4+16 {
		t.Fatalf("data length = %d", len(p.Data))
	}
	if p.Data[0] != 1 || p.Data[1] != 2 || p.Data[2] != 3 {
		t.Errorf("bytes = %v", p.Data[:3])
	}
	if p.Data[3] != 10 || p.Data[11] != 20 || p.Data[19] != 30 {
		t.Errorf("words wrong: %v", p.Data[3:27])
	}
	if string(p.Data[27:30]) != "ab\n" || p.Data[30] != 0 {
		t.Errorf("asciiz wrong: %q", p.Data[27:31])
	}
}

func TestWordSymbolReference(t *testing.T) {
	p := mustAssemble(t, `
        .data
ptr:    .word target
target: .word 99
        .text
main:   syscall exit
`)
	want := p.DataSyms["target"]
	got := uint64(0)
	for i := 0; i < 8; i++ {
		got |= uint64(p.Data[i]) << (8 * i)
	}
	if got != want {
		t.Errorf("ptr word = %#x, want %#x", got, want)
	}
}

func TestMemOperandForms(t *testing.T) {
	p := mustAssemble(t, `
main:   ldq t0, (sp)
        stq t0, -8(fp)
        syscall exit
`)
	if p.Code[0].Imm != 0 || p.Code[0].Ra != isa.RegSP {
		t.Errorf("(sp) = %+v", p.Code[0])
	}
	if p.Code[1].Imm != -8 || p.Code[1].Ra != isa.RegFP {
		t.Errorf("-8(fp) = %+v", p.Code[1])
	}
}

func TestCommentsAndBlankLines(t *testing.T) {
	p := mustAssemble(t, `
; leading comment
main:   nop        # trailing comment
        # whole-line comment
        syscall exit ; done
        .data
s:      .asciiz "semi;colon#hash"  ; comment after string
`)
	if len(p.Code) != 2 {
		t.Fatalf("got %d instructions, want 2", len(p.Code))
	}
	if !strings.Contains(string(p.Data), "semi;colon#hash") {
		t.Errorf("string literal mangled: %q", p.Data)
	}
}

func TestErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"unknown mnemonic", "main: frob t0, t1, t2", "unknown mnemonic"},
		{"unknown register", "main: add t0, t1, q9", "unknown register"},
		{"undefined label", "main: br nowhere", "undefined label"},
		{"duplicate label", "x: nop\nx: nop", "duplicate label"},
		{"unterminated proc", ".proc f\nf: nop", "no .endproc"},
		{"endproc without proc", ".endproc", ".endproc without .proc"},
		{"data op in text", "main: .word 1", ".word outside .data"},
		{"inst in data", ".data\nx: add t0, t0, t0", "outside .text"},
		{"bad operand count", "main: add t0, t1", "needs rd, ra, rb"},
		{"imm too big", "main: li t0, 99999999999", "does not fit"},
		{"unknown la sym", "main: la t0, nosuch", "unknown data symbol"},
		{"bad directive", ".frob 1", "unknown directive"},
		{"bad space", ".data\nx: .space lots", "literal non-negative size"},
		{"duplicate data sym", ".data\nd: .word 1\nd: .word 2", "duplicate data symbol"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Assemble(c.src)
			if err == nil {
				t.Fatalf("no error, want %q", c.want)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q does not contain %q", err, c.want)
			}
		})
	}
}

func TestErrorsCarryLineNumbers(t *testing.T) {
	_, err := Assemble("main: nop\n nop\n frob\n")
	aerr, ok := err.(*Error)
	if !ok {
		t.Fatalf("error type %T, want *Error", err)
	}
	if aerr.Line != 3 {
		t.Errorf("line = %d, want 3", aerr.Line)
	}
}

func TestOutOfRangeTargetRejected(t *testing.T) {
	cases := []struct {
		src  string
		line int
	}{
		// Numeric target beyond the last instruction.
		{"main: nop\n br 7\n syscall exit\n", 2},
		// Numeric jsr target out of range.
		{"main: jsr 99\n syscall exit\n", 1},
		// Label resolving to one past the end (nothing follows it).
		{"main: nop\n beq t0, done\n syscall exit\ndone:\n", 2},
	}
	for _, tc := range cases {
		_, err := Assemble(tc.src)
		if err == nil {
			t.Errorf("Assemble(%q) accepted an out-of-range target", tc.src)
			continue
		}
		aerr, ok := err.(*Error)
		if !ok {
			t.Errorf("Assemble(%q) error type %T, want *Error (%v)", tc.src, err, err)
			continue
		}
		if aerr.Line != tc.line {
			t.Errorf("Assemble(%q) error line = %d, want %d (%v)", tc.src, aerr.Line, tc.line, err)
		}
	}
}

func TestEntryDefaultsToMain(t *testing.T) {
	p := mustAssemble(t, "f: nop\nmain: syscall exit\n")
	if p.Entry != 1 {
		t.Errorf("entry = %d, want 1", p.Entry)
	}
	p2 := mustAssemble(t, "start: syscall exit\n")
	if p2.Entry != 0 {
		t.Errorf("entry without main = %d, want 0", p2.Entry)
	}
}

func TestDisassembleRoundTrip(t *testing.T) {
	// Every instruction's String() output must reassemble to itself
	// (for label-free forms).
	src := `
main:   add t0, t1, t2
        addi t0, t1, -5
        mul s0, s1, s2
        and a0, a1, a2
        slli t3, t4, 3
        cmplt t5, t6, t7
        ldq t8, 24(sp)
        stb t9, -1(fp)
        jmp t0
        ret ra
        syscall 1
        nop
        syscall exit
`
	p := mustAssemble(t, src)
	var lines []string
	for _, in := range p.Code {
		lines = append(lines, "x"+in.String()[0:0]+in.String()) // keep as-is
	}
	p2 := mustAssemble(t, "main: "+strings.Join(trimPrefixAll(lines, "x"), "\n "))
	if len(p2.Code) != len(p.Code) {
		t.Fatalf("round trip length %d != %d", len(p2.Code), len(p.Code))
	}
	for i := range p.Code {
		if p.Code[i] != p2.Code[i] {
			t.Errorf("inst %d: %+v != %+v", i, p.Code[i], p2.Code[i])
		}
	}
}

func trimPrefixAll(ss []string, pre string) []string {
	out := make([]string, len(ss))
	for i, s := range ss {
		out[i] = strings.TrimPrefix(s, pre)
	}
	return out
}
