package faultinject

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"valueprof/internal/atomicio"
	"valueprof/internal/core"
)

func TestFailingWriterBudget(t *testing.T) {
	var sink bytes.Buffer
	fw := NewFailingWriter(&sink, 10)
	if n, err := fw.Write([]byte("12345")); n != 5 || err != nil {
		t.Fatalf("first write: %d %v", n, err)
	}
	// Crosses the budget: 5 more bytes land, then the error surfaces.
	n, err := fw.Write([]byte("6789abcdef"))
	if n != 5 || !errors.Is(err, ErrInjectedWrite) {
		t.Fatalf("crossing write: %d %v", n, err)
	}
	if sink.String() != "123456789a" {
		t.Errorf("sink %q", sink.String())
	}
	if n, err := fw.Write([]byte("x")); n != 0 || !errors.Is(err, ErrInjectedWrite) {
		t.Errorf("post-budget write: %d %v", n, err)
	}
}

func TestShortWriter(t *testing.T) {
	var sink bytes.Buffer
	sw := &ShortWriter{W: &sink, Budget: 4}
	n, err := sw.Write([]byte("123456"))
	if n != 4 || !errors.Is(err, io.ErrShortWrite) {
		t.Fatalf("short write: %d %v", n, err)
	}
}

func TestTruncReader(t *testing.T) {
	tr := &TruncReader{R: strings.NewReader("full content here"), Budget: 4}
	got, err := io.ReadAll(tr)
	if err != nil || string(got) != "full" {
		t.Fatalf("read %q %v", got, err)
	}
}

// TestSerializerSurvivesInjectedIOFaults drives profile serialization
// through failing and short writers: every failure must surface as an
// error (never a silent truncation), and a truncated read through the
// repair loader must salvage cleanly.
func TestSerializerSurvivesInjectedIOFaults(t *testing.T) {
	rec := &core.ProfileRecord{Program: "p", Input: "i", K: 10}
	for pc := 0; pc < 40; pc++ {
		rec.Sites = append(rec.Sites, core.SiteRecord{
			PC: pc, Name: "s", Exec: 100,
			Top: []core.TNVEntry{{Value: int64(pc), Count: 60}, {Value: 1, Count: 40}},
		})
	}
	var full bytes.Buffer
	if err := rec.WriteJSON(&full); err != nil {
		t.Fatal(err)
	}
	size := int64(full.Len())

	for _, budget := range []int64{0, 1, size / 4, size / 2, size - 2} {
		var sink bytes.Buffer
		if err := rec.WriteJSON(NewFailingWriter(&sink, budget)); err == nil {
			t.Errorf("budget %d: write error swallowed", budget)
		}
		sink.Reset()
		if err := rec.WriteJSON(&ShortWriter{W: &sink, Budget: budget}); err == nil {
			t.Errorf("budget %d: short write swallowed", budget)
		}

		// The bytes that did land are a truncated profile; the strict
		// loader must reject and the repair loader must salvage a
		// valid prefix without panicking.
		data := full.Bytes()[:budget]
		if _, err := core.ReadProfileRecord(bytes.NewReader(data)); err == nil {
			t.Errorf("budget %d: strict loader accepted truncated profile", budget)
		}
		rec2, rep, err := core.ReadProfileRecordPolicy(&TruncReader{R: bytes.NewReader(full.Bytes()), Budget: budget}, core.RepairDrop)
		if err == nil {
			if !rep.Truncated {
				t.Errorf("budget %d: truncation not reported", budget)
			}
			for _, s := range rec2.Sites {
				if s.InvTop(1) > 1 {
					t.Errorf("budget %d: salvaged site %d invalid", budget, s.PC)
				}
			}
		}
	}
}

// TestAtomicWriteUnderInjectedFaults proves the atomic-write discipline
// holds under injected I/O failure: the destination never changes.
func TestAtomicWriteUnderInjectedFaults(t *testing.T) {
	path := filepath.Join(t.TempDir(), "profile.json")
	if err := atomicio.WriteFileBytes(path, []byte("good old profile")); err != nil {
		t.Fatal(err)
	}
	err := atomicio.WriteFile(path, func(w io.Writer) error {
		fw := NewFailingWriter(w, 5)
		_, err := fw.Write([]byte("partial new profile that will die"))
		return err
	})
	if !errors.Is(err, ErrInjectedWrite) {
		t.Fatalf("err = %v", err)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "good old profile" {
		t.Errorf("destination damaged: %q %v", got, err)
	}
}
