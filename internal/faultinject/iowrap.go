package faultinject

import (
	"errors"
	"io"
)

// ErrInjectedWrite is the default error surfaced by FailingWriter,
// standing in for a full disk or revoked file handle.
var ErrInjectedWrite = errors.New("faultinject: injected write error")

// FailingWriter passes writes through to W until Budget bytes have
// been written, then fails every subsequent write with Err (default
// ErrInjectedWrite). The write that crosses the budget is truncated to
// the remaining budget before failing, modelling a disk that fills
// mid-buffer.
type FailingWriter struct {
	W      io.Writer
	Budget int64
	Err    error

	written int64
}

// NewFailingWriter wraps w to fail after budget bytes.
func NewFailingWriter(w io.Writer, budget int64) *FailingWriter {
	return &FailingWriter{W: w, Budget: budget}
}

// Written returns how many bytes reached the underlying writer.
func (f *FailingWriter) Written() int64 { return f.written }

func (f *FailingWriter) Write(p []byte) (int, error) {
	errOut := f.Err
	if errOut == nil {
		errOut = ErrInjectedWrite
	}
	remaining := f.Budget - f.written
	if remaining <= 0 {
		return 0, errOut
	}
	if int64(len(p)) <= remaining {
		n, err := f.W.Write(p)
		f.written += int64(n)
		return n, err
	}
	n, err := f.W.Write(p[:remaining])
	f.written += int64(n)
	if err != nil {
		return n, err
	}
	return n, errOut
}

// ShortWriter accepts at most Budget bytes, then reports
// io.ErrShortWrite — the "write returned fewer bytes than requested"
// contract violation a wrapper must surface rather than swallow.
type ShortWriter struct {
	W      io.Writer
	Budget int64

	written int64
}

func (s *ShortWriter) Write(p []byte) (int, error) {
	remaining := s.Budget - s.written
	if remaining <= 0 {
		return 0, io.ErrShortWrite
	}
	if int64(len(p)) <= remaining {
		n, err := s.W.Write(p)
		s.written += int64(n)
		return n, err
	}
	n, err := s.W.Write(p[:remaining])
	s.written += int64(n)
	if err != nil {
		return n, err
	}
	return n, io.ErrShortWrite
}

// TruncReader yields only the first Budget bytes of R, then reports a
// clean EOF — a file whose tail was lost to a crash before it was
// flushed.
type TruncReader struct {
	R      io.Reader
	Budget int64

	read int64
}

func (t *TruncReader) Read(p []byte) (int, error) {
	remaining := t.Budget - t.read
	if remaining <= 0 {
		return 0, io.EOF
	}
	if int64(len(p)) > remaining {
		p = p[:remaining]
	}
	n, err := t.R.Read(p)
	t.read += int64(n)
	return n, err
}
