// Package faultinject is a deterministic fault-injection harness for
// the profiling runtime. It kills instrumented runs at exact,
// reproducible instruction counts — with a guest fault, a context
// cancellation, a deadline expiry, or a step-limit hit — and wraps
// writers with injected I/O failures, so tests can prove that every
// profiler degrades gracefully and every on-disk artifact survives a
// crash at any point.
//
// The injector is an atom.Tool: attach it to a run alongside the
// profilers under test. Injection is driven by the VM's instruction
// counter, not wall-clock time, so a seed fully determines where a run
// dies.
package faultinject

import (
	"context"
	"fmt"

	"valueprof/internal/atom"
	"valueprof/internal/vm"
)

// Kind selects which termination mechanism an injection triggers. Each
// kind surfaces through the run loop exactly like the organic event it
// imitates, so the salvage paths under test cannot tell the difference.
type Kind int

const (
	// KindFault injects a guest fault (vm.Fault), as if the program
	// dereferenced a bad pointer.
	KindFault Kind = iota
	// KindCancel injects a context cancellation, as if the operator
	// hit Ctrl-C.
	KindCancel
	// KindDeadline injects a deadline expiry.
	KindDeadline
	// KindLimit injects step-limit exhaustion.
	KindLimit
	numKinds = iota
)

func (k Kind) String() string {
	switch k {
	case KindFault:
		return "fault"
	case KindCancel:
		return "cancel"
	case KindDeadline:
		return "deadline"
	case KindLimit:
		return "limit"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Outcome returns the vm.RunOutcome this kind of injection produces.
func (k Kind) Outcome() vm.RunOutcome {
	switch k {
	case KindFault:
		return vm.OutcomeFaulted
	case KindCancel:
		return vm.OutcomeCancelled
	case KindDeadline:
		return vm.OutcomeDeadline
	case KindLimit:
		return vm.OutcomeLimit
	}
	return vm.OutcomeFaulted
}

// Injection schedules one kill: the run dies with Kind once the VM's
// instruction count reaches At.
type Injection struct {
	At   uint64
	Kind Kind
}

// Injector is an atom.Tool that fires scheduled injections. It keeps a
// record of what fired for assertions.
type Injector struct {
	plan   []Injection
	cancel context.CancelFunc
	fired  []Injection
}

// New creates an injector firing the given injections. Injections at
// the same instruction count fire in argument order (the first one
// kills the run).
func New(injs ...Injection) *Injector {
	return &Injector{plan: append([]Injection(nil), injs...)}
}

// NewSeeded derives a single pseudo-random injection from seed: a kill
// at an instruction count in [1, maxAt] with one of the given kinds
// (all kinds when none are listed). The same seed always produces the
// same plan, so a failing fuzz-style test reproduces exactly.
func NewSeeded(seed, maxAt uint64, kinds ...Kind) *Injector {
	if maxAt == 0 {
		maxAt = 1
	}
	if len(kinds) == 0 {
		kinds = []Kind{KindFault, KindCancel, KindDeadline, KindLimit}
	}
	r1 := splitmix64(&seed)
	r2 := splitmix64(&seed)
	return New(Injection{
		At:   1 + r1%maxAt,
		Kind: kinds[r2%uint64(len(kinds))],
	})
}

// splitmix64 is the standard 64-bit mix, good enough for spreading
// injection points.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d649bb133111eb
	return z ^ (z >> 31)
}

// Bind attaches a cancel function invoked when a KindCancel injection
// fires, mirroring how a real SIGINT handler cancels the run context.
// Optional: the injection kills the run either way.
func (inj *Injector) Bind(cancel context.CancelFunc) { inj.cancel = cancel }

// Fired returns the injections that have fired.
func (inj *Injector) Fired() []Injection { return inj.fired }

// Instrument implements atom.Tool.
func (inj *Injector) Instrument(ix *atom.Instrumenter) {
	ix.AddStep(func(v *vm.VM) error {
		for len(inj.plan) > 0 && v.InstCount >= inj.plan[0].At {
			next := inj.plan[0]
			inj.plan = inj.plan[1:]
			inj.fired = append(inj.fired, next)
			switch next.Kind {
			case KindFault:
				return &vm.Fault{PC: v.PC, Msg: fmt.Sprintf("injected fault at inst %d", next.At)}
			case KindCancel:
				if inj.cancel != nil {
					inj.cancel()
				}
				return context.Canceled
			case KindDeadline:
				return context.DeadlineExceeded
			case KindLimit:
				return &vm.LimitError{Limit: next.At, PC: v.PC}
			}
		}
		return nil
	})
}
