package faultinject

import (
	"sync"
	"time"

	"valueprof/internal/atom"
	"valueprof/internal/vm"
)

// This file extends fault injection from single runs to the supervised
// pool: Staller imitates a hung analysis routine, and PoolChaos drives
// seeded faults, stalls, and checkpoint corruption across the
// concurrent jobs of a supervised batch (it implements the
// supervise.Chaos interface structurally, so this package needs no
// dependency on the supervisor).

// Staller is an atom.Tool that sleeps once the VM's instruction count
// reaches At — the shape of a wedged analysis routine or a scheduling
// stall. Runs under a wall-clock deadline die at the next quantum
// check after the sleep; pair it with a small RunOptions.Quantum so
// short programs reach that check.
type Staller struct {
	At    uint64
	Sleep time.Duration
	fired bool
}

// Instrument implements atom.Tool.
func (s *Staller) Instrument(ix *atom.Instrumenter) {
	ix.AddStep(func(v *vm.VM) error {
		if !s.fired && v.InstCount >= s.At {
			s.fired = true
			time.Sleep(s.Sleep)
		}
		return nil
	})
}

// Fired reports whether the stall happened.
func (s *Staller) Fired() bool { return s.fired }

// PoolChaos is a seeded chaos source for a supervised job pool. For
// every (job, attempt) pair it deterministically decides — purely from
// Seed — whether the attempt runs clean, dies from an injected
// fault/cancel/deadline/limit, stalls mid-run, or has its carried
// checkpoint corrupted before the next attempt reads it.
//
// Attempts numbered above CleanAfter are always left untouched, so
// every job is guaranteed a fault-free attempt within its retry
// budget; the pool-level chaos sweep relies on this to assert that
// retried jobs eventually complete byte-identically.
type PoolChaos struct {
	Seed uint64
	// MaxAt bounds injection instruction counts (as in NewSeeded).
	MaxAt uint64
	// CleanAfter is the last attempt number that may be disturbed;
	// 0 selects 3.
	CleanAfter int
	// Stall, when non-zero, makes roughly one in four disturbed
	// attempts sleep Stall at the injection point instead of (or in
	// addition to) dying.
	Stall time.Duration
	// CorruptEvery corrupts roughly one in N carried checkpoints
	// (0 = never).
	CorruptEvery int

	mu        sync.Mutex
	injected  int
	stalled   int
	corrupted int
}

func (c *PoolChaos) cleanAfter() int {
	if c.CleanAfter <= 0 {
		return 3
	}
	return c.CleanAfter
}

// state derives the deterministic random stream for one (job, attempt).
func (c *PoolChaos) state(job, attempt int) uint64 {
	s := c.Seed
	s ^= splitmix64(&s) + uint64(job)*0x9e3779b97f4a7c15
	s ^= splitmix64(&s) + uint64(attempt)*0xbf58476d1ce4e5b9
	return s
}

// AttemptTool returns the disturbance for one job attempt, or nil for
// a clean run.
func (c *PoolChaos) AttemptTool(job, attempt int) atom.Tool {
	if attempt > c.cleanAfter() {
		return nil
	}
	s := c.state(job, attempt)
	roll := splitmix64(&s)
	if roll%4 == 0 {
		return nil // every job sees some clean first attempts too
	}
	maxAt := c.MaxAt
	if maxAt == 0 {
		maxAt = 1
	}
	at := 1 + splitmix64(&s)%maxAt
	if c.Stall > 0 && roll%4 == 1 {
		c.count(&c.stalled)
		return &Staller{At: at, Sleep: c.Stall}
	}
	kinds := []Kind{KindFault, KindCancel, KindDeadline, KindLimit}
	kind := kinds[splitmix64(&s)%uint64(len(kinds))]
	c.count(&c.injected)
	return New(Injection{At: at, Kind: kind})
}

// MangleCheckpoint corrupts roughly one in CorruptEvery carried
// checkpoints, rotating among a truncation, a payload bit flip, and a
// full replacement with garbage.
func (c *PoolChaos) MangleCheckpoint(job, attempt int, data []byte) []byte {
	if c.CorruptEvery <= 0 || len(data) == 0 {
		return data
	}
	s := c.state(job, attempt) ^ 0xc0ffee
	if splitmix64(&s)%uint64(c.CorruptEvery) != 0 {
		return data
	}
	c.count(&c.corrupted)
	out := append([]byte(nil), data...)
	switch splitmix64(&s) % 3 {
	case 0: // torn write
		return out[:int(splitmix64(&s)%uint64(len(out)))]
	case 1: // bit rot in the middle of the payload
		out[len(out)/2] ^= 1 << (splitmix64(&s) % 8)
		return out
	default: // overwritten by a foreign file
		return []byte("not a checkpoint")
	}
}

func (c *PoolChaos) count(field *int) {
	c.mu.Lock()
	*field++
	c.mu.Unlock()
}

// Stats reports how much chaos actually happened: injected kills,
// stalls, and corrupted checkpoints.
func (c *PoolChaos) Stats() (injected, stalled, corrupted int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.injected, c.stalled, c.corrupted
}
