package faultinject

import (
	"bytes"
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"valueprof/internal/atom"
	"valueprof/internal/core"
	"valueprof/internal/depprof"
	"valueprof/internal/memprof"
	"valueprof/internal/paramprof"
	"valueprof/internal/procprof"
	"valueprof/internal/program"
	"valueprof/internal/regprof"
	"valueprof/internal/trivprof"
	"valueprof/internal/vm"
	"valueprof/internal/workloads"
)

// loadWorkload compiles the compress benchmark — a realistic workload
// with procedures, loads, stores, and arithmetic, so every profiler
// mode has something to observe.
func loadWorkload(t *testing.T) (*program.Program, []int64, uint64) {
	t.Helper()
	w, err := workloads.ByName("compress")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := w.Compile()
	if err != nil {
		t.Fatal(err)
	}
	res, err := vm.Execute(prog, w.Test.Args)
	if err != nil {
		t.Fatal(err)
	}
	return prog, w.Test.Args, res.InstCount
}

func TestInjectionKindsProduceMatchingOutcomes(t *testing.T) {
	prog, input, total := loadWorkload(t)
	killAt := total / 2
	for _, kind := range []Kind{KindFault, KindCancel, KindDeadline, KindLimit} {
		inj := New(Injection{At: killAt, Kind: kind})
		res, outcome, err := atom.RunControlled(context.Background(), prog,
			atom.RunOptions{Input: input}, inj)
		if outcome != kind.Outcome() {
			t.Errorf("%v: outcome %v, want %v", kind, outcome, kind.Outcome())
		}
		if err == nil {
			t.Errorf("%v: nil error on killed run", kind)
		}
		if res == nil || res.InstCount != killAt {
			t.Errorf("%v: partial result %+v, want InstCount %d", kind, res, killAt)
		}
		if !res.Outcome.Partial() {
			t.Errorf("%v: result not marked partial", kind)
		}
		if len(inj.Fired()) != 1 {
			t.Errorf("%v: fired %v", kind, inj.Fired())
		}
	}
}

func TestSeededInjectionIsDeterministic(t *testing.T) {
	prog, input, total := loadWorkload(t)
	for seed := uint64(1); seed <= 5; seed++ {
		a := NewSeeded(seed, total-1)
		b := NewSeeded(seed, total-1)
		resA, outA, _ := atom.RunControlled(context.Background(), prog, atom.RunOptions{Input: input}, a)
		resB, outB, _ := atom.RunControlled(context.Background(), prog, atom.RunOptions{Input: input}, b)
		if resA.InstCount != resB.InstCount || outA != outB {
			t.Errorf("seed %d: runs diverge: %d/%v vs %d/%v",
				seed, resA.InstCount, outA, resB.InstCount, outB)
		}
	}
}

func inUnit(x float64) bool { return !math.IsNaN(x) && x >= 0 && x <= 1 }

// TestEveryProfilerModeDegradesGracefully kills an instrumented run at
// several points — including instruction 1 and points chosen by seed —
// and asserts each profiler mode still yields an internally consistent
// report from the executed prefix.
func TestEveryProfilerModeDegradesGracefully(t *testing.T) {
	prog, input, total := loadWorkload(t)

	modes := []struct {
		name string
		make func() (atom.Tool, func(t *testing.T, res *vm.Result))
	}{
		{"inst", func() (atom.Tool, func(*testing.T, *vm.Result)) {
			vp, err := core.NewValueProfiler(core.Options{TNV: core.DefaultTNVConfig()})
			if err != nil {
				t.Fatal(err)
			}
			return vp, func(t *testing.T, res *vm.Result) {
				pr := vp.Profile()
				m := pr.Aggregate()
				if !inUnit(m.LVP) || !inUnit(m.InvTop1) || !inUnit(m.PctZero) {
					t.Errorf("metrics out of range: %+v", m)
				}
				if pr.Profiled() > res.InstCount {
					t.Errorf("profiled %d > executed %d", pr.Profiled(), res.InstCount)
				}
			}
		}},
		{"loads-convergent", func() (atom.Tool, func(*testing.T, *vm.Result)) {
			cfg := core.DefaultConvergentConfig()
			vp, err := core.NewValueProfiler(core.Options{
				TNV: core.DefaultTNVConfig(), Filter: core.LoadsOnly, Convergent: &cfg})
			if err != nil {
				t.Fatal(err)
			}
			return vp, func(t *testing.T, res *vm.Result) {
				pr := vp.Profile()
				if d := pr.DutyCycle(); !inUnit(d) {
					t.Errorf("duty cycle %v", d)
				}
				for _, s := range pr.Sites {
					if s.InvTop(1) > 1 {
						t.Errorf("site %d InvTop %v > 1", s.PC, s.InvTop(1))
					}
				}
			}
		}},
		{"mem", func() (atom.Tool, func(*testing.T, *vm.Result)) {
			mp := memprof.New(memprof.Options{TNV: core.DefaultTNVConfig()})
			return mp, func(t *testing.T, res *vm.Result) {
				rep := mp.Report()
				byLoc, byAccess := rep.InvariantFraction(0.9)
				if len(rep.Locations) > 0 && (!inUnit(byLoc) || !inUnit(byAccess)) {
					t.Errorf("invariant fractions %v %v", byLoc, byAccess)
				}
			}
		}},
		{"param", func() (atom.Tool, func(*testing.T, *vm.Result)) {
			pp := paramprof.New(paramprof.Options{TNV: core.DefaultTNVConfig()})
			return pp, func(t *testing.T, res *vm.Result) {
				for _, p := range pp.Report().Procs {
					if !inUnit(p.AllArgsInvariance()) {
						t.Errorf("proc %s tuple invariance %v", p.Name, p.AllArgsInvariance())
					}
				}
			}
		}},
		{"reg", func() (atom.Tool, func(*testing.T, *vm.Result)) {
			rp := regprof.New(core.DefaultTNVConfig(), false)
			return rp, func(t *testing.T, res *vm.Result) {
				for _, s := range rp.Written() {
					if !inUnit(s.LVP()) || s.InvTop(1) > 1 {
						t.Errorf("reg %s out of range", s.Name)
					}
				}
			}
		}},
		{"dep", func() (atom.Tool, func(*testing.T, *vm.Result)) {
			dp := depprof.New(depprof.DefaultOptions())
			return dp, func(t *testing.T, res *vm.Result) {
				fromStore, forwardable, dom := dp.Report().Totals()
				if !inUnit(fromStore) || !inUnit(forwardable) || !inUnit(dom) {
					t.Errorf("totals %v %v %v", fromStore, forwardable, dom)
				}
			}
		}},
		{"triv", func() (atom.Tool, func(*testing.T, *vm.Result)) {
			tp := trivprof.New()
			return tp, func(t *testing.T, res *vm.Result) {
				frac, _, _ := tp.Report().Totals()
				if !inUnit(frac) {
					t.Errorf("trivial fraction %v", frac)
				}
			}
		}},
		{"proc", func() (atom.Tool, func(*testing.T, *vm.Result)) {
			pp := procprof.New()
			return pp, func(t *testing.T, res *vm.Result) {
				// Sorted must not panic on a half-unwound call stack,
				// and attributed cycles cannot exceed executed cycles.
				pp.Sorted()
				if pp.TotalCycles() > res.Cycles {
					t.Errorf("attributed %d > executed %d cycles", pp.TotalCycles(), res.Cycles)
				}
			}
		}},
	}

	killPoints := []uint64{1, 97, total / 3, total - 1}
	for seed := uint64(100); seed < 103; seed++ {
		killPoints = append(killPoints, 1+splitmix64(&seed)%total)
	}

	for _, m := range modes {
		t.Run(m.name, func(t *testing.T) {
			for _, killAt := range killPoints {
				for _, kind := range []Kind{KindFault, KindCancel} {
					tool, check := m.make()
					inj := New(Injection{At: killAt, Kind: kind})
					res, outcome, _ := atom.RunControlled(context.Background(), prog,
						atom.RunOptions{Input: input}, tool, inj)
					if outcome != kind.Outcome() {
						t.Fatalf("killAt %d kind %v: outcome %v", killAt, kind, outcome)
					}
					check(t, res)
				}
			}
		})
	}
}

// TestPartialProfileRoundTripsStrictLoader proves a killed run's
// salvaged profile is a *valid* profile: it serializes and reloads
// through the strict validating loader with all invariants intact.
func TestPartialProfileRoundTripsStrictLoader(t *testing.T) {
	prog, input, total := loadWorkload(t)
	for seed := uint64(0); seed < 8; seed++ {
		inj := NewSeeded(seed, total-1)
		vp, err := core.NewValueProfiler(core.Options{TNV: core.DefaultTNVConfig()})
		if err != nil {
			t.Fatal(err)
		}
		res, outcome, _ := atom.RunControlled(context.Background(), prog,
			atom.RunOptions{Input: input}, vp, inj)
		if !outcome.Partial() {
			t.Fatalf("seed %d: injection did not fire (total %d)", seed, total)
		}
		rec := vp.Profile().Record("compress", "test")
		rec.Outcome = outcome.String()

		var buf bytes.Buffer
		if err := rec.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		back, err := core.ReadProfileRecord(&buf)
		if err != nil {
			t.Fatalf("seed %d (killed at %d, %v): partial profile invalid: %v",
				seed, res.InstCount, outcome, err)
		}
		for _, s := range back.Sites {
			for k := 1; k <= back.K; k++ {
				if s.InvTop(k) > 1.0 {
					t.Fatalf("seed %d: site %d InvTop(%d) = %v > 1", seed, s.PC, k, s.InvTop(k))
				}
			}
		}
	}
}

// TestRealCancellationMechanisms exercises the organic (non-injected)
// stop paths: a pre-cancelled context, an expired deadline, and step
// limit exhaustion.
func TestRealCancellationMechanisms(t *testing.T) {
	prog, input, total := loadWorkload(t)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, outcome, err := atom.RunControlled(ctx, prog, atom.RunOptions{Input: input})
	if outcome != vm.OutcomeCancelled || err == nil {
		t.Errorf("cancelled ctx: outcome %v err %v", outcome, err)
	}

	res, outcome, err = atom.RunControlled(context.Background(), prog,
		atom.RunOptions{Input: input, Deadline: time.Now().Add(-time.Second), Quantum: 64})
	if outcome != vm.OutcomeDeadline || !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("past deadline: outcome %v err %v", outcome, err)
	}

	limit := total / 4
	res, outcome, err = atom.RunControlled(context.Background(), prog,
		atom.RunOptions{Input: input, StepLimit: limit})
	if outcome != vm.OutcomeLimit {
		t.Errorf("step limit: outcome %v err %v", outcome, err)
	}
	var le *vm.LimitError
	if !errors.As(err, &le) || le.Limit != limit {
		t.Errorf("limit error: %v", err)
	}
	if res.InstCount != limit {
		t.Errorf("executed %d, limit %d", res.InstCount, limit)
	}

	// A cancel arriving mid-run through the injector's Bind mirrors a
	// SIGINT handler cancelling the shared context.
	ctx, cancel = context.WithCancel(context.Background())
	defer cancel()
	inj := New(Injection{At: total / 2, Kind: KindCancel})
	inj.Bind(cancel)
	_, outcome, _ = atom.RunControlled(ctx, prog, atom.RunOptions{Input: input}, inj)
	if outcome != vm.OutcomeCancelled {
		t.Errorf("mid-run cancel: outcome %v", outcome)
	}
	if ctx.Err() == nil {
		t.Error("bound context not cancelled")
	}
}

// TestCheckpointSurvivesKillAnywhere runs with checkpointing enabled
// and kills at seeded points; whenever at least one snapshot was
// written, the sidecar file must load and validate.
func TestCheckpointSurvivesKillAnywhere(t *testing.T) {
	prog, input, total := loadWorkload(t)
	every := total / 20
	if every == 0 {
		every = 1
	}
	for seed := uint64(0); seed < 6; seed++ {
		path := t.TempDir() + "/run.ckpt"
		vp, err := core.NewValueProfiler(core.Options{TNV: core.DefaultTNVConfig()})
		if err != nil {
			t.Fatal(err)
		}
		ckpt := core.NewCheckpointer(vp, path, every, "compress", "test")
		inj := NewSeeded(seed, total-1)
		res, outcome, _ := atom.RunControlled(context.Background(), prog,
			atom.RunOptions{Input: input}, vp, ckpt, inj)
		if !outcome.Partial() {
			t.Fatalf("seed %d: injection did not fire", seed)
		}
		if ckpt.Written() == 0 {
			if res.InstCount > every+1 {
				t.Errorf("seed %d: ran %d insts past interval %d with no checkpoint", seed, res.InstCount, every)
			}
			continue
		}
		ck, err := core.LoadCheckpoint(path)
		if err != nil {
			t.Fatalf("seed %d: checkpoint unreadable after kill at %d: %v", seed, res.InstCount, err)
		}
		if ck.InstCount() == 0 || ck.InstCount() > res.InstCount {
			t.Errorf("seed %d: checkpoint instcount %d, run died at %d", seed, ck.InstCount(), res.InstCount)
		}
		if len(ck.Sites) == 0 {
			t.Errorf("seed %d: checkpoint has no sites", seed)
		}
	}
}
