package faultinject

import (
	"bytes"
	"context"
	"testing"
	"time"

	"valueprof/internal/atom"
	"valueprof/internal/vm"
)

func TestStallerFiresOnceAndRunCompletes(t *testing.T) {
	prog, input, total := loadWorkload(t)
	s := &Staller{At: total / 2, Sleep: time.Millisecond}
	began := time.Now()
	_, outcome, err := atom.RunControlled(context.Background(), prog,
		atom.RunOptions{Input: input}, s)
	if err != nil || outcome != vm.OutcomeCompleted {
		t.Fatalf("outcome %v err %v", outcome, err)
	}
	if !s.Fired() {
		t.Error("staller never fired")
	}
	if time.Since(began) < time.Millisecond {
		t.Error("run finished faster than the injected stall")
	}
}

func TestStallerTriggersDeadlineAtNextQuantum(t *testing.T) {
	prog, input, total := loadWorkload(t)
	s := &Staller{At: total / 2, Sleep: 20 * time.Millisecond}
	_, outcome, _ := atom.RunControlled(context.Background(), prog,
		atom.RunOptions{Input: input, Quantum: 64, Deadline: time.Now().Add(5 * time.Millisecond)}, s)
	if outcome != vm.OutcomeDeadline {
		t.Fatalf("outcome %v, want deadline after a stall past it", outcome)
	}
}

func TestPoolChaosDeterministicPlans(t *testing.T) {
	a := &PoolChaos{Seed: 7, MaxAt: 1000, Stall: time.Millisecond, CorruptEvery: 2}
	b := &PoolChaos{Seed: 7, MaxAt: 1000, Stall: time.Millisecond, CorruptEvery: 2}
	data := bytes.Repeat([]byte("checkpoint"), 20)
	for job := 0; job < 8; job++ {
		for attempt := 1; attempt <= 5; attempt++ {
			ta, tb := a.AttemptTool(job, attempt), b.AttemptTool(job, attempt)
			if (ta == nil) != (tb == nil) {
				t.Fatalf("job %d attempt %d: plans diverge", job, attempt)
			}
			ma := a.MangleCheckpoint(job, attempt, append([]byte(nil), data...))
			mb := b.MangleCheckpoint(job, attempt, append([]byte(nil), data...))
			if !bytes.Equal(ma, mb) {
				t.Fatalf("job %d attempt %d: corruption diverges", job, attempt)
			}
		}
	}
	ia, sa, ca := a.Stats()
	ib, sb, cb := b.Stats()
	if ia != ib || sa != sb || ca != cb {
		t.Fatalf("stats diverge: %d/%d/%d vs %d/%d/%d", ia, sa, ca, ib, sb, cb)
	}
	if ia == 0 || ca == 0 {
		t.Errorf("chaos too quiet over 40 attempts: injected %d, corrupted %d", ia, ca)
	}
}

func TestPoolChaosLeavesLateAttemptsClean(t *testing.T) {
	c := &PoolChaos{Seed: 3, MaxAt: 1000, CleanAfter: 3}
	for job := 0; job < 20; job++ {
		for attempt := 4; attempt <= 8; attempt++ {
			if c.AttemptTool(job, attempt) != nil {
				t.Fatalf("job %d attempt %d disturbed past CleanAfter", job, attempt)
			}
		}
	}
}

func TestPoolChaosSeedsProduceDifferentPlans(t *testing.T) {
	countKills := func(seed uint64) int {
		c := &PoolChaos{Seed: seed, MaxAt: 1000}
		for job := 0; job < 16; job++ {
			for attempt := 1; attempt <= 3; attempt++ {
				c.AttemptTool(job, attempt)
			}
		}
		n, _, _ := c.Stats()
		return n
	}
	same := 0
	for seed := uint64(1); seed <= 6; seed++ {
		if countKills(seed) == countKills(seed+100) {
			same++
		}
	}
	if same == 6 {
		t.Error("every seed pair produced identical kill counts; seeding looks inert")
	}
}
