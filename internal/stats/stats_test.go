package stats

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("empty mean")
	}
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Error("mean wrong")
	}
}

func TestWeightedMean(t *testing.T) {
	got := WeightedMean([]float64{1, 0}, []float64{3, 1})
	if got != 0.75 {
		t.Errorf("weighted mean = %v", got)
	}
	if WeightedMean(nil, nil) != 0 {
		t.Error("empty weighted mean")
	}
	defer func() {
		if recover() == nil {
			t.Error("length mismatch not caught")
		}
	}()
	WeightedMean([]float64{1}, []float64{1, 2})
}

func TestCorrelation(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	if got := Correlation(x, x); math.Abs(got-1) > 1e-12 {
		t.Errorf("self correlation = %v", got)
	}
	y := []float64{4, 3, 2, 1}
	if got := Correlation(x, y); math.Abs(got+1) > 1e-12 {
		t.Errorf("anti correlation = %v", got)
	}
	if Correlation(x, []float64{5, 5, 5, 5}) != 0 {
		t.Error("constant series should give 0")
	}
	if Correlation(nil, nil) != 0 {
		t.Error("empty correlation")
	}
}

func TestCorrelationBounds(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(50)
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = r.Float64()
			y[i] = r.Float64()
		}
		c := Correlation(x, y)
		return c >= -1-1e-9 && c <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMeanAbsError(t *testing.T) {
	if got := MeanAbsError([]float64{1, 2}, []float64{2, 4}); got != 1.5 {
		t.Errorf("MAE = %v", got)
	}
	if MeanAbsError(nil, nil) != 0 {
		t.Error("empty MAE")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(4)
	h.Add(0.1, 1)  // bucket 0
	h.Add(0.30, 1) // bucket 1
	h.Add(0.9, 1)  // bucket 3
	h.Add(1.0, 1)  // clamps into bucket 3
	h.Add(-5, 1)   // clamps into bucket 0
	h.Add(7, 1)    // clamps into bucket 3
	fr := h.Fractions()
	want := []float64{2.0 / 6, 1.0 / 6, 0, 3.0 / 6}
	for i := range want {
		if math.Abs(fr[i]-want[i]) > 1e-12 {
			t.Errorf("bucket %d = %v, want %v", i, fr[i], want[i])
		}
	}
	if h.Total() != 6 {
		t.Errorf("total = %v", h.Total())
	}
	var sum float64
	for _, f := range fr {
		sum += f
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("fractions sum to %v (non-accumulative axis must total 1)", sum)
	}
}

func TestHistogramString(t *testing.T) {
	h := NewHistogram(2)
	h.Add(0.9, 10)
	s := h.String()
	if !strings.Contains(s, "[0.50,1.00)") || !strings.Contains(s, "#") {
		t.Errorf("rendering:\n%s", s)
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram(3)
	for _, f := range h.Fractions() {
		if f != 0 {
			t.Error("empty histogram nonzero")
		}
	}
}

func TestHistogramPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero buckets accepted")
		}
	}()
	NewHistogram(0)
}
