// Package stats provides the small statistical helpers the experiments
// use: weighted means, Pearson correlation (for the cross-input
// stability result of Chapter V / Wall [38]), mean absolute error, and
// the weighted invariance histogram of the thesis's distribution
// figures ("the average result, weighted by execution frequency, of
// each bucket is graphed; the y-axis entry is non-accumulative").
package stats

import (
	"fmt"
	"math"
	"strings"
)

// Mean returns the arithmetic mean (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// WeightedMean returns sum(w·x)/sum(w); 0 when weights sum to 0.
func WeightedMean(xs, ws []float64) float64 {
	if len(xs) != len(ws) {
		panic("stats: WeightedMean length mismatch")
	}
	var sx, sw float64
	for i := range xs {
		sx += xs[i] * ws[i]
		sw += ws[i]
	}
	if sw == 0 {
		return 0
	}
	return sx / sw
}

// Correlation returns the Pearson correlation coefficient of x and y,
// or 0 when either series is constant or empty.
func Correlation(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("stats: Correlation length mismatch")
	}
	n := float64(len(x))
	if n == 0 {
		return 0
	}
	mx, my := Mean(x), Mean(y)
	var sxy, sxx, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// MeanAbsError returns mean |x−y|.
func MeanAbsError(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("stats: MeanAbsError length mismatch")
	}
	if len(x) == 0 {
		return 0
	}
	var s float64
	for i := range x {
		s += math.Abs(x[i] - y[i])
	}
	return s / float64(len(x))
}

// Histogram is a fixed-bucket weighted histogram over [0,1] values
// (invariance, LVP, ...). Bucket i covers [i/n, (i+1)/n), with 1.0
// landing in the last bucket.
type Histogram struct {
	Buckets []float64 // weight per bucket
	total   float64
}

// NewHistogram creates an n-bucket histogram.
func NewHistogram(n int) *Histogram {
	if n <= 0 {
		panic("stats: histogram needs at least one bucket")
	}
	return &Histogram{Buckets: make([]float64, n)}
}

// Add records value x (clamped to [0,1]) with weight w.
func (h *Histogram) Add(x, w float64) {
	if x < 0 {
		x = 0
	}
	if x > 1 {
		x = 1
	}
	i := int(x * float64(len(h.Buckets)))
	if i == len(h.Buckets) {
		i--
	}
	h.Buckets[i] += w
	h.total += w
}

// Fractions returns each bucket's share of total weight (the
// non-accumulative y-axis of the thesis figures).
func (h *Histogram) Fractions() []float64 {
	out := make([]float64, len(h.Buckets))
	if h.total == 0 {
		return out
	}
	for i, b := range h.Buckets {
		out[i] = b / h.total
	}
	return out
}

// Total returns the accumulated weight.
func (h *Histogram) Total() float64 { return h.total }

// String renders an ASCII bar chart, one row per bucket.
func (h *Histogram) String() string {
	var b strings.Builder
	fr := h.Fractions()
	n := len(fr)
	for i, f := range fr {
		lo := float64(i) / float64(n)
		hi := float64(i+1) / float64(n)
		bar := strings.Repeat("#", int(f*50+0.5))
		fmt.Fprintf(&b, "[%4.2f,%4.2f) %6.2f%% %s\n", lo, hi, 100*f, bar)
	}
	return b.String()
}
