package parallel

import (
	"context"
	"fmt"

	"valueprof/internal/atom"
	"valueprof/internal/core"
	"valueprof/internal/program"
	"valueprof/internal/vm"
)

// ProgJob is one independent profiling run of an arbitrary Program —
// the sibling of Job for callers that hold a program directly instead
// of a registered workload (the differential-testing harness shards
// generated programs this way). The program is shared read-only
// across jobs; each job gets its own VM and profiler.
type ProgJob struct {
	Name    string
	Prog    *program.Program
	Input   []int64
	Options core.Options
	// Run carries the control-plane settings; Run.Input is ignored —
	// the job's Input wins.
	Run atom.RunOptions
}

// ProgResult is one ProgJob's outcome, following the same salvage
// contract as Result: Profile is non-nil whenever the run started.
type ProgResult struct {
	Name    string
	Index   int
	Profile *core.Profile
	Exec    *vm.Result
	Outcome vm.RunOutcome
	Err     error
	// Skipped marks a job never dispatched because the context was
	// already cancelled (see Result.Skipped).
	Skipped bool
}

// RunProgs executes program jobs on at most workers goroutines (≤ 0
// selects GOMAXPROCS) and returns one ProgResult per job, in job
// order. Like Run it never fails as a whole.
func RunProgs(ctx context.Context, workers int, jobs []ProgJob) []ProgResult {
	if ctx == nil {
		ctx = context.Background()
	}
	return Map(workers, len(jobs), func(i int) ProgResult {
		job := jobs[i]
		r := ProgResult{Name: job.Name, Index: i}
		if err := ctx.Err(); err != nil {
			r.Outcome, r.Skipped = vm.OutcomeCancelled, true
			r.Err = fmt.Errorf("parallel: %s not dispatched: %w", job.Name, err)
			return r
		}
		vp, err := shared.AcquireProfiler(job.Options)
		if err != nil {
			r.Outcome, r.Err = vm.OutcomeFaulted, err
			return r
		}
		opts := job.Run
		opts.Input = job.Input
		v := shared.AcquireVM(job.Prog, opts.EffectiveMemSize())
		atom.PrepareOn(v, opts, vp)
		outcome, err := v.RunControlled(ctx)
		res := vm.ResultOf(v, outcome)
		shared.ReleaseVM(v)
		r.Profile = vp.Profile()
		shared.ReleaseProfiler(vp)
		r.Exec = res
		r.Outcome = outcome
		r.Err = err
		return r
	})
}

// MergeProgShards folds the results' profiles into one, in job order —
// the shard-merge path for one program's run split across inputs.
// Every job must have completed with a profile.
func MergeProgShards(results []ProgResult) (*core.Profile, error) {
	if len(results) == 0 {
		return nil, fmt.Errorf("parallel: no shards to merge")
	}
	for i := range results {
		if results[i].Err != nil {
			return nil, fmt.Errorf("profiling %s: %w", results[i].Name, results[i].Err)
		}
	}
	merged := results[0].Profile
	for _, r := range results[1:] {
		var err error
		merged, err = merged.Merge(r.Profile)
		if err != nil {
			return nil, fmt.Errorf("parallel: merging shard %s: %w", r.Name, err)
		}
	}
	return merged, nil
}
