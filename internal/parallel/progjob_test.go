package parallel_test

import (
	"context"
	"encoding/json"
	"testing"

	"valueprof/internal/atom"
	"valueprof/internal/core"
	"valueprof/internal/parallel"
	"valueprof/internal/progen"
	"valueprof/internal/vm"
)

// TestRunProgsMatchesSerial shards one generated program across two
// inputs on a pool and checks the pooled results are byte-identical
// to serial runs of the same jobs.
func TestRunProgsMatchesSerial(t *testing.T) {
	spec := progen.Generate(progen.Config{Seed: 3})
	prog, err := progen.Build(&spec)
	if err != nil {
		t.Fatal(err)
	}
	jobs := []parallel.ProgJob{
		{Name: "a", Prog: prog, Input: progen.InputFor(&spec, 0), Options: core.DefaultOptions()},
		{Name: "b", Prog: prog, Input: progen.InputFor(&spec, 1), Options: core.DefaultOptions()},
		{Name: "c", Prog: prog, Input: progen.InputFor(&spec, 2), Options: core.DefaultOptions()},
	}
	pooled := parallel.RunProgs(context.Background(), 3, jobs)
	for i, job := range jobs {
		vp, err := core.NewValueProfiler(job.Options)
		if err != nil {
			t.Fatal(err)
		}
		res, outcome, err := atom.RunControlled(context.Background(), prog,
			atom.RunOptions{Input: job.Input}, vp)
		if err != nil || outcome != vm.OutcomeCompleted {
			t.Fatalf("job %d: serial run failed: %v (%v)", i, err, outcome)
		}
		if pooled[i].Err != nil || pooled[i].Outcome != vm.OutcomeCompleted {
			t.Fatalf("job %d: pooled run failed: %v (%v)", i, pooled[i].Err, pooled[i].Outcome)
		}
		if pooled[i].Exec.Output != res.Output || pooled[i].Exec.InstCount != res.InstCount {
			t.Fatalf("job %d: pooled execution differs from serial", i)
		}
		want, _ := json.Marshal(vp.Profile().Record("g", job.Name))
		got, _ := json.Marshal(pooled[i].Profile.Record("g", job.Name))
		if string(want) != string(got) {
			t.Fatalf("job %d: pooled profile differs from serial:\n got %s\nwant %s", i, got, want)
		}
	}

	merged, err := parallel.MergeProgShards(pooled)
	if err != nil {
		t.Fatal(err)
	}
	var wantExec uint64
	for _, r := range pooled {
		wantExec += r.Profile.Profiled()
	}
	if merged.Profiled() != wantExec {
		t.Fatalf("merged profile lost executions: %d != %d", merged.Profiled(), wantExec)
	}
}

// TestRunProgsErrorPaths covers the per-job failure branches: a
// cancelled context marks every job cancelled without running it, and
// options the profiler rejects surface as a faulted job (and poison a
// subsequent merge) rather than a panic on the pool goroutine.
func TestRunProgsErrorPaths(t *testing.T) {
	spec := progen.Generate(progen.Config{Seed: 5})
	prog, err := progen.Build(&spec)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	jobs := []parallel.ProgJob{
		{Name: "j", Prog: prog, Input: progen.InputFor(&spec, 0), Options: core.DefaultOptions()},
	}
	for _, r := range parallel.RunProgs(ctx, 1, jobs) {
		if r.Err == nil || r.Outcome != vm.OutcomeCancelled {
			t.Fatalf("cancelled pool: got %v (%v), want cancelled", r.Err, r.Outcome)
		}
		if r.Profile != nil || r.Exec != nil {
			t.Fatal("cancelled job fabricated results")
		}
	}

	bad := jobs
	bad[0].Options = core.Options{TNV: core.TNVConfig{Size: -1}}
	results := parallel.RunProgs(context.Background(), 1, bad)
	if results[0].Err == nil || results[0].Outcome != vm.OutcomeFaulted {
		t.Fatalf("bad options: got %v (%v), want faulted", results[0].Err, results[0].Outcome)
	}
	if _, err := parallel.MergeProgShards(results); err == nil {
		t.Fatal("MergeProgShards accepted a faulted shard")
	}
}

func TestMergeProgShardsPropagatesJobError(t *testing.T) {
	spec := progen.Generate(progen.Config{Seed: 4})
	prog, err := progen.Build(&spec)
	if err != nil {
		t.Fatal(err)
	}
	jobs := []parallel.ProgJob{
		{Name: "ok", Prog: prog, Input: progen.InputFor(&spec, 0), Options: core.DefaultOptions()},
		// A one-instruction budget cannot complete any generated
		// program, so this shard ends with OutcomeLimit and an error.
		{Name: "short", Prog: prog, Input: progen.InputFor(&spec, 0), Options: core.DefaultOptions(),
			Run: atom.RunOptions{StepLimit: 1}},
	}
	results := parallel.RunProgs(context.Background(), 2, jobs)
	if results[1].Err == nil || results[1].Outcome != vm.OutcomeLimit {
		t.Fatalf("short job: want limit error, got %v (%v)", results[1].Err, results[1].Outcome)
	}
	if results[1].Profile == nil {
		t.Fatal("short job: partial profile not salvaged")
	}
	if _, err := parallel.MergeProgShards(results); err == nil {
		t.Fatal("MergeProgShards accepted a failed shard")
	}
	if _, err := parallel.MergeProgShards(nil); err == nil {
		t.Fatal("MergeProgShards accepted zero shards")
	}
}
