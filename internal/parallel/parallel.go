// Package parallel executes independent profiling jobs on a bounded
// worker pool. Each job gets its own VM and profiler (the program
// itself is shared read-only via the workload compile cache), so jobs
// never touch common mutable state; results come back in job order
// regardless of which worker finished first, which is what keeps a
// parallel suite run byte-identical to the serial one.
//
// Cancellation and failure follow the RunOutcome salvage contract of
// internal/atom: a cancelled context stops in-flight runs at the next
// quantum boundary (their partial profiles remain salvageable), and
// jobs the pool never dispatched come back annotated — Skipped, with a
// job-named error — rather than silently dropped, so a cancelled batch
// accounts for every piece of work. Retries, budgets, and salvage
// merging on top of this pool live in internal/supervise.
package parallel

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"valueprof/internal/atom"
	"valueprof/internal/core"
	"valueprof/internal/vm"
	"valueprof/internal/workloads"
)

// Job is one independent (workload, input, options) profiling run.
type Job struct {
	Workload *workloads.Workload
	Input    workloads.Input
	// Options configures the job's private value profiler.
	Options core.Options
	// Run carries the control-plane settings (deadline, step limit,
	// hook charging); Run.Input is ignored — the job's Input wins.
	Run atom.RunOptions
}

// Name labels the job for reports and errors.
func (j *Job) Name() string { return j.Workload.Name + "/" + j.Input.Name }

// Result is one job's outcome. Profile is non-nil whenever the run
// started, even if it ended early — the salvage path — and Err is
// non-nil iff the run did not complete cleanly (including a workload
// self-check failure on the program's output).
type Result struct {
	Job     Job
	Index   int
	Profile *core.Profile
	Exec    *vm.Result
	Outcome vm.RunOutcome
	Err     error
	// Skipped marks a job the pool never dispatched because the
	// context was already cancelled: there is no partial profile to
	// salvage, unlike a cancelled in-flight job. The result still
	// carries the job and a job-named error, so a cancelled batch
	// reports every piece of abandoned work instead of dropping it.
	Skipped bool
}

// Run executes jobs on at most workers goroutines (≤ 0 selects
// GOMAXPROCS) and returns one Result per job, in job order. It never
// fails as a whole: per-job errors are captured in the results.
// Per-job VMs and profilers are recycled through the package arena;
// RunUnpooled is the fresh-allocation variant.
func Run(ctx context.Context, workers int, jobs []Job) []Result {
	return run(ctx, workers, jobs, &shared)
}

// RunUnpooled is Run without allocation reuse: every job allocates a
// fresh VM and profiler. It exists as the baseline the allocation
// benchmarks measure the arena against (BenchSuite records both) and
// as an escape hatch; its results are byte-identical to Run's.
func RunUnpooled(ctx context.Context, workers int, jobs []Job) []Result {
	return run(ctx, workers, jobs, nil)
}

func run(ctx context.Context, workers int, jobs []Job, ar *Arena) []Result {
	if ctx == nil {
		ctx = context.Background()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	results := make([]Result, len(jobs))
	var next sync.Mutex
	cursor := 0
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				next.Lock()
				i := cursor
				cursor++
				next.Unlock()
				if i >= len(jobs) {
					return
				}
				if err := ctx.Err(); err != nil {
					results[i] = Result{Job: jobs[i], Index: i, Outcome: vm.OutcomeCancelled, Skipped: true,
						Err: fmt.Errorf("parallel: %s not dispatched: %w", jobs[i].Name(), err)}
					continue
				}
				results[i] = runOne(ctx, jobs[i], i, ar)
			}
		}()
	}
	wg.Wait()
	return results
}

// runOne executes a single job in isolation: its own profiler, its own
// VM (acquired from ar, or fresh when ar is nil), shared (read-only)
// program.
func runOne(ctx context.Context, job Job, index int, ar *Arena) Result {
	r := Result{Job: job, Index: index}
	prog, err := job.Workload.Compile()
	if err != nil {
		r.Outcome, r.Err = vm.OutcomeFaulted, err
		return r
	}
	vp, err := ar.AcquireProfiler(job.Options)
	if err != nil {
		r.Outcome, r.Err = vm.OutcomeFaulted, err
		return r
	}
	opts := job.Run
	opts.Input = job.Input.Args
	v := ar.AcquireVM(prog, opts.EffectiveMemSize())
	atom.PrepareOn(v, opts, vp)
	outcome, err := v.RunControlled(ctx)
	res := vm.ResultOf(v, outcome)
	ar.ReleaseVM(v)
	r.Profile = vp.Profile()
	ar.ReleaseProfiler(vp)
	r.Exec = res
	r.Outcome = outcome
	r.Err = err
	if err == nil && job.Input.Want != "" && res.Output != job.Input.Want {
		r.Err = fmt.Errorf("parallel: %s output mismatch:\n got %q\nwant %q", job.Name(), res.Output, job.Input.Want)
	}
	return r
}

// FirstError returns the lowest-index non-nil job error, wrapped with
// the job's name, or nil — the error a serial loop over the same jobs
// would have hit first.
func FirstError(results []Result) error {
	for i := range results {
		if results[i].Err != nil {
			return fmt.Errorf("profiling %s: %w", results[i].Job.Name(), results[i].Err)
		}
	}
	return nil
}

// MergeShards folds the results' profiles into one, in job order — the
// shard-merge path for runs of the same program split across workers.
// Every job must have completed with a profile.
func MergeShards(results []Result) (*core.Profile, error) {
	if err := FirstError(results); err != nil {
		return nil, err
	}
	if len(results) == 0 {
		return nil, fmt.Errorf("parallel: no shards to merge")
	}
	merged := results[0].Profile
	for _, r := range results[1:] {
		var err error
		merged, err = merged.Merge(r.Profile)
		if err != nil {
			return nil, fmt.Errorf("parallel: merging shard %s: %w", r.Job.Name(), err)
		}
	}
	return merged, nil
}

// Map runs fn(i) for every i in [0, n) on at most workers goroutines
// (≤ 0 selects GOMAXPROCS) and returns the results in index order. It
// is the generic sibling of Run for callers whose unit of work is not
// a profiling job (vexp parallelizes whole experiments with it);
// cancellation and error handling are fn's responsibility.
func Map[T any](workers, n int, fn func(i int) T) []T {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	out := make([]T, n)
	var next sync.Mutex
	cursor := 0
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				next.Lock()
				i := cursor
				cursor++
				next.Unlock()
				if i >= n {
					return
				}
				out[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	return out
}
