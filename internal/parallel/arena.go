// Arena: sync.Pool-backed reuse of per-job execution state. An N-job
// cross-product used to allocate a fresh VM (8 MiB memory image,
// hook-bit/fusion/buffer tables) and a fresh profiler (site maps,
// value buffers) per job; the arena recycles both through the explicit
// ResetFor lifecycles of vm.VM and core.ValueProfiler, so steady-state
// pool throughput stops paying the allocator. Reused instances are
// observably identical to fresh ones — byte identity of profiles is
// pinned by internal/difftest's fresh-vs-reused property and by the
// BenchSuite serial-vs-parallel cross-check.
//
// This file is the only place in the package allowed to allocate
// per-job VM state (internal/lint enforces it): job bodies go through
// Acquire/Release so the optimization cannot silently regress.
package parallel

import (
	"sync"

	"valueprof/internal/core"
	"valueprof/internal/program"
	"valueprof/internal/vm"
)

// Arena recycles per-job VMs and profilers. The zero value is ready to
// use; a nil *Arena disables reuse and allocates fresh instances
// (the unpooled baseline the allocation benchmarks measure against).
type Arena struct {
	vms   sync.Pool // *vm.VM
	profs sync.Pool // *core.ValueProfiler
}

// shared is the package-wide arena behind Run, RunProgs, and the
// exported Acquire/Release helpers (internal/supervise reuses attempt
// state through them).
var shared Arena

// AcquireVM returns a VM in the initial state for prog with memSize
// bytes of guest memory — a recycled instance rewound with ResetFor
// when one is pooled, a fresh one otherwise.
func (a *Arena) AcquireVM(prog *program.Program, memSize int) *vm.VM {
	if a != nil {
		if v, ok := a.vms.Get().(*vm.VM); ok {
			v.ResetFor(prog, memSize)
			return v
		}
	}
	return vm.NewSized(prog, memSize)
}

// ReleaseVM parks v for reuse. The caller must have copied out every
// result it needs (vm.ResultOf copies); instrumentation is stripped
// immediately so a pooled VM does not retain the job's profiler.
func (a *Arena) ReleaseVM(v *vm.VM) {
	if a == nil || v == nil {
		return
	}
	v.ClearHooks()
	v.Input = nil
	a.vms.Put(v)
}

// AcquireProfiler returns a profiler for opts — a recycled instance
// rewound with ResetFor when one is pooled, a fresh one otherwise.
func (a *Arena) AcquireProfiler(opts core.Options) (*core.ValueProfiler, error) {
	if a != nil {
		if p, ok := a.profs.Get().(*core.ValueProfiler); ok {
			if err := p.ResetFor(opts); err != nil {
				a.profs.Put(p)
				return nil, err
			}
			return p, nil
		}
	}
	return core.NewValueProfiler(opts)
}

// ReleaseProfiler parks p for reuse. The caller must have extracted
// its Profile first; the profile's sites stay valid (ResetFor on the
// next acquisition abandons rather than recycles them).
func (a *Arena) ReleaseProfiler(p *core.ValueProfiler) {
	if a == nil || p == nil {
		return
	}
	a.profs.Put(p)
}

// AcquireVM acquires from the shared package arena.
func AcquireVM(prog *program.Program, memSize int) *vm.VM {
	return shared.AcquireVM(prog, memSize)
}

// ReleaseVM releases into the shared package arena.
func ReleaseVM(v *vm.VM) { shared.ReleaseVM(v) }

// AcquireProfiler acquires from the shared package arena.
func AcquireProfiler(opts core.Options) (*core.ValueProfiler, error) {
	return shared.AcquireProfiler(opts)
}

// ReleaseProfiler releases into the shared package arena.
func ReleaseProfiler(p *core.ValueProfiler) { shared.ReleaseProfiler(p) }
