package parallel

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"

	"valueprof/internal/atom"
	"valueprof/internal/core"
	"valueprof/internal/vm"
	"valueprof/internal/workloads"
)

// suiteJobs is a small deterministic job set: three workloads, both
// inputs each.
func suiteJobs(t *testing.T) []Job {
	t.Helper()
	ws := workloads.All()
	if len(ws) < 3 {
		t.Fatalf("suite too small: %d workloads", len(ws))
	}
	var jobs []Job
	for _, w := range ws[:3] {
		for _, in := range w.Inputs() {
			jobs = append(jobs, Job{Workload: w, Input: in, Options: core.DefaultOptions()})
		}
	}
	return jobs
}

func jobRecord(t *testing.T, r Result) []byte {
	t.Helper()
	if r.Err != nil {
		t.Fatalf("job %s: %v", r.Job.Name(), r.Err)
	}
	b, err := recordBytes(r)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// The pool contract: any worker count yields byte-identical profiles
// to the serial run, in job order. This test is also the -race proof
// for the per-site skip counters — pooled profilers share nothing.
func TestRunDeterministicAcrossWidths(t *testing.T) {
	jobs := suiteJobs(t)
	serial := Run(context.Background(), 1, jobs)
	for _, workers := range []int{2, 4, len(jobs) + 3} {
		par := Run(context.Background(), workers, jobs)
		if len(par) != len(jobs) {
			t.Fatalf("workers=%d: %d results for %d jobs", workers, len(par), len(jobs))
		}
		for i := range jobs {
			if par[i].Index != i || par[i].Job.Name() != jobs[i].Name() {
				t.Fatalf("workers=%d: result %d is job %s", workers, i, par[i].Job.Name())
			}
			if !bytes.Equal(jobRecord(t, serial[i]), jobRecord(t, par[i])) {
				t.Errorf("workers=%d: job %s diverges from the serial run", workers, jobs[i].Name())
			}
		}
	}
}

// Convergent sampling exercises the skip path on every worker; the
// per-site counters must still agree with the serial run.
func TestRunDeterministicWithSampling(t *testing.T) {
	jobs := suiteJobs(t)
	ccfg := core.DefaultConvergentConfig()
	for i := range jobs {
		jobs[i].Options.Convergent = &ccfg
	}
	serial := Run(context.Background(), 1, jobs)
	par := Run(context.Background(), 4, jobs)
	for i := range jobs {
		if !bytes.Equal(jobRecord(t, serial[i]), jobRecord(t, par[i])) {
			t.Errorf("job %s: sampled parallel run diverges from serial", jobs[i].Name())
		}
		if d := par[i].Profile.DutyCycle(); d <= 0 || d >= 1 {
			t.Errorf("job %s: duty cycle %v not in (0,1) under sampling", jobs[i].Name(), d)
		}
	}
}

// A cancelled context must mark every job cancelled — in-flight runs
// salvage a partial profile, undispatched jobs never start — and never
// hang the pool.
func TestRunCancellation(t *testing.T) {
	jobs := suiteJobs(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	results := Run(ctx, 2, jobs)
	for _, r := range results {
		if r.Err == nil {
			t.Errorf("job %s completed under a cancelled context", r.Job.Name())
		}
		if r.Outcome != vm.OutcomeCancelled {
			t.Errorf("job %s outcome %v, want cancelled", r.Job.Name(), r.Outcome)
		}
	}
	if err := FirstError(results); err == nil {
		t.Error("FirstError missed the cancellation")
	}
}

// A job that dies early must surface its error and salvage the partial
// profile without disturbing its neighbours.
func TestRunCapturesPerJobErrors(t *testing.T) {
	jobs := suiteJobs(t)
	jobs[1].Run = atom.RunOptions{StepLimit: 500}
	results := Run(context.Background(), 3, jobs)

	r := results[1]
	if r.Err == nil || r.Outcome != vm.OutcomeLimit {
		t.Fatalf("limited job: outcome %v err %v, want a step-limit error", r.Outcome, r.Err)
	}
	if r.Profile == nil || r.Profile.Profiled() == 0 {
		t.Error("limited job salvaged no partial profile")
	}
	for i, other := range results {
		if i == 1 {
			continue
		}
		if other.Err != nil {
			t.Errorf("job %s failed alongside the limited one: %v", other.Job.Name(), other.Err)
		}
	}
	err := FirstError(results)
	if err == nil {
		t.Fatal("FirstError missed the failure")
	}
	if want := "profiling " + jobs[1].Name(); !bytes.Contains([]byte(err.Error()), []byte(want)) {
		t.Errorf("error %q does not name the failing job (%s)", err, want)
	}
}

// Sharding one workload's inputs across jobs and folding with
// MergeShards must preserve the exact totals.
func TestMergeShards(t *testing.T) {
	w := workloads.All()[0]
	var jobs []Job
	for _, in := range w.Inputs() {
		jobs = append(jobs, Job{Workload: w, Input: in, Options: core.DefaultOptions()})
	}
	results := Run(context.Background(), 2, jobs)
	merged, err := MergeShards(results)
	if err != nil {
		t.Fatal(err)
	}
	var want uint64
	for _, r := range results {
		want += r.Profile.Profiled()
	}
	if got := merged.Profiled(); got != want {
		t.Errorf("merged profiled %d, want the shard total %d", got, want)
	}
	if _, err := MergeShards(nil); err == nil {
		t.Error("merging zero shards did not fail")
	}
}

// Map must place fn(i) at out[i] for every width.
func TestMapOrdering(t *testing.T) {
	for _, workers := range []int{1, 3, 50} {
		out := Map(workers, 20, func(i int) int { return i * i })
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d", workers, i, v)
			}
		}
	}
	if got := Map(4, 0, func(i int) int { return i }); len(got) != 0 {
		t.Fatalf("Map over zero items returned %v", got)
	}
}

// The benchmark harness must agree with itself: identical records,
// positive timings, sane speedup arithmetic.
func TestBenchSuiteSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("suite benchmark is slow")
	}
	rep, err := BenchSuite(context.Background(), 2, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Identical {
		t.Error("bench reported divergent records")
	}
	if rep.Jobs == 0 || rep.SerialMS <= 0 || rep.ParallelMS <= 0 || rep.Speedup <= 0 {
		t.Errorf("degenerate bench report: %+v", rep)
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte(`"speedup"`)) {
		t.Error("report JSON lacks the speedup field")
	}
}

// Undispatched jobs of a cancelled batch must come back annotated —
// Skipped, with an error naming the job — not silently dropped.
func TestCancelledBatchAnnotatesSkippedJobs(t *testing.T) {
	jobs := suiteJobs(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	results := Run(ctx, 2, jobs)
	for _, r := range results {
		if !r.Skipped {
			t.Errorf("job %s not marked skipped under a pre-cancelled context", r.Job.Name())
		}
		if r.Err == nil || !strings.Contains(r.Err.Error(), r.Job.Name()) {
			t.Errorf("job %s: skip error %v does not name the job", r.Job.Name(), r.Err)
		}
		if r.Profile != nil {
			t.Errorf("job %s: skipped job carries a profile", r.Job.Name())
		}
	}
}

// Cancellation racing the merge: whatever mix of completed, cancelled
// in-flight, and skipped jobs a mid-batch cancellation leaves behind,
// MergeShards must either produce a profile (all complete) or a clean
// job-named error — never a panic on a missing profile.
func TestCancellationRacingMergeShards(t *testing.T) {
	w := workloads.All()[0]
	for round := 0; round < 8; round++ {
		var jobs []Job
		for i := 0; i < 6; i++ {
			jobs = append(jobs, Job{Workload: w, Input: w.Test, Options: core.DefaultOptions(),
				Run: atom.RunOptions{Quantum: 64}})
		}
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan []Result, 1)
		go func() { done <- Run(ctx, 3, jobs) }()
		if round%2 == 0 {
			cancel() // race the dispatch loop
		} else {
			time.Sleep(time.Duration(round) * 100 * time.Microsecond)
			cancel() // race in-flight runs
		}
		results := <-done
		merged, err := MergeShards(results)
		if err == nil {
			if merged == nil {
				t.Fatal("MergeShards returned neither profile nor error")
			}
			continue // whole batch beat the cancellation
		}
		if !strings.Contains(err.Error(), w.Name) {
			t.Errorf("round %d: merge error %q does not name a job", round, err)
		}
		for _, r := range results {
			if r.Skipped && r.Outcome != vm.OutcomeCancelled {
				t.Errorf("round %d: skipped job with outcome %v", round, r.Outcome)
			}
		}
	}
}
