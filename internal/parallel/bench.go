package parallel

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"valueprof/internal/core"
	"valueprof/internal/workloads"
)

// BenchReport records one serial-vs-parallel timing of the full
// workload-suite profiling pass (both inputs of every workload under
// full-time all-instruction profiling). This is the repo's recorded
// benchmark baseline (BENCH_parallel.json).
type BenchReport struct {
	NumCPU     int      `json:"numCPU"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	Workers    int      `json:"workers"`
	Jobs       int      `json:"jobs"`
	Workloads  []string `json:"workloads"`
	SerialMS   float64  `json:"serialMS"`
	ParallelMS float64  `json:"parallelMS"`
	Speedup    float64  `json:"speedup"`
	// Identical reports whether the parallel run's profile records were
	// byte-identical to the serial run's (they must be).
	Identical bool `json:"identical"`

	// Allocator traffic per job, suite-wide, measured serially with the
	// arena disabled (RunUnpooled) and enabled (Run). AllocDrop =
	// unpooled/pooled allocs — the factor the arena saves; counts are
	// machine-independent, bytes are context.
	UnpooledAllocsPerJob float64 `json:"unpooledAllocsPerJob,omitempty"`
	PooledAllocsPerJob   float64 `json:"pooledAllocsPerJob,omitempty"`
	UnpooledKBPerJob     float64 `json:"unpooledKBPerJob,omitempty"`
	PooledKBPerJob       float64 `json:"pooledKBPerJob,omitempty"`
	AllocDrop            float64 `json:"allocDrop,omitempty"`
	// Note carries recording-environment caveats (e.g. why speedup ~1x
	// on a single-CPU host) so the JSON is self-explaining.
	Note string `json:"note,omitempty"`
}

// WriteJSON writes the indented JSON form of the report.
func (r *BenchReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// String renders the one-line summary.
func (r *BenchReport) String() string {
	s := fmt.Sprintf("suite profiling: %d jobs, serial %.0f ms, %d-way parallel %.0f ms, speedup %.2fx (identical=%v, %d CPUs)",
		r.Jobs, r.SerialMS, r.Workers, r.ParallelMS, r.Speedup, r.Identical, r.NumCPU)
	if r.UnpooledAllocsPerJob > 0 {
		s += fmt.Sprintf("; allocs/job %.0f unpooled -> %.0f pooled (%.1fx drop)",
			r.UnpooledAllocsPerJob, r.PooledAllocsPerJob, r.AllocDrop)
	}
	return s
}

// SuiteJobs returns the standard benchmark job set: every workload ×
// both inputs under full-time all-instruction profiling.
func SuiteJobs() []Job {
	var jobs []Job
	for _, w := range workloads.All() {
		for _, in := range w.Inputs() {
			jobs = append(jobs, Job{Workload: w, Input: in, Options: core.DefaultOptions()})
		}
	}
	return jobs
}

// BenchSuite times the suite profiling pass serially and on a
// workers-wide pool, and cross-checks that both produce byte-identical
// per-job profile records. Programs are precompiled before either
// timing so the (cached, one-off) MiniC compile cost does not skew the
// comparison. All cross-check work stays outside the timed regions:
// the serial run's records are serialized to bytes — and its live
// profiles released — before the parallel pass starts, and each pass
// begins from a collected heap so neither pays for the other's
// garbage.
func BenchSuite(ctx context.Context, workers int, numCPU, maxprocs int) (*BenchReport, error) {
	jobs := SuiteJobs()
	names := make([]string, 0, len(jobs))
	for _, j := range jobs {
		names = append(names, j.Name())
		if _, err := j.Workload.Compile(); err != nil {
			return nil, err
		}
	}

	runtime.GC()
	start := time.Now()
	serial := Run(ctx, 1, jobs)
	serialDur := time.Since(start)
	if err := FirstError(serial); err != nil {
		return nil, err
	}
	serialRecs := make([][]byte, len(jobs))
	for i := range jobs {
		b, err := recordBytes(serial[i])
		if err != nil {
			return nil, err
		}
		serialRecs[i] = b
	}
	serial = nil

	runtime.GC()
	start = time.Now()
	par := Run(ctx, workers, jobs)
	parDur := time.Since(start)
	if err := FirstError(par); err != nil {
		return nil, err
	}

	identical := true
	for i := range jobs {
		b, err := recordBytes(par[i])
		if err != nil {
			return nil, err
		}
		if !bytes.Equal(serialRecs[i], b) {
			identical = false
		}
	}
	if !identical {
		return nil, fmt.Errorf("parallel: suite records diverge from the serial run")
	}

	rep := &BenchReport{
		NumCPU:     numCPU,
		GOMAXPROCS: maxprocs,
		Workers:    workers,
		Jobs:       len(jobs),
		Workloads:  names,
		SerialMS:   float64(serialDur.Microseconds()) / 1e3,
		ParallelMS: float64(parDur.Microseconds()) / 1e3,
	}
	if parDur > 0 {
		rep.Speedup = float64(serialDur) / float64(parDur)
	}
	rep.Identical = identical

	// Allocation profile: the same suite serially, fresh allocations vs
	// the arena. Untimed, after both timed passes, so the ReadMemStats
	// pauses cannot skew the speedup numbers.
	unAllocs, unKB, err := suiteAllocs(ctx, jobs, RunUnpooled)
	if err != nil {
		return nil, err
	}
	poAllocs, poKB, err := suiteAllocs(ctx, jobs, Run)
	if err != nil {
		return nil, err
	}
	rep.UnpooledAllocsPerJob, rep.UnpooledKBPerJob = unAllocs, unKB
	rep.PooledAllocsPerJob, rep.PooledKBPerJob = poAllocs, poKB
	if poAllocs > 0 {
		rep.AllocDrop = unAllocs / poAllocs
	}
	if numCPU <= 1 {
		rep.Note = "single-CPU host: the worker pool cannot run jobs concurrently, so speedup ~1x " +
			"(slightly below 1 is goroutine-scheduling overhead, not a regression); " +
			"allocDrop is the meaningful pooled-vs-unpooled figure on this machine"
	}
	return rep, nil
}

// suiteAllocs measures per-job allocator traffic for one serial pass
// of the suite under the given runner. A warm-up pass (after a GC)
// populates the compile cache and the arena first, so the measured
// pass reflects steady-state pool behavior rather than cold-start
// allocations.
func suiteAllocs(ctx context.Context, jobs []Job, runner func(context.Context, int, []Job) []Result) (allocsPerJob, kbPerJob float64, err error) {
	runtime.GC()
	if err := FirstError(runner(ctx, 1, jobs)); err != nil {
		return 0, 0, err
	}
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	res := runner(ctx, 1, jobs)
	runtime.ReadMemStats(&after)
	if err := FirstError(res); err != nil {
		return 0, 0, err
	}
	n := float64(len(jobs))
	return float64(after.Mallocs-before.Mallocs) / n,
		float64(after.TotalAlloc-before.TotalAlloc) / 1024 / n, nil
}

// recordBytes serializes one job result's profile record, the
// byte-identity currency of the bench cross-check.
func recordBytes(r Result) ([]byte, error) {
	var buf bytes.Buffer
	rec := r.Profile.Record(r.Job.Workload.Name, r.Job.Input.Name)
	if err := rec.WriteJSON(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
