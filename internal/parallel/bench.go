package parallel

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"valueprof/internal/core"
	"valueprof/internal/workloads"
)

// BenchReport records one serial-vs-parallel timing of the full
// workload-suite profiling pass (both inputs of every workload under
// full-time all-instruction profiling). This is the repo's recorded
// benchmark baseline (BENCH_parallel.json).
type BenchReport struct {
	NumCPU     int      `json:"numCPU"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	Workers    int      `json:"workers"`
	Jobs       int      `json:"jobs"`
	Workloads  []string `json:"workloads"`
	SerialMS   float64  `json:"serialMS"`
	ParallelMS float64  `json:"parallelMS"`
	Speedup    float64  `json:"speedup"`
	// Identical reports whether the parallel run's profile records were
	// byte-identical to the serial run's (they must be).
	Identical bool `json:"identical"`
}

// WriteJSON writes the indented JSON form of the report.
func (r *BenchReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// String renders the one-line summary.
func (r *BenchReport) String() string {
	return fmt.Sprintf("suite profiling: %d jobs, serial %.0f ms, %d-way parallel %.0f ms, speedup %.2fx (identical=%v, %d CPUs)",
		r.Jobs, r.SerialMS, r.Workers, r.ParallelMS, r.Speedup, r.Identical, r.NumCPU)
}

// SuiteJobs returns the standard benchmark job set: every workload ×
// both inputs under full-time all-instruction profiling.
func SuiteJobs() []Job {
	var jobs []Job
	for _, w := range workloads.All() {
		for _, in := range w.Inputs() {
			jobs = append(jobs, Job{Workload: w, Input: in, Options: core.DefaultOptions()})
		}
	}
	return jobs
}

// BenchSuite times the suite profiling pass serially and on a
// workers-wide pool, and cross-checks that both produce byte-identical
// per-job profile records. Programs are precompiled before either
// timing so the (cached, one-off) MiniC compile cost does not skew the
// comparison. All cross-check work stays outside the timed regions:
// the serial run's records are serialized to bytes — and its live
// profiles released — before the parallel pass starts, and each pass
// begins from a collected heap so neither pays for the other's
// garbage.
func BenchSuite(ctx context.Context, workers int, numCPU, maxprocs int) (*BenchReport, error) {
	jobs := SuiteJobs()
	names := make([]string, 0, len(jobs))
	for _, j := range jobs {
		names = append(names, j.Name())
		if _, err := j.Workload.Compile(); err != nil {
			return nil, err
		}
	}

	runtime.GC()
	start := time.Now()
	serial := Run(ctx, 1, jobs)
	serialDur := time.Since(start)
	if err := FirstError(serial); err != nil {
		return nil, err
	}
	serialRecs := make([][]byte, len(jobs))
	for i := range jobs {
		b, err := recordBytes(serial[i])
		if err != nil {
			return nil, err
		}
		serialRecs[i] = b
	}
	serial = nil

	runtime.GC()
	start = time.Now()
	par := Run(ctx, workers, jobs)
	parDur := time.Since(start)
	if err := FirstError(par); err != nil {
		return nil, err
	}

	identical := true
	for i := range jobs {
		b, err := recordBytes(par[i])
		if err != nil {
			return nil, err
		}
		if !bytes.Equal(serialRecs[i], b) {
			identical = false
		}
	}
	if !identical {
		return nil, fmt.Errorf("parallel: suite records diverge from the serial run")
	}

	rep := &BenchReport{
		NumCPU:     numCPU,
		GOMAXPROCS: maxprocs,
		Workers:    workers,
		Jobs:       len(jobs),
		Workloads:  names,
		SerialMS:   float64(serialDur.Microseconds()) / 1e3,
		ParallelMS: float64(parDur.Microseconds()) / 1e3,
	}
	if parDur > 0 {
		rep.Speedup = float64(serialDur) / float64(parDur)
	}
	rep.Identical = identical
	return rep, nil
}

// recordBytes serializes one job result's profile record, the
// byte-identity currency of the bench cross-check.
func recordBytes(r Result) ([]byte, error) {
	var buf bytes.Buffer
	rec := r.Profile.Record(r.Job.Workload.Name, r.Job.Input.Name)
	if err := rec.WriteJSON(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
