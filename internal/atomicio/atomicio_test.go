package atomicio

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteFileBytes(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.json")
	if err := WriteFileBytes(path, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello" {
		t.Errorf("content = %q", got)
	}
}

func TestOverwriteReplacesWholeFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.json")
	if err := WriteFileBytes(path, []byte("a much longer first version")); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileBytes(path, []byte("v2")); err != nil {
		t.Fatal(err)
	}
	got, _ := os.ReadFile(path)
	if string(got) != "v2" {
		t.Errorf("content = %q, want full replacement", got)
	}
}

func TestFailedWriteLeavesOldFileIntact(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	if err := WriteFileBytes(path, []byte("old good data")); err != nil {
		t.Fatal(err)
	}

	boom := errors.New("disk full")
	err := WriteFile(path, func(w io.Writer) error {
		io.WriteString(w, "partial new da") // half-written payload
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped disk-full", err)
	}
	got, rerr := os.ReadFile(path)
	if rerr != nil {
		t.Fatal(rerr)
	}
	if string(got) != "old good data" {
		t.Errorf("old file clobbered: %q", got)
	}
	// No stray temp files left behind.
	ents, _ := os.ReadDir(dir)
	if len(ents) != 1 {
		t.Errorf("dir has %d entries, want 1: %v", len(ents), ents)
	}
}

func TestFailedWriteWithNoExistingFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	err := WriteFile(path, func(w io.Writer) error { return errors.New("nope") })
	if err == nil {
		t.Fatal("want error")
	}
	if _, serr := os.Stat(path); !errors.Is(serr, os.ErrNotExist) {
		t.Errorf("destination should not exist: %v", serr)
	}
	ents, _ := os.ReadDir(dir)
	if len(ents) != 0 {
		t.Errorf("dir not empty: %v", ents)
	}
}

func TestWriteToMissingDirFails(t *testing.T) {
	err := WriteFileBytes(filepath.Join(t.TempDir(), "no", "such", "dir", "f"), []byte("x"))
	if err == nil || !strings.Contains(err.Error(), "staging") {
		t.Errorf("err = %v, want staging error", err)
	}
}

func TestWriteFileNonRegularDestination(t *testing.T) {
	// Writing "to" a device must stream into it, not rename over it:
	// an atomic rename would replace /dev/null with a regular file.
	fi, err := os.Stat(os.DevNull)
	if err != nil || fi.Mode().IsRegular() {
		t.Skipf("no usable %s: %v", os.DevNull, err)
	}
	if err := WriteFileBytes(os.DevNull, []byte("discarded")); err != nil {
		t.Fatal(err)
	}
	after, err := os.Stat(os.DevNull)
	if err != nil {
		t.Fatal(err)
	}
	if after.Mode().IsRegular() {
		t.Fatalf("%s became a regular file", os.DevNull)
	}
}
