// Package atomicio provides crash-safe file writes: data is staged in
// a temporary file in the destination directory, flushed to stable
// storage, and renamed over the destination in one step. A reader (or
// a process restarting after a crash) therefore sees either the old
// complete file or the new complete file — never a truncated or
// interleaved one. This is the write discipline the profiling runtime
// uses for profiles and checkpoints, where a half-written JSON file
// would poison every downstream consumer.
package atomicio

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// WriteFile streams the output of write into path atomically. The
// temporary file is created with mode 0644 in path's directory (rename
// is only atomic within a filesystem); on any error — including an
// error returned by write itself, a failed sync, or a failed rename —
// the temporary file is removed and the previous contents of path are
// left untouched.
func WriteFile(path string, write func(io.Writer) error) (err error) {
	// Renaming over a device, pipe, or other non-regular destination
	// (vprof -o /dev/null) would replace the special file with a
	// regular one; stream straight into it instead. Atomicity is
	// meaningless for such destinations anyway.
	if fi, serr := os.Stat(path); serr == nil && !fi.Mode().IsRegular() {
		f, oerr := os.OpenFile(path, os.O_WRONLY, 0)
		if oerr != nil {
			return fmt.Errorf("atomicio: opening %s: %w", path, oerr)
		}
		defer f.Close()
		if err := write(f); err != nil {
			return fmt.Errorf("atomicio: writing %s: %w", path, err)
		}
		return f.Close()
	}

	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("atomicio: staging %s: %w", path, err)
	}
	tmpName := tmp.Name()
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmpName)
		}
	}()

	if err = write(tmp); err != nil {
		return fmt.Errorf("atomicio: writing %s: %w", path, err)
	}
	// fsync before rename: the rename must not become durable before
	// the data it points at.
	if err = tmp.Sync(); err != nil {
		return fmt.Errorf("atomicio: syncing %s: %w", path, err)
	}
	if err = tmp.Close(); err != nil {
		return fmt.Errorf("atomicio: closing %s: %w", path, err)
	}
	if err = os.Chmod(tmpName, 0o644); err != nil {
		return fmt.Errorf("atomicio: chmod %s: %w", path, err)
	}
	if err = os.Rename(tmpName, path); err != nil {
		return fmt.Errorf("atomicio: publishing %s: %w", path, err)
	}
	// Best-effort directory sync so the rename itself survives a
	// crash; some filesystems don't support fsync on directories.
	if d, derr := os.Open(dir); derr == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// WriteFileBytes atomically replaces path with data.
func WriteFileBytes(path string, data []byte) error {
	return WriteFile(path, func(w io.Writer) error {
		_, err := w.Write(data)
		return err
	})
}
