package program

import (
	"bytes"
	"reflect"
	"testing"
)

func TestImageRoundTrip(t *testing.T) {
	p := buildProg()
	p.Data = []byte{1, 2, 3, 4, 5}
	p.DataSyms = map[string]uint64{"cell": DataBase, "buf": DataBase + 8}
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	q, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p.Code, q.Code) {
		t.Error("code differs")
	}
	if !bytes.Equal(p.Data, q.Data) {
		t.Error("data differs")
	}
	if p.Entry != q.Entry || p.DataAddr != q.DataAddr {
		t.Error("header differs")
	}
	if !reflect.DeepEqual(p.Procs, q.Procs) {
		t.Errorf("procs differ: %v vs %v", p.Procs, q.Procs)
	}
	if !reflect.DeepEqual(p.Labels, q.Labels) {
		t.Error("labels differ")
	}
	if !reflect.DeepEqual(p.DataSyms, q.DataSyms) {
		t.Error("syms differ")
	}
}

func TestImageDeterministic(t *testing.T) {
	p := buildProg()
	p.DataSyms = map[string]uint64{"z": 1, "a": 2, "m": 3}
	var b1, b2 bytes.Buffer
	if err := p.Save(&b1); err != nil {
		t.Fatal(err)
	}
	if err := p.Save(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Error("image not deterministic")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("shrt"),
		[]byte("VPX9aaaaaaaa"),
		append([]byte("VPX1"), 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01), // huge entry then EOF
	}
	for i, c := range cases {
		if _, err := Load(bytes.NewReader(c)); err == nil {
			t.Errorf("case %d: garbage image accepted", i)
		}
	}
}

func TestLoadRejectsTruncated(t *testing.T) {
	p := buildProg()
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{5, 10, len(full) / 2, len(full) - 1} {
		if cut >= len(full) {
			continue
		}
		if _, err := Load(bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("truncated image (%d of %d bytes) accepted", cut, len(full))
		}
	}
}

func TestLoadValidates(t *testing.T) {
	p := buildProg()
	p.Code[3].Imm = 999 // out-of-range branch target
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(&buf); err == nil {
		t.Error("invalid program loaded without error")
	}
}
