package program

import (
	"strings"
	"testing"

	"valueprof/internal/isa"
)

// buildProg constructs a small two-procedure program by hand:
//
//	main:  0 addi t0, zero, 3
//	       1 jsr 5 (f)
//	       2 beq t0, 4
//	       3 br 0
//	       4 syscall exit
//	f:     5 add v0, a0, a1
//	       6 ret
func buildProg() *Program {
	code := []isa.Inst{
		{Op: isa.OpAddi, Rd: isa.RegT0, Ra: isa.RegZero, Imm: 3},
		{Op: isa.OpJsr, Rd: isa.RegRA, Imm: 5},
		{Op: isa.OpBeq, Ra: isa.RegT0, Imm: 4},
		{Op: isa.OpBr, Imm: 0},
		{Op: isa.OpSyscall, Imm: isa.SysExit},
		{Op: isa.OpAdd, Rd: isa.RegV0, Ra: isa.RegA0, Rb: isa.RegA5},
		{Op: isa.OpRet, Ra: isa.RegRA},
	}
	return &Program{
		Code:     code,
		DataAddr: DataBase,
		Entry:    0,
		Procs:    []Proc{{Name: "main", Start: 0, End: 5}, {Name: "f", Start: 5, End: 7}},
		Labels:   map[string]int{"main": 0, "f": 5},
		DataSyms: map[string]uint64{},
	}
}

func TestValidateOK(t *testing.T) {
	if err := buildProg().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesBadTarget(t *testing.T) {
	p := buildProg()
	p.Code[3].Imm = 99
	if err := p.Validate(); err == nil {
		t.Error("out-of-range branch target accepted")
	}
}

func TestValidateCatchesBadEntry(t *testing.T) {
	p := buildProg()
	p.Entry = -1
	if err := p.Validate(); err == nil {
		t.Error("negative entry accepted")
	}
}

func TestValidateCatchesOverlappingProcs(t *testing.T) {
	p := buildProg()
	p.Procs[1].Start = 4
	p.Procs[0].End = 5
	if err := p.Validate(); err == nil {
		t.Error("overlapping procedures accepted")
	}
}

func TestProcAt(t *testing.T) {
	p := buildProg()
	for pc, want := range map[int]string{0: "main", 4: "main", 5: "f", 6: "f"} {
		pr := p.ProcAt(pc)
		if pr == nil || pr.Name != want {
			t.Errorf("ProcAt(%d) = %v, want %s", pc, pr, want)
		}
	}
	p2 := &Program{Code: p.Code, Procs: []Proc{{Name: "f", Start: 5, End: 7}}}
	if pr := p2.ProcAt(2); pr != nil {
		t.Errorf("ProcAt(2) outside any proc = %v, want nil", pr)
	}
}

func TestSiteName(t *testing.T) {
	p := buildProg()
	if got := p.SiteName(6); got != "f+1" {
		t.Errorf("SiteName(6) = %q, want f+1", got)
	}
}

func TestLabelAt(t *testing.T) {
	p := buildProg()
	if got := p.LabelAt(5); got != "f" {
		t.Errorf("LabelAt(5) = %q", got)
	}
	if got := p.LabelAt(2); got != "" {
		t.Errorf("LabelAt(2) = %q, want empty", got)
	}
}

func TestBasicBlocks(t *testing.T) {
	p := buildProg()
	bs := p.BasicBlocks()
	// Leaders: 0 (entry), 2 (after jsr), 3 (after beq), 4 (beq target),
	// 5 (jsr target & proc start & after br... and after exit), 6? ret is
	// preceded by add; 5..7 splits only if a leader occurs at 6: no.
	// Expected blocks: [0,2) [2,3) [3,4) [4,5) [5,7)... but ret at 6 ends
	// the program block anyway. Check structural invariants rather than
	// exact decomposition, then spot-check key blocks.
	if len(bs.Blocks) == 0 {
		t.Fatal("no blocks")
	}
	prevEnd := 0
	for i, b := range bs.Blocks {
		if b.Start != prevEnd {
			t.Errorf("block %d starts at %d, want %d (blocks must tile the code)", i, b.Start, prevEnd)
		}
		if b.End <= b.Start {
			t.Errorf("block %d empty", i)
		}
		prevEnd = b.End
	}
	if prevEnd != len(p.Code) {
		t.Errorf("blocks end at %d, want %d", prevEnd, len(p.Code))
	}
	// The beq block must have two successors: target 4 and fallthrough 3.
	bi := bs.BlockContaining(2)
	b := bs.Blocks[bi]
	if len(b.Succs) != 2 {
		t.Fatalf("beq block succs = %v, want 2", b.Succs)
	}
	got := map[int]bool{}
	for _, s := range b.Succs {
		got[bs.Blocks[s].Start] = true
	}
	if !got[4] || !got[3] {
		t.Errorf("beq successors start at %v, want {3,4}", got)
	}
	// The exit block has no successors.
	ei := bs.BlockContaining(4)
	if len(bs.Blocks[ei].Succs) != 0 {
		t.Errorf("exit block succs = %v, want none", bs.Blocks[ei].Succs)
	}
	// BlockAt on a leader and a non-leader.
	if bs.BlockAt(bs.Blocks[0].Start) != 0 {
		t.Error("BlockAt(leader) failed")
	}
	if bs.BlockAt(1) != -1 {
		t.Error("BlockAt(non-leader) should be -1")
	}
}

func TestCloneIsDeep(t *testing.T) {
	p := buildProg()
	p.Data = []byte{1, 2, 3}
	q := p.Clone()
	q.Code[0].Imm = 99
	q.Data[0] = 9
	q.Labels["main"] = 3
	q.DataSyms["x"] = 1
	if p.Code[0].Imm == 99 || p.Data[0] == 9 || p.Labels["main"] == 3 {
		t.Error("Clone shares state with original")
	}
	if _, ok := p.DataSyms["x"]; ok {
		t.Error("Clone shares DataSyms")
	}
}

func TestDisassembleContainsProcNames(t *testing.T) {
	d := buildProg().Disassemble()
	if !strings.Contains(d, "main:") || !strings.Contains(d, "f:") {
		t.Errorf("disassembly missing proc labels:\n%s", d)
	}
	if !strings.Contains(d, "jsr 5") {
		t.Errorf("disassembly missing jsr:\n%s", d)
	}
}

func TestEmptyProgramBlocks(t *testing.T) {
	p := &Program{}
	bs := p.BasicBlocks()
	if len(bs.Blocks) != 0 {
		t.Errorf("empty program produced %d blocks", len(bs.Blocks))
	}
}
