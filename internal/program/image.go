package program

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"

	"valueprof/internal/isa"
)

// Binary program-image format ("VPX1"): a fully linked executable —
// code, data, entry point, procedure table and symbols — so assembled
// or compiled programs can be saved by vasm/vcc and executed by vrun
// without re-assembly. All integers are unsigned/signed varints; the
// layout is:
//
//	magic "VPX1"
//	entry, dataAddr
//	code:   count, then each instruction's encoded word
//	data:   length, raw bytes
//	procs:  count, then (name, start, end)
//	labels: count, then (name, pc)
//	syms:   count, then (name, addr)
var imageMagic = [4]byte{'V', 'P', 'X', '1'}

// imageMaxStrings bounds section counts to reject corrupt images
// before allocating.
const imageMaxStrings = 1 << 24

type imageWriter struct {
	w   *bufio.Writer
	err error
}

func (iw *imageWriter) uvarint(v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	if _, err := iw.w.Write(buf[:n]); err != nil && iw.err == nil {
		iw.err = err
	}
}

func (iw *imageWriter) str(s string) {
	iw.uvarint(uint64(len(s)))
	if _, err := iw.w.WriteString(s); err != nil && iw.err == nil {
		iw.err = err
	}
}

// Save writes the program image to w.
func (p *Program) Save(w io.Writer) error {
	iw := &imageWriter{w: bufio.NewWriter(w)}
	if _, err := iw.w.Write(imageMagic[:]); err != nil {
		return err
	}
	iw.uvarint(uint64(p.Entry))
	iw.uvarint(p.DataAddr)

	iw.uvarint(uint64(len(p.Code)))
	for _, in := range p.Code {
		iw.uvarint(uint64(in.Encode()))
	}
	iw.uvarint(uint64(len(p.Data)))
	if _, err := iw.w.Write(p.Data); err != nil && iw.err == nil {
		iw.err = err
	}

	iw.uvarint(uint64(len(p.Procs)))
	for _, pr := range p.Procs {
		iw.str(pr.Name)
		iw.uvarint(uint64(pr.Start))
		iw.uvarint(uint64(pr.End))
	}

	// Maps are serialized in sorted order for deterministic images.
	labels := make([]string, 0, len(p.Labels))
	for name := range p.Labels {
		labels = append(labels, name)
	}
	sort.Strings(labels)
	iw.uvarint(uint64(len(labels)))
	for _, name := range labels {
		iw.str(name)
		iw.uvarint(uint64(p.Labels[name]))
	}

	syms := make([]string, 0, len(p.DataSyms))
	for name := range p.DataSyms {
		syms = append(syms, name)
	}
	sort.Strings(syms)
	iw.uvarint(uint64(len(syms)))
	for _, name := range syms {
		iw.str(name)
		iw.uvarint(p.DataSyms[name])
	}

	if iw.err != nil {
		return iw.err
	}
	return iw.w.Flush()
}

type imageReader struct {
	r *bufio.Reader
}

func (ir *imageReader) uvarint() (uint64, error) {
	return binary.ReadUvarint(ir.r)
}

func (ir *imageReader) str() (string, error) {
	n, err := ir.uvarint()
	if err != nil {
		return "", err
	}
	if n > imageMaxStrings {
		return "", fmt.Errorf("program: string length %d too large", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(ir.r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

// Load reads a program image written by Save and validates it.
func Load(r io.Reader) (*Program, error) {
	ir := &imageReader{r: bufio.NewReader(r)}
	var hdr [4]byte
	if _, err := io.ReadFull(ir.r, hdr[:]); err != nil {
		return nil, fmt.Errorf("program: reading image header: %w", err)
	}
	if hdr != imageMagic {
		return nil, errors.New("program: not a VPX1 program image")
	}
	p := &Program{
		Labels:   make(map[string]int),
		DataSyms: make(map[string]uint64),
	}
	fail := func(section string, err error) (*Program, error) {
		return nil, fmt.Errorf("program: image %s section: %w", section, err)
	}

	entry, err := ir.uvarint()
	if err != nil {
		return fail("entry", err)
	}
	p.Entry = int(entry)
	if p.DataAddr, err = ir.uvarint(); err != nil {
		return fail("dataAddr", err)
	}

	nCode, err := ir.uvarint()
	if err != nil || nCode > imageMaxStrings {
		return fail("code", orSize(err, nCode))
	}
	p.Code = make([]isa.Inst, nCode)
	for i := range p.Code {
		w, err := ir.uvarint()
		if err != nil {
			return fail("code", err)
		}
		in, err := isa.Decode(isa.Word(w))
		if err != nil {
			return fail("code", err)
		}
		p.Code[i] = in
	}

	nData, err := ir.uvarint()
	if err != nil || nData > 1<<30 {
		return fail("data", orSize(err, nData))
	}
	p.Data = make([]byte, nData)
	if _, err := io.ReadFull(ir.r, p.Data); err != nil {
		return fail("data", err)
	}

	nProcs, err := ir.uvarint()
	if err != nil || nProcs > imageMaxStrings {
		return fail("procs", orSize(err, nProcs))
	}
	for i := uint64(0); i < nProcs; i++ {
		name, err := ir.str()
		if err != nil {
			return fail("procs", err)
		}
		start, err := ir.uvarint()
		if err != nil {
			return fail("procs", err)
		}
		end, err := ir.uvarint()
		if err != nil {
			return fail("procs", err)
		}
		p.Procs = append(p.Procs, Proc{Name: name, Start: int(start), End: int(end)})
	}

	nLabels, err := ir.uvarint()
	if err != nil || nLabels > imageMaxStrings {
		return fail("labels", orSize(err, nLabels))
	}
	for i := uint64(0); i < nLabels; i++ {
		name, err := ir.str()
		if err != nil {
			return fail("labels", err)
		}
		pc, err := ir.uvarint()
		if err != nil {
			return fail("labels", err)
		}
		p.Labels[name] = int(pc)
	}

	nSyms, err := ir.uvarint()
	if err != nil || nSyms > imageMaxStrings {
		return fail("syms", orSize(err, nSyms))
	}
	for i := uint64(0); i < nSyms; i++ {
		name, err := ir.str()
		if err != nil {
			return fail("syms", err)
		}
		addr, err := ir.uvarint()
		if err != nil {
			return fail("syms", err)
		}
		p.DataSyms[name] = addr
	}

	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("program: loaded image invalid: %w", err)
	}
	return p, nil
}

func orSize(err error, n uint64) error {
	if err != nil {
		return err
	}
	return fmt.Errorf("section size %d too large", n)
}
