// Package program models a loaded VRISC executable: its code and data
// segments, procedure table, labels, basic blocks and control-flow
// graph. It is the object that ATOM-style instrumentation tools
// (internal/atom) traverse, mirroring how the paper's profiler walked
// the elements of an Alpha executable.
package program

import (
	"fmt"
	"sort"
	"sync"

	"valueprof/internal/isa"
)

// DataBase is the address at which the assembler places the data
// segment. Addresses below it fault, which catches null-pointer style
// bugs in generated code.
const DataBase = 0x1000

// Proc is one procedure: the half-open instruction range [Start, End).
type Proc struct {
	Name  string
	Start int
	End   int
}

// Program is a fully linked VRISC executable.
type Program struct {
	Code     []isa.Inst
	Data     []byte
	DataAddr uint64 // base address of Data (DataBase unless overridden)
	Entry    int    // instruction index where execution starts
	Procs    []Proc // sorted by Start, non-overlapping
	Labels   map[string]int
	DataSyms map[string]uint64

	// siteNames interns the rendered per-pc site names. One shared
	// immutable Program backs every profiling job of a workload, and
	// re-rendering thousands of "proc+offset" strings on each job
	// dominated the pooled per-job allocation count; the table is
	// built once, on first use, safely under concurrent callers.
	nameOnce  sync.Once
	siteNames []string
}

// Validate checks structural invariants: targets in range, procedures
// sorted and within the code segment, entry valid.
func (p *Program) Validate() error {
	if p.Entry < 0 || p.Entry >= len(p.Code) {
		return fmt.Errorf("program: entry %d out of range [0,%d)", p.Entry, len(p.Code))
	}
	for pc, in := range p.Code {
		if !in.Op.Valid() {
			return fmt.Errorf("program: invalid opcode at pc %d", pc)
		}
		if tgt, ok := in.Target(); ok {
			if tgt < 0 || tgt >= len(p.Code) {
				return fmt.Errorf("program: pc %d (%s) targets %d, out of range", pc, in, tgt)
			}
		}
	}
	prevEnd := 0
	for i, pr := range p.Procs {
		if pr.Start < prevEnd || pr.End < pr.Start || pr.End > len(p.Code) {
			return fmt.Errorf("program: procedure %q range [%d,%d) invalid (previous end %d)", pr.Name, pr.Start, pr.End, prevEnd)
		}
		if pr.Name == "" {
			return fmt.Errorf("program: procedure %d has no name", i)
		}
		prevEnd = pr.End
	}
	return nil
}

// ProcAt returns the procedure containing instruction index pc, or nil.
func (p *Program) ProcAt(pc int) *Proc {
	i := sort.Search(len(p.Procs), func(i int) bool { return p.Procs[i].End > pc })
	if i < len(p.Procs) && pc >= p.Procs[i].Start {
		return &p.Procs[i]
	}
	return nil
}

// ProcByName returns the named procedure, or nil.
func (p *Program) ProcByName(name string) *Proc {
	for i := range p.Procs {
		if p.Procs[i].Name == name {
			return &p.Procs[i]
		}
	}
	return nil
}

// LabelAt returns a label mapping exactly to pc, preferring procedure
// names; used by reports to render sites symbolically.
func (p *Program) LabelAt(pc int) string {
	if pr := p.ProcAt(pc); pr != nil && pr.Start == pc {
		return pr.Name
	}
	best := ""
	for name, at := range p.Labels {
		if at == pc && (best == "" || name < best) {
			best = name
		}
	}
	return best
}

// SiteName renders instruction index pc as "proc+offset" for reports.
// Names for in-range pcs come from a per-program interned table (see
// the siteNames field); out-of-range pcs keep the uncached render.
func (p *Program) SiteName(pc int) string {
	if pc < 0 || pc >= len(p.Code) {
		return fmt.Sprintf("pc%d", pc)
	}
	p.nameOnce.Do(p.buildSiteNames)
	return p.siteNames[pc]
}

func (p *Program) buildSiteNames() {
	names := make([]string, len(p.Code))
	for pc := range names {
		if pr := p.ProcAt(pc); pr != nil {
			names[pc] = fmt.Sprintf("%s+%d", pr.Name, pc-pr.Start)
		} else {
			names[pc] = fmt.Sprintf("pc%d", pc)
		}
	}
	p.siteNames = names
}

// BasicBlock is a maximal straight-line instruction range [Start, End)
// and the indices (into the owning BlockSet) of its CFG successors.
type BasicBlock struct {
	Start int
	End   int
	Succs []int
}

// BlockSet is the basic-block decomposition of a program.
type BlockSet struct {
	Blocks  []BasicBlock
	byStart map[int]int // leader pc -> block index
}

// BlockAt returns the index of the block whose leader is pc, or -1.
func (bs *BlockSet) BlockAt(pc int) int {
	if i, ok := bs.byStart[pc]; ok {
		return i
	}
	return -1
}

// BlockContaining returns the index of the block containing pc, or -1.
func (bs *BlockSet) BlockContaining(pc int) int {
	i := sort.Search(len(bs.Blocks), func(i int) bool { return bs.Blocks[i].End > pc })
	if i < len(bs.Blocks) && pc >= bs.Blocks[i].Start {
		return i
	}
	return -1
}

// BasicBlocks computes the basic blocks and CFG of the whole program
// using standard leader analysis: the entry, every branch target, and
// every instruction following a control-flow instruction start a block.
// Procedure starts are also leaders so blocks never straddle procedures.
func (p *Program) BasicBlocks() *BlockSet {
	n := len(p.Code)
	leader := make([]bool, n+1)
	if n == 0 {
		return &BlockSet{byStart: map[int]int{}}
	}
	leader[0] = true
	leader[p.Entry] = true
	for _, pr := range p.Procs {
		if pr.Start < n {
			leader[pr.Start] = true
		}
	}
	for pc, in := range p.Code {
		if tgt, ok := in.Target(); ok {
			leader[tgt] = true
		}
		if in.IsBranchOrJump() && pc+1 <= n {
			leader[pc+1] = true
		}
	}

	bs := &BlockSet{byStart: make(map[int]int)}
	start := 0
	for pc := 1; pc <= n; pc++ {
		if pc == n || leader[pc] {
			bs.byStart[start] = len(bs.Blocks)
			bs.Blocks = append(bs.Blocks, BasicBlock{Start: start, End: pc})
			start = pc
		}
	}

	for i := range bs.Blocks {
		b := &bs.Blocks[i]
		last := p.Code[b.End-1]
		addSucc := func(pc int) {
			if j, ok := bs.byStart[pc]; ok {
				b.Succs = append(b.Succs, j)
			}
		}
		switch last.Op {
		case isa.OpBr:
			addSucc(int(last.Imm))
		case isa.OpBeq, isa.OpBne:
			addSucc(int(last.Imm))
			addSucc(b.End)
		case isa.OpJsr:
			// A call returns to the next instruction; for intra-
			// procedural CFG purposes treat fall-through as the
			// successor (the callee graph is reached via Target).
			addSucc(b.End)
		case isa.OpJsrr:
			addSucc(b.End)
		case isa.OpJmp, isa.OpRet:
			// Indirect: no static successors.
		case isa.OpSyscall:
			if last.Imm != isa.SysExit {
				addSucc(b.End)
			}
		default:
			addSucc(b.End)
		}
	}
	return bs
}

// Clone returns a deep copy of the program; the specializer mutates
// clones so the original stays intact.
func (p *Program) Clone() *Program {
	q := &Program{
		Code:     append([]isa.Inst(nil), p.Code...),
		Data:     append([]byte(nil), p.Data...),
		DataAddr: p.DataAddr,
		Entry:    p.Entry,
		Procs:    append([]Proc(nil), p.Procs...),
		Labels:   make(map[string]int, len(p.Labels)),
		DataSyms: make(map[string]uint64, len(p.DataSyms)),
	}
	for k, v := range p.Labels {
		q.Labels[k] = v
	}
	for k, v := range p.DataSyms {
		q.DataSyms[k] = v
	}
	return q
}

// Disassemble renders the program listing with labels, one instruction
// per line, for debugging and golden tests.
func (p *Program) Disassemble() string {
	out := make([]byte, 0, 16*len(p.Code))
	for pc, in := range p.Code {
		if pr := p.ProcAt(pc); pr != nil && pr.Start == pc {
			out = append(out, fmt.Sprintf("%s:\n", pr.Name)...)
		}
		out = append(out, fmt.Sprintf("%5d\t%s\n", pc, in)...)
	}
	return string(out)
}
