package supervise

import "sync"

// breaker is the pool's circuit breaker: after threshold consecutive
// permanently-failed jobs in one group, the group is quarantined and
// later jobs of the same group are refused without running. The count
// is job-based, not time-based, so behavior is deterministic for a
// given job order; a successful (or merely transient) job resets its
// group's count.
//
// There is deliberately no automatic half-open probe: within one batch
// a permanently-broken program stays broken, and a new batch starts
// with a fresh breaker.
type breaker struct {
	threshold int
	mu        sync.Mutex
	counts    map[string]int
	open      map[string]bool
}

func newBreaker(threshold int) *breaker {
	return &breaker{
		threshold: threshold,
		counts:    make(map[string]int),
		open:      make(map[string]bool),
	}
}

// allow reports whether a job of the given group may run.
func (b *breaker) allow(group string) bool {
	if b.threshold <= 0 {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return !b.open[group]
}

// record folds one finished job into the group's state.
func (b *breaker) record(group string, permanent bool) {
	if b.threshold <= 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if !permanent {
		b.counts[group] = 0
		return
	}
	b.counts[group]++
	if b.counts[group] >= b.threshold {
		b.open[group] = true
	}
}

// Open reports the quarantined groups (for reports and tests).
func (b *breaker) Open() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	var out []string
	for g := range b.open {
		out = append(out, g)
	}
	return out
}
