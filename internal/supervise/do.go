package supervise

import (
	"context"
	"time"
)

// DoResult summarizes a generic supervised call.
type DoResult struct {
	Attempts int
	// Err is the last attempt's error, nil on success.
	Err error
}

// Do runs fn under the policy's attempt, backoff, and budget rules —
// the generic sibling of Run for work that is not a profiling job
// (vexp supervises whole experiment runs with it). Every error is
// treated as retryable; fn receives a context carrying the per-attempt
// deadline (bounded by the total budget) and the 1-based attempt
// number. Checkpoint resume, salvage, and the breaker do not apply.
func Do(ctx context.Context, policy Policy, fn func(ctx context.Context, attempt int) error) DoResult {
	if ctx == nil {
		ctx = context.Background()
	}
	p := policy.withDefaults()
	start := time.Now()
	res := DoResult{}
	for attempt := 1; attempt <= p.MaxAttempts; attempt++ {
		if d := p.backoff(0, attempt); d > 0 {
			t := time.NewTimer(d)
			select {
			case <-ctx.Done():
				t.Stop()
				res.Err = ctx.Err()
				return res
			case <-t.C:
			}
		}
		if err := ctx.Err(); err != nil {
			res.Err = err
			return res
		}
		if p.TotalBudget > 0 && time.Since(start) >= p.TotalBudget {
			if res.Err == nil {
				res.Err = context.DeadlineExceeded
			}
			return res
		}

		actx := ctx
		cancel := context.CancelFunc(func() {})
		deadline := time.Time{}
		if p.AttemptDeadline > 0 {
			deadline = time.Now().Add(p.AttemptDeadline)
		}
		if p.TotalBudget > 0 {
			if d := start.Add(p.TotalBudget); deadline.IsZero() || d.Before(deadline) {
				deadline = d
			}
		}
		if !deadline.IsZero() {
			actx, cancel = context.WithDeadline(ctx, deadline)
		}
		err := fn(actx, attempt)
		cancel()
		res.Attempts = attempt
		res.Err = err
		if err == nil {
			return res
		}
	}
	return res
}
