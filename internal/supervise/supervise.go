// Package supervise turns the one-shot profiling jobs of
// internal/parallel into managed, retryable, budgeted work — the job
// runtime the future vprofd daemon will mount, consumed today by
// vprof -jobs and vexp.
//
// Each supervised job runs under a Policy: a bounded number of
// attempts with exponential backoff and deterministic seeded jitter,
// a per-attempt wall-clock deadline and instruction budget (reusing
// the vm control plane from internal/atom), and a total wall-clock
// budget for the whole job. A failed attempt is classified — transient
// fault, permanent error, or budget exhaustion — and only transient
// failures are retried. Between attempts the supervisor carries the
// run's last VPCKPT1 checkpoint in memory, so a retry resumes where
// the previous attempt died instead of restarting; the checkpoint
// round-trips through its serialized form, so the integrity envelope
// (magic, CRC) guards resume exactly as it guards the on-disk path,
// and a corrupt checkpoint demotes the retry to a fresh start rather
// than poisoning it. Because both the resume path and a from-scratch
// rerun are deterministic, a job that eventually completes produces a
// profile byte-identical to its fault-free run.
//
// When budgets run out the supervisor degrades instead of failing the
// batch: with Policy.SalvagePartial it keeps the best partial profile
// and marks the record with the Salvaged provenance field. A circuit
// breaker quarantines a job group after K consecutive permanent
// failures so one bad program cannot starve the pool. See
// docs/robustness.md for the full state machine.
package supervise

import (
	"bytes"
	"context"
	"fmt"
	"time"

	"valueprof/internal/atom"
	"valueprof/internal/core"
	"valueprof/internal/parallel"
	"valueprof/internal/program"
	"valueprof/internal/vm"
)

// Class classifies one attempt's ending, deciding what the supervisor
// does next.
type Class int

const (
	// ClassSuccess: the attempt completed and passed its output check.
	ClassSuccess Class = iota
	// ClassRetryable: a transient-looking failure (injected fault,
	// cancellation, first deadline/limit overrun) worth another attempt.
	ClassRetryable
	// ClassPermanent: retrying cannot help — setup failure, output
	// mismatch, or a deterministic guest fault (same site, same
	// instruction count, two attempts in a row).
	ClassPermanent
	// ClassBudget: the job's budget is exhausted, or a resumed attempt
	// made no forward progress so more budget would be wasted.
	ClassBudget
	// ClassAborted: the supervisor's own context was cancelled.
	ClassAborted
)

func (c Class) String() string {
	switch c {
	case ClassSuccess:
		return "success"
	case ClassRetryable:
		return "retryable"
	case ClassPermanent:
		return "permanent"
	case ClassBudget:
		return "budget"
	case ClassAborted:
		return "aborted"
	}
	return fmt.Sprintf("Class(%d)", int(c))
}

// State is a supervised job's final disposition.
type State int

const (
	// StateCompleted: some attempt ran to completion.
	StateCompleted State = iota
	// StateSalvaged: no attempt completed, but a partial profile was
	// kept under Policy.SalvagePartial.
	StateSalvaged
	// StateFailed: no attempt completed and nothing was salvaged.
	StateFailed
	// StateQuarantined: the circuit breaker refused to run the job.
	StateQuarantined
	// StateAborted: the supervisor context was cancelled before the
	// job could finish its attempts.
	StateAborted
)

func (s State) String() string {
	switch s {
	case StateCompleted:
		return "completed"
	case StateSalvaged:
		return "salvaged"
	case StateFailed:
		return "failed"
	case StateQuarantined:
		return "quarantined"
	case StateAborted:
		return "aborted"
	}
	return fmt.Sprintf("State(%d)", int(s))
}

// Chaos injects failures into supervised runs for testing. It is
// satisfied structurally (faultinject.PoolChaos implements it without
// importing this package): AttemptTool returns the tool to attach to
// one job attempt (nil for no injection), and MangleCheckpoint may
// corrupt the serialized checkpoint carried between attempts.
type Chaos interface {
	AttemptTool(job, attempt int) atom.Tool
	MangleCheckpoint(job, attempt int, data []byte) []byte
}

// Policy bounds and shapes a supervised job's attempts.
type Policy struct {
	// MaxAttempts caps runs of one job; ≤ 0 means a single attempt.
	MaxAttempts int
	// AttemptDeadline bounds one attempt's wall-clock time; 0 = none.
	AttemptDeadline time.Duration
	// AttemptSteps bounds one attempt's executed instructions, counted
	// from its resume point (vm.StepLimit is absolute, so the
	// supervisor adds the checkpoint's instruction count); 0 = none.
	AttemptSteps uint64
	// TotalBudget bounds the whole job across attempts and backoff;
	// 0 = none.
	TotalBudget time.Duration
	// BackoffBase is the first retry delay, doubled per attempt up to
	// BackoffMax, with deterministic jitter seeded from Seed; 0
	// retries immediately.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// Seed drives the backoff jitter (and nothing else), so a given
	// (seed, job, attempt) always waits the same duration.
	Seed uint64
	// Resume carries a checkpoint between attempts so retries continue
	// instead of restarting. Resume is silently disabled for jobs
	// whose profiler options include state that checkpoints do not
	// capture (convergent or custom sampling, full-profile ground
	// truth); those jobs retry from scratch, which is equally
	// deterministic.
	Resume bool
	// SalvagePartial keeps the best partial profile of a job whose
	// attempts ran out, marking its record Salvaged, instead of
	// returning only an error.
	SalvagePartial bool
	// BreakerThreshold quarantines a job group after this many
	// consecutive permanently-failed jobs; 0 disables the breaker.
	BreakerThreshold int
	// Chaos, when non-nil, injects failures (testing only).
	Chaos Chaos
}

func (p Policy) withDefaults() Policy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 1
	}
	if p.BackoffMax <= 0 {
		p.BackoffMax = 2 * time.Second
	}
	return p
}

// backoff returns the deterministic retry delay before the given
// attempt (attempt 2 waits one BackoffBase-ish unit, doubling after).
func (p *Policy) backoff(job, attempt int) time.Duration {
	if p.BackoffBase <= 0 || attempt <= 1 {
		return 0
	}
	d := p.BackoffBase
	for i := 2; i < attempt && d < p.BackoffMax; i++ {
		d *= 2
	}
	if d > p.BackoffMax {
		d = p.BackoffMax
	}
	// Half fixed, half jitter: spreads a herd of retries without ever
	// waiting more than d.
	s := p.Seed ^ uint64(job)*0x9e3779b97f4a7c15 ^ uint64(attempt)
	return d/2 + time.Duration(splitmix64(&s)%uint64(d/2+1))
}

// splitmix64 is the standard 64-bit mix (same generator the
// fault-injection harness uses for its plans).
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d649bb133111eb
	return z ^ (z >> 31)
}

// Job is one supervised profiling run. Unlike parallel.Job it holds
// the program directly, so the compile step (a permanent failure when
// it breaks) happens once, before supervision starts.
type Job struct {
	// Name labels the program for records and errors; InputName labels
	// the input.
	Name      string
	InputName string
	// Group keys the circuit breaker; empty defaults to Name.
	Group string
	Prog  *program.Program
	Input []int64
	// Want, when non-empty, is the expected program output; a mismatch
	// on a completed run is a permanent failure.
	Want    string
	Options core.Options
	// Run carries the control-plane settings; Run.Input is ignored —
	// the job's Input wins.
	Run atom.RunOptions
}

func (j *Job) label() string { return j.Name + "/" + j.InputName }

func (j *Job) group() string {
	if j.Group != "" {
		return j.Group
	}
	return j.Name
}

// JobOf converts a pool job to a supervised one, compiling its
// workload up front.
func JobOf(j parallel.Job) (Job, error) {
	prog, err := j.Workload.Compile()
	if err != nil {
		return Job{}, fmt.Errorf("supervise: compiling %s: %w", j.Workload.Name, err)
	}
	return Job{
		Name:      j.Workload.Name,
		InputName: j.Input.Name,
		Prog:      prog,
		Input:     j.Input.Args,
		Want:      j.Input.Want,
		Options:   j.Options,
		Run:       j.Run,
	}, nil
}

// JobReport is one supervised job's outcome.
type JobReport struct {
	Job      Job
	Index    int
	State    State
	Class    Class
	Attempts int
	// Resumed counts attempts that continued from a checkpoint;
	// CorruptCheckpoints counts carried checkpoints that failed their
	// integrity check on resume (each demotes that retry to a fresh
	// start).
	Resumed            int
	CorruptCheckpoints int
	// Outcome and Err describe the last attempt (Err is nil iff the
	// job completed).
	Outcome vm.RunOutcome
	Err     error
	// Profile is the completed profile, or the salvaged partial one
	// when State is StateSalvaged; nil otherwise. Exec summarizes the
	// same attempt's execution.
	Profile *core.Profile
	Exec    *vm.Result
}

// Usable reports whether the job produced a profile worth merging.
func (r *JobReport) Usable() bool {
	return r.Profile != nil && (r.State == StateCompleted || r.State == StateSalvaged)
}

// Record serializes the job's profile with its supervision provenance:
// the last outcome, the attempt count, and the Salvaged mark when the
// profile is partial. Nil when the job has no usable profile.
func (r *JobReport) Record() *core.ProfileRecord {
	if !r.Usable() {
		return nil
	}
	rec := r.Profile.Record(r.Job.Name, r.Job.InputName)
	rec.Attempts = r.Attempts
	if r.State == StateSalvaged {
		rec.Outcome = r.Outcome.String()
		rec.Salvaged = true
	}
	return rec
}

// Report is the outcome of one supervised batch.
type Report struct {
	Jobs []JobReport
	// Tallies by final state.
	Completed, Salvaged, Failed, Quarantined, Aborted int
}

// FirstError returns the lowest-index job error wrapped with the job's
// label, or nil.
func (rep *Report) FirstError() error {
	for i := range rep.Jobs {
		if rep.Jobs[i].Err != nil {
			return fmt.Errorf("profiling %s: %w", rep.Jobs[i].Job.label(), rep.Jobs[i].Err)
		}
	}
	return nil
}

// MergeUsable folds every usable profile (completed and salvaged
// jobs, in job order) into one, reporting whether the merge is
// degraded — i.e. includes salvaged partials or omits failed jobs.
// It fails only when nothing at all is usable.
func (rep *Report) MergeUsable() (*core.Profile, bool, error) {
	var merged *core.Profile
	degraded := false
	for i := range rep.Jobs {
		r := &rep.Jobs[i]
		if !r.Usable() {
			degraded = true
			continue
		}
		if r.State == StateSalvaged {
			degraded = true
		}
		if merged == nil {
			merged = r.Profile
			continue
		}
		var err error
		merged, err = merged.Merge(r.Profile)
		if err != nil {
			return nil, degraded, fmt.Errorf("supervise: merging %s: %w", r.Job.label(), err)
		}
	}
	if merged == nil {
		return nil, degraded, fmt.Errorf("supervise: no usable profiles to merge")
	}
	return merged, degraded, nil
}

// Run executes jobs under policy on at most workers goroutines (≤ 0
// selects GOMAXPROCS), returning one JobReport per job in job order.
// Like parallel.Run it never fails as a whole.
func Run(ctx context.Context, workers int, jobs []Job, policy Policy) *Report {
	if ctx == nil {
		ctx = context.Background()
	}
	s := &supervisor{
		ctx:     ctx,
		policy:  policy.withDefaults(),
		breaker: newBreaker(policy.BreakerThreshold),
	}
	rep := &Report{Jobs: parallel.Map(workers, len(jobs), func(i int) JobReport {
		return s.runJob(jobs[i], i)
	})}
	for i := range rep.Jobs {
		switch rep.Jobs[i].State {
		case StateCompleted:
			rep.Completed++
		case StateSalvaged:
			rep.Salvaged++
		case StateFailed:
			rep.Failed++
		case StateQuarantined:
			rep.Quarantined++
		case StateAborted:
			rep.Aborted++
		}
	}
	return rep
}

type supervisor struct {
	ctx     context.Context
	policy  Policy
	breaker *breaker
}

// attemptOut is what one attempt hands back to the retry loop.
type attemptOut struct {
	outcome vm.RunOutcome
	err     error
	profile *core.Profile
	exec    *vm.Result
	// inst is the instruction count the attempt reached; base is the
	// count it resumed from (0 for a fresh start). faultPC locates a
	// guest fault for the deterministic-fault check.
	inst    uint64
	base    uint64
	faultPC int
	resumed bool
	// permanent marks failures no retry can fix (setup, output
	// mismatch).
	permanent bool
	// ck is the serialized salvage checkpoint for the next attempt
	// (nil when the run completed or capture failed).
	ck []byte
}

func (s *supervisor) runJob(job Job, index int) JobReport {
	rep := JobReport{Job: job, Index: index}
	if !s.breaker.allow(job.group()) {
		rep.State = StateQuarantined
		rep.Class = ClassPermanent
		rep.Outcome = vm.OutcomeCancelled
		rep.Err = fmt.Errorf("supervise: %s quarantined: breaker open for group %q", job.label(), job.group())
		return rep
	}

	start := time.Now()
	var carried []byte // serialized checkpoint from the last attempt
	var prev *attemptOut
	var last *attemptOut
	class := ClassRetryable

	for attempt := 1; attempt <= s.policy.MaxAttempts; attempt++ {
		if err := s.sleepBackoff(index, attempt); err != nil {
			class = ClassAborted
			break
		}
		if s.policy.TotalBudget > 0 && time.Since(start) >= s.policy.TotalBudget {
			class = ClassBudget
			break
		}
		a := s.attempt(&job, index, attempt, start, carried, &rep)
		rep.Attempts = attempt
		last = a
		carried = a.ck
		class = s.classify(a, prev)
		prev = a
		if class != ClassRetryable {
			break
		}
	}

	if last != nil {
		rep.Outcome = last.outcome
		rep.Err = last.err
		rep.Exec = last.exec
	}
	rep.Class = class
	switch {
	case class == ClassSuccess:
		rep.State = StateCompleted
		rep.Profile = last.profile
	case class == ClassAborted:
		rep.State = StateAborted
		if rep.Err == nil {
			rep.Err = s.ctx.Err()
		}
		if s.policy.SalvagePartial && last != nil && last.profile != nil {
			rep.State = StateSalvaged
			rep.Profile = last.profile
		}
	case s.policy.SalvagePartial && last != nil && last.profile != nil:
		rep.State = StateSalvaged
		rep.Profile = last.profile
	default:
		rep.State = StateFailed
		if rep.Err == nil { // budget exhausted before the first attempt
			rep.Err = fmt.Errorf("supervise: %s: total budget %v exhausted", job.label(), s.policy.TotalBudget)
		}
	}
	if class == ClassRetryable { // attempts ran out on a transient failure
		rep.Class = ClassBudget
	}
	s.breaker.record(job.group(), rep.Class == ClassPermanent)
	return rep
}

// sleepBackoff waits the deterministic backoff delay before attempt,
// honoring supervisor cancellation.
func (s *supervisor) sleepBackoff(index, attempt int) error {
	d := s.policy.backoff(index, attempt)
	if d <= 0 {
		return s.ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-s.ctx.Done():
		return s.ctx.Err()
	case <-t.C:
		return nil
	}
}

// canResume reports whether a job's profiler state is fully captured
// by checkpoints. Convergent/custom sampling and full-profile ground
// truth keep state outside the checkpoint, so resuming them would
// diverge from an uninterrupted run.
func canResume(opts core.Options) bool {
	return opts.Convergent == nil && opts.Sampler == nil && !opts.TrackFull
}

// attempt executes one run of the job, resuming from the carried
// checkpoint when possible, and captures a fresh checkpoint when the
// run stops early.
func (s *supervisor) attempt(job *Job, index, attempt int, start time.Time, carried []byte, rep *JobReport) *attemptOut {
	a := &attemptOut{}

	// Decode the carried checkpoint through the same strict integrity
	// gate the on-disk loader uses; damage demotes this attempt to a
	// fresh start.
	var resume *core.Checkpoint
	if s.policy.Resume && carried != nil && canResume(job.Options) {
		ck, err := core.ReadCheckpoint(bytes.NewReader(carried))
		if err != nil || ck.VM == nil {
			rep.CorruptCheckpoints++
		} else {
			resume = ck
		}
	}

	// Attempt state comes from the shared parallel arena: retries of
	// the same job (and successive jobs on the same worker) reuse the
	// VM memory image and profiler maps instead of reallocating them.
	vp, err := parallel.AcquireProfiler(job.Options)
	if err != nil {
		a.outcome, a.err, a.permanent = vm.OutcomeFaulted, err, true
		return a
	}
	if resume != nil {
		if err := vp.Seed(resume); err != nil {
			// A checkpoint that passed CRC but mismatches the profiler
			// configuration is as good as corrupt.
			rep.CorruptCheckpoints++
			resume = nil
			if err := vp.ResetFor(job.Options); err != nil {
				a.outcome, a.err, a.permanent = vm.OutcomeFaulted, err, true
				return a
			}
		}
	}

	opts := job.Run
	opts.Input = job.Input
	deadline := opts.Deadline
	if s.policy.AttemptDeadline > 0 {
		d := time.Now().Add(s.policy.AttemptDeadline)
		if deadline.IsZero() || d.Before(deadline) {
			deadline = d
		}
	}
	if s.policy.TotalBudget > 0 {
		d := start.Add(s.policy.TotalBudget)
		if deadline.IsZero() || d.Before(deadline) {
			deadline = d
		}
	}
	opts.Deadline = deadline
	if resume != nil {
		a.base = resume.InstCount()
	}
	if s.policy.AttemptSteps > 0 {
		limit := a.base + s.policy.AttemptSteps
		if opts.StepLimit == 0 || limit < opts.StepLimit {
			opts.StepLimit = limit
		}
	}

	tools := []atom.Tool{atom.Tool(vp)}
	if s.policy.Chaos != nil {
		if t := s.policy.Chaos.AttemptTool(index, attempt); t != nil {
			tools = append(tools, t)
		}
	}
	v := parallel.AcquireVM(job.Prog, opts.EffectiveMemSize())
	atom.PrepareOn(v, opts, tools...)
	if resume != nil {
		if err := resume.RestoreVM(v); err != nil {
			// Machine state decoded but won't restore: treat like
			// corruption and restart the attempt from scratch. The
			// half-restored VM rewinds through the same reuse lifecycle
			// a pooled VM does.
			rep.CorruptCheckpoints++
			if err := vp.ResetFor(job.Options); err != nil {
				parallel.ReleaseVM(v)
				a.outcome, a.err, a.permanent = vm.OutcomeFaulted, err, true
				return a
			}
			a.base = 0
			resume = nil
			v.ResetFor(job.Prog, opts.EffectiveMemSize())
			atom.PrepareOn(v, opts, tools...)
		} else {
			a.resumed = true
			rep.Resumed++
		}
	}

	outcome, err := v.RunControlled(s.ctx)
	a.outcome, a.err = outcome, err
	a.exec = vm.ResultOf(v, outcome)
	a.profile = vp.Profile()
	a.inst = v.InstCount
	a.faultPC = v.PC
	if outcome == vm.OutcomeCompleted && job.Want != "" && a.exec.Output != job.Want {
		a.err = fmt.Errorf("supervise: %s output mismatch:\n got %q\nwant %q", job.label(), a.exec.Output, job.Want)
		a.permanent = true
	}

	// Capture the salvage checkpoint for the next attempt. The bytes
	// go through the real serializer so the chaos harness can corrupt
	// them exactly as a torn disk write would.
	if outcome != vm.OutcomeCompleted {
		if ck, err := core.CheckpointOf(vp, v, job.Name, job.InputName); err == nil {
			var buf bytes.Buffer
			if core.WriteCheckpoint(&buf, ck) == nil {
				a.ck = buf.Bytes()
				if s.policy.Chaos != nil {
					a.ck = s.policy.Chaos.MangleCheckpoint(index, attempt, a.ck)
				}
			}
		}
	}
	// Everything the attempt hands back (exec summary, profile,
	// checkpoint bytes) is copied or extracted; the VM and profiler go
	// back to the arena for the next attempt or job.
	parallel.ReleaseVM(v)
	parallel.ReleaseProfiler(vp)
	return a
}

// classify decides what one attempt's ending means for the job.
func (s *supervisor) classify(a, prev *attemptOut) Class {
	switch a.outcome {
	case vm.OutcomeCompleted:
		if a.err != nil {
			return ClassPermanent // output mismatch
		}
		return ClassSuccess
	case vm.OutcomeCancelled:
		if s.ctx.Err() != nil {
			return ClassAborted
		}
		return ClassRetryable // injected or spurious cancellation
	case vm.OutcomeFaulted:
		if a.permanent {
			return ClassPermanent
		}
		// The same fault at the same site and instruction count two
		// attempts in a row is deterministic guest behavior, not a
		// transient: retrying it is wasted budget.
		if prev != nil && prev.outcome == vm.OutcomeFaulted &&
			prev.faultPC == a.faultPC && prev.inst == a.inst {
			return ClassPermanent
		}
		return ClassRetryable
	case vm.OutcomeDeadline, vm.OutcomeLimit:
		// A resumed attempt that could not advance past its resume
		// point will never finish under this budget.
		if a.resumed && a.inst <= a.base {
			return ClassBudget
		}
		return ClassRetryable
	}
	return ClassRetryable
}
