package supervise

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"

	"valueprof/internal/asm"
	"valueprof/internal/atom"
	"valueprof/internal/core"
	"valueprof/internal/faultinject"
	"valueprof/internal/parallel"
	"valueprof/internal/program"
	"valueprof/internal/vm"
	"valueprof/internal/workloads"
)

// loopSrc is a deterministic ~5k-instruction workload: an input-seeded
// countdown whose profiled values vary per iteration, printing the
// accumulated total so jobs have an output self-check.
const loopSrc = `
        .proc main
main:   syscall getint
        add t5, v0, zero
        li t4, 0
loop:   li t1, 7
        add t4, t4, t5
        add t2, t1, t5
        addi t5, t5, -1
        bne t5, loop
        add a0, t4, zero
        syscall putint
        addi a0, zero, 0
        syscall exit
        .endproc
`

const loopWant = "500500"

func loopProg(t *testing.T) *program.Program {
	t.Helper()
	prog, err := asm.Assemble(loopSrc)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func loopJob(t *testing.T) Job {
	return Job{
		Name:      "loop",
		InputName: "test",
		Prog:      loopProg(t),
		Input:     []int64{1000},
		Want:      loopWant,
		Options:   core.Options{TNV: core.DefaultTNVConfig()},
	}
}

// recordBytes serializes the report's profile record for byte-identity
// checks, zeroing the supervision provenance (a retried success is
// allowed to say it retried — the profile data must match).
func recordBytes(t *testing.T, r *JobReport) []byte {
	t.Helper()
	rec := r.Record()
	if rec == nil {
		t.Fatalf("job %s has no record (state %v, err %v)", r.Job.label(), r.State, r.Err)
	}
	rec.Attempts = 0
	var buf bytes.Buffer
	if err := rec.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// scriptedChaos injects per-(job, attempt) tools and checkpoint
// mangling from fixed tables.
type scriptedChaos struct {
	tools  map[[2]int]atom.Tool
	mangle func(job, attempt int, data []byte) []byte
}

func (c *scriptedChaos) AttemptTool(job, attempt int) atom.Tool {
	if c.tools == nil {
		return nil
	}
	return c.tools[[2]int{job, attempt}]
}

func (c *scriptedChaos) MangleCheckpoint(job, attempt int, data []byte) []byte {
	if c.mangle == nil {
		return data
	}
	return c.mangle(job, attempt, data)
}

func cleanBaseline(t *testing.T) []byte {
	t.Helper()
	rep := Run(context.Background(), 1, []Job{loopJob(t)}, Policy{})
	r := &rep.Jobs[0]
	if r.State != StateCompleted || r.Attempts != 1 || r.Err != nil {
		t.Fatalf("baseline run: %+v", r)
	}
	return recordBytes(t, r)
}

func TestRetryResumesAndMatchesFaultFreeRun(t *testing.T) {
	want := cleanBaseline(t)
	chaos := &scriptedChaos{tools: map[[2]int]atom.Tool{
		{0, 1}: faultinject.New(faultinject.Injection{At: 1500, Kind: faultinject.KindFault}),
	}}
	rep := Run(context.Background(), 1, []Job{loopJob(t)}, Policy{
		MaxAttempts: 3, Resume: true, Chaos: chaos,
	})
	r := &rep.Jobs[0]
	if r.State != StateCompleted || r.Class != ClassSuccess {
		t.Fatalf("state %v class %v err %v", r.State, r.Class, r.Err)
	}
	if r.Attempts != 2 || r.Resumed != 1 || r.CorruptCheckpoints != 0 {
		t.Fatalf("attempts %d resumed %d corrupt %d", r.Attempts, r.Resumed, r.CorruptCheckpoints)
	}
	if got := recordBytes(t, r); !bytes.Equal(got, want) {
		t.Error("resumed retry profile differs from fault-free run")
	}
	if rec := r.Record(); rec.Attempts != 2 || rec.Salvaged {
		t.Errorf("record provenance: %+v", rec)
	}
}

func TestRetryFromScratchWhenOptionsForbidResume(t *testing.T) {
	job := loopJob(t)
	job.Options.TrackFull = true // ground truth is not checkpointed
	base := Run(context.Background(), 1, []Job{job}, Policy{})
	want := recordBytes(t, &base.Jobs[0])

	chaos := &scriptedChaos{tools: map[[2]int]atom.Tool{
		{0, 1}: faultinject.New(faultinject.Injection{At: 1500, Kind: faultinject.KindFault}),
	}}
	job2 := loopJob(t)
	job2.Options.TrackFull = true
	rep := Run(context.Background(), 1, []Job{job2}, Policy{
		MaxAttempts: 3, Resume: true, Chaos: chaos,
	})
	r := &rep.Jobs[0]
	if r.State != StateCompleted || r.Resumed != 0 {
		t.Fatalf("state %v resumed %d err %v", r.State, r.Resumed, r.Err)
	}
	if got := recordBytes(t, r); !bytes.Equal(got, want) {
		t.Error("from-scratch retry profile differs from fault-free run")
	}
}

func TestCorruptCheckpointDemotesToFreshStart(t *testing.T) {
	want := cleanBaseline(t)
	chaos := &scriptedChaos{
		tools: map[[2]int]atom.Tool{
			{0, 1}: faultinject.New(faultinject.Injection{At: 1500, Kind: faultinject.KindFault}),
		},
		mangle: func(job, attempt int, data []byte) []byte {
			return data[:len(data)/2] // torn write
		},
	}
	rep := Run(context.Background(), 1, []Job{loopJob(t)}, Policy{
		MaxAttempts: 3, Resume: true, Chaos: chaos,
	})
	r := &rep.Jobs[0]
	if r.State != StateCompleted {
		t.Fatalf("state %v err %v", r.State, r.Err)
	}
	if r.Resumed != 0 || r.CorruptCheckpoints != 1 {
		t.Fatalf("resumed %d corrupt %d, want 0 and 1", r.Resumed, r.CorruptCheckpoints)
	}
	if got := recordBytes(t, r); !bytes.Equal(got, want) {
		t.Error("post-corruption retry profile differs from fault-free run")
	}
}

func TestDeterministicFaultEscalatesToPermanent(t *testing.T) {
	// The same fault at the same instruction count on both attempts
	// looks deterministic: the supervisor must stop burning budget.
	chaos := &scriptedChaos{tools: map[[2]int]atom.Tool{
		{0, 1}: faultinject.New(faultinject.Injection{At: 1500, Kind: faultinject.KindFault}),
		{0, 2}: faultinject.New(faultinject.Injection{At: 1500, Kind: faultinject.KindFault}),
	}}
	rep := Run(context.Background(), 1, []Job{loopJob(t)}, Policy{
		MaxAttempts: 5, Chaos: chaos, SalvagePartial: true,
	})
	r := &rep.Jobs[0]
	if r.Attempts != 2 || r.Class != ClassPermanent {
		t.Fatalf("attempts %d class %v, want 2 permanent", r.Attempts, r.Class)
	}
	if r.State != StateSalvaged || r.Profile == nil {
		t.Fatalf("state %v, want salvaged partial", r.State)
	}
	rec := r.Record()
	if !rec.Salvaged || rec.Outcome != "faulted" || rec.Attempts != 2 {
		t.Errorf("salvaged record provenance: %+v", rec)
	}
}

func TestOutputMismatchIsPermanent(t *testing.T) {
	job := loopJob(t)
	job.Want = "wrong"
	rep := Run(context.Background(), 1, []Job{job}, Policy{MaxAttempts: 4})
	r := &rep.Jobs[0]
	if r.Attempts != 1 || r.Class != ClassPermanent || r.State != StateFailed {
		t.Fatalf("attempts %d class %v state %v", r.Attempts, r.Class, r.State)
	}
	if r.Err == nil || !strings.Contains(r.Err.Error(), "mismatch") {
		t.Errorf("err: %v", r.Err)
	}
}

func TestStuckBudgetStopsRetrying(t *testing.T) {
	// An absolute step limit below the program length: every resumed
	// attempt stalls at the same instruction count, which the
	// supervisor must recognize as exhausted budget, not a transient.
	job := loopJob(t)
	job.Run.StepLimit = 2000
	rep := Run(context.Background(), 1, []Job{job}, Policy{
		MaxAttempts: 10, Resume: true, SalvagePartial: true,
	})
	r := &rep.Jobs[0]
	if r.Class != ClassBudget || r.Outcome != vm.OutcomeLimit {
		t.Fatalf("class %v outcome %v", r.Class, r.Outcome)
	}
	if r.Attempts >= 10 {
		t.Errorf("burned all %d attempts on a stuck job", r.Attempts)
	}
	if r.State != StateSalvaged || r.Profile == nil {
		t.Fatalf("state %v, want salvaged partial", r.State)
	}
}

func TestAttemptStepsSliceJobAcrossRetries(t *testing.T) {
	// Per-attempt instruction budget, no global limit: each resumed
	// attempt advances one slice until the program completes; the
	// result must still match the unbudgeted run.
	want := cleanBaseline(t)
	chaos := &scriptedChaos{tools: map[[2]int]atom.Tool{}}
	rep := Run(context.Background(), 1, []Job{loopJob(t)}, Policy{
		MaxAttempts: 10, Resume: true, AttemptSteps: 2000, Chaos: chaos,
	})
	r := &rep.Jobs[0]
	if r.State != StateCompleted {
		t.Fatalf("state %v err %v (attempts %d)", r.State, r.Err, r.Attempts)
	}
	if r.Attempts < 3 || r.Resumed != r.Attempts-1 {
		t.Fatalf("attempts %d resumed %d, want ≥3 slices all resumed", r.Attempts, r.Resumed)
	}
	if got := recordBytes(t, r); !bytes.Equal(got, want) {
		t.Error("sliced run profile differs from fault-free run")
	}
}

func TestBreakerQuarantinesGroup(t *testing.T) {
	bad := func() Job {
		j := loopJob(t)
		j.Want = "wrong" // permanent on every attempt
		return j
	}
	good := loopJob(t)
	good.Group = "healthy"
	jobs := []Job{bad(), bad(), bad(), good}
	rep := Run(context.Background(), 1, jobs, Policy{BreakerThreshold: 2})
	if got := []State{rep.Jobs[0].State, rep.Jobs[1].State, rep.Jobs[2].State, rep.Jobs[3].State}; got[0] != StateFailed ||
		got[1] != StateFailed || got[2] != StateQuarantined || got[3] != StateCompleted {
		t.Fatalf("states %v", got)
	}
	if rep.Quarantined != 1 || rep.Failed != 2 || rep.Completed != 1 {
		t.Fatalf("tallies %+v", rep)
	}
	r := &rep.Jobs[2]
	if r.Attempts != 0 || r.Err == nil || !strings.Contains(r.Err.Error(), "quarantined") {
		t.Errorf("quarantined job ran: attempts %d err %v", r.Attempts, r.Err)
	}
}

func TestAbortOnCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep := Run(ctx, 1, []Job{loopJob(t)}, Policy{MaxAttempts: 3})
	r := &rep.Jobs[0]
	if r.State != StateAborted || r.Class != ClassAborted {
		t.Fatalf("state %v class %v", r.State, r.Class)
	}
	if rep.Aborted != 1 {
		t.Fatalf("tallies %+v", rep)
	}
}

func TestBackoffDeterministicAndBounded(t *testing.T) {
	p := Policy{BackoffBase: 10 * time.Millisecond, BackoffMax: 80 * time.Millisecond, Seed: 42}
	var prevFloor time.Duration
	for attempt := 2; attempt <= 8; attempt++ {
		d1 := p.backoff(3, attempt)
		d2 := p.backoff(3, attempt)
		if d1 != d2 {
			t.Fatalf("attempt %d: backoff not deterministic (%v vs %v)", attempt, d1, d2)
		}
		if d1 < prevFloor/2 || d1 > p.BackoffMax {
			t.Fatalf("attempt %d: backoff %v outside [%v/2, %v]", attempt, d1, prevFloor, p.BackoffMax)
		}
		prevFloor = d1
	}
	if p.backoff(0, 1) != 0 {
		t.Error("first attempt must not wait")
	}
	other := p
	other.Seed = 43
	if p.backoff(3, 4) == other.backoff(3, 4) {
		t.Log("note: differing seeds produced equal jitter (possible, just unlikely)")
	}
}

func TestMergeUsableMixesSalvagedAndCompleted(t *testing.T) {
	chaos := &scriptedChaos{tools: map[[2]int]atom.Tool{
		{1, 1}: faultinject.New(faultinject.Injection{At: 1500, Kind: faultinject.KindFault}),
		{1, 2}: faultinject.New(faultinject.Injection{At: 1500, Kind: faultinject.KindFault}),
	}}
	jobs := []Job{loopJob(t), loopJob(t)}
	jobs[1].InputName = "again"
	rep := Run(context.Background(), 1, jobs, Policy{
		MaxAttempts: 2, SalvagePartial: true, Chaos: chaos,
	})
	if rep.Completed != 1 || rep.Salvaged != 1 {
		t.Fatalf("tallies %+v", rep)
	}
	merged, degraded, err := rep.MergeUsable()
	if err != nil || merged == nil {
		t.Fatalf("merge: %v", err)
	}
	if !degraded {
		t.Error("merge including a salvaged partial not marked degraded")
	}
	clean := Run(context.Background(), 1, []Job{loopJob(t)}, Policy{})
	if _, degraded, err := clean.MergeUsable(); err != nil || degraded {
		t.Errorf("clean merge: degraded %v err %v", degraded, err)
	}
}

func TestJobOfCompilesWorkload(t *testing.T) {
	// Conversion from the pool's job type carries every field across.
	// (Uses the real workload registry via parallel.Job.)
	j := parallelJobForTest(t)
	sj, err := JobOf(j)
	if err != nil {
		t.Fatal(err)
	}
	if sj.Name != j.Workload.Name || sj.InputName != j.Input.Name || sj.Prog == nil {
		t.Fatalf("conversion lost fields: %+v", sj)
	}
	rep := Run(context.Background(), 1, []Job{sj}, Policy{})
	if rep.Jobs[0].State != StateCompleted {
		t.Fatalf("converted job: %v (%v)", rep.Jobs[0].State, rep.Jobs[0].Err)
	}
}

func TestDoRetriesUntilSuccess(t *testing.T) {
	calls := 0
	res := Do(context.Background(), Policy{MaxAttempts: 5}, func(ctx context.Context, attempt int) error {
		calls++
		if attempt < 3 {
			return context.DeadlineExceeded
		}
		return nil
	})
	if res.Err != nil || res.Attempts != 3 || calls != 3 {
		t.Fatalf("res %+v calls %d", res, calls)
	}

	res = Do(context.Background(), Policy{MaxAttempts: 2}, func(ctx context.Context, attempt int) error {
		return context.DeadlineExceeded
	})
	if res.Err == nil || res.Attempts != 2 {
		t.Fatalf("res %+v", res)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res = Do(ctx, Policy{MaxAttempts: 3}, func(ctx context.Context, attempt int) error { return nil })
	if res.Err == nil || res.Attempts != 0 {
		t.Fatalf("cancelled Do still ran: %+v", res)
	}
}

func TestDoAppliesAttemptDeadline(t *testing.T) {
	res := Do(context.Background(), Policy{MaxAttempts: 1, AttemptDeadline: 10 * time.Millisecond},
		func(ctx context.Context, attempt int) error {
			d, ok := ctx.Deadline()
			if !ok {
				t.Error("attempt context has no deadline")
			} else if until := time.Until(d); until > 10*time.Millisecond {
				t.Errorf("deadline %v away, want ≤ 10ms", until)
			}
			return nil
		})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
}

// parallelJobForTest builds a pool job from the smallest registered
// workload.
func parallelJobForTest(t *testing.T) parallel.Job {
	t.Helper()
	wls := workloads.All()
	if len(wls) == 0 {
		t.Skip("no workloads registered")
	}
	return parallel.Job{
		Workload: wls[0],
		Input:    wls[0].Test,
		Options:  core.Options{TNV: core.DefaultTNVConfig()},
	}
}
