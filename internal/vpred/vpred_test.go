package vpred

import (
	"math/rand"
	"testing"
	"testing/quick"

	"valueprof/internal/asm"
	"valueprof/internal/atom"
	"valueprof/internal/core"
)

func drive(p Predictor, pc int, vals []int64) (hits, preds int) {
	for _, v := range vals {
		if got, ok := p.Predict(pc); ok {
			preds++
			if got == v {
				hits++
			}
		}
		p.Update(pc, v)
	}
	return hits, preds
}

func repeat(v int64, n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = v
	}
	return out
}

func TestLVPConstantStream(t *testing.T) {
	p := NewLVP(4)
	hits, preds := drive(p, 3, repeat(42, 100))
	if preds < 95 || hits != preds {
		t.Errorf("hits=%d preds=%d, want near-perfect", hits, preds)
	}
}

func TestLVPAlternatingStreamMisses(t *testing.T) {
	p := NewLVP(4)
	p.ConfThreshold = 0
	vals := make([]int64, 100)
	for i := range vals {
		vals[i] = int64(i % 2)
	}
	hits, _ := drive(p, 0, vals)
	if hits != 0 {
		t.Errorf("alternating stream got %d LVP hits, want 0", hits)
	}
}

func TestLVPConfidenceSuppresses(t *testing.T) {
	p := NewLVP(4)
	p.ConfThreshold = 2
	vals := make([]int64, 100)
	for i := range vals {
		vals[i] = int64(i) // never repeats
	}
	_, preds := drive(p, 0, vals)
	if preds != 0 {
		t.Errorf("confidence failed to suppress: %d predictions", preds)
	}
}

func TestLVPTagConflict(t *testing.T) {
	p := NewLVP(2) // 4 entries: pc 1 and 5 collide
	drive(p, 1, repeat(7, 10))
	if _, ok := p.Predict(5); ok {
		t.Error("tag mismatch predicted anyway")
	}
	drive(p, 5, repeat(9, 10))
	if v, ok := p.Predict(5); !ok || v != 9 {
		t.Errorf("after retrain: %d,%v", v, ok)
	}
}

func TestStridePredictsSequences(t *testing.T) {
	p := NewStride(4)
	vals := make([]int64, 100)
	for i := range vals {
		vals[i] = int64(i * 8) // stride 8
	}
	hits, _ := drive(p, 0, vals)
	if hits < 95 {
		t.Errorf("stride hits = %d, want ≥95", hits)
	}
	// Zero stride = last-value behaviour.
	p2 := NewStride(4)
	hits2, _ := drive(p2, 0, repeat(5, 100))
	if hits2 < 95 {
		t.Errorf("zero-stride hits = %d", hits2)
	}
}

func TestStrideBreaksOnChange(t *testing.T) {
	p := NewStride(4)
	drive(p, 0, []int64{0, 8, 16, 24})
	if v, ok := p.Predict(0); !ok || v != 32 {
		t.Fatalf("predict = %d,%v want 32", v, ok)
	}
	p.Update(0, 100) // stride broken
	if _, ok := p.Predict(0); ok {
		t.Error("still confident after stride break")
	}
}

func TestTwoLevelLearnsPattern(t *testing.T) {
	// Periodic pattern 1,2,3,4 repeating: stride fails, context learns.
	p := NewTwoLevel(4)
	var vals []int64
	for i := 0; i < 100; i++ {
		vals = append(vals, int64(i%4+1))
	}
	hits, _ := drive(p, 0, vals)
	if hits < 70 {
		t.Errorf("2-level hits on periodic pattern = %d, want ≥70", hits)
	}
	s := NewStride(4)
	sh, _ := drive(s, 0, vals)
	if sh >= hits {
		t.Errorf("stride (%d) should lose to 2-level (%d) on periodic data", sh, hits)
	}
}

func TestHybridBeatsComponents(t *testing.T) {
	// Two sites: one strided, one periodic. The hybrid should do well
	// on both; measure combined hits.
	run := func(p Predictor) int {
		total := 0
		for i := 0; i < 200; i++ {
			for site, v := range map[int]int64{1: int64(i * 4), 2: int64(i%4 + 10)} {
				if got, ok := p.Predict(site); ok && got == v {
					total++
				}
				p.Update(site, v)
			}
		}
		return total
	}
	hybrid := run(NewHybrid("h", NewStride(6), NewTwoLevel(6)))
	stride := run(NewStride(6))
	two := run(NewTwoLevel(6))
	if hybrid < stride || hybrid < two {
		t.Errorf("hybrid=%d stride=%d 2level=%d; hybrid should dominate", hybrid, stride, two)
	}
}

// Property: predictors never panic and stats stay consistent on random
// streams.
func TestPredictorsRobust(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		preds := StandardSuite(4)
		for i := 0; i < 500; i++ {
			pc := r.Intn(64)
			v := int64(r.Intn(8))
			for _, p := range preds {
				p.Predict(pc)
				p.Update(pc, v)
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

const predSrc = `
        .proc main
main:   li s0, 2000
        li s1, 0
loop:   li t1, 42
        addi s1, s1, 8
        addi s0, s0, -1
        bne s0, loop
        syscall exit
        .endproc
`

func TestEvaluatorOnProgram(t *testing.T) {
	prog, err := asm.Assemble(predSrc)
	if err != nil {
		t.Fatal(err)
	}
	ev := NewEvaluator(StandardSuite(8)...)
	if _, err := atom.Run(prog, nil, false, ev); err != nil {
		t.Fatal(err)
	}
	res := ev.Results()
	if len(res) != 5 {
		t.Fatalf("results = %d", len(res))
	}
	byName := map[string]*Stats{}
	for _, s := range res {
		byName[s.Name] = s
	}
	// The constant site favours LVP; the strided site favours stride;
	// stride subsumes both here.
	if byName["stride"].HitRate() < 0.9 {
		t.Errorf("stride hit rate = %v", byName["stride"].HitRate())
	}
	if byName["lvp"].HitRate() < 0.3 {
		t.Errorf("lvp hit rate = %v (constant site should hit)", byName["lvp"].HitRate())
	}
	if byName["hybrid-lvp-stride"].HitRate() < byName["lvp"].HitRate()-0.01 {
		t.Errorf("hybrid (%v) worse than lvp (%v)", byName["hybrid-lvp-stride"].HitRate(), byName["lvp"].HitRate())
	}
	ordered := SortedByHitRate(res)
	for i := 1; i < len(ordered); i++ {
		if ordered[i-1].HitRate() < ordered[i].HitRate() {
			t.Error("SortedByHitRate not sorted")
		}
	}
}

func TestProfileGuidedFiltering(t *testing.T) {
	prog, err := asm.Assemble(predSrc)
	if err != nil {
		t.Fatal(err)
	}
	// First pass: value profile.
	vp, err := core.NewValueProfiler(core.Options{TNV: core.DefaultTNVConfig()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := atom.Run(prog, nil, false, vp); err != nil {
		t.Fatal(err)
	}
	profile := vp.Profile()

	// Second pass: unfiltered vs profile-filtered LVP.
	unf := NewEvaluator(NewLVP(8))
	if _, err := atom.Run(prog, nil, false, unf); err != nil {
		t.Fatal(err)
	}
	flt := NewEvaluator(NewLVP(8))
	flt.PredictPC = FilterFromProfile(profile, 0.9)
	if _, err := atom.Run(prog, nil, false, flt); err != nil {
		t.Fatal(err)
	}
	u, f := unf.Results()[0], flt.Results()[0]
	if f.Attempts >= u.Attempts {
		t.Errorf("filtering did not reduce attempts: %d vs %d", f.Attempts, u.Attempts)
	}
	if f.Accuracy() < u.Accuracy() {
		t.Errorf("filtered accuracy %v < unfiltered %v", f.Accuracy(), u.Accuracy())
	}
	if f.Misses > u.Misses {
		t.Errorf("filtered misses %d > unfiltered %d", f.Misses, u.Misses)
	}
}

func TestStatsMath(t *testing.T) {
	s := &Stats{Name: "x", Attempts: 100, Predictions: 80, Hits: 60, Misses: 20}
	if s.HitRate() != 0.6 || s.Accuracy() != 0.75 || s.MissRate() != 0.2 {
		t.Errorf("stats math wrong: %v %v %v", s.HitRate(), s.Accuracy(), s.MissRate())
	}
	empty := &Stats{Name: "e"}
	if empty.HitRate() != 0 || empty.Accuracy() != 0 || empty.MissRate() != 0 {
		t.Error("empty stats should be zero")
	}
}
