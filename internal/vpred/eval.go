package vpred

import (
	"fmt"
	"sort"

	"valueprof/internal/atom"
	"valueprof/internal/core"
	"valueprof/internal/isa"
	"valueprof/internal/vm"
)

// Stats accumulates one predictor's results over a run.
type Stats struct {
	Name string
	// Attempts is the number of executions where the predictor was
	// consulted (after filtering).
	Attempts uint64
	// Predictions is how often it was confident enough to predict.
	Predictions uint64
	Hits        uint64
	Misses      uint64
}

// HitRate returns hits / attempts — the paper's headline metric (a
// no-prediction counts as neither hit nor benefit, so rate is over all
// eligible executions).
func (s *Stats) HitRate() float64 {
	if s.Attempts == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Attempts)
}

// Accuracy returns hits / predictions: correctness when predicting.
func (s *Stats) Accuracy() float64 {
	if s.Predictions == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Predictions)
}

// MissRate returns misses / attempts: the mispredictions that would
// trigger recovery.
func (s *Stats) MissRate() float64 {
	if s.Attempts == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Attempts)
}

func (s *Stats) String() string {
	return fmt.Sprintf("%s: attempts=%d hit=%.3f acc=%.3f miss=%.3f",
		s.Name, s.Attempts, s.HitRate(), s.Accuracy(), s.MissRate())
}

// Evaluator is an ATOM tool that drives a set of predictors over the
// dynamic value stream of the selected instructions.
type Evaluator struct {
	// Filter selects eligible instructions (default: results only).
	Filter func(isa.Inst) bool
	// PredictPC, when non-nil, additionally gates per-site prediction:
	// the profile-guided filtering of Gabbay & Mendelson [18]. Sites
	// returning false are never consulted.
	PredictPC func(pc int) bool

	preds []Predictor
	stats []*Stats
}

// NewEvaluator wraps the given predictors.
func NewEvaluator(preds ...Predictor) *Evaluator {
	ev := &Evaluator{preds: preds}
	for _, p := range preds {
		ev.stats = append(ev.stats, &Stats{Name: p.Name()})
	}
	return ev
}

// Instrument implements atom.Tool.
func (e *Evaluator) Instrument(ix *atom.Instrumenter) {
	filter := e.Filter
	if filter == nil {
		filter = func(in isa.Inst) bool { return in.Op.HasDest() }
	}
	ix.ForEachInst(filter, func(pc int, in isa.Inst) {
		if e.PredictPC != nil && !e.PredictPC(pc) {
			return
		}
		ix.AddAfter(pc, func(ev *vm.Event) {
			for i, p := range e.preds {
				st := e.stats[i]
				st.Attempts++
				if v, ok := p.Predict(pc); ok {
					st.Predictions++
					if v == ev.Value {
						st.Hits++
					} else {
						st.Misses++
					}
				}
				p.Update(pc, ev.Value)
			}
		})
	})
}

// Results returns per-predictor stats in construction order.
func (e *Evaluator) Results() []*Stats { return e.stats }

// StandardSuite returns the five predictors compared by Wang & Franklin
// [39] as the thesis summarizes them: lvp, stride, 2level,
// hybrid(lvp,stride), hybrid(stride,2level). logSize sets each
// component table to 2^logSize entries.
func StandardSuite(logSize int) []Predictor {
	return []Predictor{
		NewLVP(logSize),
		NewStride(logSize),
		NewTwoLevel(logSize),
		NewHybrid("hybrid-lvp-stride", NewLVP(logSize), NewStride(logSize)),
		NewHybrid("hybrid-stride-2level", NewStride(logSize), NewTwoLevel(logSize)),
	}
}

// FilterFromProfile builds a profile-guided PredictPC gate: only sites
// whose profiled Inv-Top(1) or LVP reaches thresh are predicted. This
// is the profile annotation of [18]: "only instructions marked
// predictable were considered for value prediction".
func FilterFromProfile(pr *core.Profile, thresh float64) func(pc int) bool {
	ok := make(map[int]bool, len(pr.Sites))
	for _, s := range pr.Sites {
		if s.Exec > 0 && (s.InvTop(1) >= thresh || s.LVP() >= thresh) {
			ok[s.PC] = true
		}
	}
	return func(pc int) bool { return ok[pc] }
}

// SortedByHitRate returns the stats sorted best-first (for reports).
func SortedByHitRate(stats []*Stats) []*Stats {
	out := append([]*Stats(nil), stats...)
	sort.Slice(out, func(i, j int) bool { return out[i].HitRate() > out[j].HitRate() })
	return out
}
