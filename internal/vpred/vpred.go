// Package vpred implements the value predictors the thesis discusses as
// consumers of value profiles (Chapter II): last-value prediction with a
// Value History Table (Gabbay [17], Lipasti [27,28]), stride prediction,
// a two-level context predictor, and the hybrid combinations studied by
// Wang & Franklin [39]. The Evaluator drives predictors over a program's
// dynamic value stream and measures hit rates, with optional
// profile-guided filtering (Gabbay & Mendelson [18]) that predicts only
// instructions the value profile classifies as predictable.
package vpred

// Predictor predicts the next result value of an instruction.
type Predictor interface {
	Name() string
	// Predict returns the predicted value for site pc and whether the
	// predictor is confident enough to predict at all.
	Predict(pc int) (int64, bool)
	// Update trains the predictor with the actual value.
	Update(pc int, actual int64)
}

// --- Last-value predictor -------------------------------------------------

type lvpEntry struct {
	tag   int
	value int64
	conf  uint8 // 2-bit saturating confidence
	valid bool
}

// LVP is a direct-mapped Value History Table: predict that the site
// repeats its previous value. The paper's footnote predictor.
type LVP struct {
	entries []lvpEntry
	mask    int
	// ConfThreshold is the confidence needed to predict (0 predicts
	// always once an entry exists).
	ConfThreshold uint8
}

// NewLVP creates a table with 2^logSize entries.
func NewLVP(logSize int) *LVP {
	n := 1 << logSize
	return &LVP{entries: make([]lvpEntry, n), mask: n - 1, ConfThreshold: 1}
}

func (p *LVP) Name() string { return "lvp" }

func (p *LVP) Predict(pc int) (int64, bool) {
	e := &p.entries[pc&p.mask]
	if !e.valid || e.tag != pc || e.conf < p.ConfThreshold {
		return 0, false
	}
	return e.value, true
}

func (p *LVP) Update(pc int, actual int64) {
	e := &p.entries[pc&p.mask]
	if !e.valid || e.tag != pc {
		*e = lvpEntry{tag: pc, value: actual, conf: 0, valid: true}
		return
	}
	if e.value == actual {
		if e.conf < 3 {
			e.conf++
		}
	} else {
		if e.conf > 0 {
			e.conf--
		}
		e.value = actual
	}
}

// --- Stride predictor -----------------------------------------------------

type strideEntry struct {
	tag      int
	last     int64
	stride   int64
	strideOK bool // stride confirmed twice (2-delta)
	valid    bool
}

// Stride is a 2-delta stride predictor: predict last + stride once the
// same stride has been seen twice in a row. A zero stride degenerates
// to last-value prediction, as the thesis notes.
type Stride struct {
	entries []strideEntry
	mask    int
}

// NewStride creates a table with 2^logSize entries.
func NewStride(logSize int) *Stride {
	n := 1 << logSize
	return &Stride{entries: make([]strideEntry, n), mask: n - 1}
}

func (p *Stride) Name() string { return "stride" }

func (p *Stride) Predict(pc int) (int64, bool) {
	e := &p.entries[pc&p.mask]
	if !e.valid || e.tag != pc || !e.strideOK {
		return 0, false
	}
	return e.last + e.stride, true
}

func (p *Stride) Update(pc int, actual int64) {
	e := &p.entries[pc&p.mask]
	if !e.valid || e.tag != pc {
		*e = strideEntry{tag: pc, last: actual, valid: true}
		return
	}
	newStride := actual - e.last
	if e.stride == newStride {
		e.strideOK = true
	} else {
		e.strideOK = false
		e.stride = newStride
	}
	e.last = actual
}

// --- Two-level (context) predictor ----------------------------------------

const (
	ctxHistory = 4 // values of history kept per entry
	ctxValues  = 4 // distinct recent values tracked (VHT part)
)

type ctxEntry struct {
	tag    int
	valid  bool
	vals   [ctxValues]int64 // recently seen distinct values
	nvals  int
	hist   uint16 // last ctxHistory value-indices, 2 bits each
	histN  int
	counts map[uint16][ctxValues]uint8 // pattern -> per-value saturating counts
}

// TwoLevel is a context-based predictor (Sazeides & Smith [34] style):
// the first level records which of the entry's recent values occurred
// (a 2-bit index per step); the second level learns, per history
// pattern, which value follows.
type TwoLevel struct {
	entries []ctxEntry
	mask    int
}

// NewTwoLevel creates a table with 2^logSize entries.
func NewTwoLevel(logSize int) *TwoLevel {
	n := 1 << logSize
	return &TwoLevel{entries: make([]ctxEntry, n), mask: n - 1}
}

func (p *TwoLevel) Name() string { return "2level" }

func (p *TwoLevel) entry(pc int) *ctxEntry {
	e := &p.entries[pc&p.mask]
	if !e.valid || e.tag != pc {
		*e = ctxEntry{tag: pc, valid: true, counts: make(map[uint16][ctxValues]uint8)}
	}
	return e
}

func (p *TwoLevel) Predict(pc int) (int64, bool) {
	e := &p.entries[pc&p.mask]
	if !e.valid || e.tag != pc || e.histN < ctxHistory {
		return 0, false
	}
	counts, ok := e.counts[e.hist]
	if !ok {
		return 0, false
	}
	best, bestC := -1, uint8(0)
	for i := 0; i < e.nvals; i++ {
		if counts[i] > bestC {
			best, bestC = i, counts[i]
		}
	}
	if best < 0 || bestC == 0 {
		return 0, false
	}
	return e.vals[best], true
}

func (p *TwoLevel) Update(pc int, actual int64) {
	e := p.entry(pc)
	// Find (or allocate, FIFO) the value index.
	idx := -1
	for i := 0; i < e.nvals; i++ {
		if e.vals[i] == actual {
			idx = i
			break
		}
	}
	if idx < 0 {
		if e.nvals < ctxValues {
			idx = e.nvals
			e.vals[idx] = actual
			e.nvals++
		} else {
			// Replace slot 0 style rotation: shift down, keeping the
			// most recent values.
			copy(e.vals[:], e.vals[1:])
			idx = ctxValues - 1
			e.vals[idx] = actual
			// Histories referring to old indices become stale; that
			// models real pattern-table aliasing.
		}
	}
	if e.histN >= ctxHistory {
		c := e.counts[e.hist]
		if c[idx] < 3 {
			c[idx]++
		}
		for i := range c {
			if i != idx && c[i] > 0 && c[idx] == 3 {
				c[i]--
			}
		}
		e.counts[e.hist] = c
	}
	e.hist = (e.hist<<2 | uint16(idx)) & (1<<(2*ctxHistory) - 1)
	if e.histN < ctxHistory {
		e.histN++
	}
}

// --- Hybrid ---------------------------------------------------------------

// Hybrid selects between two component predictors with a per-site
// chooser (a saturating meter favouring the recently-correct one),
// modelling the hybrids of Wang & Franklin [39].
type Hybrid struct {
	name    string
	a, b    Predictor
	chooser map[int]int8 // >0 favours a, <0 favours b
}

// NewHybrid combines a and b.
func NewHybrid(name string, a, b Predictor) *Hybrid {
	return &Hybrid{name: name, a: a, b: b, chooser: make(map[int]int8)}
}

func (p *Hybrid) Name() string { return p.name }

func (p *Hybrid) Predict(pc int) (int64, bool) {
	va, oka := p.a.Predict(pc)
	vb, okb := p.b.Predict(pc)
	switch {
	case oka && okb:
		if p.chooser[pc] >= 0 {
			return va, true
		}
		return vb, true
	case oka:
		return va, true
	case okb:
		return vb, true
	}
	return 0, false
}

func (p *Hybrid) Update(pc int, actual int64) {
	va, oka := p.a.Predict(pc)
	vb, okb := p.b.Predict(pc)
	if oka && okb && va != vb {
		m := p.chooser[pc]
		if va == actual && m < 3 {
			m++
		}
		if vb == actual && m > -3 {
			m--
		}
		p.chooser[pc] = m
	}
	p.a.Update(pc, actual)
	p.b.Update(pc, actual)
}
