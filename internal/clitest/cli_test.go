// Package clitest runs the built command binaries end to end and pins
// their user-facing contract: exit codes, stderr diagnostics, and the
// load-bearing lines of their output. These are the behaviors scripts
// and CI pipelines depend on, which unit tests of the underlying
// packages cannot see break.
package clitest

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

var binDir string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "clitest")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	build := exec.Command("go", "build", "-o", dir,
		"./cmd/vdiff", "./cmd/vlint", "./cmd/vprof")
	build.Dir = repoRoot()
	if out, err := build.CombinedOutput(); err != nil {
		fmt.Fprintf(os.Stderr, "building commands: %v\n%s", err, out)
		os.RemoveAll(dir)
		os.Exit(1)
	}
	binDir = dir
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

func repoRoot() string {
	wd, err := os.Getwd()
	if err != nil {
		panic(err)
	}
	return filepath.Dir(filepath.Dir(wd)) // internal/clitest -> repo root
}

// run executes one built command and returns stdout, stderr, and the
// exit code.
func run(t *testing.T, name string, args ...string) (string, string, int) {
	t.Helper()
	cmd := exec.Command(filepath.Join(binDir, name), args...)
	cmd.Dir = repoRoot()
	var stdout, stderr strings.Builder
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	err := cmd.Run()
	code := 0
	if err != nil {
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("%s %v: %v", name, args, err)
		}
		code = ee.ExitCode()
	}
	return stdout.String(), stderr.String(), code
}

func writeFile(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// goodRecord returns a valid single-program profile record with the
// given input name and per-site invariances.
func goodRecord(input string, inv7 int) string {
	return fmt.Sprintf(`{"program":"p","input":%q,"k":10,"sites":[`+
		`{"pc":3,"name":"main+3","exec":100,"lvpHits":90,"zeros":5,`+
		`"top":[{"Value":7,"Count":%d},{"Value":1,"Count":%d}]},`+
		`{"pc":9,"name":"main+9","exec":50,"lvpHits":10,"zeros":0,`+
		`"top":[{"Value":2,"Count":50}]}]}`, input, inv7, 100-inv7)
}

func TestVdiffGoodProfiles(t *testing.T) {
	dir := t.TempDir()
	a := writeFile(t, dir, "a.json", goodRecord("test", 60))
	b := writeFile(t, dir, "b.json", goodRecord("train", 80))
	stdout, stderr, code := run(t, "vdiff", a, b)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	for _, want := range []string{
		"p: test vs train",
		"sites: 2 common, 0 only in test, 0 only in train",
		"Inv-Top(1) correlation:",
		"classification agreement:",
		"largest 10 invariance drifts",
	} {
		if !strings.Contains(stdout, want) {
			t.Errorf("stdout missing %q:\n%s", want, stdout)
		}
	}
}

func TestVdiffCorruptProfile(t *testing.T) {
	dir := t.TempDir()
	good := writeFile(t, dir, "good.json", goodRecord("test", 60))
	// A duplicated site pc: strict loading rejects the whole file and
	// points at -repair, which drops the duplicate and keeps the rest.
	corrupt := writeFile(t, dir, "bad.json",
		`{"program":"p","input":"x","k":10,"sites":[`+
			`{"pc":3,"exec":10,"top":[{"Value":7,"Count":10}]},`+
			`{"pc":3,"exec":50,"top":[{"Value":2,"Count":50}]}]}`)

	_, stderr, code := run(t, "vdiff", good, corrupt)
	if code != 1 {
		t.Fatalf("exit %d, want 1; stderr: %s", code, stderr)
	}
	if !strings.Contains(stderr, "duplicate pc") {
		t.Errorf("stderr does not name the violation:\n%s", stderr)
	}
	if !strings.Contains(stderr, "retry with -repair to salvage valid sites") {
		t.Errorf("stderr missing the -repair hint:\n%s", stderr)
	}

	// With -repair the valid site is salvaged and the diff proceeds.
	stdout, stderr, code := run(t, "vdiff", "-repair", good, corrupt)
	if code != 0 {
		t.Fatalf("-repair exit %d, stderr: %s", code, stderr)
	}
	if !strings.Contains(stdout, "sites: 1 common") {
		t.Errorf("salvaged diff should compare the 1 surviving site:\n%s", stdout)
	}
}

func TestVdiffUsage(t *testing.T) {
	_, stderr, code := run(t, "vdiff", "only-one.json")
	if code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(stderr, "usage: vdiff") {
		t.Errorf("stderr missing usage line:\n%s", stderr)
	}
}

func TestVlintCleanAndStrict(t *testing.T) {
	stdout, stderr, code := run(t, "vlint", "examples/asm/sum.s")
	if code != 0 {
		t.Fatalf("clean file: exit %d, stderr: %s", code, stderr)
	}
	if !strings.Contains(stdout, "ok (") {
		t.Errorf("clean file: stdout missing ok line:\n%s", stdout)
	}

	// warnings.s carries warning-severity diagnostics: accepted by
	// default, rejected under -strict.
	stdout, _, code = run(t, "vlint", "examples/asm/warnings.s")
	if code != 0 {
		t.Fatalf("warnings without -strict: exit %d\n%s", code, stdout)
	}
	if !strings.Contains(stdout, "warning") {
		t.Errorf("warnings.s printed no warning:\n%s", stdout)
	}
	stdout, _, code = run(t, "vlint", "-strict", "examples/asm/warnings.s")
	if code != 1 {
		t.Fatalf("-strict on warnings: exit %d, want 1\n%s", code, stdout)
	}
}

func TestVlintUsageAndIOErrors(t *testing.T) {
	_, stderr, code := run(t, "vlint")
	if code != 2 || !strings.Contains(stderr, "usage: vlint") {
		t.Fatalf("no args: exit %d, stderr: %s", code, stderr)
	}
	_, _, code = run(t, "vlint", "no-such-file.s")
	if code != 2 {
		t.Fatalf("missing file: exit %d, want 2", code)
	}
}

func TestVprofMerge(t *testing.T) {
	dir := t.TempDir()
	a := writeFile(t, dir, "a.vp", goodRecord("test", 60))
	b := writeFile(t, dir, "b.vp", goodRecord("train", 80))
	out := filepath.Join(dir, "merged.json")

	stdout, stderr, code := run(t, "vprof", "-merge", "-o", out, a, b)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	if !strings.Contains(stdout, "merged 2 runs of p: 2 sites, 300 profiled executions") {
		t.Errorf("stdout missing merge summary:\n%s", stdout)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rec struct {
		Program string `json:"program"`
		Merged  []string
		Sites   []struct {
			Exec uint64 `json:"exec"`
		}
	}
	if err := json.Unmarshal(data, &rec); err != nil {
		t.Fatalf("merged output is not valid JSON: %v", err)
	}
	if rec.Program != "p" || len(rec.Sites) != 2 {
		t.Fatalf("merged record wrong: %+v", rec)
	}
	if rec.Sites[0].Exec != 200 {
		t.Errorf("merged exec = %d, want 200 (100+100)", rec.Sites[0].Exec)
	}
}

func TestVprofMergeRejectsMismatchedProfiles(t *testing.T) {
	dir := t.TempDir()
	a := writeFile(t, dir, "a.vp", goodRecord("test", 60))
	otherK := writeFile(t, dir, "k5.vp", `{"program":"p","input":"i","k":5,"sites":[]}`)
	out := filepath.Join(dir, "merged.json")

	_, stderr, code := run(t, "vprof", "-merge", "-o", out, a, otherK)
	if code != 1 || !strings.Contains(stderr, "merging") {
		t.Fatalf("mismatched K: exit %d, stderr: %s", code, stderr)
	}
	if _, err := os.Stat(out); !os.IsNotExist(err) {
		t.Error("failed merge left an output file behind")
	}

	_, stderr, code = run(t, "vprof", "-merge", "-o", out, a)
	if code != 1 || !strings.Contains(stderr, "at least two profile files") {
		t.Fatalf("single input: exit %d, stderr: %s", code, stderr)
	}
	_, stderr, code = run(t, "vprof", "-merge", a, a)
	if code != 1 || !strings.Contains(stderr, "requires -o") {
		t.Fatalf("missing -o: exit %d, stderr: %s", code, stderr)
	}
}

func TestVprofResumeRejectsNewerCheckpoint(t *testing.T) {
	dir := t.TempDir()
	// A well-formed envelope from a hypothetical future writer: the
	// version gate must refuse it before trusting any of the payload.
	ckpt := writeFile(t, dir, "future.ckpt",
		`{"magic":"VPCKPT1","version":99,"crc32":0,"payload":{}}`)
	_, stderr, code := run(t, "vprof", "-w", "compress", "-resume", ckpt)
	if code != 1 {
		t.Fatalf("exit %d, want 1; stderr: %s", code, stderr)
	}
	if !strings.Contains(stderr, "newer than supported") {
		t.Errorf("stderr missing version diagnostic:\n%s", stderr)
	}
}

func TestVlintDeadBranchStrict(t *testing.T) {
	// deadbranch.s is verifier-clean: only the interval analysis can
	// see that the taken arm never executes. Warn by default, fail
	// under -strict.
	stdout, stderr, code := run(t, "vlint", "examples/asm/deadbranch.s")
	if code != 0 {
		t.Fatalf("dead branch without -strict: exit %d, stderr: %s", code, stderr)
	}
	if !strings.Contains(stdout, "ok (") {
		t.Errorf("verifier-clean file missing ok line:\n%s", stdout)
	}
	if !strings.Contains(stdout, "taken arm is statically unreachable") {
		t.Errorf("missing dead-arm warning:\n%s", stdout)
	}

	stdout, _, code = run(t, "vlint", "-strict", "examples/asm/deadbranch.s")
	if code != 1 {
		t.Fatalf("-strict on dead branch: exit %d, want 1\n%s", code, stdout)
	}
	if !strings.Contains(stdout, "taken arm is statically unreachable") {
		t.Errorf("-strict output lost the dead-arm warning:\n%s", stdout)
	}
}

func TestVlintIntervalAndLoopDumps(t *testing.T) {
	stdout, stderr, code := run(t, "vlint", "-intervals", "-loops", "examples/asm/sum.s")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	for _, want := range []string{
		"intervals (whole-program dataflow):",
		"= 10", // the li 10 constant is a singleton fact
		"loops (whole-program): 1 natural loops",
		"depth 1",
	} {
		if !strings.Contains(stdout, want) {
			t.Errorf("output missing %q:\n%s", want, stdout)
		}
	}
}

func TestVprofPrunePredict(t *testing.T) {
	stdout, stderr, code := run(t, "vprof", "-w", "dictv", "-prune-predict")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	if !strings.Contains(stderr, "predictive budget:") ||
		!strings.Contains(stderr, "proved (skipped)") {
		t.Errorf("stderr missing predictive-budget summary:\n%s", stderr)
	}
	if !strings.Contains(stdout, "dictv") {
		t.Errorf("stdout missing profile report:\n%s", stdout)
	}
	_, stderr, code = run(t, "vprof", "-w", "dictv", "-prune-predict", "-convergent")
	if code == 0 {
		t.Fatal("-prune-predict with -convergent accepted")
	}
	if !strings.Contains(stderr, "drop -convergent") {
		t.Errorf("missing conflict diagnostic:\n%s", stderr)
	}
}
