package vmbench

import (
	"bytes"
	"strings"
	"testing"
)

// TestMeasureSmoke runs a miniature measurement and sanity-checks the
// report's structure. Absolute numbers are machine noise at this size;
// only well-formedness and the ratio identities are asserted.
func TestMeasureSmoke(t *testing.T) {
	rep, err := Measure(Options{Outer: 40, Repeats: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Insts == 0 || rep.UnhookedNsPerInst <= 0 || rep.HookedNsPerInst <= 0 || rep.LegacyNsPerInst <= 0 {
		t.Fatalf("degenerate report: %+v", rep)
	}
	if got := rep.HookedNsPerInst / rep.UnhookedNsPerInst; got != rep.HookOverhead {
		t.Errorf("HookOverhead %v, want %v", rep.HookOverhead, got)
	}
	if got := rep.LegacyNsPerInst / rep.HookedNsPerInst; got != rep.SpeedupVsLegacy {
		t.Errorf("SpeedupVsLegacy %v, want %v", rep.SpeedupVsLegacy, got)
	}
	if len(rep.PerOp) != len(perOpOps) {
		t.Errorf("per-op sweep covered %d ops, want %d", len(rep.PerOp), len(perOpOps))
	}
	for _, op := range rep.PerOp {
		if op.NsPerInst <= 0 {
			t.Errorf("op %s: non-positive ns/inst", op.Op)
		}
	}

	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.SpeedupVsLegacy != rep.SpeedupVsLegacy {
		t.Error("report did not round-trip")
	}
}

func TestCompareGatesRatiosOnly(t *testing.T) {
	base := &Report{SpeedupVsLegacy: 1.6, HookOverhead: 2.5, UnhookedNsPerInst: 8}

	// Slower machine, same ratios: fine.
	ok := &Report{SpeedupVsLegacy: 1.58, HookOverhead: 2.55, UnhookedNsPerInst: 80}
	if err := Compare(base, ok, 0.10); err != nil {
		t.Errorf("within-tolerance report rejected: %v", err)
	}

	slow := &Report{SpeedupVsLegacy: 1.4, HookOverhead: 2.5}
	if err := Compare(base, slow, 0.10); err == nil || !strings.Contains(err.Error(), "SpeedupVsLegacy") {
		t.Errorf("speedup regression not gated: %v", err)
	}
	heavy := &Report{SpeedupVsLegacy: 1.6, HookOverhead: 2.8}
	if err := Compare(base, heavy, 0.10); err == nil || !strings.Contains(err.Error(), "HookOverhead") {
		t.Errorf("overhead regression not gated: %v", err)
	}
}
