package vmbench

import (
	"fmt"
	"strings"
)

// Diff renders a metric-by-metric comparison of two recorded reports
// (`make bench-diff`) and applies the same ±tol ratio gate Compare
// uses, returning its error alongside the rendering. Absolute ns/inst
// rows are informational — they only mean something when both reports
// came from the same machine — while the ratio rows and the allocation
// count are what the gate actually holds.
func Diff(baseline, current *Report, tol float64) (string, error) {
	var b strings.Builder
	row := func(name string, old, new float64, format, note string) {
		ratio := "    n/a"
		if old > 0 {
			ratio = fmt.Sprintf("%6.3fx", new/old)
		}
		fmt.Fprintf(&b, "  %-18s "+format+"  -> "+format+"  %s %s\n", name, old, new, ratio, note)
	}
	b.WriteString("gated ratios:\n")
	row("speedupVsLegacy", baseline.SpeedupVsLegacy, current.SpeedupVsLegacy, "%8.3f", "(higher better)")
	row("hookOverhead", baseline.HookOverhead, current.HookOverhead, "%8.3f", "(lower better)")
	row("hookedAllocs/run", baseline.HookedAllocsPerRun, current.HookedAllocsPerRun, "%8.0f", "(lower better)")
	b.WriteString("informational (same-machine only):\n")
	row("unhooked ns/inst", baseline.UnhookedNsPerInst, current.UnhookedNsPerInst, "%8.2f", "")
	row("hooked ns/inst", baseline.HookedNsPerInst, current.HookedNsPerInst, "%8.2f", "")
	row("legacy ns/inst", baseline.LegacyNsPerInst, current.LegacyNsPerInst, "%8.2f", "")
	row("hookedAllocKB/run", baseline.HookedAllocKBPerRun, current.HookedAllocKBPerRun, "%8.1f", "")

	base := make(map[string]float64, len(baseline.PerOp))
	for _, op := range baseline.PerOp {
		base[op.Op] = op.NsPerInst
	}
	if len(current.PerOp) > 0 {
		b.WriteString("per-op ns/inst (informational):\n")
		seen := make(map[string]bool, len(current.PerOp))
		for _, op := range current.PerOp {
			seen[op.Op] = true
			old, ok := base[op.Op]
			if !ok {
				fmt.Fprintf(&b, "  %-18s   (new)   -> %8.2f\n", op.Op, op.NsPerInst)
				continue
			}
			row(op.Op, old, op.NsPerInst, "%8.2f", "")
		}
		for _, op := range baseline.PerOp {
			if !seen[op.Op] {
				fmt.Fprintf(&b, "  %-18s %8.2f -> (dropped)\n", op.Op, op.NsPerInst)
			}
		}
	}
	return b.String(), Compare(baseline, current, tol)
}
