// Package vmbench measures the interpreter hot path: per-opcode
// dispatch microbenchmarks, the unhooked loop (pair fusion active),
// and the hooked loop through both value-delivery paths — the batched
// buffer sink and the legacy per-event closure (`core.Options.
// Unbatched`). The recorded report (BENCH_vm.json) is the repo's VM
// performance baseline; `Compare` gates regressions in `make ci`.
//
// Absolute ns/inst numbers are machine-dependent and recorded for
// context only. The gated quantities are ratios of runs on the same
// machine in the same process — HookOverhead (hooked vs unhooked) and
// SpeedupVsLegacy (legacy closures vs batched buffers) — which cancel
// out the hardware and stay comparable across recording environments.
package vmbench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"strings"
	"time"

	"valueprof/internal/asm"
	"valueprof/internal/atom"
	"valueprof/internal/core"
	"valueprof/internal/program"
)

// OpBench is one per-opcode timing: a tight loop whose body is 32
// copies of the opcode plus the loop tail.
type OpBench struct {
	Op        string  `json:"op"`
	NsPerInst float64 `json:"nsPerInst"`
}

// Report is the recorded VM benchmark baseline.
type Report struct {
	NumCPU     int `json:"numCPU"`
	GOMAXPROCS int `json:"gomaxprocs"`
	// Insts is the hot-loop instruction count each timing executed.
	Insts   uint64    `json:"insts"`
	Repeats int       `json:"repeats"`
	PerOp   []OpBench `json:"perOp"`

	UnhookedNsPerInst float64 `json:"unhookedNsPerInst"`
	HookedNsPerInst   float64 `json:"hookedNsPerInst"`
	LegacyNsPerInst   float64 `json:"legacyNsPerInst"`

	// HookOverhead = HookedNsPerInst / UnhookedNsPerInst: the cost
	// multiplier of full-time batched profiling. Gated (lower better).
	HookOverhead float64 `json:"hookOverhead"`
	// SpeedupVsLegacy = LegacyNsPerInst / HookedNsPerInst: what the
	// batched value buffers buy over per-event closures on the same
	// hooked loop. Gated (higher better).
	SpeedupVsLegacy float64 `json:"speedupVsLegacy"`

	// HookedAllocsPerRun / HookedAllocKBPerRun are the allocator
	// traffic of one full hooked hot-loop run, profiler construction
	// included — the quantity the arena reuse path amortizes away at
	// the pool level. Allocation counts are machine-independent (they
	// depend only on code paths), so the count is gated like the
	// ratios; bytes are recorded for context. Zero in reports recorded
	// before the fields existed, which skips the gate.
	HookedAllocsPerRun  float64 `json:"hookedAllocsPerRun,omitempty"`
	HookedAllocKBPerRun float64 `json:"hookedAllocKBPerRun,omitempty"`
}

// WriteJSON writes the indented JSON form of the report.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ReadReport parses a recorded report.
func ReadReport(r io.Reader) (*Report, error) {
	var rep Report
	if err := json.NewDecoder(r).Decode(&rep); err != nil {
		return nil, fmt.Errorf("vmbench: %w", err)
	}
	return &rep, nil
}

// String renders the one-line summary.
func (r *Report) String() string {
	return fmt.Sprintf("vm hot loop: unhooked %.1f ns/inst, hooked %.1f (%.2fx overhead), legacy %.1f — batched speedup %.2fx",
		r.UnhookedNsPerInst, r.HookedNsPerInst, r.HookOverhead, r.LegacyNsPerInst, r.SpeedupVsLegacy)
}

// Options sizes the measurement. The zero value selects recording
// quality; tests shrink it.
type Options struct {
	// Outer is the hot-loop trip count (default 2000; ~1.3M
	// instructions per timing).
	Outer int
	// Repeats is how many times each configuration is timed; the
	// minimum is kept (default 5).
	Repeats int
	// SkipPerOp omits the per-opcode sweep.
	SkipPerOp bool
}

func (o Options) withDefaults() Options {
	if o.Outer <= 0 {
		o.Outer = 2000
	}
	if o.Repeats <= 0 {
		o.Repeats = 5
	}
	return o
}

// hotSrc is the mixed hot loop used for the hooked-vs-unhooked and
// batched-vs-legacy comparisons: a representative blend of ALU ops,
// memory traffic, compares and a not-taken branch, with strong top-1
// value bias (like real profiled code, most sites are near-invariant).
const hotSrc = `
main:   syscall getint
        add s0, v0, zero        ; outer trip count
        la  s1, cell
outer:  li t0, 64
inner:  ldq t1, 0(s1)           ; invariant load
        add t2, t1, t0
        and t3, t2, t1
        xor t4, t2, t3
        slli t5, t4, 3
        cmpeq t6, t1, t1        ; invariant compare
        mul t7, t1, t6
        stq t7, 8(s1)
        addi t0, t0, -1
        bne t0, inner
        addi s0, s0, -1
        bne s0, outer
        syscall exit
        .data
cell:   .word 7, 0
`

func mustAssemble(src string) *program.Program {
	p, err := asm.Assemble(src)
	if err != nil {
		panic("vmbench: internal source does not assemble: " + err.Error())
	}
	return p
}

// timeRun executes one profiling configuration repeatedly and returns
// the minimum ns/inst. A nil mkTool times the bare interpreter.
func timeRun(prog *program.Program, input []int64, repeats int, mkTool func() (atom.Tool, func())) (float64, uint64, error) {
	best := time.Duration(1<<63 - 1)
	var insts uint64
	for i := 0; i < repeats; i++ {
		var tools []atom.Tool
		var finish func()
		if mkTool != nil {
			t, f := mkTool()
			tools, finish = []atom.Tool{t}, f
		}
		runtime.GC()
		start := time.Now()
		res, err := atom.Run(prog, input, false, tools...)
		if finish != nil {
			finish()
		}
		elapsed := time.Since(start)
		if err != nil {
			return 0, 0, fmt.Errorf("vmbench: %w", err)
		}
		insts = res.InstCount
		if elapsed < best {
			best = elapsed
		}
	}
	return float64(best.Nanoseconds()) / float64(insts), insts, nil
}

// measureAllocs counts the allocator traffic of one run of the given
// configuration (tool construction included), untimed and outside the
// ns/inst measurements so ReadMemStats pauses cannot skew them. The
// minimum over repeats is kept: background runtime allocations can
// only inflate a sample, never deflate it.
func measureAllocs(prog *program.Program, input []int64, repeats int, mkTool func() (atom.Tool, func())) (allocs, bytes float64, err error) {
	minAllocs, minBytes := ^uint64(0), ^uint64(0)
	var before, after runtime.MemStats
	for i := 0; i < repeats; i++ {
		runtime.GC()
		runtime.ReadMemStats(&before)
		var tools []atom.Tool
		var finish func()
		if mkTool != nil {
			t, f := mkTool()
			tools, finish = []atom.Tool{t}, f
		}
		_, runErr := atom.Run(prog, input, false, tools...)
		if finish != nil {
			finish()
		}
		runtime.ReadMemStats(&after)
		if runErr != nil {
			return 0, 0, fmt.Errorf("vmbench: %w", runErr)
		}
		if d := after.Mallocs - before.Mallocs; d < minAllocs {
			minAllocs = d
		}
		if d := after.TotalAlloc - before.TotalAlloc; d < minBytes {
			minBytes = d
		}
	}
	return float64(minAllocs), float64(minBytes) / 1024, nil
}

// perOpOps is the opcode sweep: one loop per opcode with safe,
// side-effect-free operands. The loop tail (addi+bne) is part of every
// measurement, so tail-heavy deltas between ops stay comparable.
var perOpOps = []struct{ name, inst string }{
	{"nop", "nop"},
	{"add", "add t1, t2, t3"},
	{"addi", "addi t1, t2, 7"},
	{"mul", "mul t1, t2, t3"},
	{"div", "div t1, t2, t4"},
	{"and", "and t1, t2, t3"},
	{"xor", "xor t1, t2, t3"},
	{"slli", "slli t1, t2, 3"},
	{"cmpeq", "cmpeq t1, t2, t3"},
	{"ldq", "ldq t1, 0(s1)"},
	{"stq", "stq t2, 8(s1)"},
}

func perOpSrc(inst string) string {
	var b strings.Builder
	b.WriteString(`
main:   syscall getint
        add s0, v0, zero
        la  s1, cell
        li t2, 24
        li t3, 5
        li t4, 3
loop:
`)
	for i := 0; i < 32; i++ {
		b.WriteString("        " + inst + "\n")
	}
	b.WriteString(`        addi s0, s0, -1
        bne s0, loop
        syscall exit
        .data
cell:   .word 7, 0
`)
	return b.String()
}

// Measure times every configuration and returns the report.
func Measure(opts Options) (*Report, error) {
	opts = opts.withDefaults()
	input := []int64{int64(opts.Outer)}
	prog := mustAssemble(hotSrc)

	rep := &Report{
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Repeats:    opts.Repeats,
	}

	unhooked, insts, err := timeRun(prog, input, opts.Repeats, nil)
	if err != nil {
		return nil, err
	}
	rep.UnhookedNsPerInst, rep.Insts = unhooked, insts

	profTool := func(o core.Options) func() (atom.Tool, func()) {
		return func() (atom.Tool, func()) {
			vp, err := core.NewValueProfiler(o)
			if err != nil {
				panic("vmbench: " + err.Error())
			}
			// Draining the buffers is part of the batched path's cost;
			// it runs inside the timed region like it would in a real
			// profiling pass.
			return vp, vp.FlushBuffers
		}
	}
	hooked, _, err := timeRun(prog, input, opts.Repeats, profTool(core.DefaultOptions()))
	if err != nil {
		return nil, err
	}
	rep.HookedNsPerInst = hooked

	legacyOpts := core.DefaultOptions()
	legacyOpts.Unbatched = true
	legacy, _, err := timeRun(prog, input, opts.Repeats, profTool(legacyOpts))
	if err != nil {
		return nil, err
	}
	rep.LegacyNsPerInst = legacy

	rep.HookOverhead = hooked / unhooked
	rep.SpeedupVsLegacy = legacy / hooked

	allocs, kb, err := measureAllocs(prog, input, opts.Repeats, profTool(core.DefaultOptions()))
	if err != nil {
		return nil, err
	}
	rep.HookedAllocsPerRun, rep.HookedAllocKBPerRun = allocs, kb

	if !opts.SkipPerOp {
		// Per-op loops are flat (no inner nest), so the trip count is
		// scaled up until VM setup cost (memory allocation and zeroing,
		// ~1 ms) is noise against the loop itself. Informational, not
		// gated.
		opInput := []int64{int64(opts.Outer*20 + 1)}
		for _, op := range perOpOps {
			ns, _, err := timeRun(mustAssemble(perOpSrc(op.inst)), opInput, opts.Repeats, nil)
			if err != nil {
				return nil, fmt.Errorf("op %s: %w", op.name, err)
			}
			rep.PerOp = append(rep.PerOp, OpBench{Op: op.name, NsPerInst: ns})
		}
	}
	return rep, nil
}

// Compare gates current against a recorded baseline. Only the
// machine-independent ratios are gated, each with fractional tolerance
// tol (0.10 = ±10%): SpeedupVsLegacy may not fall more than tol below
// the baseline, HookOverhead may not rise more than tol above it.
// Absolute ns/inst figures are never compared across recordings.
func Compare(baseline, current *Report, tol float64) error {
	var problems []string
	if floor := baseline.SpeedupVsLegacy * (1 - tol); current.SpeedupVsLegacy < floor {
		problems = append(problems, fmt.Sprintf(
			"SpeedupVsLegacy %.3f below floor %.3f (baseline %.3f, tol %.0f%%)",
			current.SpeedupVsLegacy, floor, baseline.SpeedupVsLegacy, tol*100))
	}
	if ceil := baseline.HookOverhead * (1 + tol); current.HookOverhead > ceil {
		problems = append(problems, fmt.Sprintf(
			"HookOverhead %.3f above ceiling %.3f (baseline %.3f, tol %.0f%%)",
			current.HookOverhead, ceil, baseline.HookOverhead, tol*100))
	}
	// Allocation counts depend on code paths, not hardware, so the
	// hooked-run count is gated too — with a small absolute slack for
	// runtime-internal noise (timer and GC bookkeeping). Baselines
	// recorded before the field existed carry 0 and skip the gate.
	if baseline.HookedAllocsPerRun > 0 {
		if ceil := baseline.HookedAllocsPerRun*(1+tol) + 64; current.HookedAllocsPerRun > ceil {
			problems = append(problems, fmt.Sprintf(
				"HookedAllocsPerRun %.0f above ceiling %.0f (baseline %.0f, tol %.0f%% + 64)",
				current.HookedAllocsPerRun, ceil, baseline.HookedAllocsPerRun, tol*100))
		}
	}
	if len(problems) > 0 {
		return fmt.Errorf("vmbench: regression vs baseline:\n  %s", strings.Join(problems, "\n  "))
	}
	return nil
}
