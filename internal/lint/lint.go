// Package lint implements the repository's custom vet pass: a small
// go/ast analysis, in the style of a go/analysis Analyzer but built on
// the standard library only, that forbids raw destructive file writes
// (os.Create, os.WriteFile, write-mode os.OpenFile) in command code.
// Commands must route output through internal/atomicio, whose
// write-to-temp-then-rename discipline means an interrupted run never
// leaves a torn profile, checkpoint, or image at the destination path.
package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"strconv"
	"strings"
)

// Finding is one rule violation.
type Finding struct {
	Pos  token.Position
	Call string // the offending call, e.g. "os.Create"
	Msg  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Pos, f.Call, f.Msg)
}

// banned maps functions in the os package to the reason they may not be
// called directly from command code.
var banned = map[string]string{
	"Create":    "use internal/atomicio so a crash mid-write cannot leave a torn file",
	"WriteFile": "use internal/atomicio so a crash mid-write cannot leave a torn file",
	"OpenFile":  "use internal/atomicio for write-mode opens; direct opens are only safe read-only",
}

// readOnlyOpenFile reports whether an os.OpenFile call is provably
// read-only: its flag argument is the literal O_RDONLY selector on the
// os package (under whatever name the file imports it). Anything more
// complex is flagged.
func readOnlyOpenFile(call *ast.CallExpr, osName string) bool {
	if len(call.Args) < 2 {
		return false
	}
	sel, ok := call.Args[1].(*ast.SelectorExpr)
	if !ok {
		return false
	}
	pkg, ok := sel.X.(*ast.Ident)
	return ok && pkg.Name == osName && sel.Sel.Name == "O_RDONLY"
}

// CheckFile parses one Go source file and returns its violations.
// Test files are exempt: tests routinely create fixtures and their
// half-written files never outlive the test's temp directory.
func CheckFile(fset *token.FileSet, path string) ([]Finding, error) {
	if strings.HasSuffix(path, "_test.go") {
		return nil, nil
	}
	file, err := parser.ParseFile(fset, path, nil, parser.SkipObjectResolution)
	if err != nil {
		return nil, err
	}

	// Resolve which local name refers to the os package ("" if the file
	// never imports it).
	osName := ""
	for _, imp := range file.Imports {
		p, err := strconv.Unquote(imp.Path.Value)
		if err != nil || p != "os" {
			continue
		}
		osName = "os"
		if imp.Name != nil {
			osName = imp.Name.Name
		}
	}
	if osName == "" || osName == "_" {
		return nil, nil
	}

	var out []Finding
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkg, ok := sel.X.(*ast.Ident)
		if !ok || pkg.Name != osName {
			return true
		}
		reason, ok := banned[sel.Sel.Name]
		if !ok {
			return true
		}
		if sel.Sel.Name == "OpenFile" && readOnlyOpenFile(call, osName) {
			return true
		}
		out = append(out, Finding{
			Pos:  fset.Position(call.Pos()),
			Call: "os." + sel.Sel.Name,
			Msg:  reason,
		})
		return true
	})
	return out, nil
}

// CheckTree walks every non-test .go file under root (skipping testdata
// directories) and returns all violations, in file order.
func CheckTree(root string) ([]Finding, error) {
	fset := token.NewFileSet()
	var out []Finding
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if d.Name() == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		fs, ferr := CheckFile(fset, path)
		if ferr != nil {
			return ferr
		}
		out = append(out, fs...)
		return nil
	})
	return out, err
}
