// Package lint implements the repository's custom vet pass: a small
// go/ast analysis, in the style of a go/analysis Analyzer but built on
// the standard library only, enforcing the repository's source rules.
//
// First, command code may not make raw destructive file writes
// (os.Create, os.WriteFile, write-mode os.OpenFile); it must route
// output through internal/atomicio, whose write-to-temp-then-rename
// discipline means an interrupted run never leaves a torn profile,
// checkpoint, or image at the destination path.
//
// Second, report-emitting code may not range directly over an
// analysis fact table (fields named Sites, Regs, Slots — notably the
// map-typed Predictions.Sites and Facts.Regs/Slots): Go map order is
// randomized, so ranging one inside a loop that prints or writes rows
// yields nondeterministic reports and un-diffable golden files. Such
// code must go through the sorted accessors (e.g.
// Predictions.SitePCs) or collect-and-sort first; order-insensitive
// folds over the same maps are fine. The check is name-based — a
// stdlib-only pass has no type information — so slice-typed fields
// with these names are held to the same discipline (indexed
// iteration), which also keeps the call sites safe if a field's
// representation ever changes to a map.
//
// Third, job-body code in internal/parallel may not allocate per-job
// execution state: no vm.New/vm.NewSized, atom.Prepare, or
// core.NewValueProfiler calls, and no make([]int64, ...) /
// make([]uint8, ...) (fresh register or hook-bit arrays). All of that
// must go through the arena (arena.go, the single exempt file), so the
// pool's allocation-reuse optimization cannot silently regress one
// call site at a time. Test files are exempt — they construct fixtures
// and measure the unpooled baseline on purpose.
//
// Fourth, daemon code in internal/serve may not call os.Exit (a
// handler reports errors over the wire; only a command's main may end
// the process), and may not construct per-job execution state outside
// the arena path: vm.New/vm.NewSized, atom.Prepare, and
// core.NewValueProfiler are banned there just as in the pool package,
// because every VM and profiler a request touches must come from
// parallel.AcquireVM/AcquireProfiler. Raw destructive writes are
// covered by the first rule, which applies to every tree vvet runs
// over — make lint runs it on internal/serve.
package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"path"
	"path/filepath"
	"strconv"
	"strings"
)

// Finding is one rule violation.
type Finding struct {
	Pos  token.Position
	Call string // the offending call, e.g. "os.Create"
	Msg  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Pos, f.Call, f.Msg)
}

// banned maps functions in the os package to the reason they may not be
// called directly from command code.
var banned = map[string]string{
	"Create":    "use internal/atomicio so a crash mid-write cannot leave a torn file",
	"WriteFile": "use internal/atomicio so a crash mid-write cannot leave a torn file",
	"OpenFile":  "use internal/atomicio for write-mode opens; direct opens are only safe read-only",
}

// arenaScoped reports whether path falls under the per-job allocation
// rule: a non-test file in a directory named parallel (the worker-pool
// package, however the tree is rooted) other than arena.go itself.
func arenaScoped(path string) bool {
	if filepath.Base(filepath.Dir(path)) != "parallel" {
		return false
	}
	base := filepath.Base(path)
	return base != "arena.go" && !strings.HasSuffix(base, "_test.go")
}

// arenaBanned maps package-qualified calls to the arena replacement a
// job body must use instead.
var arenaBanned = map[string]string{
	"vm.New":                "acquire per-job VMs through the arena (AcquireVM) so pooling cannot silently regress",
	"vm.NewSized":           "acquire per-job VMs through the arena (AcquireVM) so pooling cannot silently regress",
	"atom.Prepare":          "use atom.PrepareOn with an arena-acquired VM; Prepare allocates a fresh one per job",
	"core.NewValueProfiler": "acquire per-job profilers through the arena (AcquireProfiler) so pooling cannot silently regress",
}

// serveScoped reports whether path falls under the daemon rule: a
// non-test file in a directory named serve (the profiling-as-a-service
// package, however the tree is rooted).
func serveScoped(path string) bool {
	if filepath.Base(filepath.Dir(path)) != "serve" {
		return false
	}
	return !strings.HasSuffix(filepath.Base(path), "_test.go")
}

// serveViolation flags daemon-scoped calls: os.Exit anywhere in serve
// code (handlers report errors over the wire, they never end the
// process), and the same arena-bypassing constructors the pool rule
// bans — a request's VMs and profilers must come from the arena.
func serveViolation(fset *token.FileSet, call *ast.CallExpr, importNames map[string]string, osName string) *Finding {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	pkg, ok := sel.X.(*ast.Ident)
	if !ok {
		return nil
	}
	if osName != "" && pkg.Name == osName && sel.Sel.Name == "Exit" {
		return &Finding{
			Pos:  fset.Position(call.Pos()),
			Call: "os.Exit",
			Msg:  "serve handlers report errors over the wire; only a command's main may end the process",
		}
	}
	canonical, ok := importNames[pkg.Name]
	if !ok {
		return nil
	}
	qualified := canonical + "." + sel.Sel.Name
	if reason, ok := arenaBanned[qualified]; ok {
		return &Finding{Pos: fset.Position(call.Pos()), Call: qualified, Msg: reason}
	}
	return nil
}

// arenaViolation flags per-job allocation in a pool job body: a banned
// constructor call (resolved through the file's actual import names)
// or a fresh register/hook-bit array (make of []int64 or []uint8).
func arenaViolation(fset *token.FileSet, call *ast.CallExpr, importNames map[string]string) *Finding {
	switch fn := call.Fun.(type) {
	case *ast.SelectorExpr:
		pkg, ok := fn.X.(*ast.Ident)
		if !ok {
			return nil
		}
		canonical, ok := importNames[pkg.Name]
		if !ok {
			return nil
		}
		qualified := canonical + "." + fn.Sel.Name
		if reason, ok := arenaBanned[qualified]; ok {
			return &Finding{Pos: fset.Position(call.Pos()), Call: qualified, Msg: reason}
		}
	case *ast.Ident:
		if fn.Name != "make" || len(call.Args) == 0 {
			return nil
		}
		arr, ok := call.Args[0].(*ast.ArrayType)
		if !ok || arr.Len != nil {
			return nil
		}
		elt, ok := arr.Elt.(*ast.Ident)
		if !ok || (elt.Name != "int64" && elt.Name != "uint8") {
			return nil
		}
		return &Finding{
			Pos:  fset.Position(call.Pos()),
			Call: "make([]" + elt.Name + ")",
			Msg:  "per-job register/hook-bit arrays must come from arena-recycled state, not a fresh make",
		}
	}
	return nil
}

// readOnlyOpenFile reports whether an os.OpenFile call is provably
// read-only: its flag argument is the literal O_RDONLY selector on the
// os package (under whatever name the file imports it). Anything more
// complex is flagged.
func readOnlyOpenFile(call *ast.CallExpr, osName string) bool {
	if len(call.Args) < 2 {
		return false
	}
	sel, ok := call.Args[1].(*ast.SelectorExpr)
	if !ok {
		return false
	}
	pkg, ok := sel.X.(*ast.Ident)
	return ok && pkg.Name == osName && sel.Sel.Name == "O_RDONLY"
}

// CheckFile parses one Go source file and returns its violations.
// Test files are exempt: tests routinely create fixtures and their
// half-written files never outlive the test's temp directory.
func CheckFile(fset *token.FileSet, fpath string) ([]Finding, error) {
	if strings.HasSuffix(fpath, "_test.go") {
		return nil, nil
	}
	file, err := parser.ParseFile(fset, fpath, nil, parser.SkipObjectResolution)
	if err != nil {
		return nil, err
	}

	// Resolve which local name refers to the os package ("" if the file
	// never imports it), and — for arena-scoped files — which local
	// names refer to the per-job state packages.
	osName := ""
	poolImports := map[string]string{}
	for _, imp := range file.Imports {
		p, err := strconv.Unquote(imp.Path.Value)
		if err != nil {
			continue
		}
		name := path.Base(p)
		if imp.Name != nil {
			name = imp.Name.Name
		}
		switch p {
		case "os":
			osName = name
		case "valueprof/internal/vm", "valueprof/internal/atom", "valueprof/internal/core":
			poolImports[name] = path.Base(p)
		}
	}
	poolFile := arenaScoped(fpath)
	serveFile := serveScoped(fpath)

	var out []Finding
	ast.Inspect(file, func(n ast.Node) bool {
		if poolFile {
			if call, ok := n.(*ast.CallExpr); ok {
				if f := arenaViolation(fset, call, poolImports); f != nil {
					out = append(out, *f)
				}
			}
		}
		if serveFile {
			if call, ok := n.(*ast.CallExpr); ok {
				if f := serveViolation(fset, call, poolImports, osName); f != nil {
					out = append(out, *f)
				}
			}
		}
		if rs, ok := n.(*ast.RangeStmt); ok {
			if name, bad := emittingFactRange(rs); bad {
				out = append(out, Finding{
					Pos:  fset.Position(rs.Pos()),
					Call: "range ." + name,
					Msg:  "fact-table map order is randomized; emit through the sorted accessor (e.g. SitePCs) or sort keys first",
				})
			}
			return true
		}
		if osName == "" || osName == "_" {
			return true
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkg, ok := sel.X.(*ast.Ident)
		if !ok || pkg.Name != osName {
			return true
		}
		reason, ok := banned[sel.Sel.Name]
		if !ok {
			return true
		}
		if sel.Sel.Name == "OpenFile" && readOnlyOpenFile(call, osName) {
			return true
		}
		out = append(out, Finding{
			Pos:  fset.Position(call.Pos()),
			Call: "os." + sel.Sel.Name,
			Msg:  reason,
		})
		return true
	})
	return out, nil
}

// factTables names the map-typed fields of analysis results whose
// iteration order must never reach a report: Predictions.Sites,
// Facts.Regs, Facts.Slots.
var factTables = map[string]bool{
	"Sites": true,
	"Regs":  true,
	"Slots": true,
}

// emitCalls are method/function names whose invocation inside a loop
// body marks the loop as report-emitting: ordered output escapes.
var emitCalls = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"Row": true, "Write": true, "WriteString": true, "Encode": true,
}

// emittingFactRange reports whether rs ranges directly over a
// fact-table field while its body emits output. The check is
// syntactic: any `range x.Sites` (etc.) whose body calls a printing,
// table-row, or encoder method is flagged. Order-insensitive folds —
// counting, summing, collecting keys for a later sort — do not emit
// and pass.
func emittingFactRange(rs *ast.RangeStmt) (string, bool) {
	sel, ok := rs.X.(*ast.SelectorExpr)
	if !ok || !factTables[sel.Sel.Name] {
		return "", false
	}
	emits := false
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fn := call.Fun.(type) {
		case *ast.SelectorExpr:
			if emitCalls[fn.Sel.Name] {
				emits = true
			}
		case *ast.Ident:
			if emitCalls[fn.Name] {
				emits = true
			}
		}
		return !emits
	})
	return sel.Sel.Name, emits
}

// CheckTree walks every non-test .go file under root (skipping testdata
// directories) and returns all violations, in file order.
func CheckTree(root string) ([]Finding, error) {
	fset := token.NewFileSet()
	var out []Finding
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if d.Name() == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		fs, ferr := CheckFile(fset, path)
		if ferr != nil {
			return ferr
		}
		out = append(out, fs...)
		return nil
	})
	return out, err
}
