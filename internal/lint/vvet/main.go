// vvet runs the repository's custom lint pass (see internal/lint) over
// the given directory trees, defaulting to cmd/. It exits nonzero when
// any command bypasses internal/atomicio with a raw destructive write.
//
// Usage (from the repository root, as make ci does):
//
//	go run ./internal/lint/vvet [dir ...]
package main

import (
	"fmt"
	"os"

	"valueprof/internal/lint"
)

func main() {
	roots := os.Args[1:]
	if len(roots) == 0 {
		roots = []string{"cmd"}
	}
	bad := false
	for _, root := range roots {
		findings, err := lint.CheckTree(root)
		if err != nil {
			fmt.Fprintf(os.Stderr, "vvet: %v\n", err)
			os.Exit(2)
		}
		for _, f := range findings {
			fmt.Println(f)
			bad = true
		}
	}
	if bad {
		os.Exit(1)
	}
}
