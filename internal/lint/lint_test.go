package lint

import (
	"go/token"
	"os"
	"path/filepath"
	"testing"
)

func check(t *testing.T, src string) []Finding {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "main.go")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	fs, err := CheckFile(token.NewFileSet(), path)
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

func TestFlagsRawWrites(t *testing.T) {
	fs := check(t, `package main

import "os"

func main() {
	f, _ := os.Create("out.json")
	f.Close()
	os.WriteFile("x", nil, 0o644)
	os.OpenFile("y", os.O_WRONLY|os.O_CREATE, 0o644)
}
`)
	if len(fs) != 3 {
		t.Fatalf("findings = %d (%v), want 3", len(fs), fs)
	}
	if fs[0].Call != "os.Create" || fs[0].Pos.Line != 6 {
		t.Errorf("first finding = %v", fs[0])
	}
}

func TestAllowsReadsAndAliases(t *testing.T) {
	fs := check(t, `package main

import (
	stdos "os"
)

func main() {
	stdos.Open("in.json")
	stdos.ReadFile("in.json")
	stdos.OpenFile("in.json", stdos.O_RDONLY, 0)
}
`)
	if len(fs) != 0 {
		t.Fatalf("findings = %v, want none", fs)
	}
}

func TestAliasedImportStillCaught(t *testing.T) {
	fs := check(t, `package main

import stdos "os"

func main() {
	stdos.Create("out")
}
`)
	if len(fs) != 1 || fs[0].Call != "os.Create" {
		t.Fatalf("findings = %v, want one os.Create", fs)
	}
}

func TestOtherPackagesIgnored(t *testing.T) {
	// A different package named os-like, or a local variable named os,
	// must not be confused with the stdlib os package when os is not
	// imported.
	fs := check(t, `package main

type fake struct{}

func (fake) Create(string) {}

var os fake

func main() {
	os.Create("x")
}
`)
	if len(fs) != 0 {
		t.Fatalf("findings = %v, want none", fs)
	}
}

// checkAt writes src at a repo-relative path inside a temp root and
// lints it, so path-scoped rules (the arena discipline) see the
// location they key on.
func checkAt(t *testing.T, rel, src string) []Finding {
	t.Helper()
	full := filepath.Join(t.TempDir(), filepath.FromSlash(rel))
	if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(full, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	fs, err := CheckFile(token.NewFileSet(), full)
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

func TestFlagsPerJobAllocationInParallel(t *testing.T) {
	src := `package parallel

import (
	"valueprof/internal/atom"
	thevm "valueprof/internal/vm"
)

func runOne(prog *Program) {
	v := thevm.NewSized(prog, 1<<20)
	_ = atom.Prepare(prog, atom.RunOptions{})
	regs := make([]int64, 32)
	bits := make([]uint8, 128)
	_, _, _ = v, regs, bits
}
`
	fs := checkAt(t, "internal/parallel/parallel.go", src)
	if len(fs) != 4 {
		t.Fatalf("findings = %d (%v), want 4", len(fs), fs)
	}
	if fs[0].Call != "vm.NewSized" || fs[1].Call != "atom.Prepare" ||
		fs[2].Call != "make([]int64)" || fs[3].Call != "make([]uint8)" {
		t.Errorf("findings = %v", fs)
	}
}

func TestArenaFileAndOtherPackagesExempt(t *testing.T) {
	src := `package parallel

import "valueprof/internal/vm"

func fresh(prog *Program) *vm.VM { return vm.New(prog) }
`
	if fs := checkAt(t, "internal/parallel/arena.go", src); len(fs) != 0 {
		t.Errorf("arena.go findings = %v, want none", fs)
	}
	if fs := checkAt(t, "internal/supervise/supervise.go", src); len(fs) != 0 {
		t.Errorf("out-of-scope findings = %v, want none", fs)
	}
	// Byte slices and sized maps are not per-job register state.
	ok := `package parallel

func buffers(n int) ([][]byte, []int) {
	return make([][]byte, n), make([]int, n)
}
`
	if fs := checkAt(t, "internal/parallel/bench.go", ok); len(fs) != 0 {
		t.Errorf("benign allocation findings = %v, want none", fs)
	}
}

func TestFlagsServeViolations(t *testing.T) {
	// The negative fixture: a serve handler that kills the process,
	// constructs its own VM and profiler, and writes a file raw. Every
	// one of those is a distinct finding.
	src := `package serve

import (
	"os"

	"valueprof/internal/core"
	"valueprof/internal/vm"
)

func handleRun(prog *Program) {
	v := vm.New(prog)
	vp := core.NewValueProfiler(core.Options{})
	os.WriteFile("result.json", nil, 0o644)
	if v == nil || vp == nil {
		os.Exit(1)
	}
}
`
	fs := checkAt(t, "internal/serve/handlers.go", src)
	if len(fs) != 4 {
		t.Fatalf("findings = %d (%v), want 4", len(fs), fs)
	}
	calls := map[string]bool{}
	for _, f := range fs {
		calls[f.Call] = true
	}
	for _, want := range []string{"vm.New", "core.NewValueProfiler", "os.WriteFile", "os.Exit"} {
		if !calls[want] {
			t.Errorf("missing finding %q in %v", want, fs)
		}
	}
}

func TestServeScopeExemptions(t *testing.T) {
	// os.Exit is only banned in serve scope: command main functions and
	// serve test files keep it.
	src := `package main

import "os"

func main() {
	os.Exit(2)
}
`
	if fs := checkAt(t, "cmd/vprofd/main.go", src); len(fs) != 0 {
		t.Errorf("cmd findings = %v, want none", fs)
	}
	testSrc := `package serve

import (
	"os"

	"valueprof/internal/vm"
)

func fixture(prog *Program) {
	_ = vm.New(prog)
	os.Exit(1)
}
`
	full := filepath.Join(t.TempDir(), "internal", "serve", "serve_test.go")
	if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(full, []byte(testSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	fs, err := CheckFile(token.NewFileSet(), full)
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 0 {
		t.Errorf("serve test-file findings = %v, want none", fs)
	}
	// Benign serve code — reads, arena acquires, slices — is clean.
	ok := `package serve

import (
	"os"

	"valueprof/internal/parallel"
)

func load(path string, n int) ([]byte, []int64) {
	v := parallel.AcquireVM(nil, 0)
	defer parallel.ReleaseVM(v)
	b, _ := os.ReadFile(path)
	return b, make([]int64, n)
}
`
	if fs := checkAt(t, "internal/serve/runner.go", ok); len(fs) != 0 {
		t.Errorf("benign serve findings = %v, want none", fs)
	}
}

func TestCheckTreeCleanOnServe(t *testing.T) {
	// The daemon package itself must obey the rule it motivated (make
	// lint runs this tree).
	root := filepath.Join("..", "serve")
	if _, err := os.Stat(root); err != nil {
		t.Skip("internal/serve not present")
	}
	fs, err := CheckTree(root)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range fs {
		t.Errorf("unexpected finding: %s", f)
	}
}

func TestCheckTreeCleanOnParallel(t *testing.T) {
	// The pool package itself must obey the arena discipline the rule
	// exists to enforce (make lint runs this tree).
	root := filepath.Join("..", "parallel")
	if _, err := os.Stat(root); err != nil {
		t.Skip("internal/parallel not present")
	}
	fs, err := CheckTree(root)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range fs {
		t.Errorf("unexpected finding: %s", f)
	}
}

func TestCheckTreeOnRepoCommands(t *testing.T) {
	// The repository's own commands must be clean: this is the check
	// make ci runs.
	root := "../../cmd"
	if _, err := os.Stat(root); err != nil {
		t.Skip("cmd/ not present")
	}
	fs, err := CheckTree(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 0 {
		t.Errorf("repository commands use raw writes:\n%v", fs)
	}
}

func TestFlagsEmittingFactTableRange(t *testing.T) {
	fs := check(t, `package main

import "fmt"

func report(pred *Predictions) {
	for pc, sp := range pred.Sites {
		fmt.Printf("%d: %v\n", pc, sp)
	}
}
`)
	if len(fs) != 1 {
		t.Fatalf("findings = %d (%v), want 1", len(fs), fs)
	}
	if fs[0].Call != "range .Sites" {
		t.Errorf("finding = %v", fs[0])
	}
}

func TestAllowsOrderInsensitiveFactTableRange(t *testing.T) {
	fs := check(t, `package main

import "sort"

func sitePCs(pred *Predictions) []int {
	// Counting and key collection do not leak map order.
	n := 0
	for range pred.Sites {
		n++
	}
	pcs := make([]int, 0, n)
	for pc := range pred.Sites {
		pcs = append(pcs, pc)
	}
	sort.Ints(pcs)
	return pcs
}

func emitSorted(pred *Predictions, emit func(int)) {
	for _, pc := range sitePCs(pred) {
		emit(pc)
	}
}
`)
	if len(fs) != 0 {
		t.Fatalf("findings = %v, want none", fs)
	}
}

func TestFlagsFactTableRangeIntoTableRows(t *testing.T) {
	fs := check(t, `package main

func report(f *Facts, tab *Table) {
	for r, v := range f.Regs {
		tab.Row(r, v)
	}
	for s, v := range f.Slots {
		tab.Row(s, v)
	}
}
`)
	if len(fs) != 2 {
		t.Fatalf("findings = %d (%v), want 2", len(fs), fs)
	}
}

func TestCheckTreeCleanOnAnalysis(t *testing.T) {
	// The analysis package itself must respect the fact-table rule its
	// maps exist to enforce.
	root := filepath.Join("..", "analysis")
	if _, err := os.Stat(root); err != nil {
		t.Skip("internal/analysis not present")
	}
	fs, err := CheckTree(root)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range fs {
		t.Errorf("unexpected finding: %s", f)
	}
}
