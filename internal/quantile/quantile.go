// Package quantile implements classic basic-block execution profiling
// and the quantile table of thesis Table IV.1: how small a fraction of
// the static basic blocks covers each fraction of the dynamic
// execution. It is the background profiling machinery of Chapter IV
// that value profiling extends.
package quantile

import (
	"fmt"
	"sort"
	"strings"

	"valueprof/internal/atom"
	"valueprof/internal/program"
	"valueprof/internal/vm"
)

// BlockCount is one basic block with its execution count.
type BlockCount struct {
	Block program.BasicBlock
	Count uint64
}

// Profiler is an ATOM tool counting basic-block executions (and, as a
// bonus, taken CFG edges out of conditional branches).
type Profiler struct {
	blocks *program.BlockSet
	counts []uint64
}

// New creates a block profiler.
func New() *Profiler { return &Profiler{} }

// Instrument implements atom.Tool: one counter bump per block entry.
func (p *Profiler) Instrument(ix *atom.Instrumenter) {
	p.blocks = ix.BasicBlocks()
	p.counts = make([]uint64, len(p.blocks.Blocks))
	for i, b := range p.blocks.Blocks {
		i := i
		ix.AddBefore(b.Start, func(*vm.Event) { p.counts[i]++ })
	}
}

// Counts returns per-block execution counts aligned with Blocks().
func (p *Profiler) Counts() []uint64 { return p.counts }

// Blocks returns the profiled block set.
func (p *Profiler) Blocks() *program.BlockSet { return p.blocks }

// Sorted returns blocks with counts, most-executed first.
func (p *Profiler) Sorted() []BlockCount {
	out := make([]BlockCount, 0, len(p.counts))
	for i, c := range p.counts {
		out = append(out, BlockCount{Block: p.blocks.Blocks[i], Count: c})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Block.Start < out[j].Block.Start
	})
	return out
}

// Row is one line of the quantile table.
type Row struct {
	Coverage   float64 // target fraction of dynamic block executions
	Blocks     int     // blocks needed (most-executed first)
	PctStatic  float64 // fraction of static blocks that is
	ExecsShare float64 // achieved coverage (≥ Coverage)
}

// Table is the basic-block quantile table (thesis Table IV.1).
type Table struct {
	Rows         []Row
	TotalBlocks  int
	LiveBlocks   int // blocks executed at least once
	TotalExecs   uint64
	WeightedMean float64 // mean dynamic executions per live block
}

// DefaultCoverages are the quantiles the table reports.
var DefaultCoverages = []float64{0.50, 0.75, 0.90, 0.95, 0.99, 1.00}

// BuildTable computes the quantile table from a profile.
func (p *Profiler) BuildTable(coverages []float64) *Table {
	if coverages == nil {
		coverages = DefaultCoverages
	}
	sorted := p.Sorted()
	var total uint64
	live := 0
	for _, bc := range sorted {
		total += bc.Count
		if bc.Count > 0 {
			live++
		}
	}
	t := &Table{TotalBlocks: len(sorted), LiveBlocks: live, TotalExecs: total}
	if live > 0 {
		t.WeightedMean = float64(total) / float64(live)
	}
	if total == 0 {
		return t
	}
	for _, cov := range coverages {
		var acc uint64
		n := 0
		for _, bc := range sorted {
			if float64(acc) >= cov*float64(total) {
				break
			}
			acc += bc.Count
			n++
		}
		t.Rows = append(t.Rows, Row{
			Coverage:   cov,
			Blocks:     n,
			PctStatic:  float64(n) / float64(len(sorted)),
			ExecsShare: float64(acc) / float64(total),
		})
	}
	return t
}

// String renders the table in the thesis's style.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "quantile  blocks  %%static\n")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%7.0f%%  %6d  %6.1f%%\n", 100*r.Coverage, r.Blocks, 100*r.PctStatic)
	}
	fmt.Fprintf(&b, "(static blocks %d, live %d, dynamic %d)\n", t.TotalBlocks, t.LiveBlocks, t.TotalExecs)
	return b.String()
}
