package quantile

import (
	"strings"
	"testing"

	"valueprof/internal/atom"
	"valueprof/internal/minic"
)

const quantProg = `
func hot(n) {
    var i; var s = 0;
    for (i = 0; i < n; i = i + 1) { s = s + i; }
    return s;
}
func cold() { return 42; }
func main() {
    var i; var acc = 0;
    for (i = 0; i < 50; i = i + 1) { acc = acc + hot(100); }
    acc = acc + cold();
    putint(acc);
}
`

func runQuant(t *testing.T) *Profiler {
	t.Helper()
	prog, err := minic.Compile(quantProg)
	if err != nil {
		t.Fatal(err)
	}
	p := New()
	if _, err := atom.Run(prog, nil, false, p); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestBlockCountsConsistent(t *testing.T) {
	p := runQuant(t)
	sorted := p.Sorted()
	if len(sorted) == 0 {
		t.Fatal("no blocks")
	}
	// Hottest block must be the hot() loop body, executed 50*100 times
	// (plus loop mechanics); definitely ≥ 5000.
	if sorted[0].Count < 5000 {
		t.Errorf("hottest block count = %d", sorted[0].Count)
	}
	for i := 1; i < len(sorted); i++ {
		if sorted[i-1].Count < sorted[i].Count {
			t.Fatal("Sorted not descending")
		}
	}
}

func TestQuantileTableShape(t *testing.T) {
	p := runQuant(t)
	tab := p.BuildTable(nil)
	if len(tab.Rows) != len(DefaultCoverages) {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	prev := 0
	for i, r := range tab.Rows {
		if r.Blocks < prev {
			t.Errorf("row %d: blocks decreased", i)
		}
		prev = r.Blocks
		if r.ExecsShare+1e-9 < r.Coverage {
			t.Errorf("row %d: achieved %v < target %v", i, r.ExecsShare, r.Coverage)
		}
		if r.PctStatic < 0 || r.PctStatic > 1 {
			t.Errorf("row %d: pctStatic %v", i, r.PctStatic)
		}
	}
	// The paper's point: a small static fraction covers most execution.
	r90 := tab.Rows[2] // 90%
	if r90.PctStatic > 0.5 {
		t.Errorf("90%% coverage needs %.0f%%%% of blocks; expected concentration", 100*r90.PctStatic)
	}
	last := tab.Rows[len(tab.Rows)-1]
	if last.Coverage == 1.0 && last.Blocks != tab.LiveBlocks {
		t.Errorf("100%% coverage needs %d blocks, live = %d", last.Blocks, tab.LiveBlocks)
	}
	if tab.LiveBlocks > tab.TotalBlocks || tab.LiveBlocks == 0 {
		t.Errorf("live=%d total=%d", tab.LiveBlocks, tab.TotalBlocks)
	}
}

func TestTableString(t *testing.T) {
	p := runQuant(t)
	s := p.BuildTable(nil).String()
	if !strings.Contains(s, "quantile") || !strings.Contains(s, "100%") {
		t.Errorf("table rendering:\n%s", s)
	}
}

func TestEmptyTable(t *testing.T) {
	tab := (&Profiler{counts: nil}).BuildTable(nil)
	_ = tab
	p := &Profiler{}
	prog, err := minic.Compile("func main() {}")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := atom.Run(prog, nil, false, p); err != nil {
		t.Fatal(err)
	}
	tb := p.BuildTable([]float64{0.5})
	if tb.TotalExecs == 0 {
		t.Error("even empty main executes some blocks")
	}
}
