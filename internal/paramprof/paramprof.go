// Package paramprof implements procedure-parameter value profiling: at
// every procedure entry the argument registers are observed, giving
// per-(procedure, argument) invariance and per-procedure "all arguments
// invariant" rates — the profile that drives code specialization
// (thesis Chapter X) and memoization (Richardson [32]).
package paramprof

import (
	"sort"

	"valueprof/internal/atom"
	"valueprof/internal/core"
	"valueprof/internal/isa"
	"valueprof/internal/vm"
)

// MaxArgs is how many argument registers are profiled when a
// procedure's arity is unknown.
const MaxArgs = 3

// Options configures a ParamProfiler.
type Options struct {
	TNV       core.TNVConfig
	TrackFull bool
	// Arity maps procedure name to its argument count; procedures not
	// listed are profiled on their first MaxArgs argument registers.
	// (The binary does not carry arity, exactly as the paper's Alpha
	// binaries did not; callers that know the source can supply it.)
	Arity map[string]int
	// Procs restricts profiling to the named procedures; nil profiles
	// every procedure in the program.
	Procs []string
}

// DefaultOptions profiles every procedure's first MaxArgs registers.
func DefaultOptions() Options { return Options{TNV: core.DefaultTNVConfig()} }

// ProcProfile is the parameter profile of one procedure.
type ProcProfile struct {
	Name  string
	Calls uint64
	// Args holds one SiteStats per profiled argument register.
	Args []*core.SiteStats
	// TupleTNV profiles the combined argument tuple (hashed), whose
	// top-1 invariance is the memoization hit-rate bound.
	TupleTNV *core.TNVTable
}

// AllArgsInvariance returns the tuple invariance estimate: the fraction
// of calls whose whole argument tuple matched the most common tuple.
func (p *ProcProfile) AllArgsInvariance() float64 { return p.TupleTNV.InvTop(1) }

// ParamProfiler is an ATOM tool profiling procedure parameters.
type ParamProfiler struct {
	opts  Options
	procs map[string]*ProcProfile
}

// New creates a parameter profiler.
func New(opts Options) *ParamProfiler {
	if opts.TNV.Size == 0 {
		opts.TNV = core.DefaultTNVConfig()
	}
	return &ParamProfiler{opts: opts, procs: make(map[string]*ProcProfile)}
}

// tupleHash mixes the profiled argument registers into one comparable
// value (FNV-style); collisions only overestimate tuple invariance and
// are vanishingly rare for realistic argument sets.
func tupleHash(args []int64) int64 {
	h := uint64(1469598103934665603)
	for _, a := range args {
		h ^= uint64(a)
		h *= 1099511628211
	}
	return int64(h)
}

// Instrument implements atom.Tool.
func (pp *ParamProfiler) Instrument(ix *atom.Instrumenter) {
	wanted := map[string]bool{}
	for _, n := range pp.opts.Procs {
		wanted[n] = true
	}
	for _, proc := range ix.Procedures() {
		if len(wanted) > 0 && !wanted[proc.Name] {
			continue
		}
		nargs := MaxArgs
		if n, ok := pp.opts.Arity[proc.Name]; ok {
			nargs = n
		}
		if nargs > isa.RegA5-isa.RegA0+1 {
			nargs = isa.RegA5 - isa.RegA0 + 1
		}
		prof := &ProcProfile{Name: proc.Name, TupleTNV: core.NewTNV(pp.opts.TNV)}
		for i := 0; i < nargs; i++ {
			prof.Args = append(prof.Args, core.NewSiteStats(proc.Start, proc.Name, pp.opts.TNV, pp.opts.TrackFull))
		}
		pp.procs[proc.Name] = prof

		// Procedure entry is reached both by calls and by loop
		// back-edges in odd code; for compiler-generated code the
		// entry block is call-only, matching the paper's ATOM
		// procedure-entry instrumentation.
		ix.AddProcEntry(proc, func(ev *vm.Event) {
			prof.Calls++
			buf := make([]int64, len(prof.Args))
			for i := range prof.Args {
				v := ev.VM.Regs[isa.RegA0+i]
				prof.Args[i].Observe(v)
				buf[i] = v
			}
			if len(buf) > 0 {
				prof.TupleTNV.Add(tupleHash(buf))
			}
		})
	}
}

// Report is the result of a parameter-profiling run.
type Report struct {
	Procs []*ProcProfile // sorted by calls descending
	K     int
}

// Report returns the collected profiles.
func (pp *ParamProfiler) Report() *Report {
	procs := make([]*ProcProfile, 0, len(pp.procs))
	for _, p := range pp.procs {
		procs = append(procs, p)
	}
	sort.Slice(procs, func(i, j int) bool {
		if procs[i].Calls != procs[j].Calls {
			return procs[i].Calls > procs[j].Calls
		}
		return procs[i].Name < procs[j].Name
	})
	return &Report{Procs: procs, K: pp.opts.TNV.Size}
}

// Proc returns the profile of the named procedure, or nil.
func (r *Report) Proc(name string) *ProcProfile {
	for _, p := range r.Procs {
		if p.Name == name {
			return p
		}
	}
	return nil
}

// Candidates returns procedures called at least minCalls times whose
// whole argument tuple is invariant at least thresh of the time — the
// specialization/memoization candidate list of Chapter X.
func (r *Report) Candidates(minCalls uint64, thresh float64) []*ProcProfile {
	var out []*ProcProfile
	for _, p := range r.Procs {
		if p.Calls >= minCalls && len(p.Args) > 0 && p.AllArgsInvariance() >= thresh {
			out = append(out, p)
		}
	}
	return out
}
