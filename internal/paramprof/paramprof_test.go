package paramprof

import (
	"testing"

	"valueprof/internal/asm"
	"valueprof/internal/atom"
	"valueprof/internal/core"
)

// main calls fixed(7, 9) 50 times and varies(i, 9) 50 times.
const paramSrc = `
        .proc main
main:   li s0, 50
loop:   li a0, 7
        li a1, 9
        jsr fixed
        mov a0, s0
        li a1, 9
        jsr varies
        addi s0, s0, -1
        bne s0, loop
        syscall exit
        .endproc
        .proc fixed
fixed:  add v0, a0, a1
        ret
        .endproc
        .proc varies
varies: sub v0, a0, a1
        ret
        .endproc
`

func runParam(t *testing.T, opts Options) *Report {
	t.Helper()
	prog, err := asm.Assemble(paramSrc)
	if err != nil {
		t.Fatal(err)
	}
	pp := New(opts)
	if _, err := atom.Run(prog, nil, false, pp); err != nil {
		t.Fatal(err)
	}
	return pp.Report()
}

func TestParamProfilerBasic(t *testing.T) {
	r := runParam(t, Options{
		TNV:   core.DefaultTNVConfig(),
		Arity: map[string]int{"fixed": 2, "varies": 2},
	})
	fixed := r.Proc("fixed")
	if fixed == nil || fixed.Calls != 50 {
		t.Fatalf("fixed profile: %+v", fixed)
	}
	if len(fixed.Args) != 2 {
		t.Fatalf("fixed args = %d", len(fixed.Args))
	}
	if fixed.Args[0].InvTop(1) != 1.0 || fixed.Args[1].InvTop(1) != 1.0 {
		t.Errorf("fixed arg invariance = %v, %v", fixed.Args[0].InvTop(1), fixed.Args[1].InvTop(1))
	}
	if fixed.AllArgsInvariance() != 1.0 {
		t.Errorf("fixed tuple invariance = %v", fixed.AllArgsInvariance())
	}

	varies := r.Proc("varies")
	if varies.Args[0].InvTop(1) >= 0.5 {
		t.Errorf("varying arg invariance = %v, want low", varies.Args[0].InvTop(1))
	}
	if varies.Args[1].InvTop(1) != 1.0 {
		t.Errorf("second arg of varies should be invariant, got %v", varies.Args[1].InvTop(1))
	}
	if varies.AllArgsInvariance() >= 0.5 {
		t.Errorf("varies tuple invariance = %v, want low", varies.AllArgsInvariance())
	}
}

func TestParamCandidates(t *testing.T) {
	r := runParam(t, Options{
		TNV:   core.DefaultTNVConfig(),
		Arity: map[string]int{"fixed": 2, "varies": 2},
	})
	cands := r.Candidates(10, 0.9)
	if len(cands) != 1 || cands[0].Name != "fixed" {
		t.Errorf("candidates = %+v, want [fixed]", cands)
	}
	// A high call floor filters everything.
	if got := r.Candidates(1000, 0.9); len(got) != 0 {
		t.Errorf("candidates with high floor = %+v", got)
	}
}

func TestParamProcsRestriction(t *testing.T) {
	r := runParam(t, Options{
		TNV:   core.DefaultTNVConfig(),
		Procs: []string{"fixed"},
	})
	if r.Proc("varies") != nil || r.Proc("main") != nil {
		t.Error("restriction ignored")
	}
	if r.Proc("fixed") == nil {
		t.Error("restricted proc missing")
	}
}

func TestParamDefaultArity(t *testing.T) {
	r := runParam(t, Options{TNV: core.DefaultTNVConfig()})
	fixed := r.Proc("fixed")
	if len(fixed.Args) != MaxArgs {
		t.Errorf("default arity = %d, want %d", len(fixed.Args), MaxArgs)
	}
}

func TestReportOrderedByCalls(t *testing.T) {
	r := runParam(t, Options{TNV: core.DefaultTNVConfig()})
	if len(r.Procs) != 3 {
		t.Fatalf("procs = %d", len(r.Procs))
	}
	for i := 1; i < len(r.Procs); i++ {
		if r.Procs[i-1].Calls < r.Procs[i].Calls {
			t.Errorf("report not sorted by calls: %v", r.Procs)
		}
	}
	if r.Proc("main").Calls != 1 {
		t.Errorf("main calls = %d", r.Proc("main").Calls)
	}
}

func TestTupleHashDistinguishes(t *testing.T) {
	a := tupleHash([]int64{1, 2, 3})
	b := tupleHash([]int64{3, 2, 1})
	c := tupleHash([]int64{1, 2, 3})
	if a == b {
		t.Error("order-insensitive tuple hash")
	}
	if a != c {
		t.Error("tuple hash not deterministic")
	}
}
