package vm

import (
	"context"
	"errors"
	"fmt"
	"time"

	"valueprof/internal/isa"
)

// DefaultQuantum is the number of instructions executed between control
// checks (context cancellation and wall-clock deadline) in
// RunControlled. Amortizing the checks keeps the interpreter fast path
// free of time.Now / atomic loads.
const DefaultQuantum = 4096

// RunOutcome classifies how a run ended. Every outcome other than
// OutcomeCompleted still leaves the VM (and any attached analysis
// tools) holding valid partial state up to the stopping point; callers
// salvage profiles rather than discarding them.
type RunOutcome int

const (
	// OutcomeCompleted means the program exited normally.
	OutcomeCompleted RunOutcome = iota
	// OutcomeFaulted means the guest program faulted (bad memory
	// access, division by zero, illegal pc, ...).
	OutcomeFaulted
	// OutcomeDeadline means the wall-clock deadline expired.
	OutcomeDeadline
	// OutcomeCancelled means the run context was cancelled (SIGINT,
	// caller shutdown).
	OutcomeCancelled
	// OutcomeLimit means the instruction step limit was exhausted.
	OutcomeLimit
)

func (o RunOutcome) String() string {
	switch o {
	case OutcomeCompleted:
		return "completed"
	case OutcomeFaulted:
		return "faulted"
	case OutcomeDeadline:
		return "deadline"
	case OutcomeCancelled:
		return "cancelled"
	case OutcomeLimit:
		return "limit"
	}
	return fmt.Sprintf("RunOutcome(%d)", int(o))
}

// Partial reports whether the run stopped before the program finished,
// i.e. whether any collected profile covers only a prefix of the run.
func (o RunOutcome) Partial() bool { return o != OutcomeCompleted }

// LimitError reports step-limit exhaustion. It is distinct from Fault
// so that budget exhaustion (a host policy decision) is not confused
// with guest misbehavior.
type LimitError struct {
	Limit uint64
	PC    int
}

func (e *LimitError) Error() string {
	return fmt.Sprintf("vm: step limit %d exceeded at pc %d", e.Limit, e.PC)
}

// StepFn is a per-instruction control hook, invoked after every
// executed instruction while attached. Returning a non-nil error stops
// the run; the error is classified into a RunOutcome (a *Fault behaves
// like a guest fault, context.Canceled like a cancellation, and so on),
// which is what the fault-injection harness uses to kill runs at exact
// instruction counts. Unlike Hook it may observe InstCount already
// advanced past the instruction just executed.
type StepFn func(*VM) error

// HookStep attaches a per-instruction control hook. Step hooks are the
// attachment point for checkpointing and fault injection; they run on
// every instruction, so they should do a cheap counter compare before
// any real work. Attaching one disables pair fusion (fused pairs would
// skip the hook between their two instructions).
func (v *VM) HookStep(fn StepFn) {
	v.stepFns = append(v.stepFns, fn)
	v.fuseDirty = true
	for i := range v.fused {
		v.fused[i] = fuseNone
	}
}

// ClassifyError maps an error returned by a step hook (or by the run
// loop itself) onto a RunOutcome.
func ClassifyError(err error) RunOutcome {
	if err == nil {
		return OutcomeCompleted
	}
	if errors.Is(err, context.DeadlineExceeded) {
		return OutcomeDeadline
	}
	if errors.Is(err, context.Canceled) {
		return OutcomeCancelled
	}
	var le *LimitError
	if errors.As(err, &le) {
		return OutcomeLimit
	}
	return OutcomeFaulted
}

// RunControlled executes until the program exits, the guest faults, the
// step limit is exhausted, ctx is cancelled, or the VM's Deadline
// passes. ctx and the deadline are checked once per quantum
// (v.Quantum, default DefaultQuantum); faults and the step limit are
// exact.
//
// Unlike Run, a stopped run is not treated as a total loss: the VM
// state (and everything instrumentation hooks accumulated) remains
// valid up to the stopping point, end-of-program hooks still run so
// analysis tools can finalize, and the outcome tells the caller what
// interrupted the run. err is nil iff the outcome is OutcomeCompleted.
func (v *VM) RunControlled(ctx context.Context) (RunOutcome, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	quantum := v.Quantum
	if quantum == 0 {
		quantum = DefaultQuantum
	}
	deadline := v.Deadline
	if d, ok := ctx.Deadline(); ok && (deadline.IsZero() || d.Before(deadline)) {
		deadline = d
	}

	outcome, err := v.runLoop(ctx, quantum, deadline)
	// End-of-program analysis hooks run for every outcome so that
	// tools which finalize at program end still salvage partial runs.
	if v.atEnd != nil {
		ev := &Event{VM: v, PC: v.PC}
		for _, h := range v.atEnd {
			h(ev)
		}
	}
	return outcome, err
}

// Fusion kinds, per pc: how the instruction at pc and its successors
// execute as one dispatch. Pairs fuse a straight-line op with the
// branch that follows it — the shape dominating interpreter time in
// loop-heavy code (compare/add feeding the latch branch). Three-op
// superinstructions extend that one step further: (op, op, branch)
// covers op+cmp+branch loop latches, and (op, cond-branch, op) covers
// cmp+branch+fallthrough chains, retiring the fallthrough instruction
// in the same dispatch when the branch is not taken. Every kind
// requires zero hook bits on all covered pcs and no step hooks.
const (
	fuseNone uint8 = iota
	fuseBr         // successor is an unconditional branch
	fuseBeq        // successor branches if its Ra == 0
	fuseBne        // successor branches if its Ra != 0
	// Three-op kinds: two straight-line ops feeding the branch at pc+2.
	// Always retire three instructions.
	fuse3Br
	fuse3Beq
	fuse3Bne
	// Fallthrough kinds: straight-line op, conditional branch at pc+1,
	// straight-line op at pc+2. Retire two instructions when the branch
	// is taken, three when it falls through.
	fuseFallBeq
	fuseFallBne
)

// refreshFusion recomputes the fused-region cache from the current
// code and hook state. Called lazily at run start when hooks changed.
// Three-op kinds are preferred over pairs at the same pc; overlapping
// entries are fine because the cache is only consulted at the entry pc
// actually reached.
func (v *VM) refreshFusion() {
	v.ensureHookState()
	code := v.Prog.Code
	if len(v.fused) != len(code) {
		v.fused = growClear(v.fused, len(code))
	} else {
		for i := range v.fused {
			v.fused[i] = fuseNone
		}
	}
	v.fuseDirty = false
	if len(v.stepFns) > 0 {
		return
	}
	for pc := 0; pc+1 < len(code); pc++ {
		if v.hookBits[pc] != 0 || !fusibleFirst[code[pc].Op] {
			continue
		}
		if pc+2 < len(code) && v.hookBits[pc+1] == 0 && v.hookBits[pc+2] == 0 {
			if fusibleFirst[code[pc+1].Op] {
				switch code[pc+2].Op {
				case isa.OpBr:
					v.fused[pc] = fuse3Br
					continue
				case isa.OpBeq:
					v.fused[pc] = fuse3Beq
					continue
				case isa.OpBne:
					v.fused[pc] = fuse3Bne
					continue
				}
			}
			if fusibleFirst[code[pc+2].Op] {
				switch code[pc+1].Op {
				case isa.OpBeq:
					v.fused[pc] = fuseFallBeq
					continue
				case isa.OpBne:
					v.fused[pc] = fuseFallBne
					continue
				}
			}
		}
		if v.hookBits[pc+1] != 0 {
			continue
		}
		switch code[pc+1].Op {
		case isa.OpBr:
			v.fused[pc] = fuseBr
		case isa.OpBeq:
			v.fused[pc] = fuseBeq
		case isa.OpBne:
			v.fused[pc] = fuseBne
		}
	}
}

func (v *VM) runLoop(ctx context.Context, quantum uint64, deadline time.Time) (RunOutcome, error) {
	code := v.Prog.Code
	if v.fused == nil || v.fuseDirty {
		v.refreshFusion()
	}
	// Hook attachment mutates these arrays in place (see unfuse), so
	// the aliases stay valid even if a hook attaches more hooks mid-run.
	bits := v.hookBits
	fused := v.fused
	var untilCheck uint64 // 0 → perform control checks now
	for !v.Halted {
		if untilCheck == 0 {
			untilCheck = quantum
			if err := ctx.Err(); err != nil {
				return ClassifyError(err), err
			}
			if !deadline.IsZero() && !time.Now().Before(deadline) {
				return OutcomeDeadline, context.DeadlineExceeded
			}
		}

		if v.InstCount >= v.StepLimit {
			return OutcomeLimit, &LimitError{Limit: v.StepLimit, PC: v.PC}
		}
		pc := v.PC
		if pc < 0 || pc >= len(code) {
			err := v.fault("pc %d out of range", pc)
			return OutcomeFaulted, err
		}
		in := code[pc]

		// Fused regions: two or three instructions retire in one
		// dispatch. Straight-line members are non-faulting by
		// construction (fusibleFirst) so their errors are statically
		// nil, no covered pc has hooks, and no step hooks are attached.
		// Falling back to single-step near the step limit keeps
		// OutcomeLimit exact; the quantum check slides by at most two
		// instructions.
		if k := fused[pc]; k != fuseNone {
			if k <= fuseBne {
				if untilCheck >= 2 && v.InstCount+2 <= v.StepLimit {
					untilCheck -= 2
					in2 := code[pc+1]
					handlers[in.Op](v, pc, in)
					v.InstCount += 2
					v.Cycles += uint64(in.Op.Cycles()) + uint64(in2.Op.Cycles())
					next := pc + 2
					switch k {
					case fuseBr:
						next = int(in2.Imm)
					case fuseBeq:
						if v.Regs[in2.Ra] == 0 {
							next = int(in2.Imm)
						}
					case fuseBne:
						if v.Regs[in2.Ra] != 0 {
							next = int(in2.Imm)
						}
					}
					v.PC = next
					continue
				}
			} else if untilCheck >= 3 && v.InstCount+3 <= v.StepLimit {
				in2, in3 := code[pc+1], code[pc+2]
				handlers[in.Op](v, pc, in)
				if k <= fuse3Bne {
					handlers[in2.Op](v, pc+1, in2)
					untilCheck -= 3
					v.InstCount += 3
					v.Cycles += uint64(in.Op.Cycles()) + uint64(in2.Op.Cycles()) + uint64(in3.Op.Cycles())
					next := pc + 3
					switch k {
					case fuse3Br:
						next = int(in3.Imm)
					case fuse3Beq:
						if v.Regs[in3.Ra] == 0 {
							next = int(in3.Imm)
						}
					case fuse3Bne:
						if v.Regs[in3.Ra] != 0 {
							next = int(in3.Imm)
						}
					}
					v.PC = next
					continue
				}
				taken := v.Regs[in2.Ra] == 0
				if k == fuseFallBne {
					taken = v.Regs[in2.Ra] != 0
				}
				if taken {
					untilCheck -= 2
					v.InstCount += 2
					v.Cycles += uint64(in.Op.Cycles()) + uint64(in2.Op.Cycles())
					v.PC = int(in2.Imm)
				} else {
					// The fallthrough handler advances v.PC to pc+3.
					handlers[in3.Op](v, pc+2, in3)
					untilCheck -= 3
					v.InstCount += 3
					v.Cycles += uint64(in.Op.Cycles()) + uint64(in2.Op.Cycles()) + uint64(in3.Op.Cycles())
				}
				continue
			}
		}
		untilCheck--

		b := bits[pc]
		if b&hookBeforeBit != 0 {
			ev := &v.scratch
			*ev = Event{VM: v, PC: pc, Inst: in}
			v.runHooks(v.before[pc], ev)
		}

		value, addr, err := handlers[in.Op](v, pc, in)
		if err != nil {
			return OutcomeFaulted, err
		}
		v.InstCount++
		v.Cycles += uint64(in.Op.Cycles())

		if b&hookBufBit != 0 {
			// The buffered sink replaces one closure-based after-hook:
			// same per-value analysis-call count and cycle charge,
			// delivered to the analysis out of line in batches.
			v.AnalysisCalls++
			if v.ChargeHooks {
				v.Cycles += AnalysisCallCycles
			}
			v.bufs[pc].push(value)
		}
		if b&hookAfterBit != 0 {
			ev := &v.scratch
			*ev = Event{VM: v, PC: pc, Inst: in, Value: value, Addr: addr}
			v.runHooks(v.after[pc], ev)
		}

		for _, fn := range v.stepFns {
			if err := fn(v); err != nil {
				return ClassifyError(err), err
			}
		}
	}
	return OutcomeCompleted, nil
}

// Snapshot is a deep copy of a VM's mutable execution state, sufficient
// to resume the run on a fresh VM of the same program (hooks and the
// Input queue are not part of the snapshot; the resuming caller
// re-attaches instrumentation and re-supplies the same input, and
// InputPos records how much of it was already consumed).
type Snapshot struct {
	PC            int
	Regs          []int64
	Mem           []byte
	Cycles        uint64
	InstCount     uint64
	AnalysisCalls uint64
	Output        string
	InputPos      int
	ExitStatus    int64
	Halted        bool
}

// Snapshot captures the VM's current execution state.
func (v *VM) Snapshot() *Snapshot {
	s := &Snapshot{
		PC:            v.PC,
		Regs:          make([]int64, len(v.Regs)),
		Mem:           make([]byte, len(v.Mem)),
		Cycles:        v.Cycles,
		InstCount:     v.InstCount,
		AnalysisCalls: v.AnalysisCalls,
		Output:        v.Output.String(),
		InputPos:      v.inputPos,
		ExitStatus:    v.ExitStatus,
		Halted:        v.Halted,
	}
	copy(s.Regs, v.Regs[:])
	copy(s.Mem, v.Mem)
	return s
}

// Restore rewinds the VM to a previously captured snapshot. Attached
// hooks and the Input queue are preserved; memory is resized to the
// snapshot's size if it differs.
func (v *VM) Restore(s *Snapshot) error {
	if len(s.Regs) != isa.NumRegs {
		return fmt.Errorf("vm: snapshot has %d registers, want %d", len(s.Regs), isa.NumRegs)
	}
	if len(s.Mem) < minValidAddr {
		return fmt.Errorf("vm: snapshot memory %d bytes is too small", len(s.Mem))
	}
	copy(v.Regs[:], s.Regs)
	if len(v.Mem) != len(s.Mem) {
		v.Mem = make([]byte, len(s.Mem))
	}
	copy(v.Mem, s.Mem)
	v.PC = s.PC
	v.Cycles = s.Cycles
	v.InstCount = s.InstCount
	v.AnalysisCalls = s.AnalysisCalls
	v.Output.Reset()
	v.Output.WriteString(s.Output)
	v.inputPos = s.InputPos
	v.ExitStatus = s.ExitStatus
	v.Halted = s.Halted
	return nil
}
