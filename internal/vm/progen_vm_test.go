package vm_test

import (
	"context"
	"testing"

	"valueprof/internal/progen"
	"valueprof/internal/program"
	"valueprof/internal/vm"
)

// buildGenerated returns a generated program plus its primary input;
// progen output is Verify-clean and terminating by construction, which
// makes it a convenient source of diverse control flow (loops, calls,
// indirect jumps) for VM-level properties.
func buildGenerated(t *testing.T, seed uint64) (*program.Program, []int64) {
	t.Helper()
	spec := progen.Generate(progen.Config{Seed: seed})
	prog, err := progen.Build(&spec)
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	return prog, progen.InputFor(&spec, 0)
}

// TestGeneratedExecuteDeterministic runs each generated program twice
// through the plain interpreter and once through the controlled loop:
// all three executions must agree on every observable of the run.
func TestGeneratedExecuteDeterministic(t *testing.T) {
	seeds := 25
	if testing.Short() {
		seeds = 5
	}
	for seed := uint64(1); seed <= uint64(seeds); seed++ {
		prog, input := buildGenerated(t, seed)

		a, err := vm.Execute(prog, input)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		b, err := vm.Execute(prog, input)
		if err != nil {
			t.Fatalf("seed %d rerun: %v", seed, err)
		}
		if *a != *b {
			t.Fatalf("seed %d: two Execute runs differ:\n%+v\n%+v", seed, a, b)
		}

		v := vm.New(prog)
		v.Input = input
		outcome, err := v.RunControlled(context.Background())
		if outcome != vm.OutcomeCompleted {
			t.Fatalf("seed %d: controlled run: %v (%v)", seed, outcome, err)
		}
		if c := vm.ResultOf(v, outcome); *c != *a {
			t.Fatalf("seed %d: RunControlled differs from Run:\n%+v\n%+v", seed, c, a)
		}
	}
}

// TestGeneratedSnapshotResume interrupts each generated program at
// half its instruction count, snapshots, restores into a fresh VM, and
// requires the stitched run to be observably identical to the
// uninterrupted one — the VM-level half of the profiler's
// checkpoint/resume guarantee.
func TestGeneratedSnapshotResume(t *testing.T) {
	seeds := 15
	if testing.Short() {
		seeds = 3
	}
	for seed := uint64(1); seed <= uint64(seeds); seed++ {
		prog, input := buildGenerated(t, seed)
		full, err := vm.Execute(prog, input)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		half := full.InstCount / 2
		if half == 0 {
			continue
		}

		v1 := vm.New(prog)
		v1.Input = input
		v1.StepLimit = half
		if outcome, _ := v1.RunControlled(context.Background()); outcome != vm.OutcomeLimit {
			t.Fatalf("seed %d: want limit at step %d, got %v", seed, half, outcome)
		}
		if v1.InstCount != half {
			t.Fatalf("seed %d: stopped at %d, want exactly %d", seed, v1.InstCount, half)
		}
		snap := v1.Snapshot()

		v2 := vm.New(prog)
		v2.Input = input
		if err := v2.Restore(snap); err != nil {
			t.Fatalf("seed %d: restore: %v", seed, err)
		}
		outcome, err := v2.RunControlled(context.Background())
		if outcome != vm.OutcomeCompleted {
			t.Fatalf("seed %d: resumed run: %v (%v)", seed, outcome, err)
		}
		if got := vm.ResultOf(v2, outcome); *got != *full {
			t.Fatalf("seed %d: resumed run differs from uninterrupted:\n%+v\n%+v", seed, got, full)
		}
	}
}
