package vm

// ValueBuffer batches the result values of one instrumented site so
// the run loop can record an observation with a couple of array stores
// instead of a closure call per execution. The analysis side registers
// a flush function and receives values in execution order, in batches
// of at most ValueBufCap; the batching is invisible to the analysis as
// long as it only needs the value stream (tools that must act at the
// exact instruction — samplers, checkpointers — keep using Hook).
//
// Buffers do not flush themselves at program end. The owning profiler
// must call Flush before reading any state derived from the stream
// (profile extraction, checkpointing, merging), including when a run
// is cancelled and the partial profile is salvaged.

// ValueBufCap is the batch size. Small enough that a flush stays in
// cache, large enough to amortize the flush call.
const ValueBufCap = 64

// ValueBuffer is a fixed-size batch of observed values. Not safe for
// concurrent use; one buffer belongs to one VM's run loop.
type ValueBuffer struct {
	n     int
	vals  [ValueBufCap]int64
	flush func([]int64)
}

// NewValueBuffer creates a buffer that delivers batches to flush. The
// slice passed to flush is only valid during the call.
func NewValueBuffer(flush func([]int64)) *ValueBuffer {
	return &ValueBuffer{flush: flush}
}

// push appends one value, flushing when the buffer fills.
func (b *ValueBuffer) push(v int64) {
	b.vals[b.n] = v
	b.n++
	if b.n == ValueBufCap {
		b.flush(b.vals[:b.n])
		b.n = 0
	}
}

// Pending returns the number of buffered, not yet flushed values.
func (b *ValueBuffer) Pending() int { return b.n }

// Flush delivers any buffered values to the flush function. It is
// idempotent; an empty buffer does not invoke the callback.
func (b *ValueBuffer) Flush() {
	if b.n > 0 {
		b.flush(b.vals[:b.n])
		b.n = 0
	}
}

// HookAfterBuffered attaches b as the buffered after-sink of
// instruction pc. The run loop pushes the instruction's result value
// into b instead of building an Event and walking a hook slice; each
// push counts as one analysis call (and costs AnalysisCallCycles when
// ChargeHooks is set), matching the closure-based path's accounting.
// At most one buffer may be attached per pc; the buffered sink runs
// before any HookAfter hooks at the same pc.
func (v *VM) HookAfterBuffered(pc int, b *ValueBuffer) {
	v.ensureHookState()
	if v.bufs == nil {
		v.bufs = make([]*ValueBuffer, len(v.Prog.Code))
	}
	if v.bufs[pc] != nil && v.bufs[pc] != b {
		panic("vm: conflicting buffered hook at pc")
	}
	v.bufs[pc] = b
	v.hookBits[pc] |= hookBufBit
	v.unfuse(pc)
}
