package vm

// ValueBuffer batches the result values of one instrumented site so
// the run loop can record an observation with a couple of array stores
// instead of a closure call per execution. The analysis side registers
// a ValueSink and receives values in execution order, in batches of at
// most ValueBufCap; the batching is invisible to the analysis as long
// as it only needs the value stream (tools that must act at the exact
// instruction — checkpointers, fault injectors — keep using Hook).
//
// Buffers do not flush themselves at program end. The owning profiler
// must call Flush before reading any state derived from the stream
// (profile extraction, checkpointing, merging), including when a run
// is cancelled and the partial profile is salvaged.

// ValueBufCap is the batch size. Small enough that a flush stays in
// cache, large enough to amortize the flush call.
const ValueBufCap = 64

// ValueSink consumes one site's observed values in execution order.
// The slice passed to ObserveBatch is only valid during the call.
type ValueSink interface {
	ObserveBatch(vals []int64)
}

// funcSink adapts a plain flush function to ValueSink.
type funcSink func([]int64)

func (f funcSink) ObserveBatch(vals []int64) { f(vals) }

// ValueBuffer is a fixed-size batch of observed values. Not safe for
// concurrent use; one buffer belongs to one VM's run loop.
type ValueBuffer struct {
	n    int
	vals [ValueBufCap]int64
	sink ValueSink
}

// NewValueBuffer creates a buffer that delivers batches to flush. The
// slice passed to flush is only valid during the call.
func NewValueBuffer(flush func([]int64)) *ValueBuffer {
	return &ValueBuffer{sink: funcSink(flush)}
}

// NewValueBufferSink creates a buffer that delivers batches to sink.
// Passing a concrete sink (e.g. a *core.SiteStats) avoids the per-site
// closure allocation of NewValueBuffer.
func NewValueBufferSink(sink ValueSink) *ValueBuffer {
	return &ValueBuffer{sink: sink}
}

// Reset discards any pending values and re-targets the buffer at sink,
// making a recycled buffer indistinguishable from a fresh one. Callers
// that must not lose buffered values flush first.
func (b *ValueBuffer) Reset(sink ValueSink) {
	b.n = 0
	b.sink = sink
}

// push appends one value, flushing when the buffer fills.
func (b *ValueBuffer) push(v int64) {
	b.vals[b.n] = v
	b.n++
	if b.n == ValueBufCap {
		b.sink.ObserveBatch(b.vals[:b.n])
		b.n = 0
	}
}

// Pending returns the number of buffered, not yet flushed values.
func (b *ValueBuffer) Pending() int { return b.n }

// Flush delivers any buffered values to the sink. It is idempotent; an
// empty buffer does not invoke the sink.
func (b *ValueBuffer) Flush() {
	if b.n > 0 {
		b.sink.ObserveBatch(b.vals[:b.n])
		b.n = 0
	}
}

// HookAfterBuffered attaches b as the buffered after-sink of
// instruction pc. The run loop pushes the instruction's result value
// into b instead of building an Event and walking a hook slice; each
// push counts as one analysis call (and costs AnalysisCallCycles when
// ChargeHooks is set), matching the closure-based path's accounting.
// At most one buffer may be attached per pc; the buffered sink runs
// before any HookAfter hooks at the same pc.
func (v *VM) HookAfterBuffered(pc int, b *ValueBuffer) {
	v.ensureHookState()
	if v.bufs == nil || len(v.bufs) != len(v.Prog.Code) {
		v.bufs = growClear(v.bufs, len(v.Prog.Code))
	}
	if v.bufs[pc] != nil && v.bufs[pc] != b {
		panic("vm: conflicting buffered hook at pc")
	}
	v.bufs[pc] = b
	v.hookBits[pc] |= hookBufBit
	v.unfuse(pc)
}

// growClear returns a zeroed slice of length n, reusing s's backing
// array when it is large enough. The reuse keeps per-run hook-state
// reallocation off reused VMs (see ResetFor).
func growClear[T int64 | uint8 | *ValueBuffer](s []T, n int) []T {
	var zero T
	if cap(s) < n {
		return make([]T, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = zero
	}
	return s
}
