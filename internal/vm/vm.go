// Package vm interprets VRISC programs. It is the execution substrate
// standing in for the paper's Alpha hardware: it runs the workload,
// charges cycles under a simple timing model, and exposes the
// instrumentation hook points (before/after each chosen instruction,
// plus program end) that the ATOM-like layer in internal/atom uses.
package vm

import (
	"bytes"
	"context"
	"encoding/binary"
	"fmt"
	"strconv"
	"time"

	"valueprof/internal/isa"
	"valueprof/internal/program"
)

// Defaults for memory and runaway protection.
const (
	DefaultMemSize   = 8 << 20 // 8 MiB flat address space
	DefaultStepLimit = 1 << 31 // instructions
	// minValidAddr makes low addresses fault, catching null-pointer
	// style bugs in generated code. The data segment starts above it.
	minValidAddr = 0x100
	// AnalysisCallCycles is the cycle charge per analysis-routine
	// invocation, modelling the paper's instrumentation overhead (an
	// ATOM analysis call costs a procedure call plus work).
	AnalysisCallCycles = 12
)

// Fault is a runtime error carrying the faulting pc.
type Fault struct {
	PC  int
	Msg string
}

func (f *Fault) Error() string { return fmt.Sprintf("vm: fault at pc %d: %s", f.PC, f.Msg) }

// Event is passed to instrumentation hooks. For after-hooks on
// result-producing instructions Value holds the destination value; for
// stores it holds the stored value. Addr is the effective address of a
// load or store, 0 otherwise.
type Event struct {
	VM    *VM
	PC    int
	Inst  isa.Inst
	Value int64
	Addr  uint64
}

// Hook is an instrumentation callback.
type Hook func(*Event)

// VM executes one program. Zero value is not usable; call New.
type VM struct {
	Prog *program.Program
	Regs [isa.NumRegs]int64
	Mem  []byte
	PC   int

	Cycles        uint64
	InstCount     uint64
	AnalysisCalls uint64 // number of analysis-hook invocations (overhead metric)
	ChargeHooks   bool   // if set, each hook invocation costs AnalysisCallCycles

	Output     bytes.Buffer
	Input      []int64 // consumed by SysGetInt
	inputPos   int
	ExitStatus int64
	Halted     bool

	StepLimit uint64
	// Deadline, when non-zero, is the wall-clock instant after which
	// RunControlled stops with OutcomeDeadline. Checked once per
	// Quantum instructions.
	Deadline time.Time
	// Quantum is the number of instructions between control checks in
	// RunControlled; 0 selects DefaultQuantum.
	Quantum uint64

	// Hook tables, indexed by pc; nil when no instrumentation is
	// attached so the uninstrumented fast path stays cheap.
	before  [][]Hook
	after   [][]Hook
	atEnd   []Hook
	stepFns []StepFn
	scratch Event

	// hookBits is the dense per-pc hook summary the run loop consults:
	// one byte per instruction, zero meaning "no instrumentation here",
	// so a hooked-but-not-interesting pc costs one load and one
	// predictable branch instead of two slice-header probes.
	hookBits []uint8
	// bufs holds the per-pc buffered after-sinks (HookAfterBuffered).
	bufs []*ValueBuffer
	// fused caches, per pc, whether this instruction and its successor
	// execute as one fused (op, branch) pair; rebuilt lazily when
	// fuseDirty is set. See refreshFusion.
	fused     []uint8
	fuseDirty bool
}

// Bits in hookBits.
const (
	hookBeforeBit uint8 = 1 << iota
	hookAfterBit
	hookBufBit
)

// New creates a VM for prog with default memory and step limit, loading
// the data segment and initializing sp/fp to the top of memory.
func New(prog *program.Program) *VM {
	return NewSized(prog, DefaultMemSize)
}

// NewSized creates a VM with the given memory size in bytes.
func NewSized(prog *program.Program, memSize int) *VM {
	v := &VM{Prog: prog, Mem: make([]byte, memSize), StepLimit: DefaultStepLimit}
	v.ensureHookState()
	v.Reset()
	return v
}

// ensureHookState makes the dense per-pc hook summary match the
// program length (it is indexed unconditionally on the hot path).
func (v *VM) ensureHookState() {
	if len(v.hookBits) != len(v.Prog.Code) {
		v.hookBits = growClear(v.hookBits, len(v.Prog.Code))
	}
}

// unfuse invalidates any fused region that includes pc, so a hook
// attached mid-run takes effect immediately, and schedules a full
// fusion recompute for the next run (newly hookless pcs re-fuse then).
// Three-op superinstructions start up to two pcs back, so both
// predecessors are cleared.
func (v *VM) unfuse(pc int) {
	v.fuseDirty = true
	if pc >= len(v.fused) {
		// Stale table from a previous (shorter) program on a reused VM;
		// fuseDirty already forces a full rebuild before the next run.
		return
	}
	v.fused[pc] = fuseNone
	if pc > 0 {
		v.fused[pc-1] = fuseNone
	}
	if pc > 1 {
		v.fused[pc-2] = fuseNone
	}
}

// Reset rewinds the VM to the program's initial state, preserving
// attached hooks and the Input queue.
func (v *VM) Reset() {
	for i := range v.Regs {
		v.Regs[i] = 0
	}
	for i := range v.Mem {
		v.Mem[i] = 0
	}
	copy(v.Mem[v.Prog.DataAddr:], v.Prog.Data)
	top := int64(len(v.Mem) - 64)
	v.Regs[isa.RegSP] = top
	v.Regs[isa.RegFP] = top
	v.PC = v.Prog.Entry
	v.Cycles = 0
	v.InstCount = 0
	v.AnalysisCalls = 0
	v.Output.Reset()
	v.inputPos = 0
	v.ExitStatus = 0
	v.Halted = false
}

// ResetFor rewinds a VM for reuse on a (possibly different) program,
// leaving it in the same observable state NewSized(prog, memSize)
// would, while reusing the memory image and the hook-bit, fusion, and
// buffer-table allocations. Unlike Reset, all instrumentation is
// removed and the run-control knobs (StepLimit, Deadline, Quantum,
// ChargeHooks, Input) return to their defaults; callers re-instrument
// and reconfigure afterwards exactly as they would a fresh VM. This is
// the reuse entry point for pooled execution (internal/parallel's
// arena and internal/supervise retries); fresh-vs-reused byte identity
// of profiles is pinned by internal/difftest.
func (v *VM) ResetFor(prog *program.Program, memSize int) {
	if memSize <= 0 {
		memSize = DefaultMemSize
	}
	v.Prog = prog
	if cap(v.Mem) >= memSize {
		v.Mem = v.Mem[:memSize]
	} else {
		v.Mem = make([]byte, memSize)
	}
	v.StepLimit = DefaultStepLimit
	v.Deadline = time.Time{}
	v.Quantum = 0
	v.ChargeHooks = false
	v.Input = nil
	v.ClearHooks()
	v.ensureHookState()
	v.Reset()
}

// HookBefore attaches fn to run before each execution of instruction pc.
func (v *VM) HookBefore(pc int, fn Hook) {
	v.ensureHookState()
	if len(v.before) != len(v.Prog.Code) {
		v.before = growClearHooks(v.before, len(v.Prog.Code))
	}
	v.before[pc] = append(v.before[pc], fn)
	v.hookBits[pc] |= hookBeforeBit
	v.unfuse(pc)
}

// HookAfter attaches fn to run after each execution of instruction pc,
// with the result value (destination register or stored value) in the
// event.
func (v *VM) HookAfter(pc int, fn Hook) {
	v.ensureHookState()
	if len(v.after) != len(v.Prog.Code) {
		v.after = growClearHooks(v.after, len(v.Prog.Code))
	}
	v.after[pc] = append(v.after[pc], fn)
	v.hookBits[pc] |= hookAfterBit
	v.unfuse(pc)
}

// HookEnd attaches fn to run when the program exits.
func (v *VM) HookEnd(fn Hook) { v.atEnd = append(v.atEnd, fn) }

// ClearHooks removes all instrumentation. The per-pc tables keep their
// backing arrays (entries nil-filled) so a reused VM does not
// reallocate them every job.
func (v *VM) ClearHooks() {
	for i := range v.before {
		v.before[i] = nil
	}
	for i := range v.after {
		v.after[i] = nil
	}
	v.atEnd = nil
	v.stepFns = nil
	for i := range v.bufs {
		v.bufs[i] = nil
	}
	for i := range v.hookBits {
		v.hookBits[i] = 0
	}
	for i := range v.fused {
		v.fused[i] = fuseNone
	}
	v.fuseDirty = true
}

// growClearHooks is growClear for per-pc hook tables.
func growClearHooks(s [][]Hook, n int) [][]Hook {
	if cap(s) < n {
		return make([][]Hook, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = nil
	}
	return s
}

func (v *VM) fault(format string, args ...any) error {
	return &Fault{PC: v.PC, Msg: fmt.Sprintf(format, args...)}
}

func (v *VM) setReg(r uint8, val int64) {
	if r != isa.RegZero {
		v.Regs[r] = val
	}
}

func (v *VM) checkAddr(addr uint64, size int) error {
	if addr < minValidAddr || addr+uint64(size) > uint64(len(v.Mem)) {
		return v.fault("memory access at %#x size %d out of range", addr, size)
	}
	return nil
}

func (v *VM) load(addr uint64, size int) (int64, error) {
	if err := v.checkAddr(addr, size); err != nil {
		return 0, err
	}
	switch size {
	case 1:
		return int64(v.Mem[addr]), nil
	case 4:
		return int64(binary.LittleEndian.Uint32(v.Mem[addr:])), nil
	case 8:
		return int64(binary.LittleEndian.Uint64(v.Mem[addr:])), nil
	}
	panic("vm: bad load size")
}

func (v *VM) store(addr uint64, size int, val int64) error {
	if err := v.checkAddr(addr, size); err != nil {
		return err
	}
	switch size {
	case 1:
		v.Mem[addr] = byte(val)
	case 4:
		binary.LittleEndian.PutUint32(v.Mem[addr:], uint32(val))
	case 8:
		binary.LittleEndian.PutUint64(v.Mem[addr:], uint64(val))
	default:
		panic("vm: bad store size")
	}
	return nil
}

func (v *VM) runHooks(hooks []Hook, ev *Event) {
	for _, h := range hooks {
		h(ev)
		v.AnalysisCalls++
		if v.ChargeHooks {
			v.Cycles += AnalysisCallCycles
		}
	}
}

// Run executes until the program exits, faults, or hits the step
// limit, returning a non-nil error for anything but a clean exit. It is
// RunControlled without cancellation; callers that want to salvage
// partial runs should use RunControlled instead.
func (v *VM) Run() error {
	_, err := v.RunControlled(context.Background())
	return err
}

// step executes one instruction, returning the result value (for
// after-hooks) and effective address for memory operations. v.PC is
// advanced (or redirected) and v.Halted set on exit. The semantics
// live in the per-opcode handler table (dispatch.go); the run loop
// dispatches through the table directly and this wrapper exists for
// tests and single-step callers.
func (v *VM) step(pc int, in isa.Inst) (value int64, addr uint64, err error) {
	return handlers[in.Op](v, pc, in)
}

func (v *VM) syscall(code int32) (int64, error) {
	switch code {
	case isa.SysExit:
		v.Halted = true
		v.ExitStatus = v.Regs[isa.RegA0]
		return v.ExitStatus, nil
	case isa.SysPutInt:
		v.Output.WriteString(strconv.FormatInt(v.Regs[isa.RegA0], 10))
		return v.Regs[isa.RegA0], nil
	case isa.SysPutChar:
		v.Output.WriteByte(byte(v.Regs[isa.RegA0]))
		return v.Regs[isa.RegA0], nil
	case isa.SysGetInt:
		var val int64
		if v.inputPos < len(v.Input) {
			val = v.Input[v.inputPos]
			v.inputPos++
		}
		v.setReg(isa.RegV0, val)
		return val, nil
	case isa.SysPutStr:
		addr := uint64(v.Regs[isa.RegA0])
		for {
			b, err := v.load(addr, 1)
			if err != nil {
				return 0, err
			}
			if b == 0 {
				break
			}
			v.Output.WriteByte(byte(b))
			addr++
		}
		return 0, nil
	case isa.SysClock:
		v.setReg(isa.RegV0, int64(v.Cycles))
		return int64(v.Cycles), nil
	}
	return 0, v.fault("unknown syscall %d", code)
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// Result summarizes a run. Outcome distinguishes a completed run from
// one stopped early; for partial outcomes the counters cover the
// executed prefix.
type Result struct {
	Output        string
	ExitStatus    int64
	Cycles        uint64
	InstCount     uint64
	AnalysisCalls uint64
	Outcome       RunOutcome
}

// ResultOf summarizes the VM's current state as a Result tagged with
// the given outcome.
func ResultOf(v *VM, outcome RunOutcome) *Result {
	return &Result{
		Output:        v.Output.String(),
		ExitStatus:    v.ExitStatus,
		Cycles:        v.Cycles,
		InstCount:     v.InstCount,
		AnalysisCalls: v.AnalysisCalls,
		Outcome:       outcome,
	}
}

// Execute runs prog to completion with the given input and returns the
// run summary; a convenience wrapper used by workloads and experiments.
func Execute(prog *program.Program, input []int64) (*Result, error) {
	v := New(prog)
	v.Input = input
	if err := v.Run(); err != nil {
		return nil, err
	}
	return ResultOf(v, OutcomeCompleted), nil
}
