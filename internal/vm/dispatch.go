package vm

import "valueprof/internal/isa"

// This file replaces the interpreter's per-instruction switch with a
// precomputed handler table. The switch compiled to a jump through a
// dense range check plus per-case prologue; the table turns dispatch
// into one indexed load and an indirect call, and — more importantly —
// gives the run loop named, reusable instruction semantics that the
// fused fast path (control.go) can call without duplicating them.

// stepHandler executes one instruction. On success it advances (or
// redirects) v.PC and returns the result value for after-hooks plus
// the effective address of a memory access (0 otherwise). On a fault
// it returns before touching v.PC, so the Fault built from v.PC names
// the faulting instruction.
type stepHandler func(v *VM, pc int, in isa.Inst) (value int64, addr uint64, err error)

// handlers is the dispatch table. 256 entries indexed by the uint8
// opcode mean the dispatching load needs no bounds check; slots beyond
// the defined opcodes fault exactly like the old switch's default arm.
var handlers [256]stepHandler

// fusibleFirst marks opcodes that can be the first half of a fused
// (op, branch) pair: straight-line, non-faulting, and always advancing
// to pc+1. Div/Rem (fault on zero), memory ops (fault on bad address),
// control flow, and syscalls stay out.
var fusibleFirst [256]bool

func init() {
	for i := range handlers {
		handlers[i] = stepBadOp
	}
	handlers[isa.OpNop] = stepNop
	handlers[isa.OpAdd] = stepAdd
	handlers[isa.OpSub] = stepSub
	handlers[isa.OpMul] = stepMul
	handlers[isa.OpDiv] = stepDiv
	handlers[isa.OpRem] = stepRem
	handlers[isa.OpAddi] = stepAddi
	handlers[isa.OpMuli] = stepMuli
	handlers[isa.OpAnd] = stepAnd
	handlers[isa.OpOr] = stepOr
	handlers[isa.OpXor] = stepXor
	handlers[isa.OpAndi] = stepAndi
	handlers[isa.OpOri] = stepOri
	handlers[isa.OpXori] = stepXori
	handlers[isa.OpSll] = stepSll
	handlers[isa.OpSrl] = stepSrl
	handlers[isa.OpSra] = stepSra
	handlers[isa.OpSlli] = stepSlli
	handlers[isa.OpSrli] = stepSrli
	handlers[isa.OpSrai] = stepSrai
	handlers[isa.OpCmpeq] = stepCmpeq
	handlers[isa.OpCmpne] = stepCmpne
	handlers[isa.OpCmplt] = stepCmplt
	handlers[isa.OpCmple] = stepCmple
	handlers[isa.OpCmpgt] = stepCmpgt
	handlers[isa.OpCmpge] = stepCmpge
	handlers[isa.OpCmplti] = stepCmplti
	handlers[isa.OpCmpeqi] = stepCmpeqi
	handlers[isa.OpLdq] = stepLdq
	handlers[isa.OpLdl] = stepLdl
	handlers[isa.OpLdbu] = stepLdbu
	handlers[isa.OpLdb] = stepLdb
	handlers[isa.OpStq] = stepStq
	handlers[isa.OpStl] = stepStl
	handlers[isa.OpStb] = stepStb
	handlers[isa.OpBr] = stepBr
	handlers[isa.OpBeq] = stepBeq
	handlers[isa.OpBne] = stepBne
	handlers[isa.OpJsr] = stepJsr
	handlers[isa.OpJsrr] = stepJsrr
	handlers[isa.OpJmp] = stepJmp
	handlers[isa.OpRet] = stepRet
	handlers[isa.OpSyscall] = stepSyscall

	for _, op := range []isa.Op{
		isa.OpNop, isa.OpAdd, isa.OpSub, isa.OpMul, isa.OpAddi, isa.OpMuli,
		isa.OpAnd, isa.OpOr, isa.OpXor, isa.OpAndi, isa.OpOri, isa.OpXori,
		isa.OpSll, isa.OpSrl, isa.OpSra, isa.OpSlli, isa.OpSrli, isa.OpSrai,
		isa.OpCmpeq, isa.OpCmpne, isa.OpCmplt, isa.OpCmple,
		isa.OpCmpgt, isa.OpCmpge, isa.OpCmplti, isa.OpCmpeqi,
	} {
		fusibleFirst[op] = true
	}
}

func stepBadOp(v *VM, _ int, in isa.Inst) (int64, uint64, error) {
	return 0, 0, v.fault("unimplemented opcode %v", in.Op)
}

func stepNop(v *VM, pc int, _ isa.Inst) (int64, uint64, error) {
	v.PC = pc + 1
	return 0, 0, nil
}

func stepAdd(v *VM, pc int, in isa.Inst) (int64, uint64, error) {
	value := v.Regs[in.Ra] + v.Regs[in.Rb]
	v.setReg(in.Rd, value)
	v.PC = pc + 1
	return value, 0, nil
}

func stepSub(v *VM, pc int, in isa.Inst) (int64, uint64, error) {
	value := v.Regs[in.Ra] - v.Regs[in.Rb]
	v.setReg(in.Rd, value)
	v.PC = pc + 1
	return value, 0, nil
}

func stepMul(v *VM, pc int, in isa.Inst) (int64, uint64, error) {
	value := v.Regs[in.Ra] * v.Regs[in.Rb]
	v.setReg(in.Rd, value)
	v.PC = pc + 1
	return value, 0, nil
}

func stepDiv(v *VM, pc int, in isa.Inst) (int64, uint64, error) {
	if v.Regs[in.Rb] == 0 {
		return 0, 0, v.fault("division by zero")
	}
	value := v.Regs[in.Ra] / v.Regs[in.Rb]
	v.setReg(in.Rd, value)
	v.PC = pc + 1
	return value, 0, nil
}

func stepRem(v *VM, pc int, in isa.Inst) (int64, uint64, error) {
	if v.Regs[in.Rb] == 0 {
		return 0, 0, v.fault("remainder by zero")
	}
	value := v.Regs[in.Ra] % v.Regs[in.Rb]
	v.setReg(in.Rd, value)
	v.PC = pc + 1
	return value, 0, nil
}

func stepAddi(v *VM, pc int, in isa.Inst) (int64, uint64, error) {
	value := v.Regs[in.Ra] + int64(in.Imm)
	v.setReg(in.Rd, value)
	v.PC = pc + 1
	return value, 0, nil
}

func stepMuli(v *VM, pc int, in isa.Inst) (int64, uint64, error) {
	value := v.Regs[in.Ra] * int64(in.Imm)
	v.setReg(in.Rd, value)
	v.PC = pc + 1
	return value, 0, nil
}

func stepAnd(v *VM, pc int, in isa.Inst) (int64, uint64, error) {
	value := v.Regs[in.Ra] & v.Regs[in.Rb]
	v.setReg(in.Rd, value)
	v.PC = pc + 1
	return value, 0, nil
}

func stepOr(v *VM, pc int, in isa.Inst) (int64, uint64, error) {
	value := v.Regs[in.Ra] | v.Regs[in.Rb]
	v.setReg(in.Rd, value)
	v.PC = pc + 1
	return value, 0, nil
}

func stepXor(v *VM, pc int, in isa.Inst) (int64, uint64, error) {
	value := v.Regs[in.Ra] ^ v.Regs[in.Rb]
	v.setReg(in.Rd, value)
	v.PC = pc + 1
	return value, 0, nil
}

func stepAndi(v *VM, pc int, in isa.Inst) (int64, uint64, error) {
	value := v.Regs[in.Ra] & int64(in.Imm)
	v.setReg(in.Rd, value)
	v.PC = pc + 1
	return value, 0, nil
}

func stepOri(v *VM, pc int, in isa.Inst) (int64, uint64, error) {
	value := v.Regs[in.Ra] | int64(in.Imm)
	v.setReg(in.Rd, value)
	v.PC = pc + 1
	return value, 0, nil
}

func stepXori(v *VM, pc int, in isa.Inst) (int64, uint64, error) {
	value := v.Regs[in.Ra] ^ int64(in.Imm)
	v.setReg(in.Rd, value)
	v.PC = pc + 1
	return value, 0, nil
}

func stepSll(v *VM, pc int, in isa.Inst) (int64, uint64, error) {
	value := v.Regs[in.Ra] << (uint64(v.Regs[in.Rb]) & 63)
	v.setReg(in.Rd, value)
	v.PC = pc + 1
	return value, 0, nil
}

func stepSrl(v *VM, pc int, in isa.Inst) (int64, uint64, error) {
	value := int64(uint64(v.Regs[in.Ra]) >> (uint64(v.Regs[in.Rb]) & 63))
	v.setReg(in.Rd, value)
	v.PC = pc + 1
	return value, 0, nil
}

func stepSra(v *VM, pc int, in isa.Inst) (int64, uint64, error) {
	value := v.Regs[in.Ra] >> (uint64(v.Regs[in.Rb]) & 63)
	v.setReg(in.Rd, value)
	v.PC = pc + 1
	return value, 0, nil
}

func stepSlli(v *VM, pc int, in isa.Inst) (int64, uint64, error) {
	value := v.Regs[in.Ra] << (uint32(in.Imm) & 63)
	v.setReg(in.Rd, value)
	v.PC = pc + 1
	return value, 0, nil
}

func stepSrli(v *VM, pc int, in isa.Inst) (int64, uint64, error) {
	value := int64(uint64(v.Regs[in.Ra]) >> (uint32(in.Imm) & 63))
	v.setReg(in.Rd, value)
	v.PC = pc + 1
	return value, 0, nil
}

func stepSrai(v *VM, pc int, in isa.Inst) (int64, uint64, error) {
	value := v.Regs[in.Ra] >> (uint32(in.Imm) & 63)
	v.setReg(in.Rd, value)
	v.PC = pc + 1
	return value, 0, nil
}

func stepCmpeq(v *VM, pc int, in isa.Inst) (int64, uint64, error) {
	value := b2i(v.Regs[in.Ra] == v.Regs[in.Rb])
	v.setReg(in.Rd, value)
	v.PC = pc + 1
	return value, 0, nil
}

func stepCmpne(v *VM, pc int, in isa.Inst) (int64, uint64, error) {
	value := b2i(v.Regs[in.Ra] != v.Regs[in.Rb])
	v.setReg(in.Rd, value)
	v.PC = pc + 1
	return value, 0, nil
}

func stepCmplt(v *VM, pc int, in isa.Inst) (int64, uint64, error) {
	value := b2i(v.Regs[in.Ra] < v.Regs[in.Rb])
	v.setReg(in.Rd, value)
	v.PC = pc + 1
	return value, 0, nil
}

func stepCmple(v *VM, pc int, in isa.Inst) (int64, uint64, error) {
	value := b2i(v.Regs[in.Ra] <= v.Regs[in.Rb])
	v.setReg(in.Rd, value)
	v.PC = pc + 1
	return value, 0, nil
}

func stepCmpgt(v *VM, pc int, in isa.Inst) (int64, uint64, error) {
	value := b2i(v.Regs[in.Ra] > v.Regs[in.Rb])
	v.setReg(in.Rd, value)
	v.PC = pc + 1
	return value, 0, nil
}

func stepCmpge(v *VM, pc int, in isa.Inst) (int64, uint64, error) {
	value := b2i(v.Regs[in.Ra] >= v.Regs[in.Rb])
	v.setReg(in.Rd, value)
	v.PC = pc + 1
	return value, 0, nil
}

func stepCmplti(v *VM, pc int, in isa.Inst) (int64, uint64, error) {
	value := b2i(v.Regs[in.Ra] < int64(in.Imm))
	v.setReg(in.Rd, value)
	v.PC = pc + 1
	return value, 0, nil
}

func stepCmpeqi(v *VM, pc int, in isa.Inst) (int64, uint64, error) {
	value := b2i(v.Regs[in.Ra] == int64(in.Imm))
	v.setReg(in.Rd, value)
	v.PC = pc + 1
	return value, 0, nil
}

func stepLdq(v *VM, pc int, in isa.Inst) (int64, uint64, error) {
	addr := uint64(v.Regs[in.Ra] + int64(in.Imm))
	value, err := v.load(addr, 8)
	if err != nil {
		return 0, 0, err
	}
	v.setReg(in.Rd, value)
	v.PC = pc + 1
	return value, addr, nil
}

func stepLdl(v *VM, pc int, in isa.Inst) (int64, uint64, error) {
	addr := uint64(v.Regs[in.Ra] + int64(in.Imm))
	value, err := v.load(addr, 4)
	if err != nil {
		return 0, 0, err
	}
	value = int64(int32(value))
	v.setReg(in.Rd, value)
	v.PC = pc + 1
	return value, addr, nil
}

func stepLdbu(v *VM, pc int, in isa.Inst) (int64, uint64, error) {
	addr := uint64(v.Regs[in.Ra] + int64(in.Imm))
	value, err := v.load(addr, 1)
	if err != nil {
		return 0, 0, err
	}
	v.setReg(in.Rd, value)
	v.PC = pc + 1
	return value, addr, nil
}

func stepLdb(v *VM, pc int, in isa.Inst) (int64, uint64, error) {
	addr := uint64(v.Regs[in.Ra] + int64(in.Imm))
	value, err := v.load(addr, 1)
	if err != nil {
		return 0, 0, err
	}
	value = int64(int8(value))
	v.setReg(in.Rd, value)
	v.PC = pc + 1
	return value, addr, nil
}

func stepStq(v *VM, pc int, in isa.Inst) (int64, uint64, error) {
	addr := uint64(v.Regs[in.Ra] + int64(in.Imm))
	value := v.Regs[in.Rd]
	if err := v.store(addr, 8, value); err != nil {
		return 0, 0, err
	}
	v.PC = pc + 1
	return value, addr, nil
}

func stepStl(v *VM, pc int, in isa.Inst) (int64, uint64, error) {
	addr := uint64(v.Regs[in.Ra] + int64(in.Imm))
	value := v.Regs[in.Rd]
	if err := v.store(addr, 4, value); err != nil {
		return 0, 0, err
	}
	v.PC = pc + 1
	return value, addr, nil
}

func stepStb(v *VM, pc int, in isa.Inst) (int64, uint64, error) {
	addr := uint64(v.Regs[in.Ra] + int64(in.Imm))
	value := v.Regs[in.Rd]
	if err := v.store(addr, 1, value); err != nil {
		return 0, 0, err
	}
	v.PC = pc + 1
	return value, addr, nil
}

func stepBr(v *VM, _ int, in isa.Inst) (int64, uint64, error) {
	v.PC = int(in.Imm)
	return 0, 0, nil
}

func stepBeq(v *VM, pc int, in isa.Inst) (int64, uint64, error) {
	if v.Regs[in.Ra] == 0 {
		v.PC = int(in.Imm)
	} else {
		v.PC = pc + 1
	}
	return 0, 0, nil
}

func stepBne(v *VM, pc int, in isa.Inst) (int64, uint64, error) {
	if v.Regs[in.Ra] != 0 {
		v.PC = int(in.Imm)
	} else {
		v.PC = pc + 1
	}
	return 0, 0, nil
}

func stepJsr(v *VM, pc int, in isa.Inst) (int64, uint64, error) {
	value := int64(pc + 1) // link value, visible to after-hooks
	v.setReg(in.Rd, value)
	v.PC = int(in.Imm)
	return value, 0, nil
}

func stepJsrr(v *VM, pc int, in isa.Inst) (int64, uint64, error) {
	target := int(v.Regs[in.Ra]) // read before the link write in case Rd == Ra
	value := int64(pc + 1)
	v.setReg(in.Rd, value)
	v.PC = target
	return value, 0, nil
}

func stepJmp(v *VM, _ int, in isa.Inst) (int64, uint64, error) {
	v.PC = int(v.Regs[in.Ra])
	return 0, 0, nil
}

func stepRet(v *VM, _ int, in isa.Inst) (int64, uint64, error) {
	v.PC = int(v.Regs[in.Ra])
	return 0, 0, nil
}

func stepSyscall(v *VM, pc int, in isa.Inst) (int64, uint64, error) {
	val, err := v.syscall(in.Imm)
	if err != nil {
		return 0, 0, err
	}
	v.PC = pc + 1
	return val, 0, nil
}
