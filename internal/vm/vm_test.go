package vm

import (
	"strings"
	"testing"

	"valueprof/internal/asm"
	"valueprof/internal/isa"
	"valueprof/internal/program"
)

func run(t *testing.T, src string, input ...int64) (*VM, error) {
	t.Helper()
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	v := New(p)
	v.Input = input
	return v, v.Run()
}

func mustRun(t *testing.T, src string, input ...int64) *VM {
	t.Helper()
	v, err := run(t, src, input...)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return v
}

func TestArithmetic(t *testing.T) {
	v := mustRun(t, `
main:   li a0, 7
        li t0, 3
        mul a0, a0, t0      ; 21
        addi a0, a0, -1     ; 20
        li t1, 6
        div t2, a0, t1      ; 3
        rem t3, a0, t1      ; 2
        add a0, t2, t3      ; 5
        syscall putint
        syscall exit
`)
	if got := v.Output.String(); got != "5" {
		t.Errorf("output = %q, want 5", got)
	}
}

func TestNegativeDivRem(t *testing.T) {
	v := mustRun(t, `
main:   li t0, -7
        li t1, 2
        div a0, t0, t1
        syscall putint
        li a0, 32
        syscall putchar
        rem a0, t0, t1
        syscall putint
        syscall exit
`)
	if got := v.Output.String(); got != "-3 -1" {
		t.Errorf("output = %q, want -3 -1 (Go truncated division)", got)
	}
}

func TestLogicAndShifts(t *testing.T) {
	v := mustRun(t, `
main:   li t0, 0xF0
        li t1, 0x3C
        and a0, t0, t1      ; 0x30
        or  a1, t0, t1      ; 0xFC
        xor a2, t0, t1      ; 0xCC
        slli a3, t1, 2      ; 0xF0
        srli a4, t0, 4      ; 0x0F
        li t2, -16
        srai a5, t2, 2      ; -4
        add v0, a0, a1
        add v0, v0, a2
        add v0, v0, a3
        add v0, v0, a4
        add v0, v0, a5
        mov a0, v0
        syscall putint
        syscall exit
`)
	want := int64(0x30 + 0xFC + 0xCC + 0xF0 + 0x0F - 4)
	if got := v.Output.String(); got != "755" || want != 755 {
		t.Errorf("output = %q, want %d", got, want)
	}
}

func TestComparisons(t *testing.T) {
	v := mustRun(t, `
main:   li t0, 3
        li t1, 5
        cmplt a0, t0, t1    ; 1
        cmpgt a1, t0, t1    ; 0
        cmpeq a2, t0, t0    ; 1
        cmpne a3, t0, t1    ; 1
        cmple a4, t1, t1    ; 1
        cmpge a5, t0, t1    ; 0
        cmplti t2, t0, 10   ; 1
        cmpeqi t3, t0, 3    ; 1
        add v0, a0, a1
        add v0, v0, a2
        add v0, v0, a3
        add v0, v0, a4
        add v0, v0, a5
        add v0, v0, t2
        add v0, v0, t3
        mov a0, v0
        syscall putint
        syscall exit
`)
	if got := v.Output.String(); got != "6" {
		t.Errorf("output = %q, want 6", got)
	}
}

func TestMemoryWidths(t *testing.T) {
	v := mustRun(t, `
main:   la t0, buf
        li t1, 0x12345678
        slli t1, t1, 8      ; 0x1234567800
        ori t1, t1, 0x90    ; 0x1234567890
        stq t1, 0(t0)
        ldq a0, 0(t0)
        syscall putint      ; 78187493520
        li a0, 32
        syscall putchar
        li t2, -2
        stb t2, 8(t0)
        ldbu a0, 8(t0)
        syscall putint      ; 254
        li a0, 32
        syscall putchar
        ldb a0, 8(t0)
        syscall putint      ; -2
        li a0, 32
        syscall putchar
        li t3, -5
        stl t3, 16(t0)
        ldl a0, 16(t0)
        syscall putint      ; -5
        syscall exit
        .data
buf:    .space 32
`)
	if got := v.Output.String(); got != "78187493520 254 -2 -5" {
		t.Errorf("output = %q", got)
	}
}

func TestLoopAndBranches(t *testing.T) {
	// Sum 1..10 = 55.
	v := mustRun(t, `
main:   li t0, 10
        li t1, 0
loop:   beq t0, done
        add t1, t1, t0
        addi t0, t0, -1
        br loop
done:   mov a0, t1
        syscall putint
        syscall exit
`)
	if got := v.Output.String(); got != "55" {
		t.Errorf("output = %q, want 55", got)
	}
}

func TestCallAndStack(t *testing.T) {
	// Recursive factorial via the stack.
	v := mustRun(t, `
        .proc main
main:   li a0, 6
        jsr fact
        mov a0, v0
        syscall putint
        syscall exit
        .endproc
        .proc fact
fact:   bne a0, rec
        li v0, 1
        ret
rec:    addi sp, sp, -16
        stq ra, 0(sp)
        stq a0, 8(sp)
        addi a0, a0, -1
        jsr fact
        ldq a0, 8(sp)
        ldq ra, 0(sp)
        addi sp, sp, 16
        mul v0, v0, a0
        ret
        .endproc
`)
	if got := v.Output.String(); got != "720" {
		t.Errorf("output = %q, want 720", got)
	}
}

func TestIndirectCallAndJump(t *testing.T) {
	v := mustRun(t, `
        .data
fptr:   .word 0
        .text
        .proc main
main:   li t0, g            ; address of procedure g (instruction index)
        la t1, fptr
        stq t0, 0(t1)
        ldq t2, 0(t1)
        jsrr t2
        mov a0, v0
        syscall putint
        syscall exit
        .endproc
        .proc g
g:      li v0, 42
        ret
        .endproc
`)
	if got := v.Output.String(); got != "42" {
		t.Errorf("output = %q, want 42", got)
	}
}

func TestSyscallIO(t *testing.T) {
	v := mustRun(t, `
main:   syscall getint
        mov t0, v0
        syscall getint
        add a0, t0, v0
        syscall putint
        la a0, msg
        syscall putstr
        syscall getint      ; EOF -> 0
        mov a0, v0
        syscall putint
        syscall exit
        .data
msg:    .asciiz "!\n"
`, 30, 12)
	if got := v.Output.String(); got != "42!\n0" {
		t.Errorf("output = %q", got)
	}
}

func TestExitStatus(t *testing.T) {
	v := mustRun(t, "main: li a0, 3\n syscall exit\n")
	if v.ExitStatus != 3 {
		t.Errorf("exit status = %d, want 3", v.ExitStatus)
	}
}

func TestZeroRegisterImmutable(t *testing.T) {
	v := mustRun(t, `
main:   li zero, 77
        mov a0, zero
        syscall putint
        syscall exit
`)
	if got := v.Output.String(); got != "0" {
		t.Errorf("output = %q, want 0 (zero register must stay 0)", got)
	}
}

func TestFaults(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"div by zero", "main: li t0, 1\n li t1, 0\n div t2, t0, t1\n syscall exit", "division by zero"},
		{"rem by zero", "main: li t0, 1\n li t1, 0\n rem t2, t0, t1\n syscall exit", "remainder by zero"},
		{"null load", "main: ldq t0, 0(zero)\n syscall exit", "out of range"},
		{"huge address", "main: li t0, 0x7fffffff\n slli t0, t0, 8\n ldq t1, 0(t0)\n syscall exit", "out of range"},
		{"bad syscall", "main: syscall 99\n syscall exit", "unknown syscall"},
		{"runs off end", "main: nop", "pc 1 out of range"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := run(t, c.src)
			if err == nil {
				t.Fatalf("no fault, want %q", c.want)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("fault %q does not contain %q", err, c.want)
			}
		})
	}
}

func TestStepLimit(t *testing.T) {
	p, err := asm.Assemble("main: br main\n")
	if err != nil {
		t.Fatal(err)
	}
	v := New(p)
	v.StepLimit = 1000
	err = v.Run()
	if err == nil || !strings.Contains(err.Error(), "step limit") {
		t.Errorf("err = %v, want step limit fault", err)
	}
}

func TestCyclesCharged(t *testing.T) {
	v := mustRun(t, "main: add t0, t1, t2\n mul t3, t0, t0\n syscall exit\n")
	want := uint64(isa.OpAdd.Cycles() + isa.OpMul.Cycles() + isa.OpSyscall.Cycles())
	if v.Cycles != want {
		t.Errorf("cycles = %d, want %d", v.Cycles, want)
	}
	if v.InstCount != 3 {
		t.Errorf("inst count = %d, want 3", v.InstCount)
	}
}

func TestHooks(t *testing.T) {
	p, err := asm.Assemble(`
main:   li t0, 3
loop:   addi t0, t0, -1
        bne t0, loop
        syscall exit
`)
	if err != nil {
		t.Fatal(err)
	}
	v := New(p)
	var beforeCount, afterCount, endCount int
	var values []int64
	v.HookBefore(1, func(ev *Event) {
		beforeCount++
		if ev.Inst.Op != isa.OpAddi {
			t.Errorf("before hook saw %v", ev.Inst.Op)
		}
	})
	v.HookAfter(1, func(ev *Event) {
		afterCount++
		values = append(values, ev.Value)
	})
	v.HookEnd(func(ev *Event) { endCount++ })
	if err := v.Run(); err != nil {
		t.Fatal(err)
	}
	if beforeCount != 3 || afterCount != 3 {
		t.Errorf("hook counts = %d,%d, want 3,3", beforeCount, afterCount)
	}
	if endCount != 1 {
		t.Errorf("end hooks ran %d times", endCount)
	}
	if len(values) != 3 || values[0] != 2 || values[1] != 1 || values[2] != 0 {
		t.Errorf("after-hook values = %v, want [2 1 0]", values)
	}
	if v.AnalysisCalls != 6 {
		t.Errorf("analysis calls = %d, want 6", v.AnalysisCalls)
	}
}

func TestHookChargesCycles(t *testing.T) {
	p, err := asm.Assemble("main: nop\n syscall exit\n")
	if err != nil {
		t.Fatal(err)
	}
	base := New(p)
	if err := base.Run(); err != nil {
		t.Fatal(err)
	}
	v := New(p)
	v.ChargeHooks = true
	v.HookAfter(0, func(*Event) {})
	if err := v.Run(); err != nil {
		t.Fatal(err)
	}
	if v.Cycles != base.Cycles+AnalysisCallCycles {
		t.Errorf("instrumented cycles = %d, want %d", v.Cycles, base.Cycles+AnalysisCallCycles)
	}
}

func TestStoreHookSeesValueAndAddr(t *testing.T) {
	p, err := asm.Assemble(`
main:   la t0, buf
        li t1, 99
        stq t1, 8(t0)
        syscall exit
        .data
buf:    .space 16
`)
	if err != nil {
		t.Fatal(err)
	}
	v := New(p)
	var gotVal int64
	var gotAddr uint64
	v.HookAfter(2, func(ev *Event) { gotVal, gotAddr = ev.Value, ev.Addr })
	if err := v.Run(); err != nil {
		t.Fatal(err)
	}
	if gotVal != 99 {
		t.Errorf("store hook value = %d, want 99", gotVal)
	}
	if gotAddr != uint64(program.DataBase+8) {
		t.Errorf("store hook addr = %#x, want %#x", gotAddr, program.DataBase+8)
	}
}

func TestResetPreservesHooksAndInput(t *testing.T) {
	p, err := asm.Assemble("main: syscall getint\n mov a0, v0\n syscall putint\n syscall exit\n")
	if err != nil {
		t.Fatal(err)
	}
	v := New(p)
	v.Input = []int64{7}
	count := 0
	v.HookAfter(0, func(*Event) { count++ })
	if err := v.Run(); err != nil {
		t.Fatal(err)
	}
	v.Reset()
	if err := v.Run(); err != nil {
		t.Fatal(err)
	}
	if count != 2 {
		t.Errorf("hook ran %d times across two runs, want 2", count)
	}
	if got := v.Output.String(); got != "7" {
		t.Errorf("second run output = %q, want 7 (input must rewind)", got)
	}
}

func TestExecuteHelper(t *testing.T) {
	p, err := asm.Assemble("main: syscall getint\n mov a0, v0\n syscall putint\n li a0, 0\n syscall exit\n")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Execute(p, []int64{123})
	if err != nil {
		t.Fatal(err)
	}
	if res.Output != "123" || res.ExitStatus != 0 || res.InstCount != 5 {
		t.Errorf("result = %+v", res)
	}
}

func TestClockSyscall(t *testing.T) {
	v := mustRun(t, `
main:   syscall clock
        mov t0, v0
        nop
        nop
        syscall clock
        sub t1, v0, t0
        cmpgt a0, t1, zero
        syscall putint
        syscall exit
`)
	if got := v.Output.String(); got != "1" {
		t.Errorf("clock did not advance: %q", got)
	}
}
