package vm_test

import (
	"context"
	"reflect"
	"testing"

	"valueprof/internal/asm"
	"valueprof/internal/program"
	"valueprof/internal/vm"
)

// fuseSrc is a tight counting loop whose body ends in fusible
// (addi, bne) pairs, so the fused dispatch path dominates execution.
const fuseSrc = `
main:   syscall getint
        add t5, v0, zero
        li a0, 0
outer:  li t0, 50
inner:  add a0, a0, t0
        addi t0, t0, -1
        bne t0, inner
        addi t5, t5, -1
        bne t5, outer
        syscall putint
        syscall exit
`

func assembleFuse(t *testing.T) *program.Program {
	t.Helper()
	p, err := asm.Assemble(fuseSrc)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestFusedLoopMatchesUnfused pins the tentpole invariant: the fused
// pair fast path must be observably identical — output, instruction
// count, cycle count — to the same program forced down the one-at-a-
// time path. A HookStep disables fusion entirely, and charges nothing,
// so the two runs are directly comparable.
func TestFusedLoopMatchesUnfused(t *testing.T) {
	prog := assembleFuse(t)
	input := []int64{40}

	fused := vm.New(prog)
	fused.Input = input
	outcome, err := fused.RunControlled(context.Background())
	if outcome != vm.OutcomeCompleted {
		t.Fatalf("fused run: %v (%v)", outcome, err)
	}

	plain := vm.New(prog)
	plain.Input = input
	steps := uint64(0)
	plain.HookStep(func(v *vm.VM) error { steps++; return nil })
	outcome, err = plain.RunControlled(context.Background())
	if outcome != vm.OutcomeCompleted {
		t.Fatalf("unfused run: %v (%v)", outcome, err)
	}

	got, want := vm.ResultOf(fused, vm.OutcomeCompleted), vm.ResultOf(plain, vm.OutcomeCompleted)
	if *got != *want {
		t.Fatalf("fused run differs from unfused:\n fused: %+v\nplain: %+v", got, want)
	}
	if steps != plain.InstCount {
		t.Fatalf("step hook fired %d times over %d instructions", steps, plain.InstCount)
	}
	if !reflect.DeepEqual(fused.Regs, plain.Regs) {
		t.Fatal("register files diverged")
	}
}

// TestStepLimitExactMidPair: a step limit landing between the two
// halves of a fusible pair must still stop at exactly StepLimit
// instructions — the fast path may only fire when both fit.
func TestStepLimitExactMidPair(t *testing.T) {
	prog := assembleFuse(t)
	input := []int64{40}
	full, err := vm.Execute(prog, input)
	if err != nil {
		t.Fatal(err)
	}

	// Odd and even limits, including ones chosen to fall mid-pair in
	// the steady loop body.
	for _, limit := range []uint64{1, 2, 7, 100, 101, 1001, full.InstCount - 1} {
		v := vm.New(prog)
		v.Input = input
		v.StepLimit = limit
		outcome, _ := v.RunControlled(context.Background())
		if outcome != vm.OutcomeLimit {
			t.Fatalf("limit %d: outcome %v", limit, outcome)
		}
		if v.InstCount != limit {
			t.Fatalf("limit %d: stopped at %d instructions", limit, v.InstCount)
		}

		// Resuming from the snapshot must converge on the uninterrupted
		// run even when the cut fell inside what fusion would pair up.
		v2 := vm.New(prog)
		v2.Input = input
		if err := v2.Restore(v.Snapshot()); err != nil {
			t.Fatalf("limit %d: %v", limit, err)
		}
		outcome, err := v2.RunControlled(context.Background())
		if outcome != vm.OutcomeCompleted {
			t.Fatalf("limit %d: resume %v (%v)", limit, outcome, err)
		}
		if got := vm.ResultOf(v2, outcome); *got != *full {
			t.Fatalf("limit %d: stitched run differs:\n got: %+v\nwant: %+v", limit, got, full)
		}
	}
}

// TestHookDisablesFusionAtSite: hooking a pc inside a fused pair must
// break that pair (the hook fires on every execution) while leaving
// observables identical to the unhooked run.
func TestHookDisablesFusionAtSite(t *testing.T) {
	prog := assembleFuse(t)
	input := []int64{5}
	base, err := vm.Execute(prog, input)
	if err != nil {
		t.Fatal(err)
	}

	for pc := range prog.Code {
		v := vm.New(prog)
		v.Input = input
		hits := uint64(0)
		v.HookAfter(pc, func(ev *vm.Event) {
			if ev.PC != pc {
				t.Errorf("pc %d: event at pc %d", pc, ev.PC)
			}
			hits++
		})
		outcome, err := v.RunControlled(context.Background())
		if outcome != vm.OutcomeCompleted {
			t.Fatalf("pc %d: %v (%v)", pc, outcome, err)
		}
		if hits != v.AnalysisCalls {
			t.Fatalf("pc %d: %d hits but %d analysis calls", pc, hits, v.AnalysisCalls)
		}
		got := vm.ResultOf(v, outcome)
		got.AnalysisCalls = 0 // the only sanctioned difference
		if *got != *base {
			t.Fatalf("pc %d: hooked run changed observables:\n got: %+v\nwant: %+v", pc, got, base)
		}
	}
}

// TestMidRunHookAttach attaches an after-hook to a fused-pair pc from
// inside another hook, partway through the run: fusion state must be
// repaired in place so the new hook sees every later execution.
func TestMidRunHookAttach(t *testing.T) {
	prog := assembleFuse(t)
	// pc 5 is "addi t0, t0, -1", first half of the inner fused pair;
	// pc 3 is "li t0, 50", executed once per outer iteration.
	input := []int64{4}

	v := vm.New(prog)
	v.Input = input
	outer, late := 0, uint64(0)
	v.HookAfter(3, func(ev *vm.Event) {
		outer++
		if outer == 3 {
			ev.VM.HookAfter(5, func(*vm.Event) { late++ })
		}
	})
	outcome, err := v.RunControlled(context.Background())
	if outcome != vm.OutcomeCompleted {
		t.Fatalf("%v (%v)", outcome, err)
	}
	// Attached at the start of outer iteration 3 of 4: the inner pc
	// runs 50 times in each of the remaining two iterations.
	if late != 100 {
		t.Fatalf("late hook fired %d times, want 100", late)
	}
}

func TestValueBuffer(t *testing.T) {
	var got []int64
	flushes := 0
	b := vm.NewValueBuffer(func(vals []int64) {
		flushes++
		got = append(got, vals...)
	})

	v := vm.New(assembleFuse(t))
	v.HookAfterBuffered(4, b)
	v.Input = []int64{3}
	// Drive pushes through the VM itself: pc 4 is the add in the inner
	// loop body, executed 150 times (3 outer iterations of 50).
	v.HookAfter(3, func(*vm.Event) {}) // keep neighbours honest: mixed hook kinds
	if err := v.Run(); err != nil {
		t.Fatal(err)
	}
	// 150 = 2*ValueBufCap + 22: two capacity flushes happened inline,
	// a partial tail remains.
	if b.Pending() != 150-2*vm.ValueBufCap {
		t.Fatalf("pending %d, want %d", b.Pending(), 150-2*vm.ValueBufCap)
	}
	if flushes != 2 {
		t.Fatalf("saw %d capacity flushes, want 2", flushes)
	}
	b.Flush()
	b.Flush() // idempotent
	if len(got) != 150 || flushes != 3 {
		t.Fatalf("flushed %d values in %d flushes, want 150 in 3", len(got), flushes)
	}
	// Values arrive in execution order: within each outer iteration the
	// add accumulates t0 = 50, 49, ..., 1 onto a running total.
	sum := int64(0)
	for i, val := range got {
		sum += 50 - int64(i%50)
		if val != sum {
			t.Fatalf("value[%d] = %d, want %d", i, val, sum)
		}
	}
}

// TestValueBufferFlushOnExactlyFull drives a hooked pc exactly
// ValueBufCap times: the capacity flush must fire inline on the last
// push, leaving nothing pending, and the run-end Flush must then be a
// no-op (an empty buffer never invokes the sink).
func TestValueBufferFlushOnExactlyFull(t *testing.T) {
	prog, err := asm.Assemble(`
main:   syscall getint
        add t5, v0, zero
loop:   addi t5, t5, -1
        bne t5, loop
        syscall exit
`)
	if err != nil {
		t.Fatal(err)
	}
	var got []int64
	flushes := 0
	b := vm.NewValueBuffer(func(vals []int64) {
		flushes++
		got = append(got, vals...)
	})
	v := vm.New(prog)
	v.HookAfterBuffered(2, b) // the addi, executed exactly input times
	v.Input = []int64{vm.ValueBufCap}
	if err := v.Run(); err != nil {
		t.Fatal(err)
	}
	if flushes != 1 || b.Pending() != 0 {
		t.Fatalf("after exactly-full run: %d flushes, %d pending, want 1 and 0", flushes, b.Pending())
	}
	b.Flush()
	b.Flush()
	if flushes != 1 {
		t.Fatalf("empty flush invoked the sink (%d flushes)", flushes)
	}
	if len(got) != vm.ValueBufCap {
		t.Fatalf("saw %d values, want %d", len(got), vm.ValueBufCap)
	}
	for i, val := range got {
		if want := int64(vm.ValueBufCap - 1 - i); val != want {
			t.Fatalf("value[%d] = %d, want %d", i, val, want)
		}
	}
}

// TestMidRunBufferedAttachOnFusedTriple attaches a buffered sink to
// the middle instruction of a live three-op superinstruction (add,
// addi, bne — the steady inner-loop triple) from inside another hook,
// partway through the run. unfuse must tear the whole fused region
// down in place, so the late sink sees every subsequent execution of
// its pc with the exact value stream.
func TestMidRunBufferedAttachOnFusedTriple(t *testing.T) {
	prog := assembleFuse(t)
	input := []int64{4}

	var late []int64
	buf := vm.NewValueBuffer(func(vals []int64) { late = append(late, vals...) })
	v := vm.New(prog)
	v.Input = input
	outer := 0
	v.HookAfter(3, func(ev *vm.Event) {
		outer++
		if outer == 3 {
			// pc 5 is "addi t0, t0, -1", second op of the fused
			// (pc4, pc5, pc6) triple.
			ev.VM.HookAfterBuffered(5, buf)
		}
	})
	outcome, err := v.RunControlled(context.Background())
	if outcome != vm.OutcomeCompleted {
		t.Fatalf("%v (%v)", outcome, err)
	}
	buf.Flush()
	// Attached at the start of outer iteration 3 of 4: the decrement
	// runs 50 times in each of the two remaining iterations, counting
	// t0 down 49..0.
	if len(late) != 100 {
		t.Fatalf("late sink saw %d values, want 100", len(late))
	}
	for i, val := range late {
		if want := int64(49 - i%50); val != want {
			t.Fatalf("value[%d] = %d, want %d", i, val, want)
		}
	}
}

// TestBufferedHookMatchesClosureHook: the buffered sink must observe
// the same value stream and charge the same accounting as an
// equivalent closure hook.
func TestBufferedHookMatchesClosureHook(t *testing.T) {
	prog := assembleFuse(t)
	input := []int64{7}
	pc := 4 // inner-loop add

	closure := vm.New(prog)
	closure.Input = input
	closure.ChargeHooks = true
	var a []int64
	closure.HookAfter(pc, func(ev *vm.Event) { a = append(a, ev.Value) })
	if err := closure.Run(); err != nil {
		t.Fatal(err)
	}

	buffered := vm.New(prog)
	buffered.Input = input
	buffered.ChargeHooks = true
	var b []int64
	buf := vm.NewValueBuffer(func(vals []int64) { b = append(b, vals...) })
	buffered.HookAfterBuffered(pc, buf)
	if err := buffered.Run(); err != nil {
		t.Fatal(err)
	}
	buf.Flush()

	if !reflect.DeepEqual(a, b) {
		t.Fatalf("value streams differ: closure %d values, buffered %d", len(a), len(b))
	}
	ra := vm.ResultOf(closure, vm.OutcomeCompleted)
	rb := vm.ResultOf(buffered, vm.OutcomeCompleted)
	if *ra != *rb {
		t.Fatalf("accounting differs:\nclosure: %+v\nbuffered: %+v", ra, rb)
	}
}

// TestGeneratedFusionEquivalence sweeps generated programs with and
// without a fusion-disabling step hook; every observable must agree.
// This is the property-level proof that pair fusion is invisible.
func TestGeneratedFusionEquivalence(t *testing.T) {
	seeds := 20
	if testing.Short() {
		seeds = 4
	}
	for seed := uint64(100); seed < uint64(100+seeds); seed++ {
		prog, input := buildGenerated(t, seed)

		fused := vm.New(prog)
		fused.Input = input
		oc1, err1 := fused.RunControlled(context.Background())

		plain := vm.New(prog)
		plain.Input = input
		plain.HookStep(func(*vm.VM) error { return nil })
		oc2, err2 := plain.RunControlled(context.Background())

		if oc1 != oc2 || (err1 == nil) != (err2 == nil) {
			t.Fatalf("seed %d: outcomes differ: %v/%v vs %v/%v", seed, oc1, err1, oc2, err2)
		}
		got, want := vm.ResultOf(fused, oc1), vm.ResultOf(plain, oc2)
		if *got != *want {
			t.Fatalf("seed %d: fused differs from unfused:\n fused: %+v\nplain: %+v", seed, got, want)
		}
		if !reflect.DeepEqual(fused.Regs, plain.Regs) {
			t.Fatalf("seed %d: register files diverged", seed)
		}
	}
}
