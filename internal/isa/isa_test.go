package isa

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestOpInfoComplete(t *testing.T) {
	for op := Op(0); op < numOps; op++ {
		if opInfo[op].name == "" {
			t.Errorf("opcode %d has no name", uint8(op))
		}
		if opInfo[op].cycles == 0 {
			t.Errorf("opcode %s has zero cycle cost", op)
		}
	}
}

func TestOpByNameRoundTrip(t *testing.T) {
	for op := Op(0); op < numOps; op++ {
		got, ok := OpByName(op.Name())
		if !ok {
			t.Fatalf("OpByName(%q) not found", op.Name())
		}
		if got != op {
			t.Fatalf("OpByName(%q) = %v, want %v", op.Name(), got, op)
		}
	}
	if _, ok := OpByName("bogus"); ok {
		t.Error(`OpByName("bogus") succeeded`)
	}
}

func TestHasDestMatchesClass(t *testing.T) {
	for op := Op(0); op < numOps; op++ {
		switch op.Class() {
		case ClassLoad, ClassALU, ClassMulDiv, ClassLogic, ClassShift, ClassCompare:
			if !op.HasDest() {
				t.Errorf("%s (class %s) should have a destination", op, op.Class())
			}
		case ClassStore, ClassBranch, ClassNop, ClassSyscall:
			if op.HasDest() {
				t.Errorf("%s (class %s) should not have a destination", op, op.Class())
			}
		}
	}
}

func TestInstString(t *testing.T) {
	cases := []struct {
		in   Inst
		want string
	}{
		{Inst{Op: OpAdd, Rd: 1, Ra: 2, Rb: 3}, "add r1, r2, r3"},
		{Inst{Op: OpAddi, Rd: 1, Ra: RegZero, Imm: -7}, "addi r1, zero, -7"},
		{Inst{Op: OpLdq, Rd: 4, Ra: RegSP, Imm: 16}, "ldq r4, 16(sp)"},
		{Inst{Op: OpStb, Rd: 4, Ra: 9, Imm: -1}, "stb r4, -1(r9)"},
		{Inst{Op: OpBr, Imm: 42}, "br 42"},
		{Inst{Op: OpBeq, Ra: 5, Imm: 10}, "beq r5, 10"},
		{Inst{Op: OpJsr, Rd: RegRA, Imm: 100}, "jsr 100"},
		{Inst{Op: OpRet, Ra: RegRA}, "ret ra"},
		{Inst{Op: OpSyscall, Imm: SysPutInt}, "syscall 1"},
		{Inst{Op: OpNop}, "nop"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String(%+v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestIsBranchOrJump(t *testing.T) {
	if !(Inst{Op: OpBr}).IsBranchOrJump() {
		t.Error("br should end a block")
	}
	if !(Inst{Op: OpSyscall, Imm: SysExit}).IsBranchOrJump() {
		t.Error("syscall exit should end a block")
	}
	if (Inst{Op: OpSyscall, Imm: SysPutInt}).IsBranchOrJump() {
		t.Error("syscall putint should not end a block")
	}
	if (Inst{Op: OpAdd}).IsBranchOrJump() {
		t.Error("add should not end a block")
	}
}

func TestTarget(t *testing.T) {
	if tgt, ok := (Inst{Op: OpJsr, Imm: 17}).Target(); !ok || tgt != 17 {
		t.Errorf("jsr target = %d,%v want 17,true", tgt, ok)
	}
	if _, ok := (Inst{Op: OpJmp, Ra: 3}).Target(); ok {
		t.Error("indirect jmp should have no static target")
	}
	if _, ok := (Inst{Op: OpAdd}).Target(); ok {
		t.Error("add should have no target")
	}
}

func randInst(r *rand.Rand) Inst {
	return Inst{
		Op:  Op(r.Intn(NumOps)),
		Rd:  uint8(r.Intn(NumRegs)),
		Ra:  uint8(r.Intn(NumRegs)),
		Rb:  uint8(r.Intn(NumRegs)),
		Imm: int32(r.Uint32()),
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		in := randInst(r)
		out, err := Decode(in.Encode())
		return err == nil && out == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestDecodeRejectsInvalidOpcode(t *testing.T) {
	if _, err := Decode(Word(0xff)); err == nil {
		t.Error("Decode accepted invalid opcode 0xff")
	}
}

func TestProgramImageRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	code := make([]Inst, 257)
	for i := range code {
		code[i] = randInst(r)
	}
	img := EncodeProgram(code)
	if len(img) != 8*len(code) {
		t.Fatalf("image size %d, want %d", len(img), 8*len(code))
	}
	back, err := DecodeProgram(img)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(code) {
		t.Fatalf("decoded %d instructions, want %d", len(back), len(code))
	}
	for i := range code {
		if back[i] != code[i] {
			t.Fatalf("instruction %d: got %+v want %+v", i, back[i], code[i])
		}
	}
}

func TestDecodeProgramBadLength(t *testing.T) {
	if _, err := DecodeProgram(make([]byte, 9)); err == nil {
		t.Error("DecodeProgram accepted a truncated image")
	}
}

func TestRegNames(t *testing.T) {
	for _, c := range []struct {
		r    uint8
		want string
	}{{RegZero, "zero"}, {RegSP, "sp"}, {RegRA, "ra"}, {RegFP, "fp"}, {0, "r0"}, {17, "r17"}} {
		if got := RegName(c.r); got != c.want {
			t.Errorf("RegName(%d) = %q, want %q", c.r, got, c.want)
		}
	}
}

func TestClassString(t *testing.T) {
	seen := map[string]bool{}
	for c := Class(0); int(c) < NumClasses; c++ {
		s := c.String()
		if s == "" || strings.HasPrefix(s, "class(") {
			t.Errorf("class %d has no name", c)
		}
		if seen[s] {
			t.Errorf("duplicate class name %q", s)
		}
		seen[s] = true
	}
}
