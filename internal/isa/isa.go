// Package isa defines VRISC, the 64-bit RISC instruction set executed by
// the simulator in internal/vm and produced by the assembler in
// internal/asm and the MiniC compiler in internal/minic.
//
// VRISC is deliberately Alpha-flavoured, matching the substrate the value
// profiling paper ran on: a load/store architecture with 32 integer
// registers (r31 hardwired to zero), byte-addressable little-endian
// memory, and simple conditional branches that test a register against
// zero. The program counter indexes instructions, not bytes.
package isa

import "fmt"

// Op identifies a VRISC opcode.
type Op uint8

// Opcodes. The zero value is OpNop so that a zeroed instruction is a
// harmless no-op.
const (
	OpNop Op = iota

	// Register-register arithmetic: rd = ra <op> rb.
	OpAdd
	OpSub
	OpMul
	OpDiv // signed; divide by zero faults
	OpRem // signed remainder; by zero faults

	// Register-immediate arithmetic: rd = ra <op> imm.
	OpAddi
	OpMuli

	// Logic, register-register and register-immediate.
	OpAnd
	OpOr
	OpXor
	OpAndi
	OpOri
	OpXori

	// Shifts; shift amount taken mod 64.
	OpSll
	OpSrl
	OpSra
	OpSlli
	OpSrli
	OpSrai

	// Comparisons produce 0 or 1 in rd. Signed.
	OpCmpeq
	OpCmpne
	OpCmplt
	OpCmple
	OpCmpgt
	OpCmpge
	OpCmplti // rd = (ra < imm)
	OpCmpeqi // rd = (ra == imm)

	// Memory. Effective address is ra + imm.
	OpLdq  // load 64-bit
	OpLdl  // load 32-bit sign-extended
	OpLdbu // load byte zero-extended
	OpLdb  // load byte sign-extended
	OpStq  // store 64-bit
	OpStl  // store low 32 bits
	OpStb  // store low byte

	// Control flow. Branch targets are absolute instruction indices
	// stored in Imm by the assembler.
	OpBr   // unconditional
	OpBeq  // if ra == 0
	OpBne  // if ra != 0
	OpJsr  // call: rd = return pc, jump to Imm
	OpJsrr // indirect call: rd = return pc, jump to value of ra
	OpJmp  // indirect jump to value of ra
	OpRet  // jump to value of ra (conventionally the link register)

	// Syscall: the code is in Imm; arguments in a0.., result in v0.
	OpSyscall

	numOps // sentinel; keep last
)

// NumOps reports the number of defined opcodes (for fuzzing/encoding).
const NumOps = int(numOps)

// Syscall codes carried in the Imm field of OpSyscall.
const (
	SysExit    = 0 // terminate program; a0 = exit status
	SysPutInt  = 1 // print a0 as signed decimal
	SysPutChar = 2 // print low byte of a0
	SysGetInt  = 3 // read next int64 from the input stream into v0 (0 at EOF)
	SysPutStr  = 4 // print NUL-terminated string at address a0
	SysClock   = 5 // v0 = cycles consumed so far
)

// Register aliases under the VRISC calling convention.
const (
	RegV0   = 0  // return value
	RegA0   = 1  // first argument; a0..a5 = r1..r6
	RegA5   = 6  // last argument register
	RegT0   = 8  // caller-saved temporaries t0..t9 = r8..r17
	RegS0   = 18 // callee-saved s0..s7 = r18..r25
	RegGP   = 26 // global pointer (unused by the toolchain, reserved)
	RegAT   = 27 // assembler temporary
	RegRA   = 28 // link register
	RegFP   = 29 // frame pointer
	RegSP   = 30 // stack pointer
	RegZero = 31 // hardwired zero
	NumRegs = 32
)

// Form describes which operand fields an opcode uses.
type Form uint8

const (
	FormNone Form = iota // no operands (nop, ret uses Ra implicitly)
	FormRRR              // rd, ra, rb
	FormRRI              // rd, ra, imm
	FormMem              // rd, imm(ra)
	FormB                // label (imm)
	FormRB               // ra, label (imm)
	FormJ                // jsr: rd implicit ra-link, target imm
	FormR                // single register (jmp/jsrr/ret operand in Ra)
	FormS                // syscall imm
)

// Class buckets opcodes for the per-class invariance breakdown (paper
// experiment E3) and for the cycle cost model.
type Class uint8

const (
	ClassNop Class = iota
	ClassALU
	ClassMulDiv
	ClassLogic
	ClassShift
	ClassCompare
	ClassLoad
	ClassStore
	ClassBranch
	ClassJump
	ClassSyscall
	NumClasses = int(ClassSyscall) + 1
)

func (c Class) String() string {
	switch c {
	case ClassNop:
		return "nop"
	case ClassALU:
		return "alu"
	case ClassMulDiv:
		return "muldiv"
	case ClassLogic:
		return "logic"
	case ClassShift:
		return "shift"
	case ClassCompare:
		return "compare"
	case ClassLoad:
		return "load"
	case ClassStore:
		return "store"
	case ClassBranch:
		return "branch"
	case ClassJump:
		return "jump"
	case ClassSyscall:
		return "syscall"
	}
	return fmt.Sprintf("class(%d)", uint8(c))
}

// info is the static description of one opcode.
type info struct {
	name    string
	form    Form
	class   Class
	cycles  uint32
	hasDest bool // writes Rd with a profilable result value
}

var opInfo = [numOps]info{
	OpNop:  {"nop", FormNone, ClassNop, 1, false},
	OpAdd:  {"add", FormRRR, ClassALU, 1, true},
	OpSub:  {"sub", FormRRR, ClassALU, 1, true},
	OpMul:  {"mul", FormRRR, ClassMulDiv, 8, true},
	OpDiv:  {"div", FormRRR, ClassMulDiv, 35, true},
	OpRem:  {"rem", FormRRR, ClassMulDiv, 35, true},
	OpAddi: {"addi", FormRRI, ClassALU, 1, true},
	OpMuli: {"muli", FormRRI, ClassMulDiv, 8, true},

	OpAnd:  {"and", FormRRR, ClassLogic, 1, true},
	OpOr:   {"or", FormRRR, ClassLogic, 1, true},
	OpXor:  {"xor", FormRRR, ClassLogic, 1, true},
	OpAndi: {"andi", FormRRI, ClassLogic, 1, true},
	OpOri:  {"ori", FormRRI, ClassLogic, 1, true},
	OpXori: {"xori", FormRRI, ClassLogic, 1, true},

	OpSll:  {"sll", FormRRR, ClassShift, 1, true},
	OpSrl:  {"srl", FormRRR, ClassShift, 1, true},
	OpSra:  {"sra", FormRRR, ClassShift, 1, true},
	OpSlli: {"slli", FormRRI, ClassShift, 1, true},
	OpSrli: {"srli", FormRRI, ClassShift, 1, true},
	OpSrai: {"srai", FormRRI, ClassShift, 1, true},

	OpCmpeq:  {"cmpeq", FormRRR, ClassCompare, 1, true},
	OpCmpne:  {"cmpne", FormRRR, ClassCompare, 1, true},
	OpCmplt:  {"cmplt", FormRRR, ClassCompare, 1, true},
	OpCmple:  {"cmple", FormRRR, ClassCompare, 1, true},
	OpCmpgt:  {"cmpgt", FormRRR, ClassCompare, 1, true},
	OpCmpge:  {"cmpge", FormRRR, ClassCompare, 1, true},
	OpCmplti: {"cmplti", FormRRI, ClassCompare, 1, true},
	OpCmpeqi: {"cmpeqi", FormRRI, ClassCompare, 1, true},

	OpLdq:  {"ldq", FormMem, ClassLoad, 3, true},
	OpLdl:  {"ldl", FormMem, ClassLoad, 3, true},
	OpLdbu: {"ldbu", FormMem, ClassLoad, 3, true},
	OpLdb:  {"ldb", FormMem, ClassLoad, 3, true},
	OpStq:  {"stq", FormMem, ClassStore, 3, false},
	OpStl:  {"stl", FormMem, ClassStore, 3, false},
	OpStb:  {"stb", FormMem, ClassStore, 3, false},

	OpBr:   {"br", FormB, ClassBranch, 2, false},
	OpBeq:  {"beq", FormRB, ClassBranch, 2, false},
	OpBne:  {"bne", FormRB, ClassBranch, 2, false},
	OpJsr:  {"jsr", FormJ, ClassJump, 3, false},
	OpJsrr: {"jsrr", FormR, ClassJump, 4, false},
	OpJmp:  {"jmp", FormR, ClassJump, 2, false},
	OpRet:  {"ret", FormR, ClassJump, 3, false},

	OpSyscall: {"syscall", FormS, ClassSyscall, 10, false},
}

// Name returns the assembler mnemonic for op.
func (op Op) Name() string {
	if int(op) < len(opInfo) {
		return opInfo[op].name
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

func (op Op) String() string { return op.Name() }

// Valid reports whether op is a defined opcode.
func (op Op) Valid() bool { return op < numOps }

// Form returns the operand form of op.
func (op Op) Form() Form { return opInfo[op].form }

// Class returns the profiling/cost class of op.
func (op Op) Class() Class { return opInfo[op].class }

// Cycles returns the cost of op under the VM's simple timing model.
func (op Op) Cycles() uint32 { return opInfo[op].cycles }

// HasDest reports whether op writes a result value into Rd. Value
// profiling of instructions attaches to exactly these opcodes.
func (op Op) HasDest() bool { return opInfo[op].hasDest }

// OpByName maps an assembler mnemonic to its opcode.
func OpByName(name string) (Op, bool) {
	op, ok := byName[name]
	return op, ok
}

var byName = func() map[string]Op {
	m := make(map[string]Op, numOps)
	for op := Op(0); op < numOps; op++ {
		m[opInfo[op].name] = op
	}
	return m
}()

// Inst is one decoded VRISC instruction. Branch and call targets are
// absolute instruction indices in Imm.
type Inst struct {
	Op  Op
	Rd  uint8
	Ra  uint8
	Rb  uint8
	Imm int32
}

// RegName returns the canonical assembler name for register r.
func RegName(r uint8) string {
	switch r {
	case RegZero:
		return "zero"
	case RegSP:
		return "sp"
	case RegFP:
		return "fp"
	case RegRA:
		return "ra"
	case RegGP:
		return "gp"
	case RegAT:
		return "at"
	}
	return fmt.Sprintf("r%d", r)
}

// String disassembles the instruction in assembler syntax.
func (in Inst) String() string {
	switch in.Op.Form() {
	case FormNone:
		return in.Op.Name()
	case FormRRR:
		return fmt.Sprintf("%s %s, %s, %s", in.Op, RegName(in.Rd), RegName(in.Ra), RegName(in.Rb))
	case FormRRI:
		return fmt.Sprintf("%s %s, %s, %d", in.Op, RegName(in.Rd), RegName(in.Ra), in.Imm)
	case FormMem:
		return fmt.Sprintf("%s %s, %d(%s)", in.Op, RegName(in.Rd), in.Imm, RegName(in.Ra))
	case FormB:
		return fmt.Sprintf("%s %d", in.Op, in.Imm)
	case FormRB:
		return fmt.Sprintf("%s %s, %d", in.Op, RegName(in.Ra), in.Imm)
	case FormJ:
		return fmt.Sprintf("%s %d", in.Op, in.Imm)
	case FormR:
		return fmt.Sprintf("%s %s", in.Op, RegName(in.Ra))
	case FormS:
		return fmt.Sprintf("%s %d", in.Op, in.Imm)
	}
	return fmt.Sprintf("?%d", uint8(in.Op))
}

// IsBranchOrJump reports whether the instruction can change control flow,
// i.e. ends a basic block.
func (in Inst) IsBranchOrJump() bool {
	switch in.Op.Class() {
	case ClassBranch, ClassJump:
		return true
	}
	// SysExit terminates the program; treat it as a block ender too.
	return in.Op == OpSyscall && in.Imm == SysExit
}

// Target returns the static control-flow target of a direct branch or
// call and whether one exists (indirect jumps have none).
func (in Inst) Target() (int, bool) {
	switch in.Op {
	case OpBr, OpBeq, OpBne, OpJsr:
		return int(in.Imm), true
	}
	return 0, false
}
