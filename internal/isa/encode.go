package isa

import (
	"encoding/binary"
	"fmt"
)

// Word is the fixed-width binary encoding of one instruction:
//
//	bits 0..7    opcode
//	bits 8..12   rd
//	bits 16..20  ra
//	bits 24..28  rb
//	bits 32..63  imm (two's complement)
//
// The encoding exists so programs can be serialized (cmd/vasm -o) and so
// the encode/decode round-trip can be property-tested; the VM executes
// decoded Inst values directly.
type Word uint64

// Encode packs the instruction into its binary word.
func (in Inst) Encode() Word {
	w := uint64(in.Op) |
		uint64(in.Rd&0x1f)<<8 |
		uint64(in.Ra&0x1f)<<16 |
		uint64(in.Rb&0x1f)<<24 |
		uint64(uint32(in.Imm))<<32
	return Word(w)
}

// Decode unpacks a binary word. It returns an error for undefined
// opcodes so corrupted images are rejected at load time.
func Decode(w Word) (Inst, error) {
	op := Op(w & 0xff)
	if !op.Valid() {
		return Inst{}, fmt.Errorf("isa: invalid opcode %d in word %#x", uint8(op), uint64(w))
	}
	return Inst{
		Op:  op,
		Rd:  uint8(w>>8) & 0x1f,
		Ra:  uint8(w>>16) & 0x1f,
		Rb:  uint8(w>>24) & 0x1f,
		Imm: int32(uint32(w >> 32)),
	}, nil
}

// AppendWord appends the little-endian bytes of w to b.
func AppendWord(b []byte, w Word) []byte {
	return binary.LittleEndian.AppendUint64(b, uint64(w))
}

// WordAt reads a little-endian word from b.
func WordAt(b []byte) Word {
	return Word(binary.LittleEndian.Uint64(b))
}

// EncodeProgram serializes a code segment.
func EncodeProgram(code []Inst) []byte {
	out := make([]byte, 0, 8*len(code))
	for _, in := range code {
		out = AppendWord(out, in.Encode())
	}
	return out
}

// DecodeProgram deserializes a code segment produced by EncodeProgram.
func DecodeProgram(b []byte) ([]Inst, error) {
	if len(b)%8 != 0 {
		return nil, fmt.Errorf("isa: program image length %d is not a multiple of 8", len(b))
	}
	code := make([]Inst, 0, len(b)/8)
	for off := 0; off < len(b); off += 8 {
		in, err := Decode(WordAt(b[off:]))
		if err != nil {
			return nil, fmt.Errorf("isa: at instruction %d: %w", off/8, err)
		}
		code = append(code, in)
	}
	return code, nil
}
