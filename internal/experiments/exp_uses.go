package experiments

import (
	"fmt"

	"valueprof/internal/atom"
	"valueprof/internal/core"
	"valueprof/internal/isa"
	"valueprof/internal/memo"
	"valueprof/internal/minic"
	"valueprof/internal/paramprof"
	"valueprof/internal/specialize"
	"valueprof/internal/stats"
	"valueprof/internal/textual"
	"valueprof/internal/vm"
)

// caseStudySrc is the Chapter X case study: a mode-dispatched kernel
// whose mode argument is semi-invariant (mode 6 dominates). The general
// version walks a dispatch chain every call; specializing on mode=6
// folds the dispatch and the mode-specific constants away.
const caseStudySrc = `
int results[16];
func apply(mode, x) {
    if (mode == 0) { return x + 1; }
    if (mode == 1) { return x * 3 - 1; }
    if (mode == 2) { return (x << 2) + (x >> 1); }
    if (mode == 3) { return x * x; }
    if (mode == 4) { return x & 0xFF; }
    if (mode == 5) { return x ^ 0x55; }
    if (mode == 6) {
        var t = mode * 12 + 5;
        return x * 2 + t - mode;
    }
    return x;
}
func main() {
    var i; var acc = 0; var m;
    for (i = 0; i < 30000; i = i + 1) {
        if (i % 40 == 0) { m = i % 7; } else { m = 6; }
        acc = (acc + apply(m, i)) & 0xFFFFFF;
    }
    putint(acc);
}
`

// E11 — profile-driven code specialization (Chapter X).
func init() {
	register(&Experiment{
		ID:    "e11",
		Title: "Code specialization case study (Ch. X)",
		Paper: "Value profiling identifies a semi-invariant procedure argument; specializing the procedure on its dominant value (with a guarded dispatch) yields a real speedup with identical output.",
		Run:   runE11,
	})
}

func runE11(Config) (*Result, error) {
	prog, err := minic.Compile(caseStudySrc)
	if err != nil {
		return nil, err
	}
	base, err := vm.Execute(prog, nil)
	if err != nil {
		return nil, err
	}

	// Step 1: parameter profile discovers the candidate.
	pp := paramprof.New(paramprof.Options{
		TNV:   core.DefaultTNVConfig(),
		Arity: map[string]int{"apply": 2},
		Procs: []string{"apply"},
	})
	if _, err := atom.Run(prog, nil, false, pp); err != nil {
		return nil, err
	}
	apply := pp.Report().Proc("apply")
	argInv := apply.Args[0].InvTop(1)
	top, _, ok := apply.Args[0].TNV.TopValue()
	if !ok {
		return nil, fmt.Errorf("e11: no profiled top value")
	}

	// Step 2: specialize on the discovered (register, value).
	spec, info, err := specialize.Specialize(prog, "apply", isa.RegA0, top)
	if err != nil {
		return nil, err
	}
	got, err := vm.Execute(spec, nil)
	if err != nil {
		return nil, err
	}
	speedup := float64(base.Cycles) / float64(got.Cycles)

	tab := textual.New("Specialization case study",
		"step", "value")
	tab.Row("profiled arg0 invariance", fmt.Sprintf("%.3f", argInv))
	tab.Row("dominant value", top)
	tab.Row("calls", apply.Calls)
	tab.Row("body insts (orig -> spec)", fmt.Sprintf("%d -> %d", info.OrigSize, info.SpecSize))
	tab.Row("folded / branches / removed", fmt.Sprintf("%d / %d / %d", info.Folded, info.Branches, info.Removed))
	tab.Row("cycles (orig -> spec)", fmt.Sprintf("%d -> %d", base.Cycles, got.Cycles))
	tab.Row("speedup", fmt.Sprintf("%.3fx", speedup))
	tab.Row("output identical", got.Output == base.Output)

	// Part 2: multi-way specialization on the TNV table's top TWO
	// values ("value profiling can identify ... the top N values of a
	// variable") — the guard chain covers the second-most-common mode
	// too, so fewer calls fall back to the general body.
	top2 := apply.Args[0].TNV.Top(2)
	var vals []int64
	for _, e := range top2 {
		vals = append(vals, e.Value)
	}
	multiSpeedup := 0.0
	multiOK := false
	if len(vals) == 2 {
		mprog, _, err := specialize.SpecializeMulti(prog, "apply", isa.RegA0, vals)
		if err != nil {
			return nil, err
		}
		mres, err := vm.Execute(mprog, nil)
		if err != nil {
			return nil, err
		}
		multiOK = mres.Output == base.Output
		multiSpeedup = float64(base.Cycles) / float64(mres.Cycles)
		tab.Row("multi-value guard (top 2)", fmt.Sprintf("%v -> %.3fx, output ok=%v", vals, multiSpeedup, multiOK))
	}

	r := &Result{ID: "e11", Title: "Code specialization case study", Text: tab.String()}
	r.Checks = append(r.Checks,
		check("candidate-discovered", top == 6 && argInv >= 0.9,
			"profile found mode=%d with invariance %.3f", top, argInv),
		check("output-preserved", got.Output == base.Output,
			"specialized output matches (%q)", got.Output),
		check("speedup", speedup >= 1.05,
			"speedup %.3fx (paper: specialization on semi-invariant values pays)", speedup),
		check("code-shrunk", info.SpecSize < info.OrigSize,
			"specialized body %d < original %d instructions", info.SpecSize, info.OrigSize),
		check("multi-value-correct", multiOK && multiSpeedup >= speedup-0.02,
			"top-2 guard chain %.3fx, output preserved (single-value %.3fx)", multiSpeedup, speedup))
	return r, nil
}

// E12 — value predictors and profile-guided filtering.
func init() {
	register(&Experiment{
		ID:    "e12",
		Title: "Value predictors and profile-guided filtering (Ch. II)",
		Paper: "Hit-rate ordering of LVP / stride / 2-level / hybrids follows Wang & Franklin [39] (hybrids win); gating prediction with the value profile (Gabbay & Mendelson [18]) raises accuracy and cuts mispredictions.",
		Run:   runE12,
	})
}

func runE12(cfg Config) (*Result, error) {
	ws, err := cfg.quickSubset()
	if err != nil {
		return nil, err
	}
	names := []string{"lvp", "stride", "2level", "hybrid-lvp-stride", "hybrid-stride-2level"}
	tab := textual.New("Predictor hit rates (all result-producing instructions, test input)",
		append([]string{"program"}, names...)...)
	sums := map[string][]float64{}
	var accGain, missDrop []float64
	ftab := textual.New("Profile-guided filtering of LVP (threshold 0.7)",
		"program", "unfiltered-acc", "filtered-acc", "unfiltered-miss", "filtered-miss", "attempts-kept")

	for _, w := range ws {
		prog, err := w.Compile()
		if err != nil {
			return nil, err
		}
		ev := newSuiteEvaluator()
		if _, err := atom.Run(prog, w.Test.Args, false, ev); err != nil {
			return nil, err
		}
		row := []any{w.Name}
		for i, s := range ev.Results() {
			if s.Name != names[i] {
				return nil, fmt.Errorf("e12: predictor order mismatch")
			}
			row = append(row, fmt.Sprintf("%.3f", s.HitRate()))
			sums[s.Name] = append(sums[s.Name], s.HitRate())
		}
		tab.Row(row...)

		// Profile-guided filtering comparison.
		vp, err := core.NewValueProfiler(core.Options{TNV: core.DefaultTNVConfig()})
		if err != nil {
			return nil, err
		}
		if _, err := atom.Run(prog, w.Test.Args, false, vp); err != nil {
			return nil, err
		}
		unf := newLVPEvaluator(nil)
		if _, err := atom.Run(prog, w.Test.Args, false, unf); err != nil {
			return nil, err
		}
		flt := newLVPEvaluator(vpFilter(vp.Profile(), 0.7))
		if _, err := atom.Run(prog, w.Test.Args, false, flt); err != nil {
			return nil, err
		}
		u, f := unf.Results()[0], flt.Results()[0]
		ftab.Row(w.Name,
			fmt.Sprintf("%.3f", u.Accuracy()), fmt.Sprintf("%.3f", f.Accuracy()),
			u.Misses, f.Misses,
			textual.Pct(float64(f.Attempts)/float64(max64(u.Attempts, 1))))
		accGain = append(accGain, f.Accuracy()-u.Accuracy())
		missDrop = append(missDrop, float64(u.Misses)-float64(f.Misses))
	}

	hybridWins := stats.Mean(sums["hybrid-stride-2level"]) >= stats.Mean(sums["stride"])-0.01 &&
		stats.Mean(sums["hybrid-stride-2level"]) >= stats.Mean(sums["2level"])-0.01 &&
		stats.Mean(sums["hybrid-lvp-stride"]) >= stats.Mean(sums["lvp"])-0.01
	meanGain := stats.Mean(accGain)
	missesDown := true
	for _, d := range missDrop {
		if d < 0 {
			missesDown = false
		}
	}
	r := &Result{ID: "e12", Title: "Value predictors and profile-guided filtering",
		Text: tab.String() + "\n" + ftab.String()}
	r.Checks = append(r.Checks,
		check("hybrids-win", hybridWins,
			"hybrid hit rates dominate their components (Wang & Franklin shape)"),
		check("filtering-raises-accuracy", meanGain >= -0.005,
			"mean accuracy change with profile filtering %+.3f", meanGain),
		check("filtering-cuts-misses", missesDown,
			"profile filtering never increases mispredictions"))
	return r, nil
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// E13 — memoization guided by parameter profiles.
func init() {
	register(&Experiment{
		ID:    "e13",
		Title: "Memoization of invariant-parameter procedures (Richardson [32], Ch. X)",
		Paper: "Procedures with recurring argument tuples can return cached results; the evaluator also exposes which candidates are unsafe (impure) by checking cached results against actual ones.",
		Run:   runE13,
	})
}

// memoTargets are the workload procedures evaluated for memoization,
// with cache sizes sized to their argument-tuple working sets.
var memoTargets = map[string]struct {
	arity map[string]int
	size  int
}{
	"lifegrid": {map[string]int{"idx": 2}, 4096},
	"compress": {map[string]int{"hash3": 3}, 4096},
	"dictv":    {map[string]int{"hash": 1}, 4096},
	"gosearch": {map[string]int{"liberties": 2, "score": 3}, 4096},
	"mcsim":    {map[string]int{"enc": 4}, 64},
	"parsef":   {map[string]int{"isDigit": 1}, 4096},
}

func runE13(cfg Config) (*Result, error) {
	ws, err := cfg.selected()
	if err != nil {
		return nil, err
	}
	tab := textual.New("Memoization evaluation (test input)",
		"program", "proc", "calls", "hit-rate", "memoizable", "net-saved-cycles")
	positive := 0
	impureFound := false
	for _, w := range ws {
		target, ok := memoTargets[w.Name]
		if !ok {
			continue
		}
		prog, err := w.Compile()
		if err != nil {
			return nil, err
		}
		ev := memo.New(memo.Options{Arity: target.arity, CacheSize: target.size})
		if _, err := atom.Run(prog, w.Test.Args, false, ev); err != nil {
			return nil, err
		}
		for _, p := range ev.Results() {
			tab.Row(w.Name, p.Name, p.Calls,
				fmt.Sprintf("%.3f", p.HitRate()), p.Memoizable(), p.NetSavedCycles())
			if p.Memoizable() && p.NetSavedCycles() > 0 && p.Calls > 100 {
				positive++
			}
			if !p.Memoizable() {
				impureFound = true
			}
		}
	}
	r := &Result{ID: "e13", Title: "Memoization of invariant-parameter procedures", Text: tab.String()}
	r.Checks = append(r.Checks,
		check("profitable-memoization", positive >= 1,
			"%d procedures memoizable with positive net cycle savings", positive),
		check("impurity-detected", impureFound,
			"at least one candidate correctly rejected as impure"))
	return r, nil
}
