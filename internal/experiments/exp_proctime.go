package experiments

import (
	"fmt"

	"valueprof/internal/atom"
	"valueprof/internal/procprof"
	"valueprof/internal/stats"
	"valueprof/internal/textual"
	"valueprof/internal/vpred"
)

// E19 — procedure-time attribution (Ch. IV background; the "few
// procedures make up the bulk of the execution" motivation for
// memoization/specialization).
func init() {
	register(&Experiment{
		ID:    "e19",
		Title: "Procedure cycle attribution (Ch. IV; memoization motivation)",
		Paper: "Execution time concentrates in a handful of procedures, so value-profile-driven optimizations only need to consider a few targets per program.",
		Run:   runE19,
	})
}

func runE19(cfg Config) (*Result, error) {
	ws, err := cfg.selected()
	if err != nil {
		return nil, err
	}
	tab := textual.New("Procedure time (test input, exclusive cycles)",
		"program", "procs", "hottest", "top1-share", "top3-share", "calls(top1)")
	var top3s []float64
	for _, w := range ws {
		prog, err := w.Compile()
		if err != nil {
			return nil, err
		}
		pp := procprof.New()
		if _, err := atom.Run(prog, w.Test.Args, false, pp); err != nil {
			return nil, err
		}
		sorted := pp.Sorted()
		if len(sorted) == 0 {
			return nil, fmt.Errorf("e19: %s attributed no procedures", w.Name)
		}
		top3s = append(top3s, pp.TopShare(3))
		tab.Row(w.Name, len(sorted), sorted[0].Name,
			textual.Pct(pp.TopShare(1)), textual.Pct(pp.TopShare(3)), sorted[0].Calls)
	}
	mean3 := stats.Mean(top3s)
	r := &Result{ID: "e19", Title: "Procedure cycle attribution", Text: tab.String()}
	r.Checks = append(r.Checks,
		check("time-concentrated-in-procs", mean3 >= 0.6,
			"top 3 procedures hold %.1f%% of exclusive cycles on average", 100*mean3))
	return r, nil
}

// E20 — predictor table-size sensitivity (the finite-VHT reality behind
// the predictor comparison of [17,39]).
func init() {
	register(&Experiment{
		ID:    "e20",
		Title: "Predictor table-size sensitivity (finite VHT, [17]/[39])",
		Paper: "Value-prediction tables are finite; aliasing at small sizes destroys hit rate, and profile-guided filtering (predict only the profiled-predictable sites) recovers much of a small table's loss by keeping noise out.",
		Run:   runE20,
	})
}

func runE20(cfg Config) (*Result, error) {
	ws, err := cfg.quickSubset()
	if err != nil {
		return nil, err
	}
	sizes := []int{4, 6, 8, 12}
	if cfg.Quick {
		sizes = []int{4, 8, 12}
	}
	headers := []string{"program", "variant"}
	for _, lg := range sizes {
		headers = append(headers, fmt.Sprintf("2^%d", lg))
	}
	tab := textual.New("LVP hit rate vs table size", headers...)

	var unfSmall, unfBig, fltSmall []float64
	for _, w := range ws {
		prog, err := w.Compile()
		if err != nil {
			return nil, err
		}
		profile, err := newProfileForFilter(prog, w.Test.Args)
		if err != nil {
			return nil, err
		}
		for _, filtered := range []bool{false, true} {
			cells := []any{w.Name, variantName(filtered)}
			for _, lg := range sizes {
				ev := vpred.NewEvaluator(vpred.NewLVP(lg))
				if filtered {
					ev.PredictPC = vpFilter(profile, 0.7)
				}
				if _, err := atom.Run(prog, w.Test.Args, false, ev); err != nil {
					return nil, err
				}
				hr := ev.Results()[0].HitRate()
				cells = append(cells, fmt.Sprintf("%.3f", hr))
				switch {
				case lg == sizes[0] && !filtered:
					unfSmall = append(unfSmall, hr)
				case lg == sizes[len(sizes)-1] && !filtered:
					unfBig = append(unfBig, hr)
				case lg == sizes[0] && filtered:
					fltSmall = append(fltSmall, hr)
				}
			}
			tab.Row(cells...)
		}
	}
	meanUnfSmall := stats.Mean(unfSmall)
	meanUnfBig := stats.Mean(unfBig)
	meanFltSmall := stats.Mean(fltSmall)
	r := &Result{ID: "e20", Title: "Predictor table-size sensitivity", Text: tab.String()}
	r.Checks = append(r.Checks,
		check("aliasing-hurts-small-tables", meanUnfBig >= meanUnfSmall+0.02,
			"unfiltered LVP hit rate %.3f at 2^%d vs %.3f at 2^%d entries",
			meanUnfBig, sizes[len(sizes)-1], meanUnfSmall, sizes[0]),
		check("filtering-helps-small-tables", meanFltSmall >= meanUnfSmall,
			"profile-filtered hit rate at 2^%d entries %.3f ≥ unfiltered %.3f (fewer sites contending)",
			sizes[0], meanFltSmall, meanUnfSmall))
	return r, nil
}

func variantName(filtered bool) string {
	if filtered {
		return "filtered"
	}
	return "unfiltered"
}
