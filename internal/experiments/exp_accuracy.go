package experiments

import (
	"fmt"

	"valueprof/internal/core"
	"valueprof/internal/stats"
	"valueprof/internal/textual"
	"valueprof/internal/vm"
	"valueprof/internal/workloads"
)

// E4 — TNV-table accuracy vs the full profile, with the size /
// steady-part / clear-interval ablation.
func init() {
	register(&Experiment{
		ID:    "e4",
		Title: "TNV table accuracy vs full profiling (Ch. III/V)",
		Paper: "The 10-entry TNV table with a protected top half and periodic clearing tracks full-profile invariance closely; accuracy degrades with tiny tables, and the clearing policy matters for phased values.",
		Run:   runE4,
	})
}

// tnvConfigsFull is the ablation grid.
var tnvConfigsFull = []struct {
	name string
	cfg  core.TNVConfig
}{
	{"n2-clear", core.TNVConfig{Size: 2, Steady: 1, ClearInterval: 2000}},
	{"n4-clear", core.TNVConfig{Size: 4, Steady: 2, ClearInterval: 2000}},
	{"n10-clear (paper)", core.DefaultTNVConfig()},
	{"n10-noclear", core.TNVConfig{Size: 10, Steady: 5, ClearInterval: 0}},
	{"n10-allsteady", core.TNVConfig{Size: 10, Steady: 10, ClearInterval: 0}},
	{"n16-clear", core.TNVConfig{Size: 16, Steady: 8, ClearInterval: 2000}},
}

func runE4(cfg Config) (*Result, error) {
	ws, err := cfg.quickSubset()
	if err != nil {
		return nil, err
	}
	grid := tnvConfigsFull
	if cfg.Quick {
		grid = grid[1:4]
	}
	tab := textual.New("TNV estimate error vs full profile (loads, exec-weighted MAE of Inv-Top(1))",
		append([]string{"config"}, namesOf(ws)...)...)
	mae := map[string][]float64{}
	for _, g := range grid {
		row := []any{g.name}
		for _, w := range ws {
			pr, _, err := profileWorkload(w, w.Test, core.Options{
				Filter: core.LoadsOnly, TNV: g.cfg, TrackFull: true,
			}, false)
			if err != nil {
				return nil, err
			}
			var errSum, wSum float64
			for _, s := range pr.Sites {
				if s.Exec == 0 {
					continue
				}
				e := s.InvAll(1) - s.InvTop(1)
				if e < 0 {
					e = -e
				}
				errSum += e * float64(s.Exec)
				wSum += float64(s.Exec)
			}
			m := 0.0
			if wSum > 0 {
				m = errSum / wSum
			}
			mae[g.name] = append(mae[g.name], m)
			row = append(row, fmt.Sprintf("%.4f", m))
		}
		tab.Row(row...)
	}
	paperName := "n10-clear (paper)"
	paperMAE := stats.Mean(mae[paperName])
	r := &Result{ID: "e4", Title: "TNV table accuracy vs full profiling", Text: tab.String()}
	r.Checks = append(r.Checks,
		check("paper-config-accurate", paperMAE <= 0.05,
			"10-entry TNV mean Inv-Top(1) error %.4f (≤0.05)", paperMAE))
	if small, ok := mae["n2-clear"]; ok {
		r.Checks = append(r.Checks, check("small-table-worse",
			stats.Mean(small) >= paperMAE,
			"2-entry MAE %.4f ≥ 10-entry MAE %.4f", stats.Mean(small), paperMAE))
	}
	if ns, ok := mae["n10-noclear"]; ok {
		r.Checks = append(r.Checks, check("ablation-present", len(ns) > 0,
			"no-clear MAE %.4f vs clearing %.4f", stats.Mean(ns), paperMAE))
	}
	return r, nil
}

func namesOf(ws []*workloads.Workload) []string {
	out := make([]string, len(ws))
	for i, w := range ws {
		out[i] = w.Name
	}
	return out
}

// E5 — Table V.5: the same load metrics on the test and train inputs,
// and the cross-input stability of per-site invariance.
func init() {
	register(&Experiment{
		ID:    "e5",
		Title: "Test vs train data sets (Table V.5)",
		Paper: "LVP, Inv-Top, Inv-All and Diff(L/I) for loads on both data sets. Claim (after Wall [38]): 'the percent zeroes and the percent invariance are very similar in both data sets' — profiles from different inputs correlate strongly.",
		Run:   runE5,
	})
}

func runE5(cfg Config) (*Result, error) {
	ws, err := cfg.selected()
	if err != nil {
		return nil, err
	}
	tab := textual.New("Load values, test vs train",
		"program", "input", "LVP", "InvTop1", "InvAll1", "%zero", "D(l/i)")
	var corrs []float64
	var agreeFracs []float64
	for _, w := range ws {
		profs := map[string]*core.Profile{}
		for _, in := range w.Inputs() {
			pr, _, err := profileWorkload(w, in, core.Options{
				Filter: core.LoadsOnly, TNV: core.DefaultTNVConfig(), TrackFull: true,
			}, false)
			if err != nil {
				return nil, err
			}
			profs[in.Name] = pr
			m := pr.Aggregate()
			tab.Row(w.Name, in.Name, m.LVP, m.InvTop1, m.InvAll1, m.PctZero, m.Diff)
		}
		// Per-site invariance vectors over sites executed in both runs.
		var x, y []float64
		agree, total := 0, 0
		th := core.DefaultThresholds()
		for _, st := range profs["test"].Sites {
			tr := profs["train"].Site(st.PC)
			if st.Exec == 0 || tr == nil || tr.Exec == 0 {
				continue
			}
			x = append(x, st.InvAll(1))
			y = append(y, tr.InvAll(1))
			if st.Classify(th) == tr.Classify(th) {
				agree++
			}
			total++
		}
		if len(x) >= 3 {
			corrs = append(corrs, stats.Correlation(x, y))
		}
		if total > 0 {
			agreeFracs = append(agreeFracs, float64(agree)/float64(total))
		}
	}
	meanCorr := stats.Mean(corrs)
	meanAgree := stats.Mean(agreeFracs)
	text := tab.String() + fmt.Sprintf(
		"\nper-site Inv-All(1) correlation test↔train: mean %.3f over %d benchmarks\nclassification agreement (invariant/semi/variant): mean %.1f%%\n",
		meanCorr, len(corrs), 100*meanAgree)
	r := &Result{ID: "e5", Title: "Test vs train data sets", Text: text}
	r.Checks = append(r.Checks,
		check("cross-input-correlation", meanCorr >= 0.5,
			"mean per-site invariance correlation %.3f (paper: high similarity)", meanCorr),
		check("classification-stable", meanAgree >= 0.7,
			"classification agreement %.1f%%", 100*meanAgree))
	return r, nil
}

// E6 — convergent profiling: overhead vs accuracy.
func init() {
	register(&Experiment{
		ID:    "e6",
		Title: "Convergent (intelligent) profiling: overhead vs accuracy (Ch. V–VI)",
		Paper: "Sampling with an invariance-convergence criterion cuts profiled executions by an order of magnitude while keeping invariance estimates within a few percent of full-time profiling.",
		Run:   runE6,
	})
}

var convConfigsFull = []struct {
	name string
	cfg  core.ConvergentConfig
}{
	{"eps1%-skip4k", core.ConvergentConfig{BurstLen: 1000, InitialSkip: 4000, MaxSkip: 256000, Epsilon: 0.01}},
	{"eps2%-skip4k (default)", core.DefaultConvergentConfig()},
	{"eps5%-skip4k", core.ConvergentConfig{BurstLen: 1000, InitialSkip: 4000, MaxSkip: 256000, Epsilon: 0.05}},
	{"eps2%-skip16k", core.ConvergentConfig{BurstLen: 1000, InitialSkip: 16000, MaxSkip: 1024000, Epsilon: 0.02}},
	{"burst200", core.ConvergentConfig{BurstLen: 200, InitialSkip: 4000, MaxSkip: 256000, Epsilon: 0.02}},
}

func runE6(cfg Config) (*Result, error) {
	ws, err := cfg.quickSubset()
	if err != nil {
		return nil, err
	}
	grid := convConfigsFull
	if cfg.Quick {
		grid = grid[1:3]
	}
	tab := textual.New("Convergent profiling (all instructions)",
		"config", "program", "duty", "slowdown", "fullslow", "MAE-inv")

	type agg struct{ duty, mae, slow, fullslow []float64 }
	byCfg := map[string]*agg{}

	for _, w := range ws {
		// Ground truth from full-time profiling, plus full overhead.
		fullPr, fullRes, err := profileWorkload(w, w.Test, core.Options{
			TNV: core.DefaultTNVConfig(), TrackFull: true,
		}, false)
		if err != nil {
			return nil, err
		}
		base, err := w.Run(w.Test)
		if err != nil {
			return nil, err
		}
		fullSlow := modeledSlowdown(base, fullRes.AnalysisCalls, 0)

		for _, g := range grid {
			gcfg := g.cfg
			pr, _, err := profileWorkload(w, w.Test, core.Options{
				TNV: core.DefaultTNVConfig(), Convergent: &gcfg,
			}, false)
			if err != nil {
				return nil, err
			}
			mae := invErrorVsTruth(pr, fullPr)
			duty := pr.DutyCycle()
			slow := modeledSlowdown(base, pr.Profiled(), pr.Skipped)
			tab.Row(g.name, w.Name,
				fmt.Sprintf("%.3f", duty),
				fmt.Sprintf("%.2fx", slow),
				fmt.Sprintf("%.2fx", fullSlow),
				fmt.Sprintf("%.4f", mae))
			a := byCfg[g.name]
			if a == nil {
				a = &agg{}
				byCfg[g.name] = a
			}
			a.duty = append(a.duty, duty)
			a.mae = append(a.mae, mae)
			a.slow = append(a.slow, slow)
			a.fullslow = append(a.fullslow, fullSlow)
		}
	}
	def := byCfg["eps2%-skip4k (default)"]
	meanDuty := stats.Mean(def.duty)
	meanMAE := stats.Mean(def.mae)
	meanSlow := stats.Mean(def.slow)
	meanFull := stats.Mean(def.fullslow)
	text := tab.String() + fmt.Sprintf(
		"\ndefault config: duty %.3f, modeled slowdown %.2fx vs full-time %.2fx, invariance MAE %.4f\n",
		meanDuty, meanSlow, meanFull, meanMAE)
	r := &Result{ID: "e6", Title: "Convergent profiling overhead vs accuracy", Text: text}
	r.Checks = append(r.Checks,
		check("overhead-reduced", meanDuty <= 0.5,
			"duty cycle %.3f (convergent profiling skips most executions)", meanDuty),
		check("accuracy-kept", meanMAE <= 0.08,
			"invariance MAE %.4f vs ground truth (within a few percent)", meanMAE),
		check("slowdown-improved", meanSlow < meanFull,
			"modeled slowdown %.2fx < full-time %.2fx", meanSlow, meanFull))
	return r, nil
}

// modeledSlowdown charges vm.AnalysisCallCycles per profiled
// observation and one cycle per skipped (counter-decrement) check, over
// the uninstrumented cycle count — the paper's overhead accounting in
// our cycle model.
func modeledSlowdown(base *vm.Result, profiled, skipped uint64) float64 {
	extra := profiled*vm.AnalysisCallCycles + skipped*1
	return float64(base.Cycles+extra) / float64(base.Cycles)
}
