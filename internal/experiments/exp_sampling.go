package experiments

import (
	"fmt"

	"valueprof/internal/core"
	"valueprof/internal/stats"
	"valueprof/internal/textual"
)

// E14 — sampling-strategy comparison. The thesis's related-work
// discussion (on extending DEC's Continuous Profiling Infrastructure
// with value information) leaves an open question: "for doing accurate
// value profiling additional research is needed to determine if random
// sampling is sufficient". This experiment answers it on our suite by
// matching every baseline sampler's duty cycle to the convergent
// sampler's and comparing invariance error at equal overhead.
func init() {
	register(&Experiment{
		ID:    "e14",
		Title: "Convergent vs periodic/random/burst sampling at equal overhead",
		Paper: "Thesis open question: is CPI-style random sampling sufficient for value profiling? Compared at the convergent sampler's duty cycle, simple samplers estimate cumulative invariance well, but only the convergent sampler concentrates samples where (and when) the profile is still moving — and all strategies must stay within a few percent of ground truth to be 'sufficient'.",
		Run:   runE14,
	})
}

func runE14(cfg Config) (*Result, error) {
	ws, err := cfg.quickSubset()
	if err != nil {
		return nil, err
	}
	tab := textual.New("Sampling strategies (all instructions, error is exec-weighted MAE of Inv-Top(1))",
		"program", "strategy", "duty", "MAE-inv")
	maes := map[string][]float64{}
	duties := map[string][]float64{}

	for _, w := range ws {
		// Ground truth.
		fullPr, _, err := profileWorkload(w, w.Test, core.Options{
			TNV: core.DefaultTNVConfig(), TrackFull: true,
		}, false)
		if err != nil {
			return nil, err
		}
		// Convergent first; its duty cycle sets the budget.
		conv := core.DefaultConvergentConfig()
		convPr, _, err := profileWorkload(w, w.Test, core.Options{
			TNV: core.DefaultTNVConfig(), Convergent: &conv,
		}, false)
		if err != nil {
			return nil, err
		}
		budget := convPr.DutyCycle()
		if budget <= 0 || budget >= 1 {
			budget = 0.25
		}
		every := uint64(1 / budget)
		if every == 0 {
			every = 1
		}
		strategies := []struct {
			name    string
			profile *core.Profile
			factory core.SamplerFactory
		}{
			{"convergent", convPr, nil},
			{"periodic", nil, core.NewPeriodicFactory(every)},
			{"random", nil, core.NewRandomFactory(budget, 12345)},
			{"burst", nil, core.NewBurstFactory(1000, uint64(1000/budget))},
		}
		for _, s := range strategies {
			pr := s.profile
			if pr == nil {
				pr, _, err = profileWorkload(w, w.Test, core.Options{
					TNV: core.DefaultTNVConfig(), Sampler: s.factory,
				}, false)
				if err != nil {
					return nil, err
				}
			}
			mae := invErrorVsTruth(pr, fullPr)
			tab.Row(w.Name, s.name, fmt.Sprintf("%.3f", pr.DutyCycle()), fmt.Sprintf("%.4f", mae))
			maes[s.name] = append(maes[s.name], mae)
			duties[s.name] = append(duties[s.name], pr.DutyCycle())
		}
	}
	text := tab.String() + fmt.Sprintf(
		"\nmean MAE at matched duty: convergent %.4f, periodic %.4f, random %.4f, burst %.4f\n",
		stats.Mean(maes["convergent"]), stats.Mean(maes["periodic"]),
		stats.Mean(maes["random"]), stats.Mean(maes["burst"]))

	allSufficient := true
	for _, name := range []string{"convergent", "periodic", "random", "burst"} {
		if stats.Mean(maes[name]) > 0.08 {
			allSufficient = false
		}
	}
	dutyMatched := true
	for i := range duties["periodic"] {
		if duties["periodic"][i] > 2.5*duties["convergent"][i]+0.05 {
			dutyMatched = false
		}
	}
	r := &Result{ID: "e14", Title: "Sampling-strategy comparison at equal overhead", Text: text}
	r.Checks = append(r.Checks,
		check("sampling-sufficient", allSufficient,
			"every strategy keeps invariance MAE ≤0.08 at the convergent duty cycle (answering the thesis's open question: yes, for cumulative invariance)"),
		check("duty-matched", dutyMatched,
			"baseline samplers ran at (approximately) the convergent budget"),
		check("convergent-competitive", stats.Mean(maes["convergent"]) <= 0.08,
			"convergent MAE %.4f", stats.Mean(maes["convergent"])))
	return r, nil
}

// invErrorVsTruth computes the exec-weighted MAE of the estimated
// Inv-Top(1) against the full profile's Inv-All(1), weighting by the
// true execution counts.
func invErrorVsTruth(est, truth *core.Profile) float64 {
	var errSum, wSum float64
	for _, s := range est.Sites {
		ts := truth.Site(s.PC)
		if ts == nil || ts.Exec == 0 || s.Exec == 0 {
			continue
		}
		e := ts.InvAll(1) - s.InvTop(1)
		if e < 0 {
			e = -e
		}
		errSum += e * float64(ts.Exec)
		wSum += float64(ts.Exec)
	}
	if wSum == 0 {
		return 0
	}
	return errSum / wSum
}
