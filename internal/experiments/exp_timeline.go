package experiments

import (
	"fmt"

	"valueprof/internal/atom"
	"valueprof/internal/core"
	"valueprof/internal/stats"
	"valueprof/internal/textual"
)

// E21 — the convergence-over-time figure: cumulative invariance of hot
// sites as the run progresses, the empirical basis for convergent
// sampling ("the intelligence examined in this thesis was a convergence
// criteria based upon a change in invariance" presumes invariance
// settles early for most sites).
func init() {
	register(&Experiment{
		ID:    "e21",
		Title: "Invariance convergence over time (Ch. V/VI figure)",
		Paper: "Cumulative per-site invariance stabilizes long before the run ends for the bulk of hot sites, so a sampler that stops watching converged sites loses little — while occasional late-drifting (phased) sites are exactly why the sampler must re-arm.",
		Run:   runE21,
	})
}

func runE21(cfg Config) (*Result, error) {
	ws, err := cfg.quickSubset()
	if err != nil {
		return nil, err
	}
	const eps = 0.02
	tab := textual.New("Convergence of hot sites (cumulative Inv-Top(1), 0-9 sparklines over run progress)",
		"program", "site", "execs", "final", "settled-at", "timeline")
	var settledEarly, totalHot float64
	var convPoints []float64
	for _, w := range ws {
		prog, err := w.Compile()
		if err != nil {
			return nil, err
		}
		tp := core.NewTimelineProfiler(nil, core.DefaultTNVConfig(), 1000)
		if _, err := atom.Run(prog, w.Test.Args, false, tp); err != nil {
			return nil, err
		}
		tls := tp.Timelines(10)
		for i, tl := range tls {
			at := tl.ConvergedAt(eps)
			totalHot++
			if at <= 0.25 {
				settledEarly++
			}
			convPoints = append(convPoints, at)
			if i < 4 { // show the four hottest per benchmark
				tab.Row(w.Name, tl.Name, tl.Stats.Exec,
					fmt.Sprintf("%.3f", tl.Final()),
					textual.Pct(at), tl.Sparkline(32))
			}
		}
	}
	frac := 0.0
	if totalHot > 0 {
		frac = settledEarly / totalHot
	}
	text := tab.String() + fmt.Sprintf(
		"\nhot sites (≥10 checkpoints): %d; settled within 2%% of final by 25%% of their stream: %.1f%%; mean settle point %.1f%%\n",
		int(totalHot), 100*frac, 100*stats.Mean(convPoints))
	r := &Result{ID: "e21", Title: "Invariance convergence over time", Text: text}
	r.Checks = append(r.Checks,
		check("most-sites-settle-early", frac >= 0.5,
			"%.1f%% of hot sites are within %.0f%% of their final invariance after a quarter of their executions", 100*frac, 100*eps),
		check("sample-meaningful", totalHot >= 20,
			"%d hot sites measured (late-drifting phased sites are exercised directly by the convergent re-arm unit test)", int(totalHot)))
	return r, nil
}
