package experiments

import (
	"strings"
	"testing"
)

// TestAllExperimentsPassChecks runs every experiment (quick
// configuration) and requires all paper-shape checks to pass.
func TestAllExperimentsPassChecks(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow; skipped with -short")
	}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			res, err := e.Run(Config{Quick: true})
			if err != nil {
				t.Fatal(err)
			}
			if res.ID != e.ID {
				t.Errorf("result id %q != %q", res.ID, e.ID)
			}
			if res.Text == "" {
				t.Error("no rendered output")
			}
			if len(res.Checks) == 0 {
				t.Error("experiment has no shape checks")
			}
			for _, c := range res.Failed() {
				t.Errorf("check %s failed: %s", c.Name, c.Detail)
			}
		})
	}
}

func TestRegistryComplete(t *testing.T) {
	all := All()
	if len(all) != 23 {
		t.Fatalf("%d experiments registered, want 23", len(all))
	}
	for i, e := range all {
		if idNum(e.ID) != i+1 {
			t.Errorf("experiment %d has id %s", i, e.ID)
		}
		if e.Title == "" || e.Paper == "" {
			t.Errorf("%s missing title/paper description", e.ID)
		}
	}
}

func TestByID(t *testing.T) {
	e, err := ByID("e11")
	if err != nil || e.ID != "e11" {
		t.Errorf("ByID(e11) = %v, %v", e, err)
	}
	if _, err := ByID("e99"); err == nil {
		t.Error("ByID(e99) succeeded")
	}
}

func TestConfigSelection(t *testing.T) {
	ws, err := Config{Workloads: []string{"compress"}}.selected()
	if err != nil || len(ws) != 1 || ws[0].Name != "compress" {
		t.Errorf("selected = %v, %v", ws, err)
	}
	if _, err := (Config{Workloads: []string{"nope"}}).selected(); err == nil {
		t.Error("bad workload accepted")
	}
	sub, err := Config{Quick: true}.quickSubset()
	if err != nil || len(sub) != 3 {
		t.Errorf("quick subset = %d workloads", len(sub))
	}
	full, err := Config{}.quickSubset()
	if err != nil || len(full) != 10 {
		t.Errorf("full subset = %d workloads", len(full))
	}
}

func TestResultSummaryFormat(t *testing.T) {
	r := &Result{ID: "e1", Title: "T", Text: "body\n",
		Checks: []Check{{Name: "a", Pass: true, Detail: "ok"}, {Name: "b", Pass: false, Detail: "bad"}}}
	s := r.Summary()
	if !strings.Contains(s, "### E1") || !strings.Contains(s, "[PASS] a") || !strings.Contains(s, "[FAIL] b") {
		t.Errorf("summary:\n%s", s)
	}
	if len(r.Failed()) != 1 || r.Failed()[0].Name != "b" {
		t.Error("Failed() wrong")
	}
}

// TestSingleWorkloadExperiment exercises the workload-restriction path
// on a cheap experiment.
func TestSingleWorkloadExperiment(t *testing.T) {
	e, err := ByID("e10")
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(Config{Workloads: []string{"mcsim"}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Text, "mcsim") {
		t.Errorf("restricted run missing workload:\n%s", res.Text)
	}
	if strings.Contains(res.Text, "compress") {
		t.Error("restriction ignored")
	}
}
