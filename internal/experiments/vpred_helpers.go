package experiments

import (
	"valueprof/internal/atom"
	"valueprof/internal/core"
	"valueprof/internal/program"
	"valueprof/internal/vpred"
)

// Predictor tables use 2^12 entries, large enough that the workloads'
// static instruction counts do not alias.
const predictorLogSize = 12

func newSuiteEvaluator() *vpred.Evaluator {
	return vpred.NewEvaluator(vpred.StandardSuite(predictorLogSize)...)
}

func newLVPEvaluator(filter func(int) bool) *vpred.Evaluator {
	ev := vpred.NewEvaluator(vpred.NewLVP(predictorLogSize))
	ev.PredictPC = filter
	return ev
}

func vpFilter(pr *core.Profile, thresh float64) func(int) bool {
	return vpred.FilterFromProfile(pr, thresh)
}

// newProfileForFilter runs a full-time value-profiling pass over prog
// to build the profile the filtering experiments gate on.
func newProfileForFilter(prog *program.Program, input []int64) (*core.Profile, error) {
	vp, err := core.NewValueProfiler(core.Options{TNV: core.DefaultTNVConfig()})
	if err != nil {
		return nil, err
	}
	if _, err := atom.Run(prog, input, false, vp); err != nil {
		return nil, err
	}
	return vp.Profile(), nil
}
