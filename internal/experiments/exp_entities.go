package experiments

import (
	"fmt"

	"valueprof/internal/atom"
	"valueprof/internal/core"
	"valueprof/internal/memprof"
	"valueprof/internal/paramprof"
	"valueprof/internal/quantile"
	"valueprof/internal/stats"
	"valueprof/internal/textual"
)

// E8 — memory-location value profiling.
func init() {
	register(&Experiment{
		ID:    "e8",
		Title: "Memory-location value invariance (Ch. on memory locations)",
		Paper: "Per-location TNV profiles of stored values. Claim: a substantial fraction of memory locations are written with a single dominant value, and the hot locations carry most accesses.",
		Run:   runE8,
	})
}

func runE8(cfg Config) (*Result, error) {
	ws, err := cfg.selected()
	if err != nil {
		return nil, err
	}
	tab := textual.New("Memory locations (stores, test input)",
		"program", "locs", "writes", "InvTop1", "%zero", "inv-locs", "inv-writes")
	var invByLoc, invByAcc []float64
	for _, w := range ws {
		prog, err := w.Compile()
		if err != nil {
			return nil, err
		}
		mp := memprof.New(memprof.Options{TNV: core.DefaultTNVConfig()})
		if _, err := atom.Run(prog, w.Test.Args, false, mp); err != nil {
			return nil, err
		}
		rep := mp.Report()
		m := rep.Aggregate(nil)
		byLoc, byAcc := rep.InvariantFraction(0.9)
		invByLoc = append(invByLoc, byLoc)
		invByAcc = append(invByAcc, byAcc)
		tab.Row(w.Name, len(rep.Locations), m.Execs, m.InvTop1, m.PctZero,
			textual.Pct(byLoc), textual.Pct(byAcc))
	}
	meanLoc := stats.Mean(invByLoc)
	r := &Result{ID: "e8", Title: "Memory-location value invariance", Text: tab.String()}
	r.Checks = append(r.Checks,
		check("invariant-locations-exist", meanLoc >= 0.15,
			"mean %.1f%% of written locations are ≥90%% single-valued", 100*meanLoc),
		check("all-benchmarks-have-locations", len(invByLoc) == len(ws),
			"%d benchmarks profiled", len(invByLoc)))
	return r, nil
}

// Arity of interesting procedures in each workload (known from the
// MiniC sources; a real binary would get these from debug info).
var workloadArity = map[string]map[string]int{
	"compress": {"hash3": 3, "lcg": 1, "compress": 0, "checksum": 2},
	"bytecode": {"emit": 2, "run": 0, "buildSumSquares": 2, "buildCollatz": 1},
	"mcsim":    {"enc": 4, "sim": 1, "buildGcd": 0},
	"gosearch": {"at": 2, "liberties": 2, "score": 3, "playGame": 2},
	"imagef":   {"pix": 3, "genImage": 1, "convolve": 0, "quantize": 0},
	"dictv":    {"hash": 1, "find": 1, "insert": 2, "remove": 1},
	"sortq":    {"lcg": 1, "quicksort": 1, "siftDown": 3, "heapsort": 2, "bsearch": 3},
	"lifegrid": {"idx": 2, "stepGen": 0},
	"wavef":    {"stepWave": 0, "energy": 0},
	"parsef": {
		"emitChar": 1, "isDigit": 1, "peek": 0, "lcg": 0,
		"genNumber": 0, "genFactor": 1, "genTerm": 1, "genSum": 1,
		"parseNumber": 0, "parseFactor": 0, "parseTerm": 0, "parseSum": 0,
		"classify": 0,
	},
}

// E9 — procedure-parameter profiling.
func init() {
	register(&Experiment{
		ID:    "e9",
		Title: "Procedure-parameter invariance (specialization candidates)",
		Paper: "At procedure entry the argument registers are profiled; procedures whose whole argument tuple is semi-invariant are the candidates for specialization and memoization (Ch. X).",
		Run:   runE9,
	})
}

func runE9(cfg Config) (*Result, error) {
	ws, err := cfg.selected()
	if err != nil {
		return nil, err
	}
	tab := textual.New("Hot procedures (test input, top 3 per benchmark by calls)",
		"program", "proc", "calls", "arg0-inv", "arg1-inv", "arg2-inv", "tuple-inv")
	candidates := 0
	maxArgInv := 0.0
	for _, w := range ws {
		prog, err := w.Compile()
		if err != nil {
			return nil, err
		}
		pp := paramprof.New(paramprof.Options{
			TNV:   core.DefaultTNVConfig(),
			Arity: workloadArity[w.Name],
		})
		if _, err := atom.Run(prog, w.Test.Args, false, pp); err != nil {
			return nil, err
		}
		rep := pp.Report()
		shown := 0
		for _, p := range rep.Procs {
			if p.Name == "main" || p.Name == "_main" || shown >= 3 {
				continue
			}
			shown++
			cells := []any{w.Name, p.Name, p.Calls}
			for i := 0; i < 3; i++ {
				if i < len(p.Args) {
					inv := p.Args[i].InvTop(1)
					if inv > maxArgInv && p.Calls > 100 {
						maxArgInv = inv
					}
					cells = append(cells, fmt.Sprintf("%.3f", inv))
				} else {
					cells = append(cells, "-")
				}
			}
			if len(p.Args) > 0 {
				cells = append(cells, fmt.Sprintf("%.3f", p.AllArgsInvariance()))
			} else {
				cells = append(cells, "-")
			}
			tab.Row(cells...)
		}
		candidates += len(rep.Candidates(100, 0.5))
	}
	r := &Result{ID: "e9", Title: "Procedure-parameter invariance", Text: tab.String()}
	r.Checks = append(r.Checks,
		check("semi-invariant-args-exist", maxArgInv >= 0.5,
			"best hot-procedure argument invariance %.3f", maxArgInv),
		check("candidates-found", candidates >= 1,
			"%d procedures with tuple invariance ≥50%% and ≥100 calls", candidates))
	return r, nil
}

// E10 — Table IV.1: the basic-block quantile table.
func init() {
	register(&Experiment{
		ID:    "e10",
		Title: "Basic-block quantile table (Table IV.1)",
		Paper: "A small fraction of static basic blocks covers the bulk of dynamic execution — the classic concentration result motivating profile-guided optimization.",
		Run:   runE10,
	})
}

func runE10(cfg Config) (*Result, error) {
	ws, err := cfg.selected()
	if err != nil {
		return nil, err
	}
	tab := textual.New("Blocks needed for execution coverage (test input)",
		"program", "static", "live", "50%", "90%", "99%", "90% as %static")
	var pct90s []float64
	for _, w := range ws {
		prog, err := w.Compile()
		if err != nil {
			return nil, err
		}
		qp := quantile.New()
		if _, err := atom.Run(prog, w.Test.Args, false, qp); err != nil {
			return nil, err
		}
		t := qp.BuildTable(nil)
		get := func(cov float64) quantile.Row {
			for _, r := range t.Rows {
				if r.Coverage == cov {
					return r
				}
			}
			return quantile.Row{}
		}
		r50, r90, r99 := get(0.50), get(0.90), get(0.99)
		pct90s = append(pct90s, r90.PctStatic)
		tab.Row(w.Name, t.TotalBlocks, t.LiveBlocks, r50.Blocks, r90.Blocks, r99.Blocks,
			textual.Pct(r90.PctStatic))
	}
	mean90 := stats.Mean(pct90s)
	r := &Result{ID: "e10", Title: "Basic-block quantile table", Text: tab.String()}
	r.Checks = append(r.Checks,
		check("execution-concentrated", mean90 <= 0.40,
			"90%% of execution comes from %.1f%% of static blocks on average", 100*mean90))
	return r, nil
}
