// Package experiments regenerates the paper's tables and figures
// (DESIGN.md's experiment index E1–E13) over the workload suite. Each
// experiment renders the paper-style table and evaluates "shape checks"
// — the qualitative claims of the paper that the reproduction is
// expected to preserve (who wins, what is large/small, what correlates).
package experiments

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"valueprof/internal/atom"
	"valueprof/internal/core"
	"valueprof/internal/parallel"
	"valueprof/internal/vm"
	"valueprof/internal/workloads"
)

// Config selects what an experiment runs over.
type Config struct {
	// Workloads restricts the benchmark set (nil = all eight).
	Workloads []string
	// Quick shrinks parameter sweeps for fast iteration (benches use
	// it; the recorded EXPERIMENTS.md numbers use the full sweep).
	Quick bool
	// Jobs is the worker-pool width for per-workload profiling runs
	// inside an experiment (≤ 1 = serial). Per-job VM/profiler
	// isolation keeps the rendered tables byte-identical to a serial
	// run at any width.
	Jobs int
}

// Check is one shape assertion derived from the paper's claims.
type Check struct {
	Name   string
	Pass   bool
	Detail string
}

// Result is one experiment's output.
type Result struct {
	ID     string
	Title  string
	Text   string
	Checks []Check
}

// Failed returns the failing checks.
func (r *Result) Failed() []Check {
	var out []Check
	for _, c := range r.Checks {
		if !c.Pass {
			out = append(out, c)
		}
	}
	return out
}

// Summary renders the result with its check outcomes.
func (r *Result) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n%s\n", strings.ToUpper(r.ID), r.Title, r.Text)
	for _, c := range r.Checks {
		status := "PASS"
		if !c.Pass {
			status = "FAIL"
		}
		fmt.Fprintf(&b, "check [%s] %s: %s\n", status, c.Name, c.Detail)
	}
	return b.String()
}

// Experiment is one regenerable exhibit.
type Experiment struct {
	ID    string
	Title string
	// Paper describes the exhibit and the claim being reproduced.
	Paper string
	Run   func(cfg Config) (*Result, error)
}

var registry []*Experiment

func register(e *Experiment) { registry = append(registry, e) }

// All returns the experiments in id order.
func All() []*Experiment {
	out := append([]*Experiment(nil), registry...)
	sort.Slice(out, func(i, j int) bool {
		// e1..e13: numeric sort on the suffix.
		return idNum(out[i].ID) < idNum(out[j].ID)
	})
	return out
}

func idNum(id string) int {
	n := 0
	for _, c := range id {
		if c >= '0' && c <= '9' {
			n = n*10 + int(c-'0')
		}
	}
	return n
}

// ByID returns the named experiment.
func ByID(id string) (*Experiment, error) {
	for _, e := range registry {
		if e.ID == id {
			return e, nil
		}
	}
	return nil, fmt.Errorf("experiments: unknown experiment %q", id)
}

// selected resolves the workload set for a config.
func (cfg Config) selected() ([]*workloads.Workload, error) {
	if len(cfg.Workloads) == 0 {
		return workloads.All(), nil
	}
	var out []*workloads.Workload
	for _, name := range cfg.Workloads {
		w, err := workloads.ByName(name)
		if err != nil {
			return nil, err
		}
		out = append(out, w)
	}
	return out, nil
}

// quickSubset returns a 3-workload subset for expensive sweeps in
// quick mode, or the full set otherwise.
func (cfg Config) quickSubset() ([]*workloads.Workload, error) {
	ws, err := cfg.selected()
	if err != nil {
		return nil, err
	}
	if cfg.Quick && len(ws) > 3 {
		pick := map[string]bool{"compress": true, "dictv": true, "mcsim": true}
		var out []*workloads.Workload
		for _, w := range ws {
			if pick[w.Name] {
				out = append(out, w)
			}
		}
		if len(out) > 0 {
			return out, nil
		}
		return ws[:3], nil
	}
	return ws, nil
}

// profileSuite profiles input(w) for every workload on the config's
// worker pool (Config.Jobs wide; ≤ 1 = serial), returning profiles and
// run results in workload order. Jobs are isolated per worker, so the
// results — and any table rendered from them — are identical at every
// pool width.
func (cfg Config) profileSuite(ws []*workloads.Workload, input func(*workloads.Workload) workloads.Input, opts core.Options, chargeHooks bool) ([]*core.Profile, []*vm.Result, error) {
	jobs := make([]parallel.Job, len(ws))
	for i, w := range ws {
		jobs[i] = parallel.Job{
			Workload: w,
			Input:    input(w),
			Options:  opts,
			Run:      atom.RunOptions{ChargeHooks: chargeHooks},
		}
	}
	workers := cfg.Jobs
	if workers <= 1 {
		workers = 1
	}
	results := parallel.Run(context.Background(), workers, jobs)
	if err := parallel.FirstError(results); err != nil {
		return nil, nil, err
	}
	prs := make([]*core.Profile, len(results))
	rss := make([]*vm.Result, len(results))
	for i, r := range results {
		prs[i], rss[i] = r.Profile, r.Exec
	}
	return prs, rss, nil
}

// testInput selects the workload's test data set (the common case for
// profileSuite).
func testInput(w *workloads.Workload) workloads.Input { return w.Test }

// profileWorkload compiles and runs one workload input under a value
// profiler, returning the profile and the run result.
func profileWorkload(w *workloads.Workload, in workloads.Input, opts core.Options, chargeHooks bool) (*core.Profile, *vm.Result, error) {
	prog, err := w.Compile()
	if err != nil {
		return nil, nil, err
	}
	vp, err := core.NewValueProfiler(opts)
	if err != nil {
		return nil, nil, err
	}
	res, err := atom.Run(prog, in.Args, chargeHooks, vp)
	if err != nil {
		return nil, nil, fmt.Errorf("profiling %s/%s: %w", w.Name, in.Name, err)
	}
	if in.Want != "" && res.Output != in.Want {
		return nil, nil, fmt.Errorf("profiling %s/%s perturbed the output", w.Name, in.Name)
	}
	return vp.Profile(), res, nil
}

func check(name string, pass bool, format string, args ...any) Check {
	return Check{Name: name, Pass: pass, Detail: fmt.Sprintf(format, args...)}
}
