package experiments

import (
	"fmt"
	"time"
	"unsafe"

	"valueprof/internal/analysis"
	"valueprof/internal/atom"
	"valueprof/internal/core"
	"valueprof/internal/stats"
	"valueprof/internal/textual"
)

// E22 — static candidate pruning (Ch. III instrumentation cost; the
// convergence discussion's observation that many sites never needed
// profiling at all). Constness analysis proves a fraction of candidate
// sites constant or unreachable before the program runs; those sites
// need no TNV table and no hook, shrinking both the table memory and
// the dynamic hook stream, with zero effect on every surviving site.
func init() {
	register(&Experiment{
		ID:    "e22",
		Title: "Static pruning of profiling candidates (Ch. III cost reduction)",
		Paper: "A cheap whole-program constness analysis removes provably constant or unreachable instruction sites from the instrumentation set; the remaining profile is unchanged, so the saved tables and hook executions are pure overhead reduction.",
		Run:   runE22,
	})
}

func runE22(cfg Config) (*Result, error) {
	ws, err := cfg.selected()
	if err != nil {
		return nil, err
	}
	tnv := core.DefaultTNVConfig()
	siteBytes := uint64(unsafe.Sizeof(core.SiteStats{})) +
		uint64(tnv.Size)*uint64(unsafe.Sizeof(core.TNVEntry{}))

	tab := textual.New("Static candidate pruning (test input)",
		"program", "candidates", "pruned", "const", "unreach", "site-mem-saved", "hooks-saved", "analysis")
	var shares, hookShares []float64
	pruning := 0
	for _, w := range ws {
		prog, err := w.Compile()
		if err != nil {
			return nil, err
		}
		start := time.Now()
		cn := analysis.AnalyzeConstness(prog)
		elapsed := time.Since(start)
		rep := cn.Prune(nil)

		// A full unpruned profile tells us how many dynamic hook
		// executions the pruned sites would have cost.
		vp, err := core.NewValueProfiler(core.Options{TNV: tnv})
		if err != nil {
			return nil, err
		}
		if _, err := atom.Run(prog, w.Test.Args, false, atom.Tool(vp)); err != nil {
			return nil, err
		}
		var total, saved uint64
		for _, s := range vp.Profile().Sites {
			total += s.Exec
			if cn.ShouldPrune(s.PC, prog.Code[s.PC]) {
				saved += s.Exec
			}
		}
		share := float64(rep.Pruned()) / float64(max(rep.Candidates, 1))
		hookShare := 0.0
		if total > 0 {
			hookShare = float64(saved) / float64(total)
		}
		shares = append(shares, share)
		hookShares = append(hookShares, hookShare)
		if rep.Pruned() > 0 {
			pruning++
		}
		tab.Row(w.Name, rep.Candidates, rep.Pruned(), rep.Const, rep.Unreached,
			fmtKB(uint64(rep.Pruned())*siteBytes),
			textual.Pct(hookShare), elapsed.Round(10*time.Microsecond).String())
	}

	r := &Result{ID: "e22", Title: "Static pruning of profiling candidates", Text: tab.String()}
	r.Checks = append(r.Checks,
		check("pruning-widely-applicable", pruning >= min(5, len(ws)),
			"%d of %d workloads had prunable sites", pruning, len(ws)),
		check("meaningful-static-share", stats.Mean(shares) >= 0.05,
			"mean %.1f%% of candidate sites proved constant or unreachable", 100*stats.Mean(shares)),
		check("dynamic-savings-exist", stats.Mean(hookShares) > 0,
			"mean %.2f%% of dynamic hook executions avoided", 100*stats.Mean(hookShares)))
	return r, nil
}

func fmtKB(b uint64) string {
	if b < 10*1024 {
		return fmt.Sprintf("%dB", b)
	}
	return fmt.Sprintf("%.1fKB", float64(b)/1024)
}
