package experiments

import (
	"fmt"

	"valueprof/internal/atom"
	"valueprof/internal/core"
	"valueprof/internal/isa"
	"valueprof/internal/paramprof"
	"valueprof/internal/regprof"
	"valueprof/internal/specialize"
	"valueprof/internal/stats"
	"valueprof/internal/textual"
	"valueprof/internal/vm"
)

// E17 — register-value profiling (the register-file prediction
// discussion around Gabbay [17]).
func init() {
	register(&Experiment{
		ID:    "e17",
		Title: "Register-file value invariance (Gabbay [17] discussion)",
		Paper: "Viewing each architectural register as one profiled storage location: a few registers (stack/frame pointers, convention-bound temporaries) are highly predictable, which is what makes register-value prediction and register-window elision viable.",
		Run:   runE17,
	})
}

func runE17(cfg Config) (*Result, error) {
	ws, err := cfg.selected()
	if err != nil {
		return nil, err
	}
	tab := textual.New("Register write-stream invariance (test input)",
		"program", "regs", "writes", "LVP", "InvTop1", "InvTop10", "best-reg", "best-inv10")
	var suiteInv10 []float64
	bestEver := 0.0
	for _, w := range ws {
		prog, err := w.Compile()
		if err != nil {
			return nil, err
		}
		rp := regprof.New(core.DefaultTNVConfig(), false)
		if _, err := atom.Run(prog, w.Test.Args, false, rp); err != nil {
			return nil, err
		}
		m := rp.Aggregate()
		bestName, bestInv := "", 0.0
		for _, s := range rp.Written() {
			if s.Exec < 1000 {
				continue
			}
			if inv := s.InvTop(10); inv > bestInv {
				bestName, bestInv = s.Name, inv
			}
		}
		if bestInv > bestEver {
			bestEver = bestInv
		}
		suiteInv10 = append(suiteInv10, m.InvTopN)
		tab.Row(w.Name, len(rp.Written()), m.Execs, m.LVP, m.InvTop1, m.InvTopN,
			bestName, fmt.Sprintf("%.3f", bestInv))
	}
	mean10 := stats.Mean(suiteInv10)
	r := &Result{ID: "e17", Title: "Register-file value invariance", Text: tab.String()}
	r.Checks = append(r.Checks,
		check("registers-predictable", mean10 >= 0.3,
			"mean Inv-Top(10) over register write streams %.1f%%", 100*mean10),
		check("some-register-highly-predictable", bestEver >= 0.8,
			"best hot register covers %.1f%% of its writes with 10 values", 100*bestEver))
	return r, nil
}

// E18 — automatic specialization sweep: run the full Chapter X pipeline
// (profile → candidate selection → specialization → verification)
// across the entire benchmark suite, unassisted.
func init() {
	register(&Experiment{
		ID:    "e18",
		Title: "Automatic specialization sweep over the suite (Ch. X at scale)",
		Paper: "Value profiling's purpose is automation: finding semi-invariant arguments without user annotations. This sweep lets the parameter profile pick every viable (procedure, argument, value) in every benchmark, specializes them, and verifies each benchmark's output stays golden.",
		Run:   runE18,
	})
}

func runE18(cfg Config) (*Result, error) {
	ws, err := cfg.selected()
	if err != nil {
		return nil, err
	}
	tab := textual.New("Automatic specialization (test input)",
		"program", "proc", "arg", "value", "arg-inv", "folded+reduced", "removed", "speedup", "output")
	attempted, verified := 0, 0
	var speedups []float64
	for _, w := range ws {
		prog, err := w.Compile()
		if err != nil {
			return nil, err
		}
		pp := paramprof.New(paramprof.Options{
			TNV:   core.DefaultTNVConfig(),
			Arity: workloadArity[w.Name],
		})
		if _, err := atom.Run(prog, w.Test.Args, false, pp); err != nil {
			return nil, err
		}
		base, err := w.Run(w.Test)
		if err != nil {
			return nil, err
		}
		// Candidate selection: hottest procedure argument with
		// invariance ≥ 0.6 over ≥ 500 calls.
		type cand struct {
			proc  string
			arg   int
			value int64
			inv   float64
			calls uint64
		}
		var best *cand
		for _, p := range pp.Report().Procs {
			if p.Calls < 500 || p.Name == "main" || p.Name == "_main" {
				continue
			}
			for i, a := range p.Args {
				inv := a.InvTop(1)
				v, _, ok := a.TNV.TopValue()
				if !ok || inv < 0.6 || v < -(1<<31) || v > (1<<31)-1 {
					continue
				}
				if best == nil || p.Calls > best.calls || (p.Calls == best.calls && inv > best.inv) {
					best = &cand{proc: p.Name, arg: i, value: v, inv: inv, calls: p.Calls}
				}
			}
		}
		if best == nil {
			tab.Row(w.Name, "(no candidate)", "-", "-", "-", "-", "-", "-", "-")
			continue
		}
		attempted++
		spec, info, err := specialize.Specialize(prog, best.proc, uint8(isa.RegA0+best.arg), best.value)
		if err != nil {
			tab.Row(w.Name, best.proc, best.arg, best.value,
				fmt.Sprintf("%.3f", best.inv), "-", "-", "-", fmt.Sprintf("error: %v", err))
			continue
		}
		got, err := vm.Execute(spec, w.Test.Args)
		if err != nil {
			return nil, fmt.Errorf("e18: specialized %s faulted: %w", w.Name, err)
		}
		ok := got.Output == base.Output
		if ok {
			verified++
		}
		speedup := float64(base.Cycles) / float64(got.Cycles)
		speedups = append(speedups, speedup)
		tab.Row(w.Name, best.proc, best.arg, best.value,
			fmt.Sprintf("%.3f", best.inv),
			info.Folded+info.Reduced, info.Removed,
			fmt.Sprintf("%.3fx", speedup), ok)
	}
	text := tab.String() + fmt.Sprintf("\nattempted %d, verified %d, mean speedup %.3fx\n",
		attempted, verified, stats.Mean(speedups))
	r := &Result{ID: "e18", Title: "Automatic specialization sweep", Text: text}
	r.Checks = append(r.Checks,
		check("sweep-found-candidates", attempted >= 2,
			"%d benchmarks had automatically discovered candidates", attempted),
		check("all-outputs-preserved", verified == attempted && attempted > 0,
			"%d/%d specializations verified against golden output", verified, attempted),
		check("no-material-slowdown", stats.Mean(speedups) >= 0.98,
			"mean speedup %.3fx (guarded dispatch must not cost more than it saves)", stats.Mean(speedups)))
	return r, nil
}
