package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"time"

	"valueprof/internal/analysis"
	"valueprof/internal/atom"
	"valueprof/internal/core"
	"valueprof/internal/stats"
	"valueprof/internal/textual"
)

// E23 — predictive invariance analysis driving an adaptive hook budget
// (extends E22's static pruning). The Predict stage fuses intervals,
// trip counts, GVN and the constness lattice into a per-site invariance
// forecast with a confidence tier; the profiler then skips proved
// sites, down-samples likely ones, and spends the full budget only on
// uncertain sites. Soundness is checked against the recorded profile
// (proved-tier claims may never be contradicted), likely-tier quality
// is scored as precision/recall, and the full-budget sites must come
// back byte-identical to an unpruned run.
func init() {
	register(&Experiment{
		ID:    "e23",
		Title: "Predictive invariance and the adaptive hook budget",
		Paper: "Static value-range, trip-count, and constness facts predict which sites the profiler need not watch. The proved tier is an oracle (contradictions are bugs), the likely tier trades hooks for counted mispredictions, and everything else keeps the paper's full-fidelity tables.",
		Run:   runE23,
	})
}

func runE23(cfg Config) (*Result, error) {
	ws, err := cfg.selected()
	if err != nil {
		return nil, err
	}
	tnv := core.DefaultTNVConfig()

	tab := textual.New("Adaptive hook budget vs. static pruning (test input)",
		"program", "sites", "proved", "likely", "static-saved", "adaptive-saved", "precision", "recall", "analysis")
	var precisions, recalls, staticSaved, adaptiveSaved []float64
	contradictions := 0
	byteMismatch := 0
	strictWins := 0
	likelyTotal := 0
	for _, w := range ws {
		prog, err := w.Compile()
		if err != nil {
			return nil, err
		}
		start := time.Now()
		pred := analysis.Predict(prog)
		elapsed := time.Since(start)
		cn := pred.Constness
		plan := pred.Plan(core.DefaultConvergentConfig())

		// Baseline: unpruned full-budget profile, the ground truth for
		// soundness, precision/recall, and byte-identity.
		base, err := core.NewValueProfiler(core.Options{TNV: tnv})
		if err != nil {
			return nil, err
		}
		if _, err := atom.Run(prog, w.Test.Args, false, atom.Tool(base)); err != nil {
			return nil, err
		}
		baseRec := base.Profile().Record(w.Name, w.Test.Name)
		if cs := pred.CheckRecord(baseRec); len(cs) > 0 {
			contradictions += len(cs)
		}
		ev := pred.Eval(baseRec)

		// Adaptive run under the predicted budget.
		adapt, err := core.NewValueProfiler(core.Options{TNV: tnv, AdaptiveBudget: &plan})
		if err != nil {
			return nil, err
		}
		if _, err := atom.Run(prog, w.Test.Args, false, atom.Tool(adapt)); err != nil {
			return nil, err
		}
		adaptPr := adapt.Profile()
		adaptRec := adaptPr.Record(w.Name, w.Test.Name)

		// Hook-observation accounting against the same ground truth:
		// static pruning keeps every execution of its surviving sites;
		// the adaptive budget drops proved sites entirely and samples
		// the likely ones.
		var total, staticObs, adaptObs uint64
		for _, s := range base.Profile().Sites {
			total += s.Exec
			if !cn.ShouldPrune(s.PC, prog.Code[s.PC]) {
				staticObs += s.Exec
			}
		}
		for _, s := range adaptPr.Sites {
			adaptObs += s.Exec
		}
		if adaptObs < staticObs {
			strictWins++
		}

		// Full-budget sites must serialize byte-identically to the
		// unpruned baseline: the adaptive budget may not perturb the
		// profiles it promised to keep at full fidelity.
		for i := range adaptRec.Sites {
			s := &adaptRec.Sites[i]
			if plan.Budget(s.PC, prog.Code[s.PC]) != core.BudgetFull {
				continue
			}
			if !sameSiteBytes(siteRecordAt(baseRec, s.PC), s) {
				byteMismatch++
			}
		}

		n := pred.TierCounts()
		ssh := savedShare(total, staticObs)
		ash := savedShare(total, adaptObs)
		staticSaved = append(staticSaved, ssh)
		adaptiveSaved = append(adaptiveSaved, ash)
		precisions = append(precisions, ev.Precision())
		recalls = append(recalls, ev.Recall())
		likelyTotal += ev.LikelyTotal
		tab.Row(w.Name, len(pred.Sites),
			n[analysis.TierProved], n[analysis.TierLikely],
			textual.Pct(ssh), textual.Pct(ash),
			fmt.Sprintf("%.2f", ev.Precision()), fmt.Sprintf("%.2f", ev.Recall()),
			elapsed.Round(10*time.Microsecond).String())
	}

	r := &Result{ID: "e23", Title: "Predictive invariance and the adaptive hook budget", Text: tab.String()}
	r.Checks = append(r.Checks,
		check("proved-tier-sound", contradictions == 0,
			"%d proved-tier contradictions against recorded profiles", contradictions),
		check("adaptive-beats-static", strictWins == len(ws),
			"%d of %d workloads observed strictly fewer hook executions than -prune-static (mean saved %s vs %s)",
			strictWins, len(ws), textual.Pct(stats.Mean(adaptiveSaved)), textual.Pct(stats.Mean(staticSaved))),
		check("full-sites-byte-identical", byteMismatch == 0,
			"%d full-budget site records differ from the unpruned baseline", byteMismatch),
		check("likely-tier-fires", likelyTotal > 0,
			"%d likely-tier sites scored across the suite", likelyTotal),
		check("likely-precision-useful", stats.Mean(precisions) >= 0.5,
			"mean likely-tier precision %.2f (recall %.2f)", stats.Mean(precisions), stats.Mean(recalls)))
	return r, nil
}

func savedShare(total, observed uint64) float64 {
	if total == 0 {
		return 0
	}
	return float64(total-observed) / float64(total)
}

// siteRecordAt returns the serialized site record for pc, if any.
func siteRecordAt(rec *core.ProfileRecord, pc int) *core.SiteRecord {
	for i := range rec.Sites {
		if rec.Sites[i].PC == pc {
			return &rec.Sites[i]
		}
	}
	return nil
}

// sameSiteBytes compares two serialized site records byte-for-byte.
func sameSiteBytes(a, b *core.SiteRecord) bool {
	if a == nil || b == nil {
		return false
	}
	ab, err1 := json.Marshal(a)
	bb, err2 := json.Marshal(b)
	return err1 == nil && err2 == nil && bytes.Equal(ab, bb)
}
