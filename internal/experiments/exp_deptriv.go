package experiments

import (
	"fmt"

	"valueprof/internal/atom"
	"valueprof/internal/core"
	"valueprof/internal/depprof"
	"valueprof/internal/stats"
	"valueprof/internal/textual"
	"valueprof/internal/trivprof"
)

// E15 — memory-dependence (store→load communication) profiling, the
// Reinman et al. [31] use of profiling the thesis describes, combined
// with the Moudgill & Moreno [29] value-checked rescheduling set.
func init() {
	register(&Experiment{
		ID:    "e15",
		Title: "Store→load communication and reschedulable loads (Reinman [31], Moudgill-Moreno [29])",
		Paper: "Many loads are fed by a recent, predictable store and could bypass memory; loads with high value invariance can be speculatively rescheduled with a cheap value check.",
		Run:   runE15,
	})
}

func runE15(cfg Config) (*Result, error) {
	ws, err := cfg.selected()
	if err != nil {
		return nil, err
	}
	tab := textual.New("Store→load communication (test input, 256-inst window)",
		"program", "loads", "store-fed", "forwardable", "edge-inv", "bypass-cands", "resched-cands")
	var fedFracs, edgeInvs []float64
	bypassTotal, reschedTotal := 0, 0
	for _, w := range ws {
		prog, err := w.Compile()
		if err != nil {
			return nil, err
		}
		dp := depprof.New(depprof.DefaultOptions())
		vp, err := core.NewValueProfiler(core.Options{Filter: core.LoadsOnly, TNV: core.DefaultTNVConfig()})
		if err != nil {
			return nil, err
		}
		if _, err := atom.Run(prog, w.Test.Args, false, dp, vp); err != nil {
			return nil, err
		}
		rep := dp.Report()
		fromStore, forwardable, edgeInv := rep.Totals()
		bypass := rep.BypassCandidates(1000, 0.9)
		// Reschedulable under value checking: loads whose value is
		// highly invariant, so a mis-speculated reorder rarely needs
		// recovery.
		resched := 0
		profile := vp.Profile()
		for _, l := range rep.Loads {
			if s := profile.Site(l.PC); s != nil && s.Exec >= 1000 && s.InvTop(1) >= 0.9 {
				resched++
			}
		}
		fedFracs = append(fedFracs, fromStore)
		edgeInvs = append(edgeInvs, edgeInv)
		bypassTotal += len(bypass)
		reschedTotal += resched
		tab.Row(w.Name, len(rep.Loads), textual.Pct(fromStore), textual.Pct(forwardable),
			fmt.Sprintf("%.3f", edgeInv), len(bypass), resched)
	}
	meanFed := stats.Mean(fedFracs)
	meanEdge := stats.Mean(edgeInvs)
	r := &Result{ID: "e15", Title: "Store→load communication profiling", Text: tab.String()}
	r.Checks = append(r.Checks,
		check("loads-are-store-fed", meanFed >= 0.3,
			"mean %.1f%% of load executions read a value some profiled store wrote", 100*meanFed),
		check("edges-are-stable", meanEdge >= 0.5,
			"mean %.3f of store-fed executions come from the load's single dominant store", meanEdge),
		check("candidates-exist", bypassTotal >= 1 && reschedTotal >= 1,
			"%d bypass candidates, %d value-checked rescheduling candidates", bypassTotal, reschedTotal))
	return r, nil
}

// E16 — trivial-computation profiling (Richardson [32]).
func init() {
	register(&Experiment{
		ID:    "e16",
		Title: "Trivial and redundant computation (Richardson [32])",
		Paper: "Profiling arithmetic operand values finds a significant dynamic fraction of trivial computations (×0, ×1, ×2^k, ÷2^k, x÷x) that could complete in one cycle.",
		Run:   runE16,
	})
}

func runE16(cfg Config) (*Result, error) {
	ws, err := cfg.selected()
	if err != nil {
		return nil, err
	}
	tab := textual.New("Trivial mul/div/rem executions (test input)",
		"program", "execs", "trivial", "zero", "one", "pow2", "self", "saved-cycles", "of-total")
	var fracs []float64
	var bestSavings float64
	for _, w := range ws {
		prog, err := w.Compile()
		if err != nil {
			return nil, err
		}
		tp := trivprof.New()
		res, err := atom.Run(prog, w.Test.Args, false, tp)
		if err != nil {
			return nil, err
		}
		rep := tp.Report()
		frac, saved, kinds := rep.Totals()
		var execs uint64
		for _, s := range rep.Sites {
			execs += s.Execs
		}
		ofTotal := float64(saved) / float64(res.Cycles)
		if ofTotal > bestSavings {
			bestSavings = ofTotal
		}
		fracs = append(fracs, frac)
		tab.Row(w.Name, execs, textual.Pct(frac),
			kinds[trivprof.ZeroOperand], kinds[trivprof.OneOperand],
			kinds[trivprof.PowerOfTwo], kinds[trivprof.SelfOperand],
			saved, textual.Pct(ofTotal))
	}
	meanFrac := stats.Mean(fracs)
	r := &Result{ID: "e16", Title: "Trivial computation profiling", Text: tab.String()}
	r.Checks = append(r.Checks,
		check("trivial-computation-significant", meanFrac >= 0.10,
			"mean %.1f%% of mul/div/rem executions are trivial (Richardson found a significant fraction)", 100*meanFrac),
		check("savings-material", bestSavings >= 0.02,
			"best benchmark could save %.1f%% of all cycles by trivializing", 100*bestSavings))
	return r, nil
}
