package experiments

import (
	"fmt"
	"strings"

	"valueprof/internal/core"
	"valueprof/internal/isa"
	"valueprof/internal/stats"
	"valueprof/internal/textual"
)

// E1 — Table III.A.1: the benchmark suite with its two data sets and
// dynamic instruction counts.
func init() {
	register(&Experiment{
		ID:    "e1",
		Title: "Benchmark suite and data sets (Table III.A.1)",
		Paper: "The paper lists each SPEC benchmark with its two input sets and dynamic instruction counts (millions).",
		Run:   runE1,
	})
}

func runE1(cfg Config) (*Result, error) {
	ws, err := cfg.selected()
	if err != nil {
		return nil, err
	}
	tab := textual.New("Benchmarks", "program", "models", "input", "insts(M)", "cycles(M)")
	var allOK = true
	for _, w := range ws {
		for _, in := range w.Inputs() {
			res, err := w.Run(in)
			if err != nil {
				return nil, err
			}
			tab.Row(w.Name, shortDesc(w.Description), in.Name,
				fmt.Sprintf("%.2f", float64(res.InstCount)/1e6),
				fmt.Sprintf("%.2f", float64(res.Cycles)/1e6))
			if res.InstCount < 100_000 {
				allOK = false
			}
		}
	}
	r := &Result{ID: "e1", Title: "Benchmark suite and data sets", Text: tab.String()}
	r.Checks = append(r.Checks,
		check("suite-size", len(ws) >= 1, "%d workloads, two data sets each", len(ws)),
		check("nontrivial-runs", allOK, "every run executes ≥100k instructions"))
	return r, nil
}

func shortDesc(d string) string {
	if i := strings.Index(d, "("); i > 0 {
		return strings.TrimSuffix(strings.TrimSpace(d[i+1:]), ")")
	}
	return d
}

// E2 — load-value profiling: the paper's headline table. Roughly half
// of all loads fetch the value they fetched last time, and the top
// value of a load site covers a large fraction of its executions.
func init() {
	register(&Experiment{
		ID:    "e2",
		Title: "Load-value invariance per benchmark (Ch. V load table)",
		Paper: "Per benchmark over all loads: LVP, Inv-Top(1), Inv-Top(N), Inv-All(1), %zero. Claim: loads are strongly value-locality biased (LVP around 50%) and Inv-Top(1) is close behind; %zero is substantial.",
		Run:   runE2,
	})
}

func runE2(cfg Config) (*Result, error) {
	ws, err := cfg.selected()
	if err != nil {
		return nil, err
	}
	tab := textual.New("Load values (test input, full-time profiling, ground truth)",
		"program", "loads", "LVP", "InvTop1", "InvTop10", "InvAll1", "InvAll10", "%zero", "Diff(L/I)")
	var lvps, inv1s, invNs, weights []float64
	anyTopNHeavy := false
	orderOK := true
	prs, _, err := cfg.profileSuite(ws, testInput, core.Options{
		Filter: core.LoadsOnly, TNV: core.DefaultTNVConfig(), TrackFull: true,
	}, false)
	if err != nil {
		return nil, err
	}
	for i, w := range ws {
		m := prs[i].Aggregate()
		tab.Row(w.Name, m.Execs, m.LVP, m.InvTop1, m.InvTopN, m.InvAll1, m.InvAllN, m.PctZero, m.Diff)
		lvps = append(lvps, m.LVP)
		inv1s = append(inv1s, m.InvAll1)
		invNs = append(invNs, m.InvAllN)
		weights = append(weights, float64(m.Execs))
		if m.InvAllN >= 0.6 {
			anyTopNHeavy = true
		}
		if m.InvTop1 > m.InvAllN+1e-9 || m.InvAll1 > m.InvAllN+1e-9 {
			orderOK = false
		}
	}
	meanLVP := stats.WeightedMean(lvps, weights)
	meanInv := stats.WeightedMean(inv1s, weights)
	meanInvN := stats.WeightedMean(invNs, weights)
	r := &Result{ID: "e2", Title: "Load-value invariance per benchmark", Text: tab.String()}
	r.Checks = append(r.Checks,
		check("loads-predictable", meanLVP >= 0.30,
			"suite LVP %.1f%% (paper: ~50%% of loads repeat their last value)", 100*meanLVP),
		check("loads-invariant", meanInv >= 0.25 && meanInvN >= 0.4 && anyTopNHeavy,
			"suite Inv-All(1) %.1f%%, Inv-All(10) %.1f%%, some benchmark's top-10 values cover ≥60%% (paper: few values cover most load results)", 100*meanInv, 100*meanInvN),
		check("metric-ordering", orderOK, "Inv-Top(1) ≤ Inv-All(N) everywhere"))
	return r, nil
}

// E3 — all result-producing instructions, with the per-class breakdown.
func init() {
	register(&Experiment{
		ID:    "e3",
		Title: "All-instruction invariance and per-class breakdown (Ch. V)",
		Paper: "Same metrics over every result-producing instruction, split by instruction class. Claim: invariance is pervasive, not load-specific; compare/logic ops are the most invariant, loads high, plain ALU lower.",
		Run:   runE3,
	})
}

func runE3(cfg Config) (*Result, error) {
	ws, err := cfg.selected()
	if err != nil {
		return nil, err
	}
	tab := textual.New("All instructions (test input)",
		"program", "execs", "LVP", "InvTop1", "InvTop10", "%zero")
	classAgg := map[isa.Class][]*core.SiteStats{}
	var suiteInv, suiteW []float64
	prs, _, err := cfg.profileSuite(ws, testInput, core.Options{TNV: core.DefaultTNVConfig()}, false)
	if err != nil {
		return nil, err
	}
	for i, w := range ws {
		pr := prs[i]
		m := pr.Aggregate()
		tab.Row(w.Name, m.Execs, m.LVP, m.InvTop1, m.InvTopN, m.PctZero)
		suiteInv = append(suiteInv, m.InvTop1)
		suiteW = append(suiteW, float64(m.Execs))
		prog, err := w.Compile()
		if err != nil {
			return nil, err
		}
		for _, s := range pr.Sites {
			cl := prog.Code[s.PC].Op.Class()
			classAgg[cl] = append(classAgg[cl], s)
		}
	}
	ctab := textual.New("By instruction class (suite-wide)",
		"class", "sites", "execs", "LVP", "InvTop1", "%zero")
	classInv := map[isa.Class]float64{}
	for cl := isa.Class(0); int(cl) < isa.NumClasses; cl++ {
		sites, ok := classAgg[cl]
		if !ok {
			continue
		}
		m := core.Aggregate(sites, 10)
		classInv[cl] = m.InvTop1
		ctab.Row(cl.String(), m.Sites, m.Execs, m.LVP, m.InvTop1, m.PctZero)
	}
	meanInv := stats.WeightedMean(suiteInv, suiteW)
	r := &Result{ID: "e3", Title: "All-instruction invariance", Text: tab.String() + "\n" + ctab.String()}
	r.Checks = append(r.Checks,
		check("pervasive-invariance", meanInv >= 0.25,
			"suite Inv-Top(1) over all instructions %.1f%%", 100*meanInv),
		check("class-breakdown-present", len(classInv) >= 4,
			"%d instruction classes profiled", len(classInv)),
		check("loads-vs-alu", classInv[isa.ClassLoad] > 0,
			"load class Inv-Top(1) %.1f%%, alu %.1f%%", 100*classInv[isa.ClassLoad], 100*classInv[isa.ClassALU]))
	return r, nil
}

// E7 — the invariance-distribution figure: execution-weighted histogram
// of per-site Inv-Top(1) ("the average result, weighted by execution
// frequency, of each bucket is graphed; the y-axis is non-accumulative").
func init() {
	register(&Experiment{
		ID:    "e7",
		Title: "Invariance distribution histogram (Ch. V figure)",
		Paper: "Execution-weighted distribution of per-instruction Inv-Top(1). Claim: the distribution is polarized — a large mass of executions comes from highly invariant instructions, with another mass fully variant.",
		Run:   runE7,
	})
}

func runE7(cfg Config) (*Result, error) {
	ws, err := cfg.selected()
	if err != nil {
		return nil, err
	}
	hist := stats.NewHistogram(10)
	loadHist := stats.NewHistogram(10)
	prs, _, err := cfg.profileSuite(ws, testInput, core.Options{TNV: core.DefaultTNVConfig()}, false)
	if err != nil {
		return nil, err
	}
	for i, w := range ws {
		pr := prs[i]
		prog, err := w.Compile()
		if err != nil {
			return nil, err
		}
		for _, s := range pr.Sites {
			if s.Exec == 0 {
				continue
			}
			hist.Add(s.InvTop(1), float64(s.Exec))
			if prog.Code[s.PC].Op.Class() == isa.ClassLoad {
				loadHist.Add(s.InvTop(1), float64(s.Exec))
			}
		}
	}
	text := "All result-producing instructions:\n" + hist.String() +
		"\nLoads only:\n" + loadHist.String()
	fr := hist.Fractions()
	top := fr[len(fr)-1]
	bottom := fr[0]
	r := &Result{ID: "e7", Title: "Invariance distribution histogram", Text: text}
	r.Checks = append(r.Checks,
		check("top-bucket-mass", top >= 0.10,
			"%.1f%% of executions in the [0.9,1.0) invariance bucket", 100*top),
		check("polarized", top+bottom >= 0.25,
			"ends hold %.1f%% of mass (distribution is polarized, not uniform)", 100*(top+bottom)))
	return r, nil
}
