// Package procprof attributes simulated cycles to procedures —
// inclusive (with callees) and exclusive (self) — via entry/return
// instrumentation. It is the procedure-level profile of the thesis's
// Chapter IV background, and it quantifies the observation motivating
// memoization there: "these few procedures, that make up the bulk of
// the execution, is where one would most likely want to optimize".
package procprof

import (
	"sort"

	"valueprof/internal/atom"
	"valueprof/internal/isa"
	"valueprof/internal/vm"
)

// ProcTime is one procedure's attribution.
type ProcTime struct {
	Name      string
	Calls     uint64
	Inclusive uint64 // cycles from entry to matching return
	Exclusive uint64 // inclusive minus callee inclusive
}

type frame struct {
	proc        *ProcTime
	entryCycles uint64
	calleeIncl  uint64
}

// Profiler is the ATOM tool.
type Profiler struct {
	procs map[string]*ProcTime
	stack []frame
	total uint64
}

// New creates a procedure-time profiler.
func New() *Profiler { return &Profiler{procs: make(map[string]*ProcTime)} }

// Instrument implements atom.Tool.
func (p *Profiler) Instrument(ix *atom.Instrumenter) {
	for _, proc := range ix.Procedures() {
		pt := &ProcTime{Name: proc.Name}
		p.procs[proc.Name] = pt
		ix.AddProcEntry(proc, func(ev *vm.Event) {
			pt.Calls++
			p.stack = append(p.stack, frame{proc: pt, entryCycles: ev.VM.Cycles})
		})
		for pc := proc.Start; pc < proc.End; pc++ {
			if ix.Inst(pc).Op != isa.OpRet {
				continue
			}
			ix.AddAfter(pc, func(ev *vm.Event) { p.ret(ev.VM.Cycles) })
		}
	}
	ix.AddProgramEnd(func(ev *vm.Event) {
		// Unwind frames still open at exit (the startup stub, and any
		// procedure that called exit directly).
		for len(p.stack) > 0 {
			p.ret(ev.VM.Cycles)
		}
		p.total = ev.VM.Cycles
	})
}

func (p *Profiler) ret(nowCycles uint64) {
	if len(p.stack) == 0 {
		return
	}
	f := p.stack[len(p.stack)-1]
	p.stack = p.stack[:len(p.stack)-1]
	incl := nowCycles - f.entryCycles
	f.proc.Inclusive += incl
	excl := incl - f.calleeIncl
	f.proc.Exclusive += excl
	if len(p.stack) > 0 {
		p.stack[len(p.stack)-1].calleeIncl += incl
	}
}

// TotalCycles returns the run's cycle count (set at program end).
func (p *Profiler) TotalCycles() uint64 { return p.total }

// Sorted returns procedures by exclusive cycles, descending.
func (p *Profiler) Sorted() []*ProcTime {
	out := make([]*ProcTime, 0, len(p.procs))
	for _, pt := range p.procs {
		if pt.Calls > 0 {
			out = append(out, pt)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Exclusive != out[j].Exclusive {
			return out[i].Exclusive > out[j].Exclusive
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// TopShare returns the fraction of all cycles attributed exclusively to
// the top n procedures.
func (p *Profiler) TopShare(n int) float64 {
	if p.total == 0 {
		return 0
	}
	var sum uint64
	for i, pt := range p.Sorted() {
		if i >= n {
			break
		}
		sum += pt.Exclusive
	}
	return float64(sum) / float64(p.total)
}
