package procprof

import (
	"testing"

	"valueprof/internal/atom"
	"valueprof/internal/minic"
)

const procSrc = `
func inner(x) {
    var i; var s = 0;
    for (i = 0; i < 50; i = i + 1) { s = s + x * i; }
    return s;
}
func outer(n) {
    var i; var s = 0;
    for (i = 0; i < n; i = i + 1) { s = s + inner(i); }
    return s;
}
func main() { putint(outer(40)); }
`

func runProc(t *testing.T, src string) *Profiler {
	t.Helper()
	prog, err := minic.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	p := New()
	if _, err := atom.Run(prog, nil, false, p); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestAttribution(t *testing.T) {
	p := runProc(t, procSrc)
	byName := map[string]*ProcTime{}
	for _, pt := range p.Sorted() {
		byName[pt.Name] = pt
	}
	inner, outer, main := byName["inner"], byName["outer"], byName["_main"]
	if inner == nil || outer == nil || main == nil {
		t.Fatalf("missing procs: %v", byName)
	}
	if inner.Calls != 40 || outer.Calls != 1 {
		t.Errorf("calls: inner=%d outer=%d", inner.Calls, outer.Calls)
	}
	// outer's inclusive time contains inner's; its exclusive does not.
	if outer.Inclusive <= inner.Inclusive {
		t.Errorf("outer inclusive %d ≤ inner inclusive %d", outer.Inclusive, inner.Inclusive)
	}
	if outer.Exclusive >= outer.Inclusive {
		t.Errorf("outer exclusive %d ≥ inclusive %d", outer.Exclusive, outer.Inclusive)
	}
	// inner dominates exclusive time (the hot leaf).
	if p.Sorted()[0].Name != "inner" {
		t.Errorf("hottest proc = %s, want inner", p.Sorted()[0].Name)
	}
	// _main's inclusive is nearly the whole run.
	if float64(main.Inclusive) < 0.95*float64(p.TotalCycles()) {
		t.Errorf("main inclusive %d of total %d", main.Inclusive, p.TotalCycles())
	}
}

func TestExclusiveSumsToTotal(t *testing.T) {
	p := runProc(t, procSrc)
	var sum uint64
	for _, pt := range p.Sorted() {
		sum += pt.Exclusive
	}
	if sum != p.TotalCycles() {
		t.Errorf("sum of exclusive cycles %d != total %d", sum, p.TotalCycles())
	}
}

func TestTopShare(t *testing.T) {
	p := runProc(t, procSrc)
	one := p.TopShare(1)
	all := p.TopShare(100)
	if one <= 0.4 {
		t.Errorf("top-1 share = %v, want a dominant leaf", one)
	}
	if all < 0.999 || all > 1.001 {
		t.Errorf("full share = %v, want 1.0", all)
	}
	if p.TopShare(2) < one {
		t.Error("TopShare not monotone")
	}
}

func TestRecursionDoesNotUnderflow(t *testing.T) {
	p := runProc(t, `
func fib(n) {
    if (n < 2) { return n; }
    return fib(n - 1) + fib(n - 2);
}
func main() { putint(fib(12)); }
`)
	byName := map[string]*ProcTime{}
	for _, pt := range p.Sorted() {
		byName[pt.Name] = pt
	}
	fib := byName["fib"]
	if fib == nil || fib.Calls < 100 {
		t.Fatalf("fib: %+v", fib)
	}
	// Self-recursive inclusive time over-counts (each level counts its
	// subtree); exclusive must still be sane and positive.
	if fib.Exclusive == 0 || fib.Exclusive > p.TotalCycles() {
		t.Errorf("fib exclusive = %d of total %d", fib.Exclusive, p.TotalCycles())
	}
}
