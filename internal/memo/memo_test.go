package memo

import (
	"testing"

	"valueprof/internal/atom"
	"valueprof/internal/minic"
)

const memoProg = `
int counter;
func pure(a, b) {
    var i; var s = 0;
    for (i = 0; i < 20; i = i + 1) { s = s + a * b + i; }
    return s;
}
func impure(a) {
    counter = counter + 1;
    return a + counter;
}
func main() {
    var i; var acc = 0;
    for (i = 0; i < 300; i = i + 1) {
        acc = acc + pure(i % 4, 7);     // only 4 distinct arg tuples
        acc = acc + impure(5);          // same arg, different result
    }
    putint(acc);
}
`

func runMemo(t *testing.T, opts Options) *Evaluator {
	t.Helper()
	prog, err := minic.Compile(memoProg)
	if err != nil {
		t.Fatal(err)
	}
	ev := New(opts)
	if _, err := atom.Run(prog, nil, false, ev); err != nil {
		t.Fatal(err)
	}
	return ev
}

func TestMemoPureFunction(t *testing.T) {
	ev := runMemo(t, Options{Arity: map[string]int{"pure": 2, "impure": 1}})
	p := ev.Proc("pure")
	if p == nil || p.Calls != 300 {
		t.Fatalf("pure stats: %+v", p)
	}
	// 4 distinct tuples: first 4 calls miss, the rest hit correctly.
	if p.Hits != 296 || p.CorrectHits != 296 || p.WrongHits != 0 {
		t.Errorf("pure hits=%d correct=%d wrong=%d", p.Hits, p.CorrectHits, p.WrongHits)
	}
	if !p.Memoizable() {
		t.Error("pure function flagged as unmemoizable")
	}
	if p.SavedCycles == 0 || p.NetSavedCycles() <= 0 {
		t.Errorf("no modeled savings: saved=%d net=%d", p.SavedCycles, p.NetSavedCycles())
	}
	if hr := p.HitRate(); hr < 0.98 {
		t.Errorf("hit rate = %v", hr)
	}
}

func TestMemoDetectsImpurity(t *testing.T) {
	ev := runMemo(t, Options{Arity: map[string]int{"pure": 2, "impure": 1}})
	p := ev.Proc("impure")
	if p == nil || p.Calls != 300 {
		t.Fatalf("impure stats: %+v", p)
	}
	if p.WrongHits == 0 {
		t.Error("impure function not detected")
	}
	if p.Memoizable() {
		t.Error("impure function flagged memoizable")
	}
	if p.CorrectHits > 0 {
		t.Errorf("impure correct hits = %d, want 0", p.CorrectHits)
	}
}

func TestMemoCacheEviction(t *testing.T) {
	prog, err := minic.Compile(`
func f(a) { return a * 3; }
func main() {
    var i;
    for (i = 0; i < 100; i = i + 1) { f(i); }   // 100 distinct args
    for (i = 0; i < 100; i = i + 1) { f(i); }   // replay
}
`)
	if err != nil {
		t.Fatal(err)
	}
	ev := New(Options{Arity: map[string]int{"f": 1}, CacheSize: 8})
	if _, err := atom.Run(prog, nil, false, ev); err != nil {
		t.Fatal(err)
	}
	p := ev.Proc("f")
	if p.Evictions == 0 {
		t.Error("tiny cache never evicted")
	}
	// With FIFO of 8 over a 100-long cyclic stream, nothing can hit.
	if p.CorrectHits != 0 {
		t.Errorf("hits = %d, want 0 with thrashing cache", p.CorrectHits)
	}
}

func TestMemoUnlistedProcsIgnored(t *testing.T) {
	ev := runMemo(t, Options{Arity: map[string]int{"pure": 2}})
	if ev.Proc("impure") != nil {
		t.Error("unlisted procedure evaluated")
	}
	if len(ev.Results()) != 1 {
		t.Errorf("results = %d", len(ev.Results()))
	}
}

func TestMemoRecursionSafe(t *testing.T) {
	prog, err := minic.Compile(`
func fib(n) {
    if (n < 2) { return n; }
    return fib(n - 1) + fib(n - 2);
}
func main() { putint(fib(15)); }
`)
	if err != nil {
		t.Fatal(err)
	}
	ev := New(Options{Arity: map[string]int{"fib": 1}})
	res, err := atom.Run(prog, nil, false, ev)
	if err != nil {
		t.Fatal(err)
	}
	if res.Output != "610" {
		t.Fatalf("fib output = %q", res.Output)
	}
	p := ev.Proc("fib")
	if !p.Memoizable() {
		t.Error("fib should be memoizable")
	}
	if p.HitRate() < 0.4 {
		t.Errorf("fib hit rate = %v; recursive fib should hit heavily", p.HitRate())
	}
	if p.Calls < 100 {
		t.Errorf("calls = %d", p.Calls)
	}
}
