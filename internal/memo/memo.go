// Package memo evaluates procedure memoization, the use of parameter
// value profiles suggested by Richardson [32] and thesis Chapter X:
// "keeping a memoization cache of recently executed function results
// with their inputs". The Evaluator observes procedure entries and
// returns, maintains a bounded args→result cache per procedure, and
// reports the hit rate, the cycles a real memoization stub would have
// skipped, and — critically — whether cached results were actually
// correct (impure procedures disqualify themselves).
package memo

import (
	"sort"

	"valueprof/internal/atom"
	"valueprof/internal/isa"
	"valueprof/internal/vm"
)

// DefaultCacheSize bounds each procedure's memo table.
const DefaultCacheSize = 64

// Options configures an Evaluator.
type Options struct {
	// Arity maps procedure name → argument count; only listed
	// procedures are evaluated (memoization requires knowing the
	// argument registers).
	Arity map[string]int
	// CacheSize bounds each memo table (FIFO eviction); 0 uses
	// DefaultCacheSize.
	CacheSize int
	// GuardCycles models the per-call cost of the lookup a real memo
	// stub would add (charged against the savings).
	GuardCycles uint64
}

type key struct {
	a0, a1, a2 int64
	n          int
}

type invocation struct {
	k          key
	entryCycle uint64
	hit        bool
	cached     int64
}

// ProcStats is the memoization evaluation of one procedure.
type ProcStats struct {
	Name        string
	Calls       uint64
	Hits        uint64 // args found in cache
	CorrectHits uint64 // cached result equalled the actual result
	WrongHits   uint64 // purity violations
	SavedCycles uint64 // inclusive cycles of correct-hit invocations
	GuardCycles uint64 // modeled lookup overhead (all calls)
	Evictions   uint64

	cache   map[key]int64
	order   []key // FIFO
	stack   []invocation
	maxSize int
}

// HitRate returns correct hits / calls.
func (p *ProcStats) HitRate() float64 {
	if p.Calls == 0 {
		return 0
	}
	return float64(p.CorrectHits) / float64(p.Calls)
}

// Memoizable reports whether every hit returned the correct cached
// value (no observed purity violations).
func (p *ProcStats) Memoizable() bool { return p.WrongHits == 0 }

// NetSavedCycles returns modeled savings after guard overhead.
func (p *ProcStats) NetSavedCycles() int64 {
	return int64(p.SavedCycles) - int64(p.GuardCycles)
}

// Evaluator is an ATOM tool measuring memoization potential.
type Evaluator struct {
	opts  Options
	procs map[string]*ProcStats
}

// New creates an evaluator; procedures in opts.Arity are evaluated.
func New(opts Options) *Evaluator {
	if opts.CacheSize == 0 {
		opts.CacheSize = DefaultCacheSize
	}
	if opts.GuardCycles == 0 {
		opts.GuardCycles = 2
	}
	return &Evaluator{opts: opts, procs: make(map[string]*ProcStats)}
}

// Instrument implements atom.Tool.
func (e *Evaluator) Instrument(ix *atom.Instrumenter) {
	for _, proc := range ix.Procedures() {
		nargs, ok := e.opts.Arity[proc.Name]
		if !ok {
			continue
		}
		if nargs > 3 {
			nargs = 3 // key covers up to three argument registers
		}
		ps := &ProcStats{
			Name:    proc.Name,
			cache:   make(map[key]int64),
			maxSize: e.opts.CacheSize,
		}
		e.procs[proc.Name] = ps
		n := nargs

		ix.AddProcEntry(proc, func(ev *vm.Event) {
			ps.Calls++
			ps.GuardCycles += e.opts.GuardCycles
			k := key{n: n}
			if n > 0 {
				k.a0 = ev.VM.Regs[isa.RegA0]
			}
			if n > 1 {
				k.a1 = ev.VM.Regs[isa.RegA0+1]
			}
			if n > 2 {
				k.a2 = ev.VM.Regs[isa.RegA0+2]
			}
			inv := invocation{k: k, entryCycle: ev.VM.Cycles}
			if cached, hit := ps.cache[k]; hit {
				inv.hit = true
				inv.cached = cached
				ps.Hits++
			}
			ps.stack = append(ps.stack, inv)
		})

		// Returns: every ret instruction inside the body ends the
		// innermost invocation of this procedure.
		for pc := proc.Start; pc < proc.End; pc++ {
			if ix.Inst(pc).Op != isa.OpRet {
				continue
			}
			ix.AddAfter(pc, func(ev *vm.Event) {
				if len(ps.stack) == 0 {
					return // ret without tracked entry (tail-jumped into?)
				}
				inv := ps.stack[len(ps.stack)-1]
				ps.stack = ps.stack[:len(ps.stack)-1]
				result := ev.VM.Regs[isa.RegV0]
				if inv.hit {
					if inv.cached == result {
						ps.CorrectHits++
						ps.SavedCycles += ev.VM.Cycles - inv.entryCycle
					} else {
						ps.WrongHits++
						ps.cache[inv.k] = result
					}
					return
				}
				if len(ps.cache) >= ps.maxSize {
					oldest := ps.order[0]
					ps.order = ps.order[1:]
					delete(ps.cache, oldest)
					ps.Evictions++
				}
				ps.cache[inv.k] = result
				ps.order = append(ps.order, inv.k)
			})
		}
	}
}

// Results returns per-procedure stats sorted by calls descending.
func (e *Evaluator) Results() []*ProcStats {
	out := make([]*ProcStats, 0, len(e.procs))
	for _, p := range e.procs {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Calls != out[j].Calls {
			return out[i].Calls > out[j].Calls
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Proc returns one procedure's stats, or nil.
func (e *Evaluator) Proc(name string) *ProcStats { return e.procs[name] }
