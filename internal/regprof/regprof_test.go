package regprof

import (
	"testing"

	"valueprof/internal/asm"
	"valueprof/internal/atom"
	"valueprof/internal/core"
	"valueprof/internal/isa"
)

const regSrc = `
        .proc main
main:   li s0, 100
loop:   li t0, 7
        add t1, t0, s0
        addi s0, s0, -1
        bne s0, loop
        syscall exit
        .endproc
`

func runReg(t *testing.T) *Profiler {
	t.Helper()
	prog, err := asm.Assemble(regSrc)
	if err != nil {
		t.Fatal(err)
	}
	p := New(core.DefaultTNVConfig(), true)
	if _, err := atom.Run(prog, nil, false, p); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestRegisterStreamsMerged(t *testing.T) {
	p := runReg(t)
	t0 := p.Reg(isa.RegT0)
	if t0.Exec != 100 || t0.InvTop(1) != 1.0 {
		t.Errorf("t0: exec=%d inv=%v", t0.Exec, t0.InvTop(1))
	}
	// s0 is written by li (once) and addi (100 times): one merged
	// stream of 101 mostly-distinct values.
	s0 := p.Reg(isa.RegS0)
	if s0.Exec != 101 {
		t.Errorf("s0 writes = %d, want 101", s0.Exec)
	}
	if s0.InvAll(1) > 0.05 {
		t.Errorf("s0 invariance = %v, want low (counter)", s0.InvAll(1))
	}
	if p.Reg(isa.RegZero) != nil {
		t.Error("zero register profiled")
	}
}

func TestWrittenAndAggregate(t *testing.T) {
	p := runReg(t)
	written := p.Written()
	// t0, t1, s0 are written (li/add/addi); nothing else.
	if len(written) != 3 {
		names := []string{}
		for _, s := range written {
			names = append(names, s.Name)
		}
		t.Fatalf("written registers = %v", names)
	}
	m := p.Aggregate()
	if m.Execs != 301 {
		t.Errorf("total writes = %d, want 301", m.Execs)
	}
	if m.InvTop1 <= 0.3 {
		t.Errorf("aggregate invariance = %v (t0's constant stream should lift it)", m.InvTop1)
	}
}

func TestLinkRegisterVisible(t *testing.T) {
	src := `
        .proc main
main:   jsr f
        jsr f
        syscall exit
        .endproc
        .proc f
f:      li v0, 1
        ret
        .endproc
`
	prog, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	p := New(core.DefaultTNVConfig(), false)
	if _, err := atom.Run(prog, nil, false, p); err != nil {
		t.Fatal(err)
	}
	ra := p.Reg(isa.RegRA)
	if ra.Exec != 2 {
		t.Errorf("ra writes = %d, want 2 (jsr link)", ra.Exec)
	}
}
