// Package regprof profiles values written to each architectural
// register, the register-file view of value profiling the thesis
// discusses around Gabbay's register-value prediction results [17]
// (registers would otherwise need saving/restoring across calls;
// predicting their values recovers some register-window benefit).
//
// Unlike per-instruction profiling (one site per pc), this merges all
// writers of a register into one stream per register, answering "how
// predictable is r12 as a storage location?".
package regprof

import (
	"valueprof/internal/atom"
	"valueprof/internal/core"
	"valueprof/internal/isa"
	"valueprof/internal/vm"
)

// Profiler is the ATOM tool.
type Profiler struct {
	tnv  core.TNVConfig
	full bool
	regs [isa.NumRegs]*core.SiteStats
}

// New creates a register-value profiler. trackFull keeps exact
// profiles per register.
func New(tnv core.TNVConfig, trackFull bool) *Profiler {
	if tnv.Size == 0 {
		tnv = core.DefaultTNVConfig()
	}
	p := &Profiler{tnv: tnv, full: trackFull}
	return p
}

// Instrument implements atom.Tool: one analysis call after every
// result-producing instruction routes the value to its register's
// stats. Calls (which write the link register) are included so ra's
// stream is visible too.
func (p *Profiler) Instrument(ix *atom.Instrumenter) {
	for r := 0; r < isa.NumRegs; r++ {
		if r == isa.RegZero {
			continue
		}
		p.regs[r] = core.NewSiteStats(-1, isa.RegName(uint8(r)), p.tnv, p.full)
	}
	ix.ForEachInst(func(in isa.Inst) bool {
		return in.Op.HasDest() || in.Op == isa.OpJsr || in.Op == isa.OpJsrr
	}, func(pc int, in isa.Inst) {
		if in.Rd == isa.RegZero {
			return
		}
		site := p.regs[in.Rd]
		ix.AddAfter(pc, func(ev *vm.Event) { site.Observe(ev.Value) })
	})
}

// Reg returns the stats for one register (nil for the zero register).
func (p *Profiler) Reg(r uint8) *core.SiteStats { return p.regs[r] }

// Written returns the registers that were written at least once, in
// register order.
func (p *Profiler) Written() []*core.SiteStats {
	var out []*core.SiteStats
	for r := 0; r < isa.NumRegs; r++ {
		if p.regs[r] != nil && p.regs[r].Exec > 0 {
			out = append(out, p.regs[r])
		}
	}
	return out
}

// Aggregate returns write-weighted metrics over all written registers.
func (p *Profiler) Aggregate() core.WeightedMetrics {
	return core.Aggregate(p.Written(), p.tnv.Size)
}
