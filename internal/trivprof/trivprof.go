// Package trivprof profiles the operands of expensive arithmetic
// looking for trivial computations, reproducing the study the thesis
// cites from Richardson [32]: "he profiled the operands of arithmetic
// operations looking for trivial calculations. A trivial instruction is
// defined as being able to complete in one cycle."
//
// A multiply by 0, ±1 or a power of two, a divide/remainder by 1 or a
// power of two, completes in one cycle as a move/negate/shift/mask. The
// profiler observes operand values before each mul/div/rem executes and
// reports the dynamic trivial fraction and the cycles a trivializing
// unit (or value-specialized code) would save.
package trivprof

import (
	"sort"

	"valueprof/internal/atom"
	"valueprof/internal/isa"
	"valueprof/internal/vm"
)

// Kind classifies one dynamic arithmetic execution.
type Kind int

const (
	NonTrivial  Kind = iota
	ZeroOperand      // x*0 (result 0), 0/x, 0%x
	OneOperand       // x*1, x/1 (copy), x%1 (zero)
	MinusOne         // x*-1, x/-1 (negate)
	PowerOfTwo       // x*2^k (shift), x/2^k, x%2^k with x≥0 (shift/mask)
	SelfOperand      // x/x (one), x%x (zero), x-x handled by ALU anyway
	NumKinds    = int(SelfOperand) + 1
)

func (k Kind) String() string {
	switch k {
	case ZeroOperand:
		return "zero"
	case OneOperand:
		return "one"
	case MinusOne:
		return "minus-one"
	case PowerOfTwo:
		return "pow2"
	case SelfOperand:
		return "self"
	}
	return "nontrivial"
}

// trivialCycles is the cost of the replacement operation.
const trivialCycles = 1

// SiteStats is the per-instruction trivially profile.
type SiteStats struct {
	PC    int
	Name  string
	Op    isa.Op
	Execs uint64
	Kinds [NumKinds]uint64
}

// Trivial returns the number of trivial executions.
func (s *SiteStats) Trivial() uint64 { return s.Execs - s.Kinds[NonTrivial] }

// TrivialFraction returns trivial / execs.
func (s *SiteStats) TrivialFraction() float64 {
	if s.Execs == 0 {
		return 0
	}
	return float64(s.Trivial()) / float64(s.Execs)
}

// SavedCycles returns the cycles saved if every trivial execution
// completed in one cycle instead of the opcode's full latency.
func (s *SiteStats) SavedCycles() uint64 {
	full := uint64(s.Op.Cycles())
	if full <= trivialCycles {
		return 0
	}
	return s.Trivial() * (full - trivialCycles)
}

// Profiler is the ATOM tool.
type Profiler struct {
	sites map[int]*SiteStats
}

// New creates a trivial-computation profiler.
func New() *Profiler { return &Profiler{sites: make(map[int]*SiteStats)} }

func isPow2(v int64) bool { return v > 0 && v&(v-1) == 0 }

// classify inspects one execution of op with operands a (Ra) and b (Rb
// or immediate).
func classify(op isa.Op, a, b int64) Kind {
	switch op {
	case isa.OpMul, isa.OpMuli:
		switch {
		case a == 0 || b == 0:
			return ZeroOperand
		case a == 1 || b == 1:
			return OneOperand
		case a == -1 || b == -1:
			return MinusOne
		case isPow2(a) || isPow2(b):
			return PowerOfTwo
		}
	case isa.OpDiv:
		switch {
		case a == 0:
			return ZeroOperand
		case b == 1:
			return OneOperand
		case b == -1:
			return MinusOne
		case a == b:
			return SelfOperand
		case isPow2(b) && a >= 0:
			return PowerOfTwo
		}
	case isa.OpRem:
		switch {
		case a == 0:
			return ZeroOperand
		case b == 1 || b == -1:
			return OneOperand
		case a == b:
			return SelfOperand
		case isPow2(b) && a >= 0:
			return PowerOfTwo
		}
	}
	return NonTrivial
}

// Instrument implements atom.Tool: a before-instruction analysis call
// reads the operand registers of every mul/div/rem.
func (p *Profiler) Instrument(ix *atom.Instrumenter) {
	ix.ForEachInst(func(in isa.Inst) bool {
		switch in.Op {
		case isa.OpMul, isa.OpMuli, isa.OpDiv, isa.OpRem:
			return true
		}
		return false
	}, func(pc int, in isa.Inst) {
		s := &SiteStats{PC: pc, Name: ix.Prog.SiteName(pc), Op: in.Op}
		p.sites[pc] = s
		ix.AddBefore(pc, func(ev *vm.Event) {
			a := ev.VM.Regs[in.Ra]
			var b int64
			if in.Op == isa.OpMuli {
				b = int64(in.Imm)
			} else {
				b = ev.VM.Regs[in.Rb]
			}
			s.Execs++
			s.Kinds[classify(in.Op, a, b)]++
		})
	})
}

// Report is the result of one run.
type Report struct {
	Sites []*SiteStats // sorted by execs descending
}

// Report returns the collected profile.
func (p *Profiler) Report() *Report {
	out := make([]*SiteStats, 0, len(p.sites))
	for _, s := range p.sites {
		if s.Execs > 0 {
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Execs != out[j].Execs {
			return out[i].Execs > out[j].Execs
		}
		return out[i].PC < out[j].PC
	})
	return &Report{Sites: out}
}

// Totals returns the dynamic trivial fraction over all profiled
// executions, the total saved cycles, and per-kind dynamic counts.
func (r *Report) Totals() (trivialFrac float64, saved uint64, kinds [NumKinds]uint64) {
	var execs, trivial uint64
	for _, s := range r.Sites {
		execs += s.Execs
		trivial += s.Trivial()
		saved += s.SavedCycles()
		for k := 0; k < NumKinds; k++ {
			kinds[k] += s.Kinds[k]
		}
	}
	if execs > 0 {
		trivialFrac = float64(trivial) / float64(execs)
	}
	return trivialFrac, saved, kinds
}
