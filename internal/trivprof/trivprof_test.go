package trivprof

import (
	"testing"

	"valueprof/internal/asm"
	"valueprof/internal/atom"
	"valueprof/internal/isa"
)

func TestClassify(t *testing.T) {
	cases := []struct {
		op   isa.Op
		a, b int64
		want Kind
	}{
		{isa.OpMul, 5, 0, ZeroOperand},
		{isa.OpMul, 0, 5, ZeroOperand},
		{isa.OpMul, 5, 1, OneOperand},
		{isa.OpMul, -1, 5, MinusOne},
		{isa.OpMul, 5, 8, PowerOfTwo},
		{isa.OpMul, 16, 5, PowerOfTwo},
		{isa.OpMul, 5, 7, NonTrivial},
		{isa.OpMuli, 5, 4, PowerOfTwo},
		{isa.OpDiv, 0, 9, ZeroOperand},
		{isa.OpDiv, 9, 1, OneOperand},
		{isa.OpDiv, 9, -1, MinusOne},
		{isa.OpDiv, 9, 9, SelfOperand},
		{isa.OpDiv, 40, 8, PowerOfTwo},
		{isa.OpDiv, -40, 8, NonTrivial}, // negative dividend: shift is not division
		{isa.OpDiv, 41, 7, NonTrivial},
		{isa.OpRem, 9, 1, OneOperand},
		{isa.OpRem, 40, 16, PowerOfTwo},
		{isa.OpRem, 41, 7, NonTrivial},
	}
	for _, c := range cases {
		if got := classify(c.op, c.a, c.b); got != c.want {
			t.Errorf("classify(%v, %d, %d) = %v, want %v", c.op, c.a, c.b, got, c.want)
		}
	}
}

const trivSrc = `
        .proc main
main:   li s0, 100
        li s1, 65536
loop:   mul t0, s0, s1      ; pow2 multiply every iteration
        div t1, t0, s1      ; pow2 divide (t0 ≥ 0)
        mul t2, s0, s0      ; nontrivial
        addi s0, s0, -1
        bne s0, loop
        syscall exit
        .endproc
`

func TestProfilerCountsAndSavings(t *testing.T) {
	prog, err := asm.Assemble(trivSrc)
	if err != nil {
		t.Fatal(err)
	}
	p := New()
	if _, err := atom.Run(prog, nil, false, p); err != nil {
		t.Fatal(err)
	}
	r := p.Report()
	if len(r.Sites) != 3 {
		t.Fatalf("sites = %d, want 3", len(r.Sites))
	}
	frac, saved, kinds := r.Totals()
	// The pow2 mul and div are always trivial; the square s0*s0 is
	// trivial only when s0 ∈ {1, 2, 4, 8, 16, 32, 64}: 207 of 300.
	if frac != 207.0/300.0 {
		t.Errorf("trivial fraction = %v, want 0.69", frac)
	}
	// At s0=1 the pow2 multiply has a==1 (OneOperand), the divide has
	// t0==s1 (SelfOperand), and the square has a==1 (OneOperand); the
	// square is pow2-trivial for s0 in {2,4,8,16,32,64}.
	if kinds[PowerOfTwo] != 204 || kinds[OneOperand] != 2 || kinds[SelfOperand] != 1 || kinds[NonTrivial] != 93 {
		t.Errorf("kinds = %v", kinds)
	}
	want := uint64(107*(isa.OpMul.Cycles()-1) + 100*(isa.OpDiv.Cycles()-1))
	if saved != want {
		t.Errorf("saved = %d, want %d", saved, want)
	}
	for _, s := range r.Sites {
		if s.PC == 2 && s.TrivialFraction() != 1.0 {
			t.Errorf("pow2 mul site fraction = %v", s.TrivialFraction())
		}
		if s.PC == 4 && s.TrivialFraction() != 0.07 {
			t.Errorf("square site fraction = %v, want 0.07", s.TrivialFraction())
		}
	}
}

func TestKindStrings(t *testing.T) {
	seen := map[string]bool{}
	for k := 0; k < NumKinds; k++ {
		s := Kind(k).String()
		if s == "" || seen[s] {
			t.Errorf("kind %d name %q", k, s)
		}
		seen[s] = true
	}
}
