// Package difftest differentially tests the optimized value profiler
// in internal/core against a deliberately naive reference
// reimplemented straight from the paper. The reference keeps the
// complete per-site value sequence (unbounded, exact) and computes
// every metric — Inv-Top(k), Inv-All(k), LVP, %zero, Diff — by
// straight-line scans over that sequence. It shares no code with
// internal/core: an LFU bookkeeping bug, a clear-interval off-by-one,
// or a merge error in the optimized path cannot cancel out here,
// because this path has no LFU, no clearing, and no merge.
//
// The harness (harness.go) runs a generated program under both
// profilers and asserts the metamorphic properties from ISSUE 5;
// cmd/vfuzz drives it over thousands of seeds and shrinks any
// divergence into the regression corpus under testdata/corpus.
package difftest

import (
	"sort"

	"valueprof/internal/atom"
	"valueprof/internal/isa"
	"valueprof/internal/vm"
)

// RefProfiler is the reference: an ATOM tool recording the complete
// value sequence of every selected instruction site.
type RefProfiler struct {
	// Filter selects instructions; nil selects every result-producing
	// one, matching core's default.
	Filter func(isa.Inst) bool
	// Seqs holds, per pc, every observed value in execution order.
	Seqs map[int][]int64
}

// NewRefProfiler creates the reference profiler.
func NewRefProfiler() *RefProfiler {
	return &RefProfiler{Seqs: make(map[int][]int64)}
}

// Instrument implements atom.Tool.
func (r *RefProfiler) Instrument(ix *atom.Instrumenter) {
	keep := r.Filter
	if keep == nil {
		keep = func(in isa.Inst) bool { return in.Op.HasDest() }
	}
	ix.ForEachInst(keep, func(pc int, _ isa.Inst) {
		ix.AddAfter(pc, func(ev *vm.Event) {
			r.Seqs[pc] = append(r.Seqs[pc], ev.Value)
		})
	})
}

// PCs returns the executed site pcs in ascending order.
func (r *RefProfiler) PCs() []int {
	pcs := make([]int, 0, len(r.Seqs))
	for pc := range r.Seqs {
		pcs = append(pcs, pc)
	}
	sort.Ints(pcs)
	return pcs
}

// ---- straight-line metrics over a value sequence ----

// RefCounts returns the exact value→count map of a sequence.
func RefCounts(seq []int64) map[int64]uint64 {
	m := make(map[int64]uint64, len(seq))
	for _, v := range seq {
		m[v]++
	}
	return m
}

// RefEntry is one (value, count) pair of the reference profile.
type RefEntry struct {
	Value int64
	Count uint64
}

// RefTop returns counts as entries sorted count-descending, ties by
// value ascending — the same determinism rule core documents for its
// exact profile.
func RefTop(counts map[int64]uint64) []RefEntry {
	out := make([]RefEntry, 0, len(counts))
	for v, c := range counts {
		out = append(out, RefEntry{Value: v, Count: c})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Value < out[j].Value
	})
	return out
}

// RefTopKSum returns the total count of the k most frequent values —
// the integer numerator of Inv-All(k), comparable without float
// tolerance.
func RefTopKSum(counts map[int64]uint64, k int) uint64 {
	var sum uint64
	for i, e := range RefTop(counts) {
		if i >= k {
			break
		}
		sum += e.Count
	}
	return sum
}

// RefLVPHits counts executions whose value repeats the immediately
// preceding one — the paper's last-value predictability numerator.
func RefLVPHits(seq []int64) uint64 {
	var hits uint64
	for i := 1; i < len(seq); i++ {
		if seq[i] == seq[i-1] {
			hits++
		}
	}
	return hits
}

// RefZeros counts zero-valued executions.
func RefZeros(seq []int64) uint64 {
	var zeros uint64
	for _, v := range seq {
		if v == 0 {
			zeros++
		}
	}
	return zeros
}

// RefInvAll returns the exact invariance: the fraction of executions
// covered by the k most frequent values.
func RefInvAll(seq []int64, k int) float64 {
	if len(seq) == 0 {
		return 0
	}
	return float64(RefTopKSum(RefCounts(seq), k)) / float64(len(seq))
}

// RefLVP returns hits/executions.
func RefLVP(seq []int64) float64 {
	if len(seq) == 0 {
		return 0
	}
	return float64(RefLVPHits(seq)) / float64(len(seq))
}

// RefPctZero returns the zero fraction.
func RefPctZero(seq []int64) float64 {
	if len(seq) == 0 {
		return 0
	}
	return float64(RefZeros(seq)) / float64(len(seq))
}

// RefDiff is the paper's Diff(L/I): |LVP − Inv-All(1)|.
func RefDiff(seq []int64) float64 {
	d := RefLVP(seq) - RefInvAll(seq, 1)
	if d < 0 {
		d = -d
	}
	return d
}

// ---- naive TNV replacement-policy simulation ----

// RefTNV replays a value sequence through the paper's TNV replacement
// policy the slow, obvious way: a plain slice re-sorted after every
// hit. The optimized table bubbles entries in place and maintains the
// order incrementally; if the two ever disagree on a single entry,
// count, or clear, the optimization is wrong.
type RefTNV struct {
	Size          int
	Steady        int
	ClearInterval uint64
	Entries       []RefEntry
	Updates       uint64
	Dropped       uint64
	Clears        uint64
	sinceClear    uint64
}

// Add records one value under LFU + periodic clearing.
func (t *RefTNV) Add(v int64) {
	t.Updates++
	hit := false
	for i := range t.Entries {
		if t.Entries[i].Value == v {
			t.Entries[i].Count++
			hit = true
			break
		}
	}
	if hit {
		// A stable sort by count leaves equal-count entries in their
		// prior relative order — exactly where the optimized table's
		// strict-inequality bubble stops.
		sort.SliceStable(t.Entries, func(i, j int) bool {
			return t.Entries[i].Count > t.Entries[j].Count
		})
	} else if len(t.Entries) < t.Size {
		t.Entries = append(t.Entries, RefEntry{Value: v, Count: 1})
	} else if t.Steady < t.Size {
		// The whole clear part is candidate for eviction; the last
		// entry is the least frequently used.
		t.Entries[len(t.Entries)-1] = RefEntry{Value: v, Count: 1}
	} else {
		// A full, fully-steady table has no eviction candidate: the
		// value is dropped, counted, and — having touched no entry —
		// does not advance the clear clock.
		t.Dropped++
		return
	}
	if t.ClearInterval > 0 {
		t.sinceClear++
		if t.sinceClear >= t.ClearInterval {
			t.sinceClear = 0
			if len(t.Entries) > t.Steady {
				t.Entries = t.Entries[:t.Steady]
				t.Clears++
			}
		}
	}
}

// SimulateTNV replays seq through a fresh reference table.
func SimulateTNV(seq []int64, size, steady int, clearInterval uint64) *RefTNV {
	t := &RefTNV{Size: size, Steady: steady, ClearInterval: clearInterval}
	for _, v := range seq {
		t.Add(v)
	}
	return t
}

// ---- naive convergent-sampler simulation ----

// RefSampled is the outcome of replaying a value sequence through a
// naive reimplementation of the paper's convergent sampler: which
// executions get profiled is a deterministic function of the value
// stream, so the optimized sampled profiler must reproduce this
// byte-for-byte.
type RefSampled struct {
	TNV      *RefTNV
	Profiled uint64
	Skipped  uint64
	LVPHits  uint64
	Zeros    uint64
}

// InvTop1 returns the table's invariance estimate.
func (s *RefSampled) InvTop1() float64 {
	if s.TNV.Updates == 0 || len(s.TNV.Entries) == 0 {
		return 0
	}
	return float64(s.TNV.Entries[0].Count) / float64(s.TNV.Updates)
}

// SimulateConvergent replays seq through the burst/skip state machine
// described in the thesis: profile bursts of burstLen executions; at
// each burst end compare the table's cumulative Inv-Top(1) against the
// previous checkpoint; a change below eps means convergence, doubling
// the following skip from initialSkip up to maxSkip, while a larger
// change re-arms continuous profiling. The convergence check runs
// before the burst's final value lands in the table, matching the
// profiler's sample-then-observe hook order.
func SimulateConvergent(seq []int64, size, steady int, clearInterval uint64,
	burstLen, initialSkip, maxSkip uint64, eps float64) *RefSampled {
	out := &RefSampled{TNV: &RefTNV{Size: size, Steady: steady, ClearInterval: clearInterval}}
	profiling := true
	remaining := burstLen
	var skip uint64
	var lastInv float64
	hasCkpt := false
	var last int64
	hasLast := false

	for _, v := range seq {
		if !profiling {
			remaining--
			if remaining == 0 {
				profiling = true
				remaining = burstLen
			}
			out.Skipped++
			continue
		}
		remaining--
		if remaining == 0 {
			inv := out.InvTop1()
			converged := hasCkpt && abs(inv-lastInv) < eps
			lastInv = inv
			hasCkpt = true
			if converged {
				if skip == 0 {
					skip = initialSkip
				} else {
					skip *= 2
					if skip > maxSkip {
						skip = maxSkip
					}
				}
				profiling = false
				remaining = skip
			} else {
				skip = 0
				remaining = burstLen
			}
		}
		if hasLast && v == last {
			out.LVPHits++
		}
		last, hasLast = v, true
		if v == 0 {
			out.Zeros++
		}
		out.TNV.Add(v)
		out.Profiled++
	}
	return out
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
