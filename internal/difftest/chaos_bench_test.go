package difftest

import "testing"

// BenchmarkPoolChaosBatched hammers the batched value buffers under
// pool-level chaos: supervised jobs profile through buffered sinks
// while PoolChaos kills, stalls, and corrupts attempts, and every
// salvaged or completed record is checked byte-identical / strictly
// loadable by ChaosCheck. Run under -race this is the smoke proof
// that no buffer flush is lost or duplicated when a run is cancelled
// mid-buffer and its partial profile salvaged (`make race-bench`).
// Each iteration uses a fresh seed so repeated runs broaden coverage
// rather than replay one chaos plan.
func BenchmarkPoolChaosBatched(b *testing.B) {
	for i := 0; i < b.N; i++ {
		seed := uint64(1 + i%64)
		rep := ChaosCheck(seed, ChaosOptions{})
		if rep.Failed() {
			for _, d := range rep.Divergences {
				b.Errorf("seed %d: %s", seed, d)
			}
			b.FailNow()
		}
		if rep.Completed+rep.Salvaged != rep.Jobs {
			b.Fatalf("seed %d: %d completed + %d salvaged != %d jobs",
				seed, rep.Completed, rep.Salvaged, rep.Jobs)
		}
	}
}
