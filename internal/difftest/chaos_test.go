package difftest

import "testing"

// TestChaosSweepSmoke runs the pool-level chaos harness over a few
// seeds (including seed%4==0 salvage seeds) as the tier-1 stand-in
// for the full `vfuzz -chaos` CI sweep.
func TestChaosSweepSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos sweep is not short")
	}
	var retried, resumed, salvaged, injected, corrupted int
	for seed := uint64(1); seed <= 8; seed++ {
		rep := ChaosCheck(seed, ChaosOptions{})
		if rep.Failed() {
			for _, d := range rep.Divergences {
				t.Errorf("seed %d: %s", seed, d)
			}
		}
		if rep.Completed+rep.Salvaged != rep.Jobs {
			t.Errorf("seed %d: %d completed + %d salvaged != %d jobs",
				seed, rep.Completed, rep.Salvaged, rep.Jobs)
		}
		retried += rep.Retried
		resumed += rep.Resumed
		salvaged += rep.Salvaged
		injected += rep.Injected
		corrupted += rep.Corrupted
	}
	// The sweep is pointless if chaos never bites: across 8 seeds some
	// kills, retries, and resumes must have happened.
	if injected == 0 || retried == 0 || resumed == 0 {
		t.Errorf("chaos too quiet: injected %d, retried %d, resumed %d", injected, retried, resumed)
	}
	t.Logf("8 seeds: %d injected, %d corrupted -> %d retried, %d resumed, %d salvaged",
		injected, corrupted, retried, resumed, salvaged)
}

// TestPooledReuseChaos is the pooled-reuse smoke for `-race` CI: the
// supervised pool recycles VMs and profilers through the parallel
// arena, so consecutive chaotic seeds hammer ResetFor on objects
// carrying state from killed, stalled, and checkpoint-corrupted
// attempts of *previous* seeds — the worst-case reuse pattern. Wide
// worker pools keep acquisitions and releases genuinely concurrent so
// the race detector sees the arena under contention; the verdicts
// themselves must stay as clean as fresh allocation.
func TestPooledReuseChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("pooled-reuse chaos is not short")
	}
	for seed := uint64(1); seed <= 4; seed++ {
		rep := ChaosCheck(seed, ChaosOptions{Variants: 6, Workers: 6})
		if rep.Failed() {
			for _, d := range rep.Divergences {
				t.Errorf("seed %d: %s", seed, d)
			}
		}
		if rep.Completed+rep.Salvaged != rep.Jobs {
			t.Errorf("seed %d: %d completed + %d salvaged != %d jobs",
				seed, rep.Completed, rep.Salvaged, rep.Jobs)
		}
	}
}

// TestChaosCheckDeterministic: the same seed must produce the same
// verdict and the same chaos plan (the whole point of seeding).
func TestChaosCheckDeterministic(t *testing.T) {
	a := ChaosCheck(3, ChaosOptions{})
	b := ChaosCheck(3, ChaosOptions{})
	if a.Failed() || b.Failed() {
		t.Fatalf("divergences: %v / %v", a.Divergences, b.Divergences)
	}
	if a.Injected != b.Injected || a.Corrupted != b.Corrupted || a.Stalled != b.Stalled {
		t.Errorf("chaos plan not deterministic: %+v vs %+v", a, b)
	}
	if a.Completed != b.Completed || a.Salvaged != b.Salvaged {
		t.Errorf("outcomes not deterministic: %+v vs %+v", a, b)
	}
}
