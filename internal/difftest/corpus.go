package difftest

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"valueprof/internal/atomicio"
	"valueprof/internal/progen"
)

// CorpusEntry is one checked-in regression case: a generator spec (not
// the emitted assembly, so it can be re-shrunk or re-emitted) plus the
// two input vectors the harness ran. Entries land in
// internal/difftest/testdata/corpus and are replayed by go test.
type CorpusEntry struct {
	Name string `json:"name"`
	// Note records why the entry exists: the divergence it reproduced,
	// or "seed" for coverage entries.
	Note   string      `json:"note,omitempty"`
	Spec   progen.Spec `json:"spec"`
	Input  []int64     `json:"input"`
	Input2 []int64     `json:"input2"`
}

// WriteCorpusEntry atomically writes the entry as dir/<name>.json and
// returns the path.
func WriteCorpusEntry(dir string, e *CorpusEntry) (string, error) {
	if e.Name == "" {
		return "", fmt.Errorf("difftest: corpus entry needs a name")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, e.Name+".json")
	err := atomicio.WriteFile(path, func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", " ")
		return enc.Encode(e)
	})
	if err != nil {
		return "", err
	}
	return path, nil
}

// LoadCorpus reads every *.json entry in dir, sorted by file name. A
// missing directory is an empty corpus, not an error.
func LoadCorpus(dir string) ([]*CorpusEntry, error) {
	names, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		return nil, err
	}
	sort.Strings(names)
	var out []*CorpusEntry
	for _, path := range names {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		e := &CorpusEntry{}
		if err := json.Unmarshal(data, e); err != nil {
			return nil, fmt.Errorf("difftest: corpus entry %s: %w", path, err)
		}
		if e.Name == "" {
			e.Name = strings.TrimSuffix(filepath.Base(path), ".json")
		}
		out = append(out, e)
	}
	return out, nil
}

// ReplayEntry builds the entry's program and runs the full harness
// over it.
func ReplayEntry(e *CorpusEntry, opts Options) (*Report, error) {
	prog, err := progen.Build(&e.Spec)
	if err != nil {
		return nil, fmt.Errorf("difftest: corpus entry %s: %w", e.Name, err)
	}
	return Check(prog, e.Name, e.Input, e.Input2, opts), nil
}
