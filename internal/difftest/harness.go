package difftest

import (
	"context"
	"encoding/json"
	"fmt"

	"valueprof/internal/analysis"
	"valueprof/internal/atom"
	"valueprof/internal/core"
	"valueprof/internal/parallel"
	"valueprof/internal/program"
	"valueprof/internal/vm"
)

// Options tunes the harness. Zero values select defaults chosen to
// exercise every profiler path on small generated programs: the
// stress TNV table is tiny with a short clear interval so LFU
// replacement and periodic clearing fire constantly, and the
// convergent sampler's bursts are short enough that loop sites
// actually reach the skip state.
type Options struct {
	StepLimit uint64         // execution budget per run (default 8M)
	TNV       core.TNVConfig // the paper's table (default 10/5/2000)
	Stress    core.TNVConfig // replacement-heavy table (default 4/2/16)
	Steady    core.TNVConfig // fully-steady table, every miss drops (default 3/3/8)
	Wide      core.TNVConfig // lossless table for merge checks (default 512/256/0)
	// Convergent parameterizes the sampled run (default 32/64/512/0.05).
	Convergent core.ConvergentConfig
	// InvTolerance is the epsilon term of the sampled-accuracy bound
	// (see checkConvergent); 0 selects Convergent.Epsilon.
	InvTolerance float64
	// Workers sizes the shard pool (default 2).
	Workers int
}

func (o Options) withDefaults() Options {
	if o.StepLimit == 0 {
		o.StepLimit = 8 << 20
	}
	if o.TNV.Size == 0 {
		o.TNV = core.DefaultTNVConfig()
	}
	if o.Stress.Size == 0 {
		o.Stress = core.TNVConfig{Size: 4, Steady: 2, ClearInterval: 16}
	}
	if o.Steady.Size == 0 {
		o.Steady = core.TNVConfig{Size: 3, Steady: 3, ClearInterval: 8}
	}
	if o.Wide.Size == 0 {
		o.Wide = core.TNVConfig{Size: 512, Steady: 256, ClearInterval: 0}
	}
	if o.Convergent.BurstLen == 0 {
		o.Convergent = core.ConvergentConfig{BurstLen: 32, InitialSkip: 64, MaxSkip: 512, Epsilon: 0.05}
	}
	if o.InvTolerance == 0 {
		o.InvTolerance = o.Convergent.Epsilon
	}
	if o.Workers == 0 {
		o.Workers = 2
	}
	return o
}

// Divergence is one broken property at one site.
type Divergence struct {
	Property string `json:"property"`
	PC       int    `json:"pc"`
	Site     string `json:"site,omitempty"`
	Detail   string `json:"detail"`
}

func (d Divergence) String() string {
	if d.PC < 0 {
		return fmt.Sprintf("[%s] %s", d.Property, d.Detail)
	}
	return fmt.Sprintf("[%s] pc %d (%s): %s", d.Property, d.PC, d.Site, d.Detail)
}

// Report is the outcome of one harness run over one program.
type Report struct {
	Program     string       `json:"program"`
	Sites       int          `json:"sites"`
	Execs       uint64       `json:"execs"` // reference observations on the primary input
	Divergences []Divergence `json:"divergences,omitempty"`
}

// Failed reports whether any property broke.
func (r *Report) Failed() bool { return len(r.Divergences) > 0 }

type harness struct {
	prog   *program.Program
	name   string
	opts   Options
	report *Report
}

func (h *harness) fail(property string, pc int, detail string, args ...any) {
	d := Divergence{Property: property, PC: pc, Detail: fmt.Sprintf(detail, args...)}
	if pc >= 0 {
		d.Site = h.prog.SiteName(pc)
	}
	h.report.Divergences = append(h.report.Divergences, d)
}

// run executes prog with the given tools; a run that does not complete
// is itself a divergence (generated programs terminate by
// construction).
func (h *harness) run(property string, input []int64, tools ...atom.Tool) (*vm.Result, bool) {
	res, outcome, err := atom.RunControlled(context.Background(), h.prog,
		atom.RunOptions{Input: input, StepLimit: h.opts.StepLimit}, tools...)
	if outcome != vm.OutcomeCompleted {
		h.fail(property, -1, "run did not complete: %v (%v)", outcome, err)
		return res, false
	}
	return res, true
}

func (h *harness) profiler(property string, opts core.Options) *core.ValueProfiler {
	vp, err := core.NewValueProfiler(opts)
	if err != nil {
		h.fail(property, -1, "profiler rejected options: %v", err)
		return nil
	}
	return vp
}

// Check runs every metamorphic property of the profiler over one
// program and two input vectors, returning all divergences found.
func Check(prog *program.Program, name string, input, input2 []int64, opts Options) *Report {
	h := &harness{prog: prog, name: name, opts: opts.withDefaults(),
		report: &Report{Program: name}}

	// Reference runs: exact value sequences for both inputs.
	ref := NewRefProfiler()
	resRef, ok := h.run("terminate", input, ref)
	if !ok {
		return h.report
	}
	ref2 := NewRefProfiler()
	if _, ok := h.run("terminate", input2, ref2); !ok {
		return h.report
	}
	h.report.Sites = len(ref.Seqs)
	for _, seq := range ref.Seqs {
		h.report.Execs += uint64(len(seq))
	}

	recFull, resFull := h.checkExact(ref, resRef, input)
	h.checkStressTNV(ref, input)
	h.checkSteadyTNV(ref, input)
	if recFull != nil {
		h.checkUnbatched(recFull, resFull, input)
		h.checkReuse(recFull, resFull, input, input2)
		h.checkUnfused(recFull, resFull, input)
		h.checkResume(recFull, input)
		cn := analysis.AnalyzeConstness(prog)
		h.checkPrune(cn, recFull, input)
		h.checkStaticOracle(cn, recFull)
		h.checkPredict(ref, recFull, input)
	}
	h.checkShardMerge(ref, ref2, input, input2)
	h.checkConvergent(ref, input)
	h.checkSampledBatch(input)
	return h.report
}

// checkExact asserts the optimized profiler with sampling off matches
// the reference exactly: counters, exact full profile, and a naive
// replay of the TNV replacement policy, plus execution transparency
// and run-to-run determinism. Returns the full-time record and run
// result for the downstream properties.
func (h *harness) checkExact(ref *RefProfiler, resRef *vm.Result, input []int64) (*core.ProfileRecord, *vm.Result) {
	const prop = "exact"
	vp := h.profiler(prop, core.Options{TNV: h.opts.TNV, TrackFull: true})
	if vp == nil {
		return nil, nil
	}
	res, ok := h.run(prop, input, vp)
	if !ok {
		return nil, nil
	}

	// Instrumentation transparency: profiling must not perturb the
	// execution itself.
	if res.Output != resRef.Output || res.ExitStatus != resRef.ExitStatus ||
		res.InstCount != resRef.InstCount || res.Cycles != resRef.Cycles {
		h.fail(prop, -1, "profiled execution differs from reference run (output %q vs %q, inst %d vs %d)",
			res.Output, resRef.Output, res.InstCount, resRef.InstCount)
	}

	profile := vp.Profile()
	for pc := range ref.Seqs {
		if profile.Site(pc) == nil {
			h.fail(prop, pc, "reference observed %d values but profiler has no site", len(ref.Seqs[pc]))
		}
	}
	for _, s := range profile.Sites {
		seq := ref.Seqs[s.PC]
		if s.Exec != uint64(len(seq)) {
			h.fail(prop, s.PC, "Exec %d != reference %d", s.Exec, len(seq))
			continue
		}
		if s.Skipped != 0 {
			h.fail(prop, s.PC, "Skipped %d with sampling off", s.Skipped)
		}
		if want := RefLVPHits(seq); s.LVPHits != want {
			h.fail(prop, s.PC, "LVPHits %d != reference %d", s.LVPHits, want)
		}
		if want := RefZeros(seq); s.Zeros != want {
			h.fail(prop, s.PC, "Zeros %d != reference %d", s.Zeros, want)
		}
		counts := RefCounts(seq)
		if s.Full == nil {
			h.fail(prop, s.PC, "TrackFull on but no full profile")
		} else {
			if s.Full.Total() != uint64(len(seq)) || s.Full.Distinct() != len(counts) {
				h.fail(prop, s.PC, "full profile total/distinct %d/%d != reference %d/%d",
					s.Full.Total(), s.Full.Distinct(), len(seq), len(counts))
			}
			for v, c := range counts {
				if got := s.Full.Count(v); got != c {
					h.fail(prop, s.PC, "full count of %d is %d, reference %d", v, got, c)
				}
			}
			// Inv-All numerators must agree as integers for every k.
			for _, k := range []int{1, 2, h.opts.TNV.Size} {
				var got uint64
				for _, e := range s.Full.Top(k) {
					got += e.Count
				}
				if want := RefTopKSum(counts, k); got != want {
					h.fail(prop, s.PC, "Inv-All(%d) numerator %d != reference %d", k, got, want)
				}
			}
		}
		if d := tnvDiff(s.TNV, SimulateTNV(seq, h.opts.TNV.Size, h.opts.TNV.Steady, h.opts.TNV.ClearInterval)); d != "" {
			h.fail(prop, s.PC, "TNV(default) %s", d)
		}
	}

	rec := profile.Record(h.name, "in0")

	// Determinism: a second identical run must serialize identically.
	vp2 := h.profiler(prop, core.Options{TNV: h.opts.TNV, TrackFull: true})
	if vp2 != nil {
		if _, ok := h.run(prop, input, vp2); ok {
			if a, b := mustJSON(rec), mustJSON(vp2.Profile().Record(h.name, "in0")); a != b {
				h.fail("determinism", -1, "two identical runs serialized differently")
			}
		}
	}
	return rec, res
}

// checkStressTNV replays the run against a tiny table with a short
// clear interval, so LFU eviction and periodic clearing fire on
// nearly every site — the configuration most sensitive to
// replacement-policy bugs.
func (h *harness) checkStressTNV(ref *RefProfiler, input []int64) {
	const prop = "tnv-stress"
	cfg := h.opts.Stress
	vp := h.profiler(prop, core.Options{TNV: cfg})
	if vp == nil {
		return
	}
	if _, ok := h.run(prop, input, vp); !ok {
		return
	}
	for _, s := range vp.Profile().Sites {
		seq := ref.Seqs[s.PC]
		if d := tnvDiff(s.TNV, SimulateTNV(seq, cfg.Size, cfg.Steady, cfg.ClearInterval)); d != "" {
			h.fail(prop, s.PC, "TNV(stress) %s", d)
		}
	}
}

// checkSteadyTNV replays the run against a fully-steady table (Steady
// == Size): once the table fills, every miss has no eviction candidate
// and must be dropped — the configuration that exercises the Dropped
// counter on nearly every site. Beyond the naive replay it asserts
// conservation: with no eviction possible and clearing never firing
// (the table never exceeds its steady part), every update either
// incremented an entry or was dropped.
func (h *harness) checkSteadyTNV(ref *RefProfiler, input []int64) {
	const prop = "tnv-steady"
	cfg := h.opts.Steady
	vp := h.profiler(prop, core.Options{TNV: cfg})
	if vp == nil {
		return
	}
	if _, ok := h.run(prop, input, vp); !ok {
		return
	}
	for _, s := range vp.Profile().Sites {
		seq := ref.Seqs[s.PC]
		if d := tnvDiff(s.TNV, SimulateTNV(seq, cfg.Size, cfg.Steady, cfg.ClearInterval)); d != "" {
			h.fail(prop, s.PC, "TNV(steady) %s", d)
		}
		var kept uint64
		for _, e := range s.TNV.Top(s.TNV.Len()) {
			kept += e.Count
		}
		if kept+s.TNV.Dropped() != s.TNV.Updates() {
			h.fail(prop, s.PC, "kept %d + dropped %d != updates %d on a fully-steady table",
				kept, s.TNV.Dropped(), s.TNV.Updates())
		}
	}
}

// checkUnbatched runs the profiler with batched value buffers forced
// off and requires both sides of the switch to be indistinguishable:
// the record must serialize byte-identically to the batched run's, and
// the execution itself (output, instruction count, cycles, analysis
// calls) must match — the batched path charges instrumentation
// overhead per observed value, not per flush.
func (h *harness) checkUnbatched(recFull *core.ProfileRecord, resFull *vm.Result, input []int64) {
	const prop = "unbatched"
	if resFull == nil {
		return
	}
	vp := h.profiler(prop, core.Options{TNV: h.opts.TNV, TrackFull: true, Unbatched: true})
	if vp == nil {
		return
	}
	res, ok := h.run(prop, input, vp)
	if !ok {
		return
	}
	if res.Output != resFull.Output || res.ExitStatus != resFull.ExitStatus ||
		res.InstCount != resFull.InstCount || res.Cycles != resFull.Cycles ||
		res.AnalysisCalls != resFull.AnalysisCalls {
		h.fail(prop, -1, "unbatched execution differs from batched (inst %d vs %d, cycles %d vs %d, analysis calls %d vs %d)",
			res.InstCount, resFull.InstCount, res.Cycles, resFull.Cycles,
			res.AnalysisCalls, resFull.AnalysisCalls)
	}
	if a, b := mustJSON(recFull), mustJSON(vp.Profile().Record(h.name, "in0")); a != b {
		h.fail(prop, -1, "unbatched profile differs from batched run:\n got %s\nwant %s", b, a)
	}
}

// checkReuse exercises the arena lifecycle directly: a VM and profiler
// are dirtied on the secondary input, rewound in place with ResetFor,
// and replayed on the primary input. Both the execution summary and
// the serialized profile must be byte-identical to the fresh-object
// run — reuse may not be observable. ResetFor is called explicitly
// (rather than through the sync.Pool arena) so the property is
// deterministic: a pool Get may always miss and hand back a fresh
// object, which would silently test nothing.
func (h *harness) checkReuse(recFull *core.ProfileRecord, resFull *vm.Result, input, input2 []int64) {
	const prop = "fresh-vs-reused"
	if resFull == nil {
		return
	}
	popts := core.Options{TNV: h.opts.TNV, TrackFull: true}
	vp := h.profiler(prop, popts)
	if vp == nil {
		return
	}
	ropts := atom.RunOptions{Input: input2, StepLimit: h.opts.StepLimit}
	v := atom.Prepare(h.prog, ropts, vp)
	if outcome, err := v.RunControlled(context.Background()); outcome != vm.OutcomeCompleted {
		h.fail(prop, -1, "dirtying run did not complete: %v (%v)", outcome, err)
		return
	}
	if err := vp.ResetFor(popts); err != nil {
		h.fail(prop, -1, "profiler ResetFor failed: %v", err)
		return
	}
	ropts.Input = input
	v.ResetFor(h.prog, ropts.EffectiveMemSize())
	atom.PrepareOn(v, ropts, vp)
	outcome, err := v.RunControlled(context.Background())
	if outcome != vm.OutcomeCompleted {
		h.fail(prop, -1, "reused run did not complete: %v (%v)", outcome, err)
		return
	}
	res := vm.ResultOf(v, outcome)
	if res.Output != resFull.Output || res.ExitStatus != resFull.ExitStatus ||
		res.InstCount != resFull.InstCount || res.Cycles != resFull.Cycles ||
		res.AnalysisCalls != resFull.AnalysisCalls {
		h.fail(prop, -1, "reused execution differs from fresh (inst %d vs %d, cycles %d vs %d, analysis calls %d vs %d)",
			res.InstCount, resFull.InstCount, res.Cycles, resFull.Cycles,
			res.AnalysisCalls, resFull.AnalysisCalls)
	}
	if a, b := mustJSON(recFull), mustJSON(vp.Profile().Record(h.name, "in0")); a != b {
		h.fail(prop, -1, "reused profile differs from fresh run:\n got %s\nwant %s", b, a)
	}
}

// checkUnfused re-runs the profiled execution with a no-op step hook
// attached. Step hooks disable every superinstruction (pairs and
// three-op fusions alike) but charge nothing, so the unfused run must
// be observably identical — instruction count, cycles, analysis calls,
// and the serialized profile. This pins the fused dispatch paths to
// the plain interpreter's semantics on every corpus program.
func (h *harness) checkUnfused(recFull *core.ProfileRecord, resFull *vm.Result, input []int64) {
	const prop = "fused-vs-unfused"
	if resFull == nil {
		return
	}
	vp := h.profiler(prop, core.Options{TNV: h.opts.TNV, TrackFull: true})
	if vp == nil {
		return
	}
	noFuse := atom.ToolFunc(func(ix *atom.Instrumenter) {
		ix.AddStep(func(*vm.VM) error { return nil })
	})
	res, ok := h.run(prop, input, vp, noFuse)
	if !ok {
		return
	}
	if res.Output != resFull.Output || res.ExitStatus != resFull.ExitStatus ||
		res.InstCount != resFull.InstCount || res.Cycles != resFull.Cycles ||
		res.AnalysisCalls != resFull.AnalysisCalls {
		h.fail(prop, -1, "unfused execution differs from fused (inst %d vs %d, cycles %d vs %d, analysis calls %d vs %d)",
			res.InstCount, resFull.InstCount, res.Cycles, resFull.Cycles,
			res.AnalysisCalls, resFull.AnalysisCalls)
	}
	if a, b := mustJSON(recFull), mustJSON(vp.Profile().Record(h.name, "in0")); a != b {
		h.fail(prop, -1, "unfused profile differs from fused run:\n got %s\nwant %s", b, a)
	}
}

// checkResume interrupts a run at half its instruction count,
// checkpoints profiler and VM, resumes both into fresh objects, and
// requires the resumed profile to serialize byte-identically to the
// uninterrupted run's.
func (h *harness) checkResume(recFull *core.ProfileRecord, input []int64) {
	const prop = "resume"
	vp := h.profiler(prop, core.Options{TNV: h.opts.TNV})
	if vp == nil {
		return
	}
	v := atom.Prepare(h.prog, atom.RunOptions{Input: input, StepLimit: h.opts.StepLimit}, vp)
	outcome, err := v.RunControlled(context.Background())
	if outcome != vm.OutcomeCompleted {
		h.fail(prop, -1, "full run failed: %v (%v)", outcome, err)
		return
	}
	half := v.InstCount / 2
	if half == 0 {
		return // nothing to interrupt
	}

	vp1 := h.profiler(prop, core.Options{TNV: h.opts.TNV})
	if vp1 == nil {
		return
	}
	v1 := atom.Prepare(h.prog, atom.RunOptions{Input: input, StepLimit: half}, vp1)
	if outcome, _ := v1.RunControlled(context.Background()); outcome != vm.OutcomeLimit {
		h.fail(prop, -1, "interrupted run: want limit outcome at step %d, got %v", half, outcome)
		return
	}
	ck, err := core.CheckpointOf(vp1, v1, h.name, "in0")
	if err != nil {
		h.fail(prop, -1, "checkpoint failed: %v", err)
		return
	}

	// Round-trip through the wire format, as a real resume would.
	vp2 := h.profiler(prop, core.Options{TNV: h.opts.TNV})
	if vp2 == nil {
		return
	}
	if err := vp2.Seed(ck); err != nil {
		h.fail(prop, -1, "seeding resumed profiler failed: %v", err)
		return
	}
	v2 := atom.Prepare(h.prog, atom.RunOptions{Input: input, StepLimit: h.opts.StepLimit}, vp2)
	if err := ck.RestoreVM(v2); err != nil {
		h.fail(prop, -1, "restoring VM failed: %v", err)
		return
	}
	if outcome, err := v2.RunControlled(context.Background()); outcome != vm.OutcomeCompleted {
		h.fail(prop, -1, "resumed run failed: %v (%v)", outcome, err)
		return
	}
	if a, b := mustJSON(recFull), mustJSON(vp2.Profile().Record(h.name, "in0")); a != b {
		h.fail(prop, -1, "resumed profile differs from uninterrupted run:\n got %s\nwant %s", b, a)
	}
}

// checkShardMerge runs the program over two inputs as parallel shards
// and as one concatenated serial run, then compares Profile.Merge
// against the concatenation: counters exact, full profiles exact,
// LVP hits short by at most the one splice-boundary hit per site, and
// — when the wide table provably never evicted — TNV counts exact.
func (h *harness) checkShardMerge(ref, ref2 *RefProfiler, input, input2 []int64) {
	const prop = "shard-merge"
	wide := core.Options{TNV: h.opts.Wide, TrackFull: true}

	vpConcat := h.profiler(prop, wide)
	if vpConcat == nil {
		return
	}
	if _, ok := h.run(prop, input, vpConcat); !ok {
		return
	}
	if _, ok := h.run(prop, input2, vpConcat); !ok {
		return
	}
	concat := vpConcat.Profile()

	jobs := []parallel.ProgJob{
		{Name: h.name + "/shard0", Prog: h.prog, Input: input, Options: wide,
			Run: atom.RunOptions{StepLimit: h.opts.StepLimit}},
		{Name: h.name + "/shard1", Prog: h.prog, Input: input2, Options: wide,
			Run: atom.RunOptions{StepLimit: h.opts.StepLimit}},
	}
	results := parallel.RunProgs(context.Background(), h.opts.Workers, jobs)
	merged, err := parallel.MergeProgShards(results)
	if err != nil {
		h.fail(prop, -1, "shard run failed: %v", err)
		return
	}

	if merged.Skipped != 0 || concat.Skipped != 0 {
		h.fail(prop, -1, "skips recorded with sampling off (merged %d, concat %d)", merged.Skipped, concat.Skipped)
	}
	for _, cs := range concat.Sites {
		ms := merged.Site(cs.PC)
		if ms == nil {
			h.fail(prop, cs.PC, "site missing from merged profile")
			continue
		}
		seqLen := uint64(len(ref.Seqs[cs.PC]) + len(ref2.Seqs[cs.PC]))
		if cs.Exec != seqLen || ms.Exec != seqLen {
			h.fail(prop, cs.PC, "Exec concat %d / merged %d != reference %d", cs.Exec, ms.Exec, seqLen)
			continue
		}
		if cs.Zeros != ms.Zeros {
			h.fail(prop, cs.PC, "Zeros concat %d != merged %d", cs.Zeros, ms.Zeros)
		}
		// Merging concatenates the shards' value streams except that
		// the hit (or miss) at the splice point is unobservable: the
		// merged count may undercount by at most 1.
		if ms.LVPHits > cs.LVPHits || cs.LVPHits-ms.LVPHits > 1 {
			h.fail(prop, cs.PC, "LVPHits merged %d vs concat %d (allowed undercount ≤ 1)", ms.LVPHits, cs.LVPHits)
		}
		if cs.Full == nil || ms.Full == nil {
			h.fail(prop, cs.PC, "full profile missing (concat %v, merged %v)", cs.Full != nil, ms.Full != nil)
			continue
		}
		combined := RefCounts(ref.Seqs[cs.PC])
		for v, c := range RefCounts(ref2.Seqs[cs.PC]) {
			combined[v] += c
		}
		for v, c := range combined {
			if cs.Full.Count(v) != c || ms.Full.Count(v) != c {
				h.fail(prop, cs.PC, "full count of %d: concat %d, merged %d, reference %d",
					v, cs.Full.Count(v), ms.Full.Count(v), c)
			}
		}
		// With every distinct value fitting in the wide table and
		// clearing off, the TNV tables are lossless: both views must
		// hold exactly the reference counts.
		if len(combined) <= h.opts.Wide.Size {
			for viewName, s := range map[string]*core.SiteStats{"concat": cs, "merged": ms} {
				got := map[int64]uint64{}
				for _, e := range s.TNV.Top(s.TNV.Len()) {
					got[e.Value] = e.Count
				}
				if len(got) != len(combined) {
					h.fail(prop, cs.PC, "%s TNV has %d entries, reference %d", viewName, len(got), len(combined))
					continue
				}
				for v, c := range combined {
					if got[v] != c {
						h.fail(prop, cs.PC, "%s TNV count of %d is %d, reference %d", viewName, v, got[v], c)
					}
				}
			}
		}
	}
}

// checkPrune compares a prune-on run against the prune-off record:
// surviving sites must serialize byte-identically, and every dropped
// site must be one the static analysis vetoed.
func (h *harness) checkPrune(cn *analysis.Constness, recFull *core.ProfileRecord, input []int64) {
	const prop = "prune"
	vp := h.profiler(prop, core.Options{TNV: h.opts.TNV, Prune: cn.ShouldPrune})
	if vp == nil {
		return
	}
	if _, ok := h.run(prop, input, vp); !ok {
		return
	}
	rec := vp.Profile().Record(h.name, "in0")

	fullByPC := map[int]*core.SiteRecord{}
	for i := range recFull.Sites {
		fullByPC[recFull.Sites[i].PC] = &recFull.Sites[i]
	}
	prunedByPC := map[int]bool{}
	for i := range rec.Sites {
		s := &rec.Sites[i]
		prunedByPC[s.PC] = true
		want, ok := fullByPC[s.PC]
		if !ok {
			h.fail(prop, s.PC, "site appears only in the prune-on record")
			continue
		}
		if mustJSON(s) != mustJSON(want) {
			h.fail(prop, s.PC, "surviving site differs from prune-off run:\n got %s\nwant %s",
				mustJSON(s), mustJSON(want))
		}
	}
	for pc := range fullByPC {
		if !prunedByPC[pc] && !cn.ShouldPrune(pc, h.prog.Code[pc]) {
			h.fail(prop, pc, "site dropped by pruning but not vetoed by static analysis")
		}
	}
}

// checkStaticOracle cross-checks the dynamic record against the
// static constness facts (a proven-constant site must have profiled
// exactly its proven value, an unreached site must have no record).
func (h *harness) checkStaticOracle(cn *analysis.Constness, recFull *core.ProfileRecord) {
	for _, c := range analysis.CheckRecord(cn, recFull) {
		h.fail("static-oracle", c.PC, "%s", c.String())
	}
}

// checkPredict asserts the predictive-invariance contract. The proved
// tier is held to oracle standard: no recorded profile may contradict
// a proved claim (constant value, unreachability, interval membership,
// at-most-once execution). Then the adaptive budget derived from the
// prediction is run and checked structurally: skipped sites must be
// exactly the proved tier, every site still accounts for all its
// executions, full-budget sites must serialize byte-identically to the
// unpruned record, and the plan may never observe more executions than
// static pruning would have.
func (h *harness) checkPredict(ref *RefProfiler, recFull *core.ProfileRecord, input []int64) {
	const prop = "predict"
	pred := analysis.Predict(h.prog)
	for _, c := range pred.CheckRecord(recFull) {
		h.fail(prop, c.PC, "proved-tier contradiction: %s", c.String())
	}

	plan := pred.Plan(h.opts.Convergent)
	vp := h.profiler(prop, core.Options{TNV: h.opts.TNV, AdaptiveBudget: &plan})
	if vp == nil {
		return
	}
	if _, ok := h.run(prop, input, vp); !ok {
		return
	}
	rec := vp.Profile().Record(h.name, "in0")

	fullByPC := map[int]*core.SiteRecord{}
	for i := range recFull.Sites {
		fullByPC[recFull.Sites[i].PC] = &recFull.Sites[i]
	}
	var fullObs, staticObs, adaptObs uint64
	cn := pred.Constness
	for pc, s := range fullByPC {
		fullObs += s.Exec
		if !cn.ShouldPrune(pc, h.prog.Code[pc]) {
			staticObs += s.Exec
		}
	}
	for i := range rec.Sites {
		s := &rec.Sites[i]
		adaptObs += s.Exec
		budget := plan.Budget(s.PC, h.prog.Code[s.PC])
		if budget == core.BudgetSkip {
			h.fail(prop, s.PC, "proved-tier site was profiled under the adaptive budget")
			continue
		}
		want, ok := fullByPC[s.PC]
		if !ok {
			h.fail(prop, s.PC, "site appears only in the adaptive record")
			continue
		}
		if budget == core.BudgetFull {
			if mustJSON(s) != mustJSON(want) {
				h.fail(prop, s.PC, "full-budget site differs from unpruned run:\n got %s\nwant %s",
					mustJSON(s), mustJSON(want))
			}
			continue
		}
		// Sampled: every execution is either observed or accounted as
		// skipped, never lost.
		if seq := ref.Seqs[s.PC]; s.Exec+vp.Profile().Site(s.PC).Skipped != uint64(len(seq)) {
			h.fail(prop, s.PC, "sampled site profiled %d + skipped %d != executions %d",
				s.Exec, vp.Profile().Site(s.PC).Skipped, len(seq))
		}
	}
	if adaptObs > staticObs {
		h.fail(prop, -1, "adaptive budget observed %d executions, static pruning only %d (of %d total)",
			adaptObs, staticObs, fullObs)
	}
}

// checkConvergent runs the intelligent sampler and asserts its
// contract twice over. First, exactly: which executions get profiled
// is a deterministic function of the value stream, so every counter
// and TNV entry of the sampled run must equal a naive replay of the
// burst/skip state machine (SimulateConvergent). Second, accuracy:
// the sampled Inv-Top(1) must stay within a provable distance of the
// exact Inv-All(1). Epsilon alone is NOT that distance — the
// convergence criterion only bounds checkpoint-to-checkpoint drift of
// the estimate, and values arriving during skip windows are
// unobservable in principle — so the bound is the sum of the three
// error sources:
//
//	InvTolerance (≈ epsilon)  drift below the convergence criterion
//	skipped/executions        executions the sampler never saw
//	lost/profiled             TNV counts the table did not retain:
//	                          shed by eviction or clearing, or dropped
//	                          outright against a full fully-steady table
func (h *harness) checkConvergent(ref *RefProfiler, input []int64) {
	const prop = "convergent"
	cfg := h.opts.Convergent
	tnv := h.opts.TNV
	vp := h.profiler(prop, core.Options{TNV: tnv, Convergent: &cfg})
	if vp == nil {
		return
	}
	if _, ok := h.run(prop, input, vp); !ok {
		return
	}
	for _, s := range vp.Profile().Sites {
		seq := ref.Seqs[s.PC]
		if s.Exec+s.Skipped != uint64(len(seq)) {
			h.fail(prop, s.PC, "profiled %d + skipped %d != executions %d", s.Exec, s.Skipped, len(seq))
			continue
		}
		sim := SimulateConvergent(seq, tnv.Size, tnv.Steady, tnv.ClearInterval,
			cfg.BurstLen, cfg.InitialSkip, cfg.MaxSkip, cfg.Epsilon)
		if s.Exec != sim.Profiled || s.Skipped != sim.Skipped {
			h.fail(prop, s.PC, "profiled/skipped %d/%d != naive sampler replay %d/%d",
				s.Exec, s.Skipped, sim.Profiled, sim.Skipped)
			continue
		}
		if s.LVPHits != sim.LVPHits {
			h.fail(prop, s.PC, "LVPHits %d != naive sampler replay %d", s.LVPHits, sim.LVPHits)
		}
		if s.Zeros != sim.Zeros {
			h.fail(prop, s.PC, "Zeros %d != naive sampler replay %d", s.Zeros, sim.Zeros)
		}
		if d := tnvDiff(s.TNV, sim.TNV); d != "" {
			h.fail(prop, s.PC, "sampled TNV %s", d)
		}

		// Accuracy bound. The table loss is computable from the replay:
		// counts currently in the table versus values ever added.
		var kept uint64
		for _, e := range sim.TNV.Entries {
			kept += e.Count
		}
		bound := h.opts.InvTolerance + 1e-9
		if n := uint64(len(seq)); n > 0 {
			bound += float64(s.Skipped) / float64(n)
		}
		if sim.TNV.Updates > 0 {
			bound += float64(sim.TNV.Updates-kept) / float64(sim.TNV.Updates)
		}
		got, want := s.TNV.InvTop(1), RefInvAll(seq, 1)
		if diff := got - want; diff < -bound || diff > bound {
			h.fail(prop, s.PC, "sampled Inv-Top(1) %.4f vs exact Inv-All(1) %.4f exceeds bound %.4f (exec %d, skipped %d)",
				got, want, bound, s.Exec, s.Skipped)
		}
	}
}

// checkSampledBatch pins the batch-replayable sampling path: a
// convergently sampled run through the buffered sinks (the default)
// against the same run with Unbatched forced on, where the sampler
// makes its decision per execution inside the hook closure. The
// decision sequence is a deterministic function of the value stream,
// so replaying it over flushed batches must profile exactly the same
// executions — both records serialize byte-identically and the
// execution summaries (including analysis-call counts) agree.
func (h *harness) checkSampledBatch(input []int64) {
	const prop = "sampled-batch"
	cfgB, cfgU := h.opts.Convergent, h.opts.Convergent
	vpB := h.profiler(prop, core.Options{TNV: h.opts.TNV, Convergent: &cfgB})
	if vpB == nil {
		return
	}
	resB, ok := h.run(prop, input, vpB)
	if !ok {
		return
	}
	vpU := h.profiler(prop, core.Options{TNV: h.opts.TNV, Convergent: &cfgU, Unbatched: true})
	if vpU == nil {
		return
	}
	resU, ok := h.run(prop, input, vpU)
	if !ok {
		return
	}
	if resB.Output != resU.Output || resB.ExitStatus != resU.ExitStatus ||
		resB.InstCount != resU.InstCount || resB.Cycles != resU.Cycles ||
		resB.AnalysisCalls != resU.AnalysisCalls {
		h.fail(prop, -1, "batched sampled execution differs from unbatched (inst %d vs %d, cycles %d vs %d, analysis calls %d vs %d)",
			resB.InstCount, resU.InstCount, resB.Cycles, resU.Cycles,
			resB.AnalysisCalls, resU.AnalysisCalls)
	}
	if a, b := mustJSON(vpB.Profile().Record(h.name, "in0")), mustJSON(vpU.Profile().Record(h.name, "in0")); a != b {
		h.fail(prop, -1, "batched sampled profile differs from unbatched:\n got %s\nwant %s", a, b)
	}
}

// tnvDiff compares an optimized table against the naive replay and
// describes the first difference, or returns "".
func tnvDiff(t *core.TNVTable, ref *RefTNV) string {
	if t.Updates() != ref.Updates {
		return fmt.Sprintf("updates %d != reference %d", t.Updates(), ref.Updates)
	}
	if t.Dropped() != ref.Dropped {
		return fmt.Sprintf("dropped %d != reference %d", t.Dropped(), ref.Dropped)
	}
	if t.Clears() != ref.Clears {
		return fmt.Sprintf("clears %d != reference %d", t.Clears(), ref.Clears)
	}
	entries := t.Top(t.Len())
	if len(entries) != len(ref.Entries) {
		return fmt.Sprintf("has %d entries, reference %d", len(entries), len(ref.Entries))
	}
	for i := range entries {
		if entries[i].Value != ref.Entries[i].Value || entries[i].Count != ref.Entries[i].Count {
			return fmt.Sprintf("entry %d is %d:%d, reference %d:%d", i,
				entries[i].Value, entries[i].Count, ref.Entries[i].Value, ref.Entries[i].Count)
		}
	}
	return ""
}

func mustJSON(v any) string {
	b, err := json.Marshal(v)
	if err != nil {
		panic(err)
	}
	return string(b)
}
