package difftest

import (
	"bytes"
	"context"
	"fmt"
	"time"

	"valueprof/internal/core"
	"valueprof/internal/faultinject"
	"valueprof/internal/progen"
	"valueprof/internal/supervise"
)

// This file is the pool-level chaos harness: one seed generates one
// program, fans it out as several supervised jobs (one per input
// variant), and lets faultinject.PoolChaos kill, stall, and corrupt
// the attempts. The properties checked are the supervised runtime's
// contract:
//
//   - every job ends Completed or Salvaged — chaos within the retry
//     budget must never produce a lost job;
//   - a job that completed (with or without retries) has a profile
//     byte-identical to its fault-free baseline run;
//   - every salvaged partial record passes the strict loader;
//   - the merge of all usable records passes the strict loader — no
//     corrupt merged profiles, ever.
//
// Hangs are not checked here: the caller (vfuzz -chaos) wraps each
// seed in a wall-clock watchdog.

// ChaosOptions tunes the chaos sweep. Zero values select defaults
// sized for CI: small bursts of chaos on every job with a guaranteed
// clean attempt inside the retry budget.
type ChaosOptions struct {
	// Variants is the number of supervised jobs (input variants) per
	// seed (default 4).
	Variants int
	// Workers sizes the pool (default 4, so jobs genuinely race).
	Workers int
	// StepLimit bounds each attempt's baseline execution (default 8M).
	StepLimit uint64
	// MaxAttempts bounds retries per job (default CleanAfter+3).
	MaxAttempts int
	// CleanAfter is the last attempt chaos may disturb (default 3).
	CleanAfter int
	// Stall is the injected stall duration (default 1ms; keep small —
	// stalls burn real wall clock).
	Stall time.Duration
	// CorruptEvery corrupts ~1/N carried checkpoints (default 2).
	CorruptEvery int
}

func (o ChaosOptions) withDefaults() ChaosOptions {
	if o.Variants <= 0 {
		o.Variants = 4
	}
	if o.Workers <= 0 {
		o.Workers = 4
	}
	if o.StepLimit == 0 {
		o.StepLimit = 8 << 20
	}
	if o.CleanAfter <= 0 {
		o.CleanAfter = 3
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = o.CleanAfter + 3
	}
	if o.Stall == 0 {
		o.Stall = time.Millisecond
	}
	if o.CorruptEvery == 0 {
		o.CorruptEvery = 2
	}
	return o
}

// ChaosReport is the outcome of one seed's chaos check.
type ChaosReport struct {
	Seed uint64 `json:"seed"`
	Jobs int    `json:"jobs"`
	// Final job states.
	Completed int `json:"completed"`
	Salvaged  int `json:"salvaged"`
	// Supervision activity.
	Retried            int `json:"retried"` // jobs needing >1 attempt
	Resumed            int `json:"resumed"` // checkpoint-resumed attempts
	CorruptCheckpoints int `json:"corruptCheckpoints"`
	// Chaos activity.
	Injected  int `json:"injected"`
	Stalled   int `json:"stalled"`
	Corrupted int `json:"corrupted"`

	Divergences []Divergence `json:"divergences,omitempty"`
}

// Failed reports whether any property broke.
func (r *ChaosReport) Failed() bool { return len(r.Divergences) > 0 }

func (r *ChaosReport) fail(property, detail string, args ...any) {
	r.Divergences = append(r.Divergences, Divergence{
		Property: property, PC: -1, Detail: fmt.Sprintf(detail, args...),
	})
}

// chaosRecordBytes serializes a job's record with the attempt count
// normalized away: a retried success may say it retried, but the
// profile payload must match the fault-free run byte for byte.
func chaosRecordBytes(r *supervise.JobReport) ([]byte, error) {
	rec := r.Record()
	if rec == nil {
		return nil, fmt.Errorf("no usable record (state %v)", r.State)
	}
	rec.Attempts = 0
	var buf bytes.Buffer
	if err := rec.WriteJSON(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// ChaosCheck runs one seed's program through the supervised pool under
// injected chaos and checks the runtime's robustness contract.
func ChaosCheck(seed uint64, opts ChaosOptions) *ChaosReport {
	o := opts.withDefaults()
	rep := &ChaosReport{Seed: seed, Jobs: o.Variants}

	spec := progen.Generate(progen.Config{Seed: seed})
	prog, err := progen.Build(&spec)
	if err != nil {
		rep.fail("generate", "building seed %d: %v", seed, err)
		return rep
	}
	name := fmt.Sprintf("seed%d", seed)
	jobs := make([]supervise.Job, o.Variants)
	for i := range jobs {
		jobs[i] = supervise.Job{
			Name:      name,
			InputName: fmt.Sprintf("in%d", i),
			Prog:      prog,
			Input:     progen.InputFor(&spec, uint64(i)),
			Options:   core.Options{TNV: core.DefaultTNVConfig()},
		}
		jobs[i].Run.StepLimit = o.StepLimit
		jobs[i].Run.Quantum = 64 // tiny programs must still hit control checks
	}

	// Fault-free baseline, one record per variant.
	base := supervise.Run(context.Background(), o.Workers, jobs, supervise.Policy{})
	want := make([][]byte, o.Variants)
	for i := range base.Jobs {
		if base.Jobs[i].State != supervise.StateCompleted {
			rep.fail("baseline", "job %s did not complete: %v (%v)",
				jobs[i].InputName, base.Jobs[i].Outcome, base.Jobs[i].Err)
			return rep
		}
		if want[i], err = chaosRecordBytes(&base.Jobs[i]); err != nil {
			rep.fail("baseline", "job %s: %v", jobs[i].InputName, err)
			return rep
		}
	}
	var maxInst uint64
	for i := range base.Jobs {
		if n := base.Jobs[i].Exec.InstCount; n > maxInst {
			maxInst = n
		}
	}

	chaos := &faultinject.PoolChaos{
		Seed:         seed,
		MaxAt:        maxInst,
		CleanAfter:   o.CleanAfter,
		Stall:        o.Stall,
		CorruptEvery: o.CorruptEvery,
	}
	// A quarter of the seeds get a retry budget smaller than the chaos
	// window, so some jobs exhaust their attempts mid-chaos and the
	// salvage path gets swept too (the rest verify full recovery).
	maxAttempts := o.MaxAttempts
	if seed%4 == 0 {
		maxAttempts = 2
	}
	res := supervise.Run(context.Background(), o.Workers, jobs, supervise.Policy{
		MaxAttempts:    maxAttempts,
		Resume:         true,
		SalvagePartial: true,
		Seed:           seed,
		Chaos:          chaos,
	})
	rep.Injected, rep.Stalled, rep.Corrupted = chaos.Stats()

	var mergeable []*core.ProfileRecord
	for i := range res.Jobs {
		r := &res.Jobs[i]
		rep.Resumed += r.Resumed
		rep.CorruptCheckpoints += r.CorruptCheckpoints
		if r.Attempts > 1 {
			rep.Retried++
		}
		switch r.State {
		case supervise.StateCompleted:
			rep.Completed++
			got, err := chaosRecordBytes(r)
			if err != nil {
				rep.fail("identity", "job %s: %v", r.Job.InputName, err)
				continue
			}
			if !bytes.Equal(got, want[i]) {
				rep.fail("identity", "job %s (attempts %d, resumed %d): retried profile differs from fault-free run",
					r.Job.InputName, r.Attempts, r.Resumed)
				continue
			}
			mergeable = append(mergeable, r.Record())
		case supervise.StateSalvaged:
			rep.Salvaged++
			rec := r.Record()
			if rec == nil || !rec.Salvaged {
				rep.fail("salvage", "job %s salvaged without provenance mark", r.Job.InputName)
				continue
			}
			if err := strictRecordRoundTrip(rec); err != nil {
				rep.fail("salvage", "job %s salvaged record fails strict load: %v", r.Job.InputName, err)
				continue
			}
			mergeable = append(mergeable, rec)
		default:
			rep.fail("job-state", "job %s ended %v (%v) under chaos the retry budget should absorb",
				r.Job.InputName, r.State, r.Err)
		}
	}

	// No corrupt merged profiles: the fold of every usable record must
	// itself survive the strict loader.
	if len(mergeable) > 0 {
		merged := mergeable[0]
		for _, rec := range mergeable[1:] {
			if merged, err = core.MergeRecords(merged, rec); err != nil {
				rep.fail("merge", "merging records: %v", err)
				return rep
			}
		}
		if err := strictRecordRoundTrip(merged); err != nil {
			rep.fail("merge", "merged record fails strict load: %v", err)
		}
		if rep.Salvaged > 0 && !merged.Salvaged {
			rep.fail("merge", "merge including salvaged partials lost the Salvaged mark")
		}
		if _, _, err := res.MergeUsable(); err != nil {
			rep.fail("merge", "profile-level merge: %v", err)
		}
	} else {
		rep.fail("merge", "no usable profiles at all out of %d jobs", o.Variants)
	}
	return rep
}

// strictRecordRoundTrip pushes a record through the serializer and the
// strict loader, the gate every artifact must pass.
func strictRecordRoundTrip(rec *core.ProfileRecord) error {
	var buf bytes.Buffer
	if err := rec.WriteJSON(&buf); err != nil {
		return err
	}
	_, err := core.ReadProfileRecord(&buf)
	return err
}
