package difftest

import (
	"testing"

	"valueprof/internal/core"
)

// TestRefMetricsHandComputed pins the straight-line metrics to tiny
// hand-computed cases, so the oracle itself has an oracle.
func TestRefMetricsHandComputed(t *testing.T) {
	seq := []int64{7, 7, 0, 7, 3, 3}
	if got := RefLVPHits(seq); got != 2 { // 7→7 and 3→3
		t.Fatalf("RefLVPHits = %d, want 2", got)
	}
	if got := RefZeros(seq); got != 1 {
		t.Fatalf("RefZeros = %d, want 1", got)
	}
	if got := RefInvAll(seq, 1); got != 3.0/6.0 {
		t.Fatalf("RefInvAll(1) = %v, want 0.5", got)
	}
	if got := RefInvAll(seq, 2); got != 5.0/6.0 {
		t.Fatalf("RefInvAll(2) = %v, want 5/6", got)
	}
	if got := RefLVP(seq); got != 2.0/6.0 {
		t.Fatalf("RefLVP = %v, want 1/3", got)
	}
	if got, want := RefDiff(seq), RefInvAll(seq, 1)-RefLVP(seq); got != want {
		t.Fatalf("RefDiff = %v, want %v", got, want)
	}
	top := RefTop(RefCounts(seq))
	if top[0] != (RefEntry{Value: 7, Count: 3}) || top[1] != (RefEntry{Value: 3, Count: 2}) {
		t.Fatalf("RefTop order wrong: %v", top)
	}
	// Ties break by value ascending.
	tied := RefTop(RefCounts([]int64{5, 2, 2, 5}))
	if tied[0].Value != 2 || tied[1].Value != 5 {
		t.Fatalf("tie order wrong: %v", tied)
	}
	if RefInvAll(nil, 1) != 0 || RefLVP(nil) != 0 || RefPctZero(nil) != 0 {
		t.Fatal("empty-sequence metrics must be 0")
	}
}

func TestSimulateTNVClearingAndEviction(t *testing.T) {
	// Size 2, steady 1, clear every 4 updates. Walk a stream that
	// exercises hit, miss-append, miss-evict, and a real clear.
	seq := []int64{1, 1, 2, 3 /* clear fires here */, 4, 4, 4, 5}
	tab := SimulateTNV(seq, 2, 1, 4)
	// After 1,1,2: entries 1:2, 2:1. Add 3: table full → evict last
	// → 1:2, 3:1; that is update 4 → clear truncates to steady → 1:2.
	// Then 4,4,4 → 1:2, 4:3 → sorted 4:3, 1:2; update 8 → clear →
	// 4:3. Then... seq has 8 values; last is 5: arrives before the
	// second clear? Updates: 5th=4,6th=4,7th=4,8th=5 → 5 evicts 1
	// (4:3, 5:1), then sinceClear hits 4 → clear → 4:3.
	if tab.Updates != 8 || tab.Clears != 2 {
		t.Fatalf("updates/clears = %d/%d, want 8/2", tab.Updates, tab.Clears)
	}
	if len(tab.Entries) != 1 || tab.Entries[0] != (RefEntry{Value: 4, Count: 3}) {
		t.Fatalf("entries = %v, want [4:3]", tab.Entries)
	}
}

// TestSimulateConvergentHandComputed walks the burst/skip state
// machine through two tiny streams with pre-computed outcomes: a
// constant stream exercising geometric backoff, and a phase-change
// stream exercising the re-arm (skip reset) path.
func TestSimulateConvergentHandComputed(t *testing.T) {
	// Constant stream, burst 4, skips 2→4 (cap 8): profile 1-8
	// (converging at the 8th), skip 9-10, profile 11-14 (converging
	// again, skip doubles to 4), skip 15-18, profile 19-20.
	constant := make([]int64, 20)
	for i := range constant {
		constant[i] = 5
	}
	sim := SimulateConvergent(constant, 10, 5, 0, 4, 2, 8, 0.25)
	if sim.Profiled != 14 || sim.Skipped != 6 {
		t.Fatalf("constant: profiled/skipped = %d/%d, want 14/6", sim.Profiled, sim.Skipped)
	}
	if sim.LVPHits != 13 || sim.Zeros != 0 {
		t.Fatalf("constant: lvp/zeros = %d/%d, want 13/0", sim.LVPHits, sim.Zeros)
	}
	if len(sim.TNV.Entries) != 1 || sim.TNV.Entries[0] != (RefEntry{Value: 5, Count: 14}) {
		t.Fatalf("constant: entries = %v, want [5:14]", sim.TNV.Entries)
	}
	if sim.InvTop1() != 1.0 {
		t.Fatalf("constant: InvTop1 = %v, want 1", sim.InvTop1())
	}

	// Phase change 1→2, burst 2, skips 2→…: the drift at the third and
	// fourth checkpoints exceeds epsilon, re-arming continuous
	// profiling and resetting the backoff, so the final skip is
	// InitialSkip again rather than a doubled one.
	phased := []int64{1, 1, 1, 1, 1, 1, 2, 2, 2, 2, 2, 2, 2, 2}
	sim = SimulateConvergent(phased, 10, 5, 0, 2, 2, 8, 0.15)
	if sim.Profiled != 10 || sim.Skipped != 4 {
		t.Fatalf("phased: profiled/skipped = %d/%d, want 10/4", sim.Profiled, sim.Skipped)
	}
	if sim.LVPHits != 8 {
		t.Fatalf("phased: lvp = %d, want 8", sim.LVPHits)
	}
	want := []RefEntry{{Value: 2, Count: 6}, {Value: 1, Count: 4}}
	if len(sim.TNV.Entries) != 2 || sim.TNV.Entries[0] != want[0] || sim.TNV.Entries[1] != want[1] {
		t.Fatalf("phased: entries = %v, want %v", sim.TNV.Entries, want)
	}
}

// TestRefTNVMatchesCoreTable is the unit-level differential check: the
// optimized TNVTable and the naive replay must agree entry-for-entry
// on randomized streams across configurations, including the
// steady==size (never evict) and clearing-off corners.
func TestRefTNVMatchesCoreTable(t *testing.T) {
	configs := []core.TNVConfig{
		{Size: 10, Steady: 5, ClearInterval: 2000},
		{Size: 4, Steady: 2, ClearInterval: 16},
		{Size: 4, Steady: 4, ClearInterval: 8},
		{Size: 3, Steady: 0, ClearInterval: 5},
		{Size: 8, Steady: 4, ClearInterval: 0},
		{Size: 1, Steady: 1, ClearInterval: 3},
	}
	rng := uint64(0x1234)
	next := func() uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng
	}
	for _, cfg := range configs {
		for trial := 0; trial < 20; trial++ {
			tab := core.NewTNV(cfg)
			ref := &RefTNV{Size: cfg.Size, Steady: cfg.Steady, ClearInterval: cfg.ClearInterval}
			n := 50 + int(next()%500)
			vals := 2 + int(next()%12) // small domains force hits and ties
			for i := 0; i < n; i++ {
				v := int64(next() % uint64(vals))
				tab.Add(v)
				ref.Add(v)
				if d := tnvDiff(tab, ref); d != "" {
					t.Fatalf("cfg %+v trial %d after %d adds: %s", cfg, trial, i+1, d)
				}
			}
		}
	}
}
