package difftest

import (
	"strings"
	"testing"

	"valueprof/internal/progen"
)

// TestHarnessCleanOnGeneratedPrograms is the in-tree slice of what
// cmd/vfuzz runs at scale: every metamorphic property must hold on
// generated programs.
func TestHarnessCleanOnGeneratedPrograms(t *testing.T) {
	seeds := 60
	if testing.Short() {
		seeds = 10
	}
	for seed := uint64(1); seed <= uint64(seeds); seed++ {
		spec := progen.Generate(progen.Config{Seed: seed})
		prog, err := progen.Build(&spec)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		rep := Check(prog, "gen", progen.InputFor(&spec, 0), progen.InputFor(&spec, 1), Options{})
		if rep.Failed() {
			var b strings.Builder
			for _, d := range rep.Divergences {
				b.WriteString("  " + d.String() + "\n")
			}
			t.Fatalf("seed %d: %d divergences:\n%s", seed, len(rep.Divergences), b.String())
		}
		if rep.Sites == 0 || rep.Execs == 0 {
			t.Fatalf("seed %d: harness observed nothing (sites %d, execs %d)", seed, rep.Sites, rep.Execs)
		}
	}
}

// TestHarnessDetectsBrokenInput feeds the harness a program/input pair
// that cannot terminate within the budget and checks it reports the
// failure as a divergence rather than hanging or panicking — the
// harness's own failure path needs to work for vfuzz to be trustable.
func TestHarnessDetectsNonTermination(t *testing.T) {
	spec := progen.Generate(progen.Config{Seed: 1})
	prog, err := progen.Build(&spec)
	if err != nil {
		t.Fatal(err)
	}
	rep := Check(prog, "tiny-budget", progen.InputFor(&spec, 0), progen.InputFor(&spec, 1),
		Options{StepLimit: 3})
	if !rep.Failed() {
		t.Fatal("3-instruction budget reported no divergence")
	}
	if rep.Divergences[0].Property != "terminate" {
		t.Fatalf("want terminate divergence first, got %v", rep.Divergences[0])
	}
}
