package difftest

import (
	"path/filepath"
	"strings"
	"testing"

	"valueprof/internal/progen"
)

// TestReplayCheckedInCorpus replays every entry under testdata/corpus
// through the full harness. Entries are either coverage seeds (emitted
// by vfuzz -emit) or shrunk repros of past divergences; both must stay
// clean forever.
func TestReplayCheckedInCorpus(t *testing.T) {
	entries, err := LoadCorpus(filepath.Join("testdata", "corpus"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("checked-in corpus is empty; regenerate with: go run ./cmd/vfuzz -emit 8")
	}
	for _, e := range entries {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			rep, err := ReplayEntry(e, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if rep.Failed() {
				var b strings.Builder
				for _, d := range rep.Divergences {
					b.WriteString("  " + d.String() + "\n")
				}
				t.Fatalf("corpus entry %s (%s): %d divergences:\n%s",
					e.Name, e.Note, len(rep.Divergences), b.String())
			}
			if rep.Sites == 0 {
				t.Fatalf("corpus entry %s observed no sites", e.Name)
			}
		})
	}
}

// TestCorpusRoundTrip checks that writing and re-loading an entry
// preserves the spec exactly — a corpus that mutates on round-trip
// silently loses the bug it was checked in to reproduce.
func TestCorpusRoundTrip(t *testing.T) {
	dir := t.TempDir()
	spec := progen.Generate(progen.Config{Seed: 99})
	in := &CorpusEntry{
		Name:   "rt",
		Note:   "round-trip",
		Spec:   spec,
		Input:  progen.InputFor(&spec, 0),
		Input2: progen.InputFor(&spec, 1),
	}
	if _, err := WriteCorpusEntry(dir, in); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCorpus(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("loaded %d entries, want 1", len(got))
	}
	if mustJSON(got[0]) != mustJSON(in) {
		t.Fatalf("round-trip changed the entry:\n got %s\nwant %s", mustJSON(got[0]), mustJSON(in))
	}
	if _, err := WriteCorpusEntry(dir, &CorpusEntry{}); err == nil {
		t.Fatal("nameless entry accepted")
	}
	empty, err := LoadCorpus(filepath.Join(dir, "missing"))
	if err != nil || len(empty) != 0 {
		t.Fatalf("missing dir: entries %d, err %v; want empty, nil", len(empty), err)
	}
}
