package trace

import (
	"bytes"
	"io"
	"math/rand"
	"testing"
	"testing/quick"

	"valueprof/internal/atom"
	"valueprof/internal/core"
	"valueprof/internal/workloads"
)

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	events := []Event{{3, 100}, {3, 100}, {7, -5}, {3, 101}, {100000, 1 << 60}, {7, -5}}
	for _, ev := range events {
		w.Add(ev.PC, ev.Value)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != uint64(len(events)) {
		t.Errorf("count = %d", w.Count())
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var got []Event
	if err := r.ForEach(func(ev Event) { got = append(got, ev) }); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(events) {
		t.Fatalf("decoded %d events, want %d", len(got), len(events))
	}
	for i := range events {
		if got[i] != events[i] {
			t.Errorf("event %d: %+v != %+v", i, got[i], events[i])
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64, nRaw uint16) bool {
		r := rand.New(rand.NewSource(seed))
		n := int(nRaw%2000) + 1
		var buf bytes.Buffer
		w, err := NewWriter(&buf)
		if err != nil {
			return false
		}
		events := make([]Event, n)
		for i := range events {
			events[i] = Event{PC: r.Intn(500), Value: r.Int63() - (1 << 62)}
			w.Add(events[i].PC, events[i].Value)
		}
		if w.Close() != nil {
			return false
		}
		rd, err := NewReader(&buf)
		if err != nil {
			return false
		}
		i := 0
		ok := true
		err = rd.ForEach(func(ev Event) {
			if i >= n || ev != events[i] {
				ok = false
			}
			i++
		})
		return err == nil && ok && i == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestBadHeader(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("nope"))); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := NewReader(bytes.NewReader(nil)); err == nil {
		t.Error("empty stream accepted")
	}
}

func TestTruncatedEvent(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	w.Add(1, 1)
	w.Close()
	data := buf.Bytes()[:buf.Len()-1] // drop the value's last byte
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	_, err = r.Next()
	if err == nil || err == io.EOF {
		t.Errorf("truncated event gave %v", err)
	}
}

// TestOfflineMatchesOnline records a workload's value stream, replays
// it, and checks the offline profile matches the online ValueProfiler
// exactly (same TNV config, same stream order).
func TestOfflineMatchesOnline(t *testing.T) {
	w, err := workloads.ByName("mcsim")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := w.Compile()
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	tw, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	col := NewCollector(tw, nil)
	vp, err := core.NewValueProfiler(core.Options{TNV: core.DefaultTNVConfig()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := atom.Run(prog, w.Test.Args, false, col, vp); err != nil {
		t.Fatal(err)
	}
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}

	traceBytes := buf.Len()
	rd, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	offline, err := ProfileTrace(rd, core.DefaultTNVConfig(), false)
	if err != nil {
		t.Fatal(err)
	}

	online := vp.Profile()
	checked := 0
	for _, s := range online.Sites {
		if s.Exec == 0 {
			continue
		}
		o := offline[s.PC]
		if o == nil {
			t.Fatalf("site %d missing offline", s.PC)
		}
		if o.Exec != s.Exec || o.LVPHits != s.LVPHits || o.Zeros != s.Zeros {
			t.Fatalf("site %d: offline exec/lvp/zero %d/%d/%d vs online %d/%d/%d",
				s.PC, o.Exec, o.LVPHits, o.Zeros, s.Exec, s.LVPHits, s.Zeros)
		}
		if o.InvTop(1) != s.InvTop(1) {
			t.Fatalf("site %d: offline inv %v != online %v", s.PC, o.InvTop(1), s.InvTop(1))
		}
		checked++
	}
	if checked < 50 {
		t.Errorf("only %d sites compared", checked)
	}
	// Compression sanity: delta coding should beat 16 bytes/event.
	bytesPer := float64(traceBytes) / float64(tw.Count())
	if bytesPer >= 10 || bytesPer <= 0 {
		t.Errorf("trace uses %.2f bytes/event; delta coding ineffective", bytesPer)
	}
	t.Logf("trace: %d events, %.2f bytes/event", tw.Count(), bytesPer)
}
