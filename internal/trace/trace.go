// Package trace records and replays value traces: the (site, value)
// event stream a profiling run observes, in a compact delta-encoded
// binary format. Tracing decouples collection from analysis — the
// expensive instrumented execution runs once, then any number of
// profiler configurations (TNV sizes, clearing policies, samplers) can
// be evaluated offline against the identical stream, exactly how the
// TNV-accuracy ablations are best run.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"valueprof/internal/atom"
	"valueprof/internal/core"
	"valueprof/internal/isa"
	"valueprof/internal/vm"
)

// Magic identifies a trace stream.
var magic = [4]byte{'V', 'P', 'T', '1'}

// Event is one recorded observation.
type Event struct {
	PC    int
	Value int64
}

// Writer encodes events. Encoding: varint pc-delta (zigzag from the
// previous event's pc, exploiting locality) then zigzag-varint value
// delta from the site's previous value (exploiting value locality —
// the very phenomenon the paper profiles makes traces compress well).
type Writer struct {
	w      *bufio.Writer
	lastPC int64
	lastV  map[int]int64
	count  uint64
	err    error
}

// NewWriter starts a trace on w.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.Write(magic[:]); err != nil {
		return nil, err
	}
	return &Writer{w: bw, lastV: make(map[int]int64)}, nil
}

func (t *Writer) putVarint(v int64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutVarint(buf[:], v)
	if _, err := t.w.Write(buf[:n]); err != nil && t.err == nil {
		t.err = err
	}
}

// Add records one event.
func (t *Writer) Add(pc int, value int64) {
	t.putVarint(int64(pc) - t.lastPC)
	t.lastPC = int64(pc)
	t.putVarint(value - t.lastV[pc])
	t.lastV[pc] = value
	t.count++
}

// Count returns the number of recorded events.
func (t *Writer) Count() uint64 { return t.count }

// Close flushes the stream.
func (t *Writer) Close() error {
	if t.err != nil {
		return t.err
	}
	return t.w.Flush()
}

// Reader decodes a trace.
type Reader struct {
	r      *bufio.Reader
	lastPC int64
	lastV  map[int]int64
}

// NewReader opens a trace stream, validating the header.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var hdr [4]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if hdr != magic {
		return nil, errors.New("trace: bad magic (not a VPT1 trace)")
	}
	return &Reader{r: br, lastV: make(map[int]int64)}, nil
}

// Next returns the next event, or io.EOF at end of trace.
func (t *Reader) Next() (Event, error) {
	dpc, err := binary.ReadVarint(t.r)
	if err != nil {
		if err == io.EOF {
			return Event{}, io.EOF
		}
		return Event{}, fmt.Errorf("trace: %w", err)
	}
	pc := t.lastPC + dpc
	t.lastPC = pc
	dv, err := binary.ReadVarint(t.r)
	if err != nil {
		return Event{}, fmt.Errorf("trace: truncated event: %w", err)
	}
	v := t.lastV[int(pc)] + dv
	t.lastV[int(pc)] = v
	return Event{PC: int(pc), Value: v}, nil
}

// ForEach replays the whole trace through fn.
func (t *Reader) ForEach(fn func(Event)) error {
	for {
		ev, err := t.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		fn(ev)
	}
}

// Collector is an ATOM tool that records the value stream of the
// selected instructions (default: all result-producing) into a Writer.
type Collector struct {
	Filter func(isa.Inst) bool
	W      *Writer
}

// NewCollector traces the instructions selected by filter (nil = all
// result-producing) into w.
func NewCollector(w *Writer, filter func(isa.Inst) bool) *Collector {
	return &Collector{Filter: filter, W: w}
}

// Instrument implements atom.Tool.
func (c *Collector) Instrument(ix *atom.Instrumenter) {
	filter := c.Filter
	if filter == nil {
		filter = func(in isa.Inst) bool { return in.Op.HasDest() }
	}
	ix.ForEachInst(filter, func(pc int, in isa.Inst) {
		ix.AddAfter(pc, func(ev *vm.Event) { c.W.Add(pc, ev.Value) })
	})
}

// ProfileTrace replays a trace into per-site statistics under the given
// TNV configuration — the offline equivalent of a full-time
// ValueProfiler run over the same instruction set.
func ProfileTrace(r *Reader, cfg core.TNVConfig, trackFull bool) (map[int]*core.SiteStats, error) {
	sites := make(map[int]*core.SiteStats)
	err := r.ForEach(func(ev Event) {
		s := sites[ev.PC]
		if s == nil {
			s = core.NewSiteStats(ev.PC, fmt.Sprintf("pc%d", ev.PC), cfg, trackFull)
			sites[ev.PC] = s
		}
		s.Observe(ev.Value)
	})
	if err != nil {
		return nil, err
	}
	return sites, nil
}
