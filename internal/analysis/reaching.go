package analysis

import "valueprof/internal/isa"

// bitset is a simple dense bit vector.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) set(i int)      { b[i/64] |= 1 << (uint(i) % 64) }
func (b bitset) clear(i int)    { b[i/64] &^= 1 << (uint(i) % 64) }
func (b bitset) has(i int) bool { return b[i/64]&(1<<(uint(i)%64)) != 0 }

func (b bitset) orInto(src bitset) bool {
	changed := false
	for i := range b {
		n := b[i] | src[i]
		if n != b[i] {
			b[i] = n
			changed = true
		}
	}
	return changed
}

func (b bitset) copyFrom(src bitset) { copy(b, src) }

// ReachingDefs is the classic reaching-definitions dataflow result over
// a CFG. Definitions are instructions that write a register, plus one
// synthetic "entry" definition per register modelling the register's
// value at region entry.
type ReachingDefs struct {
	cfg *CFG
	// defPC[i] is the absolute pc of definition i, or -1 for the 32
	// synthetic entry definitions (definition r is the entry value of
	// register r for i < 32).
	defPC []int
	// defReg[i] is the register definition i writes.
	defReg []uint8
	// in[b] is the definition set reaching the entry of block b.
	in []bitset
	// defsOf[r] is the set of definitions writing register r.
	defsOf [isa.NumRegs]bitset
}

// ReachingDefs computes reaching definitions. A call (jsr/jsrr) defines
// every caller-saved register; a syscall defines v0.
func (c *CFG) ReachingDefs() *ReachingDefs {
	rd := &ReachingDefs{cfg: c}
	// Synthetic entry definitions occupy slots 0..31.
	for r := 0; r < isa.NumRegs; r++ {
		rd.defPC = append(rd.defPC, -1)
		rd.defReg = append(rd.defReg, uint8(r))
	}
	for pc := range c.Code {
		_, def := UseDef(c.Code[pc])
		for r := uint8(0); r < isa.NumRegs; r++ {
			if def.Has(r) {
				rd.defPC = append(rd.defPC, c.Base+pc)
				rd.defReg = append(rd.defReg, r)
			}
		}
	}
	n := len(rd.defPC)
	for r := range rd.defsOf {
		rd.defsOf[r] = newBitset(n)
	}
	for i, r := range rd.defReg {
		rd.defsOf[r].set(i)
	}

	// Per-block gen/kill by walking instructions in order.
	nb := len(c.Blocks)
	gen := make([]bitset, nb)
	notKill := make([]bitset, nb)
	rd.in = make([]bitset, nb)
	// Index defs by pc for fast lookup: pc -> first def slot.
	firstDef := make(map[int]int)
	for i := isa.NumRegs; i < n; i++ {
		if _, ok := firstDef[rd.defPC[i]]; !ok {
			firstDef[rd.defPC[i]] = i
		}
	}
	for b := range c.Blocks {
		g := newBitset(n)
		nk := newBitset(n)
		for i := range nk {
			nk[i] = ^uint64(0)
		}
		blk := &c.Blocks[b]
		for pc := blk.Start; pc < blk.End; pc++ {
			_, def := UseDef(c.Code[pc-c.Base])
			slot := firstDef[pc]
			for r := uint8(0); r < isa.NumRegs; r++ {
				if !def.Has(r) {
					continue
				}
				// Kill every other definition of r, then gen this one.
				for w := range g {
					g[w] &^= rd.defsOf[r][w]
					nk[w] &^= rd.defsOf[r][w]
				}
				g.set(slot)
				slot++
			}
		}
		gen[b] = g
		notKill[b] = nk
		rd.in[b] = newBitset(n)
	}

	entry := c.EntryBlock()
	if entry < 0 {
		return rd
	}
	for r := 0; r < isa.NumRegs; r++ {
		rd.in[entry].set(r) // entry values reach the entry block
	}
	out := make([]bitset, nb)
	tmp := newBitset(n)
	for b := range out {
		out[b] = newBitset(n)
	}
	for changed := true; changed; {
		changed = false
		for b := 0; b < nb; b++ {
			// out[b] = gen[b] | (in[b] & notKill[b])
			tmp.copyFrom(rd.in[b])
			for w := range tmp {
				tmp[w] = gen[b][w] | (tmp[w] & notKill[b][w])
			}
			if out[b].orInto(tmp) {
				changed = true
			}
			for _, s := range c.Blocks[b].Succs {
				if rd.in[s].orInto(out[b]) {
					changed = true
				}
			}
		}
	}
	return rd
}

// DefsReaching returns the absolute pcs of the definitions of reg that
// reach the entry of the instruction at pc; fromEntry reports whether
// the register's region-entry value also reaches it (a potential
// use-before-def when the register is not an input register).
func (rd *ReachingDefs) DefsReaching(pc int, reg uint8) (pcs []int, fromEntry bool) {
	c := rd.cfg
	b := c.BlockContaining(pc)
	if b < 0 {
		return nil, false
	}
	cur := newBitset(len(rd.defPC))
	cur.copyFrom(rd.in[b])
	// Replay the block prefix.
	firstDef := func(p int) int {
		for i := isa.NumRegs; i < len(rd.defPC); i++ {
			if rd.defPC[i] == p {
				return i
			}
		}
		return -1
	}
	for p := c.Blocks[b].Start; p < pc; p++ {
		_, def := UseDef(c.Code[p-c.Base])
		slot := firstDef(p)
		for r := uint8(0); r < isa.NumRegs; r++ {
			if !def.Has(r) {
				continue
			}
			for w := range cur {
				cur[w] &^= rd.defsOf[r][w]
			}
			cur.set(slot)
			slot++
		}
	}
	for i := 0; i < len(rd.defPC); i++ {
		if rd.defReg[i] == reg && cur.has(i) {
			if rd.defPC[i] < 0 {
				fromEntry = true
			} else {
				pcs = append(pcs, rd.defPC[i])
			}
		}
	}
	return pcs, fromEntry
}

// UseBeforeDef is one register read that the region-entry value can
// still reach: on some path no instruction defined the register first.
type UseBeforeDef struct {
	PC  int
	Reg uint8
}

// UseBeforeDefs scans every reachable instruction for reads of
// registers in `tracked` whose entry definition survives to the read.
// Registers outside tracked (arguments, sp/fp, the zero register) are
// legitimately live at entry and never reported.
func (rd *ReachingDefs) UseBeforeDefs(tracked RegSet) []UseBeforeDef {
	c := rd.cfg
	reach := c.Reachable()
	var out []UseBeforeDef
	for b := range c.Blocks {
		if !reach[b] {
			continue
		}
		cur := newBitset(len(rd.defPC))
		cur.copyFrom(rd.in[b])
		blk := &c.Blocks[b]
		slot := isa.NumRegs
		// Definition slots are laid out in pc order; find the first
		// slot at or after this block's start.
		for slot < len(rd.defPC) && rd.defPC[slot] < blk.Start {
			slot++
		}
		for pc := blk.Start; pc < blk.End; pc++ {
			use, def := UseDef(c.Code[pc-c.Base])
			for r := uint8(0); r < isa.NumRegs; r++ {
				if use.Has(r) && tracked.Has(r) && cur.has(int(r)) {
					out = append(out, UseBeforeDef{PC: pc, Reg: r})
				}
			}
			for r := uint8(0); r < isa.NumRegs; r++ {
				if !def.Has(r) {
					continue
				}
				for w := range cur {
					cur[w] &^= rd.defsOf[r][w]
				}
				cur.set(slot)
				slot++
			}
		}
	}
	return out
}
