package analysis

import "valueprof/internal/isa"

// RegSet is a 32-register bit set.
type RegSet uint32

// Has reports whether r is in the set.
func (s RegSet) Has(r uint8) bool { return s&(1<<r) != 0 }

// Add inserts r.
func (s *RegSet) Add(r uint8) { *s |= 1 << r }

// Del removes r.
func (s *RegSet) Del(r uint8) { *s &^= 1 << r }

// AddAll inserts every listed register.
func (s *RegSet) AddAll(rs ...uint8) {
	for _, r := range rs {
		s.Add(r)
	}
}

// CallerSaved are the registers a call clobbers under the VRISC
// convention (temporaries, arguments, v0, ra, at).
var CallerSaved = func() []uint8 {
	var r []uint8
	r = append(r, isa.RegV0, isa.RegRA, isa.RegAT)
	for i := isa.RegA0; i <= isa.RegA5; i++ {
		r = append(r, uint8(i))
	}
	for i := isa.RegT0; i < isa.RegT0+10; i++ {
		r = append(r, uint8(i))
	}
	return r
}()

// RetLive are the registers meaningful after a procedure returns: the
// return value, the stack/frame pointers, and the callee-saved set.
var RetLive = func() RegSet {
	var s RegSet
	s.AddAll(isa.RegV0, isa.RegSP, isa.RegFP)
	for r := isa.RegS0; r < isa.RegS0+8; r++ {
		s.Add(uint8(r))
	}
	return s
}()

// CallUses are the registers a call consumes (arguments plus the stack
// and frame pointers); CallDefs are the registers it may clobber.
var CallUses, CallDefs = func() (u, d RegSet) {
	u.AddAll(isa.RegSP, isa.RegFP)
	for r := isa.RegA0; r <= isa.RegA5; r++ {
		u.Add(uint8(r))
	}
	for _, r := range CallerSaved {
		d.Add(r)
	}
	return u, d
}()

// UseDef returns the registers the instruction reads and writes.
func UseDef(in isa.Inst) (use, def RegSet) {
	switch in.Op.Form() {
	case isa.FormRRR:
		use.AddAll(in.Ra, in.Rb)
		def.Add(in.Rd)
	case isa.FormRRI:
		use.Add(in.Ra)
		def.Add(in.Rd)
	case isa.FormMem:
		use.Add(in.Ra)
		if in.Op.Class() == isa.ClassStore {
			use.Add(in.Rd) // stores read the "destination" register
		} else {
			def.Add(in.Rd)
		}
	case isa.FormRB:
		use.Add(in.Ra)
	case isa.FormJ: // jsr
		use = CallUses
		def = CallDefs
	case isa.FormR:
		switch in.Op {
		case isa.OpJsrr:
			use = CallUses
			use.Add(in.Ra)
			def = CallDefs
		case isa.OpJmp:
			use.Add(in.Ra)
		case isa.OpRet:
			use = RetLive
			use.Add(in.Ra)
		}
	case isa.FormS: // syscall
		use.Add(isa.RegA0)
		def.Add(isa.RegV0)
	}
	def.Del(isa.RegZero)
	return use, def
}

// SideEffectFree reports whether the instruction can be deleted when
// its destination is dead. Loads are included: a dead load's only
// observable effect is a potential fault, which an optimizer (like any
// compiler assuming non-trapping loads) is allowed to drop.
func SideEffectFree(in isa.Inst) bool {
	if in.Op == isa.OpNop {
		return true
	}
	return in.Op.HasDest()
}

// Liveness computes per-instruction live-after register sets with a
// backward fixpoint over the CFG's blocks. The result is indexed by
// pc-c.Base. Region exits (ret) carry RetLive through UseDef, so the
// analysis matches the calling convention without extra seeding.
func (c *CFG) Liveness() []RegSet {
	liveAfter := make([]RegSet, len(c.Code))
	liveIn := make([]RegSet, len(c.Blocks))

	for changed := true; changed; {
		changed = false
		for b := len(c.Blocks) - 1; b >= 0; b-- {
			blk := &c.Blocks[b]
			var out RegSet
			for _, s := range blk.Succs {
				out |= liveIn[s]
			}
			for pc := blk.End - 1; pc >= blk.Start; pc-- {
				liveAfter[pc-c.Base] = out
				use, def := UseDef(c.Code[pc-c.Base])
				out = (out &^ def) | use
			}
			if out != liveIn[b] {
				liveIn[b] = out
				changed = true
			}
		}
	}
	return liveAfter
}
