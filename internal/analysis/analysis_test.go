package analysis

import (
	"testing"

	"valueprof/internal/asm"
	"valueprof/internal/core"
	"valueprof/internal/isa"
	"valueprof/internal/program"
)

func mustAssemble(t *testing.T, src string) *program.Program {
	t.Helper()
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	return p
}

// --- CFG ---

func TestCFGUnreachableBlock(t *testing.T) {
	p := mustAssemble(t, `
main:   addi t0, zero, 5
loop:   addi t0, t0, -1
        bne  t0, loop
        syscall exit
dead:   nop
        br   dead
`)
	c := ForProgram(p)
	reach := c.Reachable()
	db := c.BlockContaining(4)
	if db < 0 || reach[db] {
		t.Errorf("dead block reachability = %v (block %d)", reach, db)
	}
	lb := c.BlockContaining(1)
	if !reach[lb] {
		t.Error("loop block unreachable")
	}
	// The loop block must be its own successor's target: bne at 2 -> 1.
	found := false
	for _, s := range c.Blocks[c.BlockContaining(2)].Succs {
		if s == lb {
			found = true
		}
	}
	if !found {
		t.Errorf("loop back edge missing: %+v", c.Blocks)
	}
}

func TestCFGIndirectJumpTargets(t *testing.T) {
	p := mustAssemble(t, `
main:   addi t0, zero, 4
        jmp  t0
        nop
        nop
tgt:    syscall exit
`)
	c := ForProgram(p)
	tb := c.BlockAt(4)
	if tb < 0 {
		t.Fatalf("no block leader at the address-taken pc; blocks %+v", c.Blocks)
	}
	taken := false
	for _, b := range c.AddressTaken {
		if b == tb {
			taken = true
		}
	}
	if !taken {
		t.Errorf("AddressTaken = %v, want to include block %d", c.AddressTaken, tb)
	}
	// The jmp block must list the address-taken block as a successor,
	// making the exit reachable.
	if !c.Reachable()[tb] {
		t.Error("address-taken target unreachable through jmp")
	}
}

func TestCFGDataSegmentAddressTaken(t *testing.T) {
	// A code address stored in the data segment (a jump table slot) must
	// enter the address-taken set when the program has indirect control
	// flow.
	p := mustAssemble(t, `
        .data
table:  .word 3
        .text
main:   la   t0, table
        ldq  t1, 0(t0)
        jmp  t1
tgt:    syscall exit
`)
	c := ForProgram(p)
	tb := c.BlockAt(3)
	if tb < 0 {
		t.Fatalf("no leader at pc 3: %+v", c.Blocks)
	}
	if !c.Reachable()[tb] {
		t.Error("jump-table target not reachable")
	}
}

func TestCFGCallEdges(t *testing.T) {
	p := mustAssemble(t, `
        .text
        .proc main
main:   jsr  f
        syscall exit
        .endproc
        .proc f
f:      ret
        .endproc
`)
	c := ForProgram(p)
	if len(c.CallSites) != 1 || c.CallSites[0].PC != 0 {
		t.Fatalf("call sites = %+v", c.CallSites)
	}
	if c.CallSites[0].Callee != c.BlockAt(2) {
		t.Errorf("callee block = %d, want %d", c.CallSites[0].Callee, c.BlockAt(2))
	}
	// The callee has no CFG edge from the call (only a call edge), but
	// Reachable follows call edges.
	if !c.Reachable()[c.BlockAt(2)] {
		t.Error("callee unreachable")
	}
}

// --- dominators ---

func TestDominatorsIrreducibleLoop(t *testing.T) {
	// Two-entry (irreducible) loop between A(1) and B(3): the entry
	// branches into both, so neither dominates the other.
	p := mustAssemble(t, `
main:   beq  t0, 3
        addi t1, t1, 1
        beq  t2, 5
        addi t1, t1, 2
        br   1
        syscall exit
`)
	c := ForProgram(p)
	d := c.Dominators()
	entry, a, b, exit := c.BlockContaining(0), c.BlockContaining(1), c.BlockContaining(3), c.BlockContaining(5)
	if !d.Dominates(entry, a) || !d.Dominates(entry, b) || !d.Dominates(entry, exit) {
		t.Error("entry must dominate everything")
	}
	if d.Dominates(a, b) || d.Dominates(b, a) {
		t.Error("irreducible loop: neither body block dominates the other")
	}
	if !d.Dominates(a, exit) {
		t.Error("the exit is only reachable through A")
	}
	if d.Idom[a] != entry || d.Idom[b] != entry {
		t.Errorf("idoms = %v", d.Idom)
	}
}

func TestDominatorsSkipUnreachable(t *testing.T) {
	p := mustAssemble(t, `
main:   syscall exit
dead:   br dead
`)
	c := ForProgram(p)
	d := c.Dominators()
	db := c.BlockContaining(1)
	if d.Dominates(c.BlockContaining(0), db) || d.Dominates(db, db) {
		t.Error("unreachable blocks neither dominate nor are dominated")
	}
}

// --- verifier ---

func TestVerifyCleanProgram(t *testing.T) {
	p := mustAssemble(t, `
        .text
        .proc main
main:   addi sp, sp, -16
        stq  ra, 0(sp)
        addi t0, zero, 1
        addi t1, t0, 2
        ldq  ra, 0(sp)
        addi sp, sp, 16
        syscall exit
        .endproc
`)
	if ds := Verify(p); len(ds) != 0 {
		t.Errorf("clean program produced %v", ds)
	}
}

func TestVerifyBadTarget(t *testing.T) {
	p := &program.Program{Code: []isa.Inst{
		{Op: isa.OpBr, Imm: 99},
		{Op: isa.OpSyscall, Imm: isa.SysExit},
	}}
	ds := Verify(p)
	if !ds.HasErrors() || ds[0].Rule != RuleBadTarget {
		t.Errorf("diags = %v", ds)
	}
	if ds.Err() == nil {
		t.Error("Err() must be non-nil with errors present")
	}
}

func TestVerifyBadEntryAndOpcode(t *testing.T) {
	p := &program.Program{
		Entry: 5,
		Code:  []isa.Inst{{Op: isa.Op(200)}, {Op: isa.OpSyscall, Imm: isa.SysExit}},
	}
	ds := Verify(p)
	rules := map[Rule]bool{}
	for _, d := range ds {
		rules[d.Rule] = true
	}
	if !rules[RuleBadEntry] || !rules[RuleBadOpcode] {
		t.Errorf("diags = %v", ds)
	}
}

func TestVerifyWriteToZero(t *testing.T) {
	p := mustAssemble(t, `
main:   add zero, t0, t1
        syscall exit
`)
	ds := Verify(p)
	if !ds.HasErrors() || ds[0].Rule != RuleWriteZero {
		t.Errorf("diags = %v", ds)
	}
}

func TestVerifyFallOffEnd(t *testing.T) {
	p := &program.Program{Code: []isa.Inst{
		{Op: isa.OpAddi, Rd: 8, Ra: isa.RegZero, Imm: 1},
	}}
	ds := Verify(p)
	if !ds.HasErrors() {
		t.Fatalf("diags = %v", ds)
	}
	if ds[0].Rule != RuleFallOff {
		t.Errorf("rule = %v, want fall-off", ds[0].Rule)
	}
}

func TestVerifyUnreachableWarning(t *testing.T) {
	p := mustAssemble(t, `
main:   syscall exit
dead:   addi t0, zero, 1
        br   dead
`)
	ds := Verify(p)
	if ds.HasErrors() {
		t.Fatalf("unexpected errors: %v", ds)
	}
	found := false
	for _, d := range ds {
		if d.Rule == RuleUnreachable && d.Sev == SevWarning {
			found = true
		}
	}
	if !found {
		t.Errorf("no unreachable warning in %v", ds)
	}
}

func TestVerifyUseBeforeDef(t *testing.T) {
	p := mustAssemble(t, `
main:   add t1, t0, t0
        syscall exit
`)
	ds := Verify(p)
	found := false
	for _, d := range ds {
		if d.Rule == RuleUseBeforeDef && d.PC == 0 {
			found = true
		}
	}
	if !found {
		t.Errorf("no use-before-def for t0 in %v", ds)
	}

	// Defining t0 first silences it.
	p2 := mustAssemble(t, `
main:   addi t0, zero, 3
        add  t1, t0, t0
        syscall exit
`)
	for _, d := range Verify(p2) {
		if d.Rule == RuleUseBeforeDef {
			t.Errorf("spurious use-before-def: %v", d)
		}
	}
}

func TestVerifyStackImbalance(t *testing.T) {
	p := mustAssemble(t, `
        .text
        .proc main
main:   jsr  f
        syscall exit
        .endproc
        .proc f
f:      addi sp, sp, -16
        ret
        .endproc
`)
	ds := Verify(p)
	found := false
	for _, d := range ds {
		if d.Rule == RuleStack {
			found = true
		}
	}
	if !found {
		t.Errorf("no stack warning in %v", ds)
	}

	// The full prologue/epilogue idiom must be silent, including the
	// restore-through-fp path.
	p2 := mustAssemble(t, `
        .text
        .proc main
main:   jsr  f
        syscall exit
        .endproc
        .proc f
f:      addi sp, sp, -16
        stq  ra, 0(sp)
        stq  fp, 8(sp)
        mov  fp, sp
        addi sp, sp, -32
        mov  sp, fp
        ldq  ra, 0(sp)
        ldq  fp, 8(sp)
        addi sp, sp, 16
        ret
        .endproc
`)
	for _, d := range Verify(p2) {
		if d.Rule == RuleStack {
			t.Errorf("spurious stack warning: %v", d)
		}
	}
}

// --- constness ---

func TestConstnessBasics(t *testing.T) {
	p := mustAssemble(t, `
main:   addi t0, zero, 7
        addi t1, t0, 1
        add  t2, t0, t1
        syscall getint
        add  t3, v0, zero
        addi t4, sp, -8
        syscall exit
dead:   addi t5, zero, 9
        br   dead
`)
	cn := AnalyzeConstness(p)
	if cn.Degraded {
		t.Fatal("no indirect control flow, must not degrade")
	}
	wantConst := map[int]int64{0: 7, 1: 8, 2: 15}
	for pc, v := range wantConst {
		got, ok := cn.ConstValue(pc)
		if !ok || got != v {
			t.Errorf("pc %d: const = %d,%v want %d,true", pc, got, ok, v)
		}
	}
	if cn.Kind(4) != KindVarying {
		t.Errorf("pc 4 (syscall result use) = %v, want varying", cn.Kind(4))
	}
	if cn.Kind(5) != KindInvariant {
		t.Errorf("pc 5 (sp-derived) = %v, want invariant", cn.Kind(5))
	}
	if cn.Kind(7) != KindUnreached {
		t.Errorf("pc 7 (dead) = %v, want unreached", cn.Kind(7))
	}
}

func TestConstnessMeet(t *testing.T) {
	// Diamond assigning the same constant on both arms stays const;
	// different constants meet to varying.
	p := mustAssemble(t, `
main:   syscall getint
        beq  v0, 4
        addi t0, zero, 3
        br   5
        addi t0, zero, 3
        add  t1, t0, zero
        beq  v0, 9
        addi t2, zero, 1
        br   10
        addi t2, zero, 2
        add  t3, t2, zero
        syscall exit
`)
	cn := AnalyzeConstness(p)
	if v, ok := cn.ConstValue(5); !ok || v != 3 {
		t.Errorf("same-constant meet = %d,%v want 3,true", v, ok)
	}
	if cn.Kind(10) != KindVarying {
		t.Errorf("different-constant meet = %v, want varying", cn.Kind(10))
	}
}

func TestConstnessCallClobbers(t *testing.T) {
	// A constant in a register the program writes elsewhere must not
	// survive a call; the link-register value written by jsr is a
	// per-site constant.
	p := mustAssemble(t, `
        .text
        .proc main
main:   addi t0, zero, 5
        jsr  f
        add  t1, t0, zero
        syscall exit
        .endproc
        .proc f
f:      addi t0, zero, 6
        ret
        .endproc
`)
	cn := AnalyzeConstness(p)
	if cn.Kind(2) == KindConst {
		t.Error("t0 survived a call that clobbers it")
	}
	// In the callee, t0 is written to 6 unconditionally.
	if v, ok := cn.ConstValue(4); !ok || v != 6 {
		t.Errorf("callee const = %d,%v", v, ok)
	}
}

func TestConstnessWriteToZeroObservesComputedValue(t *testing.T) {
	// The VM hands after-hooks the computed value even when the
	// destination is the hardwired zero register, so the fact must
	// describe the computation, not the discarded write.
	p := &program.Program{Code: []isa.Inst{
		{Op: isa.OpAddi, Rd: isa.RegZero, Ra: isa.RegZero, Imm: 42},
		{Op: isa.OpSyscall, Imm: isa.SysExit},
	}}
	cn := AnalyzeConstness(p)
	v, ok := cn.ConstValue(0)
	if !ok || v != 42 {
		t.Errorf("discarded write fact = %d,%v, want 42,true (the computed value)", v, ok)
	}
}

func TestConstnessDegradesOnIndirectJumps(t *testing.T) {
	p := mustAssemble(t, `
main:   addi t0, zero, 4
        jmp  t0
        addi t1, t0, 1
        nop
tgt:    syscall exit
`)
	cn := AnalyzeConstness(p)
	if !cn.Degraded {
		t.Fatal("jmp present, analysis must degrade")
	}
	// Syntactic facts survive: the li is still provably 4.
	if v, ok := cn.ConstValue(0); !ok || v != 4 {
		t.Errorf("syntactic li fact = %d,%v", v, ok)
	}
	// Register-dependent facts and reachability claims do not.
	if cn.Kind(2) != KindVarying {
		t.Errorf("register-dependent fact under degradation = %v", cn.Kind(2))
	}
	if !cn.Reached(3) {
		t.Error("degraded analysis must not claim unreachability")
	}
}

func TestConstnessLoopWidening(t *testing.T) {
	// An sp-derived value updated around a loop must converge (to
	// invariant or varying) rather than hang; and a loop-varying counter
	// must not be claimed constant.
	p := mustAssemble(t, `
main:   addi t0, zero, 10
        addi t1, sp, 0
loop:   addi t0, t0, -1
        addi t1, t1, 8
        bne  t0, loop
        syscall exit
`)
	cn := AnalyzeConstness(p)
	if cn.Kind(2) == KindConst {
		t.Error("loop counter claimed constant")
	}
	if cn.Kind(3) == KindConst || cn.Kind(3) == KindInvariant {
		t.Errorf("loop-varying pointer = %v, must be varying", cn.Kind(3))
	}
}

// --- prune report ---

func TestPruneReportAndShouldPrune(t *testing.T) {
	p := mustAssemble(t, `
main:   addi t0, zero, 0
        addi t1, zero, 7
        addi t2, sp, -8
        syscall getint
        add  t3, v0, zero
        syscall exit
dead:   addi t4, zero, 1
        br   dead
`)
	cn := AnalyzeConstness(p)
	rep := cn.Prune(nil)
	if rep.Candidates != 5 {
		t.Errorf("candidates = %d, want 5 (syscalls produce no result)", rep.Candidates)
	}
	if rep.Const != 2 || rep.Zero != 1 || rep.Invariant != 1 || rep.Unreached != 1 {
		t.Errorf("report = %+v", rep)
	}
	if rep.Pruned() != 3 {
		t.Errorf("pruned = %d, want 3", rep.Pruned())
	}
	if !cn.ShouldPrune(0, p.Code[0]) || !cn.ShouldPrune(6, p.Code[6]) {
		t.Error("const and unreached pcs must prune")
	}
	if cn.ShouldPrune(2, p.Code[2]) || cn.ShouldPrune(4, p.Code[4]) {
		t.Error("invariant and varying pcs must not prune")
	}
}

// --- GVN ---

func TestGVNLocalAndCommutative(t *testing.T) {
	p := mustAssemble(t, `
main:   syscall getint
        add  t0, v0, zero
        addi t1, t0, 0
        add  t2, t0, t1
        add  t3, t1, t0
        syscall exit
`)
	reds := ForProgram(p).GVN()
	found := false
	for _, r := range reds {
		if r.PC == 4 && r.With == 3 {
			found = true
		}
	}
	if !found {
		t.Errorf("commuted recomputation not found: %v", reds)
	}
}

func TestGVNKilledByCall(t *testing.T) {
	p := mustAssemble(t, `
        .text
        .proc main
main:   syscall getint
        add  t2, v0, v0
        jsr  f
        add  t3, v0, v0
        syscall exit
        .endproc
        .proc f
f:      ret
        .endproc
`)
	for _, r := range ForProgram(p).GVN() {
		if r.PC == 3 {
			t.Errorf("redundancy across a clobbering call: %+v", r)
		}
	}
}

func TestGVNRequiresDominance(t *testing.T) {
	// The same expression on two sibling branches is not redundant:
	// neither always executes before the other.
	p := mustAssemble(t, `
main:   syscall getint
        beq  v0, 4
        add  t0, v0, v0
        br   5
        add  t1, v0, v0
        syscall exit
`)
	for _, r := range ForProgram(p).GVN() {
		if r.PC == 4 && r.With == 2 {
			t.Errorf("sibling branches reported redundant: %+v", r)
		}
	}

	// But a dominated recomputation is.
	p2 := mustAssemble(t, `
main:   syscall getint
        add  t0, v0, v0
        beq  v0, 4
        nop
        add  t1, v0, v0
        syscall exit
`)
	found := false
	for _, r := range ForProgram(p2).GVN() {
		if r.PC == 4 && r.With == 1 {
			found = true
		}
	}
	if !found {
		t.Error("dominated recomputation not reported")
	}
}

// --- oracle ---

func TestOracleContradictions(t *testing.T) {
	p := mustAssemble(t, `
main:   addi t0, zero, 7
        syscall exit
dead:   addi t1, zero, 1
        br   dead
`)
	cn := AnalyzeConstness(p)

	good := &core.ProfileRecord{Sites: []core.SiteRecord{
		{PC: 0, Name: "main+0", Exec: 10, Zeros: 0,
			Top: []core.TNVEntry{{Value: 7, Count: 10}}},
	}}
	if cs := CheckRecord(cn, good); len(cs) != 0 {
		t.Errorf("consistent record flagged: %v", cs)
	}

	bad := &core.ProfileRecord{Sites: []core.SiteRecord{
		// Wrong value for a proven constant.
		{PC: 0, Name: "main+0", Exec: 10, Zeros: 0,
			Top: []core.TNVEntry{{Value: 8, Count: 10}}},
		// A statically unreachable pc that executed.
		{PC: 2, Name: "dead+0", Exec: 3,
			Top: []core.TNVEntry{{Value: 1, Count: 3}}},
	}}
	cs := CheckRecord(cn, bad)
	if len(cs) < 2 {
		t.Fatalf("contradictions = %v, want at least 2", cs)
	}
}

// --- reaching defs ---

func TestDefsReaching(t *testing.T) {
	p := mustAssemble(t, `
main:   addi t0, zero, 1
        beq  t0, 3
        addi t0, zero, 2
        add  t1, t0, zero
        syscall exit
`)
	c := ForProgram(p)
	rd := c.ReachingDefs()
	pcs, fromEntry := rd.DefsReaching(3, uint8(isa.RegT0))
	if fromEntry {
		t.Error("entry def must be killed by pc 0 on every path")
	}
	if len(pcs) != 2 {
		t.Errorf("defs reaching pc 3 = %v, want pcs 0 and 2", pcs)
	}
}
