package analysis

import (
	"fmt"
	"sort"
	"strings"

	"valueprof/internal/isa"
	"valueprof/internal/program"
)

// Rule identifies one verifier check.
type Rule string

const (
	// Errors: the program is malformed and must not be emitted or run.
	RuleBadEntry  Rule = "bad-entry"  // entry pc outside the code
	RuleBadOpcode Rule = "bad-opcode" // undefined opcode or register field
	RuleBadTarget Rule = "bad-target" // branch/call target outside the code
	RuleWriteZero Rule = "write-zero" // explicit destination r31 (the write is discarded)
	RuleFallOff   Rule = "fall-off"   // reachable path falls off the end of the code

	// Warnings: suspicious but executable.
	RuleUnreachable  Rule = "unreachable"    // code no path reaches
	RuleUseBeforeDef Rule = "use-before-def" // temporary read before any write
	RuleStack        Rule = "stack"          // unbalanced stack pointer at ret
)

// Severity ranks a diagnostic.
type Severity uint8

const (
	SevWarning Severity = iota
	SevError
)

func (s Severity) String() string {
	if s == SevError {
		return "error"
	}
	return "warning"
}

// Diag is one verifier diagnostic, anchored at an instruction.
type Diag struct {
	PC   int
	Rule Rule
	Sev  Severity
	Msg  string
}

func (d Diag) String() string {
	return fmt.Sprintf("pc %d: %s: %s: %s", d.PC, d.Sev, d.Rule, d.Msg)
}

// Diags is a verifier result.
type Diags []Diag

// HasErrors reports whether any diagnostic is error-severity.
func (ds Diags) HasErrors() bool {
	for _, d := range ds {
		if d.Sev == SevError {
			return true
		}
	}
	return false
}

// Errors returns just the error-severity diagnostics.
func (ds Diags) Errors() Diags {
	var out Diags
	for _, d := range ds {
		if d.Sev == SevError {
			out = append(out, d)
		}
	}
	return out
}

// Err folds the error-severity diagnostics into a single error, or nil.
func (ds Diags) Err() error {
	errs := ds.Errors()
	if len(errs) == 0 {
		return nil
	}
	msgs := make([]string, len(errs))
	for i, d := range errs {
		msgs[i] = d.String()
	}
	return fmt.Errorf("verify: %d error(s):\n  %s", len(errs), strings.Join(msgs, "\n  "))
}

// Verify checks a program image against the bytecode rules. Structural
// errors (bad entry, undefined opcodes, out-of-range targets) abort the
// deeper control-flow checks, since those need a well-formed image to be
// meaningful. vasm and vcc run this before emitting; vlint runs it
// standalone.
func Verify(p *program.Program) Diags {
	var ds Diags
	if p.Entry < 0 || p.Entry >= len(p.Code) {
		ds = append(ds, Diag{PC: p.Entry, Rule: RuleBadEntry, Sev: SevError,
			Msg: fmt.Sprintf("entry %d outside code [0,%d)", p.Entry, len(p.Code))})
	}
	for pc, in := range p.Code {
		if !in.Op.Valid() {
			ds = append(ds, Diag{PC: pc, Rule: RuleBadOpcode, Sev: SevError,
				Msg: fmt.Sprintf("undefined opcode %d", uint8(in.Op))})
			continue
		}
		if in.Rd >= isa.NumRegs || in.Ra >= isa.NumRegs || in.Rb >= isa.NumRegs {
			ds = append(ds, Diag{PC: pc, Rule: RuleBadOpcode, Sev: SevError,
				Msg: fmt.Sprintf("%s: register field out of range", in.Op)})
			continue
		}
		if tgt, ok := in.Target(); ok && (tgt < 0 || tgt >= len(p.Code)) {
			ds = append(ds, Diag{PC: pc, Rule: RuleBadTarget, Sev: SevError,
				Msg: fmt.Sprintf("%s targets %d, outside code [0,%d)", in.Op, tgt, len(p.Code))})
		}
		if in.Op.HasDest() && in.Rd == isa.RegZero {
			ds = append(ds, Diag{PC: pc, Rule: RuleWriteZero, Sev: SevError,
				Msg: fmt.Sprintf("%s writes %s; the result is discarded", in.Op, isa.RegName(isa.RegZero))})
		}
	}
	if ds.HasErrors() {
		sortDiags(ds)
		return ds
	}

	cfg := ForProgram(p)
	reach := cfg.Reachable()

	// Fall-off: a reachable block whose terminator can continue past the
	// end of the code. newCFG drops out-of-range fallthrough successors
	// silently, so detect it from the last instruction directly.
	for b := range cfg.Blocks {
		blk := &cfg.Blocks[b]
		if !reach[b] || blk.End != len(p.Code) {
			continue
		}
		last := p.Code[blk.End-1]
		switch last.Op {
		case isa.OpBr, isa.OpJmp, isa.OpRet:
			continue // never falls through
		case isa.OpSyscall:
			if last.Imm == isa.SysExit {
				continue
			}
		}
		ds = append(ds, Diag{PC: blk.End - 1, Rule: RuleFallOff, Sev: SevError,
			Msg: "execution can fall off the end of the code"})
	}

	// Unreachable code: report the leader of each dead block once.
	for b := range cfg.Blocks {
		if !reach[b] {
			ds = append(ds, Diag{PC: cfg.Blocks[b].Start, Rule: RuleUnreachable, Sev: SevWarning,
				Msg: fmt.Sprintf("unreachable block [%d,%d)", cfg.Blocks[b].Start, cfg.Blocks[b].End)})
		}
	}

	// Use-before-def over the temporaries and the assembler scratch
	// register. Wider sets would be noise: the VM zero-initializes every
	// register, arguments and sp/fp are live at entry by convention, and
	// callee-saved registers are legitimately read by save prologues.
	var tracked RegSet
	for r := isa.RegT0; r < isa.RegT0+10; r++ {
		tracked.Add(uint8(r))
	}
	tracked.Add(isa.RegAT)
	for _, u := range cfg.ReachingDefs().UseBeforeDefs(tracked) {
		ds = append(ds, Diag{PC: u.PC, Rule: RuleUseBeforeDef, Sev: SevWarning,
			Msg: fmt.Sprintf("%s may be read before any write", isa.RegName(u.Reg))})
	}

	ds = append(ds, checkStack(p)...)
	sortDiags(ds)
	return ds
}

func sortDiags(ds Diags) {
	sort.SliceStable(ds, func(i, j int) bool {
		if ds[i].Sev != ds[j].Sev {
			return ds[i].Sev > ds[j].Sev // errors first
		}
		return ds[i].PC < ds[j].PC
	})
}

// spState tracks sp and fp as symbolic offsets from the stack pointer at
// procedure entry. unknown offsets poison further tracking.
type spState struct {
	reached    bool
	sp, fp     int32
	spOK, fpOK bool
}

func meetSP(a, b spState) spState {
	if !a.reached {
		return b
	}
	if !b.reached {
		return a
	}
	out := spState{reached: true}
	if a.spOK && b.spOK && a.sp == b.sp {
		out.sp, out.spOK = a.sp, true
	}
	if a.fpOK && b.fpOK && a.fp == b.fp {
		out.fp, out.fpOK = a.fp, true
	}
	return out
}

// checkStack verifies per-procedure stack discipline: on every path to a
// ret, sp must return to its procedure-entry value. Tracking follows the
// two idioms the toolchain emits — addi sp, sp, ±n adjustments and
// mov (or rd, ra, zero) transfers between sp and fp — and goes silent
// (no claim) when sp is derived any other way. Calls are assumed
// sp-preserving; each callee is itself checked by this rule.
func checkStack(p *program.Program) Diags {
	var ds Diags
	for pi := range p.Procs {
		pr := &p.Procs[pi]
		body := p.Code[pr.Start:pr.End]
		cfg := ForBody(body, pr.Start)
		n := len(cfg.Blocks)
		if n == 0 {
			continue
		}
		in := make([]spState, n)
		eb := cfg.EntryBlock()
		if eb < 0 {
			continue
		}
		in[eb] = spState{reached: true, spOK: true, fpOK: false}
		work := []int{eb}
		for len(work) > 0 {
			b := work[0]
			work = work[1:]
			st := in[b]
			blk := &cfg.Blocks[b]
			for pc := blk.Start; pc < blk.End; pc++ {
				ins := cfg.Inst(pc)
				if ins.Op == isa.OpRet && st.spOK && st.sp != 0 {
					ds = append(ds, Diag{PC: pc, Rule: RuleStack, Sev: SevWarning,
						Msg: fmt.Sprintf("%s: sp off by %d bytes from procedure entry at ret", pr.Name, st.sp)})
				}
				st = stepSP(ins, st)
			}
			for _, s := range blk.Succs {
				merged := meetSP(in[s], st)
				if merged != in[s] {
					in[s] = merged
					work = append(work, s)
				}
			}
		}
	}
	return ds
}

func stepSP(in isa.Inst, st spState) spState {
	isMov := in.Op == isa.OpOr && in.Rb == isa.RegZero
	switch {
	case in.Op == isa.OpAddi && in.Rd == isa.RegSP && in.Ra == isa.RegSP:
		if st.spOK {
			st.sp += in.Imm
		}
	case isMov && in.Rd == isa.RegFP && in.Ra == isa.RegSP:
		st.fp, st.fpOK = st.sp, st.spOK
	case isMov && in.Rd == isa.RegSP && in.Ra == isa.RegFP:
		st.sp, st.spOK = st.fp, st.fpOK
	default:
		_, def := UseDef(in)
		if def.Has(isa.RegSP) {
			st.spOK = false
		}
		if def.Has(isa.RegFP) {
			st.fpOK = false
		}
	}
	return st
}
