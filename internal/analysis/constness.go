package analysis

import (
	"fmt"

	"valueprof/internal/isa"
	"valueprof/internal/program"
)

// ConstKind classifies an instruction's destination value under the
// whole-program constness lattice:
//
//	Unreached        the instruction can never execute
//	Const            every execution produces the same statically known
//	                 value (zero is Const with value 0)
//	Invariant        every execution produces the same value, but the
//	                 value is only fixed per run (derived from the
//	                 initial stack pointer or other run constants)
//	Varying          anything else
//
// Const and Invariant PCs need no TNV table: their Inv-All is provably
// 1.0. Const PCs additionally pin the value, making them free
// ground-truth oracles for the profiling pipeline.
type ConstKind uint8

const (
	KindUnreached ConstKind = iota
	KindConst
	KindInvariant
	KindVarying
)

func (k ConstKind) String() string {
	switch k {
	case KindUnreached:
		return "unreached"
	case KindConst:
		return "const"
	case KindInvariant:
		return "invariant"
	case KindVarying:
		return "varying"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// ConstFact is the lattice element for one destination-writing pc. The
// fact describes the value the instruction *computes* (the value the
// profiler observes), which for a write to r31 may differ from the
// architected register content.
type ConstFact struct {
	Kind  ConstKind
	Value int64 // valid when Kind == KindConst
}

// Constness is the per-pc result of AnalyzeConstness.
type Constness struct {
	prog *program.Program
	// Facts is indexed by pc; entries for non-result-producing
	// instructions carry no claim (KindVarying).
	Facts []ConstFact
	// Degraded is set when the program contains indirect jumps or
	// indirect calls: their runtime targets cannot be soundly bounded,
	// so the analysis falls back to per-instruction syntactic facts
	// (operands hardwired to the zero register) and makes no
	// reachability or invariance claims.
	Degraded bool

	reached []bool
	cfg     *CFG
}

// Abstract register values for the dataflow.
const (
	avBot   = 0 // unreached
	avConst = 1
	avInv   = 2 // invariant: fixed per run, identity tracked by vn
	avTop   = 3 // varying
)

type av struct {
	kind  uint8
	val   int64  // avConst
	vn    uint32 // avInv identity
	depth uint16 // derivation depth, for widening
}

// maxInvDepth caps invariant derivation chains; deeper derivations
// widen to varying so loops converge.
const maxInvDepth = 64

type regState [isa.NumRegs]av

func meetAV(a, b av) av {
	if a.kind == avBot {
		return b
	}
	if b.kind == avBot {
		return a
	}
	if a.kind == avConst && b.kind == avConst && a.val == b.val {
		return a
	}
	if a.kind == avInv && b.kind == avInv && a.vn == b.vn {
		return a
	}
	return av{kind: avTop}
}

func meetState(a, b *regState) (regState, bool) {
	var out regState
	changed := false
	for r := range a {
		out[r] = meetAV(a[r], b[r])
		if out[r] != a[r] {
			changed = true
		}
	}
	return out, changed
}

// vnTable interns invariant-value identities: two derivations with the
// same opcode and operand identities share a vn, so meets of the same
// computation along different paths stay invariant.
type vnTable struct {
	next uint32
	memo map[vnKey]uint32
}

type vnKey struct {
	op   isa.Op
	a, b uint64 // operand identities (kind-tagged)
	imm  int32
}

func newVNTable() *vnTable { return &vnTable{next: 1, memo: map[vnKey]uint32{}} }

func (t *vnTable) fresh() uint32 {
	t.next++
	return t.next
}

func (t *vnTable) expr(op isa.Op, a, b av, imm int32) uint32 {
	k := vnKey{op: op, a: avID(a), b: avID(b), imm: imm}
	if vn, ok := t.memo[k]; ok {
		return vn
	}
	vn := t.fresh()
	t.memo[k] = vn
	return vn
}

func avID(a av) uint64 {
	switch a.kind {
	case avConst:
		return uint64(a.val)<<2 | 1
	case avInv:
		return uint64(a.vn)<<2 | 2
	}
	return 0
}

// analyzer carries the dataflow state of one AnalyzeConstness run.
type analyzer struct {
	cfg  *CFG
	vns  *vnTable
	kill RegSet // registers a call boundary invalidates
}

// resultAV computes the abstract value a result-producing instruction
// writes (the value an after-hook observes), given the pre-state.
func (an *analyzer) resultAV(in isa.Inst, pc int, st *regState) av {
	switch in.Op {
	case isa.OpJsr, isa.OpJsrr:
		return av{kind: avConst, val: int64(pc + 1)} // link value
	}
	if in.Op.Class() == isa.ClassLoad {
		return av{kind: avTop}
	}
	a := st[in.Ra]
	b := av{kind: avConst, val: 0}
	if in.Op.Form() == isa.FormRRR {
		b = st[in.Rb]
	}
	if a.kind == avConst && b.kind == avConst {
		if v, ok := EvalPure(in.Op, a.val, b.val, in.Imm); ok {
			return av{kind: avConst, val: v}
		}
		return av{kind: avTop} // faulting op (div/rem by zero)
	}
	if (a.kind == avConst || a.kind == avInv) && (b.kind == avConst || b.kind == avInv) {
		depth := a.depth
		if b.depth > depth {
			depth = b.depth
		}
		if depth+1 > maxInvDepth {
			return av{kind: avTop}
		}
		return av{kind: avInv, vn: an.vns.expr(in.Op, a, b, in.Imm), depth: depth + 1}
	}
	return av{kind: avTop}
}

// apply advances st across in. propagateCall delivers the callee-entry
// state of calls; pass a no-op when replaying.
func (an *analyzer) apply(in isa.Inst, pc int, st *regState, propagateCall func(callee int, at *regState)) {
	switch in.Op {
	case isa.OpJsr, isa.OpJsrr:
		// The callee sees the state at the call with the link register
		// holding the (per-site constant) return pc.
		callee := *st
		if in.Rd != isa.RegZero {
			callee[in.Rd] = av{kind: avConst, val: int64(pc + 1)}
		}
		if in.Op == isa.OpJsr {
			if b := an.cfg.blockIndex(int(in.Imm)); b >= 0 {
				propagateCall(b, &callee)
			}
		} else {
			for _, b := range an.cfg.AddressTaken {
				propagateCall(b, &callee)
			}
		}
		// Across the call, only registers provably untouched by the
		// whole image keep their facts.
		for r := uint8(0); r < isa.NumRegs; r++ {
			if an.kill.Has(r) {
				st[r] = av{kind: avTop}
			}
		}
		if in.Rd != isa.RegZero {
			st[in.Rd] = av{kind: avTop}
		}
		return
	case isa.OpSyscall:
		st[isa.RegV0] = av{kind: avTop}
		return
	}
	if !in.Op.HasDest() || in.Rd == isa.RegZero {
		return
	}
	st[in.Rd] = an.resultAV(in, pc, st)
}

// AnalyzeConstness runs the whole-program constness dataflow. The seed
// is exact VM semantics: every register starts at zero except sp and fp,
// which start at the (run-configured, hence invariant-but-unknown)
// memory top. Calls clobber caller-saved registers plus any register
// the program writes anywhere — callee-saved preservation is only
// assumed for registers no instruction in the image touches, so the
// analysis never trusts a convention the code could break. Programs
// containing jmp or jsrr get the Degraded fallback (see Constness).
func AnalyzeConstness(p *program.Program) *Constness {
	cn := &Constness{
		prog:  p,
		Facts: make([]ConstFact, len(p.Code)),
	}
	for _, in := range p.Code {
		if in.Op == isa.OpJmp || in.Op == isa.OpJsrr {
			cn.Degraded = true
			break
		}
	}
	if cn.Degraded {
		// Indirect control flow can land anywhere, including mid-block,
		// with arbitrary register state. Only facts that hold under any
		// machine state survive: results computed purely from the
		// hardwired zero register and immediates.
		for pc, in := range p.Code {
			cn.Facts[pc] = syntacticFact(in)
		}
		return cn
	}

	cfg := ForProgram(p)
	cn.cfg = cfg
	cn.reached = cfg.Reachable()
	if len(p.Code) == 0 {
		return cn
	}
	an := &analyzer{cfg: cfg, vns: newVNTable()}
	for _, in := range p.Code {
		_, def := UseDef(in)
		an.kill |= def
	}
	for _, r := range CallerSaved {
		an.kill.Add(r)
	}

	// Entry state: zeroed registers, invariant sp/fp (equal values).
	var entry regState
	for r := range entry {
		entry[r] = av{kind: avConst, val: 0}
	}
	spInit := an.vns.fresh()
	entry[isa.RegSP] = av{kind: avInv, vn: spInit}
	entry[isa.RegFP] = av{kind: avInv, vn: spInit}

	nb := len(cfg.Blocks)
	in := make([]*regState, nb)
	seen := make([]bool, nb)
	var worklist []int
	push := func(b int, st *regState) {
		if !seen[b] {
			seen[b] = true
			cp := *st
			in[b] = &cp
			worklist = append(worklist, b)
			return
		}
		merged, changed := meetState(in[b], st)
		if changed {
			*in[b] = merged
			worklist = append(worklist, b)
		}
	}

	eb := cfg.EntryBlock()
	if eb < 0 {
		return cn
	}
	push(eb, &entry)

	for len(worklist) > 0 {
		b := worklist[0]
		worklist = worklist[1:]
		st := *in[b]
		blk := &cfg.Blocks[b]
		for pc := blk.Start; pc < blk.End; pc++ {
			an.apply(cfg.Code[pc], pc, &st, push)
		}
		for _, s := range blk.Succs {
			push(s, &st)
		}
	}

	// Final pass: replay each processed block with its fixpoint entry
	// state and record the computed-result fact of every
	// result-producing instruction.
	noCall := func(int, *regState) {}
	for b := range cfg.Blocks {
		if !seen[b] {
			continue
		}
		st := *in[b]
		blk := &cfg.Blocks[b]
		for pc := blk.Start; pc < blk.End; pc++ {
			ins := cfg.Code[pc]
			if ins.Op.HasDest() {
				switch r := an.resultAV(ins, pc, &st); r.kind {
				case avConst:
					cn.Facts[pc] = ConstFact{Kind: KindConst, Value: r.val}
				case avInv:
					cn.Facts[pc] = ConstFact{Kind: KindInvariant}
				default:
					cn.Facts[pc] = ConstFact{Kind: KindVarying}
				}
			}
			an.apply(ins, pc, &st, noCall)
		}
	}
	return cn
}

// syntacticFact classifies an instruction using no dataflow at all:
// only operands hardwired to the zero register count as known. This is
// sound under arbitrary control flow and register state.
func syntacticFact(in isa.Inst) ConstFact {
	if !in.Op.HasDest() {
		return ConstFact{Kind: KindVarying}
	}
	switch in.Op.Form() {
	case isa.FormRRI:
		if in.Ra == isa.RegZero {
			if v, ok := EvalPure(in.Op, 0, 0, in.Imm); ok {
				return ConstFact{Kind: KindConst, Value: v}
			}
		}
	case isa.FormRRR:
		if in.Ra == isa.RegZero && in.Rb == isa.RegZero {
			if v, ok := EvalPure(in.Op, 0, 0, in.Imm); ok {
				return ConstFact{Kind: KindConst, Value: v}
			}
		}
	}
	return ConstFact{Kind: KindVarying}
}

// Reached reports whether the instruction at pc can execute. Under
// Degraded analysis everything is assumed reachable.
func (cn *Constness) Reached(pc int) bool {
	if cn.Degraded {
		return true
	}
	b := cn.cfg.BlockContaining(pc)
	return b >= 0 && cn.reached[b]
}

// Kind returns the constness class of pc's computed result. PCs in
// unreachable blocks report KindUnreached regardless of their local
// fact.
func (cn *Constness) Kind(pc int) ConstKind {
	if pc < 0 || pc >= len(cn.Facts) {
		return KindUnreached
	}
	if !cn.Reached(pc) {
		return KindUnreached
	}
	return cn.Facts[pc].Kind
}

// ConstValue returns the proven constant computed value of pc. ok is
// false unless the pc is reachable and its result is KindConst.
func (cn *Constness) ConstValue(pc int) (int64, bool) {
	if cn.Kind(pc) != KindConst {
		return 0, false
	}
	return cn.Facts[pc].Value, true
}

// PruneReport summarizes what static pruning saves for one program.
type PruneReport struct {
	Candidates int // result-producing sites the filter selects
	Const      int // provably constant (TNV table skippable, value known)
	Zero       int // the Const subset whose value is zero
	Invariant  int // provably single-valued per run
	Unreached  int // provably never execute
}

// Pruned returns how many candidate sites need no TNV table: the
// provably-constant ones plus the provably-unreachable ones.
func (r PruneReport) Pruned() int { return r.Const + r.Unreached }

// Prune classifies every instruction the filter selects (nil selects
// all result-producing instructions, matching the profiler's default).
func (cn *Constness) Prune(filter func(isa.Inst) bool) PruneReport {
	var rep PruneReport
	for pc, in := range cn.prog.Code {
		if !in.Op.HasDest() {
			continue
		}
		if filter != nil && !filter(in) {
			continue
		}
		rep.Candidates++
		switch cn.Kind(pc) {
		case KindConst:
			rep.Const++
			if cn.Facts[pc].Value == 0 {
				rep.Zero++
			}
		case KindInvariant:
			rep.Invariant++
		case KindUnreached:
			rep.Unreached++
		}
	}
	return rep
}

// ShouldPrune reports whether the profiler can skip allocating a TNV
// table for pc: its value is proven constant or it can never execute.
// This is the function handed to core.Options.Prune.
func (cn *Constness) ShouldPrune(pc int, in isa.Inst) bool {
	switch cn.Kind(pc) {
	case KindConst, KindUnreached:
		return true
	}
	return false
}
