package analysis

import (
	"testing"
)

// --- Natural loops and trip counts ---

func TestLoopsTripCountExact(t *testing.T) {
	p := mustAssemble(t, `
main:   addi t0, zero, 12
loop:   add  t1, t1, t0
        addi t0, t0, -3
        bne  t0, loop
        syscall exit
`)
	li := AnalyzeLoops(p)
	if len(li.Loops) != 1 {
		t.Fatalf("loops = %d, want 1", len(li.Loops))
	}
	l := li.Loops[0]
	if l.Trip != 4 || !l.TripExact {
		t.Errorf("trip = %d exact=%v, want 4 exact", l.Trip, l.TripExact)
	}
	if l.Depth != 1 || l.Parent != -1 {
		t.Errorf("depth=%d parent=%d, want outermost", l.Depth, l.Parent)
	}
	// Frequency: loop body runs Trip times, entry code once.
	if f := li.FreqOf(0); f != 1 {
		t.Errorf("entry freq = %v, want 1", f)
	}
	if f := li.FreqOf(1); f != 4 {
		t.Errorf("body freq = %v, want 4", f)
	}
}

func TestLoopsTripCountNonUnitNonDivisible(t *testing.T) {
	// Step 5 does not divide 12: the bne never sees zero, so no trip
	// claim may be made (the loop would wrap past zero).
	p := mustAssemble(t, `
main:   addi t0, zero, 12
loop:   addi t0, t0, -5
        bne  t0, loop
        syscall exit
`)
	li := AnalyzeLoops(p)
	if len(li.Loops) != 1 {
		t.Fatalf("loops = %d, want 1", len(li.Loops))
	}
	if li.Loops[0].Trip != 0 {
		t.Errorf("trip = %d, want 0 (step does not divide init)", li.Loops[0].Trip)
	}
}

func TestLoopsTripUpperBoundWithEarlyExit(t *testing.T) {
	p := mustAssemble(t, `
main:   addi t0, zero, 6
loop:   ldbu t1, 0(t0)
        bne  t1, out
        addi t0, t0, -1
        bne  t0, loop
out:    syscall exit
`)
	li := AnalyzeLoops(p)
	if len(li.Loops) != 1 {
		t.Fatalf("loops = %d, want 1", len(li.Loops))
	}
	l := li.Loops[0]
	if l.Trip != 6 || l.TripExact {
		t.Errorf("trip = %d exact=%v, want 6 as an upper bound", l.Trip, l.TripExact)
	}
}

func TestLoopsNesting(t *testing.T) {
	p := mustAssemble(t, `
main:   addi t0, zero, 3
outer:  addi t1, zero, 5
inner:  add  t2, t2, t1
        addi t1, t1, -1
        bne  t1, inner
        addi t0, t0, -1
        bne  t0, outer
        syscall exit
`)
	li := AnalyzeLoops(p)
	if len(li.Loops) != 2 {
		t.Fatalf("loops = %d, want 2", len(li.Loops))
	}
	var outer, inner *Loop
	for _, l := range li.Loops {
		if l.Depth == 1 {
			outer = l
		} else {
			inner = l
		}
	}
	if outer == nil || inner == nil {
		t.Fatalf("nesting depths wrong: %+v", li.Loops)
	}
	if inner.Parent < 0 || li.Loops[inner.Parent] != outer {
		t.Errorf("inner loop's parent is not the outer loop")
	}
	if outer.Trip != 3 || inner.Trip != 5 {
		t.Errorf("trips = %d/%d, want 3/5", outer.Trip, inner.Trip)
	}
	// Inner body frequency multiplies the nest: 3 * 5.
	ib := li.cfg.BlockContaining(2)
	if li.Freq[ib] != 15 {
		t.Errorf("inner body freq = %v, want 15", li.Freq[ib])
	}
	// The instruction-level accessor agrees.
	if f := li.FreqOf(2); f != 15 {
		t.Errorf("FreqOf(2) = %v, want 15", f)
	}
}

func TestLoopsTripRejectsInLoopRedefinition(t *testing.T) {
	// A call inside the loop may clobber the counter (jsr kills every
	// program-written register): no trip claim.
	p := mustAssemble(t, `
main:   addi t0, zero, 4
loop:   jsr  f
        addi t0, t0, -1
        bne  t0, loop
        syscall exit
.proc f
f:      addi t0, zero, 2
        ret
.endproc
`)
	li := AnalyzeLoops(p)
	for _, l := range li.Loops {
		if l.Trip != 0 {
			t.Errorf("trip = %d, want 0 (callee clobbers the counter)", l.Trip)
		}
	}
}

// --- At-most-once proofs ---

func TestLoopsOnce(t *testing.T) {
	p := mustAssemble(t, `
main:   addi t0, zero, 9
        jsr  f
loop:   addi t0, t0, -1
        jsr  f
        bne  t0, loop
        jsr  g
        syscall exit
.proc f
f:      addi t1, t1, 1
        ret
.endproc
.proc g
g:      addi t2, zero, 7
        ret
.endproc
`)
	li := AnalyzeLoops(p)
	if !li.Once(0) {
		t.Error("entry instruction must be at-most-once")
	}
	if li.Once(2) {
		t.Error("loop body claimed at-most-once")
	}
	// f is called from two sites, one inside a loop: not once.
	if li.Once(7) {
		t.Error("f body claimed at-most-once despite loop call site")
	}
	// g is called exactly once from straight-line code: once.
	if !li.Once(9) {
		t.Error("g body must be at-most-once (single straight-line call)")
	}
}

func TestLoopsOnceRejectsRecursion(t *testing.T) {
	p := mustAssemble(t, `
main:   jsr  f
        syscall exit
.proc f
f:      beq  a0, done
        addi a0, a0, -1
        jsr  f
done:   ret
.endproc
`)
	li := AnalyzeLoops(p)
	// The recursive callee may run many times per run.
	if li.Once(3) {
		t.Error("recursive procedure body claimed at-most-once")
	}
	if !li.Once(0) {
		t.Error("the single call site itself is at-most-once")
	}
}

func TestLoopsDegradedMakesNoOnceClaims(t *testing.T) {
	p := mustAssemble(t, `
main:   addi t0, zero, 4
        jmp  t0
        nop
        nop
tgt:    syscall exit
`)
	li := AnalyzeLoops(p)
	if !li.Degraded {
		t.Fatal("indirect jump must degrade the loop analysis")
	}
	for pc := range p.Code {
		if li.Once(pc) {
			t.Errorf("once claimed at pc %d under degraded analysis", pc)
		}
	}
}

func TestLoopsHeaderPC(t *testing.T) {
	p := mustAssemble(t, `
main:   addi t0, zero, 4
loop:   addi t0, t0, -1
        bne  t0, loop
        syscall exit
`)
	li := AnalyzeLoops(p)
	if len(li.Loops) != 1 {
		t.Fatalf("loops = %d, want 1", len(li.Loops))
	}
	if pc := li.HeaderPC(li.Loops[0]); pc != 1 {
		t.Errorf("HeaderPC = %d, want 1", pc)
	}
}
