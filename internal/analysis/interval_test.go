package analysis

import (
	"math"
	"testing"

	"valueprof/internal/isa"
)

// --- Interval lattice ops ---

func TestIntervalJoin(t *testing.T) {
	cases := []struct {
		name string
		a, b Interval
		want Interval
	}{
		{"disjoint hull", Interval{1, 3}, Interval{10, 20}, Interval{1, 20}},
		{"contained", Interval{0, 100}, Interval{5, 7}, Interval{0, 100}},
		{"empty left", EmptyInterval(), Interval{-4, 4}, Interval{-4, 4}},
		{"empty right", Interval{-4, 4}, EmptyInterval(), Interval{-4, 4}},
		{"both empty", EmptyInterval(), EmptyInterval(), EmptyInterval()},
		{"top absorbs", TopInterval(), Single(9), TopInterval()},
		{"singletons", Single(2), Single(-2), Interval{-2, 2}},
	}
	for _, c := range cases {
		if got := c.a.Join(c.b); got != c.want {
			t.Errorf("%s: %s join %s = %s, want %s", c.name, c.a, c.b, got, c.want)
		}
		// Join is commutative.
		if got := c.b.Join(c.a); got != c.want {
			t.Errorf("%s (swapped): got %s, want %s", c.name, got, c.want)
		}
	}
}

func TestIntervalMeet(t *testing.T) {
	cases := []struct {
		name string
		a, b Interval
		want Interval
	}{
		{"overlap", Interval{0, 10}, Interval{5, 20}, Interval{5, 10}},
		{"disjoint", Interval{0, 3}, Interval{5, 9}, EmptyInterval()},
		{"top identity", TopInterval(), Interval{-7, 7}, Interval{-7, 7}},
		{"point", Interval{0, 10}, Single(10), Single(10)},
		{"empty annihilates", EmptyInterval(), TopInterval(), EmptyInterval()},
	}
	for _, c := range cases {
		if got := c.a.Meet(c.b); got != c.want {
			t.Errorf("%s: %s meet %s = %s, want %s", c.name, c.a, c.b, got, c.want)
		}
	}
}

func TestIntervalWiden(t *testing.T) {
	cases := []struct {
		name string
		a, b Interval
		want Interval
	}{
		{"stable", Interval{0, 10}, Interval{0, 10}, Interval{0, 10}},
		{"hi grows", Interval{0, 10}, Interval{0, 11}, Interval{0, math.MaxInt64}},
		{"lo shrinks", Interval{0, 10}, Interval{-1, 10}, Interval{math.MinInt64, 10}},
		{"both move", Interval{0, 0}, Interval{-5, 5}, TopInterval()},
		{"from empty", EmptyInterval(), Interval{3, 4}, Interval{3, 4}},
	}
	for _, c := range cases {
		if got := c.a.Widen(c.b); got != c.want {
			t.Errorf("%s: %s widen %s = %s, want %s", c.name, c.a, c.b, got, c.want)
		}
	}
	// Widening must be an upper bound of both arguments.
	w := Interval{2, 5}.Widen(Interval{0, 9})
	if !w.Contains(0) || !w.Contains(9) || !w.Contains(2) {
		t.Errorf("widen not an upper bound: %s", w)
	}
}

func TestIntervalNarrow(t *testing.T) {
	cases := []struct {
		name string
		a, b Interval
		want Interval
	}{
		// Narrowing only refines endpoints the widening blew to infinity.
		{"recover hi", Interval{0, math.MaxInt64}, Interval{0, 17}, Interval{0, 17}},
		{"recover lo", Interval{math.MinInt64, 4}, Interval{-3, 4}, Interval{-3, 4}},
		{"keep finite", Interval{0, 10}, Interval{2, 8}, Interval{0, 10}},
		{"top to bounded", TopInterval(), Interval{-1, 1}, Interval{-1, 1}},
	}
	for _, c := range cases {
		if got := c.a.Narrow(c.b); got != c.want {
			t.Errorf("%s: %s narrow %s = %s, want %s", c.name, c.a, c.b, got, c.want)
		}
	}
}

// --- Transfer functions: overflow saturation ---

func TestIntervalTransferOverflowSaturates(t *testing.T) {
	max := int64(math.MaxInt64)
	min := int64(math.MinInt64)
	cases := []struct {
		name string
		op   isa.Op
		a, b Interval
		want Interval
	}{
		{"add ok", isa.OpAdd, Interval{1, 2}, Interval{10, 20}, Interval{11, 22}},
		{"add overflow", isa.OpAdd, Interval{max - 1, max}, Interval{1, 2}, TopInterval()},
		{"sub ok", isa.OpSub, Interval{10, 20}, Interval{1, 2}, Interval{8, 19}},
		{"sub underflow", isa.OpSub, Interval{min, min + 1}, Interval{1, 1}, TopInterval()},
		{"mul ok", isa.OpMul, Interval{-3, 3}, Interval{2, 4}, Interval{-12, 12}},
		{"mul overflow", isa.OpMul, Interval{max / 2, max}, Interval{2, 2}, TopInterval()},
		{"mul min by -1", isa.OpMul, Single(min), Single(-1), TopInterval()},
		{"div positive", isa.OpDiv, Interval{10, 20}, Interval{2, 5}, Interval{2, 10}},
		{"div maybe zero", isa.OpDiv, Interval{10, 20}, Interval{0, 5}, TopInterval()},
		{"rem bound", isa.OpRem, TopInterval(), Interval{3, 10}, Interval{-9, 9}},
		{"rem nonneg dividend", isa.OpRem, Interval{0, max}, Interval{3, 10}, Interval{0, 9}},
		{"and nonneg", isa.OpAnd, Interval{0, 255}, TopInterval(), Interval{0, 255}},
		{"sll overflow", isa.OpSll, Interval{1, 1 << 40}, Single(32), TopInterval()},
		{"sll ok", isa.OpSll, Single(3), Single(2), Single(12)},
		{"srl nonneg", isa.OpSrl, Interval{0, 1024}, Single(4), Interval{0, 64}},
		{"sra halves", isa.OpSra, Interval{-8, 8}, Single(1), Interval{-4, 4}},
		{"cmp proved", isa.OpCmplt, Interval{0, 4}, Interval{10, 12}, Single(1)},
		{"cmp refuted", isa.OpCmplt, Interval{10, 12}, Interval{0, 4}, Single(0)},
		{"cmp unknown", isa.OpCmplt, Interval{0, 10}, Interval{5, 6}, Interval{0, 1}},
	}
	for _, c := range cases {
		got := intervalOf(c.op, c.a, c.b)
		if got != c.want {
			t.Errorf("%s: %v(%s, %s) = %s, want %s", c.name, c.op, c.a, c.b, got, c.want)
		}
		// Saturation soundness spot-check: result must contain the product
		// of the corner values when they are representable.
		if !got.IsTop() && !c.a.IsEmpty() && !c.b.IsEmpty() {
			if v, ok := EvalPure(c.op, c.a.Lo, c.b.Lo, 0); ok && !got.Contains(v) {
				t.Errorf("%s: result %s misses corner value %d", c.name, got, v)
			}
		}
	}
}

func TestRefineRel(t *testing.T) {
	cases := []struct {
		name  string
		op    isa.Op
		a, b  Interval
		holds bool
		wantA Interval
		wantB Interval
	}{
		{"lt holds", isa.OpCmplt, Interval{0, 10}, Interval{0, 5}, true, Interval{0, 4}, Interval{1, 5}},
		{"lt fails is ge", isa.OpCmplt, Interval{0, 10}, Interval{4, 20}, false, Interval{4, 10}, Interval{4, 10}},
		{"eq meets", isa.OpCmpeq, Interval{0, 10}, Interval{5, 20}, true, Interval{5, 10}, Interval{5, 10}},
		{"ne trims point", isa.OpCmpeq, Interval{0, 10}, Single(10), false, Interval{0, 9}, Single(10)},
		{"le holds", isa.OpCmple, Interval{0, 10}, Interval{0, 5}, true, Interval{0, 5}, Interval{0, 5}},
	}
	for _, c := range cases {
		ga, gb := refineRel(c.op, c.a, c.b, c.holds)
		if ga != c.wantA || gb != c.wantB {
			t.Errorf("%s: got (%s, %s), want (%s, %s)", c.name, ga, gb, c.wantA, c.wantB)
		}
	}
}

// --- Interval dataflow over real programs ---

func TestIntervalsLoopCounter(t *testing.T) {
	p := mustAssemble(t, `
main:   addi t0, zero, 0
loop:   addi t0, t0, 1
        cmplti t1, t0, 10
        bne  t1, loop
done:   addi t2, t0, 0
        syscall exit
`)
	ivs := AnalyzeIntervals(p)
	if ivs.Degraded {
		t.Fatal("degraded on direct-flow program")
	}
	// Threshold widening stops the counter's upper bound at the guard
	// constant instead of +inf, so the increment inside the loop keeps a
	// tight box.
	iv, ok := ivs.At(1)
	if !ok {
		t.Fatal("no fact at pc 1")
	}
	if want := (Interval{1, 10}); iv != want {
		t.Errorf("loop increment fact = %s, want %s", iv, want)
	}
	// After the loop the guard has failed: t0 == 10 exactly.
	if iv, _ := ivs.At(4); iv != Single(10) {
		t.Errorf("loop exit fact = %s, want [10]", iv)
	}
}

func TestIntervalsBranchNarrowing(t *testing.T) {
	p := mustAssemble(t, `
main:   syscall getint
        cmplt  t0, v0, zero
        bne    t0, neg
        addi   t1, v0, 0
        syscall exit
neg:    addi   t2, v0, 0
        syscall exit
`)
	ivs := AnalyzeIntervals(p)
	// Fall-through arm: cmplt v0, zero failed, so v0 >= 0.
	iv, _ := ivs.At(3)
	if iv.Lo != 0 || iv.Hi != math.MaxInt64 {
		t.Errorf("fall-through fact = %s, want [0, +inf]", iv)
	}
	// Taken arm: v0 < 0.
	iv, _ = ivs.At(5)
	if iv.Lo != math.MinInt64 || iv.Hi != -1 {
		t.Errorf("taken fact = %s, want [-inf, -1]", iv)
	}
}

func TestIntervalsDeadEdge(t *testing.T) {
	p := mustAssemble(t, `
main:   addi t0, zero, 3
        cmplt t1, t0, zero
        bne  t1, neg
        addi t2, zero, 1
        syscall exit
neg:    addi t3, zero, 2
        syscall exit
`)
	ivs := AnalyzeIntervals(p)
	var taken []DeadEdge
	for _, d := range ivs.DeadEdges() {
		taken = append(taken, d)
	}
	if len(taken) != 1 || taken[0].PC != 2 || !taken[0].Taken {
		t.Errorf("dead edges = %v, want the taken arm of pc 2", taken)
	}
	// The dead arm's block body must be unreached.
	if iv, _ := ivs.At(5); !iv.IsEmpty() {
		t.Errorf("dead arm fact = %s, want empty", iv)
	}
}

func TestIntervalsWraparound(t *testing.T) {
	// Repeated doubling overflows int64; the fact must widen to top, not
	// claim a false bound.
	p := mustAssemble(t, `
main:   addi t0, zero, 1
        addi t1, zero, 100
loop:   add  t0, t0, t0
        addi t1, t1, -1
        bne  t1, loop
        syscall exit
`)
	ivs := AnalyzeIntervals(p)
	iv, _ := ivs.At(2)
	if !iv.Contains(math.MinInt64) && iv.Lo > 2 {
		t.Errorf("doubling fact %s must keep lower bound <= 2", iv)
	}
	if iv.Hi != math.MaxInt64 {
		t.Errorf("doubling fact %s must saturate its upper bound", iv)
	}
}

func TestIntervalsDegradedSyntactic(t *testing.T) {
	p := mustAssemble(t, `
main:   addi t0, zero, 20
        jmp  t0
        ldbu t1, 0(t0)
        cmplt t2, t1, t0
        syscall exit
`)
	ivs := AnalyzeIntervals(p)
	if !ivs.Degraded {
		t.Fatal("indirect jump must degrade the analysis")
	}
	if iv, _ := ivs.At(0); iv != Single(20) {
		t.Errorf("syntactic zero-reg fact = %s, want [20]", iv)
	}
	if iv, _ := ivs.At(2); iv != (Interval{0, 255}) {
		t.Errorf("syntactic byte-load fact = %s, want [0,255]", iv)
	}
	if iv, _ := ivs.At(3); iv != (Interval{0, 1}) {
		t.Errorf("syntactic compare fact = %s, want [0,1]", iv)
	}
}

func TestIntervalsCalleeState(t *testing.T) {
	p := mustAssemble(t, `
main:   addi a0, zero, 7
        jsr  f
        syscall exit
.proc f
f:      addi t0, a0, 1
        ret
.endproc
`)
	ivs := AnalyzeIntervals(p)
	iv, _ := ivs.At(3)
	if iv != Single(8) {
		t.Errorf("callee fact = %s, want [8] (argument propagated through the call)", iv)
	}
}
