package analysis

import (
	"fmt"
	"math"

	"valueprof/internal/isa"
)

// Interval is a closed range [Lo, Hi] of int64 values, the abstract
// domain of the value-range dataflow (AnalyzeIntervals). Lo > Hi is the
// empty interval (bottom); [MinInt64, MaxInt64] is top. All transfer
// functions are wraparound-correct for VRISC semantics: whenever a
// concrete operation could overflow two's-complement 64-bit arithmetic,
// the abstract result saturates to top rather than claiming a wrapped
// range that excludes feasible values.
type Interval struct {
	Lo, Hi int64
}

// TopInterval is the full int64 range (no information).
func TopInterval() Interval { return Interval{math.MinInt64, math.MaxInt64} }

// EmptyInterval is the canonical empty interval (no feasible value).
func EmptyInterval() Interval { return Interval{math.MaxInt64, math.MinInt64} }

// Single is the singleton interval [v, v].
func Single(v int64) Interval { return Interval{v, v} }

func (iv Interval) IsEmpty() bool { return iv.Lo > iv.Hi }
func (iv Interval) IsTop() bool {
	return iv.Lo == math.MinInt64 && iv.Hi == math.MaxInt64
}

// Contains reports whether v lies in the interval.
func (iv Interval) Contains(v int64) bool { return iv.Lo <= v && v <= iv.Hi }

// Singleton returns the interval's single value when it has exactly one.
func (iv Interval) Singleton() (int64, bool) {
	if iv.Lo == iv.Hi {
		return iv.Lo, true
	}
	return 0, false
}

// Width is Hi-Lo computed without overflow: 0 for singletons, 2^64-1 for
// top. Meaningless for empty intervals.
func (iv Interval) Width() uint64 { return uint64(iv.Hi) - uint64(iv.Lo) }

// Join is the interval hull (least upper bound).
func (iv Interval) Join(o Interval) Interval {
	if iv.IsEmpty() {
		return o
	}
	if o.IsEmpty() {
		return iv
	}
	out := iv
	if o.Lo < out.Lo {
		out.Lo = o.Lo
	}
	if o.Hi > out.Hi {
		out.Hi = o.Hi
	}
	return out
}

// Meet is the intersection (greatest lower bound); may be empty.
func (iv Interval) Meet(o Interval) Interval {
	out := iv
	if o.Lo > out.Lo {
		out.Lo = o.Lo
	}
	if o.Hi < out.Hi {
		out.Hi = o.Hi
	}
	if out.IsEmpty() {
		return EmptyInterval()
	}
	return out
}

// Widen is the standard interval widening: any endpoint that grew from
// iv (the previous iterate) to o (the next iterate) jumps straight to
// the respective infinity, so ascending chains stabilize in at most two
// widenings per interval.
func (iv Interval) Widen(o Interval) Interval {
	if iv.IsEmpty() {
		return o
	}
	if o.IsEmpty() {
		return iv
	}
	out := iv
	if o.Lo < iv.Lo {
		out.Lo = math.MinInt64
	}
	if o.Hi > iv.Hi {
		out.Hi = math.MaxInt64
	}
	return out
}

// Narrow is the standard interval narrowing: endpoints the widening blew
// to infinity are recovered from o (the next decreasing iterate), finite
// endpoints are kept, so descending chains terminate while staying above
// the true fixpoint.
func (iv Interval) Narrow(o Interval) Interval {
	if iv.IsEmpty() || o.IsEmpty() {
		return iv
	}
	out := iv
	if iv.Lo == math.MinInt64 {
		out.Lo = o.Lo
	}
	if iv.Hi == math.MaxInt64 {
		out.Hi = o.Hi
	}
	if out.IsEmpty() {
		return iv
	}
	return out
}

func (iv Interval) String() string {
	if iv.IsEmpty() {
		return "empty"
	}
	if iv.IsTop() {
		return "top"
	}
	if v, ok := iv.Singleton(); ok {
		return fmt.Sprintf("[%d]", v)
	}
	lo, hi := "-inf", "+inf"
	if iv.Lo != math.MinInt64 {
		lo = fmt.Sprintf("%d", iv.Lo)
	}
	if iv.Hi != math.MaxInt64 {
		hi = fmt.Sprintf("%d", iv.Hi)
	}
	return fmt.Sprintf("[%s,%s]", lo, hi)
}

// Checked arithmetic: ok is false when the int64 operation overflows.

func addOv(a, b int64) (int64, bool) {
	s := a + b
	if (a > 0 && b > 0 && s < 0) || (a < 0 && b < 0 && s >= 0) {
		return 0, false
	}
	return s, true
}

func subOv(a, b int64) (int64, bool) {
	d := a - b
	if (b < 0 && d < a) || (b > 0 && d > a) {
		return 0, false
	}
	return d, true
}

func mulOv(a, b int64) (int64, bool) {
	if a == 0 || b == 0 {
		return 0, true
	}
	p := a * b
	if p/b != a || (a == math.MinInt64 && b == -1) {
		return 0, false
	}
	return p, true
}

func shlOv(a int64, s uint) (int64, bool) {
	r := a << s
	if r>>s != a {
		return 0, false
	}
	return r, true
}

// fillBits returns the smallest value of the form 2^k-1 that is >= x,
// for x >= 0 (all bits at or below x's highest set bit).
func fillBits(x int64) int64 {
	x |= x >> 1
	x |= x >> 2
	x |= x >> 4
	x |= x >> 8
	x |= x >> 16
	x |= x >> 32
	return x
}

// intervalOf is the abstract transfer function for pure register-form
// operations: the interval of op(a, b) given operand intervals.
// Register-immediate opcodes are mapped to their register analog by
// immOperand before reaching here. Unknown or impure opcodes yield top.
func intervalOf(op isa.Op, a, b Interval) Interval {
	if a.IsEmpty() || b.IsEmpty() {
		return EmptyInterval()
	}
	switch op {
	case isa.OpAdd:
		lo, ok1 := addOv(a.Lo, b.Lo)
		hi, ok2 := addOv(a.Hi, b.Hi)
		if ok1 && ok2 {
			return Interval{lo, hi}
		}
	case isa.OpSub:
		lo, ok1 := subOv(a.Lo, b.Hi)
		hi, ok2 := subOv(a.Hi, b.Lo)
		if ok1 && ok2 {
			return Interval{lo, hi}
		}
	case isa.OpMul:
		out := EmptyInterval()
		for _, x := range [2]int64{a.Lo, a.Hi} {
			for _, y := range [2]int64{b.Lo, b.Hi} {
				p, ok := mulOv(x, y)
				if !ok {
					return TopInterval()
				}
				out = out.Join(Single(p))
			}
		}
		return out
	case isa.OpDiv:
		// Only provably positive divisors: then x/y is monotone in each
		// argument over the box, so the extremes sit at the corners, and
		// neither the fault (y=0) nor the MinInt64/-1 wrap can occur.
		if b.Lo >= 1 {
			out := EmptyInterval()
			for _, x := range [2]int64{a.Lo, a.Hi} {
				for _, y := range [2]int64{b.Lo, b.Hi} {
					out = out.Join(Single(x / y))
				}
			}
			return out
		}
	case isa.OpRem:
		if b.Lo >= 1 {
			m := b.Hi - 1 // |x % y| <= y-1, sign follows the dividend
			lo, hi := -m, m
			if a.Lo >= 0 {
				lo = 0
				if a.Hi < hi {
					hi = a.Hi // 0 <= x % y <= x for x >= 0
				}
			} else if a.Hi <= 0 {
				hi = 0
				if a.Lo > lo {
					lo = a.Lo
				}
			}
			return Interval{lo, hi}
		}
	case isa.OpAnd:
		// A non-negative operand bounds the result: 0 <= x&y <= x.
		switch {
		case a.Lo >= 0 && b.Lo >= 0:
			hi := a.Hi
			if b.Hi < hi {
				hi = b.Hi
			}
			return Interval{0, hi}
		case a.Lo >= 0:
			return Interval{0, a.Hi}
		case b.Lo >= 0:
			return Interval{0, b.Hi}
		}
	case isa.OpOr:
		if a.Lo >= 0 && b.Lo >= 0 {
			lo := a.Lo
			if b.Lo > lo {
				lo = b.Lo // x|y >= max(x, y) for non-negative operands
			}
			return Interval{lo, fillBits(a.Hi | b.Hi)}
		}
	case isa.OpXor:
		if a.Lo >= 0 && b.Lo >= 0 {
			return Interval{0, fillBits(a.Hi | b.Hi)}
		}
	case isa.OpSll:
		if s, ok := b.Singleton(); ok {
			sh := uint(uint64(s) & 63)
			lo, ok1 := shlOv(a.Lo, sh)
			hi, ok2 := shlOv(a.Hi, sh)
			if ok1 && ok2 {
				return Interval{lo, hi}
			}
		} else if v, ok := a.Singleton(); ok && v == 0 {
			return Single(0)
		}
	case isa.OpSrl:
		if s, ok := b.Singleton(); ok {
			sh := uint(uint64(s) & 63)
			if sh == 0 {
				return a
			}
			if a.Lo >= 0 {
				return Interval{int64(uint64(a.Lo) >> sh), int64(uint64(a.Hi) >> sh)}
			}
			return Interval{0, math.MaxInt64} // negative inputs reinterpret huge
		}
		if a.Lo >= 0 {
			return Interval{0, a.Hi} // shift 0 keeps x, larger shifts shrink
		}
		return Interval{a.Lo, math.MaxInt64}
	case isa.OpSra:
		if s, ok := b.Singleton(); ok {
			sh := uint(uint64(s) & 63)
			return Interval{a.Lo >> sh, a.Hi >> sh}
		}
		lo, hi := a.Lo, a.Hi
		if lo > 0 {
			lo = 0 // x>>63 = 0 for x >= 0
		}
		if hi < -1 {
			hi = -1 // x>>63 = -1 for x < 0
		}
		return Interval{lo, hi}
	case isa.OpCmpeq, isa.OpCmpne, isa.OpCmplt, isa.OpCmple, isa.OpCmpgt, isa.OpCmpge:
		switch proveRel(op, a, b) {
		case relTrue:
			return Single(1)
		case relFalse:
			return Single(0)
		}
		return Interval{0, 1}
	}
	return TopInterval()
}

// immOperand rewrites a register-immediate instruction as its
// register-form opcode plus the immediate as a singleton interval,
// applying the same immediate normalization the VM applies (shift
// amounts are taken mod 64).
func immOperand(in isa.Inst) (isa.Op, Interval, bool) {
	switch in.Op {
	case isa.OpAddi:
		return isa.OpAdd, Single(int64(in.Imm)), true
	case isa.OpMuli:
		return isa.OpMul, Single(int64(in.Imm)), true
	case isa.OpAndi:
		return isa.OpAnd, Single(int64(in.Imm)), true
	case isa.OpOri:
		return isa.OpOr, Single(int64(in.Imm)), true
	case isa.OpXori:
		return isa.OpXor, Single(int64(in.Imm)), true
	case isa.OpSlli:
		return isa.OpSll, Single(int64(uint32(in.Imm) & 63)), true
	case isa.OpSrli:
		return isa.OpSrl, Single(int64(uint32(in.Imm) & 63)), true
	case isa.OpSrai:
		return isa.OpSra, Single(int64(uint32(in.Imm) & 63)), true
	case isa.OpCmplti:
		return isa.OpCmplt, Single(int64(in.Imm)), true
	case isa.OpCmpeqi:
		return isa.OpCmpeq, Single(int64(in.Imm)), true
	}
	return in.Op, TopInterval(), false
}

// relOutcome is the three-valued result of deciding a comparison over
// intervals.
type relOutcome uint8

const (
	relUnknown relOutcome = iota
	relTrue
	relFalse
)

// proveRel decides "a REL b" over intervals when the boxes make the
// outcome certain.
func proveRel(op isa.Op, a, b Interval) relOutcome {
	switch op {
	case isa.OpCmpeq:
		av, aok := a.Singleton()
		bv, bok := b.Singleton()
		if aok && bok && av == bv {
			return relTrue
		}
		if a.Meet(b).IsEmpty() {
			return relFalse
		}
	case isa.OpCmpne:
		switch proveRel(isa.OpCmpeq, a, b) {
		case relTrue:
			return relFalse
		case relFalse:
			return relTrue
		}
	case isa.OpCmplt:
		if a.Hi < b.Lo {
			return relTrue
		}
		if a.Lo >= b.Hi {
			return relFalse
		}
	case isa.OpCmple:
		if a.Hi <= b.Lo {
			return relTrue
		}
		if a.Lo > b.Hi {
			return relFalse
		}
	case isa.OpCmpgt:
		return proveRel(isa.OpCmplt, b, a)
	case isa.OpCmpge:
		return proveRel(isa.OpCmple, b, a)
	}
	return relUnknown
}

// negateRel returns the opcode computing the logical negation of op.
func negateRel(op isa.Op) isa.Op {
	switch op {
	case isa.OpCmpeq:
		return isa.OpCmpne
	case isa.OpCmpne:
		return isa.OpCmpeq
	case isa.OpCmplt:
		return isa.OpCmpge
	case isa.OpCmpge:
		return isa.OpCmplt
	case isa.OpCmple:
		return isa.OpCmpgt
	case isa.OpCmpgt:
		return isa.OpCmple
	}
	return op
}

// trimValue removes v from the interval when v is an endpoint (the only
// removals an interval can represent). Returns empty when iv is the
// singleton {v}.
func trimValue(iv Interval, v int64) Interval {
	if iv.IsEmpty() || !iv.Contains(v) {
		return iv
	}
	if iv.Lo == v && iv.Hi == v {
		return EmptyInterval()
	}
	out := iv
	if out.Lo == v {
		out.Lo = v + 1
	}
	if out.Hi == v {
		out.Hi = v - 1
	}
	return out
}

// refineRel tightens the operand intervals of "a REL b" under the
// assumption that the comparison holds (holds=true) or fails. Either
// returned interval may be empty, meaning the assumption is infeasible
// for the given boxes. The refinement is a single simultaneous step:
// each side is narrowed against the other side's original box.
func refineRel(op isa.Op, a, b Interval, holds bool) (Interval, Interval) {
	if !holds {
		op = negateRel(op)
	}
	if a.IsEmpty() || b.IsEmpty() {
		return EmptyInterval(), EmptyInterval()
	}
	switch op {
	case isa.OpCmpeq:
		m := a.Meet(b)
		return m, m
	case isa.OpCmpne:
		na, nb := a, b
		if v, ok := b.Singleton(); ok {
			na = trimValue(a, v)
		}
		if v, ok := a.Singleton(); ok {
			nb = trimValue(b, v)
		}
		return na, nb
	case isa.OpCmplt: // a < b
		na, nb := a, b
		if b.Hi == math.MinInt64 {
			na = EmptyInterval()
		} else if b.Hi-1 < na.Hi {
			na.Hi = b.Hi - 1
		}
		if a.Lo == math.MaxInt64 {
			nb = EmptyInterval()
		} else if a.Lo+1 > nb.Lo {
			nb.Lo = a.Lo + 1
		}
		return normEmpty(na), normEmpty(nb)
	case isa.OpCmple: // a <= b
		na, nb := a, b
		if b.Hi < na.Hi {
			na.Hi = b.Hi
		}
		if a.Lo > nb.Lo {
			nb.Lo = a.Lo
		}
		return normEmpty(na), normEmpty(nb)
	case isa.OpCmpgt: // a > b  <=>  b < a
		nb, na := refineRel(isa.OpCmplt, b, a, true)
		return na, nb
	case isa.OpCmpge: // a >= b  <=>  b <= a
		nb, na := refineRel(isa.OpCmple, b, a, true)
		return na, nb
	}
	return a, b
}

func normEmpty(iv Interval) Interval {
	if iv.IsEmpty() {
		return EmptyInterval()
	}
	return iv
}
