package analysis

import (
	"sort"

	"valueprof/internal/isa"
	"valueprof/internal/program"
)

// Block is one basic block: the half-open absolute instruction range
// [Start, End), with successor and predecessor block indices. Succs
// reflect intra-procedural control flow: a call's successor is its
// return point; callee entries are reached through CallSites instead.
type Block struct {
	Start int
	End   int
	Succs []int
	Preds []int
}

// CallSite is one direct or indirect call instruction. Callee is the
// block index of the target's entry, or -1 for an indirect call (jsrr),
// whose possible targets are the CFG's address-taken set.
type CallSite struct {
	PC     int
	Callee int
}

// CFG is the control-flow graph of a code region. Base is the absolute
// pc of Code[0]; all Block pcs are absolute.
type CFG struct {
	Code    []isa.Inst
	Base    int
	EntryPC int

	Blocks []Block
	// AddressTaken holds the block indices whose leader address escapes
	// into a register or the data segment; they are the conservative
	// target set of every indirect jump and jsrr.
	AddressTaken []int
	// CallSites lists every jsr/jsrr in the region.
	CallSites []CallSite

	byStart map[int]int
}

// ForProgram builds the whole-program CFG of a loaded image. Leaders
// include every label and procedure start, so symbol boundaries never
// fall mid-block, and the address-taken set is resolved from constants
// in the code and data segments.
func ForProgram(p *program.Program) *CFG {
	extra := make([]int, 0, len(p.Labels)+len(p.Procs))
	for _, pc := range p.Labels {
		extra = append(extra, pc)
	}
	for _, pr := range p.Procs {
		extra = append(extra, pr.Start)
	}
	taken := addressTaken(p)
	extra = append(extra, taken...)
	c := newCFG(p.Code, 0, p.Entry, extra)
	for _, pc := range taken {
		if b, ok := c.byStart[pc]; ok {
			c.AddressTaken = append(c.AddressTaken, b)
		}
	}
	sort.Ints(c.AddressTaken)
	// Indirect jumps may reach any address-taken block.
	for i := range c.Blocks {
		b := &c.Blocks[i]
		if b.End > b.Start && c.Code[b.End-1].Op == isa.OpJmp {
			b.Succs = append(b.Succs, c.AddressTaken...)
		}
	}
	c.rebuildPreds()
	return c
}

// ForBody builds the intra-procedural CFG of one procedure body whose
// first instruction sits at absolute pc base. Indirect jumps and
// returns are region exits with no successors.
func ForBody(body []isa.Inst, base int) *CFG {
	return newCFG(body, base, base, nil)
}

// addressTaken finds every absolute instruction index that escapes as a
// value: materialized by an li (addi rd, zero, imm) or stored in the
// data segment. The data scan slides a byte window so jump tables are
// found regardless of alignment; the over-approximation only costs
// precision, never soundness.
func addressTaken(p *program.Program) []int {
	n := len(p.Code)
	indirect := false
	for _, in := range p.Code {
		if in.Op == isa.OpJmp || in.Op == isa.OpJsrr {
			indirect = true
			break
		}
	}
	if !indirect {
		return nil
	}
	seen := map[int]bool{}
	for _, in := range p.Code {
		if in.Op == isa.OpAddi && in.Ra == isa.RegZero &&
			int(in.Imm) >= 0 && int(in.Imm) < n {
			seen[int(in.Imm)] = true
		}
	}
	for off := 0; off+8 <= len(p.Data); off++ {
		var v uint64
		for i := 0; i < 8; i++ {
			v |= uint64(p.Data[off+i]) << (8 * i)
		}
		if v < uint64(n) {
			seen[int(v)] = true
		}
	}
	out := make([]int, 0, len(seen))
	for pc := range seen {
		out = append(out, pc)
	}
	sort.Ints(out)
	return out
}

func newCFG(code []isa.Inst, base, entryPC int, extraLeaders []int) *CFG {
	c := &CFG{Code: code, Base: base, EntryPC: entryPC, byStart: map[int]int{}}
	n := len(code)
	if n == 0 {
		return c
	}
	leader := make([]bool, n)
	leader[0] = true
	if entryPC >= base && entryPC < base+n {
		leader[entryPC-base] = true
	}
	for _, pc := range extraLeaders {
		if pc >= base && pc < base+n {
			leader[pc-base] = true
		}
	}
	for i, in := range code {
		if tgt, ok := in.Target(); ok && in.Op != isa.OpJsr {
			if tgt >= base && tgt < base+n {
				leader[tgt-base] = true
			}
		}
		if in.Op == isa.OpJsr {
			if tgt := int(in.Imm); tgt >= base && tgt < base+n {
				leader[tgt-base] = true
			}
		}
		if in.IsBranchOrJump() && i+1 < n {
			leader[i+1] = true
		}
	}

	start := 0
	for i := 1; i <= n; i++ {
		if i == n || leader[i] {
			c.byStart[base+start] = len(c.Blocks)
			c.Blocks = append(c.Blocks, Block{Start: base + start, End: base + i})
			start = i
		}
	}

	for bi := range c.Blocks {
		b := &c.Blocks[bi]
		last := code[b.End-1-base]
		addSucc := func(pc int) {
			if j, ok := c.byStart[pc]; ok {
				b.Succs = append(b.Succs, j)
			}
		}
		switch last.Op {
		case isa.OpBr:
			addSucc(int(last.Imm))
		case isa.OpBeq, isa.OpBne:
			addSucc(int(last.Imm))
			if tgt := int(last.Imm); tgt != b.End {
				addSucc(b.End)
			}
		case isa.OpJsr:
			c.CallSites = append(c.CallSites, CallSite{PC: b.End - 1, Callee: c.blockIndex(int(last.Imm))})
			addSucc(b.End)
		case isa.OpJsrr:
			c.CallSites = append(c.CallSites, CallSite{PC: b.End - 1, Callee: -1})
			addSucc(b.End)
		case isa.OpJmp, isa.OpRet:
			// Indirect exits; ForProgram adds address-taken successors
			// for jmp after construction.
		case isa.OpSyscall:
			if last.Imm != isa.SysExit {
				addSucc(b.End)
			}
		default:
			addSucc(b.End)
		}
	}
	c.rebuildPreds()
	return c
}

func (c *CFG) rebuildPreds() {
	for i := range c.Blocks {
		c.Blocks[i].Preds = c.Blocks[i].Preds[:0]
	}
	for i := range c.Blocks {
		for _, s := range c.Blocks[i].Succs {
			c.Blocks[s].Preds = append(c.Blocks[s].Preds, i)
		}
	}
}

// blockIndex returns the index of the block whose leader is pc, or -1.
func (c *CFG) blockIndex(pc int) int {
	if i, ok := c.byStart[pc]; ok {
		return i
	}
	return -1
}

// BlockAt returns the index of the block whose leader is pc, or -1.
func (c *CFG) BlockAt(pc int) int { return c.blockIndex(pc) }

// BlockContaining returns the index of the block containing pc, or -1.
func (c *CFG) BlockContaining(pc int) int {
	i := sort.Search(len(c.Blocks), func(i int) bool { return c.Blocks[i].End > pc })
	if i < len(c.Blocks) && pc >= c.Blocks[i].Start {
		return i
	}
	return -1
}

// EntryBlock returns the index of the block holding EntryPC, or -1 for
// an empty region.
func (c *CFG) EntryBlock() int { return c.BlockContaining(c.EntryPC) }

// Inst returns the instruction at absolute pc.
func (c *CFG) Inst(pc int) isa.Inst { return c.Code[pc-c.Base] }

// Reachable computes which blocks can execute, following CFG edges plus
// call edges: a jsr reaches its callee, and a jsrr may reach any
// address-taken block.
func (c *CFG) Reachable() []bool {
	seen := make([]bool, len(c.Blocks))
	entry := c.EntryBlock()
	if entry < 0 {
		return seen
	}
	callee := map[int][]int{}
	for _, cs := range c.CallSites {
		b := c.BlockContaining(cs.PC)
		if cs.Callee >= 0 {
			callee[b] = append(callee[b], cs.Callee)
		} else {
			callee[b] = append(callee[b], c.AddressTaken...)
		}
	}
	work := []int{entry}
	seen[entry] = true
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		next := append(append([]int(nil), c.Blocks[b].Succs...), callee[b]...)
		for _, s := range next {
			if !seen[s] {
				seen[s] = true
				work = append(work, s)
			}
		}
	}
	return seen
}
