// Package analysis is the static-analysis framework shared by the
// toolchain: control-flow graphs with indirect-target resolution,
// dominators, reaching definitions, liveness, constant propagation, a
// whole-program constness lattice, global value numbering, and the
// bytecode verifier built on top of them.
//
// The framework serves three consumers:
//
//   - the verifier (Verify), run by vasm/vcc before emitting and by the
//     vlint CLI, which rejects malformed programs with typed diagnostics;
//   - the profiling-candidate pruner (AnalyzeConstness + PruneReport),
//     which proves instruction results constant so the value profiler
//     can skip their TNV tables entirely — a provably-constant PC needs
//     no table, and doubles as a free ground-truth oracle (its observed
//     invariance must be exactly 1.0, which CheckRecord enforces);
//   - the specializer (internal/specialize), whose constant-propagation
//     and liveness passes consume the region-level machinery here
//     instead of private copies.
//
// Two granularities are supported. ForProgram builds the whole-program
// CFG from a program image, resolving indirect-jump and jsrr targets
// from the address-taken set (label constants materialized into
// registers or stored in the data segment). ForBody builds the
// intra-procedural CFG of one procedure body, the view the specializer
// optimizes under.
package analysis

import "valueprof/internal/isa"

// EvalPure computes the result of a side-effect-free register or
// register-immediate opcode from concrete operand values. It returns
// ok=false for opcodes that touch memory or control flow, and for
// divisions by zero (which fault rather than produce a value).
func EvalPure(op isa.Op, a, b int64, imm int32) (int64, bool) {
	im := int64(imm)
	switch op {
	case isa.OpAdd:
		return a + b, true
	case isa.OpSub:
		return a - b, true
	case isa.OpMul:
		return a * b, true
	case isa.OpDiv:
		if b == 0 {
			return 0, false
		}
		return a / b, true
	case isa.OpRem:
		if b == 0 {
			return 0, false
		}
		return a % b, true
	case isa.OpAddi:
		return a + im, true
	case isa.OpMuli:
		return a * im, true
	case isa.OpAnd:
		return a & b, true
	case isa.OpOr:
		return a | b, true
	case isa.OpXor:
		return a ^ b, true
	case isa.OpAndi:
		return a & im, true
	case isa.OpOri:
		return a | im, true
	case isa.OpXori:
		return a ^ im, true
	case isa.OpSll:
		return a << (uint64(b) & 63), true
	case isa.OpSrl:
		return int64(uint64(a) >> (uint64(b) & 63)), true
	case isa.OpSra:
		return a >> (uint64(b) & 63), true
	case isa.OpSlli:
		return a << (uint32(imm) & 63), true
	case isa.OpSrli:
		return int64(uint64(a) >> (uint32(imm) & 63)), true
	case isa.OpSrai:
		return a >> (uint32(imm) & 63), true
	case isa.OpCmpeq:
		return b2i(a == b), true
	case isa.OpCmpne:
		return b2i(a != b), true
	case isa.OpCmplt:
		return b2i(a < b), true
	case isa.OpCmple:
		return b2i(a <= b), true
	case isa.OpCmpgt:
		return b2i(a > b), true
	case isa.OpCmpge:
		return b2i(a >= b), true
	case isa.OpCmplti:
		return b2i(a < im), true
	case isa.OpCmpeqi:
		return b2i(a == im), true
	}
	return 0, false
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
