package analysis_test

import (
	"context"
	"testing"

	"valueprof/internal/analysis"
	"valueprof/internal/isa"
	"valueprof/internal/progen"
	"valueprof/internal/vm"
)

// TestConstnessSoundOnGeneratedPrograms validates the static analysis
// against ground-truth execution of generated programs: a site the
// analysis proves constant must only ever produce that value, a site
// it proves unreached must never execute, and ShouldPrune must never
// veto a site that dynamically takes more than one value. These are
// exactly the soundness facts the profiler's pruning optimization
// depends on.
func TestConstnessSoundOnGeneratedPrograms(t *testing.T) {
	seeds := 40
	if testing.Short() {
		seeds = 8
	}
	for seed := uint64(1); seed <= uint64(seeds); seed++ {
		spec := progen.Generate(progen.Config{Seed: seed})
		prog, err := progen.Build(&spec)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		cn := analysis.AnalyzeConstness(prog)

		// Ground truth: observe every result-producing instruction.
		values := make(map[int][]int64)
		v := vm.New(prog)
		v.Input = progen.InputFor(&spec, 0)
		for pc, in := range prog.Code {
			if !in.Op.HasDest() {
				continue
			}
			pc := pc
			v.HookAfter(pc, func(ev *vm.Event) {
				values[pc] = append(values[pc], ev.Value)
			})
		}
		if outcome, err := v.RunControlled(context.Background()); outcome != vm.OutcomeCompleted {
			t.Fatalf("seed %d: run: %v (%v)", seed, outcome, err)
		}

		for pc, seq := range values {
			if !cn.Reached(pc) {
				t.Errorf("seed %d pc %d: executed %d times but proven unreached", seed, pc, len(seq))
				continue
			}
			if want, ok := cn.ConstValue(pc); ok {
				for _, got := range seq {
					if got != want {
						t.Errorf("seed %d pc %d: proven constant %d but observed %d", seed, pc, want, got)
						break
					}
				}
			}
			if cn.ShouldPrune(pc, prog.Code[pc]) {
				for _, got := range seq[1:] {
					if got != seq[0] {
						t.Errorf("seed %d pc %d: pruned but takes values %d and %d", seed, pc, seq[0], got)
						break
					}
				}
			}
		}

		// The prune report must stay internally consistent and agree
		// with the per-pc predicate it summarizes.
		filter := func(in isa.Inst) bool { return in.Op.HasDest() }
		rep := cn.Prune(filter)
		if rep.Pruned() != rep.Const+rep.Unreached {
			t.Errorf("seed %d: Pruned() %d != Const %d + Unreached %d",
				seed, rep.Pruned(), rep.Const, rep.Unreached)
		}
		pruned := 0
		for pc, in := range prog.Code {
			if filter(in) && cn.ShouldPrune(pc, in) {
				pruned++
			}
		}
		if pruned != rep.Pruned() {
			t.Errorf("seed %d: ShouldPrune vetoes %d sites, report says %d", seed, pruned, rep.Pruned())
		}
	}
}

// TestVerifyAcceptsEmittedAssembly pins the generator contract the
// difftest pipeline relies on: progen output passes the verifier with
// zero diagnostics of any severity, so a future generator or verifier
// change that starts tripping warnings is caught here rather than as
// mysterious vfuzz noise.
func TestVerifyAcceptsEmittedAssembly(t *testing.T) {
	for seed := uint64(100); seed < 120; seed++ {
		spec := progen.Generate(progen.Config{Seed: seed})
		prog, err := progen.Build(&spec)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if diags := analysis.Verify(prog); len(diags) != 0 {
			t.Fatalf("seed %d: %d diagnostics, first: %s", seed, len(diags), diags[0].String())
		}
	}
}
