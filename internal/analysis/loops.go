package analysis

import (
	"sort"

	"valueprof/internal/isa"
	"valueprof/internal/program"
)

// Loop is one natural loop: the set of blocks that can reach a back
// edge's source without passing its header. Loops sharing a header are
// merged, so headers identify loops uniquely.
type Loop struct {
	Header int   // block index of the loop header
	Blocks []int // sorted block indices, header included
	Parent int   // index of the enclosing loop in LoopInfo.Loops, -1
	Depth  int   // nesting depth, 1 = outermost

	// Trip is the proven per-entry trip count (body executions per time
	// the loop is entered), 0 when underivable. TripExact distinguishes
	// an exact count from an upper bound (the loop has early exits).
	Trip      int64
	TripExact bool
}

func (l *Loop) contains(b int) bool {
	i := sort.SearchInts(l.Blocks, b)
	return i < len(l.Blocks) && l.Blocks[i] == b
}

// LoopInfo is the result of AnalyzeLoops: the natural loops of the
// whole-program CFG (found per procedure, since callee entries are not
// reachable along successor edges), trip-count bounds, per-block static
// execution-frequency estimates, and at-most-once execution proofs.
type LoopInfo struct {
	prog *program.Program
	cfg  *CFG
	// Degraded mirrors Constness.Degraded; no at-most-once claims are
	// made for programs with indirect control flow.
	Degraded bool

	Loops  []*Loop
	LoopOf []int     // block -> innermost containing loop index, -1
	Freq   []float64 // block -> estimated executions per run

	once []bool
}

// Frequency model: unknown trip counts estimate defaultTrip iterations,
// and every estimate saturates at freqCap so nested unknowns cannot
// overflow.
const (
	defaultTrip = 8
	freqCap     = 1e12
)

// AnalyzeLoops identifies natural loops via per-procedure dominator
// trees, derives trip-count bounds from down-counting induction
// patterns, and estimates per-block execution frequencies through the
// call graph. All claims except Freq are proofs: Trip/TripExact hold
// whenever the analysis emits them, and Once(pc) implies the
// instruction executes at most one time per run.
func AnalyzeLoops(p *program.Program) *LoopInfo {
	li := &LoopInfo{prog: p}
	for _, in := range p.Code {
		if in.Op == isa.OpJmp || in.Op == isa.OpJsrr {
			li.Degraded = true
			break
		}
	}
	cfg := ForProgram(p)
	li.cfg = cfg
	nb := len(cfg.Blocks)
	li.LoopOf = make([]int, nb)
	for i := range li.LoopOf {
		li.LoopOf[i] = -1
	}
	li.Freq = make([]float64, nb)
	li.once = make([]bool, nb)
	if nb == 0 {
		return li
	}

	// Procedure roots: the program entry plus every direct-call target
	// (plus the address-taken set under indirect control flow).
	rootSet := map[int]bool{}
	eb := cfg.EntryBlock()
	if eb >= 0 {
		rootSet[eb] = true
	}
	for _, cs := range cfg.CallSites {
		if cs.Callee >= 0 {
			rootSet[cs.Callee] = true
		}
	}
	if li.Degraded {
		for _, b := range cfg.AddressTaken {
			rootSet[b] = true
		}
	}
	roots := make([]int, 0, len(rootSet))
	for r := range rootSet {
		roots = append(roots, r)
	}
	sort.Ints(roots)

	// Natural loops from back edges (target dominates source), found
	// under each procedure's own dominator tree.
	bodies := map[int]map[int]bool{}
	domFor := map[int]*DomTree{}
	for _, root := range roots {
		dom := cfg.dominatorsFrom(root)
		for _, b := range dom.RPO {
			for _, s := range cfg.Blocks[b].Succs {
				if dom.Dominates(s, b) {
					if _, ok := domFor[s]; !ok {
						domFor[s] = dom
					}
					collectLoop(cfg, s, b, bodies)
				}
			}
		}
	}
	headers := make([]int, 0, len(bodies))
	for h := range bodies {
		headers = append(headers, h)
	}
	sort.Ints(headers)
	for _, h := range headers {
		blocks := make([]int, 0, len(bodies[h]))
		for b := range bodies[h] {
			blocks = append(blocks, b)
		}
		sort.Ints(blocks)
		li.Loops = append(li.Loops, &Loop{Header: h, Blocks: blocks, Parent: -1})
	}

	// Innermost-loop map and nesting: smaller bodies are inner.
	bySize := make([]int, len(li.Loops))
	for i := range bySize {
		bySize[i] = i
	}
	sort.Slice(bySize, func(i, j int) bool {
		a, b := li.Loops[bySize[i]], li.Loops[bySize[j]]
		if len(a.Blocks) != len(b.Blocks) {
			return len(a.Blocks) < len(b.Blocks)
		}
		return a.Header < b.Header
	})
	for _, l := range bySize {
		for _, b := range li.Loops[l].Blocks {
			if li.LoopOf[b] < 0 {
				li.LoopOf[b] = l
			}
		}
	}
	for i, l := range li.Loops {
		for _, m := range bySize {
			if m == i || len(li.Loops[m].Blocks) <= len(l.Blocks) {
				continue
			}
			if li.Loops[m].contains(l.Header) {
				l.Parent = m
				break
			}
		}
	}
	for _, l := range li.Loops {
		l.Depth = 1
		for p := l.Parent; p >= 0; p = li.Loops[p].Parent {
			l.Depth++
		}
	}

	li.deriveTrips(domFor)

	// Cycle membership (SCCs over successor edges) feeds the
	// at-most-once proof: a block outside every cycle executes at most
	// once per invocation of its procedure.
	inCycle := sccCycles(cfg)

	// Which procedures can reach each block along successor edges; a
	// block claimed by more than one procedure gets no once-proof and
	// its frequency charges the first claimant only.
	rootOf := make([]int, nb)
	reachCnt := make([]int, nb)
	for i := range rootOf {
		rootOf[i] = -1
	}
	for _, root := range roots {
		work := []int{root}
		seen := map[int]bool{root: true}
		for len(work) > 0 {
			b := work[len(work)-1]
			work = work[:len(work)-1]
			reachCnt[b]++
			if rootOf[b] < 0 {
				rootOf[b] = root
			}
			for _, s := range cfg.Blocks[b].Succs {
				if !seen[s] {
					seen[s] = true
					work = append(work, s)
				}
			}
		}
	}

	csByCallee := map[int][]int{}
	for _, cs := range cfg.CallSites {
		if cs.Callee >= 0 {
			csByCallee[cs.Callee] = append(csByCallee[cs.Callee], cs.PC)
		}
	}

	// loopMult is the product of trip estimates over the loop chain.
	loopMult := func(b int) float64 {
		m := 1.0
		for l := li.LoopOf[b]; l >= 0; l = li.Loops[l].Parent {
			t := li.Loops[l].Trip
			if t <= 0 {
				t = defaultTrip
			}
			m *= float64(t)
			if m > freqCap {
				return freqCap
			}
		}
		return m
	}

	// procFreq estimates invocations of a procedure by summing its call
	// sites' frequencies; recursion saturates at the cap.
	freqMemo := map[int]float64{}
	freqVisiting := map[int]bool{}
	var procFreq func(root int) float64
	procFreq = func(root int) float64 {
		if f, ok := freqMemo[root]; ok {
			return f
		}
		if freqVisiting[root] {
			return freqCap
		}
		freqVisiting[root] = true
		f := 0.0
		if root == eb {
			f = 1
		}
		for _, pc := range csByCallee[root] {
			cb := cfg.BlockContaining(pc)
			if cb < 0 || rootOf[cb] < 0 {
				continue
			}
			f += procFreq(rootOf[cb]) * loopMult(cb)
			if f > freqCap {
				f = freqCap
				break
			}
		}
		freqVisiting[root] = false
		freqMemo[root] = f
		return f
	}
	for b := 0; b < nb; b++ {
		if rootOf[b] < 0 {
			continue
		}
		f := loopMult(b)
		if !li.Degraded {
			f *= procFreq(rootOf[b])
		}
		if f > freqCap {
			f = freqCap
		}
		li.Freq[b] = f
	}

	// procOnce proves a procedure is invoked at most once per run: the
	// entry procedure with no callers, or a procedure with exactly one
	// call site whose block itself executes at most once.
	onceMemo := map[int]bool{}
	onceVisiting := map[int]bool{}
	var procOnce func(root int) bool
	procOnce = func(root int) bool {
		if v, ok := onceMemo[root]; ok {
			return v
		}
		if onceVisiting[root] {
			return false // recursion
		}
		onceVisiting[root] = true
		v := false
		pcs := csByCallee[root]
		switch {
		case root == eb:
			v = len(pcs) == 0
		case len(pcs) == 1:
			cb := cfg.BlockContaining(pcs[0])
			v = cb >= 0 && reachCnt[cb] == 1 && !inCycle[cb] &&
				rootOf[cb] >= 0 && procOnce(rootOf[cb])
		}
		onceVisiting[root] = false
		onceMemo[root] = v
		return v
	}
	if !li.Degraded {
		for b := 0; b < nb; b++ {
			li.once[b] = rootOf[b] >= 0 && reachCnt[b] == 1 && !inCycle[b] &&
				procOnce(rootOf[b])
		}
	}
	return li
}

// collectLoop accumulates the natural-loop body of the back edge
// latch->header into bodies[header], merging loops that share a header.
func collectLoop(cfg *CFG, header, latch int, bodies map[int]map[int]bool) {
	body := bodies[header]
	if body == nil {
		body = map[int]bool{header: true}
		bodies[header] = body
	}
	stack := []int{latch}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if body[n] {
			continue
		}
		body[n] = true
		for _, p := range cfg.Blocks[n].Preds {
			stack = append(stack, p)
		}
	}
}

// deriveTrips pattern-matches each loop against the down-counting
// induction shape
//
//	li   r, K        (the only definitions reaching the header from
//	                  outside the loop, all with the same K > 0)
//	H: ...body...
//	   addi r, r, -S (the only definition of r inside the loop, on a
//	                  block dominating the latch)
//	   bne  r, H     (the single back edge)
//
// which runs the body exactly K/S times when S divides K. The count is
// exact when the latch fall-through is the only way out of the loop,
// and an upper bound otherwise.
func (li *LoopInfo) deriveTrips(domFor map[int]*DomTree) {
	cfg := li.cfg
	if len(li.Loops) == 0 {
		return
	}
	var progKill RegSet
	for _, in := range cfg.Code {
		_, def := UseDef(in)
		progKill |= def
	}
	for _, r := range CallerSaved {
		progKill.Add(r)
	}
	var rdefs *ReachingDefs // built lazily; most programs have loops

	for _, l := range li.Loops {
		dom := domFor[l.Header]
		if dom == nil {
			continue
		}
		// The single latch carrying the back edge.
		latch := -1
		for _, b := range l.Blocks {
			for _, s := range cfg.Blocks[b].Succs {
				if s == l.Header && dom.Dominates(l.Header, b) {
					if latch >= 0 && latch != b {
						latch = -2
					} else if latch != -2 {
						latch = b
					}
				}
			}
		}
		if latch < 0 {
			continue
		}
		last := cfg.Code[cfg.Blocks[latch].End-1]
		if last.Op != isa.OpBne || int(last.Imm) != cfg.Blocks[l.Header].Start {
			continue
		}
		r := last.Ra
		if r == isa.RegZero {
			continue
		}
		// Exactly one in-loop definition of r: the decrement.
		defPC := -1
		defs := 0
		for _, b := range l.Blocks {
			blk := &cfg.Blocks[b]
			for pc := blk.Start; pc < blk.End; pc++ {
				in := cfg.Code[pc]
				writes := false
				switch in.Op {
				case isa.OpJsr, isa.OpJsrr:
					writes = progKill.Has(r)
				case isa.OpSyscall:
					writes = r == isa.RegV0
				default:
					_, def := UseDef(in)
					writes = def.Has(r)
				}
				if writes {
					defs++
					defPC = pc
				}
			}
		}
		if defs != 1 {
			continue
		}
		dec := cfg.Code[defPC]
		if dec.Op != isa.OpAddi || dec.Rd != r || dec.Ra != r || dec.Imm >= 0 {
			continue
		}
		step := -int64(dec.Imm)
		if !dom.Dominates(cfg.BlockContaining(defPC), latch) {
			continue
		}
		// Initial value: every out-of-loop definition reaching the
		// header must be the same li r, K.
		if rdefs == nil {
			rdefs = cfg.ReachingDefs()
		}
		pcs, fromEntry := rdefs.DefsReaching(cfg.Blocks[l.Header].Start, r)
		if fromEntry {
			continue
		}
		init := int64(0)
		ok := false
		for _, pc := range pcs {
			b := cfg.BlockContaining(pc)
			if b >= 0 && l.contains(b) {
				continue // the decrement, reaching around the back edge
			}
			in := cfg.Code[pc]
			if in.Op != isa.OpAddi || in.Ra != isa.RegZero || in.Rd != r {
				ok = false
				break
			}
			if ok && init != int64(in.Imm) {
				ok = false
				break
			}
			init = int64(in.Imm)
			ok = true
		}
		if !ok || init <= 0 || step <= 0 || init%step != 0 {
			continue
		}
		l.Trip = init / step
		// Exact only when the latch fall-through is the sole exit and no
		// in-loop block terminates the program.
		l.TripExact = true
		for _, b := range l.Blocks {
			blk := &cfg.Blocks[b]
			if lastIn := cfg.Code[blk.End-1]; lastIn.Op == isa.OpSyscall && lastIn.Imm == isa.SysExit {
				l.TripExact = false
			}
			for _, s := range blk.Succs {
				if !l.contains(s) && b != latch {
					l.TripExact = false
				}
			}
		}
	}
}

// sccCycles marks every block lying on a successor-edge cycle (a
// non-trivial strongly connected component or a self-loop), via an
// iterative Tarjan SCC.
func sccCycles(cfg *CFG) []bool {
	n := len(cfg.Blocks)
	out := make([]bool, n)
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
	}
	next := 0
	var stack []int

	type frame struct{ v, i int }
	for v0 := 0; v0 < n; v0++ {
		if index[v0] >= 0 {
			continue
		}
		frames := []frame{{v0, 0}}
		index[v0], low[v0] = next, next
		next++
		stack = append(stack, v0)
		onStack[v0] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			succs := cfg.Blocks[f.v].Succs
			if f.i < len(succs) {
				w := succs[f.i]
				f.i++
				if w == f.v {
					out[f.v] = true // self-loop
				}
				if index[w] < 0 {
					index[w], low[w] = next, next
					next++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{w, 0})
				} else if onStack[w] && index[w] < low[f.v] {
					low[f.v] = index[w]
				}
				continue
			}
			v := f.v
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				p := frames[len(frames)-1].v
				if low[v] < low[p] {
					low[p] = low[v]
				}
			}
			if low[v] == index[v] {
				var comp []int
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp = append(comp, w)
					if w == v {
						break
					}
				}
				if len(comp) > 1 {
					for _, w := range comp {
						out[w] = true
					}
				}
			}
		}
	}
	return out
}

// InnermostLoop returns the innermost loop containing pc, or nil.
func (li *LoopInfo) InnermostLoop(pc int) *Loop {
	b := li.cfg.BlockContaining(pc)
	if b < 0 || li.LoopOf[b] < 0 {
		return nil
	}
	return li.Loops[li.LoopOf[b]]
}

// HeaderPC returns the first instruction pc of l's header block — the
// stable way to name a loop in reports.
func (li *LoopInfo) HeaderPC(l *Loop) int {
	return li.cfg.Blocks[l.Header].Start
}

// FreqOf returns the static execution-frequency estimate of pc.
func (li *LoopInfo) FreqOf(pc int) float64 {
	b := li.cfg.BlockContaining(pc)
	if b < 0 {
		return 0
	}
	return li.Freq[b]
}

// Once reports whether pc provably executes at most one time per run.
// Never claimed under degraded analysis.
func (li *LoopInfo) Once(pc int) bool {
	b := li.cfg.BlockContaining(pc)
	return b >= 0 && li.once[b]
}
