// Corpus tests: run the static analyses over every benchmark workload
// and cross-check them against real profiling runs. These live in an
// external test package because the workloads import minic, which
// imports analysis (the compiler verifies its output).
package analysis_test

import (
	"reflect"
	"testing"

	"valueprof/internal/analysis"
	"valueprof/internal/atom"
	"valueprof/internal/core"
	"valueprof/internal/program"
	"valueprof/internal/workloads"
)

func compile(t *testing.T, w *workloads.Workload) *program.Program {
	t.Helper()
	prog, err := w.Compile()
	if err != nil {
		t.Fatalf("%s: %v", w.Name, err)
	}
	return prog
}

// profileRecord runs one workload input under the value profiler with an
// optional static prune filter and returns the serialized record.
func profileRecord(t *testing.T, w *workloads.Workload, in workloads.Input, cn *analysis.Constness) *core.ProfileRecord {
	t.Helper()
	opts := core.Options{TNV: core.DefaultTNVConfig()}
	if cn != nil {
		opts.Prune = cn.ShouldPrune
	}
	vp, err := core.NewValueProfiler(opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := atom.Run(compile(t, w), in.Args, false, atom.Tool(vp)); err != nil {
		t.Fatalf("%s/%s: %v", w.Name, in.Name, err)
	}
	return vp.Profile().Record(w.Name, in.Name)
}

// TestWorkloadsVerifyClean: every compiled workload passes the verifier
// with zero errors, and the only warnings are the unreachable blocks the
// compiler's implicit trailing return is known to create.
func TestWorkloadsVerifyClean(t *testing.T) {
	for _, w := range workloads.All() {
		prog := compile(t, w)
		diags := analysis.Verify(prog)
		if diags.HasErrors() {
			t.Errorf("%s: verifier errors: %v", w.Name, diags.Errors())
		}
		for _, d := range diags {
			if d.Sev == analysis.SevWarning && d.Rule != analysis.RuleUnreachable {
				t.Errorf("%s: unexpected warning: %s", w.Name, d)
			}
		}
	}
}

// TestWorkloadsAnalyzeWholeProgram: the compiler never emits indirect
// jumps, so constness analysis must run in full dataflow mode on every
// workload, and static pruning must find something on most of them.
func TestWorkloadsAnalyzeWholeProgram(t *testing.T) {
	pruning := 0
	for _, w := range workloads.All() {
		cn := analysis.AnalyzeConstness(compile(t, w))
		if cn.Degraded {
			t.Errorf("%s: analysis degraded on compiler output", w.Name)
		}
		rep := cn.Prune(nil)
		if rep.Pruned() > 0 {
			pruning++
		}
		t.Logf("%s: %d/%d pruned (%d const, %d unreached, %d invariant)",
			w.Name, rep.Pruned(), rep.Candidates, rep.Const, rep.Unreached, rep.Invariant)
	}
	if pruning < 5 {
		t.Errorf("static pruning found removable sites on %d workloads, want >= 5", pruning)
	}
}

// TestPruneEquivalence: profiling with -prune-static must be a pure
// subtraction. For every workload, the record of a pruned run contains
// exactly the non-pruned sites of the unpruned run, each byte-for-byte
// identical (same Exec, LVPHits, Zeros, and TNV table, hence the same
// Inv-Top, Inv-All, LVP, and %zero).
func TestPruneEquivalence(t *testing.T) {
	for _, w := range workloads.All() {
		prog := compile(t, w)
		cn := analysis.AnalyzeConstness(prog)
		base := profileRecord(t, w, w.Test, nil)
		pruned := profileRecord(t, w, w.Test, cn)

		want := make(map[int]core.SiteRecord)
		for _, s := range base.Sites {
			if !cn.ShouldPrune(s.PC, prog.Code[s.PC]) {
				want[s.PC] = s
			}
		}
		if len(pruned.Sites) != len(want) {
			t.Errorf("%s: pruned run has %d sites, want %d", w.Name, len(pruned.Sites), len(want))
		}
		for _, s := range pruned.Sites {
			ref, ok := want[s.PC]
			if !ok {
				t.Errorf("%s: pc %d present in pruned run but pruned statically", w.Name, s.PC)
				continue
			}
			if !reflect.DeepEqual(s, ref) {
				t.Errorf("%s: pc %d diverges under pruning:\n pruned %+v\n full   %+v", w.Name, s.PC, s, ref)
			}
			delete(want, s.PC)
		}
		for pc := range want {
			t.Errorf("%s: pc %d missing from pruned run", w.Name, pc)
		}
	}
}

// TestOracleAgainstFullProfiles: dynamic soundness. A full (unsampled,
// uninterrupted) profile of each workload on both inputs must never
// contradict the static facts: proven constants are observed at exactly
// one value, proven-unreachable code never executes, invariants stay
// single-valued.
func TestOracleAgainstFullProfiles(t *testing.T) {
	for _, w := range workloads.All() {
		cn := analysis.AnalyzeConstness(compile(t, w))
		for _, in := range w.Inputs() {
			rec := profileRecord(t, w, in, nil)
			for _, c := range analysis.CheckRecord(cn, rec) {
				t.Errorf("%s/%s: %s", w.Name, in.Name, c)
			}
		}
	}
}
