package analysis

import "valueprof/internal/isa"

// Redundancy is one provably redundant computation: the instruction at
// PC computes the same value as the earlier instruction at With, and
// With's block dominates PC's, so With has always already executed.
// This is a diagnostic (vlint -gvn), not a rewrite: the earlier result
// may no longer be register-resident.
type Redundancy struct {
	PC   int
	With int
}

// gvn numbers values without an SSA form by treating definition sites as
// names: a register use has a well-defined value number only when
// exactly one definition reaches it. Loop-carried definitions keep
// their initial fresh number (a sound under-approximation: unmatched
// values are simply never reported redundant).
type gvn struct {
	cfg   *CFG
	defs  *ReachingDefs
	fresh uint32
	// defVN[defKey(pc, r)] is the value number of the value the
	// instruction at pc leaves in register r. Instructions defining
	// several registers (calls) get one number per register.
	defVN map[int64]uint32
	// entryVN[r] numbers register r's value at region entry.
	entryVN [isa.NumRegs]uint32
	exprs   map[vnKey]uint32
	firstPC map[uint32]int
}

// GVN finds redundant computations with a dominator-ordered value
// numbering over the CFG. Only pure register/immediate computations
// participate; loads, calls, and syscalls always produce fresh values.
func (c *CFG) GVN() []Redundancy {
	g := &gvn{
		cfg:     c,
		defs:    c.ReachingDefs(),
		defVN:   map[int64]uint32{},
		exprs:   map[vnKey]uint32{},
		firstPC: map[uint32]int{},
	}
	for r := range g.entryVN {
		g.entryVN[r] = g.next()
	}
	dom := c.Dominators()
	reach := c.Reachable()

	// Pre-assign fresh numbers so uses reached by not-yet-visited
	// definitions (back edges) resolve conservatively.
	for pc := c.Base; pc < c.Base+len(c.Code); pc++ {
		_, def := UseDef(c.Inst(pc))
		for r := uint8(0); r < isa.NumRegs; r++ {
			if def.Has(r) {
				g.defVN[defKey(pc, r)] = g.next()
			}
		}
	}

	var out []Redundancy
	for _, b := range dom.RPO {
		if !reach[b] {
			continue
		}
		blk := &c.Blocks[b]
		for pc := blk.Start; pc < blk.End; pc++ {
			in := c.Inst(pc)
			if !pureExpr(in) || in.Rd == isa.RegZero {
				continue
			}
			va, ok := g.useVN(pc, in.Ra)
			if !ok {
				continue
			}
			vb, vbOK := uint32(0), true
			if in.Op.Form() == isa.FormRRR {
				vb, vbOK = g.useVN(pc, in.Rb)
			}
			if !vbOK {
				continue
			}
			if commutative(in.Op) && vb < va {
				va, vb = vb, va
			}
			k := vnKey{op: in.Op, a: uint64(va), b: uint64(vb), imm: in.Imm}
			if vn, ok := g.exprs[k]; ok {
				first := g.firstPC[vn]
				fb := c.BlockContaining(first)
				if fb == b && first < pc || fb != b && dom.Dominates(fb, b) {
					out = append(out, Redundancy{PC: pc, With: first})
				}
				g.defVN[defKey(pc, in.Rd)] = vn
				continue
			}
			vn := g.defVN[defKey(pc, in.Rd)]
			g.exprs[k] = vn
			g.firstPC[vn] = pc
		}
	}
	return out
}

func (g *gvn) next() uint32 {
	g.fresh++
	return g.fresh
}

// useVN resolves the value number register r holds entering pc. It is
// defined only when a single definition (or only the entry value)
// reaches the use.
func (g *gvn) useVN(pc int, r uint8) (uint32, bool) {
	if r == isa.RegZero {
		return 0, true // the hardwired zero shares one number
	}
	pcs, fromEntry := g.defs.DefsReaching(pc, r)
	switch {
	case fromEntry && len(pcs) == 0:
		return g.entryVN[r], true
	case !fromEntry && len(pcs) == 1:
		return g.defVN[defKey(pcs[0], r)], true
	}
	return 0, false
}

func defKey(pc int, r uint8) int64 { return int64(pc)<<8 | int64(r) }

// pureExpr reports whether the instruction is a pure register or
// register-immediate computation (deterministic in its operands).
func pureExpr(in isa.Inst) bool {
	if !in.Op.HasDest() {
		return false
	}
	switch in.Op.Form() {
	case isa.FormRRR, isa.FormRRI:
		return true
	}
	return false
}

func commutative(op isa.Op) bool {
	switch op {
	case isa.OpAdd, isa.OpMul, isa.OpAnd, isa.OpOr, isa.OpXor,
		isa.OpCmpeq, isa.OpCmpne:
		return true
	}
	return false
}
