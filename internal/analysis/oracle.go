package analysis

import (
	"fmt"

	"valueprof/internal/core"
)

// Contradiction is one profile record that violates a static fact. Any
// contradiction means a bug somewhere: in the profiler, in the analysis,
// or in the VM — static claims are proofs, not estimates, so the
// profiler's observations must agree with every one of them.
type Contradiction struct {
	PC   int
	Name string
	Kind ConstKind
	Msg  string
}

func (c Contradiction) String() string {
	return fmt.Sprintf("pc %d (%s): static %s contradicted: %s", c.PC, c.Name, c.Kind, c.Msg)
}

// CheckRecord cross-checks a saved profile against the static constness
// facts of the program it was collected from:
//
//   - a statically unreachable pc must have no record (records are only
//     emitted for executed sites);
//   - a proven-constant pc must show exactly the proven value: one TNV
//     entry holding it, with the full execution count, and a zero
//     counter equal to Exec or 0 according to the value;
//   - a proven-invariant pc must show a single value: one TNV entry
//     with the full execution count.
//
// The checks are chosen to hold under sampling, partial runs, and TNV
// clearing (a single-valued site always keeps its one entry, so
// count == Exec is exact, not approximate). Last-value-prediction hits
// are deliberately not checked: checkpoint resume resets the predictor
// without resetting Exec.
func CheckRecord(cn *Constness, rec *core.ProfileRecord) []Contradiction {
	var out []Contradiction
	add := func(s *core.SiteRecord, kind ConstKind, format string, args ...any) {
		out = append(out, Contradiction{
			PC: s.PC, Name: s.Name, Kind: kind, Msg: fmt.Sprintf(format, args...),
		})
	}
	for i := range rec.Sites {
		s := &rec.Sites[i]
		if s.PC < 0 || s.PC >= len(cn.Facts) {
			add(s, KindUnreached, "pc outside the program's code")
			continue
		}
		switch kind := cn.Kind(s.PC); kind {
		case KindUnreached:
			if s.Exec > 0 {
				add(s, kind, "executed %d times", s.Exec)
			}
		case KindConst:
			want := cn.Facts[s.PC].Value
			var covered uint64
			for _, e := range s.Top {
				if e.Value != want {
					add(s, kind, "proven value %d but observed %d (count %d)", want, e.Value, e.Count)
					continue
				}
				covered += e.Count
			}
			if covered != s.Exec {
				add(s, kind, "proven constant but TNV covers %d of %d executions", covered, s.Exec)
			}
			if want == 0 && s.Zeros != s.Exec {
				add(s, kind, "proven zero but zero counter is %d of %d", s.Zeros, s.Exec)
			}
			if want != 0 && s.Zeros != 0 {
				add(s, kind, "proven nonzero (%d) but zero counter is %d", want, s.Zeros)
			}
		case KindInvariant:
			if len(s.Top) > 1 {
				add(s, kind, "proven single-valued but TNV holds %d values", len(s.Top))
			} else if len(s.Top) == 1 && s.Top[0].Count != s.Exec {
				add(s, kind, "proven single-valued but top count is %d of %d", s.Top[0].Count, s.Exec)
			}
			if s.Zeros != 0 && s.Zeros != s.Exec {
				add(s, kind, "proven single-valued but zero counter %d is strictly between 0 and %d", s.Zeros, s.Exec)
			}
		}
	}
	return out
}
