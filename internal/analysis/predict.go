package analysis

import (
	"fmt"
	"sort"

	"valueprof/internal/core"
	"valueprof/internal/isa"
	"valueprof/internal/program"
)

// Tier is the confidence class of a predicted-invariance claim.
//
//	Proved     the site is provably invariant (or provably unreached):
//	           constness lattice, interval singleton, or at-most-once
//	           execution proof. Contradicting profiles indicate a bug.
//	Likely     heuristic evidence (GVN redundancy with a proved site,
//	           loop-invariant operands) suggests invariance but does not
//	           prove it. Mispredictions are counted, never fatal.
//	Uncertain  no useful static evidence; the profiler must look.
type Tier uint8

const (
	TierUncertain Tier = iota
	TierLikely
	TierProved
)

func (t Tier) String() string {
	switch t {
	case TierProved:
		return "proved"
	case TierLikely:
		return "likely"
	case TierUncertain:
		return "uncertain"
	}
	return fmt.Sprintf("tier(%d)", uint8(t))
}

// SitePrediction is the fused static verdict for one profiling site.
type SitePrediction struct {
	Tier  Tier
	Score float64 // predicted Inv-All in [0,1]; 1.0 for every proved site
	// Reason names the strongest evidence source ("const", "invariant",
	// "unreached", "singleton", "once", "gvn", "loop-inv-operands",
	// "range", "prior").
	Reason string
	// Freq is the static execution-frequency estimate from the loop
	// analysis (1.0 for straight-line code at the entry).
	Freq float64
	// Interval bounds every value the site can produce. Always sound:
	// TopInterval when nothing is known.
	Interval Interval
	// Const pins the produced value (Tier == TierProved only).
	Const bool
	Value int64 // valid when Const
	// Unreached marks a site proven never to execute.
	Unreached bool
	// Once marks a site proven to execute at most one time per run.
	Once bool
}

// Predictions is the result of Predict: the fused per-site invariance
// forecast plus the underlying analyses, kept for fact dumps and
// cross-checking.
type Predictions struct {
	prog *program.Program

	Constness *Constness
	Intervals *Intervals
	Loops     *LoopInfo

	// Degraded is set when the underlying dataflow had to fall back to
	// syntactic facts (indirect control flow). Proved claims are then
	// limited to per-execution syntactic proofs; no reachability or
	// once-claims are made.
	Degraded bool

	// Sites maps each result-producing pc to its prediction. Report
	// emitters must iterate via SitePCs (sorted), never by ranging the
	// map directly — map order is random and would make reports and
	// golden tests flaky.
	Sites map[int]SitePrediction
}

// Likely-tier scores: calibrated priors, not measurements. They only
// need to order sites sensibly; the adaptive budget thresholds on tier,
// not score.
const (
	scoreGVNProved  = 0.95 // value-numbered equal to a proved site
	scoreLoopInv    = 0.90 // all operand defs outside the enclosing loop
	scoreLoopLoad   = 0.85 // spill reload: in-loop load no in-loop store can alias
	scoreTinyRange  = 0.60 // interval narrower than the TNV can miss
	scoreComparePri = 0.40 // compares produce 0/1; top value covers >=50%
	scoreBasePrior  = 0.10
)

// tinyRangeWidth is the largest interval width (Hi-Lo) the "range"
// heuristic still calls likely-invariant-ish; kept below the default
// TNV size so even a fully-varying site of this width is exactly
// captured by its table.
const tinyRangeWidth = 3

// Predict runs the full static stack — constness, intervals, loops,
// GVN, reaching definitions — and fuses the results into a per-site
// invariance forecast with confidence tiers.
func Predict(p *program.Program) *Predictions {
	pr := &Predictions{
		prog:      p,
		Constness: AnalyzeConstness(p),
		Intervals: AnalyzeIntervals(p),
		Loops:     AnalyzeLoops(p),
		Sites:     make(map[int]SitePrediction),
	}
	pr.Degraded = pr.Constness.Degraded

	// GVN equivalence classes: map each redundant pc to its
	// representative so a proved representative upgrades its copies.
	redundantWith := make(map[int]int)
	if !pr.Degraded {
		if cfg := ForProgram(p); cfg != nil {
			for _, r := range cfg.GVN() {
				redundantWith[r.PC] = r.With
			}
		}
	}

	var rd *ReachingDefs
	reaching := func() *ReachingDefs {
		if rd == nil && !pr.Degraded {
			if cfg := ForProgram(p); cfg != nil {
				rd = cfg.ReachingDefs()
			}
		}
		return rd
	}

	for pc, in := range p.Code {
		if !in.Op.HasDest() {
			continue
		}
		pr.Sites[pc] = pr.predictSite(pc, in, redundantWith, reaching)
	}
	return pr
}

// predictSite fuses the analyses for one site, strongest evidence
// first.
func (pr *Predictions) predictSite(pc int, in isa.Inst, redundantWith map[int]int, reaching func() *ReachingDefs) SitePrediction {
	iv, _ := pr.Intervals.At(pc)
	sp := SitePrediction{
		Freq:     pr.Loops.FreqOf(pc),
		Interval: iv,
	}

	// Proved: constness lattice.
	switch pr.Constness.Kind(pc) {
	case KindUnreached:
		sp.Tier, sp.Score, sp.Reason = TierProved, 1.0, "unreached"
		sp.Unreached = true
		return sp
	case KindConst:
		sp.Tier, sp.Score, sp.Reason = TierProved, 1.0, "const"
		sp.Const = true
		sp.Value = pr.Constness.Facts[pc].Value
		return sp
	case KindInvariant:
		sp.Tier, sp.Score, sp.Reason = TierProved, 1.0, "invariant"
		return sp
	}

	// Proved: interval collapsed to a point. Syntactic (degraded)
	// singletons are per-execution proofs too, so no Degraded gate.
	if v, ok := iv.Singleton(); ok {
		sp.Tier, sp.Score, sp.Reason = TierProved, 1.0, "singleton"
		sp.Const = true
		sp.Value = v
		return sp
	}
	if iv.IsEmpty() {
		// Interval dataflow found the site unreachable (never claimed
		// under degraded analysis).
		sp.Tier, sp.Score, sp.Reason = TierProved, 1.0, "unreached"
		sp.Unreached = true
		return sp
	}

	// Proved: at most one execution means at most one value.
	if pr.Loops.Once(pc) {
		sp.Tier, sp.Score, sp.Reason = TierProved, 1.0, "once"
		sp.Once = true
		return sp
	}

	// Likely: value-numbered equal to a proved site. Deliberately not
	// proved — the adaptive budget's soundness rests on the lattice and
	// the once-proof alone, so a GVN bug shows up as a counted
	// misprediction instead of silent data loss.
	if rep, ok := redundantWith[pc]; ok {
		if other, exists := pr.Sites[rep]; exists && other.Tier == TierProved && !other.Unreached {
			sp.Tier, sp.Score, sp.Reason = TierLikely, scoreGVNProved, "gvn"
			return sp
		}
	}

	// Likely: inside a loop with every operand defined outside it. The
	// value is fixed across that loop's iterations, which dominate the
	// site's executions.
	if l := pr.Loops.InnermostLoop(pc); l != nil {
		// Judge invariance against the whole enclosing nest: a value
		// fixed only across the inner loop still varies per outer
		// iteration, which dominates the site's executions.
		for l.Parent >= 0 {
			l = pr.Loops.Loops[l.Parent]
		}
		if pr.loopInvariantOperands(pc, in, l, reaching()) {
			sp.Tier, sp.Score, sp.Reason = TierLikely, scoreLoopInv, "loop-inv-operands"
			return sp
		}
		// Likely: a spill reload — a load whose base register is fixed
		// across the loop and whose slot no in-loop store can alias.
		if pr.loopInvariantLoad(pc, in, l, reaching()) {
			sp.Tier, sp.Score, sp.Reason = TierLikely, scoreLoopLoad, "loop-inv-load"
			return sp
		}
	}

	// Uncertain: order by interval width and instruction class.
	sp.Tier = TierUncertain
	switch {
	case !iv.IsTop() && iv.Width() <= tinyRangeWidth:
		sp.Score, sp.Reason = scoreTinyRange, "range"
	case in.Op.Class() == isa.ClassCompare:
		sp.Score, sp.Reason = scoreComparePri, "prior"
	default:
		sp.Score, sp.Reason = scoreBasePrior, "prior"
	}
	return sp
}

// loopInvariantOperands reports whether every register operand of in
// has all its reaching definitions outside loop l (and none from the
// entry environment, whose registers a prior iteration of an outer
// context may have changed is not a concern — entry defs are outside
// the loop by definition, but fromEntry also covers uninitialized
// reads, which we reject to stay conservative).
func (pr *Predictions) loopInvariantOperands(pc int, in isa.Inst, l *Loop, rd *ReachingDefs) bool {
	if rd == nil {
		return false
	}
	use, _ := UseDef(in)
	if in.Op.Form() == isa.FormMem {
		return false // loads: the address may be invariant, memory is not
	}
	any := false
	for r := uint8(0); r < isa.NumRegs; r++ {
		if !use.Has(r) || r == isa.RegZero {
			continue
		}
		any = true
		defs, fromEntry := rd.DefsReaching(pc, r)
		if fromEntry {
			return false
		}
		if len(defs) == 0 {
			return false
		}
		for _, d := range defs {
			db := pr.Intervals.cfg.BlockContaining(d)
			if db >= 0 && l.contains(db) {
				return false
			}
		}
	}
	return any
}

// loopInvariantLoad reports whether the load at pc reads the same
// memory cell on every iteration of l and nothing inside l can write
// it: the base register has no in-loop definitions, every in-loop store
// uses the same base with a different offset (same-base disjoint slots
// — the compiler's spill discipline), and the loop makes no calls or
// address-unknown stores. Heuristic, not proof: an aliasing base pair
// would fool it, which is why it lands in the likely tier.
func (pr *Predictions) loopInvariantLoad(pc int, in isa.Inst, l *Loop, rd *ReachingDefs) bool {
	if rd == nil || in.Op.Form() != isa.FormMem {
		return false
	}
	switch in.Op {
	case isa.OpLdq, isa.OpLdl, isa.OpLdbu, isa.OpLdb:
	default:
		return false
	}
	base := in.Ra
	if base != isa.RegZero {
		defs, fromEntry := rd.DefsReaching(pc, base)
		if fromEntry || len(defs) == 0 {
			return false
		}
		for _, d := range defs {
			if db := pr.Intervals.cfg.BlockContaining(d); db >= 0 && l.contains(db) {
				return false
			}
		}
	}
	// Frame discipline: fp-relative slots are private to the procedure
	// — callees build their own frames below sp and computed pointers
	// address globals, so for an fp-based reload only same-base stores
	// threaten the slot. For any other base the strict rule applies: no
	// calls, no stores through a different register.
	frame := base == isa.RegFP
	cfg := pr.Intervals.cfg
	for _, b := range l.Blocks {
		blk := &cfg.Blocks[b]
		for p := blk.Start; p < blk.End; p++ {
			sin := cfg.Code[p-cfg.Base]
			switch sin.Op {
			case isa.OpJsr, isa.OpJsrr:
				if !frame {
					return false // the callee may store anywhere
				}
			case isa.OpStq, isa.OpStl, isa.OpStb:
				if sin.Ra != base {
					if !frame || sin.Ra == isa.RegSP {
						return false
					}
					continue
				}
				// Narrow stores one slot over could still straddle the
				// loaded cell; only accept clearly disjoint word slots.
				if d := sin.Imm - in.Imm; d > -8 && d < 8 {
					return false
				}
			}
		}
	}
	return true
}

// SitePCs returns every predicted site pc in ascending order — the only
// supported iteration order for reports and serialization.
func (pr *Predictions) SitePCs() []int {
	pcs := make([]int, 0, len(pr.Sites))
	for pc := range pr.Sites {
		pcs = append(pcs, pc)
	}
	sort.Ints(pcs)
	return pcs
}

// TierOf returns the prediction tier for pc (TierUncertain for
// non-sites).
func (pr *Predictions) TierOf(pc int) Tier {
	return pr.Sites[pc].Tier
}

// TierCounts tallies sites per tier in Uncertain, Likely, Proved order.
func (pr *Predictions) TierCounts() [3]int {
	var n [3]int
	for _, sp := range pr.Sites {
		n[sp.Tier]++
	}
	return n
}

// Plan converts the predictions into the profiler's adaptive hook
// budget: proved sites are skipped outright (their profile is implied
// by the static fact), likely sites are down-sampled with the given
// convergent config, uncertain sites get the full budget. The zero
// ConvergentConfig selects the default.
func (pr *Predictions) Plan(sampled core.ConvergentConfig) core.AdaptivePlan {
	return core.AdaptivePlan{
		Budget: func(pc int, in isa.Inst) core.SiteBudget {
			switch pr.TierOf(pc) {
			case TierProved:
				return core.BudgetSkip
			case TierLikely:
				return core.BudgetSampled
			}
			return core.BudgetFull
		},
		Sampled: sampled,
	}
}

// CheckRecord cross-checks a saved profile against every proved-tier
// prediction, extending the constness oracle with the two new proof
// sources:
//
//   - an interval fact must contain every observed TNV value and the
//     zero counter must respect the interval's sign;
//   - an at-most-once site must execute at most once per source run.
//
// Any returned contradiction is a bug in an analysis, the profiler, or
// the VM. Likely-tier mispredictions are NOT contradictions; count them
// with Eval.
func (pr *Predictions) CheckRecord(rec *core.ProfileRecord) []Contradiction {
	out := CheckRecord(pr.Constness, rec)
	runs := len(rec.Merged)
	if runs < 1 {
		runs = 1
	}
	add := func(s *core.SiteRecord, reason, format string, args ...any) {
		out = append(out, Contradiction{
			PC: s.PC, Name: s.Name, Kind: KindVarying,
			Msg: fmt.Sprintf("predicted %s contradicted: %s", reason, fmt.Sprintf(format, args...)),
		})
	}
	for i := range rec.Sites {
		s := &rec.Sites[i]
		sp, ok := pr.Sites[s.PC]
		if !ok {
			continue // out-of-range pcs already flagged by the base oracle
		}
		// Interval containment is a per-execution proof, valid at every
		// tier and under degraded (syntactic) analysis.
		if !sp.Interval.IsTop() && !sp.Interval.IsEmpty() {
			for _, e := range s.Top {
				if !sp.Interval.Contains(e.Value) {
					add(s, "interval", "range %s excludes observed %d (count %d)", sp.Interval, e.Value, e.Count)
				}
			}
			if !sp.Interval.Contains(0) && s.Zeros != 0 {
				add(s, "interval", "range %s excludes zero but zero counter is %d", sp.Interval, s.Zeros)
			}
		}
		if sp.Tier != TierProved {
			continue
		}
		if sp.Unreached && pr.Constness.Kind(s.PC) != KindUnreached && s.Exec > 0 {
			// Unreachability proven by the interval pass alone.
			add(s, "unreached", "executed %d times", s.Exec)
		}
		if sp.Const && pr.Constness.Kind(s.PC) != KindConst {
			// Constness proven by an interval singleton alone; apply the
			// same exact checks the base oracle uses for lattice consts.
			var covered uint64
			for _, e := range s.Top {
				if e.Value != sp.Value {
					add(s, "singleton", "proven value %d but observed %d (count %d)", sp.Value, e.Value, e.Count)
					continue
				}
				covered += e.Count
			}
			if covered != s.Exec {
				add(s, "singleton", "proven constant but TNV covers %d of %d executions", covered, s.Exec)
			}
			if sp.Value == 0 && s.Zeros != s.Exec {
				add(s, "singleton", "proven zero but zero counter is %d of %d", s.Zeros, s.Exec)
			}
			if sp.Value != 0 && s.Zeros != 0 {
				add(s, "singleton", "proven nonzero (%d) but zero counter is %d", sp.Value, s.Zeros)
			}
		}
		if sp.Once && s.Exec > uint64(runs) {
			add(s, "once", "proven at-most-once but executed %d times over %d run(s)", s.Exec, runs)
		}
	}
	return out
}

// PredictEval tallies likely-tier prediction quality against a recorded
// profile. A site counts as actually invariant when its top value
// covers at least evalInvThreshold of its executions — the paper's
// top-value invariance metric, at the 0.9 bar used by the rest of the
// repo's invariance consumers.
type PredictEval struct {
	// Likely-tier confusion counts over sites present in the record.
	LikelyTotal     int
	LikelyInvariant int // predicted likely, record invariant (true positives)
	// Uncertain-tier sites that turned out invariant (false negatives
	// for the likely tier).
	UncertainInvariant int
	UncertainTotal     int
}

// Precision is the fraction of likely-tier predictions that held.
func (e PredictEval) Precision() float64 {
	if e.LikelyTotal == 0 {
		return 1
	}
	return float64(e.LikelyInvariant) / float64(e.LikelyTotal)
}

// Recall is the fraction of actually-invariant (non-proved) sites the
// likely tier captured.
func (e PredictEval) Recall() float64 {
	inv := e.LikelyInvariant + e.UncertainInvariant
	if inv == 0 {
		return 1
	}
	return float64(e.LikelyInvariant) / float64(inv)
}

// evalInvThreshold is the top-value share above which a recorded site
// counts as invariant for precision/recall scoring.
const evalInvThreshold = 0.9

// recordInvariant reports whether the record's dominant value covers
// enough of the site's executions to call it invariant.
func recordInvariant(s *core.SiteRecord) bool {
	if s.Exec <= 1 {
		return true
	}
	return s.InvTop(1) >= evalInvThreshold
}

// Eval scores the likely tier against a recorded profile. Proved sites
// are excluded: they are verified exactly by CheckRecord, and with an
// adaptive budget they carry no record at all.
func (pr *Predictions) Eval(rec *core.ProfileRecord) PredictEval {
	var e PredictEval
	for i := range rec.Sites {
		s := &rec.Sites[i]
		sp, ok := pr.Sites[s.PC]
		if !ok || s.Exec == 0 {
			continue
		}
		switch sp.Tier {
		case TierLikely:
			e.LikelyTotal++
			if recordInvariant(s) {
				e.LikelyInvariant++
			}
		case TierUncertain:
			e.UncertainTotal++
			if recordInvariant(s) {
				e.UncertainInvariant++
			}
		}
	}
	return e
}
