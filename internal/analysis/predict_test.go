package analysis

import (
	"testing"

	"valueprof/internal/atom"
	"valueprof/internal/core"
	"valueprof/internal/isa"
)

// predictProg exercises every tier: constants and a single-call
// procedure (proved), a loop-hoistable recomputation (likely), and
// input-dependent values (uncertain).
const predictSrc = `
main:   syscall getint
        addi t0, zero, 21
        add  t0, t0, t0
        jsr  g
loop:   add  t2, v0, v0
        addi t1, t1, 1
        cmplti t3, t1, 8
        bne  t3, loop
        syscall exit
.proc g
g:      addi t4, zero, 3
        ret
.endproc
`

func TestPredictTiers(t *testing.T) {
	p := mustAssemble(t, predictSrc)
	pr := Predict(p)
	if pr.Degraded {
		t.Fatal("degraded on direct-flow program")
	}
	expect := func(pc int, tier Tier) {
		t.Helper()
		sp, ok := pr.Sites[pc]
		if !ok {
			t.Fatalf("no prediction at pc %d", pc)
		}
		if sp.Tier != tier {
			t.Errorf("pc %d: tier %v (%s), want %v", pc, sp.Tier, sp.Reason, tier)
		}
	}
	expect(1, TierProved) // addi t0, zero, 21
	expect(2, TierProved) // doubling a constant
	// v0+v0 inside the loop: v0 defined outside, invariant across
	// iterations but not provable (input-dependent value).
	expect(4, TierLikely)
	if pr.Sites[4].Reason != "loop-inv-operands" {
		t.Errorf("pc 4 reason = %s, want loop-inv-operands", pr.Sites[4].Reason)
	}
	// The loop counter itself varies.
	if pr.Sites[5].Tier == TierProved {
		t.Error("loop counter claimed proved")
	}
	// g's body executes once (single straight-line call site).
	expect(9, TierProved)

	// Proved sites score 1.0 and the frequency estimate sees the loop.
	if pr.Sites[1].Score != 1.0 {
		t.Errorf("proved score = %v", pr.Sites[1].Score)
	}
	if pr.Sites[4].Freq <= pr.Sites[1].Freq {
		t.Errorf("loop body freq %v not above entry freq %v", pr.Sites[4].Freq, pr.Sites[1].Freq)
	}
}

func TestPredictSitePCsSorted(t *testing.T) {
	pr := Predict(mustAssemble(t, predictSrc))
	pcs := pr.SitePCs()
	for i := 1; i < len(pcs); i++ {
		if pcs[i-1] >= pcs[i] {
			t.Fatalf("SitePCs not strictly ascending: %v", pcs)
		}
	}
	if len(pcs) != len(pr.Sites) {
		t.Fatalf("SitePCs covers %d of %d sites", len(pcs), len(pr.Sites))
	}
}

func TestPredictCheckRecordAgainstRealRun(t *testing.T) {
	p := mustAssemble(t, predictSrc)
	pr := Predict(p)

	vp, err := core.NewValueProfiler(core.Options{TNV: core.DefaultTNVConfig()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := atom.Run(p, []int64{42}, false, atom.Tool(vp)); err != nil {
		t.Fatal(err)
	}
	rec := vp.Profile().Record("predict", "42")
	if cs := pr.CheckRecord(rec); len(cs) != 0 {
		t.Fatalf("proved-tier contradictions on a real run: %v", cs)
	}
	ev := pr.Eval(rec)
	// v0+v0 is the one likely site, and it held (v0 fixed per run).
	if ev.LikelyTotal < 1 || ev.LikelyInvariant != ev.LikelyTotal {
		t.Errorf("likely eval = %+v, want all-correct", ev)
	}
	if ev.Precision() != 1 {
		t.Errorf("precision = %v, want 1", ev.Precision())
	}
}

func TestPredictCheckRecordCatchesViolations(t *testing.T) {
	p := mustAssemble(t, `
main:   addi t0, zero, 5
        jsr  g
        syscall exit
.proc g
g:      ldbu t1, 0(zero)
        ret
.endproc
`)
	pr := Predict(p)
	// pc 3 (ldbu in g): once-proof plus the [0,255] load interval.
	if sp := pr.Sites[3]; !sp.Once || sp.Tier != TierProved {
		t.Fatalf("pc 3 prediction = %+v, want once-proved", sp)
	}
	bad := &core.ProfileRecord{Sites: []core.SiteRecord{
		// Executed 3 times despite the at-most-once proof, and observed a
		// value outside the byte-load interval.
		{PC: 3, Name: "g+0", Exec: 3,
			Top: []core.TNVEntry{{Value: 300, Count: 3}}},
	}}
	cs := pr.CheckRecord(bad)
	var onceHit, rangeHit bool
	for _, c := range cs {
		switch {
		case c.PC == 3 && contains(c.Msg, "at-most-once"):
			onceHit = true
		case c.PC == 3 && contains(c.Msg, "interval"):
			rangeHit = true
		}
	}
	if !onceHit || !rangeHit {
		t.Errorf("contradictions = %v, want once and interval violations", cs)
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestPredictPlanBudgets(t *testing.T) {
	p := mustAssemble(t, predictSrc)
	pr := Predict(p)
	plan := pr.Plan(core.ConvergentConfig{})
	check := func(pc int, want core.SiteBudget) {
		t.Helper()
		if got := plan.Budget(pc, p.Code[pc]); got != want {
			t.Errorf("budget(%d) = %v, want %v", pc, got, want)
		}
	}
	check(1, core.BudgetSkip)    // proved const
	check(4, core.BudgetSampled) // likely
	check(5, core.BudgetFull)    // uncertain loop counter
}

func TestPredictDegradedStaysSound(t *testing.T) {
	p := mustAssemble(t, `
main:   addi t0, zero, 8
        jmp  t0
        nop
        nop
        nop
        nop
        nop
        nop
tgt:    addi t1, zero, 4
        syscall exit
`)
	pr := Predict(p)
	if !pr.Degraded {
		t.Fatal("indirect jump must degrade prediction")
	}
	for pc, sp := range pr.Sites {
		if sp.Unreached || sp.Once {
			t.Errorf("pc %d: reachability/once claim under degraded analysis", pc)
		}
		if sp.Tier == TierProved && !sp.Const {
			t.Errorf("pc %d: non-syntactic proof under degraded analysis (%s)", pc, sp.Reason)
		}
	}
	// Syntactic constants still prove.
	if sp := pr.Sites[0]; sp.Tier != TierProved || !sp.Const || sp.Value != 8 {
		t.Errorf("syntactic constant lost: %+v", sp)
	}
}

func TestPredictTierCounts(t *testing.T) {
	pr := Predict(mustAssemble(t, predictSrc))
	n := pr.TierCounts()
	total := 0
	for pc, in := range pr.prog.Code {
		_ = pc
		if in.Op.HasDest() {
			total++
		}
	}
	if n[TierProved]+n[TierLikely]+n[TierUncertain] != total {
		t.Errorf("tier counts %v do not sum to %d sites", n, total)
	}
	if n[TierProved] == 0 || n[TierLikely] == 0 || n[TierUncertain] == 0 {
		t.Errorf("tier counts %v: every tier should be populated by the fixture", n)
	}
	_ = isa.OpAdd
}

func TestPredictLoopInvariantLoad(t *testing.T) {
	// A spill-reload pattern: v0 is saved to an fp slot before the
	// loop, reloaded every iteration, with a call and an unrelated
	// fp-slot store inside the loop. Frame discipline says the reload
	// slot cannot change, so the site is likely-invariant.
	p := mustAssemble(t, `
main:   syscall getint
        addi fp, sp, 0
        addi sp, sp, -32
        stq  v0, 8(fp)
loop:   ldq  t0, 8(fp)
        jsr  g
        stq  t1, 16(fp)
        addi t1, t1, 1
        cmplti t2, t1, 6
        bne  t2, loop
        syscall exit
.proc g
g:      addi t3, zero, 1
        ret
.endproc
`)
	pr := Predict(p)
	sp, ok := pr.Sites[4] // the in-loop ldq
	if !ok {
		t.Fatal("no prediction at the reload site")
	}
	if sp.Tier != TierLikely || sp.Reason != "loop-inv-load" {
		t.Errorf("reload = tier %v reason %q, want likely loop-inv-load", sp.Tier, sp.Reason)
	}

	// The same reload through a non-fp base must stay uncertain when
	// the loop calls: the callee may store anywhere.
	p2 := mustAssemble(t, `
main:   syscall getint
        addi s0, sp, -32
        stq  v0, 8(s0)
loop:   ldq  t0, 8(s0)
        jsr  g
        addi t1, t1, 1
        cmplti t2, t1, 6
        bne  t2, loop
        syscall exit
.proc g
g:      addi t3, zero, 1
        ret
.endproc
`)
	pr2 := Predict(p2)
	if sp := pr2.Sites[3]; sp.Reason == "loop-inv-load" {
		t.Errorf("non-frame reload with in-loop call claimed loop-inv-load")
	}
}

func TestPredictAccessorStrings(t *testing.T) {
	for tier, want := range map[Tier]string{
		TierProved: "proved", TierLikely: "likely", TierUncertain: "uncertain",
	} {
		if tier.String() != want {
			t.Errorf("%d.String() = %q, want %q", tier, tier.String(), want)
		}
	}
	ev := PredictEval{LikelyTotal: 4, LikelyInvariant: 3, UncertainInvariant: 1, UncertainTotal: 5}
	if p := ev.Precision(); p != 0.75 {
		t.Errorf("precision = %v, want 0.75", p)
	}
	if r := ev.Recall(); r != 0.75 {
		t.Errorf("recall = %v, want 0.75", r)
	}
}
