package analysis

// DomTree is the dominator tree of a CFG, computed over the blocks
// reachable from the entry (Cooper-Harvey-Kennedy iterative algorithm).
// Unreachable blocks have Idom -1 and dominate nothing.
type DomTree struct {
	cfg *CFG
	// Idom[b] is the immediate dominator of block b, -1 for the entry
	// and for unreachable blocks.
	Idom []int
	// Children[b] lists the blocks immediately dominated by b.
	Children [][]int
	// RPO is the reverse postorder of the reachable blocks.
	RPO []int

	rpoNum []int // block -> reverse-postorder number, -1 if unreachable
}

// Dominators computes the dominator tree. Call edges do not contribute:
// dominance is defined over the CFG's intra-procedural edges (plus the
// address-taken successors of indirect jumps in a program-level CFG).
func (c *CFG) Dominators() *DomTree {
	return c.dominatorsFrom(c.EntryBlock())
}

// dominatorsFrom computes the dominator tree of the subgraph reachable
// from an arbitrary root block — the view needed to find natural loops
// inside a called procedure, whose entry is not reachable from the
// program entry along successor edges alone.
func (c *CFG) dominatorsFrom(entry int) *DomTree {
	n := len(c.Blocks)
	d := &DomTree{
		cfg:      c,
		Idom:     make([]int, n),
		Children: make([][]int, n),
		rpoNum:   make([]int, n),
	}
	for i := range d.Idom {
		d.Idom[i] = -1
		d.rpoNum[i] = -1
	}
	if entry < 0 {
		return d
	}

	// Postorder DFS from the entry.
	var post []int
	state := make([]int, n) // 0 unvisited, 1 on stack, 2 done
	var dfs func(b int)
	dfs = func(b int) {
		state[b] = 1
		for _, s := range c.Blocks[b].Succs {
			if state[s] == 0 {
				dfs(s)
			}
		}
		state[b] = 2
		post = append(post, b)
	}
	dfs(entry)
	for i := len(post) - 1; i >= 0; i-- {
		d.RPO = append(d.RPO, post[i])
	}
	for i, b := range d.RPO {
		d.rpoNum[b] = i
	}

	intersect := func(a, b int) int {
		for a != b {
			for d.rpoNum[a] > d.rpoNum[b] {
				a = d.Idom[a]
			}
			for d.rpoNum[b] > d.rpoNum[a] {
				b = d.Idom[b]
			}
		}
		return a
	}

	d.Idom[entry] = entry
	for changed := true; changed; {
		changed = false
		for _, b := range d.RPO {
			if b == entry {
				continue
			}
			newIdom := -1
			for _, p := range c.Blocks[b].Preds {
				if d.rpoNum[p] < 0 || d.Idom[p] < 0 {
					continue // pred unreachable or not yet processed
				}
				if newIdom < 0 {
					newIdom = p
				} else {
					newIdom = intersect(p, newIdom)
				}
			}
			if newIdom >= 0 && d.Idom[b] != newIdom {
				d.Idom[b] = newIdom
				changed = true
			}
		}
	}
	d.Idom[entry] = -1
	for b, id := range d.Idom {
		if id >= 0 {
			d.Children[id] = append(d.Children[id], b)
		}
	}
	return d
}

// Dominates reports whether block a dominates block b (reflexively).
// Unreachable blocks neither dominate nor are dominated.
func (d *DomTree) Dominates(a, b int) bool {
	if d.rpoNum[a] < 0 || d.rpoNum[b] < 0 {
		return false
	}
	for b >= 0 {
		if a == b {
			return true
		}
		b = d.Idom[b]
	}
	return false
}
