package analysis

import "valueprof/internal/isa"

// Facts is the region-level constant-propagation lattice element: known
// register values plus known fp-relative stack slots. Slot tracking is
// what lets the specializer see through the compiler's argument spills
// (stq a0, 16(fp) ... ldq t0, 16(fp)).
type Facts struct {
	Regs  map[uint8]int64
	Slots map[int32]int64
}

// NewFacts returns an empty fact set (nothing known).
func NewFacts() *Facts {
	return &Facts{Regs: make(map[uint8]int64), Slots: make(map[int32]int64)}
}

// Clone deep-copies the fact set.
func (f *Facts) Clone() *Facts {
	out := NewFacts()
	for k, v := range f.Regs {
		out.Regs[k] = v
	}
	for k, v := range f.Slots {
		out.Slots[k] = v
	}
	return out
}

// MeetFacts intersects two fact sets (same key, same value survives).
func MeetFacts(a, b *Facts) *Facts {
	out := NewFacts()
	for k, v := range a.Regs {
		if bv, ok := b.Regs[k]; ok && bv == v {
			out.Regs[k] = v
		}
	}
	for k, v := range a.Slots {
		if bv, ok := b.Slots[k]; ok && bv == v {
			out.Slots[k] = v
		}
	}
	return out
}

// EqualFacts reports whether two fact sets carry identical knowledge.
func EqualFacts(a, b *Facts) bool {
	if len(a.Regs) != len(b.Regs) || len(a.Slots) != len(b.Slots) {
		return false
	}
	for k, v := range a.Regs {
		if bv, ok := b.Regs[k]; !ok || bv != v {
			return false
		}
	}
	for k, v := range a.Slots {
		if bv, ok := b.Slots[k]; !ok || bv != v {
			return false
		}
	}
	return true
}

// Reg returns the known value of r; the zero register is always known.
func (f *Facts) Reg(r uint8) (int64, bool) {
	if r == isa.RegZero {
		return 0, true
	}
	v, ok := f.Regs[r]
	return v, ok
}

// SetReg records a known register value.
func (f *Facts) SetReg(r uint8, v int64) {
	if r != isa.RegZero {
		f.Regs[r] = v
	}
}

// KillReg forgets r; redefining fp also invalidates every fp-relative
// slot fact.
func (f *Facts) KillReg(r uint8) {
	delete(f.Regs, r)
	if r == isa.RegFP {
		f.Slots = make(map[int32]int64)
	}
}

// KillSlots forgets every tracked stack slot.
func (f *Facts) KillSlots() { f.Slots = make(map[int32]int64) }

// EvalValue computes the constant result of in under f when every
// needed input is known. It handles pure ALU/compare ops and 64-bit
// loads from known fp slots; ok is false otherwise.
func EvalValue(in isa.Inst, f *Facts) (val int64, ok bool) {
	switch in.Op.Form() {
	case isa.FormRRR:
		a, aok := f.Reg(in.Ra)
		b, bok := f.Reg(in.Rb)
		if !aok || !bok {
			return 0, false
		}
		return EvalPure(in.Op, a, b, in.Imm)
	case isa.FormRRI:
		a, aok := f.Reg(in.Ra)
		if !aok {
			return 0, false
		}
		return EvalPure(in.Op, a, 0, in.Imm)
	case isa.FormMem:
		if in.Op == isa.OpLdq && in.Ra == isa.RegFP {
			v, known := f.Slots[in.Imm]
			return v, known
		}
	}
	return 0, false
}

// ApplyTransfer updates facts across in: known pure results record the
// constant; anything else kills the destination. Stores update or kill
// slot facts; calls kill caller-saved registers and all memory facts
// (the callee may write through passed addresses).
func ApplyTransfer(in isa.Inst, f *Facts) {
	switch in.Op {
	case isa.OpJsr, isa.OpJsrr:
		for _, r := range CallerSaved {
			delete(f.Regs, r)
		}
		f.KillSlots()
		return
	case isa.OpSyscall:
		// Syscalls write v0 (getint/clock) but no program memory.
		f.KillReg(isa.RegV0)
		return
	case isa.OpStq, isa.OpStl, isa.OpStb:
		if in.Ra == isa.RegFP && in.Op == isa.OpStq {
			if v, ok := f.Reg(in.Rd); ok {
				f.Slots[in.Imm] = v
			} else {
				delete(f.Slots, in.Imm)
			}
			return
		}
		if in.Ra == isa.RegFP {
			// Narrow store to a tracked slot: forget it.
			delete(f.Slots, in.Imm)
			return
		}
		// A store through an arbitrary pointer may alias the frame.
		f.KillSlots()
		return
	}
	if !in.Op.HasDest() {
		return
	}
	if v, ok := EvalValue(in, f); ok {
		f.KillReg(in.Rd) // handles fp-redefinition slot invalidation
		f.SetReg(in.Rd, v)
		return
	}
	f.KillReg(in.Rd)
}

// ConstResult holds per-block entry facts from a ConstProp run.
type ConstResult struct {
	// In[b] is the fact set at entry of block b; nil for unreached
	// blocks.
	In []*Facts
	// Reached[b] reports whether block b is reachable from the entry
	// under the propagated facts.
	Reached []bool
}

// ConstProp runs forward constant propagation over the CFG seeded with
// the given entry facts, returning the fixpoint per-block entry facts.
// The caller replays ApplyTransfer within a block to get per-pc facts.
func (c *CFG) ConstProp(entry *Facts) *ConstResult {
	res := &ConstResult{
		In:      make([]*Facts, len(c.Blocks)),
		Reached: make([]bool, len(c.Blocks)),
	}
	eb := c.EntryBlock()
	if eb < 0 {
		return res
	}
	res.In[eb] = entry.Clone()
	res.Reached[eb] = true
	worklist := []int{eb}
	for len(worklist) > 0 {
		b := worklist[0]
		worklist = worklist[1:]
		f := res.In[b].Clone()
		blk := &c.Blocks[b]
		for pc := blk.Start; pc < blk.End; pc++ {
			ApplyTransfer(c.Code[pc-c.Base], f)
		}
		for _, s := range blk.Succs {
			if !res.Reached[s] {
				res.Reached[s] = true
				res.In[s] = f.Clone()
				worklist = append(worklist, s)
			} else if merged := MeetFacts(res.In[s], f); !EqualFacts(merged, res.In[s]) {
				res.In[s] = merged
				worklist = append(worklist, s)
			}
		}
	}
	return res
}
