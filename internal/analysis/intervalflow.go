package analysis

import (
	"math"
	"sort"

	"valueprof/internal/isa"
	"valueprof/internal/program"
)

// Intervals is the per-pc result of AnalyzeIntervals: for every
// result-producing instruction, a sound interval containing every value
// the instruction can compute at runtime.
type Intervals struct {
	prog *program.Program
	// Facts is indexed by pc; entries for reachable result-producing
	// instructions hold the computed-result interval, everything else
	// is top.
	Facts []Interval
	// Degraded mirrors Constness.Degraded: programs with indirect jumps
	// or calls fall back to per-instruction syntactic intervals and make
	// no reachability or dead-edge claims.
	Degraded bool

	reached []bool
	cfg     *CFG
	dead    []DeadEdge
}

// DeadEdge is one arm of a conditional branch the interval analysis
// proves can never be taken: the branch at PC always falls through
// (Taken=true means the *taken* arm is dead) or always branches
// (Taken=false: the fall-through arm is dead). Both arms of a branch in
// an unreachable block are never reported — the whole block is already
// unreached.
type DeadEdge struct {
	PC    int
	Taken bool
}

// ivState is the abstract machine state: one interval per register.
type ivState [isa.NumRegs]Interval

func joinState(a, b *ivState) (ivState, bool) {
	var out ivState
	changed := false
	for r := range a {
		out[r] = a[r].Join(b[r])
		if out[r] != a[r] {
			changed = true
		}
	}
	return out, changed
}

func narrowState(old, next *ivState) ivState {
	var out ivState
	for r := range old {
		out[r] = old[r].Narrow(next[r])
	}
	return out
}

// Widening policy: headers of natural loops and call-entry blocks widen
// after ivWidenDelay joins (delayed widening keeps short constant chains
// precise); any block updated more than ivHardWiden times widens
// unconditionally, guaranteeing termination even on irreducible control
// flow the dominator-based header detection misses.
const (
	ivWidenDelay = 2
	ivHardWiden  = 32
)

// ivAnalyzer carries the dataflow state of one AnalyzeIntervals run.
type ivAnalyzer struct {
	cfg  *CFG
	kill RegSet
	// ths are widening thresholds: the program's immediate constants and
	// their neighbors, sorted ascending. Widening a bound stops at the
	// nearest threshold before jumping to infinity, which keeps
	// guard-bounded loop counters finite (the guard's constant is always
	// a threshold) without risking termination — the set is finite and
	// every widening step strictly advances through it.
	ths []int64
}

// collectThresholds gathers widening thresholds from every immediate
// operand in the program (plus small defaults). imm-1 and imm+1 cover
// the off-by-one bounds strict comparisons imply.
func collectThresholds(code []isa.Inst) []int64 {
	set := map[int64]bool{-1: true, 0: true, 1: true}
	for _, in := range code {
		if in.Op.Form() == isa.FormRRI {
			v := int64(in.Imm)
			set[v-1], set[v], set[v+1] = true, true, true
		}
	}
	ths := make([]int64, 0, len(set))
	for v := range set {
		ths = append(ths, v)
	}
	sort.Slice(ths, func(i, j int) bool { return ths[i] < ths[j] })
	return ths
}

// widen is Interval.Widen with threshold stops: a growing bound lands on
// the nearest program constant that covers it, and only escalates to
// infinity when no threshold remains.
func (an *ivAnalyzer) widen(old, next Interval) Interval {
	if old.IsEmpty() {
		return next
	}
	if next.IsEmpty() {
		return old
	}
	out := old
	if next.Lo < old.Lo {
		out.Lo = math.MinInt64
		// Largest threshold <= next.Lo.
		if i := sort.Search(len(an.ths), func(i int) bool { return an.ths[i] > next.Lo }); i > 0 {
			out.Lo = an.ths[i-1]
		}
	}
	if next.Hi > old.Hi {
		out.Hi = math.MaxInt64
		// Smallest threshold >= next.Hi.
		if i := sort.Search(len(an.ths), func(i int) bool { return an.ths[i] >= next.Hi }); i < len(an.ths) {
			out.Hi = an.ths[i]
		}
	}
	return out
}

func (an *ivAnalyzer) widenState(old, next *ivState) ivState {
	var out ivState
	for r := range old {
		out[r] = an.widen(old[r], next[r])
	}
	return out
}

// resultIv computes the interval of the value a result-producing
// instruction writes (the value an after-hook observes).
func (an *ivAnalyzer) resultIv(in isa.Inst, pc int, st *ivState) Interval {
	if iv, ok := loadInterval(in.Op); ok {
		return iv
	}
	switch in.Op {
	case isa.OpJsr, isa.OpJsrr:
		return Single(int64(pc + 1)) // link value
	}
	a := st[in.Ra]
	op := in.Op
	var b Interval
	switch in.Op.Form() {
	case isa.FormRRR:
		b = st[in.Rb]
	case isa.FormRRI:
		var ok bool
		op, b, ok = immOperand(in)
		if !ok {
			return TopInterval()
		}
	default:
		return TopInterval()
	}
	return intervalOf(op, a, b)
}

// loadInterval bounds a load's result from its width and extension
// alone; sound under any machine state.
func loadInterval(op isa.Op) (Interval, bool) {
	switch op {
	case isa.OpLdq:
		return TopInterval(), true
	case isa.OpLdl:
		return Interval{math.MinInt32, math.MaxInt32}, true
	case isa.OpLdbu:
		return Interval{0, 255}, true
	case isa.OpLdb:
		return Interval{-128, 127}, true
	}
	return Interval{}, false
}

// apply advances st across in, mirroring the constness analyzer's
// interprocedural model: jsr delivers the callee-entry state through
// propagateCall and clobbers every register the image writes anywhere
// plus the caller-saved set.
func (an *ivAnalyzer) apply(in isa.Inst, pc int, st *ivState, propagateCall func(callee int, at *ivState)) {
	switch in.Op {
	case isa.OpJsr, isa.OpJsrr:
		callee := *st
		if in.Rd != isa.RegZero {
			callee[in.Rd] = Single(int64(pc + 1))
		}
		if in.Op == isa.OpJsr {
			if b := an.cfg.blockIndex(int(in.Imm)); b >= 0 {
				propagateCall(b, &callee)
			}
		}
		for r := uint8(0); r < isa.NumRegs; r++ {
			if an.kill.Has(r) {
				st[r] = TopInterval()
			}
		}
		if in.Rd != isa.RegZero {
			st[in.Rd] = TopInterval()
		}
		return
	case isa.OpSyscall:
		if in.Imm == isa.SysClock {
			st[isa.RegV0] = Interval{0, math.MaxInt64} // cycle counter
		} else {
			st[isa.RegV0] = TopInterval()
		}
		return
	}
	if !in.Op.HasDest() || in.Rd == isa.RegZero {
		return
	}
	st[in.Rd] = an.resultIv(in, pc, st)
}

// condBranch reports whether blk ends in a two-armed conditional branch
// (target distinct from fall-through) and returns its instruction.
func (an *ivAnalyzer) condBranch(blk *Block) (isa.Inst, bool) {
	last := an.cfg.Code[blk.End-1-an.cfg.Base]
	if last.Op != isa.OpBeq && last.Op != isa.OpBne {
		return last, false
	}
	if int(last.Imm) == blk.End {
		return last, false // both arms land on the same block
	}
	return last, true
}

// refineEdge narrows st — the state at the end of a conditional-branch
// block — with the facts the chosen arm implies: the branched register
// meets [0,0] (or drops a zero endpoint), and when the register was
// produced by a comparison in the same block whose operands survive to
// the branch, the comparison's operands are refined relationally.
// Returns false when the refined state is infeasible: that arm can
// never be taken.
func (an *ivAnalyzer) refineEdge(blk *Block, taken bool, st *ivState) bool {
	last := an.cfg.Code[blk.End-1-an.cfg.Base]
	// The branch predicate: beq takes when ra == 0, bne when ra != 0.
	raZero := (last.Op == isa.OpBeq) == taken
	ra := last.Ra
	var refined Interval
	if raZero {
		refined = st[ra].Meet(Single(0))
	} else {
		refined = trimValue(st[ra], 0)
	}
	if refined.IsEmpty() {
		return false
	}
	if ra != isa.RegZero {
		st[ra] = refined
	}
	an.refineCompare(blk, ra, !raZero, st)
	return true
}

// refineCompare looks for the defining comparison of the branch register
// inside the block and, when its operands reach the branch unmodified,
// refines them with the knowledge that the comparison evaluated to
// holds. Infeasibility is already decided by the branch register itself
// (a comparison result is always in [0,1], so the relational refinement
// can tighten but never newly empty the branch decision).
func (an *ivAnalyzer) refineCompare(blk *Block, ra uint8, holds bool, st *ivState) {
	if ra == isa.RegZero {
		return
	}
	code := an.cfg.Code
	base := an.cfg.Base
	// Registers clobbered between a candidate def and the branch.
	var clobbered RegSet
	for pc := blk.End - 2; pc >= blk.Start; pc-- {
		in := code[pc-base]
		_, def := UseDef(in)
		if !def.Has(ra) {
			clobbered |= def
			continue
		}
		if in.Op.Class() != isa.ClassCompare {
			return // defined by something else; no relational fact
		}
		if in.Ra == ra || (in.Op.Form() == isa.FormRRR && in.Rb == ra) {
			return // the comparison overwrote its own operand
		}
		if in.Op.Form() == isa.FormRRR && in.Ra == in.Rb {
			return // x REL x carries no refinable fact
		}
		if clobbered.Has(in.Ra) {
			return
		}
		op := in.Op
		a := st[in.Ra]
		var b Interval
		refineB := false
		switch in.Op.Form() {
		case isa.FormRRR:
			if clobbered.Has(in.Rb) {
				return
			}
			b = st[in.Rb]
			refineB = in.Rb != isa.RegZero && in.Rb != in.Ra
		case isa.FormRRI:
			var ok bool
			op, b, ok = immOperand(in)
			if !ok {
				return
			}
		default:
			return
		}
		na, nb := refineRel(op, a, b, holds)
		if na.IsEmpty() || nb.IsEmpty() {
			// The branch outcome already encodes feasibility; an empty
			// relational refinement here means the comparison operands'
			// boxes were too coarse to agree — keep them unrefined.
			return
		}
		if in.Ra != isa.RegZero {
			st[in.Ra] = na
		}
		if refineB {
			st[in.Rb] = nb
		}
		return
	}
}

// AnalyzeIntervals runs the whole-program value-range dataflow. The
// structure mirrors AnalyzeConstness: same entry state shape (all
// registers zero except sp/fp, which hold the unknown memory top), same
// call-clobber model, same degraded fallback for programs with indirect
// control flow. On top of that it widens at loop headers (found via the
// dominator tree), narrows along conditional-branch edges, and finishes
// with two decreasing rounds applying the narrowing operator to recover
// precision the widening discarded.
func AnalyzeIntervals(p *program.Program) *Intervals {
	ivs := &Intervals{
		prog:  p,
		Facts: make([]Interval, len(p.Code)),
	}
	for i := range ivs.Facts {
		ivs.Facts[i] = TopInterval()
	}
	for _, in := range p.Code {
		if in.Op == isa.OpJmp || in.Op == isa.OpJsrr {
			ivs.Degraded = true
			break
		}
	}
	if ivs.Degraded {
		for pc, in := range p.Code {
			ivs.Facts[pc] = syntacticInterval(pc, in)
		}
		return ivs
	}
	cfg := ForProgram(p)
	ivs.cfg = cfg
	ivs.reached = cfg.Reachable()
	if len(p.Code) == 0 {
		return ivs
	}

	an := &ivAnalyzer{cfg: cfg, ths: collectThresholds(p.Code)}
	for _, in := range p.Code {
		_, def := UseDef(in)
		an.kill |= def
	}
	for _, r := range CallerSaved {
		an.kill.Add(r)
	}

	// Widening points: targets of retreating edges in a whole-program
	// traversal that follows call edges too, so loop headers inside
	// called procedures and recursive call cycles are all covered. The
	// traversal order doubles as the worklist priority and the visit
	// order of the decreasing rounds.
	order, orderNum, widenAt := flowOrder(cfg)
	nb := len(cfg.Blocks)

	var entry ivState
	for r := range entry {
		entry[r] = Single(0)
	}
	entry[isa.RegSP] = TopInterval()
	entry[isa.RegFP] = TopInterval()

	in := make([]*ivState, nb)
	seen := make([]bool, nb)
	updates := make([]int, nb)
	inWL := make([]bool, nb)
	var worklist []int
	push := func(b int, st *ivState) {
		if !seen[b] {
			seen[b] = true
			cp := *st
			in[b] = &cp
			worklist = append(worklist, b)
			inWL[b] = true
			return
		}
		joined, changed := joinState(in[b], st)
		if !changed {
			return
		}
		updates[b]++
		if (widenAt[b] && updates[b] > ivWidenDelay) || updates[b] > ivHardWiden {
			joined = an.widenState(in[b], &joined)
		}
		*in[b] = joined
		if !inWL[b] {
			worklist = append(worklist, b)
			inWL[b] = true
		}
	}
	// pop removes the worklist block earliest in traversal order, so
	// acyclic regions converge in near-linear update counts and the
	// hard-widening backstop only fires on genuine cycles.
	pop := func() int {
		best := 0
		for i := 1; i < len(worklist); i++ {
			if orderNum[worklist[i]] < orderNum[worklist[best]] {
				best = i
			}
		}
		b := worklist[best]
		worklist[best] = worklist[len(worklist)-1]
		worklist = worklist[:len(worklist)-1]
		inWL[b] = false
		return b
	}

	eb := cfg.EntryBlock()
	if eb < 0 {
		return ivs
	}
	push(eb, &entry)

	step := func(b int) {
		st := *in[b]
		blk := &cfg.Blocks[b]
		for pc := blk.Start; pc < blk.End; pc++ {
			an.apply(cfg.Code[pc], pc, &st, push)
		}
		last := cfg.Code[blk.End-1]
		if _, ok := an.condBranch(blk); ok {
			tgt := int(last.Imm)
			for _, s := range blk.Succs {
				est := st
				if an.refineEdge(blk, cfg.Blocks[s].Start == tgt, &est) {
					push(s, &est)
				}
			}
			return
		}
		for _, s := range blk.Succs {
			push(s, &st)
		}
	}
	for len(worklist) > 0 {
		step(pop())
	}

	// Call-entry contributions, for the decreasing rounds.
	callersOf := map[int][]int{} // callee block -> call pcs
	for _, cs := range cfg.CallSites {
		if cs.Callee >= 0 {
			callersOf[cs.Callee] = append(callersOf[cs.Callee], cs.PC)
		}
	}
	// edgeOut replays block b from its fixpoint entry state and refines
	// for the edge to succ; feasible=false marks a dead arm.
	noCall := func(int, *ivState) {}
	edgeOut := func(b, succ int) (ivState, bool) {
		st := *in[b]
		blk := &cfg.Blocks[b]
		for pc := blk.Start; pc < blk.End; pc++ {
			an.apply(cfg.Code[pc], pc, &st, noCall)
		}
		if _, ok := an.condBranch(blk); ok {
			taken := cfg.Blocks[succ].Start == int(cfg.Code[blk.End-1].Imm)
			if !an.refineEdge(blk, taken, &st) {
				return st, false
			}
		}
		return st, true
	}
	// callState replays the caller block up to the call at pc and builds
	// the callee-entry state.
	callState := func(pc int) (ivState, bool) {
		cb := cfg.BlockContaining(pc)
		if cb < 0 || !seen[cb] {
			return ivState{}, false
		}
		st := *in[cb]
		for p := cfg.Blocks[cb].Start; p < pc; p++ {
			an.apply(cfg.Code[p], p, &st, noCall)
		}
		call := cfg.Code[pc]
		if call.Rd != isa.RegZero {
			st[call.Rd] = Single(int64(pc + 1))
		}
		return st, true
	}

	// Two decreasing rounds: recompute each block's entry as the join of
	// its feasible incoming contributions and narrow the widened state
	// against it. Every state in play stays above the true fixpoint, so
	// the recovered bounds remain sound.
	for round := 0; round < 2; round++ {
		for _, b := range order {
			if !seen[b] {
				continue
			}
			have := false
			var next ivState
			join := func(st *ivState) {
				if !have {
					next = *st
					have = true
					return
				}
				next, _ = joinState(&next, st)
			}
			if b == eb {
				join(&entry)
			}
			for _, p := range cfg.Blocks[b].Preds {
				if !seen[p] {
					continue
				}
				if st, feasible := edgeOut(p, b); feasible {
					join(&st)
				}
			}
			for _, pc := range callersOf[b] {
				if st, ok := callState(pc); ok {
					join(&st)
				}
			}
			if !have {
				continue
			}
			*in[b] = narrowState(in[b], &next)
		}
	}

	// The dataflow's seen set refines CFG reachability: a block all of
	// whose incoming edges proved infeasible was never pushed, so it can
	// never execute. Intersecting keeps Reached sound and lets At report
	// empty intervals behind dead branch arms.
	for b := range ivs.reached {
		ivs.reached[b] = ivs.reached[b] && seen[b]
	}

	// Final pass: record per-pc facts and collect dead branch arms.
	for b := range cfg.Blocks {
		if !seen[b] {
			continue
		}
		st := *in[b]
		blk := &cfg.Blocks[b]
		for pc := blk.Start; pc < blk.End; pc++ {
			ins := cfg.Code[pc]
			if ins.Op.HasDest() {
				ivs.Facts[pc] = an.resultIv(ins, pc, &st)
			}
			an.apply(ins, pc, &st, noCall)
		}
		if _, ok := an.condBranch(blk); ok && ivs.reached[b] {
			tgt := int(cfg.Code[blk.End-1].Imm)
			for _, s := range blk.Succs {
				est := st
				taken := cfg.Blocks[s].Start == tgt
				if !an.refineEdge(blk, taken, &est) {
					ivs.dead = append(ivs.dead, DeadEdge{PC: blk.End - 1, Taken: taken})
				}
			}
		}
	}
	return ivs
}

// syntacticInterval bounds an instruction's result using no dataflow at
// all, so it is sound under arbitrary control flow and register state:
// loads are bounded by their width, comparisons by {0,1}, link values by
// their pc, and operations over the hardwired zero register evaluate
// exactly.
func syntacticInterval(pc int, in isa.Inst) Interval {
	if !in.Op.HasDest() {
		return TopInterval()
	}
	if iv, ok := loadInterval(in.Op); ok {
		return iv
	}
	switch in.Op {
	case isa.OpJsr, isa.OpJsrr:
		return Single(int64(pc + 1))
	}
	switch in.Op.Form() {
	case isa.FormRRI:
		if in.Ra == isa.RegZero {
			if v, ok := EvalPure(in.Op, 0, 0, in.Imm); ok {
				return Single(v)
			}
		}
	case isa.FormRRR:
		if in.Ra == isa.RegZero && in.Rb == isa.RegZero {
			if v, ok := EvalPure(in.Op, 0, 0, in.Imm); ok {
				return Single(v)
			}
		}
	}
	switch in.Op.Class() {
	case isa.ClassCompare:
		return Interval{0, 1}
	}
	switch in.Op {
	case isa.OpAndi:
		if in.Imm >= 0 {
			return Interval{0, int64(in.Imm)}
		}
	case isa.OpSrli:
		if uint32(in.Imm)&63 != 0 {
			return Interval{0, math.MaxInt64}
		}
	}
	return TopInterval()
}

// Reached reports whether the instruction at pc can execute; under
// degraded analysis everything is assumed reachable.
func (ivs *Intervals) Reached(pc int) bool {
	if ivs.Degraded {
		return true
	}
	b := ivs.cfg.BlockContaining(pc)
	return b >= 0 && ivs.reached[b]
}

// At returns the computed-result interval of the result-producing
// instruction at pc. ok is false for non-result pcs and out-of-range
// pcs; unreachable pcs report the empty interval.
func (ivs *Intervals) At(pc int) (Interval, bool) {
	if pc < 0 || pc >= len(ivs.Facts) {
		return TopInterval(), false
	}
	if !ivs.prog.Code[pc].Op.HasDest() {
		return TopInterval(), false
	}
	if !ivs.Reached(pc) {
		return EmptyInterval(), true
	}
	return ivs.Facts[pc], true
}

// DeadEdges returns the branch arms proven unreachable, in pc order.
// Always empty under degraded analysis.
func (ivs *Intervals) DeadEdges() []DeadEdge { return ivs.dead }

// flowOrder is a whole-program DFS following CFG successor edges and
// direct-call edges from the entry (then from any address-taken block
// not yet visited). It returns the blocks in reverse postorder, a
// per-block order index (unvisited blocks sort last), and the targets
// of retreating edges — a superset of the natural-loop headers and
// recursive-call entries, used as widening points.
func flowOrder(cfg *CFG) (order []int, orderNum []int, retreat []bool) {
	nb := len(cfg.Blocks)
	orderNum = make([]int, nb)
	retreat = make([]bool, nb)
	state := make([]int, nb) // 0 unvisited, 1 on stack, 2 done
	calleesOf := make(map[int][]int)
	for _, cs := range cfg.CallSites {
		b := cfg.BlockContaining(cs.PC)
		if cs.Callee >= 0 {
			calleesOf[b] = append(calleesOf[b], cs.Callee)
		}
	}
	var post []int
	var dfs func(b int)
	dfs = func(b int) {
		state[b] = 1
		for _, s := range cfg.Blocks[b].Succs {
			switch state[s] {
			case 0:
				dfs(s)
			case 1:
				retreat[s] = true
			}
		}
		for _, s := range calleesOf[b] {
			switch state[s] {
			case 0:
				dfs(s)
			case 1:
				retreat[s] = true
			}
		}
		state[b] = 2
		post = append(post, b)
	}
	if eb := cfg.EntryBlock(); eb >= 0 {
		dfs(eb)
	}
	for _, b := range cfg.AddressTaken {
		if state[b] == 0 {
			dfs(b)
		}
	}
	for i := len(post) - 1; i >= 0; i-- {
		order = append(order, post[i])
	}
	for b := range orderNum {
		orderNum[b] = nb
	}
	for i, b := range order {
		orderNum[b] = i
	}
	return order, orderNum, retreat
}
