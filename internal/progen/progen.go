// Package progen generates random VRISC programs for differential
// testing. The generator is seeded and fully deterministic: the same
// Config always yields the same Spec, the same Spec always emits the
// same assembly text. Generated programs are terminating by
// construction (bounded counted loops, calls restricted to a DAG over
// the procedure list) and pass analysis.Verify with zero diagnostics:
// every temporary is initialized before the loop body can read it,
// stack adjustments are balanced, divisors are forced odd, and memory
// accesses are masked into a private data array.
//
// The Spec — a small statement IR, not the emitted text — is the unit
// the shrinker minimizes and the regression corpus serializes, so a
// divergence repro stays editable and re-emittable.
package progen

import (
	"fmt"

	"valueprof/internal/analysis"
	"valueprof/internal/asm"
	"valueprof/internal/program"
)

// Statement kinds. A Spec is JSON-serialized into the regression
// corpus, so kinds are readable strings rather than iota constants.
const (
	KindOp     = "op"     // Op tDst, tSrc1, tSrc2
	KindOpImm  = "opi"    // Op tDst, tSrc1, Imm
	KindDiv    = "div"    // Op ∈ {div, rem} with divisor forced odd
	KindLoad   = "load"   // Op ∈ {ldq, ldl, ldbu, ldb} from the data array
	KindStore  = "store"  // Op ∈ {stq, stl, stb} into the data array
	KindIf     = "if"     // skip Then when tSrc1 == 0
	KindSwitch = "switch" // indirect jmp dispatch on tSrc1's low bit
	KindCall   = "call"   // jsr Callee
	KindICall  = "icall"  // li t9, Callee; jsrr t9
	KindGetInt = "getint" // tDst = next input value
	KindPutInt = "putint" // print tSrc1 & 255 and a newline
)

// Stmt is one statement of the generator IR.
type Stmt struct {
	Kind   string `json:"kind"`
	Op     string `json:"op,omitempty"`
	Dst    int    `json:"dst,omitempty"`
	Src1   int    `json:"src1,omitempty"`
	Src2   int    `json:"src2,omitempty"`
	Imm    int64  `json:"imm,omitempty"`
	Callee string `json:"callee,omitempty"`
	Then   []Stmt `json:"then,omitempty"`
	Else   []Stmt `json:"else,omitempty"`
}

// ProcSpec is one procedure: a counted loop over Body. Stride is the
// loop counter's decrement per iteration; 0 means the classic 1, and
// Iters is always a multiple of the stride so the bne-on-zero latch
// still terminates. The field is omitted from JSON when zero, so every
// pre-stride corpus entry re-emits byte-identically.
type ProcSpec struct {
	Name   string `json:"name"`
	Iters  int64  `json:"iters"`
	Stride int64  `json:"stride,omitempty"`
	Body   []Stmt `json:"body"`
}

// Spec is a complete generated program.
type Spec struct {
	Seed  uint64     `json:"seed"`
	Procs []ProcSpec `json:"procs"` // Procs[0] is main; calls go strictly forward
	Data  []int64    `json:"data"`  // initial contents of the shared array
}

// NumStmts returns the total statement count, the size the shrinker
// minimizes.
func (s *Spec) NumStmts() int {
	n := 0
	for i := range s.Procs {
		n += countStmts(s.Procs[i].Body)
	}
	return n
}

func countStmts(body []Stmt) int {
	n := 0
	for i := range body {
		n += 1 + countStmts(body[i].Then) + countStmts(body[i].Else)
	}
	return n
}

// Config bounds generation. The zero value of any field selects its
// default.
type Config struct {
	Seed     uint64
	MaxProcs int   // total procedures including main (default 4)
	MaxStmts int   // top-level statements per body (default 8)
	MaxIters int64 // loop trip-count ceiling (default 5)
	// IntervalEdges biases generation toward value-range edge cases:
	// non-unit loop strides, shift-and-double wraparound arithmetic,
	// and equality-compare-guarded branches. Off by default — the flag
	// only adds rng draws when set, so the unflagged statement stream
	// (and every existing seed corpus entry) is unchanged.
	IntervalEdges bool
}

func (c Config) withDefaults() Config {
	if c.MaxProcs <= 0 {
		c.MaxProcs = 4
	}
	if c.MaxStmts <= 0 {
		c.MaxStmts = 8
	}
	if c.MaxIters <= 0 {
		c.MaxIters = 5
	}
	return c
}

// dataWords is the length of the shared data array. Word indices are
// masked with dataWords-1 and byte indices with dataWords*8-1, so it
// must stay a power of two.
const dataWords = 64

// numTemps is the size of the temporary-register pool (t0..t7); t8 is
// unused, t9 is reserved for indirect-call and switch targets.
const numTemps = 8

// maxCallsPerBody bounds direct+indirect call statements per procedure
// body: calls nest along the procedure DAG inside counted loops, so
// the executed-instruction worst case grows as (iters·calls)^depth.
const maxCallsPerBody = 2

// rng is splitmix64 — tiny, seedable, stable across Go releases
// (math/rand's stream is not guaranteed stable, and a corpus entry
// must mean the same program forever).
type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

var rrrOps = []string{
	"add", "sub", "mul", "and", "or", "xor", "sll", "srl", "sra",
	"cmpeq", "cmpne", "cmplt", "cmple", "cmpgt", "cmpge",
}

var rriOps = []string{
	"addi", "muli", "andi", "ori", "xori", "slli", "srli", "srai",
	"cmplti", "cmpeqi",
}

var loadOps = []string{"ldq", "ldl", "ldbu", "ldb"}
var storeOps = []string{"stq", "stl", "stb"}

// Generate builds the Spec for cfg. It is a pure function of cfg.
func Generate(cfg Config) Spec {
	cfg = cfg.withDefaults()
	r := &rng{s: cfg.Seed ^ 0x5eedd1f7}
	nprocs := 1 + r.intn(cfg.MaxProcs)
	spec := Spec{Seed: cfg.Seed}

	spec.Data = make([]int64, dataWords)
	for i := range spec.Data {
		switch r.intn(4) {
		case 0:
			spec.Data[i] = 0
		case 1:
			spec.Data[i] = int64(r.intn(16))
		default:
			spec.Data[i] = int64(int32(r.next()))
		}
	}

	names := make([]string, nprocs)
	names[0] = "main"
	for i := 1; i < nprocs; i++ {
		names[i] = fmt.Sprintf("p%d", i)
	}
	for i := 0; i < nprocs; i++ {
		spec.Procs = append(spec.Procs, genProc(r, cfg, names, i))
	}

	// Every procedure must end up statically reachable (no unreachable
	// warnings): add a direct call from main to any callee the random
	// bodies never mention.
	called := map[string]bool{}
	for i := range spec.Procs {
		collectCallees(spec.Procs[i].Body, called)
	}
	for i := 1; i < nprocs; i++ {
		if !called[names[i]] {
			spec.Procs[0].Body = append(spec.Procs[0].Body,
				Stmt{Kind: KindCall, Callee: names[i]})
		}
	}
	return spec
}

func collectCallees(body []Stmt, into map[string]bool) {
	for i := range body {
		if body[i].Callee != "" {
			into[body[i].Callee] = true
		}
		collectCallees(body[i].Then, into)
		collectCallees(body[i].Else, into)
	}
}

func genProc(r *rng, cfg Config, names []string, idx int) ProcSpec {
	p := ProcSpec{
		Name:  names[idx],
		Iters: 1 + int64(r.intn(int(cfg.MaxIters))),
	}
	if cfg.IntervalEdges && r.intn(2) == 0 {
		// Non-unit stride: the counter steps by 2/3/5/7 and the
		// iteration budget scales so the latch still hits zero exactly.
		strides := []int64{2, 3, 5, 7}
		p.Stride = strides[r.intn(len(strides))]
		p.Iters *= p.Stride
	}
	n := 2 + r.intn(cfg.MaxStmts)
	calls := 0
	for i := 0; i < n; i++ {
		st := genStmt(r, names, idx, calls < maxCallsPerBody)
		if st.Kind == KindCall || st.Kind == KindICall {
			calls++
		}
		p.Body = append(p.Body, st)
		if cfg.IntervalEdges && r.intn(4) == 0 {
			p.Body = append(p.Body, genEdgeRecipe(r)...)
		}
	}
	return p
}

// genEdgeRecipe emits a short statement sequence that lands intervals
// on their hard cases: saturating wraparound arithmetic, sign-boundary
// shifts, and equality-compare-guarded branches whose refinement is a
// single value.
func genEdgeRecipe(r *rng) []Stmt {
	d, s := r.intn(numTemps), r.intn(numTemps)
	switch r.intn(3) {
	case 0:
		// Shift near the sign boundary, then double: the add overflows
		// for most inputs, so a sound analysis must saturate to Top
		// while the VM wraps.
		return []Stmt{
			{Kind: KindOpImm, Op: "slli", Dst: d, Src1: s, Imm: int64(60 + r.intn(4))},
			{Kind: KindOpImm, Op: "addi", Dst: d, Src1: d, Imm: int64(r.intn(5) - 2)},
			{Kind: KindOp, Op: "add", Dst: d, Src1: d, Src2: d},
		}
	case 1:
		// Arithmetic shift all the way down gives the two-point range
		// [-1,0]; the multiply then stretches it across zero.
		return []Stmt{
			{Kind: KindOpImm, Op: "srai", Dst: d, Src1: s, Imm: 63},
			{Kind: KindOpImm, Op: "muli", Dst: d, Src1: d, Imm: int64(r.intn(256) - 128)},
		}
	default:
		// Equality compare feeding a branch: the taken arm refines the
		// operand to exactly one value.
		return []Stmt{
			{Kind: KindOpImm, Op: "cmpeqi", Dst: d, Src1: s, Imm: int64(r.intn(16) - 8)},
			{Kind: KindIf, Src1: d, Then: []Stmt{genSimpleStmt(r)}},
		}
	}
}

// genStmt picks a top-level statement. allowCall is false once the
// per-body call budget is spent or the procedure is last in the DAG.
func genStmt(r *rng, names []string, idx int, allowCall bool) Stmt {
	allowCall = allowCall && idx < len(names)-1
	type choice struct {
		kind   string
		weight int
	}
	choices := []choice{
		{KindOp, 20}, {KindOpImm, 12}, {KindDiv, 6},
		{KindLoad, 12}, {KindStore, 8},
		{KindIf, 12}, {KindSwitch, 8},
		{KindGetInt, 6}, {KindPutInt, 5},
	}
	if allowCall {
		choices = append(choices, choice{KindCall, 8}, choice{KindICall, 5})
	}
	total := 0
	for _, c := range choices {
		total += c.weight
	}
	pick := r.intn(total)
	kind := choices[0].kind
	for _, c := range choices {
		if pick < c.weight {
			kind = c.kind
			break
		}
		pick -= c.weight
	}

	switch kind {
	case KindIf:
		st := Stmt{Kind: KindIf, Src1: r.intn(numTemps)}
		for i, n := 0, 1+r.intn(3); i < n; i++ {
			st.Then = append(st.Then, genSimpleStmt(r))
		}
		return st
	case KindSwitch:
		st := Stmt{Kind: KindSwitch, Src1: r.intn(numTemps)}
		for i, n := 0, 1+r.intn(2); i < n; i++ {
			st.Then = append(st.Then, genSimpleStmt(r))
		}
		for i, n := 0, 1+r.intn(2); i < n; i++ {
			st.Else = append(st.Else, genSimpleStmt(r))
		}
		return st
	case KindCall, KindICall:
		callee := names[idx+1+r.intn(len(names)-1-idx)]
		return Stmt{Kind: kind, Callee: callee}
	default:
		return genSimple(r, kind)
	}
}

// genSimpleStmt picks a straight-line statement (no control flow, no
// calls) for use inside if/switch arms.
func genSimpleStmt(r *rng) Stmt {
	kinds := []string{KindOp, KindOp, KindOpImm, KindDiv, KindLoad, KindStore, KindGetInt, KindPutInt}
	return genSimple(r, kinds[r.intn(len(kinds))])
}

func genSimple(r *rng, kind string) Stmt {
	switch kind {
	case KindOp:
		return Stmt{Kind: KindOp, Op: rrrOps[r.intn(len(rrrOps))],
			Dst: r.intn(numTemps), Src1: r.intn(numTemps), Src2: r.intn(numTemps)}
	case KindOpImm:
		op := rriOps[r.intn(len(rriOps))]
		imm := int64(r.intn(256) - 128)
		switch op {
		case "slli", "srli", "srai":
			imm = int64(r.intn(64))
		}
		return Stmt{Kind: KindOpImm, Op: op, Dst: r.intn(numTemps), Src1: r.intn(numTemps), Imm: imm}
	case KindDiv:
		op := "div"
		if r.intn(2) == 1 {
			op = "rem"
		}
		return Stmt{Kind: KindDiv, Op: op,
			Dst: r.intn(numTemps), Src1: r.intn(numTemps), Src2: r.intn(numTemps)}
	case KindLoad:
		return Stmt{Kind: KindLoad, Op: loadOps[r.intn(len(loadOps))],
			Dst: r.intn(numTemps), Src1: r.intn(numTemps)}
	case KindStore:
		return Stmt{Kind: KindStore, Op: storeOps[r.intn(len(storeOps))],
			Src1: r.intn(numTemps), Src2: r.intn(numTemps)}
	case KindGetInt:
		return Stmt{Kind: KindGetInt, Dst: r.intn(numTemps)}
	case KindPutInt:
		return Stmt{Kind: KindPutInt, Src1: r.intn(numTemps)}
	}
	panic("progen: unknown simple kind " + kind)
}

// InputFor derives a deterministic input vector for a spec. variant
// selects independent streams (the shard-merge property runs the same
// program on two inputs). Values repeat on purpose: value profiling
// properties need sites that are nearly — but not perfectly —
// invariant.
func InputFor(spec *Spec, variant uint64) []int64 {
	r := &rng{s: spec.Seed*0x9e3779b9 + 0xfeed ^ (variant << 17)}
	in := make([]int64, 32)
	for i := range in {
		in[i] = int64(r.intn(9) - 2)
	}
	return in
}

// Build emits, assembles, and verifies a spec. A spec whose program
// fails to assemble or has verifier errors is a generator bug, not a
// profiler divergence, so Build reports it as an error.
func Build(spec *Spec) (*program.Program, error) {
	src := Emit(spec)
	prog, err := asm.Assemble(src)
	if err != nil {
		return nil, fmt.Errorf("progen: seed %d does not assemble: %w", spec.Seed, err)
	}
	if diags := analysis.Verify(prog); diags.HasErrors() {
		return nil, fmt.Errorf("progen: seed %d fails verification: %v", spec.Seed, diags.Err())
	}
	return prog, nil
}
