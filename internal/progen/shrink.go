package progen

// Shrink greedily minimizes a spec while keep still accepts it. keep
// is typically "the program still diverges from the reference
// profiler"; candidates that no longer build are discarded before keep
// ever sees them, so the predicate only judges real programs. The
// result is 1-minimal with respect to the reduction steps: removing
// any single procedure, statement, or loop iteration would lose the
// divergence.
//
// maxTries bounds the total number of candidate evaluations (each one
// re-runs keep, which re-runs the harness); ≤ 0 selects a default.
func Shrink(spec Spec, keep func(*Spec) bool, maxTries int) Spec {
	if maxTries <= 0 {
		maxTries = 400
	}
	tries := 0
	accept := func(c Spec) bool {
		if tries >= maxTries {
			return false
		}
		tries++
		if _, err := Build(&c); err != nil {
			return false
		}
		return keep(&c)
	}
	for {
		improved := false
		for _, c := range candidates(&spec) {
			if tries >= maxTries {
				return spec
			}
			if accept(c) {
				spec = c
				improved = true
				break
			}
		}
		if !improved {
			return spec
		}
	}
}

// candidates enumerates one-step reductions of spec, larger cuts
// first so the greedy loop converges quickly.
func candidates(spec *Spec) []Spec {
	var out []Spec

	// Drop a whole procedure (and every call to it).
	for j := len(spec.Procs) - 1; j >= 1; j-- {
		c := cloneSpec(spec)
		name := c.Procs[j].Name
		c.Procs = append(c.Procs[:j], c.Procs[j+1:]...)
		for i := range c.Procs {
			c.Procs[i].Body = removeCalls(c.Procs[i].Body, name)
		}
		out = append(out, c)
	}

	// Drop one statement, outer statements before inner ones.
	for pi := range spec.Procs {
		for si := range spec.Procs[pi].Body {
			c := cloneSpec(spec)
			b := c.Procs[pi].Body
			c.Procs[pi].Body = append(b[:si], b[si+1:]...)
			out = append(out, c)
		}
	}
	for pi := range spec.Procs {
		for si := range spec.Procs[pi].Body {
			st := &spec.Procs[pi].Body[si]
			for ti := range st.Then {
				c := cloneSpec(spec)
				tb := c.Procs[pi].Body[si].Then
				c.Procs[pi].Body[si].Then = append(tb[:ti], tb[ti+1:]...)
				out = append(out, c)
			}
			for ei := range st.Else {
				c := cloneSpec(spec)
				eb := c.Procs[pi].Body[si].Else
				c.Procs[pi].Body[si].Else = append(eb[:ei], eb[ei+1:]...)
				out = append(out, c)
			}
		}
	}

	// Collapse loops to a single iteration.
	for pi := range spec.Procs {
		if spec.Procs[pi].Iters > 1 {
			c := cloneSpec(spec)
			c.Procs[pi].Iters = 1
			out = append(out, c)
		}
	}
	return out
}

func removeCalls(body []Stmt, callee string) []Stmt {
	out := body[:0]
	for i := range body {
		st := body[i]
		if (st.Kind == KindCall || st.Kind == KindICall) && st.Callee == callee {
			continue
		}
		st.Then = removeCalls(st.Then, callee)
		st.Else = removeCalls(st.Else, callee)
		out = append(out, st)
	}
	return out
}

func cloneSpec(s *Spec) Spec {
	c := *s
	c.Data = append([]int64(nil), s.Data...)
	c.Procs = make([]ProcSpec, len(s.Procs))
	for i := range s.Procs {
		c.Procs[i] = s.Procs[i]
		c.Procs[i].Body = cloneBody(s.Procs[i].Body)
	}
	return c
}

func cloneBody(body []Stmt) []Stmt {
	if body == nil {
		return nil
	}
	out := make([]Stmt, len(body))
	for i := range body {
		out[i] = body[i]
		out[i].Then = cloneBody(body[i].Then)
		out[i].Else = cloneBody(body[i].Else)
	}
	return out
}
