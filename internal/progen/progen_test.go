package progen

import (
	"context"
	"testing"

	"valueprof/internal/analysis"
	"valueprof/internal/atom"
	"valueprof/internal/vm"
)

// testStepLimit is far above the generator's construction-time worst
// case (~300k executed instructions), so hitting it means a
// termination bug.
const testStepLimit = 8 << 20

func TestGenerateIsDeterministic(t *testing.T) {
	for seed := uint64(1); seed <= 20; seed++ {
		a := Generate(Config{Seed: seed})
		b := Generate(Config{Seed: seed})
		if Emit(&a) != Emit(&b) {
			t.Fatalf("seed %d: two generations differ", seed)
		}
	}
	a := Generate(Config{Seed: 1})
	b := Generate(Config{Seed: 2})
	if Emit(&a) == Emit(&b) {
		t.Fatal("seeds 1 and 2 generated identical programs")
	}
}

func TestGeneratedProgramsVerifyClean(t *testing.T) {
	for seed := uint64(1); seed <= 200; seed++ {
		spec := Generate(Config{Seed: seed})
		prog, err := Build(&spec)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// Build only rejects errors; the generator's contract is
		// stronger — not a single warning either.
		if diags := analysis.Verify(prog); len(diags) != 0 {
			t.Fatalf("seed %d: diagnostics:\n%v\nprogram:\n%s", seed, diags, Emit(&spec))
		}
	}
}

func TestGeneratedProgramsTerminateDeterministically(t *testing.T) {
	for seed := uint64(1); seed <= 60; seed++ {
		spec := Generate(Config{Seed: seed})
		prog, err := Build(&spec)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		input := InputFor(&spec, 0)
		opts := atom.RunOptions{Input: input, StepLimit: testStepLimit}
		res1, outcome, err := atom.RunControlled(context.Background(), prog, opts)
		if outcome != vm.OutcomeCompleted {
			t.Fatalf("seed %d: outcome %v err %v\nprogram:\n%s", seed, outcome, err, Emit(&spec))
		}
		res2, _, _ := atom.RunControlled(context.Background(), prog, opts)
		if res1.Output != res2.Output || res1.ExitStatus != res2.ExitStatus ||
			res1.InstCount != res2.InstCount || res1.Cycles != res2.Cycles {
			t.Fatalf("seed %d: two runs of the same program differ", seed)
		}
	}
}

func TestInputForVariantsDiffer(t *testing.T) {
	spec := Generate(Config{Seed: 7})
	a, b := InputFor(&spec, 0), InputFor(&spec, 1)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("input variants 0 and 1 are identical")
	}
}

func TestShrinkMinimizesWhilePreservingPredicate(t *testing.T) {
	spec := Generate(Config{Seed: 11})
	hasDiv := func(s *Spec) bool {
		n := 0
		var walk func([]Stmt)
		walk = func(body []Stmt) {
			for i := range body {
				if body[i].Kind == KindDiv {
					n++
				}
				walk(body[i].Then)
				walk(body[i].Else)
			}
		}
		for i := range s.Procs {
			walk(s.Procs[i].Body)
		}
		return n > 0
	}
	if !hasDiv(&spec) {
		// Make the predicate satisfiable regardless of what seed 11
		// happened to generate.
		spec.Procs[0].Body = append(spec.Procs[0].Body,
			Stmt{Kind: KindDiv, Op: "div", Dst: 0, Src1: 1, Src2: 2})
	}
	before := spec.NumStmts()
	shrunk := Shrink(spec, hasDiv, 0)
	if !hasDiv(&shrunk) {
		t.Fatal("shrinking lost the predicate")
	}
	if shrunk.NumStmts() > before {
		t.Fatalf("shrinking grew the spec: %d -> %d", before, shrunk.NumStmts())
	}
	if shrunk.NumStmts() > 3 {
		t.Fatalf("shrink left %d statements for a single-div predicate", shrunk.NumStmts())
	}
	if _, err := Build(&shrunk); err != nil {
		t.Fatalf("shrunk spec no longer builds: %v", err)
	}
}

func TestIntervalEdgesVerifyCleanAndTerminate(t *testing.T) {
	strided, edges := 0, 0
	for seed := uint64(1); seed <= 120; seed++ {
		spec := Generate(Config{Seed: seed, IntervalEdges: true})
		prog, err := Build(&spec)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if diags := analysis.Verify(prog); len(diags) != 0 {
			t.Fatalf("seed %d: diagnostics:\n%v\nprogram:\n%s", seed, diags, Emit(&spec))
		}
		for i := range spec.Procs {
			p := &spec.Procs[i]
			if p.Stride > 1 {
				strided++
				if p.Iters%p.Stride != 0 {
					t.Fatalf("seed %d: %s iters %d not a multiple of stride %d",
						seed, p.Name, p.Iters, p.Stride)
				}
			}
			if hasEdgeOp(p.Body) {
				edges++
			}
		}
		_, outcome, err := atom.RunControlled(context.Background(), prog,
			atom.RunOptions{Input: InputFor(&spec, 0), StepLimit: testStepLimit})
		if outcome != vm.OutcomeCompleted {
			t.Fatalf("seed %d: outcome %v err %v", seed, outcome, err)
		}
	}
	if strided == 0 {
		t.Error("edge mode never produced a non-unit stride")
	}
	if edges == 0 {
		t.Error("edge mode never produced an edge recipe")
	}
}

func hasEdgeOp(body []Stmt) bool {
	for i := range body {
		if body[i].Op == "srai" && body[i].Imm == 63 {
			return true
		}
		if body[i].Op == "slli" && body[i].Imm >= 60 {
			return true
		}
		if hasEdgeOp(body[i].Then) || hasEdgeOp(body[i].Else) {
			return true
		}
	}
	return false
}

// The knob must be purely additive: with it off, generation and
// emission are byte-identical to what every existing corpus entry was
// produced from.
func TestIntervalEdgesOffLeavesStreamUntouched(t *testing.T) {
	for seed := uint64(1); seed <= 40; seed++ {
		plain := Generate(Config{Seed: seed})
		off := Generate(Config{Seed: seed, IntervalEdges: false})
		if Emit(&plain) != Emit(&off) {
			t.Fatalf("seed %d: IntervalEdges=false changed the program", seed)
		}
	}
}
