package minic

import (
	"fmt"
	"strings"

	"valueprof/internal/analysis"
	"valueprof/internal/asm"
	"valueprof/internal/program"
)

// Compile translates MiniC source into a linked VRISC program.
func Compile(src string) (*program.Program, error) {
	text, err := CompileToAsm(src)
	if err != nil {
		return nil, err
	}
	p, err := asm.Assemble(text)
	if err != nil {
		return nil, fmt.Errorf("minic: internal error assembling generated code: %w", err)
	}
	// The verifier's error rules are things this compiler must never
	// emit; tripping one is a codegen bug, not a user error. Warnings
	// (e.g. unreachable code from source after a return) are fine.
	if err := analysis.Verify(p).Err(); err != nil {
		return nil, fmt.Errorf("minic: internal error: generated code failed verification: %w", err)
	}
	return p, nil
}

// CompileToAsm translates MiniC source into VRISC assembly text.
func CompileToAsm(src string) (string, error) {
	f, err := parseFile(src)
	if err != nil {
		return "", err
	}
	g := &codegen{
		funcs:   make(map[string]*funcDecl),
		globals: make(map[string]*globalDecl),
	}
	return g.file(f)
}

// Evaluation-stack registers t0..t9 (r8..r17).
const numTemps = 10

func tempReg(i int) string { return fmt.Sprintf("t%d", i) }

// Builtin signatures: arg count and whether the single argument is a
// string literal.
var builtins = map[string]struct {
	nargs int
	str   bool
}{
	"putint":  {1, false},
	"putchar": {1, false},
	"putstr":  {1, true},
	"getint":  {0, false},
	"clock":   {0, false},
}

type symKind int

const (
	symLocal symKind = iota // scalar in frame
	symLocalArray
	symParamArray // frame slot holds the array's address
	symGlobal
	symGlobalArray
)

type symbol struct {
	kind   symKind
	offset int    // fp-relative for locals
	label  string // data label for globals
}

type codegen struct {
	out     strings.Builder
	data    strings.Builder
	funcs   map[string]*funcDecl
	globals map[string]*globalDecl
	scopes  []map[string]*symbol
	strings map[string]string // literal -> label
	nstr    int
	nlabel  int

	// per-function state
	fn        *funcDecl
	frameSize int
	retLabel  string
	breaks    []string
	continues []string
}

func (g *codegen) emitf(format string, args ...any) {
	fmt.Fprintf(&g.out, "        "+format+"\n", args...)
}

func (g *codegen) label(l string) { fmt.Fprintf(&g.out, "%s:\n", l) }

func (g *codegen) newLabel(hint string) string {
	g.nlabel++
	return fmt.Sprintf("L%s%d", hint, g.nlabel)
}

func (g *codegen) errf(line int, format string, args ...any) error {
	return &Error{Line: line, Msg: fmt.Sprintf(format, args...)}
}

func (g *codegen) file(f *file) (string, error) {
	g.strings = make(map[string]string)
	g.data.WriteString("        .data\n")
	for _, gd := range f.globals {
		if _, dup := g.globals[gd.name]; dup {
			return "", g.errf(gd.line, "duplicate global %q", gd.name)
		}
		g.globals[gd.name] = gd
	}
	for _, fn := range f.funcs {
		if _, dup := g.funcs[fn.name]; dup {
			return "", g.errf(fn.line, "duplicate function %q", fn.name)
		}
		if _, isB := builtins[fn.name]; isB {
			return "", g.errf(fn.line, "function %q shadows a builtin", fn.name)
		}
		if len(fn.params) > 6 {
			return "", g.errf(fn.line, "function %q has %d parameters; max 6", fn.name, len(fn.params))
		}
		g.funcs[fn.name] = fn
	}
	if _, ok := g.funcs["main"]; !ok {
		return "", g.errf(1, "no main function")
	}

	// Startup stub: the assembler's entry point is the label "main",
	// so the stub owns that name and the user's main becomes _main.
	g.out.WriteString("        .text\n")
	g.out.WriteString("        .proc main\n")
	g.label("main")
	g.emitf("jsr %s", g.funcLabel("main"))
	g.emitf("mov a0, v0")
	g.emitf("syscall exit")
	g.out.WriteString("        .endproc\n")

	for _, fn := range f.funcs {
		if err := g.function(fn); err != nil {
			return "", err
		}
	}

	// Data segment: string literals were appended during generation;
	// globals follow them.
	for _, gd := range f.globals {
		if gd.arrayLen >= 0 {
			fmt.Fprintf(&g.data, "%s: .space %d\n", g.globalLabel(gd.name), 8*gd.arrayLen)
		} else if gd.hasInit {
			fmt.Fprintf(&g.data, "%s: .word %d\n", g.globalLabel(gd.name), gd.init)
		} else {
			fmt.Fprintf(&g.data, "%s: .word 0\n", g.globalLabel(gd.name))
		}
	}
	return g.out.String() + g.data.String(), nil
}

func (g *codegen) funcLabel(name string) string {
	if name == "main" {
		return "_main"
	}
	return name
}

func (g *codegen) globalLabel(name string) string { return "g_" + name }

func (g *codegen) strLabel(s string) string {
	if l, ok := g.strings[s]; ok {
		return l
	}
	l := fmt.Sprintf("s_%d", g.nstr)
	g.nstr++
	g.strings[s] = l
	fmt.Fprintf(&g.data, "%s: .asciiz %q\n", l, s)
	return l
}

// collectLocals walks the body assigning frame offsets to every local
// declaration (block scoping does not reuse slots; fine at this scale).
// Returns the total local byte size.
func collectLocals(b *blockStmt, next int) int {
	for _, s := range b.stmts {
		switch s := s.(type) {
		case *varDecl:
			s.offset = next
			if s.arrayLen >= 0 {
				next += 8 * s.arrayLen
			} else {
				next += 8
			}
		case *blockStmt:
			next = collectLocals(s, next)
		case *ifStmt:
			next = collectLocals(s.then, next)
			switch els := s.els.(type) {
			case *blockStmt:
				next = collectLocals(els, next)
			case *ifStmt:
				next = collectLocals(&blockStmt{stmts: []stmt{els}}, next)
			}
		case *whileStmt:
			next = collectLocals(s.body, next)
		case *forStmt:
			next = collectLocals(s.body, next)
		}
	}
	return next
}

func (g *codegen) function(fn *funcDecl) error {
	g.fn = fn
	g.retLabel = g.newLabel("ret_" + fn.name + "_")
	g.breaks = nil
	g.continues = nil

	// Frame: [0]=saved ra, [8]=saved fp, [16..) params then locals.
	paramBase := 16
	localBase := paramBase + 8*len(fn.params)
	frame := collectLocals(fn.body, localBase)
	g.frameSize = frame

	label := g.funcLabel(fn.name)
	fmt.Fprintf(&g.out, "        .proc %s\n", label)
	g.label(label)
	g.emitf("addi sp, sp, -%d", g.frameSize)
	g.emitf("stq ra, 0(sp)")
	g.emitf("stq fp, 8(sp)")
	g.emitf("mov fp, sp")
	// Spill incoming arguments to their frame slots.
	scope := map[string]*symbol{}
	for i, pa := range fn.params {
		off := paramBase + 8*i
		g.emitf("stq a%d, %d(fp)", i, off)
		k := symLocal
		if pa.isArray {
			k = symParamArray
		}
		if _, dup := scope[pa.name]; dup {
			return g.errf(fn.line, "duplicate parameter %q", pa.name)
		}
		scope[pa.name] = &symbol{kind: k, offset: off}
	}
	g.scopes = []map[string]*symbol{scope}

	if err := g.block(fn.body); err != nil {
		return err
	}

	// Fall-through return value is 0.
	g.emitf("li v0, 0")
	g.label(g.retLabel)
	g.emitf("mov sp, fp")
	g.emitf("ldq ra, 0(sp)")
	g.emitf("ldq fp, 8(sp)")
	g.emitf("addi sp, sp, %d", g.frameSize)
	g.emitf("ret")
	g.out.WriteString("        .endproc\n")
	g.scopes = nil
	return nil
}

func (g *codegen) lookup(name string) *symbol {
	for i := len(g.scopes) - 1; i >= 0; i-- {
		if s, ok := g.scopes[i][name]; ok {
			return s
		}
	}
	if gd, ok := g.globals[name]; ok {
		k := symGlobal
		if gd.arrayLen >= 0 {
			k = symGlobalArray
		}
		return &symbol{kind: k, label: g.globalLabel(name)}
	}
	return nil
}

func (g *codegen) block(b *blockStmt) error {
	g.scopes = append(g.scopes, map[string]*symbol{})
	defer func() { g.scopes = g.scopes[:len(g.scopes)-1] }()
	for _, s := range b.stmts {
		if err := g.stmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (g *codegen) stmt(s stmt) error {
	switch s := s.(type) {
	case *varDecl:
		top := g.scopes[len(g.scopes)-1]
		if _, dup := top[s.name]; dup {
			return g.errf(s.line, "duplicate declaration of %q in this scope", s.name)
		}
		k := symLocal
		if s.arrayLen >= 0 {
			k = symLocalArray
		}
		top[s.name] = &symbol{kind: k, offset: s.offset}
		if s.init != nil {
			if err := g.expr(s.init, 0); err != nil {
				return err
			}
			g.emitf("stq %s, %d(fp)", tempReg(0), s.offset)
		}
		return nil

	case *assignStmt:
		return g.assign(s)

	case *exprStmt:
		return g.expr(s.x, 0)

	case *ifStmt:
		els := g.newLabel("else")
		end := g.newLabel("fi")
		if err := g.expr(s.cond, 0); err != nil {
			return err
		}
		g.emitf("beq %s, %s", tempReg(0), els)
		if err := g.block(s.then); err != nil {
			return err
		}
		if s.els != nil {
			g.emitf("br %s", end)
		}
		g.label(els)
		if s.els != nil {
			var err error
			switch e := s.els.(type) {
			case *blockStmt:
				err = g.block(e)
			default:
				err = g.stmt(e)
			}
			if err != nil {
				return err
			}
			g.label(end)
		}
		return nil

	case *whileStmt:
		cond := g.newLabel("while")
		end := g.newLabel("wend")
		g.breaks = append(g.breaks, end)
		g.continues = append(g.continues, cond)
		g.label(cond)
		if err := g.expr(s.cond, 0); err != nil {
			return err
		}
		g.emitf("beq %s, %s", tempReg(0), end)
		if err := g.block(s.body); err != nil {
			return err
		}
		g.emitf("br %s", cond)
		g.label(end)
		g.breaks = g.breaks[:len(g.breaks)-1]
		g.continues = g.continues[:len(g.continues)-1]
		return nil

	case *forStmt:
		cond := g.newLabel("for")
		post := g.newLabel("fpost")
		end := g.newLabel("fend")
		if s.init != nil {
			if err := g.stmt(s.init); err != nil {
				return err
			}
		}
		g.breaks = append(g.breaks, end)
		g.continues = append(g.continues, post)
		g.label(cond)
		if s.cond != nil {
			if err := g.expr(s.cond, 0); err != nil {
				return err
			}
			g.emitf("beq %s, %s", tempReg(0), end)
		}
		if err := g.block(s.body); err != nil {
			return err
		}
		g.label(post)
		if s.post != nil {
			if err := g.stmt(s.post); err != nil {
				return err
			}
		}
		g.emitf("br %s", cond)
		g.label(end)
		g.breaks = g.breaks[:len(g.breaks)-1]
		g.continues = g.continues[:len(g.continues)-1]
		return nil

	case *returnStmt:
		if s.x != nil {
			if err := g.expr(s.x, 0); err != nil {
				return err
			}
			g.emitf("mov v0, %s", tempReg(0))
		} else {
			g.emitf("li v0, 0")
		}
		g.emitf("br %s", g.retLabel)
		return nil

	case *breakStmt:
		if len(g.breaks) == 0 {
			return g.errf(s.line, "break outside loop")
		}
		g.emitf("br %s", g.breaks[len(g.breaks)-1])
		return nil

	case *continueStmt:
		if len(g.continues) == 0 {
			return g.errf(s.line, "continue outside loop")
		}
		g.emitf("br %s", g.continues[len(g.continues)-1])
		return nil

	case *blockStmt:
		return g.block(s)
	}
	return fmt.Errorf("minic: unhandled statement %T", s)
}

func (g *codegen) assign(s *assignStmt) error {
	if err := g.expr(s.rhs, 0); err != nil {
		return err
	}
	switch lhs := s.lhs.(type) {
	case *varRef:
		sym := g.lookup(lhs.name)
		if sym == nil {
			return g.errf(lhs.line, "undefined variable %q", lhs.name)
		}
		switch sym.kind {
		case symLocal:
			g.emitf("stq %s, %d(fp)", tempReg(0), sym.offset)
		case symGlobal:
			g.emitf("stq %s, %s", tempReg(0), sym.label)
		default:
			return g.errf(lhs.line, "cannot assign to array %q", lhs.name)
		}
		return nil
	case *indexExpr:
		// rhs is in t0; compute the element address in t1.
		if err := g.elemAddr(lhs, 1); err != nil {
			return err
		}
		g.emitf("stq %s, 0(%s)", tempReg(0), tempReg(1))
		return nil
	}
	return g.errf(s.line, "bad assignment target")
}

// elemAddr computes &name[idx] into temp d (may use temps d and d+1).
func (g *codegen) elemAddr(ix *indexExpr, d int) error {
	if d+1 >= numTemps {
		return g.errf(ix.line, "expression too complex (out of temporaries)")
	}
	sym := g.lookup(ix.name)
	if sym == nil {
		return g.errf(ix.line, "undefined variable %q", ix.name)
	}
	if err := g.expr(ix.idx, d); err != nil {
		return err
	}
	t, u := tempReg(d), tempReg(d+1)
	g.emitf("slli %s, %s, 3", t, t)
	switch sym.kind {
	case symGlobalArray:
		g.emitf("li %s, %s", u, sym.label)
		g.emitf("add %s, %s, %s", t, t, u)
	case symLocalArray:
		g.emitf("addi %s, fp, %d", u, sym.offset)
		g.emitf("add %s, %s, %s", t, t, u)
	case symParamArray:
		g.emitf("ldq %s, %d(fp)", u, sym.offset)
		g.emitf("add %s, %s, %s", t, t, u)
	default:
		return g.errf(ix.line, "%q is not an array", ix.name)
	}
	return nil
}

// constEval folds literal expressions at compile time; ok reports
// whether e was constant.
func constEval(e expr) (int64, bool) {
	switch e := e.(type) {
	case *intLit:
		return e.val, true
	case *unaryExpr:
		v, ok := constEval(e.x)
		if !ok {
			return 0, false
		}
		switch e.op {
		case "-":
			return -v, true
		case "~":
			return ^v, true
		case "!":
			if v == 0 {
				return 1, true
			}
			return 0, true
		}
	case *binaryExpr:
		x, okx := constEval(e.x)
		y, oky := constEval(e.y)
		if !okx || !oky {
			return 0, false
		}
		switch e.op {
		case "+":
			return x + y, true
		case "-":
			return x - y, true
		case "*":
			return x * y, true
		case "/":
			if y == 0 {
				return 0, false
			}
			return x / y, true
		case "%":
			if y == 0 {
				return 0, false
			}
			return x % y, true
		case "&":
			return x & y, true
		case "|":
			return x | y, true
		case "^":
			return x ^ y, true
		case "<<":
			return x << (uint64(y) & 63), true
		case ">>":
			return x >> (uint64(y) & 63), true
		case "==":
			return b2i(x == y), true
		case "!=":
			return b2i(x != y), true
		case "<":
			return b2i(x < y), true
		case "<=":
			return b2i(x <= y), true
		case ">":
			return b2i(x > y), true
		case ">=":
			return b2i(x >= y), true
		case "&&":
			return b2i(x != 0 && y != 0), true
		case "||":
			return b2i(x != 0 || y != 0), true
		}
	}
	return 0, false
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func fitsImm(v int64) bool { return v >= -(1<<31) && v <= (1<<31)-1 }

// immOp maps a binary operator to its immediate-form mnemonic, if the
// ISA has one.
var immOp = map[string]string{
	"+": "addi", "*": "muli", "&": "andi", "|": "ori", "^": "xori",
	"<<": "slli", ">>": "srai", "<": "cmplti", "==": "cmpeqi",
}

// materialize emits code loading the (possibly 64-bit) constant v into
// register t. Constants beyond the 32-bit immediate range are built
// from the high 32 bits plus two 16-bit or-shift steps.
func (g *codegen) materialize(t string, v int64) {
	if fitsImm(v) {
		g.emitf("li %s, %d", t, v)
		return
	}
	hi := v >> 32
	lo := uint64(v) & 0xffffffff
	g.emitf("li %s, %d", t, hi)
	g.emitf("slli %s, %s, 16", t, t)
	g.emitf("ori %s, %s, %d", t, t, (lo>>16)&0xffff)
	g.emitf("slli %s, %s, 16", t, t)
	g.emitf("ori %s, %s, %d", t, t, lo&0xffff)
}

// expr generates code leaving the value of e in temp d.
func (g *codegen) expr(e expr, d int) error {
	if d >= numTemps {
		return g.errf(exprLine(e), "expression too complex (out of temporaries)")
	}
	if v, ok := constEval(e); ok {
		g.materialize(tempReg(d), v)
		return nil
	}
	t := tempReg(d)
	switch e := e.(type) {
	case *intLit:
		g.materialize(t, e.val)
		return nil

	case *strLit:
		return g.errf(e.line, "string literals are only allowed as the argument of putstr")

	case *varRef:
		sym := g.lookup(e.name)
		if sym == nil {
			return g.errf(e.line, "undefined variable %q", e.name)
		}
		switch sym.kind {
		case symLocal:
			g.emitf("ldq %s, %d(fp)", t, sym.offset)
		case symGlobal:
			g.emitf("ldq %s, %s", t, sym.label)
		case symLocalArray:
			g.emitf("addi %s, fp, %d", t, sym.offset)
		case symParamArray:
			g.emitf("ldq %s, %d(fp)", t, sym.offset)
		case symGlobalArray:
			g.emitf("li %s, %s", t, sym.label)
		}
		return nil

	case *indexExpr:
		if err := g.elemAddr(e, d); err != nil {
			return err
		}
		g.emitf("ldq %s, 0(%s)", t, t)
		return nil

	case *unaryExpr:
		if err := g.expr(e.x, d); err != nil {
			return err
		}
		switch e.op {
		case "-":
			g.emitf("sub %s, zero, %s", t, t)
		case "~":
			g.emitf("xori %s, %s, -1", t, t)
		case "!":
			g.emitf("cmpeqi %s, %s, 0", t, t)
		}
		return nil

	case *binaryExpr:
		return g.binary(e, d)

	case *callExpr:
		return g.call(e, d)
	}
	return fmt.Errorf("minic: unhandled expression %T", e)
}

func (g *codegen) binary(e *binaryExpr, d int) error {
	t := tempReg(d)
	// Short-circuit operators.
	if e.op == "&&" || e.op == "||" {
		skip := g.newLabel("sc")
		end := g.newLabel("scend")
		if err := g.expr(e.x, d); err != nil {
			return err
		}
		br := "beq"
		if e.op == "||" {
			br = "bne"
		}
		g.emitf("%s %s, %s", br, t, skip)
		if err := g.expr(e.y, d); err != nil {
			return err
		}
		g.emitf("cmpne %s, %s, zero", t, t)
		g.emitf("br %s", end)
		g.label(skip)
		if e.op == "&&" {
			g.emitf("li %s, 0", t)
		} else {
			g.emitf("li %s, 1", t)
		}
		g.label(end)
		return nil
	}

	// Immediate right operand where the ISA has a matching form.
	if cv, ok := constEval(e.y); ok && fitsImm(cv) {
		if mn, ok2 := immOp[e.op]; ok2 {
			if err := g.expr(e.x, d); err != nil {
				return err
			}
			g.emitf("%s %s, %s, %d", mn, t, t, cv)
			return nil
		}
		if e.op == "-" {
			if err := g.expr(e.x, d); err != nil {
				return err
			}
			if fitsImm(-cv) {
				g.emitf("addi %s, %s, %d", t, t, -cv)
				return nil
			}
		}
	}
	// Commuted immediate: const + x, const * x, etc.
	if cv, ok := constEval(e.x); ok && fitsImm(cv) {
		switch e.op {
		case "+", "*", "&", "|", "^":
			if err := g.expr(e.y, d); err != nil {
				return err
			}
			g.emitf("%s %s, %s, %d", immOp[e.op], t, t, cv)
			return nil
		}
	}

	if d+1 >= numTemps {
		return g.errf(e.line, "expression too complex (out of temporaries)")
	}
	u := tempReg(d + 1)
	if err := g.expr(e.x, d); err != nil {
		return err
	}
	if err := g.expr(e.y, d+1); err != nil {
		return err
	}
	mnems := map[string]string{
		"+": "add", "-": "sub", "*": "mul", "/": "div", "%": "rem",
		"&": "and", "|": "or", "^": "xor", "<<": "sll", ">>": "sra",
		"==": "cmpeq", "!=": "cmpne", "<": "cmplt", "<=": "cmple",
		">": "cmpgt", ">=": "cmpge",
	}
	mn, ok := mnems[e.op]
	if !ok {
		return g.errf(e.line, "unsupported operator %q", e.op)
	}
	g.emitf("%s %s, %s, %s", mn, t, t, u)
	return nil
}

func (g *codegen) call(e *callExpr, d int) error {
	t := tempReg(d)

	if b, ok := builtins[e.name]; ok {
		if len(e.args) != b.nargs {
			return g.errf(e.line, "%s expects %d argument(s), got %d", e.name, b.nargs, len(e.args))
		}
		switch e.name {
		case "putstr":
			s, ok := e.args[0].(*strLit)
			if !ok {
				return g.errf(e.line, "putstr expects a string literal")
			}
			g.emitf("li a0, %s", g.strLabel(s.val))
			g.emitf("syscall putstr")
			g.emitf("li %s, 0", t)
		case "putint", "putchar":
			if err := g.expr(e.args[0], d); err != nil {
				return err
			}
			g.emitf("mov a0, %s", t)
			g.emitf("syscall %s", e.name)
		case "getint", "clock":
			g.emitf("syscall %s", e.name)
			g.emitf("mov %s, v0", t)
		}
		return nil
	}

	fn, ok := g.funcs[e.name]
	if !ok {
		return g.errf(e.line, "call to undefined function %q", e.name)
	}
	if len(e.args) != len(fn.params) {
		return g.errf(e.line, "%s expects %d argument(s), got %d", e.name, len(fn.params), len(e.args))
	}
	if d+len(e.args) >= numTemps {
		return g.errf(e.line, "call too deep in expression (out of temporaries)")
	}

	// Save live temps t0..t(d-1) across the call (caller-saved).
	if d > 0 {
		g.emitf("addi sp, sp, -%d", 8*d)
		for i := 0; i < d; i++ {
			g.emitf("stq %s, %d(sp)", tempReg(i), 8*i)
		}
	}
	for i, a := range e.args {
		if err := g.expr(a, d+i); err != nil {
			return err
		}
	}
	for i := range e.args {
		g.emitf("mov a%d, %s", i, tempReg(d+i))
	}
	g.emitf("jsr %s", g.funcLabel(e.name))
	g.emitf("mov %s, v0", t)
	if d > 0 {
		for i := 0; i < d; i++ {
			g.emitf("ldq %s, %d(sp)", tempReg(i), 8*i)
		}
		g.emitf("addi sp, sp, %d", 8*d)
	}
	return nil
}

func exprLine(e expr) int {
	switch e := e.(type) {
	case *intLit:
		return e.line
	case *strLit:
		return e.line
	case *varRef:
		return e.line
	case *indexExpr:
		return e.line
	case *callExpr:
		return e.line
	case *unaryExpr:
		return e.line
	case *binaryExpr:
		return e.line
	}
	return 0
}
