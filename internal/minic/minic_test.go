package minic

import (
	"strings"
	"testing"

	"valueprof/internal/vm"
)

// compileRun compiles src, runs it with input, and returns the output.
func compileRun(t *testing.T, src string, input ...int64) string {
	t.Helper()
	p, err := Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	res, err := vm.Execute(p, input)
	if err != nil {
		t.Fatalf("run: %v\nlisting:\n%s", err, p.Disassemble())
	}
	return res.Output
}

func TestHelloArithmetic(t *testing.T) {
	out := compileRun(t, `
func main() {
    putint(2 + 3 * 4);
}
`)
	if out != "14" {
		t.Errorf("output = %q, want 14", out)
	}
}

func TestOperatorZoo(t *testing.T) {
	out := compileRun(t, `
func main() {
    var a = 13; var b = 5;
    putint(a + b); putchar(' ');
    putint(a - b); putchar(' ');
    putint(a * b); putchar(' ');
    putint(a / b); putchar(' ');
    putint(a % b); putchar(' ');
    putint(a & b); putchar(' ');
    putint(a | b); putchar(' ');
    putint(a ^ b); putchar(' ');
    putint(a << 2); putchar(' ');
    putint(-a >> 1); putchar(' ');
    putint(a == b); putchar(' ');
    putint(a != b); putchar(' ');
    putint(a < b); putchar(' ');
    putint(a <= 13); putchar(' ');
    putint(a > b); putchar(' ');
    putint(a >= 14); putchar(' ');
    putint(!a); putchar(' ');
    putint(~a); putchar(' ');
    putint(-b);
}
`)
	want := "18 8 65 2 3 5 13 8 52 -7 0 1 0 1 1 0 0 -14 -5"
	if out != want {
		t.Errorf("output = %q\nwant     %q", out, want)
	}
}

func TestShortCircuit(t *testing.T) {
	out := compileRun(t, `
int calls;
func bump() { calls = calls + 1; return 1; }
func main() {
    var x = 0 && bump();
    var y = 1 || bump();
    putint(x); putint(y); putint(calls);
    var z = 1 && bump();
    var w = 0 || bump();
    putint(z); putint(w); putint(calls);
}
`)
	if out != "010112" {
		t.Errorf("output = %q, want 010112", out)
	}
}

func TestControlFlow(t *testing.T) {
	out := compileRun(t, `
func main() {
    var i; var total = 0;
    for (i = 1; i <= 10; i = i + 1) {
        if (i % 2 == 0) { continue; }
        if (i == 9) { break; }
        total = total + i;
    }
    putint(total);     // 1+3+5+7 = 16
    var n = 3;
    while (n > 0) {
        putchar('a' + n);
        n = n - 1;
    }
    if (total > 100) { putstr("big"); } else if (total > 10) { putstr("mid"); } else { putstr("small"); }
}
`)
	if out != "16dcbmid" {
		t.Errorf("output = %q, want 16dcbmid", out)
	}
}

func TestGlobalsAndArrays(t *testing.T) {
	out := compileRun(t, `
int counter = 5;
int tab[8];
func fill(n) {
    var i;
    for (i = 0; i < n; i = i + 1) { tab[i] = i * i; }
}
func main() {
    fill(8);
    counter = counter + tab[3];
    putint(counter); putchar(',');
    putint(tab[7]);
}
`)
	if out != "14,49" {
		t.Errorf("output = %q, want 14,49", out)
	}
}

func TestLocalArraysAndScoping(t *testing.T) {
	out := compileRun(t, `
func main() {
    var a[4];
    var i;
    for (i = 0; i < 4; i = i + 1) { a[i] = 10 * i; }
    var x = 1;
    {
        var x = 2;
        a[0] = a[0] + x;
    }
    putint(a[0] + x);  // 0+2+1 = 3
    putint(a[3]);      // 30
}
`)
	if out != "330" {
		t.Errorf("output = %q, want 330", out)
	}
}

func TestArrayParamsDecay(t *testing.T) {
	out := compileRun(t, `
int g[5];
func sum(a[], n) {
    var s = 0; var i;
    for (i = 0; i < n; i = i + 1) { s = s + a[i]; }
    return s;
}
func scale(a[], n, k) {
    var i;
    for (i = 0; i < n; i = i + 1) { a[i] = a[i] * k; }
}
func main() {
    var loc[5];
    var i;
    for (i = 0; i < 5; i = i + 1) { g[i] = i; loc[i] = i + 1; }
    scale(g, 5, 2);
    putint(sum(g, 5));   // 2*(0+1+2+3+4) = 20
    putchar(' ');
    putint(sum(loc, 5)); // 15
}
`)
	if out != "20 15" {
		t.Errorf("output = %q, want 20 15", out)
	}
}

func TestRecursionAndCallsInExpressions(t *testing.T) {
	out := compileRun(t, `
func fib(n) {
    if (n < 2) { return n; }
    return fib(n - 1) + fib(n - 2);
}
func main() {
    putint(fib(10));            // 55
    putchar(' ');
    putint(fib(3) * fib(4) + fib(5));  // 2*3+5 = 11
}
`)
	if out != "55 11" {
		t.Errorf("output = %q, want 55 11", out)
	}
}

func TestSixArguments(t *testing.T) {
	out := compileRun(t, `
func wsum(a, b, c, d, e, f) {
    return a + 2*b + 3*c + 4*d + 5*e + 6*f;
}
func main() { putint(wsum(1, 1, 1, 1, 1, 1)); }
`)
	if out != "21" {
		t.Errorf("output = %q, want 21", out)
	}
}

func TestGetintAndReturnStatus(t *testing.T) {
	p, err := Compile(`
func main() {
    var a = getint();
    var b = getint();
    putint(a * b);
    return 7;
}
`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := vm.Execute(p, []int64{6, 7})
	if err != nil {
		t.Fatal(err)
	}
	if res.Output != "42" || res.ExitStatus != 7 {
		t.Errorf("output=%q status=%d, want 42/7", res.Output, res.ExitStatus)
	}
}

func TestCharLiteralsAndStrings(t *testing.T) {
	out := compileRun(t, `
func main() {
    putstr("x=\t");
    putchar('A' + 2);
    putstr("\n");
    putint('\n');
}
`)
	if out != "x=\tC\n10" {
		t.Errorf("output = %q", out)
	}
}

func TestLargeConstants(t *testing.T) {
	out := compileRun(t, `
func main() {
    var big = 1234567890123;
    putint(big);
    putchar(' ');
    putint(big % 1000000007);
}
`)
	if out != "1234567890123 567881485" {
		t.Errorf("output = %q", out)
	}
}

func TestCommentsEverywhere(t *testing.T) {
	out := compileRun(t, `
// top comment
func main() { /* inline */ putint(1 /* mid */ + 2); } // tail
`)
	if out != "3" {
		t.Errorf("output = %q, want 3", out)
	}
}

func TestDeepExpression(t *testing.T) {
	out := compileRun(t, `
func main() {
    putint(((1 + 2) * (3 + 4) - (5 - 6)) * ((7 + 8) / (4 - 1)));
}
`)
	if out != "110" {
		t.Errorf("output = %q, want 110", out)
	}
}

func TestCompileErrors(t *testing.T) {
	cases := []struct{ name, src, want string }{
		{"no main", "func f() {}", "no main"},
		{"undefined var", "func main() { putint(x); }", "undefined variable"},
		{"undefined func", "func main() { f(); }", "undefined function"},
		{"arity", "func f(a) { return a; } func main() { f(1, 2); }", "expects 1 argument"},
		{"dup global", "int a; int a; func main() {}", "duplicate global"},
		{"dup func", "func f() {} func f() {} func main() {}", "duplicate function"},
		{"dup local", "func main() { var a; var a; }", "duplicate declaration"},
		{"assign to array", "int a[3]; func main() { a = 1; }", "cannot assign to array"},
		{"index scalar", "int a; func main() { putint(a[0]); }", "not an array"},
		{"break outside", "func main() { break; }", "break outside loop"},
		{"continue outside", "func main() { continue; }", "continue outside loop"},
		{"builtin shadow", "func putint(x) {} func main() {}", "shadows a builtin"},
		{"bad assign target", "func main() { 3 = 4; }", "left side of assignment"},
		{"stray string", `func main() { var s = "hi"; }`, "string literals"},
		{"putstr nonliteral", "func main() { putstr(3); }", "string literal"},
		{"too many params", "func f(a,b,c,d,e,g,h) {} func main() {}", "max 6"},
		{"array init", "int a[3] = 5; func main() {}", "cannot have initializers"},
		{"unterminated comment", "func main() {} /* oops", "unterminated block comment"},
		{"unterminated string", `func main() { putstr("oops); }`, "string literal"},
		{"bad token", "func main() { putint(1 $ 2); }", "unexpected character"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Compile(c.src)
			if err == nil {
				t.Fatalf("compiled without error, want %q", c.want)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q does not contain %q", err, c.want)
			}
		})
	}
}

func TestErrorLineNumbers(t *testing.T) {
	_, err := Compile("func main() {\n var a;\n putint(b);\n}\n")
	cerr, ok := err.(*Error)
	if !ok {
		t.Fatalf("error type %T: %v", err, err)
	}
	if cerr.Line != 3 {
		t.Errorf("line = %d, want 3", cerr.Line)
	}
}

func TestGeneratedProcTable(t *testing.T) {
	p, err := Compile(`
func helper(x) { return x + 1; }
func main() { putint(helper(1)); }
`)
	if err != nil {
		t.Fatal(err)
	}
	if p.ProcByName("helper") == nil {
		t.Error("helper missing from procedure table")
	}
	if p.ProcByName("_main") == nil {
		t.Error("_main missing from procedure table")
	}
	if p.ProcByName("main") == nil {
		t.Error("startup stub missing from procedure table")
	}
}

func TestNestedCallsSaveTemps(t *testing.T) {
	// A call inside a binary expression must not clobber the left
	// operand held in a temp.
	out := compileRun(t, `
func id(x) { return x; }
func main() {
    putint(100 - id(1) - id(2) - id(3));
    putchar(' ');
    putint(id(id(id(5))) + id(6) * id(7));
}
`)
	if out != "94 47" {
		t.Errorf("output = %q, want 94 47", out)
	}
}

func TestWhileWithComplexCond(t *testing.T) {
	out := compileRun(t, `
func main() {
    var i = 0; var j = 10;
    while (i < 5 && j > 5) { i = i + 1; j = j - 1; }
    putint(i * 10 + j);
}
`)
	if out != "55" {
		t.Errorf("output = %q, want 55", out)
	}
}

func TestConstantFolding(t *testing.T) {
	// Folded expressions should compile to a single li; check via the
	// assembly text rather than execution.
	text, err := CompileToAsm("func main() { putint(3 * 4 + (10 << 2) - 1); }")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "li t0, 51") {
		t.Errorf("constant not folded; asm:\n%s", text)
	}
}

func TestGlobalInitializers(t *testing.T) {
	out := compileRun(t, `
int pos = 41;
int neg = -7;
int zero;
func main() { putint(pos); putchar(' '); putint(neg); putchar(' '); putint(zero); }
`)
	if out != "41 -7 0" {
		t.Errorf("output = %q", out)
	}
}
