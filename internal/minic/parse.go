package minic

import "fmt"

type parser struct {
	lx   *lexer
	tok  token // current
	ahea *token
}

func newParser(src string) (*parser, error) {
	p := &parser{lx: newLexer(src)}
	if err := p.advance(); err != nil {
		return nil, err
	}
	return p, nil
}

func (p *parser) errf(line int, format string, args ...any) error {
	return &Error{Line: line, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) advance() error {
	if p.ahea != nil {
		p.tok = *p.ahea
		p.ahea = nil
		return nil
	}
	t, err := p.lx.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) peek() (token, error) {
	if p.ahea == nil {
		t, err := p.lx.next()
		if err != nil {
			return token{}, err
		}
		p.ahea = &t
	}
	return *p.ahea, nil
}

func (p *parser) isPunct(s string) bool { return p.tok.kind == tPunct && p.tok.text == s }
func (p *parser) isKw(s string) bool    { return p.tok.kind == tKeyword && p.tok.text == s }

func (p *parser) expectPunct(s string) error {
	if !p.isPunct(s) {
		return p.errf(p.tok.line, "expected %q, got %q", s, p.tok.text)
	}
	return p.advance()
}

func (p *parser) expectIdent() (string, error) {
	if p.tok.kind != tIdent {
		return "", p.errf(p.tok.line, "expected identifier, got %q", p.tok.text)
	}
	name := p.tok.text
	return name, p.advance()
}

// parseFile parses a whole translation unit.
func parseFile(src string) (*file, error) {
	p, err := newParser(src)
	if err != nil {
		return nil, err
	}
	f := &file{}
	for p.tok.kind != tEOF {
		switch {
		case p.isKw("int"):
			g, err := p.globalDecl()
			if err != nil {
				return nil, err
			}
			f.globals = append(f.globals, g)
		case p.isKw("func"):
			fn, err := p.funcDecl()
			if err != nil {
				return nil, err
			}
			f.funcs = append(f.funcs, fn)
		default:
			return nil, p.errf(p.tok.line, "expected top-level 'int' or 'func', got %q", p.tok.text)
		}
	}
	return f, nil
}

func (p *parser) globalDecl() (*globalDecl, error) {
	line := p.tok.line
	if err := p.advance(); err != nil { // consume "int"
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	g := &globalDecl{name: name, arrayLen: -1, line: line}
	if p.isPunct("[") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.tok.kind != tInt {
			return nil, p.errf(p.tok.line, "global array size must be an integer literal")
		}
		if p.tok.val <= 0 || p.tok.val > 1<<24 {
			return nil, p.errf(p.tok.line, "array size %d out of range", p.tok.val)
		}
		g.arrayLen = int(p.tok.val)
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expectPunct("]"); err != nil {
			return nil, err
		}
	}
	if p.isPunct("=") {
		if g.arrayLen >= 0 {
			return nil, p.errf(p.tok.line, "array globals cannot have initializers")
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		neg := false
		if p.isPunct("-") {
			neg = true
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
		if p.tok.kind != tInt {
			return nil, p.errf(p.tok.line, "global initializer must be an integer literal")
		}
		g.init = p.tok.val
		if neg {
			g.init = -g.init
		}
		g.hasInit = true
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	return g, p.expectPunct(";")
}

func (p *parser) funcDecl() (*funcDecl, error) {
	line := p.tok.line
	if err := p.advance(); err != nil { // consume "func"
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	fn := &funcDecl{name: name, line: line}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	for !p.isPunct(")") {
		if len(fn.params) > 0 {
			if err := p.expectPunct(","); err != nil {
				return nil, err
			}
		}
		pname, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		pa := param{name: pname}
		if p.isPunct("[") {
			if err := p.advance(); err != nil {
				return nil, err
			}
			if err := p.expectPunct("]"); err != nil {
				return nil, err
			}
			pa.isArray = true
		}
		fn.params = append(fn.params, pa)
	}
	if err := p.advance(); err != nil { // consume ")"
		return nil, err
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	fn.body = body
	return fn, nil
}

func (p *parser) block() (*blockStmt, error) {
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	b := &blockStmt{}
	for !p.isPunct("}") {
		if p.tok.kind == tEOF {
			return nil, p.errf(p.tok.line, "unexpected end of file in block")
		}
		s, err := p.statement()
		if err != nil {
			return nil, err
		}
		b.stmts = append(b.stmts, s)
	}
	return b, p.advance()
}

func (p *parser) statement() (stmt, error) {
	line := p.tok.line
	switch {
	case p.isKw("var"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		d := &varDecl{name: name, arrayLen: -1, line: line}
		if p.isPunct("[") {
			if err := p.advance(); err != nil {
				return nil, err
			}
			if p.tok.kind != tInt || p.tok.val <= 0 || p.tok.val > 1<<20 {
				return nil, p.errf(p.tok.line, "local array size must be a positive integer literal")
			}
			d.arrayLen = int(p.tok.val)
			if err := p.advance(); err != nil {
				return nil, err
			}
			if err := p.expectPunct("]"); err != nil {
				return nil, err
			}
		} else if p.isPunct("=") {
			if err := p.advance(); err != nil {
				return nil, err
			}
			d.init, err = p.expr()
			if err != nil {
				return nil, err
			}
		}
		return d, p.expectPunct(";")

	case p.isKw("if"):
		return p.ifStatement()

	case p.isKw("while"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		body, err := p.block()
		if err != nil {
			return nil, err
		}
		return &whileStmt{cond: cond, body: body, line: line}, nil

	case p.isKw("for"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		f := &forStmt{line: line}
		if !p.isPunct(";") {
			s, err := p.simpleStmt()
			if err != nil {
				return nil, err
			}
			f.init = s
		}
		if err := p.expectPunct(";"); err != nil {
			return nil, err
		}
		if !p.isPunct(";") {
			c, err := p.expr()
			if err != nil {
				return nil, err
			}
			f.cond = c
		}
		if err := p.expectPunct(";"); err != nil {
			return nil, err
		}
		if !p.isPunct(")") {
			s, err := p.simpleStmt()
			if err != nil {
				return nil, err
			}
			f.post = s
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		body, err := p.block()
		if err != nil {
			return nil, err
		}
		f.body = body
		return f, nil

	case p.isKw("return"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		r := &returnStmt{line: line}
		if !p.isPunct(";") {
			x, err := p.expr()
			if err != nil {
				return nil, err
			}
			r.x = x
		}
		return r, p.expectPunct(";")

	case p.isKw("break"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &breakStmt{line: line}, p.expectPunct(";")

	case p.isKw("continue"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &continueStmt{line: line}, p.expectPunct(";")

	case p.isPunct("{"):
		return p.block()
	}

	s, err := p.simpleStmt()
	if err != nil {
		return nil, err
	}
	return s, p.expectPunct(";")
}

func (p *parser) ifStatement() (stmt, error) {
	line := p.tok.line
	if err := p.advance(); err != nil { // consume "if"
		return nil, err
	}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	then, err := p.block()
	if err != nil {
		return nil, err
	}
	s := &ifStmt{cond: cond, then: then, line: line}
	if p.isKw("else") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.isKw("if") {
			els, err := p.ifStatement()
			if err != nil {
				return nil, err
			}
			s.els = els
		} else {
			els, err := p.block()
			if err != nil {
				return nil, err
			}
			s.els = els
		}
	}
	return s, nil
}

// simpleStmt parses an assignment or expression statement (without the
// trailing semicolon, so it can appear in for-clauses).
func (p *parser) simpleStmt() (stmt, error) {
	line := p.tok.line
	x, err := p.expr()
	if err != nil {
		return nil, err
	}
	if p.isPunct("=") {
		switch x.(type) {
		case *varRef, *indexExpr:
		default:
			return nil, p.errf(line, "left side of assignment must be a variable or array element")
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		rhs, err := p.expr()
		if err != nil {
			return nil, err
		}
		return &assignStmt{lhs: x, rhs: rhs, line: line}, nil
	}
	return &exprStmt{x: x, line: line}, nil
}

// Binary operator precedence, loosest first.
var binPrec = map[string]int{
	"||": 1,
	"&&": 2,
	"|":  3,
	"^":  4,
	"&":  5,
	"==": 6, "!=": 6,
	"<": 7, "<=": 7, ">": 7, ">=": 7,
	"<<": 8, ">>": 8,
	"+": 9, "-": 9,
	"*": 10, "/": 10, "%": 10,
}

func (p *parser) expr() (expr, error) { return p.binExpr(1) }

func (p *parser) binExpr(minPrec int) (expr, error) {
	x, err := p.unary()
	if err != nil {
		return nil, err
	}
	for {
		if p.tok.kind != tPunct {
			return x, nil
		}
		prec, ok := binPrec[p.tok.text]
		if !ok || prec < minPrec {
			return x, nil
		}
		op := p.tok.text
		line := p.tok.line
		if err := p.advance(); err != nil {
			return nil, err
		}
		y, err := p.binExpr(prec + 1)
		if err != nil {
			return nil, err
		}
		x = &binaryExpr{op: op, x: x, y: y, line: line}
	}
}

func (p *parser) unary() (expr, error) {
	if p.tok.kind == tPunct {
		switch p.tok.text {
		case "-", "!", "~":
			op := p.tok.text
			line := p.tok.line
			if err := p.advance(); err != nil {
				return nil, err
			}
			x, err := p.unary()
			if err != nil {
				return nil, err
			}
			// Fold negative literals immediately.
			if op == "-" {
				if lit, ok := x.(*intLit); ok {
					return &intLit{val: -lit.val, line: line}, nil
				}
			}
			return &unaryExpr{op: op, x: x, line: line}, nil
		}
	}
	return p.primary()
}

func (p *parser) primary() (expr, error) {
	line := p.tok.line
	switch {
	case p.tok.kind == tInt:
		v := p.tok.val
		return &intLit{val: v, line: line}, p.advance()

	case p.tok.kind == tStr:
		s := p.tok.text
		return &strLit{val: s, line: line}, p.advance()

	case p.tok.kind == tIdent:
		name := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		switch {
		case p.isPunct("("):
			if err := p.advance(); err != nil {
				return nil, err
			}
			call := &callExpr{name: name, line: line}
			for !p.isPunct(")") {
				if len(call.args) > 0 {
					if err := p.expectPunct(","); err != nil {
						return nil, err
					}
				}
				a, err := p.expr()
				if err != nil {
					return nil, err
				}
				call.args = append(call.args, a)
			}
			return call, p.advance()
		case p.isPunct("["):
			if err := p.advance(); err != nil {
				return nil, err
			}
			idx, err := p.expr()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct("]"); err != nil {
				return nil, err
			}
			return &indexExpr{name: name, idx: idx, line: line}, nil
		}
		return &varRef{name: name, line: line}, nil

	case p.isPunct("("):
		if err := p.advance(); err != nil {
			return nil, err
		}
		x, err := p.expr()
		if err != nil {
			return nil, err
		}
		return x, p.expectPunct(")")
	}
	return nil, p.errf(line, "unexpected token %q in expression", p.tok.text)
}
