package minic

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"valueprof/internal/vm"
)

// Differential testing: generate random expressions, compile them
// through MiniC → VRISC → VM, and compare against a Go evaluator with
// identical semantics (int64 wrap-around, truncated division, masked
// shifts). This exercises the whole toolchain on inputs no hand-written
// test would cover.

type genExpr struct {
	src string
	val int64
}

type exprGen struct {
	r    *rand.Rand
	vars map[string]int64
}

func (g *exprGen) gen(depth int) genExpr {
	if depth <= 0 || g.r.Intn(4) == 0 {
		return g.leaf()
	}
	switch g.r.Intn(10) {
	case 0: // unary
		x := g.gen(depth - 1)
		switch g.r.Intn(3) {
		case 0:
			return genExpr{"(-" + wrap(x.src) + ")", -x.val}
		case 1:
			return genExpr{"(~" + wrap(x.src) + ")", ^x.val}
		default:
			v := int64(0)
			if x.val == 0 {
				v = 1
			}
			return genExpr{"(!" + wrap(x.src) + ")", v}
		}
	case 1: // division by a safe literal
		x := g.gen(depth - 1)
		d := int64(g.r.Intn(9) + 1)
		if g.r.Intn(2) == 0 {
			return genExpr{"(" + x.src + " / " + fmt.Sprint(d) + ")", x.val / d}
		}
		return genExpr{"(" + x.src + " % " + fmt.Sprint(d) + ")", x.val % d}
	case 2: // shift by a small literal
		x := g.gen(depth - 1)
		s := int64(g.r.Intn(8))
		if g.r.Intn(2) == 0 {
			return genExpr{"(" + x.src + " << " + fmt.Sprint(s) + ")", x.val << uint(s)}
		}
		return genExpr{"(" + x.src + " >> " + fmt.Sprint(s) + ")", x.val >> uint(s)}
	case 3: // short-circuit
		x := g.gen(depth - 1)
		y := g.gen(depth - 1)
		if g.r.Intn(2) == 0 {
			v := int64(0)
			if x.val != 0 && y.val != 0 {
				v = 1
			}
			return genExpr{"(" + x.src + " && " + y.src + ")", v}
		}
		v := int64(0)
		if x.val != 0 || y.val != 0 {
			v = 1
		}
		return genExpr{"(" + x.src + " || " + y.src + ")", v}
	case 4: // comparison
		x := g.gen(depth - 1)
		y := g.gen(depth - 1)
		ops := []string{"==", "!=", "<", "<=", ">", ">="}
		op := ops[g.r.Intn(len(ops))]
		var b bool
		switch op {
		case "==":
			b = x.val == y.val
		case "!=":
			b = x.val != y.val
		case "<":
			b = x.val < y.val
		case "<=":
			b = x.val <= y.val
		case ">":
			b = x.val > y.val
		case ">=":
			b = x.val >= y.val
		}
		v := int64(0)
		if b {
			v = 1
		}
		return genExpr{"(" + x.src + " " + op + " " + y.src + ")", v}
	default: // arithmetic / bitwise
		x := g.gen(depth - 1)
		y := g.gen(depth - 1)
		switch g.r.Intn(6) {
		case 0:
			return genExpr{"(" + x.src + " + " + y.src + ")", x.val + y.val}
		case 1:
			return genExpr{"(" + x.src + " - " + y.src + ")", x.val - y.val}
		case 2:
			return genExpr{"(" + x.src + " * " + y.src + ")", x.val * y.val}
		case 3:
			return genExpr{"(" + x.src + " & " + y.src + ")", x.val & y.val}
		case 4:
			return genExpr{"(" + x.src + " | " + y.src + ")", x.val | y.val}
		default:
			return genExpr{"(" + x.src + " ^ " + y.src + ")", x.val ^ y.val}
		}
	}
}

func (g *exprGen) leaf() genExpr {
	if g.r.Intn(2) == 0 {
		names := make([]string, 0, len(g.vars))
		for n := range g.vars {
			names = append(names, n)
		}
		// map iteration order is random but stable choice via sort-free
		// pick: use deterministic index over sorted insertion order.
		name := pickStable(names, g.r)
		return genExpr{name, g.vars[name]}
	}
	v := int64(g.r.Intn(2001) - 1000)
	if v < 0 {
		return genExpr{fmt.Sprintf("(0 - %d)", -v), v}
	}
	return genExpr{fmt.Sprint(v), v}
}

func pickStable(names []string, r *rand.Rand) string {
	// Sort for determinism independent of map order.
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	return names[r.Intn(len(names))]
}

func wrap(s string) string {
	if strings.HasPrefix(s, "(") {
		return s
	}
	return "(" + s + ")"
}

func TestRandomExpressionsDifferential(t *testing.T) {
	const trials = 60
	const exprsPerTrial = 8
	for trial := 0; trial < trials; trial++ {
		r := rand.New(rand.NewSource(int64(trial) * 7919))
		g := &exprGen{r: r, vars: map[string]int64{
			"a": int64(r.Intn(200) - 100),
			"b": int64(r.Intn(2000) - 1000),
			"c": int64(r.Intn(20)),
		}}
		var body strings.Builder
		fmt.Fprintf(&body, "func main() {\n")
		fmt.Fprintf(&body, "  var a = %d; var b = %d; var c = %d;\n", g.vars["a"], g.vars["b"], g.vars["c"])
		var want []string
		for i := 0; i < exprsPerTrial; i++ {
			e := g.gen(4)
			fmt.Fprintf(&body, "  putint(%s); putchar(' ');\n", e.src)
			want = append(want, fmt.Sprint(e.val))
		}
		fmt.Fprintf(&body, "}\n")

		prog, err := Compile(body.String())
		if err != nil {
			t.Fatalf("trial %d: compile: %v\nsource:\n%s", trial, err, body.String())
		}
		res, err := vm.Execute(prog, nil)
		if err != nil {
			t.Fatalf("trial %d: run: %v\nsource:\n%s", trial, err, body.String())
		}
		got := strings.Fields(res.Output)
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d outputs, want %d\nsource:\n%s", trial, len(got), len(want), body.String())
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d expr %d: got %s, want %s\nsource:\n%s",
					trial, i, got[i], want[i], body.String())
			}
		}
	}
}

// TestRandomStatementsDifferential builds random straight-line programs
// with assignments and loops over an int array, mirrored in Go.
func TestRandomStatementsDifferential(t *testing.T) {
	const trials = 30
	for trial := 0; trial < trials; trial++ {
		r := rand.New(rand.NewSource(int64(trial)*104729 + 17))
		n := 8 + r.Intn(8)
		// Mirror state.
		arr := make([]int64, n)
		acc := int64(0)

		var body strings.Builder
		fmt.Fprintf(&body, "int arr[%d];\nfunc main() {\n  var i; var acc = 0;\n", n)
		fmt.Fprintf(&body, "  for (i = 0; i < %d; i = i + 1) { arr[i] = i * 7 - 3; }\n", n)
		for i := range arr {
			arr[i] = int64(i)*7 - 3
		}
		steps := 10 + r.Intn(15)
		for s := 0; s < steps; s++ {
			i := r.Intn(n)
			j := r.Intn(n)
			k := int64(r.Intn(11) - 5)
			switch r.Intn(4) {
			case 0:
				fmt.Fprintf(&body, "  arr[%d] = arr[%d] + %d;\n", i, j, k)
				arr[i] = arr[j] + k
			case 1:
				fmt.Fprintf(&body, "  arr[%d] = arr[%d] * arr[%d];\n", i, j, (i+j)%n)
				arr[i] = arr[j] * arr[(i+j)%n]
			case 2:
				fmt.Fprintf(&body, "  if (arr[%d] > arr[%d]) { acc = acc + 1; } else { acc = acc - 2; }\n", i, j)
				if arr[i] > arr[j] {
					acc++
				} else {
					acc -= 2
				}
			default:
				fmt.Fprintf(&body, "  acc = acc + arr[%d] ^ %d;\n", i, k)
				acc = acc + arr[i] ^ k
			}
		}
		fmt.Fprintf(&body, "  for (i = 0; i < %d; i = i + 1) { acc = acc * 3 + arr[i]; }\n", n)
		for i := range arr {
			acc = acc*3 + arr[i]
		}
		fmt.Fprintf(&body, "  putint(acc);\n}\n")

		prog, err := Compile(body.String())
		if err != nil {
			t.Fatalf("trial %d: compile: %v\nsource:\n%s", trial, err, body.String())
		}
		res, err := vm.Execute(prog, nil)
		if err != nil {
			t.Fatalf("trial %d: run: %v\nsource:\n%s", trial, err, body.String())
		}
		if res.Output != fmt.Sprint(acc) {
			t.Fatalf("trial %d: got %s, want %d\nsource:\n%s", trial, res.Output, acc, body.String())
		}
	}
}
