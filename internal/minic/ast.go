package minic

// AST node types. Expressions implement expr; statements implement stmt.
// The parser builds the tree; the code generator resolves names with a
// scope stack, so nodes carry only source-level information plus the
// slots the generator fills in (frame offsets on varDecl).

type expr interface{ exprNode() }

type intLit struct {
	val  int64
	line int
}

type strLit struct {
	val  string
	line int
}

type varRef struct {
	name string
	line int
}

// indexExpr is base[idx] where base must name an array (global, local,
// or array parameter).
type indexExpr struct {
	name string
	idx  expr
	line int
}

type callExpr struct {
	name string
	args []expr
	line int
}

type unaryExpr struct {
	op   string // "-", "!", "~"
	x    expr
	line int
}

type binaryExpr struct {
	op   string
	x, y expr
	line int
}

func (*intLit) exprNode()     {}
func (*strLit) exprNode()     {}
func (*varRef) exprNode()     {}
func (*indexExpr) exprNode()  {}
func (*callExpr) exprNode()   {}
func (*unaryExpr) exprNode()  {}
func (*binaryExpr) exprNode() {}

type stmt interface{ stmtNode() }

// varDecl declares a local: scalar (arrayLen < 0) or array. offset is
// assigned by the code generator's frame layout pass.
type varDecl struct {
	name     string
	arrayLen int // -1 for scalar
	init     expr
	line     int
	offset   int // fp-relative, filled by codegen
}

type assignStmt struct {
	lhs  expr // *varRef or *indexExpr
	rhs  expr
	line int
}

type exprStmt struct {
	x    expr
	line int
}

type ifStmt struct {
	cond expr
	then *blockStmt
	els  stmt // *blockStmt, *ifStmt, or nil
	line int
}

type whileStmt struct {
	cond expr
	body *blockStmt
	line int
}

type forStmt struct {
	init stmt // assign/expr stmt or nil
	cond expr // or nil
	post stmt // assign/expr stmt or nil
	body *blockStmt
	line int
}

type returnStmt struct {
	x    expr // or nil
	line int
}

type breakStmt struct{ line int }
type continueStmt struct{ line int }

type blockStmt struct {
	stmts []stmt
}

func (*varDecl) stmtNode()      {}
func (*assignStmt) stmtNode()   {}
func (*exprStmt) stmtNode()     {}
func (*ifStmt) stmtNode()       {}
func (*whileStmt) stmtNode()    {}
func (*forStmt) stmtNode()      {}
func (*returnStmt) stmtNode()   {}
func (*breakStmt) stmtNode()    {}
func (*continueStmt) stmtNode() {}
func (*blockStmt) stmtNode()    {}

// param is a function parameter; array params ("name[]") receive an
// address and are indexable.
type param struct {
	name    string
	isArray bool
}

type funcDecl struct {
	name   string
	params []param
	body   *blockStmt
	line   int
}

// globalDecl is a file-scope int or int array, with an optional constant
// initializer for scalars.
type globalDecl struct {
	name     string
	arrayLen int // -1 for scalar
	init     int64
	hasInit  bool
	line     int
}

type file struct {
	globals []*globalDecl
	funcs   []*funcDecl
}
