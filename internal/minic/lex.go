// Package minic compiles MiniC, a small C-like language, to VRISC
// assembly. It stands in for the optimizing C compiler the paper used
// to build its SPEC workloads: all benchmark programs in
// internal/workloads are written in MiniC so the profiled code has
// compiler-shaped structure (loop induction variables, spills, address
// arithmetic, calling conventions) rather than hand-tuned assembly.
//
// Language summary:
//
//	int g;                  // global scalar (int64), optional "= const"
//	int tab[256];           // global array of int64
//	func f(a, b[]) { ... }  // every value is int64; b is an array arg
//	var x = 3; var a[10];   // locals, block-scoped
//	if/else, while, for, break, continue, return
//	operators: || && | ^ & == != < <= > >= << >> + - * / % unary - ! ~
//	builtins: putint(x) putchar(c) putstr("s") getint() clock()
//
// Arrays decay to addresses when passed; a[i] indexes 8-byte elements.
package minic

import (
	"fmt"
	"strconv"
)

type tokKind int

const (
	tEOF tokKind = iota
	tIdent
	tInt
	tStr
	tPunct // operators and punctuation, in tok.text
	tKeyword
)

type token struct {
	kind tokKind
	text string
	val  int64 // for tInt
	line int
}

// Error is a compile diagnostic with a 1-based source line.
type Error struct {
	Line int
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("minic: line %d: %s", e.Line, e.Msg) }

var keywords = map[string]bool{
	"int": true, "func": true, "var": true, "if": true, "else": true,
	"while": true, "for": true, "return": true, "break": true, "continue": true,
}

type lexer struct {
	src  string
	pos  int
	line int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1} }

func (lx *lexer) errf(format string, args ...any) error {
	return &Error{Line: lx.line, Msg: fmt.Sprintf(format, args...)}
}

func (lx *lexer) peekByte() byte {
	if lx.pos < len(lx.src) {
		return lx.src[lx.pos]
	}
	return 0
}

func (lx *lexer) at(i int) byte {
	if lx.pos+i < len(lx.src) {
		return lx.src[lx.pos+i]
	}
	return 0
}

func (lx *lexer) skipSpace() error {
	for lx.pos < len(lx.src) {
		c := lx.src[lx.pos]
		switch {
		case c == '\n':
			lx.line++
			lx.pos++
		case c == ' ' || c == '\t' || c == '\r':
			lx.pos++
		case c == '/' && lx.at(1) == '/':
			for lx.pos < len(lx.src) && lx.src[lx.pos] != '\n' {
				lx.pos++
			}
		case c == '/' && lx.at(1) == '*':
			lx.pos += 2
			for {
				if lx.pos >= len(lx.src) {
					return lx.errf("unterminated block comment")
				}
				if lx.src[lx.pos] == '\n' {
					lx.line++
				}
				if lx.src[lx.pos] == '*' && lx.at(1) == '/' {
					lx.pos += 2
					break
				}
				lx.pos++
			}
		default:
			return nil
		}
	}
	return nil
}

// multi-byte punctuation, longest first.
var punct2 = []string{"==", "!=", "<=", ">=", "&&", "||", "<<", ">>"}

func (lx *lexer) next() (token, error) {
	if err := lx.skipSpace(); err != nil {
		return token{}, err
	}
	if lx.pos >= len(lx.src) {
		return token{kind: tEOF, line: lx.line}, nil
	}
	start := lx.pos
	line := lx.line
	c := lx.src[lx.pos]

	switch {
	case isLetter(c):
		for lx.pos < len(lx.src) && (isLetter(lx.src[lx.pos]) || isDigit(lx.src[lx.pos])) {
			lx.pos++
		}
		text := lx.src[start:lx.pos]
		if keywords[text] {
			return token{kind: tKeyword, text: text, line: line}, nil
		}
		return token{kind: tIdent, text: text, line: line}, nil

	case isDigit(c):
		for lx.pos < len(lx.src) && (isDigit(lx.src[lx.pos]) || isHexLetter(lx.src[lx.pos]) || lx.src[lx.pos] == 'x' || lx.src[lx.pos] == 'X') {
			lx.pos++
		}
		text := lx.src[start:lx.pos]
		v, err := strconv.ParseInt(text, 0, 64)
		if err != nil {
			return token{}, lx.errf("bad integer literal %q", text)
		}
		return token{kind: tInt, text: text, val: v, line: line}, nil

	case c == '"':
		lx.pos++
		var out []byte
		for {
			if lx.pos >= len(lx.src) {
				return token{}, lx.errf("unterminated string literal")
			}
			ch := lx.src[lx.pos]
			if ch == '"' {
				lx.pos++
				break
			}
			if ch == '\n' {
				return token{}, lx.errf("newline in string literal")
			}
			if ch == '\\' {
				lx.pos++
				if lx.pos >= len(lx.src) {
					return token{}, lx.errf("unterminated escape")
				}
				switch lx.src[lx.pos] {
				case 'n':
					out = append(out, '\n')
				case 't':
					out = append(out, '\t')
				case '\\':
					out = append(out, '\\')
				case '"':
					out = append(out, '"')
				case '0':
					out = append(out, 0)
				default:
					return token{}, lx.errf("unknown escape \\%c", lx.src[lx.pos])
				}
				lx.pos++
				continue
			}
			out = append(out, ch)
			lx.pos++
		}
		return token{kind: tStr, text: string(out), line: line}, nil

	case c == '\'':
		// Character literal, one byte, with the same escapes.
		lx.pos++
		if lx.pos >= len(lx.src) {
			return token{}, lx.errf("unterminated character literal")
		}
		var v int64
		if lx.src[lx.pos] == '\\' {
			lx.pos++
			if lx.pos >= len(lx.src) {
				return token{}, lx.errf("unterminated escape")
			}
			switch lx.src[lx.pos] {
			case 'n':
				v = '\n'
			case 't':
				v = '\t'
			case '\\':
				v = '\\'
			case '\'':
				v = '\''
			case '0':
				v = 0
			default:
				return token{}, lx.errf("unknown escape \\%c", lx.src[lx.pos])
			}
		} else {
			v = int64(lx.src[lx.pos])
		}
		lx.pos++
		if lx.pos >= len(lx.src) || lx.src[lx.pos] != '\'' {
			return token{}, lx.errf("unterminated character literal")
		}
		lx.pos++
		return token{kind: tInt, text: "'" + string(byte(v)) + "'", val: v, line: line}, nil
	}

	for _, p := range punct2 {
		if lx.pos+2 <= len(lx.src) && lx.src[lx.pos:lx.pos+2] == p {
			lx.pos += 2
			return token{kind: tPunct, text: p, line: line}, nil
		}
	}
	switch c {
	case '+', '-', '*', '/', '%', '&', '|', '^', '~', '!', '<', '>', '=',
		'(', ')', '{', '}', '[', ']', ',', ';':
		lx.pos++
		return token{kind: tPunct, text: string(c), line: line}, nil
	}
	return token{}, lx.errf("unexpected character %q", c)
}

func isLetter(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_'
}
func isDigit(c byte) bool     { return c >= '0' && c <= '9' }
func isHexLetter(c byte) bool { return c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F' }
