package specialize

import "valueprof/internal/isa"

// regSet is a 32-register bit set.
type regSet uint32

func (s regSet) has(r uint8) bool { return s&(1<<r) != 0 }
func (s *regSet) add(r uint8)     { *s |= 1 << r }
func (s *regSet) del(r uint8)     { *s &^= 1 << r }

func (s *regSet) addAll(rs ...uint8) {
	for _, r := range rs {
		s.add(r)
	}
}

// retLive are the registers meaningful after a procedure returns: the
// return value, the stack/frame pointers, and the callee-saved set.
var retLive = func() regSet {
	var s regSet
	s.addAll(isa.RegV0, isa.RegSP, isa.RegFP)
	for r := isa.RegS0; r < isa.RegS0+8; r++ {
		s.add(uint8(r))
	}
	return s
}()

// callUses are the registers a call consumes (arguments plus the stack
// and frame pointers); callDefs are the registers it may clobber.
var callUses, callDefs = func() (u, d regSet) {
	u.addAll(isa.RegSP, isa.RegFP)
	for r := isa.RegA0; r <= isa.RegA5; r++ {
		u.add(uint8(r))
	}
	for _, r := range callerSaved {
		d.add(r)
	}
	return u, d
}()

// useDef returns the registers in reads and writes.
func useDef(in isa.Inst) (use, def regSet) {
	switch in.Op.Form() {
	case isa.FormRRR:
		use.addAll(in.Ra, in.Rb)
		def.add(in.Rd)
	case isa.FormRRI:
		use.add(in.Ra)
		def.add(in.Rd)
	case isa.FormMem:
		use.add(in.Ra)
		if in.Op.Class() == isa.ClassStore {
			use.add(in.Rd) // stores read the "destination" register
		} else {
			def.add(in.Rd)
		}
	case isa.FormRB:
		use.add(in.Ra)
	case isa.FormJ: // jsr
		use = callUses
		def = callDefs
	case isa.FormR:
		switch in.Op {
		case isa.OpJsrr:
			use = callUses
			use.add(in.Ra)
			def = callDefs
		case isa.OpJmp:
			use.add(in.Ra)
		case isa.OpRet:
			use = retLive
			use.add(in.Ra)
		}
	case isa.FormS: // syscall
		use.add(isa.RegA0)
		def.add(isa.RegV0)
	}
	def.del(isa.RegZero)
	return use, def
}

// sideEffectFree reports whether the instruction can be deleted when
// its destination is dead. Loads are included: a dead load's only
// observable effect is a potential fault, which specialization (like
// any compiler assuming non-trapping loads) is allowed to drop.
func sideEffectFree(in isa.Inst) bool {
	if in.Op == isa.OpNop {
		return true
	}
	return in.Op.HasDest()
}
