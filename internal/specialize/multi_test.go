package specialize

import (
	"strings"
	"testing"

	"valueprof/internal/isa"
	"valueprof/internal/minic"
	"valueprof/internal/vm"
)

// A bimodal kernel: mode is 2 on even iterations and 5 on odd ones,
// with an occasional cold mode — exactly the top-N-values situation
// multi-way specialization targets.
const bimodalSrc = `
func kernel(mode, x) {
    if (mode == 1) { return x + 1; }
    if (mode == 2) { return x * 3 + mode * 7; }
    if (mode == 3) { return (x << 2) ^ mode; }
    if (mode == 4) { return x * x + mode; }
    if (mode == 5) { return x * 5 - mode * 2; }
    return x;
}
func main() {
    var i; var acc = 0; var m;
    for (i = 0; i < 20000; i = i + 1) {
        if (i % 100 == 99) { m = 1 + i % 5; }
        else if (i % 2 == 0) { m = 2; }
        else { m = 5; }
        acc = (acc + kernel(m, i)) & 0xFFFFFF;
    }
    putint(acc);
}
`

func TestSpecializeMultiPreservesOutputAndBeatsSingle(t *testing.T) {
	prog, err := minic.Compile(bimodalSrc)
	if err != nil {
		t.Fatal(err)
	}
	base, err := vm.Execute(prog, nil)
	if err != nil {
		t.Fatal(err)
	}

	single, _, err := Specialize(prog, "kernel", isa.RegA0, 2)
	if err != nil {
		t.Fatal(err)
	}
	singleRes, err := vm.Execute(single, nil)
	if err != nil {
		t.Fatal(err)
	}

	multi, mi, err := SpecializeMulti(prog, "kernel", isa.RegA0, []int64{2, 5})
	if err != nil {
		t.Fatal(err)
	}
	multiRes, err := vm.Execute(multi, nil)
	if err != nil {
		t.Fatal(err)
	}

	if singleRes.Output != base.Output || multiRes.Output != base.Output {
		t.Fatalf("outputs differ: base %q single %q multi %q",
			base.Output, singleRes.Output, multiRes.Output)
	}
	if multiRes.Cycles >= base.Cycles {
		t.Errorf("multi-value specialization gave no speedup: %d vs %d", multiRes.Cycles, base.Cycles)
	}
	// Covering both hot modes must beat covering one: the single
	// version falls back to the general body half the time.
	if multiRes.Cycles >= singleRes.Cycles {
		t.Errorf("multi (%d cycles) should beat single-value (%d cycles) on a bimodal site",
			multiRes.Cycles, singleRes.Cycles)
	}
	t.Logf("cycles: base %d, single %d (%.3fx), multi %d (%.3fx)",
		base.Cycles, singleRes.Cycles, float64(base.Cycles)/float64(singleRes.Cycles),
		multiRes.Cycles, float64(base.Cycles)/float64(multiRes.Cycles))

	if len(mi.PerValue) != 2 {
		t.Fatalf("per-value infos = %d", len(mi.PerValue))
	}
	for i, info := range mi.PerValue {
		if info.Folded == 0 || info.Branches == 0 {
			t.Errorf("value %d: no optimization activity: %+v", i, info)
		}
		if info.SpecSize >= info.OrigSize {
			t.Errorf("value %d: body did not shrink", i)
		}
	}
	if multi.ProcByName("kernel$guard") == nil ||
		multi.ProcByName("kernel$spec0") == nil ||
		multi.ProcByName("kernel$spec1") == nil {
		t.Error("guard/spec procedures not registered")
	}
}

func TestSpecializeMultiGuardMissesFallBack(t *testing.T) {
	prog, err := minic.Compile(bimodalSrc)
	if err != nil {
		t.Fatal(err)
	}
	base, err := vm.Execute(prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Specialize on values that never dominate; correctness must hold.
	multi, _, err := SpecializeMulti(prog, "kernel", isa.RegA0, []int64{77, 88})
	if err != nil {
		t.Fatal(err)
	}
	got, err := vm.Execute(multi, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.Output != base.Output {
		t.Fatalf("guard-miss output changed: %q vs %q", got.Output, base.Output)
	}
}

func TestSpecializeMultiErrors(t *testing.T) {
	prog, err := minic.Compile(bimodalSrc)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := SpecializeMulti(prog, "kernel", isa.RegA0, nil); err == nil {
		t.Error("empty value list accepted")
	}
	if _, _, err := SpecializeMulti(prog, "kernel", isa.RegA0, []int64{2, 2}); err == nil ||
		!strings.Contains(err.Error(), "duplicate") {
		t.Errorf("duplicate values: %v", err)
	}
	if _, _, err := SpecializeMulti(prog, "kernel", isa.RegZero, []int64{2}); err == nil {
		t.Error("zero register accepted")
	}
	if _, _, err := SpecializeMulti(prog, "nosuch", isa.RegA0, []int64{2}); err == nil {
		t.Error("missing procedure accepted")
	}
	if _, _, err := SpecializeMulti(prog, "kernel", isa.RegA0, []int64{1 << 40}); err == nil {
		t.Error("oversized value accepted")
	}
}

func TestSpecializeMultiSingleValueMatchesSpecialize(t *testing.T) {
	// One-element SpecializeMulti must behave like Specialize.
	prog, err := minic.Compile(bimodalSrc)
	if err != nil {
		t.Fatal(err)
	}
	a, _, err := Specialize(prog, "kernel", isa.RegA0, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := SpecializeMulti(prog, "kernel", isa.RegA0, []int64{2})
	if err != nil {
		t.Fatal(err)
	}
	ra, err := vm.Execute(a, nil)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := vm.Execute(b, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ra.Output != rb.Output {
		t.Error("single-value multi differs from Specialize in behaviour")
	}
}
