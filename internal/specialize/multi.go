package specialize

import (
	"fmt"

	"valueprof/internal/isa"
	"valueprof/internal/program"
)

// MultiInfo reports a multi-value specialization.
type MultiInfo struct {
	Proc      string
	Reg       uint8
	Values    []int64
	PerValue  []Info // one optimization report per specialized value
	StubStart int
}

// SpecializeMulti installs one specialized body per value, dispatched
// by a guard chain — the multi-way use of the TNV table's top-N values
// the thesis motivates ("value profiling is an approach that can
// identify the invariance and the top N values of a variable"): when a
// site is bimodal rather than single-valued, each hot value gets its
// own folded body, and the general version remains the fallback.
//
// Layout appended to the clone:
//
//	stub:   cmpeqi at, reg, v0 ; bne at, spec0
//	        cmpeqi at, reg, v1 ; bne at, spec1
//	        ...
//	        br original
//	spec0:  optimized body under reg==v0
//	spec1:  optimized body under reg==v1
func SpecializeMulti(prog *program.Program, procName string, reg uint8, values []int64) (*program.Program, *MultiInfo, error) {
	if len(values) == 0 {
		return nil, nil, fmt.Errorf("specialize: no values given")
	}
	seen := map[int64]bool{}
	for _, v := range values {
		if v < -(1<<31) || v > (1<<31)-1 {
			return nil, nil, fmt.Errorf("specialize: guard value %d does not fit the cmpeqi immediate", v)
		}
		if seen[v] {
			return nil, nil, fmt.Errorf("specialize: duplicate guard value %d", v)
		}
		seen[v] = true
	}
	if reg >= isa.NumRegs || reg == isa.RegZero {
		return nil, nil, fmt.Errorf("specialize: cannot specialize on register %d", reg)
	}
	src := prog.ProcByName(procName)
	if src == nil {
		return nil, nil, fmt.Errorf("specialize: no procedure %q", procName)
	}
	body := prog.Code[src.Start:src.End]
	for i, in := range body {
		if in.Op == isa.OpJmp {
			return nil, nil, fmt.Errorf("specialize: %s+%d is an indirect jump; cannot specialize", procName, i)
		}
		if tgt, ok := in.Target(); ok && in.Op != isa.OpJsr {
			if tgt < src.Start || tgt >= src.End {
				return nil, nil, fmt.Errorf("specialize: %s+%d branches outside the procedure", procName, i)
			}
		}
	}

	mi := &MultiInfo{Proc: procName, Reg: reg, Values: values}

	// Optimize each body first so sizes are known for the layout.
	specs := make([]*specResult, len(values))
	for i, v := range values {
		info := Info{Proc: procName, Reg: reg, Value: v, OrigSize: len(body)}
		specs[i] = optimize(body, src.Start, reg, v, &info)
		info.SpecSize = len(specs[i].code)
		mi.PerValue = append(mi.PerValue, info)
	}

	out := prog.Clone()
	stubStart := len(out.Code)
	mi.StubStart = stubStart
	stubLen := 2*len(values) + 1
	// Compute each spec body's start.
	starts := make([]int, len(values))
	at := stubStart + stubLen
	for i := range values {
		starts[i] = at
		at += len(specs[i].code)
	}

	for i, v := range values {
		out.Code = append(out.Code,
			isa.Inst{Op: isa.OpCmpeqi, Rd: isa.RegAT, Ra: reg, Imm: int32(v)},
			isa.Inst{Op: isa.OpBne, Ra: isa.RegAT, Imm: int32(starts[i])},
		)
	}
	out.Code = append(out.Code, isa.Inst{Op: isa.OpBr, Imm: int32(src.Start)})

	for i := range values {
		for _, in := range specs[i].code {
			if tgt, ok := in.Target(); ok && in.Op != isa.OpJsr {
				in.Imm = int32(specs[i].newPC[tgt-src.Start] + starts[i])
			}
			out.Code = append(out.Code, in)
		}
		mi.PerValue[i].StubStart = stubStart
		mi.PerValue[i].SpecStart = starts[i]
	}

	for pc := 0; pc < stubStart; pc++ {
		if out.Code[pc].Op == isa.OpJsr && int(out.Code[pc].Imm) == src.Start {
			out.Code[pc].Imm = int32(stubStart)
		}
	}

	out.Procs = append(out.Procs,
		program.Proc{Name: procName + "$guard", Start: stubStart, End: stubStart + stubLen})
	out.Labels[procName+"$guard"] = stubStart
	for i := range values {
		name := fmt.Sprintf("%s$spec%d", procName, i)
		end := at
		if i+1 < len(values) {
			end = starts[i+1]
		}
		out.Procs = append(out.Procs, program.Proc{Name: name, Start: starts[i], End: end})
		out.Labels[name] = starts[i]
	}
	if err := out.Validate(); err != nil {
		return nil, nil, fmt.Errorf("specialize: internal error: %w", err)
	}
	return out, mi, nil
}
